// Tests of the public hpd::Monitor facade.
#include <gtest/gtest.h>

#include "runner/monitor.hpp"
#include "trace/pulse.hpp"

namespace hpd {
namespace {

TEST(MonitorTest, ScriptedScenarioFiresCallbacks) {
  MonitorConfig cfg;
  cfg.topology = net::Topology::complete(2);
  cfg.delay = sim::DelayModel::fixed(1.0);
  cfg.horizon = 50.0;
  Monitor mon(cfg);
  // Mutually crossing truth intervals on both nodes.
  mon.set_predicate(0, 1.0, true);
  mon.set_predicate(1, 1.0, true);
  mon.send_message(0, 1, 2.0);
  mon.send_message(1, 0, 2.5);
  mon.set_predicate(0, 10.0, false);
  mon.set_predicate(1, 10.0, false);

  int all_count = 0;
  int global_count = 0;
  mon.on_occurrence([&](const detect::OccurrenceRecord&) { ++all_count; });
  mon.on_global_occurrence(
      [&](const detect::OccurrenceRecord& rec) {
        ++global_count;
        EXPECT_TRUE(rec.global);
      });
  const auto res = mon.run();
  EXPECT_EQ(global_count, 1);
  EXPECT_GE(all_count, global_count);
  EXPECT_EQ(res.global_count, 1u);
}

TEST(MonitorTest, NoCrossingNoGlobalDetection) {
  MonitorConfig cfg;
  cfg.topology = net::Topology::complete(2);
  cfg.horizon = 50.0;
  Monitor mon(cfg);
  // Concurrent pulses without messages: Possibly but not Definitely.
  mon.set_predicate(0, 1.0, true);
  mon.set_predicate(0, 5.0, false);
  mon.set_predicate(1, 1.0, true);
  mon.set_predicate(1, 5.0, false);
  const auto res = mon.run();
  EXPECT_EQ(res.global_count, 0u);
}

TEST(MonitorTest, BehaviorFactoryWorkload) {
  MonitorConfig cfg;
  cfg.topology = net::Topology::grid(2, 2);
  cfg.horizon = 200.0;
  Monitor mon(cfg);
  trace::PulseConfig pc;
  pc.rounds = 3;
  pc.period = 50.0;
  mon.set_behavior_factory([pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  });
  const auto res = mon.run();
  EXPECT_EQ(res.global_count, 3u);
}

TEST(MonitorTest, FaultTolerantRunSurvivesFailure) {
  MonitorConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.fault_tolerant = true;
  cfg.horizon = 400.0;
  cfg.drain = 120.0;
  Monitor mon(cfg);
  trace::PulseConfig pc;
  pc.rounds = 5;
  pc.period = 70.0;
  mon.set_behavior_factory([pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  });
  mon.inject_failure(1, 100.0);  // an internal node of the BFS tree
  const auto res = mon.run();
  EXPECT_FALSE(res.final_alive[1]);
  // The surviving nodes stay attached: every live non-root node has a live
  // parent.
  int roots = 0;
  for (std::size_t i = 0; i < res.final_alive.size(); ++i) {
    if (!res.final_alive[i]) {
      continue;
    }
    const ProcessId p = res.final_parents[i];
    if (p == kNoProcess) {
      ++roots;
    } else {
      EXPECT_TRUE(res.final_alive[idx(p)]);
    }
  }
  EXPECT_EQ(roots, 1);
  // Detection kept running after the repair.
  EXPECT_GT(res.global_count, 0u);
}

TEST(MonitorTest, GroupLevelCallbacks) {
  MonitorConfig cfg;
  const auto tree = net::SpanningTree::balanced_dary(2, 3);
  cfg.topology = net::tree_topology(tree);
  cfg.tree = tree;
  cfg.horizon = 400.0;
  Monitor mon(cfg);
  trace::PulseConfig pc;
  pc.rounds = 4;
  pc.period = 80.0;
  mon.set_behavior_factory([pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  });
  int group1 = 0;
  int group2 = 0;
  int global = 0;
  mon.on_group_occurrence(1, [&](const detect::OccurrenceRecord& rec) {
    ++group1;
    EXPECT_EQ(rec.detector, 1);
    EXPECT_EQ(rec.aggregate.weight, 3u);  // subtree {1, 3, 4}
  });
  mon.on_group_occurrence(2, [&](const detect::OccurrenceRecord&) { ++group2; });
  mon.on_global_occurrence([&](const detect::OccurrenceRecord&) { ++global; });
  mon.run();
  EXPECT_EQ(group1, 4);
  EXPECT_EQ(group2, 4);
  EXPECT_EQ(global, 4);
}

TEST(MonitorTest, RecoveryThroughTheFacade) {
  MonitorConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.fault_tolerant = true;
  cfg.horizon = 900.0;
  cfg.drain = 200.0;
  Monitor mon(cfg);
  trace::PulseConfig pc;
  pc.rounds = 10;
  pc.period = 80.0;
  mon.set_behavior_factory([pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  });
  mon.inject_failure(4, 200.0);
  mon.inject_recovery(4, 500.0);
  const auto res = mon.run();
  EXPECT_TRUE(res.final_alive[4]);
  EXPECT_NE(res.final_parents[4], kNoProcess);  // readopted
  bool full_after = false;
  for (const auto& rec : res.occurrences) {
    if (rec.global && rec.time > 650.0 && rec.aggregate.weight == 6) {
      full_after = true;
    }
  }
  EXPECT_TRUE(full_after);
}

TEST(MonitorTest, RejectsInvalidMessages) {
  MonitorConfig cfg;
  cfg.topology = net::Topology::ring(4);
  Monitor mon(cfg);
  EXPECT_THROW(mon.send_message(0, 2, 1.0), AssertionError);  // not an edge
}

TEST(MonitorTest, RejectsDisconnectedTopology) {
  MonitorConfig cfg;
  cfg.topology = net::Topology(3);  // no edges
  EXPECT_THROW(Monitor{cfg}, AssertionError);
}

}  // namespace
}  // namespace hpd
