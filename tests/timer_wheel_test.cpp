// Unit tests for the reactor's hierarchical timer wheel: insert/cancel
// semantics, (due, id) fire ordering across wheel laps, next_due coarseness
// guarantees, and the coarse overflow bucket past the 64^4-tick horizon.
#include "rt/reactor/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

namespace hpd::rt {
namespace {

using namespace std::chrono_literals;
using Clock = TimerWheel::Clock;

Clock::time_point t0() {
  // Any fixed instant works: the wheel is rebased by reset().
  return Clock::time_point{} + 1000000s;
}

TEST(TimerWheel, FiresInDueOrderAcrossLaps) {
  TimerWheel w;
  w.reset(t0(), 1ms);

  // Insert out of order; two share a due instant (id breaks the tie) and
  // one lands a full level-0 revolution (64 ticks) later, exercising the
  // same-slot-later-lap re-place path.
  const auto id50 = w.schedule(t0() + 5ms, 50);
  const auto id30 = w.schedule(t0() + 3ms, 30);
  const auto id31 = w.schedule(t0() + 3ms, 31);
  w.schedule(t0() + 67ms, 670);
  w.schedule(t0() + 10ms, 100);
  EXPECT_LT(id30, id31);  // insertion order fixes the tie-break
  EXPECT_NE(id50, id30);
  EXPECT_EQ(w.pending(), 5u);

  std::vector<std::uint64_t> fired;
  w.advance(t0() + 4ms, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{30, 31}));
  EXPECT_EQ(w.pending(), 3u);

  fired.clear();
  w.advance(t0() + 70ms, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{50, 100, 670}));
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_EQ(w.next_due(), Clock::time_point::max());
}

TEST(TimerWheel, AlreadyDueClampsToNextTick) {
  TimerWheel w;
  w.reset(t0(), 1ms);

  // A due instant in the past cannot be lost: it lands in the very next
  // tick the wheel processes.
  w.schedule(t0() - 5ms, 1);
  std::vector<std::uint64_t> fired;
  w.advance(t0() + 1ms, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
}

TEST(TimerWheel, CancelPreventsFireAndIsIdempotent) {
  TimerWheel w;
  w.reset(t0(), 1ms);

  const auto a = w.schedule(t0() + 2ms, 10);
  const auto b = w.schedule(t0() + 2ms, 20);
  EXPECT_TRUE(w.cancel(a));
  EXPECT_FALSE(w.cancel(a));  // already cancelled
  EXPECT_EQ(w.pending(), 1u);

  std::vector<std::uint64_t> fired;
  w.advance(t0() + 5ms, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{20}));
  EXPECT_FALSE(w.cancel(b));  // already fired
}

TEST(TimerWheel, RescheduleAfterFire) {
  TimerWheel w;
  w.reset(t0(), 1ms);

  std::vector<std::uint64_t> fired;
  w.schedule(t0() + 1ms, 7);
  w.advance(t0() + 2ms, fired);
  w.schedule(t0() + 4ms, 7);  // re-arm the same payload
  w.advance(t0() + 6ms, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{7, 7}));
}

TEST(TimerWheel, NextDueExactWithinRevolutionCoarseBeyond) {
  TimerWheel w;
  w.reset(t0(), 1ms);

  // Within the level-0 revolution next_due is exact.
  const auto near = w.schedule(t0() + 10ms, 1);
  EXPECT_EQ(w.next_due(), t0() + 10ms);
  ASSERT_TRUE(w.cancel(near));

  // Beyond it, next_due is the next 64-tick cascade boundary: possibly
  // early (so the loop wakes, cascades, and re-evaluates) but never late.
  w.schedule(t0() + 1000ms, 2);
  const auto due = w.next_due();
  EXPECT_GT(due, t0());
  EXPECT_LE(due, t0() + 1000ms);
  EXPECT_EQ(due, t0() + 64ms);  // first boundary from tick 0
}

TEST(TimerWheel, CoarseBucketOverflowFiresAfterResow) {
  TimerWheel w;
  // Microsecond ticks keep the wall-clock spans tiny; only tick *counts*
  // matter to the wheel.
  w.reset(t0(), 1us);

  // `a` is past the 64^4-tick horizon: it parks in the overflow bucket and
  // is re-sown into the wheel when the top level wraps. `b` is past even
  // the first wrap and must survive the re-sow still pending.
  constexpr std::uint64_t kH = TimerWheel::kHorizon;
  w.schedule(t0() + std::chrono::microseconds(kH + 32), 11);
  const auto b = w.schedule(t0() + std::chrono::microseconds(2 * kH + 5), 22);
  EXPECT_EQ(w.pending(), 2u);
  // Nothing in the level-0 revolution: the estimate is the coarse boundary.
  EXPECT_EQ(w.next_due(), t0() + 64us);

  std::vector<std::uint64_t> fired;
  w.advance(t0() + std::chrono::microseconds(kH + 40), fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{11}));
  EXPECT_EQ(w.pending(), 1u);
  EXPECT_TRUE(w.cancel(b));
}

TEST(TimerWheel, ResetDropsPending) {
  TimerWheel w;
  w.reset(t0(), 1ms);
  w.schedule(t0() + 1ms, 1);
  w.schedule(t0() + 2ms, 2);
  w.reset(t0() + 10ms, 1ms);
  EXPECT_EQ(w.pending(), 0u);

  std::vector<std::uint64_t> fired;
  w.advance(t0() + 100ms, fired);
  EXPECT_TRUE(fired.empty());
}

}  // namespace
}  // namespace hpd::rt
