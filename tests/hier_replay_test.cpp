// The offline hierarchical replay (every level's reference) against the
// online hierarchical detector, the flat centralized replay, and itself
// under permuted tree shapes.
#include <gtest/gtest.h>

#include <algorithm>

#include "detect/offline/hier_replay.hpp"
#include "detect/offline/replay.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"

namespace hpd::detect::offline {
namespace {

std::vector<std::pair<ProcessId, SeqNum>> bases_of_members(
    const std::vector<Interval>& members) {
  std::vector<std::pair<ProcessId, SeqNum>> out;
  for (const Interval& m : members) {
    const auto b = base_intervals(m);
    out.insert(out.end(), b.begin(), b.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

runner::ExperimentConfig gossip_config(std::uint64_t seed, std::size_t rows,
                                       std::size_t cols) {
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(rows, cols);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 450.0;
  g.mean_gap = 3.0;
  g.p_send = 0.45;
  g.p_toggle = 0.35;
  g.max_intervals = 12;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = 470.0;
  cfg.drain = 80.0;
  cfg.seed = seed;
  cfg.record_execution = true;
  cfg.track_provenance = true;
  return cfg;
}

class HierReplayTest : public ::testing::TestWithParam<std::uint64_t> {};

// Per-NODE equivalence: every node's online occurrence sequence (as base
// interval sets) must equal the offline hierarchical replay's.
TEST_P(HierReplayTest, OnlineMatchesOfflineAtEveryNode) {
  const auto cfg = gossip_config(GetParam(), 2, 3);
  const auto res = runner::run_experiment(cfg);
  const auto ref = hier_replay(res.execution, cfg.tree);

  std::map<ProcessId, std::vector<std::vector<std::pair<ProcessId, SeqNum>>>>
      online;
  for (const auto& rec : res.occurrences) {
    online[rec.detector].push_back(bases_of_members(rec.solution));
  }
  for (std::size_t i = 0; i < cfg.tree.size(); ++i) {
    const auto id = static_cast<ProcessId>(i);
    std::vector<std::vector<std::pair<ProcessId, SeqNum>>> offline;
    auto it = ref.solutions.find(id);
    if (it != ref.solutions.end()) {
      for (const auto& sol : it->second) {
        offline.push_back(bases_of_members(sol.members));
      }
    }
    EXPECT_EQ(online[id], offline) << "node " << id;
  }
}

// The root level of the hierarchical replay must agree with the flat
// centralized replay (Theorem 1 / Lemma 1 in action, offline).
TEST_P(HierReplayTest, RootLevelMatchesFlatReplay) {
  const auto cfg = gossip_config(GetParam() ^ 0x5150, 2, 4);
  const auto res = runner::run_experiment(cfg);
  const auto hier = hier_replay(res.execution, cfg.tree);
  const auto flat = replay_centralized(res.execution);

  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> hier_root;
  auto it = hier.solutions.find(cfg.tree.root());
  if (it != hier.solutions.end()) {
    for (const auto& sol : it->second) {
      hier_root.push_back(bases_of_members(sol.members));
    }
  }
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> flat_sets;
  for (const auto& sol : flat) {
    std::vector<std::pair<ProcessId, SeqNum>> ids;
    for (const auto& m : sol.members) {
      ids.emplace_back(m.origin, m.seq);
    }
    std::sort(ids.begin(), ids.end());
    flat_sets.push_back(std::move(ids));
  }
  EXPECT_EQ(hier_root, flat_sets);
}

// Tree-shape independence: the ROOT occurrence sequence must not depend on
// which spanning tree organizes the detection (chains, stars, BFS trees
// from any root) — only the execution matters.
TEST_P(HierReplayTest, RootSequenceIsTreeShapeInvariant) {
  const auto cfg = gossip_config(GetParam() ^ 0xabc, 2, 3);
  const auto res = runner::run_experiment(cfg);
  const std::size_t n = res.execution.num_processes();

  auto root_sets = [&](const net::SpanningTree& tree) {
    const auto ref = hier_replay(res.execution, tree);
    std::vector<std::vector<std::pair<ProcessId, SeqNum>>> out;
    auto it = ref.solutions.find(tree.root());
    if (it != ref.solutions.end()) {
      for (const auto& sol : it->second) {
        out.push_back(bases_of_members(sol.members));
      }
    }
    return out;
  };

  // Chain 0-1-2-...
  std::vector<ProcessId> chain_parents(n, kNoProcess);
  for (std::size_t i = 1; i < n; ++i) {
    chain_parents[i] = static_cast<ProcessId>(i - 1);
  }
  const auto chain =
      net::SpanningTree::from_parents(chain_parents, 0);
  // Star rooted at n-1.
  std::vector<ProcessId> star_parents(n, static_cast<ProcessId>(n - 1));
  star_parents[n - 1] = kNoProcess;
  const auto star = net::SpanningTree::from_parents(
      star_parents, static_cast<ProcessId>(n - 1));

  const auto base = root_sets(cfg.tree);
  EXPECT_EQ(root_sets(chain), base);
  EXPECT_EQ(root_sets(star), base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierReplayTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(HierReplayTest, RejectsMismatchedSizes) {
  trace::ExecutionRecord exec;
  exec.procs.resize(3);
  const auto tree = net::SpanningTree::balanced_dary(2, 3);  // 7 nodes
  EXPECT_THROW(hier_replay(exec, tree), AssertionError);
}

}  // namespace
}  // namespace hpd::detect::offline
