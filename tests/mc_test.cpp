// The model checker's own test suite: sweep >= 1000 adversarial schedules
// across the three case families with zero oracle violations, then verify
// the checker's teeth — a deliberately broken prune rule must be caught,
// shrunk to a small repro, and survive a repro-file round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "common/assert.hpp"
#include "mc/checker.hpp"
#include "mc/mc_case.hpp"
#include "mc/repro.hpp"
#include "mc/shrink.hpp"

namespace hpd::mc {
namespace {

void report_failures(const ExploreStats& stats) {
  for (const auto& f : stats.failures) {
    ADD_FAILURE() << "case topology=" << f.c.topology << " workload="
                  << to_string(f.c.workload) << " strategy="
                  << to_string(f.c.strategy) << " seed=" << f.c.seed
                  << " violated:\n  " << f.violations.front()
                  << "\nrepro:\n" << to_repro(f.c);
  }
}

// ---- The sweep: >= 1000 schedules, zero violations -------------------------
// Split per family so a failure names its family, and ctest can parallelize.

TEST(McSweep, SeedSweepStrict) {
  const auto stats = explore(seed_sweep_cases(600, 42));
  EXPECT_EQ(stats.schedules, 600u);
  EXPECT_EQ(stats.failed, 0u);
  report_failures(stats);
}

TEST(McSweep, DelayBoundedAndPct) {
  const auto stats = explore(reorder_cases(250, 77));
  EXPECT_EQ(stats.schedules, 250u);
  EXPECT_EQ(stats.failed, 0u);
  report_failures(stats);
}

TEST(McSweep, FaultPlans) {
  const auto stats = explore(fault_cases(150, 99));
  EXPECT_EQ(stats.schedules, 150u);
  EXPECT_EQ(stats.failed, 0u);
  report_failures(stats);
}

// Bounded queues: legitimate missed detections, but the always-on stream
// oracles (indices, monotonicity, provenance, aggregate algebra) must hold.
TEST(McSweep, BoundedQueues) {
  auto cases = seed_sweep_cases(40, 1234);
  for (std::size_t k = 0; k < cases.size(); ++k) {
    cases[k].queue_capacity = 1 + k % 4;
  }
  const auto stats = explore(cases);
  EXPECT_EQ(stats.failed, 0u);
  report_failures(stats);
}

// ---- The checker has teeth -------------------------------------------------

/// A gossip family dense enough that the broken rule's over-pruning loses
/// solutions on a fair fraction of seeds.
McCase broken_prune_case(std::uint64_t seed) {
  McCase c;
  c.topology = "dary:2:2";
  c.workload = WorkloadKind::kGossip;
  c.horizon = 160.0;
  c.mean_gap = 3.0;
  c.p_send = 0.5;
  c.p_toggle = 0.45;
  c.max_intervals = 8;
  c.prune = detect::QueueEngine::PruneMode::kTestBrokenPruneAll;
  c.seed = seed;
  return c;
}

TEST(McTeeth, BrokenPruneIsCaughtAndShrunk) {
  // Deterministic seed scan: the broken rule must be caught quickly.
  McCase caught;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    caught = broken_prune_case(seed);
    found = !run_case(caught).ok();
  }
  ASSERT_TRUE(found) << "over-pruning survived 40 schedules undetected";

  // Its correct-rule twin must pass: the oracles blame the prune rule, not
  // the schedule.
  McCase fixed = caught;
  fixed.prune = detect::QueueEngine::PruneMode::kAllEq10;
  EXPECT_TRUE(run_case(fixed).ok());

  // Delta-debug to a small repro: the acceptance bar is <= 20 base
  // intervals in the minimized execution.
  const ShrinkResult min = shrink(caught);
  EXPECT_FALSE(min.violations.empty());
  EXPECT_LE(min.events, 20u) << to_repro(min.minimal);
  EXPECT_LE(min.runs, 200u);

  // The shrunk case round-trips through the repro format and still fails.
  const std::string path = testing::TempDir() + "mc_shrunk.repro";
  ASSERT_TRUE(save_repro(min.minimal, path));
  const McCase reloaded = load_repro(path);
  const RunOutcome replay = run_case(reloaded);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.violations, min.violations);
  std::remove(path.c_str());
}

/// A slicing-engine twin of broken_prune_case: the same dense gossip
/// family, judged by the sink with the deliberately wrong join-irreducible
/// computation (eager doom discards intervals whose pairing window merely
/// CLOSED, without checking it was empty — live solution members get
/// thrown away at admission).
McCase broken_slicing_case(std::uint64_t seed) {
  McCase c;
  c.topology = "dary:2:2";
  // A pulse workload makes solutions dense (one per round), and delay-
  // bounded reordering makes sink arrivals stale across rounds — exactly
  // the situation where eager doom throws away a live solution member.
  // (Under the baseline schedule arrivals track completion order closely
  // enough that the wrong rule almost never fires; the strategy sweep is
  // what gives the oracle its catch rate.)
  c.workload = WorkloadKind::kPulse;
  c.pulse_rounds = 8;
  c.pulse_period = 12.0;
  c.strategy = StrategyKind::kDelayBounded;
  c.delay_bound = 10.0;
  c.perturb_p = 0.7;
  c.engine = EngineKind::kTestBrokenSlicing;
  c.seed = seed;
  return c;
}

TEST(McTeeth, BrokenSlicingIsCaughtAndShrunk) {
  // Deterministic seed scan: the broken admission rule must be caught
  // quickly by the strict sink oracle (online vs offline replay).
  McCase caught;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    caught = broken_slicing_case(seed);
    found = !run_case(caught).ok();
  }
  ASSERT_TRUE(found) << "eager doom survived 40 schedules undetected";

  // The exact-rule twin passes the same schedule: the oracles blame the
  // slice computation, not the schedule or the sink plumbing.
  McCase fixed = caught;
  fixed.engine = EngineKind::kSlicing;
  EXPECT_TRUE(run_case(fixed).ok());

  // Delta-debug to a small repro. Pulse executions shrink in round quanta
  // (every live node contributes one interval per round, 7 per round on
  // dary:2:2), so the bar is 4 rounds' worth rather than the gossip teeth
  // test's 20 loose intervals.
  const ShrinkResult min = shrink(caught);
  EXPECT_FALSE(min.violations.empty());
  EXPECT_EQ(min.minimal.engine, EngineKind::kTestBrokenSlicing);
  EXPECT_LE(min.events, 28u) << to_repro(min.minimal);
  EXPECT_LE(min.runs, 200u);

  // The shrunk case round-trips through the repro format (including the
  // engine key) and still fails with the same violations.
  const std::string path = testing::TempDir() + "mc_broken_slicing.repro";
  ASSERT_TRUE(save_repro(min.minimal, path));
  const McCase reloaded = load_repro(path);
  EXPECT_EQ(reloaded.engine, EngineKind::kTestBrokenSlicing);
  const RunOutcome replay = run_case(reloaded);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.violations, min.violations);
  std::remove(path.c_str());
}

TEST(McTeeth, ShrinkerIsNoOpOnPassingCase) {
  McCase c = broken_prune_case(2);
  c.prune = detect::QueueEngine::PruneMode::kAllEq10;
  const ShrinkResult r = shrink(c);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.runs, 1u);
  EXPECT_EQ(r.minimal.topology, c.topology);
}

// ---- Repro format ----------------------------------------------------------

TEST(McRepro, RoundTripPreservesEveryField) {
  McCase c;
  c.topology = "grid:3x3";
  c.workload = WorkloadKind::kPulse;
  c.pulse_rounds = 11;
  c.pulse_period = 37.5;
  c.engine = EngineKind::kTestBrokenSlicing;
  c.prune = detect::QueueEngine::PruneMode::kSingleEq10;
  c.queue_capacity = 3;
  c.strategy = StrategyKind::kDelayBounded;
  c.delay_bound = 7.25;
  c.perturb_p = 0.625;
  c.crashes.push_back({120.0, 4});
  c.crashes.push_back({150.0, 7});
  c.recoveries.push_back({260.0, 4});
  c.drop_app_p = 0.125;
  c.dup_report_p = 0.0625;
  c.chaos_drop_p = 0.1875;
  c.chaos_dup_p = 0.09375;
  c.chaos_corrupt_p = 0.03125;
  c.chaos_reset_p = 0.015625;
  c.chaos_delay_p = 0.25;
  c.chaos_delay_max = 6.5;
  c.seed = 0xdeadbeefULL;

  const McCase back = parse_repro(to_repro(c));
  EXPECT_EQ(back.topology, c.topology);
  EXPECT_EQ(back.workload, c.workload);
  EXPECT_EQ(back.pulse_rounds, c.pulse_rounds);
  EXPECT_EQ(back.pulse_period, c.pulse_period);
  EXPECT_EQ(back.engine, c.engine);
  EXPECT_EQ(back.prune, c.prune);
  // Repros written before the engine key default to the hierarchical
  // detector, so old files keep replaying unchanged.
  EXPECT_EQ(parse_repro("hpd-mc-repro v1\nseed 3\n").engine,
            EngineKind::kHier);
  EXPECT_EQ(back.queue_capacity, c.queue_capacity);
  EXPECT_EQ(back.strategy, c.strategy);
  EXPECT_EQ(back.delay_bound, c.delay_bound);
  EXPECT_EQ(back.perturb_p, c.perturb_p);
  ASSERT_EQ(back.crashes.size(), 2u);
  EXPECT_EQ(back.crashes[1].node, 7);
  EXPECT_EQ(back.crashes[1].time, 150.0);
  ASSERT_EQ(back.recoveries.size(), 1u);
  EXPECT_EQ(back.recoveries[0].time, 260.0);
  EXPECT_EQ(back.drop_app_p, c.drop_app_p);
  EXPECT_EQ(back.dup_report_p, c.dup_report_p);
  EXPECT_EQ(back.chaos_drop_p, c.chaos_drop_p);
  EXPECT_EQ(back.chaos_dup_p, c.chaos_dup_p);
  EXPECT_EQ(back.chaos_corrupt_p, c.chaos_corrupt_p);
  EXPECT_EQ(back.chaos_reset_p, c.chaos_reset_p);
  EXPECT_EQ(back.chaos_delay_p, c.chaos_delay_p);
  EXPECT_EQ(back.chaos_delay_max, c.chaos_delay_max);
  EXPECT_TRUE(back.has_live_chaos());
  // Chaos is masked by the session layer: it must not demote the case out
  // of the strict differential tier.
  EXPECT_TRUE(McCase{}.strict());
  McCase strict_chaos;
  strict_chaos.chaos_drop_p = 0.5;
  EXPECT_TRUE(strict_chaos.strict());
  EXPECT_FALSE(strict_chaos.has_faults());
  EXPECT_EQ(back.seed, c.seed);
}

TEST(McRepro, RejectsGarbage) {
  EXPECT_THROW(parse_repro("not a repro\n"), AssertionError);
  EXPECT_THROW(parse_repro("hpd-mc-repro v1\nbogus_key 3\n"), AssertionError);
  EXPECT_THROW(parse_repro("hpd-mc-repro v1\nseed banana\n"), AssertionError);
  EXPECT_THROW(parse_repro("hpd-mc-repro v1\nengine banana\n"), AssertionError);
}

// ---- Strategy hook plumbing ------------------------------------------------

// The same case is bit-identical across runs (the strategy draws from the
// network RNG in schedule order, so (case, seed) fixes the execution)...
TEST(McDeterminism, SameCaseSameOutcome) {
  const McCase c = seed_sweep_cases(3, 5)[2];
  const RunOutcome a = run_case(c);
  const RunOutcome b = run_case(c);
  EXPECT_EQ(a.total_intervals, b.total_intervals);
  EXPECT_EQ(a.occurrences, b.occurrences);
  EXPECT_EQ(a.global_count, b.global_count);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

// ...and the strategies genuinely change the schedule: PCT lanes and
// delay-bounded perturbation must not be no-ops.
TEST(McDeterminism, StrategiesPerturbTheSchedule) {
  McCase base;
  base.topology = "dary:2:3";
  base.workload = WorkloadKind::kGossip;
  base.horizon = 120.0;
  base.seed = 9;

  McCase pct = base;
  pct.strategy = StrategyKind::kPct;
  pct.pct_lanes = 4;
  pct.pct_spread = 3.0;

  McCase delay = base;
  delay.strategy = StrategyKind::kDelayBounded;
  delay.delay_bound = 8.0;
  delay.perturb_p = 0.7;

  const RunOutcome a = run_case(base);
  const RunOutcome b = run_case(pct);
  const RunOutcome d = run_case(delay);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(d.ok());
  // Coarse counts can coincide (gossip toggles are timer-driven), but the
  // fingerprint digests detection times and event times, where a perturbed
  // delivery schedule must show up.
  EXPECT_NE(a.fingerprint, b.fingerprint)
      << "PCT lanes had no observable effect on the schedule";
  EXPECT_NE(a.fingerprint, d.fingerprint)
      << "delay-bounded perturbation had no observable effect";
  EXPECT_NE(b.fingerprint, d.fingerprint);
}

}  // namespace
}  // namespace hpd::mc
