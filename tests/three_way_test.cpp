// The three-way differential harness: the hierarchical detector, the
// centralized sink, and the computation-slicing sink must agree on the
// global occurrence sets of every schedule.
//
// Two engines agreeing could mean both share a bug; three independent
// implementations (tree aggregation, flat queue engine, slice-filtered
// queue engine) agreeing pins the semantics down. Family A runs every
// fault-free case ONLINE under each engine and anchors each engine's
// global sequence to the three OFFLINE references computed over that
// engine's own recorded execution — a true like-for-like comparison even
// though the engines' report traffic perturbs message schedules
// differently. Family B covers crash + reattach fault plans: the online
// run is hierarchical (the sink engines have no repair plane), and the
// three offline engines must still agree on what the recorded execution
// contained.
//
// On divergence the failing case is shrunk (mc/shrink) and the minimal
// repro is printed, ready for `hpd_sim --repro`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "detect/offline/hier_replay.hpp"
#include "detect/offline/par_replay.hpp"
#include "detect/offline/replay.hpp"
#include "detect/offline/slicing_replay.hpp"
#include "interval/interval.hpp"
#include "parallel/thread_pool.hpp"
#include "mc/checker.hpp"
#include "mc/repro.hpp"
#include "mc/shrink.hpp"
#include "mc/strategies.hpp"
#include "runner/experiment.hpp"

namespace hpd::mc {
namespace {

using BaseSet = std::vector<std::pair<ProcessId, SeqNum>>;

BaseSet bases_of(const std::vector<Interval>& members) {
  BaseSet out;
  for (const auto& m : members) {
    const auto part = base_intervals(m);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string show(const std::vector<BaseSet>& seq) {
  std::string out;
  for (const auto& bases : seq) {
    out += '{';
    for (std::size_t i = 0; i < bases.size(); ++i) {
      out += (i ? " P" : "P") + std::to_string(bases[i].first) + "#" +
             std::to_string(bases[i].second);
    }
    out += "} ";
  }
  return out;
}

struct EngineRun {
  std::vector<BaseSet> online_global;  ///< global detections, in order
  trace::ExecutionRecord execution;
};

EngineRun run_engine(const McCase& c) {
  auto cfg = build_case(c);
  CaseStrategy strategy(c);
  cfg.strategy = &strategy;
  const auto res = runner::run_experiment(cfg);
  EngineRun out;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      out.online_global.push_back(bases_of(rec.solution));
    }
  }
  out.execution = res.execution;
  return out;
}

/// The three offline engines over ONE execution. All are deterministic
/// functions of the execution (confluence), so any pairwise difference is
/// an implementation bug, never a scheduling artifact.
struct OfflineTriple {
  std::vector<BaseSet> hier_root;
  std::vector<BaseSet> central;
  std::vector<BaseSet> slicing;
};

/// Shared pool for the triple replays: every offline_triple() call fans
/// its hier/centralized/slicing legs across these workers (replay_triple
/// is bit-identical to the serial calls — see par_replay.hpp — so the
/// harness's oracle strength is unchanged, only its wall-clock).
parallel::ThreadPool& triple_pool() {
  static parallel::ThreadPool pool(3);
  return pool;
}

OfflineTriple offline_triple(const trace::ExecutionRecord& exec,
                             const McCase& c) {
  OfflineTriple out;
  const auto cfg = build_case(c);
  detect::offline::TripleOptions topt;
  topt.prune_mode = c.ground_truth_prune();
  const auto triple =
      detect::offline::replay_triple(exec, cfg.tree, topt, triple_pool());

  if (auto it = triple.hier.solutions.find(cfg.tree.root());
      it != triple.hier.solutions.end()) {
    for (const auto& sol : it->second) {
      out.hier_root.push_back(bases_of(sol.members));
    }
  }
  for (const auto& sol : triple.central) {
    out.central.push_back(bases_of(sol.members));
  }
  for (const auto& sol : triple.slicing.solutions) {
    out.slicing.push_back(bases_of(sol.members));
  }
  return out;
}

/// Shrink the diverging case and return a message with the minimal repro.
std::string divergence_report(const McCase& c, const std::string& what) {
  const auto sr = shrink(c);
  std::string out = "three-way divergence (" + what + ")\n";
  out += "  shrunk to " + std::to_string(sr.events) + " intervals in " +
         std::to_string(sr.runs) + " runs; repro:\n";
  out += to_repro(sr.minimal);
  return out;
}

// ---- Family A: fault-free schedules, all three engines online ---------------

class ThreeWayTest : public ::testing::Test {
 protected:
  /// Run the case online under `engine`, then check that the three offline
  /// references over its recorded execution agree with each other AND with
  /// the online global sequence. Returns false on divergence.
  bool check_engine(const McCase& base, EngineKind engine) {
    McCase c = base;
    c.engine = engine;
    const auto run = run_engine(c);
    const auto off = offline_triple(run.execution, c);
    const bool offline_agrees =
        off.hier_root == off.central && off.central == off.slicing;
    EXPECT_TRUE(offline_agrees) << divergence_report(
        c, std::string("offline engines disagree under online engine ") +
               to_string(engine) + "\n  hier:    " + show(off.hier_root) +
               "\n  central: " + show(off.central) +
               "\n  slicing: " + show(off.slicing));
    bool online_agrees = true;
    if (c.strict()) {  // faults / capacity legitimately lose detections
      online_agrees = run.online_global == off.central;
      EXPECT_TRUE(online_agrees) << divergence_report(
          c, std::string("online ") + to_string(engine) +
                 " diverges from offline reference\n  online:  " +
                 show(run.online_global) + "\n  offline: " +
                 show(off.central));
    }
    ++schedules_;
    return offline_agrees && online_agrees;
  }

  void sweep(const std::vector<McCase>& cases) {
    std::size_t divergences = 0;
    for (const auto& c : cases) {
      for (const EngineKind e :
           {EngineKind::kHier, EngineKind::kCentral, EngineKind::kSlicing}) {
        if (!check_engine(c, e)) {
          ++divergences;
        }
        if (divergences > 3) {
          FAIL() << "too many divergences; stopping the sweep early";
        }
      }
    }
    EXPECT_EQ(divergences, 0u);
  }

  std::size_t schedules_ = 0;
};

TEST_F(ThreeWayTest, SeedSweepSchedulesAgreeAcrossEngines) {
  sweep(seed_sweep_cases(220, 4242));
  EXPECT_EQ(schedules_, 660u);
}

TEST_F(ThreeWayTest, ReorderedSchedulesAgreeAcrossEngines) {
  // Delay-bounded and PCT reorderings plus benign chaos: per-engine report
  // traffic differs, so each engine sees its own schedule — the offline
  // triple anchors them all the same.
  sweep(reorder_cases(120, 7777));
  EXPECT_EQ(schedules_, 360u);
}

// ---- Family B: crash + reattach fault plans ---------------------------------

TEST_F(ThreeWayTest, FaultPlanExecutionsAgreeOffline) {
  // Online detection under crashes needs the hierarchical repair plane
  // (heartbeats + reattach), so the recorded executions come from kHier
  // runs; the three offline engines must still agree on every one of them,
  // crashes, recoveries, and all.
  const auto cases = fault_cases(60, 9999);
  std::size_t with_recovery = 0;
  for (const auto& c : cases) {
    ASSERT_EQ(c.engine, EngineKind::kHier);
    if (!c.recoveries.empty()) {
      ++with_recovery;
    }
    const auto run = run_engine(c);
    const auto off = offline_triple(run.execution, c);
    const bool agree =
        off.hier_root == off.central && off.central == off.slicing;
    EXPECT_TRUE(agree) << divergence_report(
        c, "offline engines disagree on a faulty execution\n  hier:    " +
               show(off.hier_root) + "\n  central: " + show(off.central) +
               "\n  slicing: " + show(off.slicing));
    if (!agree) {
      break;
    }
    ++schedules_;
  }
  EXPECT_EQ(schedules_, 60u);
  EXPECT_GT(with_recovery, 0u) << "family must include crash+reattach plans";
}

// ---- Shared arrival schedules -----------------------------------------------

TEST_F(ThreeWayTest, ShuffledReplaysStayInLockstep) {
  // replay_centralized and replay_slicing share arrival_order(), so under
  // ANY shuffle seed they see the identical schedule and must produce the
  // identical solution sequence — not just equal sets.
  const auto cases = seed_sweep_cases(8, 31337);
  for (const auto& c : cases) {
    const auto run = run_engine(c);
    for (std::uint64_t shuffle = 1; shuffle <= 5; ++shuffle) {
      detect::offline::ReplayOptions copt;
      copt.shuffle_seed = shuffle;
      detect::offline::SlicingReplayOptions sopt;
      sopt.shuffle_seed = shuffle;
      std::vector<BaseSet> central;
      for (const auto& sol :
           detect::offline::replay_centralized(run.execution, copt)) {
        central.push_back(bases_of(sol.members));
      }
      std::vector<BaseSet> slicing;
      for (const auto& sol :
           detect::offline::replay_slicing(run.execution, sopt).solutions) {
        slicing.push_back(bases_of(sol.members));
      }
      EXPECT_EQ(central, slicing) << "shuffle seed " << shuffle;
    }
  }
}

// ---- The oracle stack runs every new engine ---------------------------------

TEST_F(ThreeWayTest, OracleStackPassesSinkEngines) {
  // run_case() wires the sink engines into check_strict_sink; a clean
  // explore() here means the oracle integration itself holds on the same
  // families the checker sweeps for kHier.
  for (const EngineKind e : {EngineKind::kCentral, EngineKind::kSlicing}) {
    auto cases = seed_sweep_cases(60, 2026);
    for (auto& c : cases) {
      c.engine = e;
    }
    const auto stats = explore(cases);
    EXPECT_EQ(stats.failed, 0u) << "engine " << to_string(e);
    for (const auto& f : stats.failures) {
      ADD_FAILURE() << divergence_report(f.c, f.violations.front());
    }
  }
}

}  // namespace
}  // namespace hpd::mc
