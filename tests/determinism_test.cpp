// Seed determinism: a (config, seed) pair reproduces the experiment
// bit-identically — same occurrence stream field by field, same metrics,
// same recorded execution — and different seeds actually diverge. This is
// the property the model checker (mc/) and every repro file stand on.
#include <gtest/gtest.h>

#include <memory>

#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {
namespace {

runner::ExperimentConfig gossip_config(std::uint64_t seed) {
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 150.0;
  g.mean_gap = 3.0;
  g.p_send = 0.5;
  g.p_toggle = 0.4;
  g.max_intervals = 10;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = 170.0;
  cfg.drain = 80.0;
  cfg.track_provenance = true;
  cfg.record_execution = true;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const runner::ExperimentResult& a,
                      const runner::ExperimentResult& b) {
  // Occurrence streams, field by field.
  ASSERT_EQ(a.occurrences.size(), b.occurrences.size());
  for (std::size_t i = 0; i < a.occurrences.size(); ++i) {
    const auto& ra = a.occurrences[i];
    const auto& rb = b.occurrences[i];
    EXPECT_EQ(ra.detector, rb.detector) << "record " << i;
    EXPECT_EQ(ra.index, rb.index) << "record " << i;
    EXPECT_EQ(ra.time, rb.time) << "record " << i;
    EXPECT_EQ(ra.latest_member_completion, rb.latest_member_completion);
    EXPECT_EQ(ra.global, rb.global) << "record " << i;
    EXPECT_EQ(ra.aggregate.lo, rb.aggregate.lo) << "record " << i;
    EXPECT_EQ(ra.aggregate.hi, rb.aggregate.hi) << "record " << i;
    EXPECT_EQ(ra.aggregate.seq, rb.aggregate.seq) << "record " << i;
    EXPECT_EQ(ra.aggregate.weight, rb.aggregate.weight) << "record " << i;
    ASSERT_EQ(ra.solution.size(), rb.solution.size()) << "record " << i;
    for (std::size_t m = 0; m < ra.solution.size(); ++m) {
      EXPECT_EQ(ra.solution[m].origin, rb.solution[m].origin);
      EXPECT_EQ(ra.solution[m].seq, rb.solution[m].seq);
      EXPECT_EQ(ra.solution[m].lo, rb.solution[m].lo);
      EXPECT_EQ(ra.solution[m].hi, rb.solution[m].hi);
    }
  }

  // Counters and cost metrics.
  EXPECT_EQ(a.global_count, b.global_count);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.metrics.msgs_total(), b.metrics.msgs_total());
  EXPECT_EQ(a.metrics.total_vc_comparisons(), b.metrics.total_vc_comparisons());
  EXPECT_EQ(a.metrics.total_detections(), b.metrics.total_detections());

  // The recorded executions agree event by event.
  ASSERT_EQ(a.execution.procs.size(), b.execution.procs.size());
  for (std::size_t p = 0; p < a.execution.procs.size(); ++p) {
    const auto& pa = a.execution.procs[p];
    const auto& pb = b.execution.procs[p];
    ASSERT_EQ(pa.events.size(), pb.events.size()) << "process " << p;
    for (std::size_t e = 0; e < pa.events.size(); ++e) {
      EXPECT_EQ(pa.events[e].kind, pb.events[e].kind);
      EXPECT_EQ(pa.events[e].time, pb.events[e].time);
      EXPECT_EQ(pa.events[e].vc, pb.events[e].vc);
      EXPECT_EQ(pa.events[e].predicate_after, pb.events[e].predicate_after);
    }
    ASSERT_EQ(pa.intervals.size(), pb.intervals.size()) << "process " << p;
  }
}

TEST(Determinism, IdenticalSeedIdenticalRun) {
  const auto a = runner::run_experiment(gossip_config(314159));
  const auto b = runner::run_experiment(gossip_config(314159));
  ASSERT_FALSE(a.occurrences.empty()) << "workload produced no detections";
  expect_identical(a, b);
}

TEST(Determinism, HoldsUnderFailuresToo) {
  auto make = [] {
    auto cfg = gossip_config(271828);
    cfg.heartbeats = true;
    cfg.failures.push_back({60.0, 4});
    return cfg;
  };
  expect_identical(runner::run_experiment(make()),
                   runner::run_experiment(make()));
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = runner::run_experiment(gossip_config(1));
  const auto b = runner::run_experiment(gossip_config(2));
  // Any of these differing proves divergence; all equal would mean the seed
  // is ignored somewhere in the stack.
  const bool diverged = a.occurrences.size() != b.occurrences.size() ||
                        a.sim_events != b.sim_events ||
                        a.metrics.msgs_total() != b.metrics.msgs_total() ||
                        a.execution.total_events() !=
                            b.execution.total_events();
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace hpd
