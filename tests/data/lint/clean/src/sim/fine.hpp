// Fixture: a clean file full of near-misses — every banned token appears
// only in a comment or string literal, where the linter must not look.
// Mentions: rand() in prose, std::mutex in prose, htons( in prose.
#pragma once

#include <string>

namespace hpd::sim {

// TODO(#42): tracked TODOs with an issue reference are fine.
inline std::string fine() {
  return "strings may say std::mutex, htons(, rand(), steady_clock";
}

/* block comments may say std::random_device and std::thread too */
inline int fine_time(int time_budget) { return time_budget; }

}  // namespace hpd::sim
