#pragma once
// Fixture: a reactor file the reactor-nonblocking rule must NOT flag.
// Banned tokens in prose are fine: usleep( and ::poll( and ::recv( here
// are commentary, not calls. epoll_wait is the sanctioned block point.
namespace hpd::rt {

struct FakeClock {
  void sleep_until(long t);  // member named like the banned sleep family
};

inline void driver_pace(FakeClock& c, long t) {
  // Member calls are exempt: this is driver-side pacing, not a worker
  // blocking primitive.
  c.sleep_until(t);
}

inline const char* help_text() {
  return "never call ::select( or nanosleep( in a worker";
}

}  // namespace hpd::rt
