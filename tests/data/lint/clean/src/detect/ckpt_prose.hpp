#pragma once

// Prose mentioning the confined serialization surface must not trip the
// ckpt-serialization rule: wire::Encoder, wire::Decoder, and
// encode_checkpoint_file( / decode_checkpoint_file( live in comments here.
inline const char* ckpt_doc() {
  return "snapshots are encoded by wire::Encoder inside src/ckpt; "
         "put_interval_full( is private to that module";
}
