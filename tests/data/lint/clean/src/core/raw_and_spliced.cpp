// Regression fixture for the comment/string blanker: every banned token
// below lives inside a raw string literal (including encoding-prefixed
// ones, whose inner unescaped quotes must not end the literal early) or
// behind a backslash-spliced line comment. None of it is code.
namespace demo {

const char* plain = R"(std::random_device inside a raw string)";
const wchar_t* prefixed = LR"(quote " then std::chrono::system_clock leaks?)";
const char* encoded = u8R"x(srand( rand( ::time( " gettimeofday()x";
// this comment continues onto the next physical line \
std::this_thread::sleep_for(std::chrono::seconds(1));
// and a spliced one hiding entropy \
std::random_device hidden_by_splice;

int counter = 0;

}  // namespace demo
