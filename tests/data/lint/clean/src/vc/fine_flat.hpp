// Fixture: hot-path module whose only std::map< / std::set< / std::deque<
// appearances live in comments and strings — hot-path-containers must not
// fire here.
#pragma once

#include <string>

namespace hpd {

// The flattened engine replaced std::map<ProcessId, std::deque<Interval>>
// and the std::set<ProcessId> worklists with dense slots and bitmaps.
inline std::string fine_flat() {
  return "prose may say std::map<k,v>, std::set<k>, std::deque<v>";
}

}  // namespace hpd
