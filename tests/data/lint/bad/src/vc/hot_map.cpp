// Fixture: node-based container inside a hot-path module.
#include <map>

namespace hpd {

// hot-path-containers must flag this (the mention in this comment of
// std::map<int, int> must NOT count — comments are stripped).
std::map<int, int> cache;

}  // namespace hpd
