// Fixture: wall clock + libc randomness in sim-side code (rule `determinism`).
#include <chrono>
#include <cstdlib>

namespace hpd::core {

double bad_now() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count()) +
         static_cast<double>(rand());
}

}  // namespace hpd::core
