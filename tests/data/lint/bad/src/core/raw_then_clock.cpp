// The raw strings must neither swallow the genuine violation after them
// nor shift its line number.
namespace demo {

const char* ok = R"delim(std::random_device hidden)delim";
const wchar_t* w = LR"(inner " quote hidden)";

long tick() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace demo
