// Fixture: naked std::mutex outside the annotated wrappers
// (rule `raw-concurrency`).
#include <mutex>

namespace hpd {

std::mutex g_bad_mutex;

void bad_locked() { std::lock_guard<std::mutex> lock(g_bad_mutex); }

}  // namespace hpd
