// Fixture: vendor SIMD intrinsics header outside src/vc/simd.*.
//
// The mention of <immintrin.h> in this comment must NOT count — only the
// real include below (and the <arm_neon.h> one after it) may fire.
#include <immintrin.h>

#include <arm_neon.h>

namespace hpd {

int use_intrinsics_directly;

}  // namespace hpd
