// Fixture: namespace pollution (rule `using-namespace`).
#include <string>

using namespace std;

namespace hpd::analysis {
string bad_name() { return "x"; }
}  // namespace hpd::analysis
