// Fixture for rule `pragma-once`: a header missing its include guard.
namespace hpd::net {
inline int bad_guardless() { return 1; }
}  // namespace hpd::net
