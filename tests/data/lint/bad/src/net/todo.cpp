// Fixture for rule `todo-issue`: untracked work markers.

// TODO: tighten this bound later
// FIXME this is broken under churn
namespace hpd::net {}
