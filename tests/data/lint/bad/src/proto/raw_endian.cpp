// Fixture: byte-order conversion outside wire/ (rule `wire-endianness`).
#include <arpa/inet.h>
#include <cstdint>

namespace hpd::proto {

std::uint16_t bad_swap(std::uint16_t v) { return htons(v); }

}  // namespace hpd::proto
