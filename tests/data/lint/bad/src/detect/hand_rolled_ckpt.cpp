// Deliberate ckpt-serialization violations: a detect-module file
// hand-rolling durable bytes with the raw wire codec (line 8) and calling
// the ckpt-private checkpoint container codec (line 9).
#include "wire/codec.hpp"

namespace hpd::detect {

void persist() { wire::Encoder e(wire::WireFormat::kDelta); }
void load() { decode_checkpoint_file({}); }

}  // namespace hpd::detect
