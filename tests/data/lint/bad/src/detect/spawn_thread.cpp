// Fixture: thread spawning outside rt/ and parallel/ (rule `raw-concurrency`).
#include <thread>

namespace hpd::detect {

void bad_spawn() {
  std::thread t([] {});
  t.join();
}

}  // namespace hpd::detect
