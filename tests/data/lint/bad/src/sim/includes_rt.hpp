// Fixture: sim must never reach into the live runtime (rule `layering`).
#pragma once

#include "rt/bounded_queue.hpp"
