// Fixture: blocking calls inside the reactor event-loop directory. A
// worker thread hosts many nodes; anything that blocks outside epoll_wait
// stalls all of them (reactor-nonblocking).
namespace hpd::rt {
void worker_turn(int fd) {
  usleep(1000);
  ::poll(nullptr, 0, 50);
  ::recv(fd, nullptr, 0, 0);
}
}  // namespace hpd::rt
