// Both paths take mu_a before mu_b: a consistent order, no cycle.
namespace demo {

struct Shards {
  int mu_a;
  int mu_b;
};

void rebalance(Shards& s) {
  MutexLock hold_a(s.mu_a);
  MutexLock hold_b(s.mu_b);
}

void compact_impl(Shards& s) {
  MutexLock hold_a(s.mu_a);
  MutexLock hold_b(s.mu_b);
}

}  // namespace demo
