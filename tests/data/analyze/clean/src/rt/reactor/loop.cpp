// Clean twin of the bad fixture: the helper chain never blocks, the
// one blocking helper is behind a justified allowlist barrier.
namespace demo {

class EventLoop {
 public:
  void run();
};

namespace helpers {
void pump();
void pace();
}

void EventLoop::run() {
  helpers::pump();
  helpers::pace();
}

}  // namespace demo
