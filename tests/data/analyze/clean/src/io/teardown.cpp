// The flush status is consumed — both the tested and the void-cast forms
// must stay quiet.
namespace demo {

struct Conn {
  int flush();
};

int teardown(Conn& c) {
  if (c.flush() != 0) {
    return 1;
  }
  (void)c.flush();
  return 0;
}

}  // namespace demo
