// pump() stays nonblocking; pace() blocks by design and is allowlisted
// as a traversal barrier in rules.txt.
namespace demo::helpers {

int ready_count = 0;

void wait_ready() {
  ++ready_count;
}

void pump() { wait_ready(); }

void pace() {
  ::poll(nullptr, 0, 10);
}

}  // namespace demo::helpers
