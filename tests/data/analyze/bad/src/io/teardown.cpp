// Discards the status result of a flush API at statement position.
namespace demo {

struct Conn {
  int flush();
};

void teardown(Conn& c) {
  c.flush();
}

}  // namespace demo
