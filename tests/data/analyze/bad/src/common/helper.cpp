// The blocking call sits outside src/rt/reactor/, reached only
// transitively: run -> pump -> wait_ready -> ::poll.
namespace demo::helpers {

void wait_ready() {
  ::poll(nullptr, 0, -1);
}

void pump() { wait_ready(); }

}  // namespace demo::helpers
