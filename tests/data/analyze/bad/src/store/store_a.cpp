// Takes mu_a then mu_b; store_b.cpp takes them in the opposite order —
// a lock-order cycle split across translation units.
namespace demo {

struct Shards {
  int mu_a;
  int mu_b;
};

void rebalance(Shards& s) {
  MutexLock hold_a(s.mu_a);
  MutexLock hold_b(s.mu_b);
}

}  // namespace demo
