// The other half of the cycle: mu_b before mu_a.
namespace demo {

struct Shards;

void compact(Shards& s);

void compact_impl(Shards& s) {
  MutexLock hold_b(s.mu_b);
  MutexLock hold_a(s.mu_a);
}

}  // namespace demo
