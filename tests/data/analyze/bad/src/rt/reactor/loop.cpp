// The event-loop entry point. Nothing here blocks — the violation hides
// two call-graph hops away, in a helper outside the reactor directory.
namespace demo {

class EventLoop {
 public:
  void run();
};

namespace helpers {
void pump();
}

void EventLoop::run() { helpers::pump(); }

}  // namespace demo
