#include <gtest/gtest.h>

#include <vector>

#include "core/hier_engine.hpp"

namespace hpd::core {
namespace {

Interval iv(ProcessId origin, SeqNum seq, VectorClock lo, VectorClock hi) {
  Interval x;
  x.origin = origin;
  x.seq = seq;
  x.lo = std::move(lo);
  x.hi = std::move(hi);
  return x;
}

/// Harness capturing a node engine's outputs.
struct Harness {
  explicit Harness(ProcessId self, bool has_parent) {
    HierNodeEngine::Config cfg;
    cfg.self = self;
    cfg.has_parent = has_parent;
    HierNodeEngine::Hooks hooks;
    hooks.send_report = [this](const Interval& x) { sent.push_back(x); };
    hooks.on_occurrence = [this](const detect::OccurrenceRecord& r) {
      occurrences.push_back(r);
    };
    hooks.now = [this] { return clock; };
    engine.emplace(cfg, std::move(hooks));
  }

  std::optional<HierNodeEngine> engine;
  std::vector<Interval> sent;
  std::vector<detect::OccurrenceRecord> occurrences;
  SimTime clock = 0.0;
};

TEST(HierEngineTest, LeafForwardsEveryLocalInterval) {
  Harness h(3, /*has_parent=*/true);
  EXPECT_TRUE(h.engine->is_leaf());
  h.engine->local_interval(iv(3, 1, {0, 0, 0, 1}, {0, 0, 0, 2}));
  h.engine->local_interval(iv(3, 2, {0, 0, 0, 3}, {0, 0, 0, 4}));
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.sent[0].origin, 3);
  EXPECT_EQ(h.sent[0].seq, 1u);
  EXPECT_EQ(h.sent[1].seq, 2u);
  EXPECT_TRUE(h.sent[0].aggregated);
  // The aggregate of a single interval preserves its bounds.
  EXPECT_EQ(h.sent[0].lo, (VectorClock{0, 0, 0, 1}));
  EXPECT_EQ(h.sent[0].hi, (VectorClock{0, 0, 0, 2}));
  // Leaf occurrences are subtree-level, not global.
  ASSERT_EQ(h.occurrences.size(), 2u);
  EXPECT_FALSE(h.occurrences[0].global);
  EXPECT_EQ(h.occurrences[1].index, 2u);
}

TEST(HierEngineTest, RootOccurrenceIsGlobal) {
  Harness h(0, /*has_parent=*/false);
  h.engine->local_interval(iv(0, 1, {1}, {2}));
  ASSERT_EQ(h.occurrences.size(), 1u);
  EXPECT_TRUE(h.occurrences[0].global);
  EXPECT_TRUE(h.sent.empty());
}

TEST(HierEngineTest, InternalNodeAggregatesChildAndLocal) {
  // Node 0 with child 1; system of 2 processes.
  Harness h(0, /*has_parent=*/true);
  h.engine->add_child(1, 1);
  EXPECT_FALSE(h.engine->is_leaf());
  EXPECT_EQ(h.engine->num_children(), 1u);
  h.clock = 5.0;
  h.engine->local_interval(iv(0, 1, {1, 0}, {3, 2}));
  EXPECT_TRUE(h.sent.empty());
  h.engine->child_report(1, iv(1, 1, {0, 1}, {2, 3}));
  ASSERT_EQ(h.sent.size(), 1u);
  const Interval& agg = h.sent[0];
  EXPECT_EQ(agg.lo, (VectorClock{1, 1}));
  EXPECT_EQ(agg.hi, (VectorClock{2, 2}));
  EXPECT_EQ(agg.origin, 0);
  EXPECT_EQ(agg.weight, 2u);
  ASSERT_EQ(h.occurrences.size(), 1u);
  EXPECT_DOUBLE_EQ(h.occurrences[0].time, 5.0);
  EXPECT_EQ(h.occurrences[0].solution.size(), 2u);
  EXPECT_EQ(h.engine->last_report()->seq, agg.seq);
}

TEST(HierEngineTest, OutOfOrderChildReportsReordered) {
  Harness h(0, /*has_parent=*/false);
  h.engine->add_child(1, 1);
  h.engine->local_interval(iv(0, 1, {1, 0}, {3, 2}));
  h.engine->local_interval(iv(0, 2, {4, 3}, {6, 9}));
  // Child's seq-2 report overtakes seq-1 (non-FIFO channel).
  h.engine->child_report(1, iv(1, 2, {4, 4}, {5, 8}));
  EXPECT_TRUE(h.occurrences.empty());  // held in the reorder buffer
  h.engine->child_report(1, iv(1, 1, {0, 1}, {2, 3}));
  // seq-1 pairs with local #1, then seq-2 with local #2.
  ASSERT_EQ(h.occurrences.size(), 2u);
  EXPECT_EQ(h.occurrences[0].solution[1].seq, 1u);
  EXPECT_EQ(h.occurrences[1].solution[1].seq, 2u);
}

TEST(HierEngineTest, ReportFromUnknownChildDropped) {
  Harness h(0, /*has_parent=*/false);
  h.engine->child_report(9, iv(9, 1, {0, 1}, {1, 2}));
  EXPECT_TRUE(h.occurrences.empty());
  EXPECT_EQ(h.engine->engine().offered(), 0u);
}

TEST(HierEngineTest, RemoveChildRechecksAndDetects) {
  // Three-party subtree: self 0, children 1 and 2. Child 2 never reports;
  // when it is removed, the waiting {local, child-1} pair completes.
  Harness h(0, /*has_parent=*/false);
  h.engine->add_child(1, 1);
  h.engine->add_child(2, 1);
  h.engine->local_interval(iv(0, 1, {1, 0, 0}, {3, 2, 2}));
  h.engine->child_report(1, iv(1, 1, {0, 1, 0}, {2, 3, 2}));
  EXPECT_TRUE(h.occurrences.empty());
  h.engine->remove_child(2);
  ASSERT_EQ(h.occurrences.size(), 1u);
  EXPECT_EQ(h.occurrences[0].solution.size(), 2u);
  EXPECT_EQ(h.engine->num_children(), 1u);
}

TEST(HierEngineTest, ResendLastReport) {
  Harness h(0, /*has_parent=*/true);
  h.engine->local_interval(iv(0, 1, {1}, {2}));
  ASSERT_EQ(h.sent.size(), 1u);
  h.engine->resend_last_report();
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.sent[0].seq, h.sent[1].seq);
  EXPECT_EQ(h.engine->next_report_seq(), 2u);
}

TEST(HierEngineTest, ResendWithoutHistoryIsNoop) {
  Harness h(0, /*has_parent=*/true);
  h.engine->resend_last_report();
  EXPECT_TRUE(h.sent.empty());
}

TEST(HierEngineTest, EnsureChildIsIdempotent) {
  Harness h(0, /*has_parent=*/false);
  h.engine->ensure_child(1, 1);
  h.engine->ensure_child(1, 5);  // re-adoption resets the expected seq
  EXPECT_TRUE(h.engine->has_child(1));
  h.engine->local_interval(iv(0, 1, {1, 0}, {6, 5}));
  h.engine->child_report(1, iv(1, 4, {0, 1}, {1, 2}));  // stale: dropped
  EXPECT_TRUE(h.occurrences.empty());
  h.engine->child_report(1, iv(1, 5, {0, 1}, {2, 9}));
  EXPECT_EQ(h.occurrences.size(), 1u);
}

TEST(HierEngineTest, BecomingRootFlipsGlobalFlag) {
  Harness h(0, /*has_parent=*/true);
  h.engine->local_interval(iv(0, 1, {1}, {2}));
  EXPECT_FALSE(h.occurrences[0].global);
  h.engine->set_has_parent(false);
  h.engine->local_interval(iv(0, 2, {3}, {4}));
  ASSERT_EQ(h.occurrences.size(), 2u);
  EXPECT_TRUE(h.occurrences[1].global);
  EXPECT_EQ(h.sent.size(), 1u);  // roots do not report upward
}

TEST(HierEngineTest, AggregateSequencesAreSuccessors) {
  // Theorem 2: consecutive aggregates generated at one node are totally
  // ordered by succ (max of the earlier < min of the later).
  Harness h(0, /*has_parent=*/true);
  h.engine->add_child(1, 1);
  // Round 1.
  h.engine->local_interval(iv(0, 1, {1, 0}, {3, 2}));
  h.engine->child_report(1, iv(1, 1, {0, 1}, {2, 3}));
  // Round 2, causally after round 1.
  h.engine->local_interval(iv(0, 2, {5, 4}, {7, 6}));
  h.engine->child_report(1, iv(1, 2, {4, 5}, {6, 7}));
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_TRUE(is_successor(h.sent[0], h.sent[1]));
}

}  // namespace
}  // namespace hpd::core
