// Crash-recovery tests: a dead node rejoins as a fresh leaf and the
// conjunction re-covers it (an extension of the paper's crash-stop model).
#include <gtest/gtest.h>

#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd::runner {
namespace {

ExperimentConfig grid_pulse(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(3, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::PulseConfig pc;
  pc.rounds = 16;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 1550.0;
  cfg.drain = 250.0;
  cfg.seed = seed;
  cfg.occurrence_solutions = false;
  return cfg;
}

class RecoveryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryTest, RevivedNodeRejoinsAndCoverageReturns) {
  auto cfg = grid_pulse(GetParam());
  cfg.heartbeats = true;
  cfg.failures.push_back(FailureEvent{300.0, 4});    // interior node dies
  cfg.recoveries.push_back(FailureEvent{800.0, 4});  // ... and comes back
  const ExperimentResult res = run_experiment(cfg);

  // The node ends alive and attached; one tree overall.
  EXPECT_TRUE(res.final_alive[4]);
  std::size_t roots = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    if (res.final_parents[i] == kNoProcess) {
      ++roots;
    } else {
      EXPECT_TRUE(res.final_alive[idx(res.final_parents[i])]);
    }
  }
  EXPECT_EQ(roots, 1u);

  // Coverage story via the occurrence weights: full (9) early, partial (8)
  // while dead, full again well after the revival.
  bool full_before = false;
  bool partial_during = false;
  bool full_after = false;
  for (const auto& rec : res.occurrences) {
    if (!rec.global) {
      continue;
    }
    if (rec.time < 290.0 && rec.aggregate.weight == 9) {
      full_before = true;
    }
    if (rec.time > 400.0 && rec.time < 790.0 && rec.aggregate.weight == 8) {
      partial_during = true;
    }
    if (rec.time > 1000.0 && rec.aggregate.weight == 9) {
      full_after = true;
    }
  }
  EXPECT_TRUE(full_before);
  EXPECT_TRUE(partial_during);
  EXPECT_TRUE(full_after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryTest, ::testing::Values(1u, 2u, 3u));

TEST(RecoveryTest, CentralizedModeResumesReporting) {
  auto cfg = grid_pulse(9);
  cfg.occurrence_solutions = true;  // the assertion reads solution sizes
  cfg.detector = DetectorKind::kCentralized;
  // A leaf of the BFS tree (so relaying for others is unaffected).
  const ProcessId leaf = [&] {
    for (std::size_t i = 1; i < 9; ++i) {
      if (cfg.tree.is_leaf(static_cast<ProcessId>(i))) {
        return static_cast<ProcessId>(i);
      }
    }
    return ProcessId{8};
  }();
  cfg.failures.push_back(FailureEvent{300.0, leaf});
  cfg.recoveries.push_back(FailureEvent{800.0, leaf});
  const ExperimentResult res = run_experiment(cfg);
  // The sink stalls while the leaf is dead (no failure handling in the
  // baseline) but resumes once the leaf reports again: detections late in
  // the run exist and cover all 9 processes.
  bool full_after = false;
  for (const auto& rec : res.occurrences) {
    if (rec.global && rec.time > 1000.0 && rec.solution.size() == 9) {
      full_after = true;
    }
  }
  EXPECT_TRUE(full_after);
}

TEST(RecoveryTest, PartitionHealsWhenBridgeRecovers) {
  // Dumbbell: two 4-cliques joined only through node 8. Killing 8 splits
  // the system into two detecting partitions; reviving 8 must re-unify
  // them — the revived bridge attaches to one side, and the other side's
  // partition root merges under it (root-merge probing).
  const std::size_t side = 4;
  net::Topology topo(2 * side + 1);
  const auto bridge = static_cast<ProcessId>(2 * side);
  for (std::size_t a = 0; a < side; ++a) {
    for (std::size_t b = a + 1; b < side; ++b) {
      topo.add_edge(static_cast<ProcessId>(a), static_cast<ProcessId>(b));
      topo.add_edge(static_cast<ProcessId>(side + a),
                    static_cast<ProcessId>(side + b));
    }
  }
  topo.add_edge(bridge, 0);
  topo.add_edge(bridge, static_cast<ProcessId>(side));

  ExperimentConfig cfg;
  cfg.topology = topo;
  cfg.tree = net::SpanningTree::bfs_tree(topo, bridge);
  trace::PulseConfig pc;
  pc.rounds = 18;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 1750.0;
  cfg.drain = 300.0;
  cfg.heartbeats = true;
  cfg.failures.push_back(FailureEvent{250.0, bridge});
  cfg.recoveries.push_back(FailureEvent{700.0, bridge});
  cfg.seed = 21;
  cfg.occurrence_solutions = false;

  const ExperimentResult res = run_experiment(cfg);

  // One tree again at the end.
  std::size_t roots = 0;
  for (std::size_t i = 0; i < res.final_parents.size(); ++i) {
    roots += (res.final_parents[i] == kNoProcess) ? 1u : 0u;
  }
  EXPECT_EQ(roots, 1u);

  // Partial detection on both sides while split; full coverage (9) again
  // well after the healing.
  bool split_detection = false;
  bool full_after = false;
  for (const auto& rec : res.occurrences) {
    if (!rec.global) {
      continue;
    }
    if (rec.time > 350.0 && rec.time < 680.0 && rec.aggregate.weight == 4) {
      split_detection = true;
    }
    if (rec.time > 1100.0 && rec.aggregate.weight == 9) {
      full_after = true;
    }
  }
  EXPECT_TRUE(split_detection);
  EXPECT_TRUE(full_after);
}

TEST(RecoveryTest, RevivedNodePrefersTheCanonicalTree) {
  // Node 2's only link is through node 1. When 1 dies, 2 heads a singleton
  // partition. When 1 revives it sees two trees: the tiny one rooted at 2
  // (depth 0 — "nearer") and the main tree rooted at 0. It must join the
  // canonical (smallest-root-id) tree, or 2's partition could never merge:
  // 2's own merge probes only reach 1.
  net::Topology topo(5);
  topo.add_edge(0, 3);
  topo.add_edge(0, 4);
  topo.add_edge(3, 4);
  topo.add_edge(1, 0);
  topo.add_edge(1, 3);
  topo.add_edge(2, 1);  // 2's only link
  std::vector<ProcessId> parents = {kNoProcess, 0, 1, 0, 3};
  ExperimentConfig cfg;
  cfg.topology = topo;
  cfg.tree = net::SpanningTree::from_parents(parents, 0);
  trace::PulseConfig pc;
  pc.rounds = 12;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 1200.0;
  cfg.drain = 250.0;
  cfg.heartbeats = true;
  cfg.failures.push_back(FailureEvent{200.0, 1});
  cfg.recoveries.push_back(FailureEvent{500.0, 1});
  cfg.seed = 31;
  cfg.occurrence_solutions = false;

  const ExperimentResult res = run_experiment(cfg);
  // Single tree, rooted at 0, with 1 back under the main tree and 2's
  // partition merged through it.
  EXPECT_EQ(res.final_parents[0], kNoProcess);
  for (ProcessId i : {1, 2, 3, 4}) {
    EXPECT_NE(res.final_parents[idx(i)], kNoProcess) << "node " << i;
  }
  // Full 5-process coverage returns after the healing.
  bool full_after = false;
  for (const auto& rec : res.occurrences) {
    if (rec.global && rec.time > 800.0 && rec.aggregate.weight == 5) {
      full_after = true;
    }
  }
  EXPECT_TRUE(full_after);
}

TEST(RecoveryTest, ReviveWithoutCrashIsRejected) {
  auto cfg = grid_pulse(5);
  cfg.recoveries.push_back(FailureEvent{100.0, 2});  // never crashed
  EXPECT_THROW(run_experiment(cfg), AssertionError);
}

TEST(RecoveryTest, RepeatedCrashRecoveryCycles) {
  auto cfg = grid_pulse(12);
  cfg.heartbeats = true;
  cfg.failures.push_back(FailureEvent{250.0, 7});
  cfg.recoveries.push_back(FailureEvent{550.0, 7});
  cfg.failures.push_back(FailureEvent{850.0, 7});
  cfg.recoveries.push_back(FailureEvent{1150.0, 7});
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_TRUE(res.final_alive[7]);
  // The twice-revived node is attached again at the end.
  bool attached = res.final_parents[7] != kNoProcess;
  for (std::size_t i = 0; i < 9; ++i) {
    if (res.final_parents[i] != kNoProcess) {
      EXPECT_TRUE(res.final_alive[idx(res.final_parents[i])]);
    }
  }
  EXPECT_TRUE(attached);
  EXPECT_GT(res.global_count, 0u);
}

}  // namespace
}  // namespace hpd::runner
