#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {
namespace {

TEST(VectorClockTest, ZeroConstruction) {
  VectorClock v(4);
  EXPECT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[i], 0u);
  }
}

TEST(VectorClockTest, TickAdvancesOwnComponent) {
  VectorClock v(3);
  v.tick(1);
  v.tick(1);
  v.tick(2);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v[2], 1u);
}

TEST(VectorClockTest, MergeIsComponentwiseMax) {
  VectorClock a{3, 0, 5};
  VectorClock b{1, 4, 2};
  a.merge(b);
  EXPECT_EQ(a, (VectorClock{3, 4, 5}));
}

TEST(VectorClockTest, MergeSizeMismatchThrows) {
  VectorClock a(3);
  VectorClock b(2);
  EXPECT_THROW(a.merge(b), AssertionError);
}

TEST(VectorClockTest, CompareAllCases) {
  EXPECT_EQ(compare({1, 2}, {1, 2}), Ordering::kEqual);
  EXPECT_EQ(compare({1, 2}, {1, 3}), Ordering::kBefore);
  EXPECT_EQ(compare({2, 3}, {1, 3}), Ordering::kAfter);
  EXPECT_EQ(compare({1, 2}, {2, 1}), Ordering::kConcurrent);
}

TEST(VectorClockTest, LessIsStrict) {
  EXPECT_FALSE(vc_less({1, 2}, {1, 2}));
  EXPECT_TRUE(vc_less({1, 2}, {1, 3}));
  EXPECT_TRUE(vc_leq({1, 2}, {1, 2}));
  EXPECT_FALSE(vc_leq({1, 2}, {0, 9}));
}

TEST(VectorClockTest, ConcurrentSymmetric) {
  EXPECT_TRUE(vc_concurrent({1, 0}, {0, 1}));
  EXPECT_TRUE(vc_concurrent({0, 1}, {1, 0}));
  EXPECT_FALSE(vc_concurrent({1, 1}, {1, 1}));
}

TEST(VectorClockTest, EmptyCompareThrows) {
  VectorClock a;
  VectorClock b;
  EXPECT_THROW(compare(a, b), AssertionError);
}

TEST(VectorClockTest, MinMaxLattice) {
  VectorClock a{3, 0, 5};
  VectorClock b{1, 4, 2};
  EXPECT_EQ(component_max(a, b), (VectorClock{3, 4, 5}));
  EXPECT_EQ(component_min(a, b), (VectorClock{1, 0, 2}));
}

TEST(VectorClockTest, ToStringFormat) {
  VectorClock a{1, 2, 3};
  EXPECT_EQ(a.to_string(), "(1,2,3)");
}

TEST(VectorClockTest, TotalSums) {
  VectorClock a{1, 2, 3};
  EXPECT_EQ(a.total(), 6u);
}

// ---- Property tests over random clocks ------------------------------------

class VcPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  VectorClock random_clock(Rng& rng, std::size_t n) {
    VectorClock v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<ClockValue>(rng.uniform_int(0, 4));
    }
    return v;
  }
};

TEST_P(VcPropertyTest, OrderIsAntisymmetricAndTransitive) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 1 + rng.uniform_index(5);
    const VectorClock a = random_clock(rng, n);
    const VectorClock b = random_clock(rng, n);
    const VectorClock c = random_clock(rng, n);
    // Antisymmetry.
    EXPECT_FALSE(vc_less(a, b) && vc_less(b, a));
    // Transitivity.
    if (vc_less(a, b) && vc_less(b, c)) {
      EXPECT_TRUE(vc_less(a, c));
    }
    // Exactly one of the four relations holds.
    int holds = 0;
    holds += (compare(a, b) == Ordering::kEqual) ? 1 : 0;
    holds += vc_less(a, b) ? 1 : 0;
    holds += vc_less(b, a) ? 1 : 0;
    holds += vc_concurrent(a, b) ? 1 : 0;
    EXPECT_EQ(holds, 1);
  }
}

TEST_P(VcPropertyTest, MinMaxAreMeetAndJoin) {
  Rng rng(GetParam() ^ 0x55);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 1 + rng.uniform_index(5);
    const VectorClock a = random_clock(rng, n);
    const VectorClock b = random_clock(rng, n);
    const VectorClock lo = component_min(a, b);
    const VectorClock hi = component_max(a, b);
    EXPECT_TRUE(vc_leq(lo, a));
    EXPECT_TRUE(vc_leq(lo, b));
    EXPECT_TRUE(vc_leq(a, hi));
    EXPECT_TRUE(vc_leq(b, hi));
    // Meet/join of comparable pairs are the endpoints.
    if (vc_leq(a, b)) {
      EXPECT_EQ(lo, a);
      EXPECT_EQ(hi, b);
    }
    // Idempotence / commutativity.
    EXPECT_EQ(component_min(a, a), a);
    EXPECT_EQ(component_max(a, a), a);
    EXPECT_EQ(component_min(a, b), component_min(b, a));
    EXPECT_EQ(component_max(a, b), component_max(b, a));
  }
}

TEST_P(VcPropertyTest, MergeMonotone) {
  Rng rng(GetParam() ^ 0xaa);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = 1 + rng.uniform_index(5);
    VectorClock a = random_clock(rng, n);
    const VectorClock before = a;
    const VectorClock b = random_clock(rng, n);
    a.merge(b);
    EXPECT_TRUE(vc_leq(before, a));
    EXPECT_TRUE(vc_leq(b, a));
    EXPECT_EQ(a, component_max(before, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

}  // namespace
}  // namespace hpd
