#include <gtest/gtest.h>

#include "detect/offline/replay.hpp"
#include "runner/experiment.hpp"
#include "trace/local_state.hpp"
#include "trace/sensor.hpp"

namespace hpd::trace {
namespace {

struct Harness {
  Harness()
      : core(0, 1, [this](const Interval& x) { intervals.push_back(x); }),
        state(core) {}
  std::vector<Interval> intervals;
  AppCore core;
  LocalState state;
};

TEST(LocalStateTest, PredicateFollowsVariables) {
  Harness h;
  h.state.set_predicate_fn(
      [](const LocalState& s) { return s.get("x") > 20.0 && s.get("y") < 45.0; });
  EXPECT_FALSE(h.core.predicate());  // x=0, y=0 → 0 > 20 fails
  h.state.set("x", 30.0);
  EXPECT_TRUE(h.core.predicate());   // 30 > 20 ∧ 0 < 45
  h.state.set("y", 50.0);
  EXPECT_FALSE(h.core.predicate());  // y too high: interval closed
  ASSERT_EQ(h.intervals.size(), 1u);
  h.state.set("y", 10.0);
  EXPECT_TRUE(h.core.predicate());
  h.core.finalize();
  EXPECT_EQ(h.intervals.size(), 2u);
}

TEST(LocalStateTest, EveryUpdateIsAnEvent) {
  Harness h;
  h.state.set_predicate_fn([](const LocalState&) { return false; });
  const VectorClock before = h.core.clock();
  h.state.set("x", 1.0);
  h.state.set("x", 1.0);  // same value: still an event
  EXPECT_EQ(h.core.clock()[0], before[0] + 2);
}

TEST(LocalStateTest, GetAndHas) {
  Harness h;
  EXPECT_FALSE(h.state.has("t"));
  EXPECT_DOUBLE_EQ(h.state.get("t"), 0.0);
  h.state.set("t", 3.5);
  EXPECT_TRUE(h.state.has("t"));
  EXPECT_DOUBLE_EQ(h.state.get("t"), 3.5);
  EXPECT_EQ(h.state.size(), 1u);
}

TEST(LocalStateTest, NoPredicateFnMeansFalse) {
  Harness h;
  h.state.set("x", 100.0);
  EXPECT_FALSE(h.core.predicate());
  EXPECT_TRUE(h.intervals.empty());
}

// ---- SensorBehavior end-to-end ----------------------------------------------

TEST(SensorBehaviorTest, CorrelatedWaveProducesGlobalDetections) {
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  SensorConfig sc;
  sc.horizon = 1000.0;
  sc.wave_period = 250.0;   // 4 hot episodes in the window
  sc.threshold = 0.75;
  sc.noise = 0.05;
  cfg.behavior_factory = [sc](ProcessId) {
    return std::make_unique<SensorBehavior>(sc);
  };
  cfg.horizon = 1020.0;
  cfg.drain = 120.0;
  cfg.seed = 77;
  cfg.record_execution = true;
  const auto res = runner::run_experiment(cfg);
  // Each wave crest puts every sensor above threshold with sync chatter in
  // between: Definitely holds once per crest (roughly).
  EXPECT_GE(res.global_count, 2u);
  EXPECT_LE(res.global_count, 8u);
  // And the online result still matches the offline reference.
  const auto reference = detect::offline::replay_centralized(res.execution);
  EXPECT_EQ(res.global_count, reference.size());
}

TEST(SensorBehaviorTest, ColdFieldNeverAlarms) {
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 2);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  SensorConfig sc;
  sc.horizon = 500.0;
  sc.threshold = 2.0;  // unreachable: wave + noise < 1.2
  cfg.behavior_factory = [sc](ProcessId) {
    return std::make_unique<SensorBehavior>(sc);
  };
  cfg.horizon = 520.0;
  cfg.seed = 78;
  const auto res = runner::run_experiment(cfg);
  EXPECT_EQ(res.global_count, 0u);
  EXPECT_EQ(res.metrics.total_detections(), 0u);
}

}  // namespace
}  // namespace hpd::trace
