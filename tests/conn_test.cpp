// Unit tests for the backend-neutral connection state machine (rt::Conn)
// over a socketpair: framed round-trips, partial-write resume under a tiny
// send buffer, orderly-close detection, and — the reason this file exists —
// reader poisoning after stream corruption. Both live backends (thread-per-
// node and the epoll reactor) host exactly this object, so the poisoning /
// teardown contract is proved once here instead of per backend.
#include "rt/conn.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "rt/socket.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace hpd::rt {
namespace {

/// A connected nonblocking socketpair, one Conn on each end.
struct ConnPair {
  Conn a;
  Conn b;

  ConnPair() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair failed";
      return;
    }
    set_nonblocking(fds[0]);
    set_nonblocking(fds[1]);
    a.fd = Fd(fds[0]);
    b.fd = Fd(fds[1]);
  }
};

/// Collects every dispatched payload.
class CaptureSink final : public PayloadSink {
 public:
  void on_payload(Conn&, const std::vector<std::uint8_t>& payload) override {
    payloads.push_back(payload);
  }
  std::vector<std::vector<std::uint8_t>> payloads;
};

std::vector<std::uint8_t> payload_of(std::uint8_t kind, std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(kind + i);
  }
  return p;
}

TEST(Conn, FramedRoundTrip) {
  ConnPair cp;
  CaptureSink sink;
  std::array<std::uint8_t, 4096> scratch;

  const auto p1 = payload_of(1, 10);
  const auto p2 = payload_of(2, 300);
  cp.a.queue(wire::frame(p1));
  cp.a.queue(wire::frame(p2));
  ASSERT_EQ(cp.a.flush(), Conn::FlushStatus::kDrained);
  EXPECT_EQ(cp.a.backlog(), 0u);

  // Edge-triggered style: read until drained.
  while (cp.b.read_once(scratch, sink) == Conn::ReadStatus::kData) {
  }
  ASSERT_EQ(sink.payloads.size(), 2u);
  EXPECT_EQ(sink.payloads[0], p1);
  EXPECT_EQ(sink.payloads[1], p2);
  EXPECT_EQ(cp.b.read_once(scratch, sink), Conn::ReadStatus::kDrained);
}

TEST(Conn, HelloFrameDecodes) {
  const auto framed = hello_frame(/*self=*/3, /*cluster=*/8, /*epoch=*/5);
  wire::FrameReader r;
  r.feed(framed);
  const auto payload = r.next();
  ASSERT_TRUE(payload.has_value());
  ASSERT_GE(payload->size(), 5u);
  EXPECT_EQ((*payload)[0], kFrameHello);
  EXPECT_EQ((*payload)[1], kMagic[0]);
  EXPECT_EQ((*payload)[2], kMagic[1]);
  EXPECT_EQ((*payload)[3], kMagic[2]);
  EXPECT_EQ((*payload)[4], kMagic[3]);
  EXPECT_FALSE(r.next().has_value());  // exactly one frame
}

// Corruption poisons the reader permanently: the first bad CRC surfaces as
// kProtocolError, and so does every later read attempt — a framed stream
// that lost sync has no recoverable boundary, so the owner must drop the
// connection (the sender's session layer retransmits over a fresh one).
TEST(Conn, CorruptionPoisonsReaderPermanently) {
  ConnPair cp;
  CaptureSink sink;
  std::array<std::uint8_t, 4096> scratch;

  // One good frame, then one whose payload byte was flipped in transit
  // (CRC mismatch), then another good frame that must never be delivered.
  const auto good = payload_of(7, 20);
  std::vector<std::uint8_t> wire_bytes = wire::frame(good);
  std::vector<std::uint8_t> bad = wire::frame(payload_of(9, 20));
  bad[bad.size() / 2] ^= 0x40;
  wire_bytes.insert(wire_bytes.end(), bad.begin(), bad.end());
  const auto tail = wire::frame(payload_of(11, 20));
  wire_bytes.insert(wire_bytes.end(), tail.begin(), tail.end());

  cp.a.queue(wire_bytes);
  ASSERT_EQ(cp.a.flush(), Conn::FlushStatus::kDrained);

  Conn::ReadStatus st = Conn::ReadStatus::kData;
  while (st == Conn::ReadStatus::kData) {
    st = cp.b.read_once(scratch, sink);
  }
  EXPECT_EQ(st, Conn::ReadStatus::kProtocolError);
  // The good prefix was delivered before the corruption was hit.
  ASSERT_EQ(sink.payloads.size(), 1u);
  EXPECT_EQ(sink.payloads[0], good);
  EXPECT_TRUE(cp.b.reader.poisoned());

  // Poisoned is sticky: further reads keep failing even with fresh bytes
  // pending, and nothing more is ever dispatched.
  cp.a.queue(wire::frame(payload_of(13, 8)));
  ASSERT_EQ(cp.a.flush(), Conn::FlushStatus::kDrained);
  EXPECT_EQ(cp.b.read_once(scratch, sink), Conn::ReadStatus::kProtocolError);
  EXPECT_EQ(sink.payloads.size(), 1u);
}

// A malformed sink payload (wire::DecodeError from the protocol decoder)
// maps to kProtocolError exactly like reader corruption.
TEST(Conn, SinkDecodeErrorIsProtocolError) {
  class ThrowingSink final : public PayloadSink {
   public:
    void on_payload(Conn&, const std::vector<std::uint8_t>&) override {
      throw wire::DecodeError("malformed payload");
    }
  };
  ConnPair cp;
  ThrowingSink sink;
  std::array<std::uint8_t, 4096> scratch;

  cp.a.queue(wire::frame(payload_of(1, 4)));
  ASSERT_EQ(cp.a.flush(), Conn::FlushStatus::kDrained);
  EXPECT_EQ(cp.b.read_once(scratch, sink), Conn::ReadStatus::kProtocolError);
}

TEST(Conn, PartialWriteResumesAcrossFlushes) {
  ConnPair cp;
  // Shrink the kernel buffers so a modest burst actually blocks.
  const int small = 4096;
  ::setsockopt(cp.a.fd.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(cp.b.fd.get(), SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  const auto big = payload_of(5, 256 * 1024);
  cp.a.queue(wire::frame(big));
  // The first flush stalls against the full kernel buffer...
  ASSERT_EQ(cp.a.flush(), Conn::FlushStatus::kBlocked);
  EXPECT_GT(cp.a.backlog(), 0u);

  // ...and resumes exactly where it stopped as the receiver drains, until
  // the whole frame crossed intact.
  CaptureSink sink;
  std::array<std::uint8_t, 8192> scratch;
  for (int spins = 0; spins < 100000 && sink.payloads.empty(); ++spins) {
    (void)cp.b.read_once(scratch, sink);
    if (cp.a.backlog() > 0) {
      const auto st = cp.a.flush();
      ASSERT_NE(st, Conn::FlushStatus::kBroken);
    }
  }
  ASSERT_EQ(sink.payloads.size(), 1u);
  EXPECT_EQ(sink.payloads[0], big);
  EXPECT_EQ(cp.a.backlog(), 0u);
}

TEST(Conn, PeerCloseSurfacesAsClosed) {
  ConnPair cp;
  CaptureSink sink;
  std::array<std::uint8_t, 4096> scratch;

  cp.a.fd.reset();  // orderly close
  EXPECT_EQ(cp.b.read_once(scratch, sink), Conn::ReadStatus::kClosed);
  EXPECT_EQ(cp.b.drain_ignore(scratch), Conn::ReadStatus::kClosed);
}

// Send-only connections watch their fd just to notice the peer vanishing:
// drain_ignore discards inbound bytes and reports the close.
TEST(Conn, DrainIgnoreDiscardsAndDetectsClose) {
  ConnPair cp;
  std::array<std::uint8_t, 4096> scratch;

  cp.b.queue(wire::frame(payload_of(3, 64)));
  ASSERT_EQ(cp.b.flush(), Conn::FlushStatus::kDrained);
  EXPECT_EQ(cp.a.drain_ignore(scratch), Conn::ReadStatus::kData);
  while (cp.a.drain_ignore(scratch) == Conn::ReadStatus::kData) {
  }
  cp.b.fd.reset();
  Conn::ReadStatus st = cp.a.drain_ignore(scratch);
  while (st == Conn::ReadStatus::kData) {
    st = cp.a.drain_ignore(scratch);
  }
  EXPECT_EQ(st, Conn::ReadStatus::kClosed);
}

TEST(Conn, FlushOnBrokenPipeIsBroken) {
  ConnPair cp;
  cp.b.fd.reset();
  // Big enough that the kernel can't just absorb it into the dead socket's
  // buffer; MSG_NOSIGNAL in write_some keeps SIGPIPE away.
  cp.a.queue(payload_of(1, 64 * 1024));
  Conn::FlushStatus st = cp.a.flush();
  if (st != Conn::FlushStatus::kBroken) {
    st = cp.a.flush();  // second attempt observes the reset
  }
  EXPECT_EQ(st, Conn::FlushStatus::kBroken);
}

}  // namespace
}  // namespace hpd::rt
