#include <gtest/gtest.h>

#include "detect/offline/lattice.hpp"
#include "detect/possibly.hpp"
#include "runner/experiment.hpp"
#include "tests/test_util.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"
#include "trace/scripted.hpp"
#include "trace/app_core.hpp"

namespace hpd::detect {
namespace {

Interval iv(ProcessId origin, SeqNum seq, VectorClock lo, VectorClock hi) {
  Interval x;
  x.origin = origin;
  x.seq = seq;
  x.lo = std::move(lo);
  x.hi = std::move(hi);
  return x;
}

bool coexist_ref(const Interval& a, const Interval& b) {
  return b.lo[idx(a.origin)] <= a.hi[idx(a.origin)] &&
         a.lo[idx(b.origin)] <= b.hi[idx(b.origin)];
}

TEST(PossiblyEngineTest, ConcurrentPulsesDetected) {
  PossiblyEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // Fully concurrent intervals: Possibly holds (though Definitely would not).
  EXPECT_TRUE(e.offer(0, iv(0, 1, {1, 0}, {2, 0})).empty());
  const auto sols = e.offer(1, iv(1, 1, {0, 1}, {0, 2}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].members.size(), 2u);
  EXPECT_EQ(e.stored(), 0u);  // consume-all
}

TEST(PossiblyEngineTest, SequentialIntervalsEliminated) {
  PossiblyEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // y starts knowing 3 events of P0; x ended at its 2nd event: x precedes y.
  EXPECT_TRUE(e.offer(0, iv(0, 1, {1, 0}, {2, 0})).empty());
  EXPECT_TRUE(e.offer(1, iv(1, 1, {3, 1}, {3, 2})).empty());
  EXPECT_EQ(e.eliminated(), 1u);
  EXPECT_EQ(e.solutions_found(), 0u);
  // P0's next interval coexists with y.
  const auto sols = e.offer(0, iv(0, 2, {4, 0}, {5, 0}));
  ASSERT_EQ(sols.size(), 1u);
}

TEST(PossiblyEngineTest, BoundaryKnowledgeStillCoexists) {
  // y.lo knows exactly up to x's last true event: the post-states share a
  // cut (the exactness fix over the printed Eq. (1)).
  PossiblyEngine e;
  e.add_queue(0);
  e.add_queue(1);
  EXPECT_TRUE(e.offer(0, iv(0, 1, {1, 0}, {2, 0})).empty());
  const auto sols = e.offer(1, iv(1, 1, {2, 1}, {2, 2}));
  EXPECT_EQ(sols.size(), 1u);
}

TEST(PossiblyEngineTest, OneShotHangsAfterFirst) {
  PossiblyEngine e(PossiblyEngine::Mode::kOneShot);
  e.add_queue(0);
  e.add_queue(1);
  e.offer(0, iv(0, 1, {1, 0}, {2, 0}));
  EXPECT_EQ(e.offer(1, iv(1, 1, {0, 1}, {0, 2})).size(), 1u);
  EXPECT_TRUE(e.done());
  // Fresh concurrent intervals are ignored: the classic algorithms cannot
  // detect twice (the paper's criticism, transplanted to Possibly).
  e.offer(0, iv(0, 2, {3, 0}, {4, 0}));
  EXPECT_TRUE(e.offer(1, iv(1, 2, {0, 3}, {0, 4})).empty());
}

TEST(PossiblyEngineTest, RepeatedDetectionConsumesWitnesses) {
  PossiblyEngine e;
  e.add_queue(0);
  e.add_queue(1);
  for (SeqNum k = 1; k <= 3; ++k) {
    const auto base0 = static_cast<ClockValue>(2 * k);
    const auto base1 = static_cast<ClockValue>(2 * k);
    e.offer(0, iv(0, k, {base0, 0}, {base0 + 1, 0}));
    e.offer(1, iv(1, k, {0, base1}, {0, base1 + 1}));
  }
  EXPECT_EQ(e.solutions_found(), 3u);
  EXPECT_EQ(e.stored(), 0u);
}

TEST(PossiblyReplayTest, HandExamples) {
  // Concurrent pulses: Possibly only.
  trace::AppCore a(0, 2, nullptr);
  trace::AppCore b(1, 2, nullptr);
  a.enable_recording([] { return 0.0; });
  b.enable_recording([] { return 0.0; });
  a.set_predicate(true);
  a.set_predicate(false);
  b.set_predicate(true);
  b.set_predicate(false);
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded(), b.recorded()};
  EXPECT_EQ(possibly_replay(exec).size(), 1u);
}

class PossiblyGroundTruthTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PossiblyGroundTruthTest, FirstDetectionIffLatticePossibly) {
  Rng rng(GetParam());
  int positives = 0;
  for (int iter = 0; iter < 60; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(2);
    opt.steps = 8 + rng.uniform_index(8);
    const auto exec = testutil::random_execution(rng, opt);
    const auto sols = possibly_replay(exec, PossiblyEngine::Mode::kOneShot);
    const bool truth = offline::lattice_possibly(exec);
    EXPECT_EQ(!sols.empty(), truth) << "iter " << iter;
    positives += truth ? 1 : 0;
    // Every reported solution is pairwise coexistent.
    for (const auto& sol : sols) {
      for (std::size_t i = 0; i < sol.members.size(); ++i) {
        for (std::size_t j = i + 1; j < sol.members.size(); ++j) {
          EXPECT_TRUE(coexist_ref(sol.members[i], sol.members[j]));
        }
      }
    }
  }
  EXPECT_GT(positives, 0);
}

TEST_P(PossiblyGroundTruthTest, RepeatedSolutionsAreValidAndDisjoint) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int iter = 0; iter < 40; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(3);
    opt.steps = 40;
    opt.p_toggle = 0.45;
    const auto exec = testutil::random_execution(rng, opt);
    const auto sols = possibly_replay(exec);
    std::set<std::pair<ProcessId, SeqNum>> used;
    for (const auto& sol : sols) {
      EXPECT_EQ(sol.members.size(), exec.num_processes());
      for (const auto& m : sol.members) {
        // Consume-all semantics: witnesses are never reused.
        EXPECT_TRUE(used.insert({m.origin, m.seq}).second);
      }
      for (std::size_t i = 0; i < sol.members.size(); ++i) {
        for (std::size_t j = i + 1; j < sol.members.size(); ++j) {
          EXPECT_TRUE(coexist_ref(sol.members[i], sol.members[j]));
        }
      }
    }
    // Sanity: solutions are bounded by the scarcest process.
    std::size_t min_intervals = SIZE_MAX;
    for (const auto& p : exec.procs) {
      min_intervals = std::min(min_intervals, p.intervals.size());
    }
    EXPECT_LE(sols.size(), min_intervals);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PossiblyGroundTruthTest,
                         ::testing::Values(21u, 34u, 55u, 89u));

// ---- On-line PossiblySink through the full simulator ------------------------

TEST(PossiblyOnlineTest, PulseRoundsDetectedOncePerRound) {
  runner::ExperimentConfig cfg;
  cfg.tree = net::SpanningTree::balanced_dary(2, 3);
  cfg.topology = net::tree_topology(cfg.tree);
  trace::PulseConfig pc;
  pc.rounds = 6;
  pc.period = 70.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 520.0;
  cfg.drain = 100.0;
  cfg.detector = runner::DetectorKind::kPossiblyCentralized;
  cfg.seed = 61;
  const auto res = runner::run_experiment(cfg);
  EXPECT_EQ(res.global_count, 6u);
}

TEST(PossiblyOnlineTest, DetectsConcurrencyThatDefinitelyMisses) {
  // Two nodes pulse concurrently with NO cross traffic: Possibly holds,
  // Definitely does not. Use a scripted workload.
  auto make = [](runner::DetectorKind kind) {
    runner::ExperimentConfig cfg;
    cfg.topology = net::Topology::complete(2);
    cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
    std::vector<trace::ScriptAction> script = {
        trace::at_predicate(5.0, true), trace::at_predicate(15.0, false),
        trace::at_predicate(30.0, true), trace::at_predicate(40.0, false)};
    cfg.behavior_factory = [script](ProcessId) {
      return std::make_unique<trace::ScriptedBehavior>(script);
    };
    cfg.horizon = 80.0;
    cfg.drain = 40.0;
    cfg.detector = kind;
    cfg.seed = 62;
    return cfg;
  };
  const auto possibly =
      runner::run_experiment(make(runner::DetectorKind::kPossiblyCentralized));
  const auto definitely =
      runner::run_experiment(make(runner::DetectorKind::kCentralized));
  EXPECT_EQ(possibly.global_count, 2u);   // both concurrent pulses
  EXPECT_EQ(definitely.global_count, 0u);  // no causal crossings
}

TEST(PossiblyOnlineTest, MatchesOfflineReplayOnGossip) {
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 2);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 300.0;
  g.mean_gap = 4.0;
  g.p_toggle = 0.4;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = 320.0;
  cfg.drain = 80.0;
  cfg.detector = runner::DetectorKind::kPossiblyCentralized;
  cfg.record_execution = true;
  cfg.seed = 63;
  const auto res = runner::run_experiment(cfg);
  EXPECT_EQ(res.global_count, possibly_replay(res.execution).size());
}

}  // namespace
}  // namespace hpd::detect
