// Differential fuzzing of the detection engines against deliberately naive
// re-implementations. The references below are written directly from the
// restructured pseudocode with no sharing of code or data structures with
// the production engines; any divergence on randomized streams is a bug in
// one of them.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "detect/possibly.hpp"
#include "detect/queue_engine.hpp"
#include "detect/slicing.hpp"

namespace hpd::detect {
namespace {

// ---- Naive Definitely reference ------------------------------------------

struct NaiveDefinitely {
  std::map<ProcessId, std::list<Interval>> queues;
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> solutions;
  std::uint64_t eliminated = 0;
  std::uint64_t pruned = 0;
  // Mirror of the engine's configuration knobs, re-implemented from their
  // documented semantics (not from the engine code).
  QueueEngine::PruneMode mode = QueueEngine::PruneMode::kAllEq10;
  std::size_t capacity = 0;  // 0 = unbounded
  std::uint64_t rejected = 0;

  void add_queue(ProcessId key) { queues[key]; }

  static bool leq(const VectorClock& a, const VectorClock& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] > b[i]) {
        return false;
      }
    }
    return true;
  }
  static bool less(const VectorClock& a, const VectorClock& b) {
    return leq(a, b) && !(a == b);
  }

  bool all_nonempty() const {
    for (const auto& [k, q] : queues) {
      if (q.empty()) {
        return false;
      }
    }
    return true;
  }

  void offer(ProcessId key, const Interval& x) {
    auto& q = queues.at(key);
    if (capacity != 0 && q.size() >= capacity) {
      ++rejected;  // back-pressure: a full queue turns the offer away
      return;
    }
    const bool was_empty = q.empty();
    q.push_back(x);
    if (!was_empty) {
      return;
    }
    run({key});
  }

  void recheck() {
    std::vector<ProcessId> updated;
    for (const auto& [k, q] : queues) {
      if (!q.empty()) {
        updated.push_back(k);
      }
    }
    if (!updated.empty()) {
      run(std::move(updated));
    }
  }

  void run(std::vector<ProcessId> updated) {
    while (!updated.empty()) {
      // One elimination round.
      std::vector<ProcessId> dead;
      for (const ProcessId a : updated) {
        if (queues.at(a).empty()) {
          continue;
        }
        const Interval& xa = queues.at(a).front();
        for (auto& [b, qb] : queues) {
          if (b == a || qb.empty()) {
            continue;
          }
          const Interval& yb = qb.front();
          if (!leq(xa.lo, yb.hi)) {
            dead.push_back(b);
          }
          if (!leq(yb.lo, xa.hi)) {
            dead.push_back(a);
          }
        }
      }
      std::sort(dead.begin(), dead.end());
      dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
      if (!dead.empty()) {
        for (const ProcessId c : dead) {
          if (!queues.at(c).empty()) {
            queues.at(c).pop_front();
            ++eliminated;
          }
        }
        updated = dead;
        continue;
      }
      if (!all_nonempty()) {
        break;
      }
      // Solution.
      std::vector<std::pair<ProcessId, SeqNum>> sol;
      for (const auto& [k, q2] : queues) {
        sol.emplace_back(k, q2.front().seq);
      }
      solutions.push_back(sol);
      // Prune per mode: Eq. (10) over all qualifying heads, the
      // single-head ablation (first qualifying head in ascending key
      // order), or the deliberately broken everything-goes rule.
      std::vector<ProcessId> prune;
      for (const auto& [a, qa] : queues) {
        bool removable = true;
        if (mode != QueueEngine::PruneMode::kTestBrokenPruneAll) {
          for (const auto& [b, qb] : queues) {
            if (a != b && less(qb.front().hi, qa.front().hi)) {
              removable = false;
            }
          }
        }
        if (removable) {
          prune.push_back(a);
          if (mode == QueueEngine::PruneMode::kSingleEq10) {
            break;
          }
        }
      }
      for (const ProcessId c : prune) {
        queues.at(c).pop_front();
        ++pruned;
      }
      updated = prune;
    }
  }
};

// ---- Random interval stream generator --------------------------------------
//
// Produces per-origin streams with strictly increasing (lo, hi) windows,
// random overlap structure across origins, and occasional equal vectors to
// poke the cut-equality corner.

struct StreamGen {
  Rng rng;
  std::size_t n;
  std::vector<ClockValue> last_hi;  // per origin, own-component floor

  StreamGen(std::uint64_t seed, std::size_t n_procs)
      : rng(seed), n(n_procs), last_hi(n_procs, 0) {}

  Interval next(ProcessId origin, SeqNum seq) {
    Interval x;
    x.lo = VectorClock(n);
    x.hi = VectorClock(n);
    // Own component strictly increases between successive intervals.
    const ClockValue lo_own =
        last_hi[idx(origin)] + 1 +
        static_cast<ClockValue>(rng.uniform_int(0, 2));
    const ClockValue hi_own =
        lo_own + static_cast<ClockValue>(rng.uniform_int(0, 3));
    last_hi[idx(origin)] = hi_own;
    for (std::size_t i = 0; i < n; ++i) {
      const ClockValue base = static_cast<ClockValue>(rng.uniform_int(0, 12));
      x.lo[i] = base;
      x.hi[i] = base + static_cast<ClockValue>(rng.uniform_int(0, 6));
    }
    x.lo[idx(origin)] = lo_own;
    x.hi[idx(origin)] = hi_own;
    // Keep lo <= hi on every component (lo was sampled independently).
    for (std::size_t i = 0; i < n; ++i) {
      if (x.lo[i] > x.hi[i]) {
        std::swap(x.lo[i], x.hi[i]);
      }
    }
    x.origin = origin;
    x.seq = seq;
    return x;
  }
};

class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, DefinitelyEngineMatchesNaiveReference) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 2 + rng.uniform_index(4);
    QueueEngine engine;
    NaiveDefinitely naive;
    for (std::size_t i = 0; i < n; ++i) {
      engine.add_queue(static_cast<ProcessId>(i));
      naive.add_queue(static_cast<ProcessId>(i));
    }
    StreamGen gen(GetParam() * 1000 + static_cast<std::uint64_t>(round), n);
    std::vector<SeqNum> next_seq(n, 1);
    std::vector<std::vector<std::pair<ProcessId, SeqNum>>> engine_solutions;
    const int steps = 60;
    for (int s = 0; s < steps; ++s) {
      const auto p = static_cast<ProcessId>(rng.uniform_index(n));
      const Interval x = gen.next(p, next_seq[idx(p)]++);
      naive.offer(p, x);
      for (const auto& sol : engine.offer(p, x)) {
        std::vector<std::pair<ProcessId, SeqNum>> ids;
        for (const auto& m : sol.members) {
          ids.emplace_back(m.origin, m.seq);
        }
        engine_solutions.push_back(std::move(ids));
      }
    }
    ASSERT_EQ(engine_solutions, naive.solutions)
        << "round " << round << " n " << n;
    EXPECT_EQ(engine.eliminated(), naive.eliminated) << "round " << round;
    EXPECT_EQ(engine.pruned(), naive.pruned) << "round " << round;
  }
}

// The differential holds across every prune rule (including the broken one
// — both sides over-prune identically, so the *differential* still agrees;
// only the model checker's offline oracles can call it wrong) and across
// bounded queue capacities, where both sides must reject the same offers.
TEST_P(EngineFuzzTest, PruneModesAndCapacitiesMatchNaiveReference) {
  const QueueEngine::PruneMode modes[] = {
      QueueEngine::PruneMode::kAllEq10,
      QueueEngine::PruneMode::kSingleEq10,
      QueueEngine::PruneMode::kTestBrokenPruneAll,
  };
  const std::size_t capacities[] = {0, 1, 2, 4};
  Rng rng(GetParam() ^ 0x9e3779b9);
  for (const auto mode : modes) {
    for (const std::size_t cap : capacities) {
      for (int round = 0; round < 8; ++round) {
        const std::size_t n = 2 + rng.uniform_index(4);
        QueueEngine engine(mode);
        engine.set_capacity(cap);
        NaiveDefinitely naive;
        naive.mode = mode;
        naive.capacity = cap;
        for (std::size_t i = 0; i < n; ++i) {
          engine.add_queue(static_cast<ProcessId>(i));
          naive.add_queue(static_cast<ProcessId>(i));
        }
        StreamGen gen(GetParam() * 271 + static_cast<std::uint64_t>(round), n);
        std::vector<SeqNum> next_seq(n, 1);
        std::vector<std::vector<std::pair<ProcessId, SeqNum>>> engine_solutions;
        for (int s = 0; s < 50; ++s) {
          const auto p = static_cast<ProcessId>(rng.uniform_index(n));
          const Interval x = gen.next(p, next_seq[idx(p)]++);
          naive.offer(p, x);
          for (const auto& sol : engine.offer(p, x)) {
            std::vector<std::pair<ProcessId, SeqNum>> ids;
            for (const auto& m : sol.members) {
              ids.emplace_back(m.origin, m.seq);
            }
            engine_solutions.push_back(std::move(ids));
          }
        }
        ASSERT_EQ(engine_solutions, naive.solutions)
            << "mode " << static_cast<int>(mode) << " cap " << cap
            << " round " << round;
        EXPECT_EQ(engine.eliminated(), naive.eliminated);
        EXPECT_EQ(engine.pruned(), naive.pruned);
        EXPECT_EQ(engine.rejected(), naive.rejected)
            << "mode " << static_cast<int>(mode) << " cap " << cap;
      }
    }
  }
}

// The engine must never violate its own invariants, whatever the stream:
// every reported solution has one member per queue, members are current
// heads at detection time (checked via seq monotonicity), and liveness
// holds (a solution always prunes at least one head).
TEST_P(EngineFuzzTest, EngineInvariantsUnderAdversarialStreams) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 2 + rng.uniform_index(5);
    QueueEngine engine;
    for (std::size_t i = 0; i < n; ++i) {
      engine.add_queue(static_cast<ProcessId>(i));
    }
    StreamGen gen(GetParam() * 77 + static_cast<std::uint64_t>(round), n);
    std::vector<SeqNum> next_seq(n, 1);
    std::map<ProcessId, SeqNum> last_solution_seq;
    for (int s = 0; s < 80; ++s) {
      const auto p = static_cast<ProcessId>(rng.uniform_index(n));
      const std::uint64_t pruned_before = engine.pruned();
      const auto sols =
          engine.offer(p, gen.next(p, next_seq[idx(p)]++));
      for (const auto& sol : sols) {
        ASSERT_EQ(sol.members.size(), n);
        for (const auto& m : sol.members) {
          // Per-origin solution sequence numbers never go backwards (a
          // surviving head may be reused in the next solution).
          auto it = last_solution_seq.find(m.origin);
          if (it != last_solution_seq.end()) {
            EXPECT_GE(m.seq, it->second);
          }
          last_solution_seq[m.origin] = m.seq;
        }
      }
      if (!sols.empty()) {
        EXPECT_GT(engine.pruned(), pruned_before);  // Theorem 4
      }
      // Core invariant: surviving heads are always pairwise compatible.
      EXPECT_TRUE(engine.heads_compatible()) << "step " << s;
    }
    // Conservation: everything offered is stored, eliminated, or pruned.
    EXPECT_EQ(engine.offered(),
              engine.stored() + engine.eliminated() + engine.pruned());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Values(5u, 6u, 7u, 8u, 1000u, 2000u));

// ---- Naive Possibly reference ------------------------------------------------

struct NaivePossibly {
  std::map<ProcessId, std::list<Interval>> queues;
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> solutions;
  std::uint64_t eliminated = 0;

  void add_queue(ProcessId key) { queues[key]; }

  static bool coexist(const Interval& a, const Interval& b) {
    return b.lo[idx(a.origin)] <= a.hi[idx(a.origin)] &&
           a.lo[idx(b.origin)] <= b.hi[idx(b.origin)];
  }

  void offer(ProcessId key, const Interval& x) {
    auto& q = queues.at(key);
    const bool was_empty = q.empty();
    q.push_back(x);
    if (!was_empty) {
      return;
    }
    run({key});
  }

  void recheck() {
    std::vector<ProcessId> updated;
    for (const auto& [k, q] : queues) {
      if (!q.empty()) {
        updated.push_back(k);
      }
    }
    if (!updated.empty()) {
      run(std::move(updated));
    }
  }

  void run(std::vector<ProcessId> updated) {
    while (!updated.empty()) {
      std::vector<ProcessId> dead;
      for (const ProcessId a : updated) {
        if (queues.at(a).empty()) {
          continue;
        }
        const Interval& xa = queues.at(a).front();
        for (auto& [b, qb] : queues) {
          if (b == a || qb.empty()) {
            continue;
          }
          const Interval& yb = qb.front();
          if (coexist(xa, yb)) {
            continue;
          }
          const bool xa_first =
              yb.lo[idx(xa.origin)] > xa.hi[idx(xa.origin)];
          dead.push_back(xa_first ? a : b);
        }
      }
      std::sort(dead.begin(), dead.end());
      dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
      if (!dead.empty()) {
        std::vector<ProcessId> next;
        for (const ProcessId c : dead) {
          if (!queues.at(c).empty()) {
            queues.at(c).pop_front();
            ++eliminated;
            next.push_back(c);
          }
        }
        updated = std::move(next);
        continue;
      }
      bool complete = true;
      for (const auto& [k, q2] : queues) {
        complete = complete && !q2.empty();
      }
      if (!complete) {
        break;
      }
      std::vector<std::pair<ProcessId, SeqNum>> sol;
      std::vector<ProcessId> next;
      for (auto& [k, q2] : queues) {
        sol.emplace_back(k, q2.front().seq);
        q2.pop_front();  // consume-all
        next.push_back(k);
      }
      solutions.push_back(std::move(sol));
      updated = std::move(next);
    }
  }
};

TEST_P(EngineFuzzTest, PossiblyEngineMatchesNaiveReference) {
  Rng rng(GetParam() ^ 0x5050);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 2 + rng.uniform_index(4);
    PossiblyEngine engine;
    NaivePossibly naive;
    for (std::size_t i = 0; i < n; ++i) {
      engine.add_queue(static_cast<ProcessId>(i));
      naive.add_queue(static_cast<ProcessId>(i));
    }
    StreamGen gen(GetParam() * 31 + static_cast<std::uint64_t>(round), n);
    std::vector<SeqNum> next_seq(n, 1);
    std::vector<std::vector<std::pair<ProcessId, SeqNum>>> engine_solutions;
    for (int s = 0; s < 60; ++s) {
      const auto p = static_cast<ProcessId>(rng.uniform_index(n));
      const Interval x = gen.next(p, next_seq[idx(p)]++);
      naive.offer(p, x);
      for (const auto& sol : engine.offer(p, x)) {
        std::vector<std::pair<ProcessId, SeqNum>> ids;
        for (const auto& m : sol.members) {
          ids.emplace_back(m.origin, m.seq);
        }
        engine_solutions.push_back(std::move(ids));
      }
    }
    ASSERT_EQ(engine_solutions, naive.solutions)
        << "round " << round << " n " << n;
    EXPECT_EQ(engine.eliminated(), naive.eliminated) << "round " << round;
  }
}

// ---- Dynamic queue changes (the failure path) ---------------------------------

TEST_P(EngineFuzzTest, DynamicQueueChangesMatchNaiveReference) {
  // Randomly add and remove queues mid-stream (what failures and adoptions
  // do) and check the engine against the naive model extended with the
  // same operations.
  Rng rng(GetParam() ^ 0x1a2b);
  for (int round = 0; round < 25; ++round) {
    QueueEngine engine;
    NaiveDefinitely naive;
    std::vector<ProcessId> live;
    ProcessId next_id = 0;
    auto add = [&](ProcessId id) {
      engine.add_queue(id);
      naive.add_queue(id);
      live.push_back(id);
    };
    for (int i = 0; i < 3; ++i) {
      add(next_id++);
    }
    const std::size_t n_dims = 16;  // clock width independent of queue count
    StreamGen gen(GetParam() * 13 + static_cast<std::uint64_t>(round), n_dims);
    std::vector<SeqNum> next_seq(n_dims, 1);
    std::vector<std::vector<std::pair<ProcessId, SeqNum>>> engine_solutions;

    auto collect = [&](const std::vector<Solution>& sols) {
      for (const auto& sol : sols) {
        std::vector<std::pair<ProcessId, SeqNum>> ids;
        for (const auto& m : sol.members) {
          ids.emplace_back(m.origin, m.seq);
        }
        engine_solutions.push_back(std::move(ids));
      }
    };

    for (int s = 0; s < 70; ++s) {
      const double roll = rng.uniform01();
      if (roll < 0.08 && live.size() < 6 && next_id < 16) {
        add(next_id++);
      } else if (roll < 0.14 && live.size() > 2) {
        const std::size_t pick = rng.uniform_index(live.size());
        const ProcessId victim = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        engine.remove_queue(victim);
        collect(engine.recheck());
        // Naive model: drop the queue, then re-run its cycle seeded by
        // every non-empty queue (mirrors QueueEngine::recheck).
        naive.queues.erase(victim);
        naive.recheck();
      } else {
        const ProcessId p = live[rng.uniform_index(live.size())];
        const Interval x = gen.next(p, next_seq[idx(p)]++);
        naive.offer(p, x);
        collect(engine.offer(p, x));
      }
    }
    ASSERT_EQ(engine_solutions, naive.solutions) << "round " << round;
  }
}

// ---- Regular-predicate streams against the slicing engine ------------------
//
// StreamGen above samples cross components adversarially; real regular
// predicates (conjunctions of local predicates over channels with monotone
// conditions) produce interval timestamps from actual vector clocks, where
// remote components only grow by receiving messages. RegularGen simulates
// exactly that — n processes, predicate toggles, sends whose receipt merges
// clocks — with a tunable message rate to steer between the two boundary
// regimes of the slice: p_msg = 0 keeps every interval concurrent (the
// slice is the full computation), while heavy messaging chains intervals
// causally (slices collapse toward empty and the filter discards).

struct RegularGen {
  Rng rng;
  std::size_t n;
  double p_msg;
  std::vector<VectorClock> clock;
  std::vector<bool> open;
  std::vector<VectorClock> open_lo;

  RegularGen(std::uint64_t seed, std::size_t n_procs, double msg_p)
      : rng(seed), n(n_procs), p_msg(msg_p), clock(n_procs, VectorClock(n_procs)),
        open(n_procs, false), open_lo(n_procs) {}

  void tick(std::size_t p) { clock[p][p] = clock[p][p] + 1; }

  std::optional<Interval> step(std::vector<SeqNum>& next_seq) {
    const std::size_t p = rng.uniform_index(n);
    const double roll = rng.uniform01();
    if (roll < p_msg && n > 1) {
      std::size_t q = rng.uniform_index(n - 1);
      if (q >= p) {
        ++q;
      }
      tick(p);
      clock[q].merge(clock[p]);
      tick(q);
    } else if (!open[p] && roll < p_msg + 0.35) {
      tick(p);
      open[p] = true;
      open_lo[p] = clock[p];
    } else if (open[p]) {
      tick(p);
      Interval x;
      x.lo = open_lo[p];
      x.hi = clock[p];
      x.origin = static_cast<ProcessId>(p);
      x.seq = next_seq[p]++;
      open[p] = false;
      return x;
    } else {
      tick(p);
    }
    return std::nullopt;
  }
};

TEST_P(EngineFuzzTest, SlicingEngineMatchesNaiveOnRegularStreams) {
  const QueueEngine::PruneMode modes[] = {
      QueueEngine::PruneMode::kAllEq10,
      QueueEngine::PruneMode::kSingleEq10,
  };
  Rng rng(GetParam() ^ 0x511c);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 2 + rng.uniform_index(4);
    const auto mode = modes[rng.uniform_index(2)];
    // Capacity stays 0: the slice filter relieves queue pressure, so under
    // a bounded queue the two sides legitimately reject different offers.
    SlicingEngine sliced(SlicingEngine::Mode::kExact, mode);
    NaiveDefinitely naive;
    naive.mode = mode;
    for (std::size_t i = 0; i < n; ++i) {
      sliced.add_queue(static_cast<ProcessId>(i));
      naive.add_queue(static_cast<ProcessId>(i));
    }
    RegularGen gen(GetParam() * 733 + static_cast<std::uint64_t>(round), n,
                   rng.uniform01() * 0.5);
    std::vector<SeqNum> next_seq(n, 1);
    std::vector<std::vector<std::pair<ProcessId, SeqNum>>> sliced_solutions;
    for (int s = 0; s < 400; ++s) {
      const auto x = gen.step(next_seq);
      if (!x) {
        continue;
      }
      naive.offer(x->origin, *x);
      for (const auto& sol : sliced.offer(x->origin, *x)) {
        std::vector<std::pair<ProcessId, SeqNum>> ids;
        for (const auto& m : sol.members) {
          ids.emplace_back(m.origin, m.seq);
        }
        sliced_solutions.push_back(std::move(ids));
      }
    }
    ASSERT_EQ(sliced_solutions, naive.solutions)
        << "round " << round << " n " << n;
  }
}

TEST_P(EngineFuzzTest, SlicingDetectorMatchesNaiveOnRegularStreams) {
  const std::size_t n = 3;
  std::vector<ProcessId> all = {0, 1, 2};
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> detected;
  SlicingDetector::Hooks hooks;
  hooks.on_occurrence = [&](const OccurrenceRecord& rec) {
    std::vector<std::pair<ProcessId, SeqNum>> ids;
    for (const auto& m : rec.solution) {
      ids.emplace_back(m.origin, m.seq);
    }
    detected.push_back(std::move(ids));
  };
  SlicingDetector det(0, all, std::move(hooks));
  NaiveDefinitely naive;
  for (std::size_t i = 0; i < n; ++i) {
    naive.add_queue(static_cast<ProcessId>(i));
  }
  RegularGen gen(GetParam() * 31 + 7, n, 0.3);
  std::vector<SeqNum> next_seq(n, 1);
  for (int s = 0; s < 600; ++s) {
    const auto x = gen.step(next_seq);
    if (!x) {
      continue;
    }
    naive.offer(x->origin, *x);
    if (x->origin == 0) {
      det.local_interval(*x);
    } else {
      det.report(*x);
    }
  }
  EXPECT_EQ(detected, naive.solutions);
}

TEST_P(EngineFuzzTest, SlicingBoundaryRegimesBehaveAsPredicted) {
  // Full slice: synchronized truth rounds (every process opens, an
  // all-to-all exchange makes each close causally dominate every open).
  // Every interval belongs to a solution, so the filter must admit all of
  // them and the engine must find one solution per round.
  {
    const std::size_t n = 3;
    const std::size_t rounds = 5 + GetParam() % 7;
    SlicingEngine sliced;
    for (std::size_t p = 0; p < n; ++p) {
      sliced.add_queue(static_cast<ProcessId>(p));
    }
    std::vector<VectorClock> clock(n, VectorClock(n));
    for (std::size_t r = 0; r < rounds; ++r) {
      std::vector<VectorClock> lo(n);
      for (std::size_t p = 0; p < n; ++p) {
        clock[p][p] = clock[p][p] + 1;
        lo[p] = clock[p];
      }
      const std::vector<VectorClock> snapshot = clock;
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
          if (q != p) {
            clock[p].merge(snapshot[q]);
          }
        }
        clock[p][p] = clock[p][p] + 1;
      }
      for (std::size_t p = 0; p < n; ++p) {
        Interval x;
        x.lo = lo[p];
        x.hi = clock[p];
        x.origin = static_cast<ProcessId>(p);
        x.seq = r + 1;
        sliced.offer(x.origin, std::move(x));
      }
    }
    EXPECT_EQ(sliced.discarded_by_slice(), 0u)
        << "every interval is in a solution; none may be discarded";
    EXPECT_EQ(sliced.inner().solutions_found(), rounds);
  }
  // Empty slice: with NO communication, no interval ever causally overlaps
  // a remote one — Definitely(Φ) cannot hold, and once each remote stream
  // has advanced, every arrival is provably doomed at admission.
  {
    SlicingEngine sliced;
    for (ProcessId p = 0; p < 3; ++p) {
      sliced.add_queue(p);
    }
    RegularGen gen(GetParam() * 101 + 3, 3, 0.0);
    std::vector<SeqNum> next_seq(3, 1);
    std::size_t offered = 0;
    for (int s = 0; s < 500; ++s) {
      if (const auto x = gen.step(next_seq)) {
        sliced.offer(x->origin, *x);
        ++offered;
      }
    }
    EXPECT_GT(offered, 0u);
    EXPECT_EQ(sliced.inner().solutions_found(), 0u);
    EXPECT_GT(sliced.discarded_by_slice(), 0u)
        << "disjoint histories must collapse the slice to empty";
  }
  // Chained regime: heavy messaging serializes intervals causally; a
  // nonzero share of arrivals must be provably doomed.
  {
    std::uint64_t discarded = 0;
    for (std::uint64_t sub = 0; sub < 10; ++sub) {
      SlicingEngine sliced;
      for (ProcessId p = 0; p < 3; ++p) {
        sliced.add_queue(p);
      }
      RegularGen gen(GetParam() * 919 + sub, 3, 0.55);
      std::vector<SeqNum> next_seq(3, 1);
      for (int s = 0; s < 500; ++s) {
        if (const auto x = gen.step(next_seq)) {
          sliced.offer(x->origin, *x);
        }
      }
      discarded += sliced.discarded_by_slice();
    }
    EXPECT_GT(discarded, 0u)
        << "causally chained streams never produced an empty slice";
  }
}

}  // namespace
}  // namespace hpd::detect
