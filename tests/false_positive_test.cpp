// Failure-detector false positives: with an aggressive heartbeat timeout
// (below the channel's worst-case inter-arrival jitter) parents will
// wrongly declare live children dead. The DISOWN message turns that
// permanent subtree loss into a transient re-attachment — this chaos test
// verifies the system keeps detecting and never wedges or forms cycles.
#include <gtest/gtest.h>

#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd::runner {
namespace {

class FalsePositiveTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FalsePositiveTest, DisownRecoversWronglyDroppedChildren) {
  ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(3, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::PulseConfig pc;
  pc.rounds = 14;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 1400.0;
  cfg.drain = 200.0;
  cfg.heartbeats = true;
  // Beats every 1.0, delays U(0.5, 1.5): inter-arrival jitter approaches
  // 2.0, but the timeout fires at 1.6 — false positives guaranteed.
  cfg.hb_config.period = 1.0;
  cfg.hb_config.timeout_multiplier = 1.6;
  cfg.seed = GetParam();
  cfg.occurrence_solutions = false;

  const ExperimentResult res = run_experiment(cfg);

  // False positives actually happened (otherwise this test proves nothing).
  EXPECT_GT(res.metrics.msgs_of_type(proto::kDisown), 0u);

  // No parent cycles among the survivors (everyone is a survivor here).
  const std::size_t n = res.final_parents.size();
  for (std::size_t i = 0; i < n; ++i) {
    ProcessId cur = static_cast<ProcessId>(i);
    std::size_t hops = 0;
    while (cur != kNoProcess) {
      cur = res.final_parents[idx(cur)];
      ASSERT_LE(++hops, n) << "parent cycle through node " << i;
    }
  }

  // Detection kept making progress deep into the run despite the thrash.
  bool late_detection = false;
  for (const auto& rec : res.occurrences) {
    if (rec.global && rec.time > 900.0) {
      late_detection = true;
    }
  }
  EXPECT_TRUE(late_detection);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FalsePositiveTest,
                         ::testing::Values(3u, 9u, 27u));

TEST(FalsePositiveTest, SafeTimeoutProducesNoDisowns) {
  ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(3, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::PulseConfig pc;
  pc.rounds = 8;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 850.0;
  cfg.heartbeats = true;
  cfg.hb_config.timeout_multiplier = 3.5;  // safely above max jitter
  cfg.seed = 5;
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_EQ(res.metrics.msgs_of_type(proto::kDisown), 0u);
  EXPECT_EQ(res.global_count, 8u);
}

}  // namespace
}  // namespace hpd::runner
