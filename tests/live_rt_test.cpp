// End-to-end tests of the live runtime: the full protocol stack (app layer,
// hierarchical detection, heartbeats, reattachment) over real threads and
// sockets, validated by the same offline oracles the model checker uses.
//
// The differential works because Theorem 2's detection outcome is
// schedule-independent (confluence): whatever interleaving the kernel
// scheduler produced, the merged occurrence stream must match the offline
// replay of the execution the run itself recorded. For fault runs, the
// measured crash/revive instants (not the planned ones) are substituted
// into the case before the alive-window and coverage oracles run.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mc/mc_case.hpp"
#include "mc/oracles.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "rt/live_runner.hpp"
#include "rt/live_transport.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd {
namespace {

/// Run a case over the live transport and return the oracle verdicts.
/// `c` is updated in place with the measured fault timeline.
std::vector<std::string> run_live_case(mc::McCase& c, const rt::LiveConfig& lc,
                                       rt::LiveResult* out = nullptr) {
  const runner::ExperimentConfig cfg = mc::build_case(c);
  rt::LiveResult res = rt::run_live_experiment(cfg, lc);

  // The oracles must judge the run that actually happened: replace the
  // planned fault instants with the measured ones.
  c.crashes.clear();
  c.recoveries.clear();
  for (const rt::LifeEvent& ev : res.actual_crashes) {
    c.crashes.push_back({ev.time, ev.node});
  }
  for (const rt::LifeEvent& ev : res.actual_recoveries) {
    c.recoveries.push_back({ev.time, ev.node});
  }
  std::vector<std::string> violations = mc::check_oracles(c, cfg, res.result);
  if (out != nullptr) {
    *out = std::move(res);
  }
  return violations;
}

std::string join(const std::vector<std::string>& v) {
  std::string s;
  for (const auto& x : v) {
    s += x;
    s += '\n';
  }
  return s;
}

TEST(LiveRuntime, FailureFreePulseMatchesOracles) {
  mc::McCase c;
  c.topology = "dary:2:2";
  c.workload = mc::WorkloadKind::kPulse;
  c.pulse_rounds = 3;
  c.pulse_period = 30.0;
  c.seed = 7;

  rt::LiveConfig lc;
  lc.time_scale = 0.005;
  rt::LiveResult res;
  const auto violations = run_live_case(c, lc, &res);
  EXPECT_TRUE(violations.empty()) << join(violations);

  // The strict tier ran (failure-free, unbounded queues) and the run did
  // real work over real sockets.
  ASSERT_TRUE(c.strict());
  EXPECT_GT(res.result.global_count, 0u);
  EXPECT_FALSE(res.result.occurrences.empty());
  EXPECT_EQ(res.frame_errors, 0u);
  EXPECT_GT(res.delivered_messages, 0u);
  EXPECT_GT(res.connections_accepted, 0u);
  EXPECT_GT(res.result.metrics.msgs_total(), 0u);
  EXPECT_GT(res.result.metrics.wire_bytes_total(), 0u);
  for (const bool a : res.result.final_alive) {
    EXPECT_TRUE(a);
  }
}

TEST(LiveRuntime, FailureFreeGossipMatchesOracles) {
  mc::McCase c;
  c.topology = "dary:2:2";
  c.workload = mc::WorkloadKind::kGossip;
  c.horizon = 60.0;
  c.seed = 21;

  rt::LiveConfig lc;
  lc.time_scale = 0.005;
  const auto violations = run_live_case(c, lc);
  EXPECT_TRUE(violations.empty()) << join(violations);
}

TEST(LiveRuntime, TcpBackendMatchesOracles) {
  mc::McCase c;
  c.topology = "dary:2:2";
  c.workload = mc::WorkloadKind::kPulse;
  c.pulse_rounds = 2;
  c.pulse_period = 30.0;
  c.seed = 11;

  rt::LiveConfig lc;
  lc.socket_kind = rt::SockAddr::Kind::kTcp;
  lc.time_scale = 0.005;
  rt::LiveResult res;
  const auto violations = run_live_case(c, lc, &res);
  EXPECT_TRUE(violations.empty()) << join(violations);
  EXPECT_EQ(res.frame_errors, 0u);
  EXPECT_GT(res.result.global_count, 0u);
}

// The centralized baseline over sockets: ProcessRuntime is detector-
// agnostic, so the same live transport must carry the hop-by-hop relay
// protocol too. Pulse with full participation detects exactly once per
// round whatever the interleaving, so the simulated run of the identical
// config is a valid reference for the live one.
TEST(LiveRuntime, CentralizedBaselineMatchesSim) {
  runner::ExperimentConfig cfg;
  auto tree = net::SpanningTree::balanced_dary(2, 2);
  cfg.topology = net::tree_topology(tree);
  cfg.tree = std::move(tree);
  trace::PulseConfig pc;
  pc.rounds = 3;
  pc.period = 30.0;
  pc.start = 5.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = pc.start + static_cast<SimTime>(pc.rounds) * pc.period +
                pc.period;
  cfg.drain = 80.0;
  cfg.detector = runner::DetectorKind::kCentralized;
  cfg.wire_encoding = true;
  cfg.seed = 13;

  const auto sim_res = runner::run_experiment(cfg);
  ASSERT_GT(sim_res.global_count, 0u);

  rt::LiveConfig lc;
  lc.time_scale = 0.005;
  const rt::LiveResult live = rt::run_live_experiment(cfg, lc);
  EXPECT_EQ(live.result.global_count, sim_res.global_count);
  EXPECT_EQ(live.frame_errors, 0u);
  EXPECT_GT(live.result.metrics.msgs_total(), 0u);
}

// The ISSUE's acceptance scenario: N = 16 nodes on a multi-hop (grid)
// topology, one injected crash plus reattachment, running long enough for
// repair to settle so the surviving-subtree coverage oracle (Section III-F)
// applies. Heartbeat timing is relaxed relative to the simulator defaults —
// real scheduler jitter must stay well inside the suspicion timeout.
void crash_reattach_soak_16(rt::LiveBackendKind backend) {
  mc::McCase c;
  c.topology = "grid:4x4";
  c.workload = mc::WorkloadKind::kPulse;
  c.pulse_rounds = 7;
  c.pulse_period = 30.0;
  c.crashes = {{40.0, 5}};
  c.recoveries = {{70.0, 5}};
  c.seed = 3;

  runner::ExperimentConfig cfg = mc::build_case(c);
  ASSERT_TRUE(cfg.heartbeats);
  cfg.hb_config.period = 5.0;
  cfg.hb_config.timeout_multiplier = 4.0;

  rt::LiveConfig lc;
  lc.backend = backend;
  lc.time_scale = 0.01;  // 10 ms per unit: heartbeat timeout = 200 ms real
  rt::LiveResult res = rt::run_live_experiment(cfg, lc);

  ASSERT_EQ(res.actual_crashes.size(), 1u);
  ASSERT_EQ(res.actual_recoveries.size(), 1u);
  EXPECT_EQ(res.actual_crashes[0].node, 5);
  EXPECT_EQ(res.actual_recoveries[0].node, 5);
  // Faults land at (or shortly after) their planned instants; far drift
  // would push repair past the settle window the coverage oracle needs.
  EXPECT_GE(res.actual_crashes[0].time, 40.0);
  EXPECT_LE(res.actual_crashes[0].time, 60.0);
  EXPECT_GE(res.actual_recoveries[0].time, 70.0);
  EXPECT_LE(res.actual_recoveries[0].time, 90.0);

  c.crashes = {{res.actual_crashes[0].time, 5}};
  c.recoveries = {{res.actual_recoveries[0].time, 5}};
  ASSERT_TRUE(c.coverage_checkable());
  const auto violations = mc::check_oracles(c, cfg, res.result);
  EXPECT_TRUE(violations.empty()) << join(violations);

  EXPECT_EQ(res.frame_errors, 0u);
  EXPECT_GT(res.result.global_count, 0u);
  for (const bool a : res.result.final_alive) {
    EXPECT_TRUE(a);  // the crashed node revived and survived to the end
  }
  if (backend == rt::LiveBackendKind::kReactor) {
    EXPECT_GT(res.reactor.workers, 0u);
    EXPECT_GT(res.reactor.wakeups, 0u);
    EXPECT_GT(res.reactor.timer_fires, 0u);
  } else {
    EXPECT_EQ(res.reactor.workers, 0u);  // thread backend reports no reactor
  }
}

TEST(LiveRuntime, CrashReattachSoak16Nodes) {
  crash_reattach_soak_16(rt::LiveBackendKind::kThreads);
}

// The same soak hosted by the epoll reactor: identical protocol stack,
// different scheduler — crash teardown, revive rebinding, reattachment and
// the coverage oracle must all hold on the worker-pool execution engine.
TEST(LiveRuntime, CrashReattachSoak16NodesReactor) {
  crash_reattach_soak_16(rt::LiveBackendKind::kReactor);
}

// A quick many-nodes-per-worker sanity run: 64 nodes multiplexed onto at
// most 2 workers exercises fd-map sharding and wheel re-arming under real
// contention (the scale smoke in CI pushes this to thousands of nodes).
TEST(LiveRuntime, ReactorShardsManyNodesPerWorker) {
  mc::McCase c;
  c.topology = "dary:3:3";  // 40 nodes
  c.workload = mc::WorkloadKind::kPulse;
  c.pulse_rounds = 4;
  c.pulse_period = 30.0;
  c.seed = 9;

  runner::ExperimentConfig cfg = mc::build_case(c);
  rt::LiveConfig lc;
  lc.backend = rt::LiveBackendKind::kReactor;
  lc.reactor_workers = 2;
  lc.time_scale = 0.01;
  rt::LiveResult res = rt::run_live_experiment(cfg, lc);

  const auto violations = mc::check_oracles(c, cfg, res.result);
  EXPECT_TRUE(violations.empty()) << join(violations);
  EXPECT_EQ(res.reactor.workers, 2u);
  EXPECT_EQ(res.frame_errors, 0u);
  EXPECT_EQ(res.transport.surfaced_losses, 0u);
  EXPECT_EQ(res.transport.msgs_delivered, res.transport.reliable_sent);
}

}  // namespace
}  // namespace hpd
