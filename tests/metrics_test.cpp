#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "metrics/counters.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

TEST(MetricsTest, SendAccounting) {
  MetricsRegistry reg(3);
  reg.name_message_type(1, "app");
  reg.on_send(0, 1, 10);
  reg.on_send(0, 1, 10);
  reg.on_send(2, 7, 4);
  EXPECT_EQ(reg.msgs_total(), 3u);
  EXPECT_EQ(reg.msgs_of_type(1), 2u);
  EXPECT_EQ(reg.msgs_of_type(7), 1u);
  EXPECT_EQ(reg.msgs_of_type(99), 0u);
  EXPECT_EQ(reg.wire_words_total(), 24u);
  EXPECT_EQ(reg.node(0).msgs_sent, 2u);
  EXPECT_EQ(reg.node(2).wire_words_sent, 4u);
  EXPECT_EQ(reg.message_type_name(1), "app");
  EXPECT_EQ(reg.message_type_name(7), "?");
}

TEST(MetricsTest, NodeAggregates) {
  MetricsRegistry reg(3);
  reg.node(0).vc_comparisons = 5;
  reg.node(1).vc_comparisons = 7;
  reg.node(2).detections = 3;
  reg.node(0).intervals_stored_peak = 9;
  reg.node(1).intervals_stored_peak = 4;
  EXPECT_EQ(reg.total_vc_comparisons(), 12u);
  EXPECT_EQ(reg.total_detections(), 3u);
  EXPECT_EQ(reg.max_node_storage_peak(), 9u);
  EXPECT_EQ(reg.sum_node_storage_peak(), 13u);
}

TEST(MetricsTest, BadNodeIdThrows) {
  MetricsRegistry reg(2);
  EXPECT_THROW(reg.node(2), AssertionError);
  EXPECT_THROW(reg.node(-1), AssertionError);
}

TEST(TextTableTest, AlignsAndPrints) {
  TextTable t({"h", "messages"});
  t.add_row({"2", "40"});
  t.add_row({"10", "10240"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("h"), std::string::npos);
  EXPECT_NE(s.find("10240"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), AssertionError);
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace hpd
