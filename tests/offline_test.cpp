#include <gtest/gtest.h>

#include <span>

#include "detect/offline/enumerate.hpp"
#include "detect/offline/lattice.hpp"
#include "detect/offline/replay.hpp"
#include "tests/test_util.hpp"
#include "trace/app_core.hpp"

namespace hpd::detect::offline {
namespace {

/// Hand-built two-process execution where Definitely holds: the truth
/// periods causally cross in both directions.
trace::ExecutionRecord crossing_execution() {
  trace::AppCore a(0, 2, nullptr);
  trace::AppCore b(1, 2, nullptr);
  a.enable_recording([] { return 0.0; });
  b.enable_recording([] { return 0.0; });
  a.set_predicate(true);
  b.set_predicate(true);
  const VectorClock sa = a.prepare_send(1);
  const VectorClock sb = b.prepare_send(0);
  a.receive(1, sb);
  b.receive(0, sa);
  a.set_predicate(false);
  b.set_predicate(false);
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded(), b.recorded()};
  return exec;
}

/// Two concurrent truth pulses with no communication: Possibly but not
/// Definitely.
trace::ExecutionRecord concurrent_execution() {
  trace::AppCore a(0, 2, nullptr);
  trace::AppCore b(1, 2, nullptr);
  a.enable_recording([] { return 0.0; });
  b.enable_recording([] { return 0.0; });
  a.set_predicate(true);
  a.set_predicate(false);
  b.set_predicate(true);
  b.set_predicate(false);
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded(), b.recorded()};
  return exec;
}

/// Sequential truth periods (B's starts causally after A's ended): neither
/// Possibly nor... actually Possibly requires a cut with both true, which
/// cannot exist here.
trace::ExecutionRecord sequential_execution() {
  trace::AppCore a(0, 2, nullptr);
  trace::AppCore b(1, 2, nullptr);
  a.enable_recording([] { return 0.0; });
  b.enable_recording([] { return 0.0; });
  a.set_predicate(true);
  a.set_predicate(false);
  const VectorClock sa = a.prepare_send(1);
  b.receive(0, sa);
  b.set_predicate(true);
  b.set_predicate(false);
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded(), b.recorded()};
  return exec;
}

TEST(LatticeTest, CrossingExecutionIsDefinite) {
  const auto exec = crossing_execution();
  EXPECT_TRUE(lattice_possibly(exec));
  EXPECT_TRUE(lattice_definitely(exec));
}

TEST(LatticeTest, ConcurrentPulsesArePossiblyOnly) {
  const auto exec = concurrent_execution();
  EXPECT_TRUE(lattice_possibly(exec));
  EXPECT_FALSE(lattice_definitely(exec));
}

TEST(LatticeTest, SequentialPulsesAreNeither) {
  const auto exec = sequential_execution();
  EXPECT_FALSE(lattice_possibly(exec));
  EXPECT_FALSE(lattice_definitely(exec));
}

TEST(LatticeTest, EmptyPredicateNeverHolds) {
  trace::AppCore a(0, 1, nullptr);
  a.enable_recording([] { return 0.0; });
  a.internal_event();
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded()};
  EXPECT_FALSE(lattice_possibly(exec));
  EXPECT_FALSE(lattice_definitely(exec));
}

TEST(LatticeTest, SingleProcessSingleEventInterval) {
  trace::AppCore a(0, 1, nullptr);
  a.enable_recording([] { return 0.0; });
  a.set_predicate(true);
  a.set_predicate(false);
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded()};
  // Every observation passes through the true state.
  EXPECT_TRUE(lattice_possibly(exec));
  EXPECT_TRUE(lattice_definitely(exec));
}

TEST(LatticeTest, RejectsCausallyUnclosedExecutions) {
  // A receive whose send is outside the record: truncating P0 after its
  // send was dropped leaves P1 knowing two P0 events while the record has
  // none — not a valid execution, and Definitely would otherwise hold
  // vacuously (the final cut is unreachable).
  trace::AppCore a(0, 2, nullptr);
  trace::AppCore b(1, 2, nullptr);
  a.enable_recording([] { return 0.0; });
  b.enable_recording([] { return 0.0; });
  a.internal_event();
  const VectorClock st = a.prepare_send(1);
  b.receive(0, st);
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded(), b.recorded()};
  exec.procs[0].events.clear();  // drop P0's events, keep P1's receive
  EXPECT_THROW(lattice_definitely(exec), AssertionError);
  EXPECT_THROW(lattice_possibly(exec), AssertionError);
}

TEST(LatticeTest, CountsConsistentCuts) {
  // Two fully concurrent processes with 2 events each: a 3x3 grid.
  const auto exec = concurrent_execution();
  EXPECT_EQ(count_consistent_cuts(exec), 9u);
}

TEST(EnumerateTest, MatchesHandExamples) {
  EXPECT_TRUE(definitely_by_intervals(crossing_execution()));
  EXPECT_FALSE(definitely_by_intervals(concurrent_execution()));
  EXPECT_TRUE(possibly_by_intervals(concurrent_execution()));
  EXPECT_FALSE(possibly_by_intervals(sequential_execution()));
  EXPECT_EQ(enumerate_definitely_sets(crossing_execution()).size(), 1u);
}

TEST(ReplayTest, FindsTheCrossingSolution) {
  const auto sols = replay_centralized(crossing_execution());
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].members.size(), 2u);
  EXPECT_TRUE(overlap(std::span<const Interval>(sols[0].members)));
}

TEST(ReplayTest, OneShotStopsAfterFirst) {
  ReplayOptions opt;
  opt.repeated = false;
  const auto sols = replay_centralized(crossing_execution(), opt);
  EXPECT_EQ(sols.size(), 1u);
}

// ---- Randomized cross-validation -------------------------------------------

class GroundTruthTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroundTruthTest, LatticeAgreesWithIntervalCharacterization) {
  Rng rng(GetParam());
  int definite = 0;
  int possible = 0;
  for (int iter = 0; iter < 60; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(2);  // 2..3
    opt.steps = 8 + rng.uniform_index(8);      // keep the lattice small
    const auto exec = testutil::random_execution(rng, opt);
    const bool lat_def = lattice_definitely(exec);
    const bool lat_pos = lattice_possibly(exec);
    EXPECT_EQ(lat_def, definitely_by_intervals(exec)) << "iter " << iter;
    EXPECT_EQ(lat_pos, possibly_by_intervals(exec)) << "iter " << iter;
    // Definitely implies Possibly.
    if (lat_def) {
      EXPECT_TRUE(lat_pos);
    }
    definite += lat_def ? 1 : 0;
    possible += lat_pos ? 1 : 0;
  }
  // The generator must produce a healthy mix.
  EXPECT_GT(possible, 0);
}

TEST_P(GroundTruthTest, ReplayDetectsIffDefinitely) {
  Rng rng(GetParam() ^ 0x1234);
  for (int iter = 0; iter < 60; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(2);
    opt.steps = 8 + rng.uniform_index(8);
    const auto exec = testutil::random_execution(rng, opt);
    const auto sols = replay_centralized(exec);
    EXPECT_EQ(!sols.empty(), lattice_definitely(exec)) << "iter " << iter;
    for (const auto& sol : sols) {
      EXPECT_TRUE(overlap(std::span<const Interval>(sol.members)))
          << "iter " << iter;
      EXPECT_EQ(sol.members.size(), exec.num_processes());
    }
  }
}

// Confluence: the solution sequence is independent of the interleaving in
// which intervals reach the sink (per-origin order preserved).
TEST_P(GroundTruthTest, ReplayIsConfluentUnderShuffles) {
  Rng rng(GetParam() ^ 0x9876);
  for (int iter = 0; iter < 30; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(4);  // up to 5
    opt.steps = 30 + rng.uniform_index(40);
    opt.p_toggle = 0.4;
    const auto exec = testutil::random_execution(rng, opt);
    const auto base = replay_centralized(exec);
    auto key = [](const std::vector<Solution>& sols) {
      std::vector<std::vector<std::pair<ProcessId, SeqNum>>> k;
      for (const auto& s : sols) {
        std::vector<std::pair<ProcessId, SeqNum>> ids;
        for (const auto& m : s.members) {
          ids.emplace_back(m.origin, m.seq);
        }
        k.push_back(std::move(ids));
      }
      return k;
    };
    const auto base_key = key(base);
    for (std::uint64_t shuffle = 1; shuffle <= 4; ++shuffle) {
      ReplayOptions opt2;
      opt2.shuffle_seed = GetParam() * 1000 + shuffle;
      const auto shuffled = replay_centralized(exec, opt2);
      EXPECT_EQ(key(shuffled), base_key) << "iter " << iter;
    }
  }
}

TEST_P(GroundTruthTest, OneShotFindsPrefixOfRepeated) {
  Rng rng(GetParam() ^ 0x4444);
  for (int iter = 0; iter < 30; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(2);
    opt.steps = 30;
    opt.p_toggle = 0.45;
    const auto exec = testutil::random_execution(rng, opt);
    const auto repeated = replay_centralized(exec);
    ReplayOptions one;
    one.repeated = false;
    const auto oneshot = replay_centralized(exec, one);
    if (repeated.empty()) {
      EXPECT_TRUE(oneshot.empty());
    } else {
      ASSERT_EQ(oneshot.size(), 1u);
      EXPECT_EQ(oneshot[0].members.size(), repeated[0].members.size());
      for (std::size_t i = 0; i < oneshot[0].members.size(); ++i) {
        EXPECT_EQ(oneshot[0].members[i].origin, repeated[0].members[i].origin);
        EXPECT_EQ(oneshot[0].members[i].seq, repeated[0].members[i].seq);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthTest,
                         ::testing::Values(1u, 7u, 42u, 99u, 12345u));

}  // namespace
}  // namespace hpd::detect::offline
