// The checkpoint subsystem's own contract: the container format rejects
// every torn, bit-flipped, or version-skewed file (never UB, never a silent
// load), the store publishes atomically and falls back past torn
// generations, the section codecs round-trip real engine state exactly,
// and the event stream tails a growing file without misparsing a partial
// write. The committed corpus under tests/data/ckpt/ pins the on-disk
// format: those bytes must stay loadable (or stay rejected) forever.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/event_stream.hpp"
#include "ckpt/snapshot.hpp"
#include "common/rng.hpp"
#include "detect/centralized.hpp"
#include "detect/offline/replay.hpp"
#include "detect/slicing.hpp"
#include "tests/test_util.hpp"

namespace hpd::ckpt {
namespace {

namespace fs = std::filesystem;

// Injected by tests/CMakeLists.txt.
const std::string kCorpusDir = HPD_CKPT_DATA;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("hpd-ckpt-test-" +
             std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << p;
}

/// Real detector state: a central sink fed half of a random execution.
/// Returns the image at the feeding cut, so queues/reorder/occurrence
/// counters are all mid-flight (the interesting serialization case).
DetectorImage central_image(std::uint64_t seed) {
  Rng rng(seed);
  testutil::ExecGenOptions opt;
  opt.processes = 4;
  opt.steps = 120;
  const auto exec = testutil::random_execution(rng, opt);
  const auto order = detect::offline::arrival_order(exec, std::nullopt);

  detect::CentralSink sink(0, {0, 1, 2, 3}, {});
  std::uint64_t fed = 0;
  for (const auto& [p, i] : order) {
    if (fed >= order.size() / 2) {
      break;
    }
    const Interval& x = exec.procs[p].intervals[i];
    x.origin == 0 ? sink.local_interval(x) : sink.report(x);
    ++fed;
  }
  DetectorImage img;
  img.kind = EngineKind::kCentral;
  img.consumed_events = fed;
  img.central = sink.snapshot();
  return img;
}

CheckpointData sample_data(std::uint64_t seed) {
  CheckpointData data;
  data.meta.engine_kind = static_cast<std::uint8_t>(EngineKind::kCentral);
  data.meta.consumed_events = 60;
  data.meta.occurrences_emitted = 3;
  data.detector = encode_detector(central_image(seed));
  EpochTable table;
  table.epochs = {{0, 1}, {1, 4}, {2, 2}};
  data.session = encode_epochs(table);
  return data;
}

// ---- Container format -------------------------------------------------------

TEST(CkptContainer, RoundTripPreservesEverySection) {
  const CheckpointData data = sample_data(11);
  const auto bytes = encode_checkpoint_file(data);
  const CheckpointData back = decode_checkpoint_file(bytes);
  EXPECT_EQ(back.meta.format_version, kFormatVersion);
  EXPECT_EQ(back.meta.engine_kind, data.meta.engine_kind);
  EXPECT_EQ(back.meta.consumed_events, data.meta.consumed_events);
  EXPECT_EQ(back.meta.occurrences_emitted, data.meta.occurrences_emitted);
  EXPECT_EQ(back.detector, data.detector);
  EXPECT_EQ(back.session, data.session);
  EXPECT_EQ(back.ft, data.ft);
}

TEST(CkptContainer, DetectorImageSurvivesReencode) {
  // decode(encode(img)) re-encodes to the identical bytes: the codec has
  // one canonical form, so nothing is lost or reordered in flight.
  const DetectorImage img = central_image(23);
  const auto bytes = encode_detector(img);
  const DetectorImage back = decode_detector(bytes);
  EXPECT_EQ(back.kind, img.kind);
  EXPECT_EQ(back.consumed_events, img.consumed_events);
  EXPECT_EQ(encode_detector(back), bytes);
}

TEST(CkptContainer, RestoredSinkContinuesExactly) {
  const DetectorImage img = central_image(31);
  const DetectorImage back = decode_detector(encode_detector(img));
  detect::CentralSink restored(0, {0, 1, 2, 3}, {});
  restored.restore(back.central);
  EXPECT_EQ(restored.snapshot().engine.queues.size(),
            img.central.engine.queues.size());
  EXPECT_EQ(restored.occurrences(), img.central.occurrence_count);
}

TEST(CkptContainer, RejectsBadMagic) {
  auto bytes = encode_checkpoint_file(sample_data(5));
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode_checkpoint_file(bytes), CkptError);
}

TEST(CkptContainer, RejectsMissingEndAsTorn) {
  const auto bytes = encode_checkpoint_file(sample_data(5));
  // Strip the END frame (its encoded size is stable: 1-byte varint length,
  // 1-byte payload 0xFF, 4-byte CRC).
  std::vector<std::uint8_t> torn(bytes.begin(), bytes.end() - 6);
  EXPECT_THROW(decode_checkpoint_file(torn), CkptError);
}

TEST(CkptContainer, RejectsTrailingBytes) {
  auto bytes = encode_checkpoint_file(sample_data(5));
  bytes.push_back(0x00);
  EXPECT_THROW(decode_checkpoint_file(bytes), CkptError);
}

TEST(CkptContainer, RejectsVersionSkew) {
  CheckpointData data = sample_data(5);
  data.meta.format_version = kFormatVersion + 1;
  const auto bytes = encode_checkpoint_file(data);
  EXPECT_THROW(decode_checkpoint_file(bytes), CkptError);
}

TEST(CkptContainer, EveryTruncationIsRejected) {
  const auto bytes = encode_checkpoint_file(sample_data(7));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(decode_checkpoint_file(cut), CkptError) << "len=" << len;
  }
}

TEST(CkptContainer, EveryBitFlipIsRejected) {
  // CRC-32C detects all single-bit errors, the magic check covers the
  // unframed prefix, and misparsed lengths land in truncation/overrun
  // paths — so no single flipped bit may ever load.
  const auto bytes = encode_checkpoint_file(sample_data(9));
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(decode_checkpoint_file(flipped), CkptError)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

// ---- Section codecs ---------------------------------------------------------

TEST(CkptSections, SessionStateRoundTrip) {
  SessionState s;
  s.self = 2;
  s.epoch = 5;
  s.send.push_back({1, 9, {{7, {0xAA, 0xBB}, 3, 2}, {8, {0xCC}, 1, 2}}});
  s.recv.push_back({0, 3, 41, {43, 44, 47}});
  s.peer_epochs = {{0, 3}, {1, 2}};
  const SessionState back = decode_session(encode_session(s));
  EXPECT_EQ(back.self, s.self);
  EXPECT_EQ(back.epoch, s.epoch);
  ASSERT_EQ(back.send.size(), 1u);
  EXPECT_EQ(back.send[0].peer, 1);
  EXPECT_EQ(back.send[0].next_seq, 9u);
  ASSERT_EQ(back.send[0].unacked.size(), 2u);
  EXPECT_EQ(back.send[0].unacked[0].body, (std::vector<std::uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(back.send[0].unacked[0].attempts, 3u);
  EXPECT_EQ(back.send[0].unacked[0].dst_epoch, 2u);
  ASSERT_EQ(back.recv.size(), 1u);
  EXPECT_EQ(back.recv[0].cum, 41u);
  EXPECT_EQ(back.recv[0].above, (std::vector<SeqNum>{43, 44, 47}));
  EXPECT_EQ(back.peer_epochs, s.peer_epochs);
}

TEST(CkptSections, FtStateRoundTrip) {
  FtState f;
  f.heartbeat.parent = 3;
  f.heartbeat.is_root = false;
  f.heartbeat.attached = true;
  f.heartbeat.root_path = {0, 1, 3};
  f.heartbeat.children = {5, 6};
  f.reattach.mode = 1;
  f.reattach.forbidden = 4;
  f.reattach.retries = 2;
  f.reattach.searching = true;
  const FtState back = decode_ft(encode_ft(f));
  EXPECT_EQ(back.heartbeat.parent, 3);
  EXPECT_TRUE(back.heartbeat.attached);
  EXPECT_EQ(back.heartbeat.root_path, f.heartbeat.root_path);
  EXPECT_EQ(back.heartbeat.children, f.heartbeat.children);
  EXPECT_EQ(back.reattach.mode, 1);
  EXPECT_EQ(back.reattach.forbidden, 4);
  EXPECT_EQ(back.reattach.retries, 2);
  EXPECT_TRUE(back.reattach.searching);
}

TEST(CkptSections, EpochTableRoundTrip) {
  EpochTable t;
  t.epochs = {{0, 1}, {3, 7}, {11, 2}};
  const EpochTable back = decode_epochs(encode_epochs(t));
  EXPECT_EQ(back.epochs, t.epochs);
}

TEST(CkptSections, SectionDecodersRejectTruncation) {
  const auto bytes = encode_epochs({{{0, 1}, {1, 2}}});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(decode_epochs(cut), CkptError) << "len=" << len;
  }
}

// ---- CheckpointStore --------------------------------------------------------

TEST(CkptStore, WriteThenLoadLatest) {
  TempDir dir;
  CheckpointStore store(dir.path().string(), "t");
  const std::uint64_t g1 = store.write(sample_data(1));
  EXPECT_EQ(g1, 1u);
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, 1u);
  EXPECT_EQ(loaded->meta.consumed_events, 60u);
  EXPECT_EQ(store.counters().writes, 1u);
  EXPECT_GT(store.counters().bytes_written, 0u);
}

TEST(CkptStore, EmptyDirectoryLoadsNothing) {
  TempDir dir;
  CheckpointStore store(dir.path().string(), "t");
  EXPECT_FALSE(store.load_latest().has_value());
}

TEST(CkptStore, PrunesBeyondKeepGenerations) {
  TempDir dir;
  CheckpointStore store(dir.path().string(), "t");
  for (int i = 0; i < 5; ++i) {
    store.write(sample_data(1));
  }
  std::size_t ckpt_files = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    if (e.path().extension() == ".ckpt") {
      ++ckpt_files;
    }
  }
  EXPECT_EQ(ckpt_files, CheckpointStore::kKeepGenerations);
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, 5u);
}

TEST(CkptStore, TornNewestFallsBackOneGeneration) {
  TempDir dir;
  std::uint64_t g2 = 0;
  {
    CheckpointStore store(dir.path().string(), "t");
    store.write(sample_data(1));
    g2 = store.write(sample_data(2));
  }
  // Tear the newest file the way a crashed writer would: cut it short.
  const fs::path newest =
      dir.path() / ("t-" + std::to_string(g2) + ".ckpt");
  auto bytes = read_file(newest);
  bytes.resize(bytes.size() / 2);
  write_file(newest, bytes);

  CheckpointStore reopened(dir.path().string(), "t");
  const auto loaded = reopened.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, g2 - 1);
  EXPECT_EQ(reopened.counters().torn_writes_skipped, 1u);
  EXPECT_EQ(reopened.counters().restore_generation, g2 - 1);
}

TEST(CkptStore, CorruptNewestFallsBackOneGeneration) {
  TempDir dir;
  std::uint64_t g2 = 0;
  {
    CheckpointStore store(dir.path().string(), "t");
    store.write(sample_data(1));
    g2 = store.write(sample_data(2));
  }
  const fs::path newest =
      dir.path() / ("t-" + std::to_string(g2) + ".ckpt");
  auto bytes = read_file(newest);
  bytes[bytes.size() / 2] ^= 0x10;  // one flipped bit mid-payload
  write_file(newest, bytes);

  CheckpointStore reopened(dir.path().string(), "t");
  const auto loaded = reopened.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, g2 - 1);
  EXPECT_EQ(reopened.counters().torn_writes_skipped, 1u);
}

TEST(CkptStore, MissingManifestFallsBackToDirectoryScan) {
  TempDir dir;
  {
    CheckpointStore store(dir.path().string(), "t");
    store.write(sample_data(1));
    store.write(sample_data(2));
  }
  fs::remove(dir.path() / "t.manifest");
  CheckpointStore reopened(dir.path().string(), "t");
  const auto loaded = reopened.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, 2u);
  // And the next write must not collide with existing generations.
  EXPECT_GT(reopened.next_generation(), 2u);
}

TEST(CkptStore, GenerationsResumeAcrossReopen) {
  TempDir dir;
  {
    CheckpointStore store(dir.path().string(), "t");
    store.write(sample_data(1));
  }
  CheckpointStore reopened(dir.path().string(), "t");
  EXPECT_EQ(reopened.write(sample_data(2)), 2u);
}

// ---- Event stream -----------------------------------------------------------

std::vector<Interval> exec_events(std::uint64_t seed, std::size_t procs,
                                  std::size_t steps) {
  Rng rng(seed);
  testutil::ExecGenOptions opt;
  opt.processes = procs;
  opt.steps = steps;
  const auto exec = testutil::random_execution(rng, opt);
  std::vector<Interval> events;
  for (const auto& [p, i] : detect::offline::arrival_order(exec, std::nullopt)) {
    events.push_back(exec.procs[p].intervals[i]);
  }
  return events;
}

TEST(CkptEventStream, RoundTripIncludingCompletedAt) {
  TempDir dir;
  const fs::path file = dir.path() / "s.evt";
  auto events = exec_events(3, 3, 80);
  ASSERT_FALSE(events.empty());
  events[0].completed_at = 12.625;  // must survive (wire drops it; ckpt not)
  {
    EventStreamWriter w(file.string(), 3);
    for (const Interval& x : events) {
      w.append(x);
    }
    w.finish();
    EXPECT_EQ(w.events_written(), events.size());
  }
  EventStreamReader r(file.string());
  std::vector<Interval> back;
  Interval ev;
  while (r.next(ev) == EventStreamReader::Status::kEvent) {
    back.push_back(ev);
  }
  EXPECT_TRUE(r.have_header());
  EXPECT_EQ(r.num_processes(), 3u);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].origin, events[i].origin);
    EXPECT_EQ(back[i].seq, events[i].seq);
    EXPECT_EQ(back[i].lo, events[i].lo);
    EXPECT_EQ(back[i].hi, events[i].hi);
    EXPECT_EQ(back[i].completed_at, events[i].completed_at) << i;
  }
  // Past END the reader keeps reporting kEnd, never kWait.
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kEnd);
}

TEST(CkptEventStream, TailReaderWaitsThenCatchesUp) {
  TempDir dir;
  const fs::path file = dir.path() / "s.evt";
  const auto events = exec_events(5, 3, 60);
  ASSERT_GE(events.size(), 4u);

  EventStreamWriter w(file.string(), 3);
  w.append(events[0]);

  EventStreamReader r(file.string());
  Interval ev;
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kEvent);
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kWait);  // nothing yet
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kWait);  // still nothing

  w.append(events[1]);
  w.append(events[2]);
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kEvent);
  EXPECT_EQ(ev.seq, events[1].seq);
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kEvent);
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kWait);

  w.finish();
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kEnd);
  EXPECT_EQ(r.events_read(), 3u);
}

TEST(CkptEventStream, ReaderWaitsThroughPartialMagic) {
  // A tail reader racing the producer's very first write sees a torso of
  // the magic — that is kWait, not corruption.
  TempDir dir;
  const fs::path file = dir.path() / "s.evt";
  {
    EventStreamWriter w(file.string(), 2);
    w.finish();
  }
  const auto full = read_file(file);
  const fs::path racing = dir.path() / "racing.evt";
  write_file(racing, {full.begin(), full.begin() + 3});

  EventStreamReader r(racing.string());
  Interval ev;
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kWait);
  write_file(racing, full);  // producer finished its writes
  EXPECT_EQ(r.next(ev), EventStreamReader::Status::kEnd);
}

TEST(CkptEventStream, RejectsWrongMagicAndCorruption) {
  TempDir dir;
  const fs::path file = dir.path() / "s.evt";
  const auto events = exec_events(7, 3, 60);
  {
    EventStreamWriter w(file.string(), 3);
    for (const Interval& x : events) {
      w.append(x);
    }
    w.finish();
  }
  const auto bytes = read_file(file);

  {
    auto bad = bytes;
    bad[0] ^= 0xFF;
    const fs::path p = dir.path() / "badmagic.evt";
    write_file(p, bad);
    EventStreamReader r(p.string());
    Interval ev;
    EXPECT_THROW(r.next(ev), CkptError);
  }
  {
    auto bad = bytes;
    bad[bytes.size() / 2] ^= 0x04;
    const fs::path p = dir.path() / "bitflip.evt";
    write_file(p, bad);
    EventStreamReader r(p.string());
    Interval ev;
    bool threw = false;
    try {
      while (r.next(ev) == EventStreamReader::Status::kEvent) {
      }
    } catch (const CkptError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }
}

// ---- Committed corpus -------------------------------------------------------
//
// The corpus pins the on-disk format across releases: these bytes were
// written by the current writer and committed; any codec change that stops
// loading them (or starts loading the corrupt ones) is a format break.

TEST(CkptCorpus, ValidFilesLoad) {
  for (const char* name :
       {"valid-central.ckpt", "valid-slicing.ckpt", "valid-hier.ckpt"}) {
    const fs::path p = fs::path(kCorpusDir) / name;
    ASSERT_TRUE(fs::exists(p)) << p;
    const CheckpointData data = decode_checkpoint_file(read_file(p));
    EXPECT_EQ(data.meta.format_version, kFormatVersion) << name;
    EXPECT_GT(data.meta.consumed_events, 0u) << name;
    const DetectorImage img = decode_detector(data.detector);
    EXPECT_EQ(static_cast<std::uint8_t>(img.kind), data.meta.engine_kind)
        << name;
  }
}

TEST(CkptCorpus, TornAndCorruptFilesStayRejected) {
  for (const char* name : {"torn.ckpt", "bitflip.ckpt"}) {
    const fs::path p = fs::path(kCorpusDir) / name;
    ASSERT_TRUE(fs::exists(p)) << p;
    EXPECT_THROW(decode_checkpoint_file(read_file(p)), CkptError) << name;
  }
}

TEST(CkptCorpus, CommittedEventStreamReplays) {
  const fs::path p = fs::path(kCorpusDir) / "pulse.evt";
  ASSERT_TRUE(fs::exists(p));
  EventStreamReader r(p.string());
  Interval ev;
  std::size_t events = 0;
  while (r.next(ev) == EventStreamReader::Status::kEvent) {
    ++events;
  }
  EXPECT_TRUE(r.have_header());
  EXPECT_EQ(r.num_processes(), 7u);
  EXPECT_EQ(events, 84u);
}

}  // namespace
}  // namespace hpd::ckpt
