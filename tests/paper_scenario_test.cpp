// The paper's running example (Figure 2), reproduced event-for-event.
//
// Process mapping (chosen so the reattachment leader election reproduces
// the paper's post-failure tree, Fig. 2(c), where P4 heads the survivors):
//   paper P4 → id 0,  paper P2 → id 1,  paper P1 → id 2,  paper P3 → id 3.
//
// Spanning tree (Fig. 2(a)): root 3 (P3) with children 1 (P2) and 0 (P4);
// node 1 has child 2 (P1). The topology additionally has the P2–P4 edge
// used for the reconnection.
//
// Timing (Fig. 2(b)), with fixed channel delay 1.0:
//   x1 = P1's long interval [t1 .. t30]
//   x2 = P2's early interval [t1.5 .. t5) — crosses x1 only
//   x3 = P2's second interval [t10 .. t20)
//   x4 = P3's interval [t8 .. t19)
//   x5 = P4's interval [t10 .. t18)
// P2 tells P3 about x2's end (send @6), so min(x4) ≰ max(x2): the first
// detection attempt at P3 on {x1, x2, x4, x5} fails and the {x1, x2}
// aggregate is eliminated; the second attempt on {x1, x3, x4, x5} succeeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "detect/offline/replay.hpp"
#include "runner/experiment.hpp"
#include "trace/scripted.hpp"

namespace hpd::runner {
namespace {

constexpr ProcessId kP4 = 0;
constexpr ProcessId kP2 = 1;
constexpr ProcessId kP1 = 2;
constexpr ProcessId kP3 = 3;

ExperimentConfig figure2_config() {
  ExperimentConfig cfg;
  net::Topology topo(4);
  topo.add_edge(kP3, kP2);
  topo.add_edge(kP2, kP1);
  topo.add_edge(kP3, kP4);
  topo.add_edge(kP2, kP4);  // the reconnection edge of Fig. 2(c)
  cfg.topology = topo;
  std::vector<ProcessId> parents(4, kNoProcess);
  parents[idx(kP2)] = kP3;
  parents[idx(kP4)] = kP3;
  parents[idx(kP1)] = kP2;
  cfg.tree = net::SpanningTree::from_parents(parents, kP3);

  std::map<ProcessId, std::vector<trace::ScriptAction>> scripts;
  using trace::at_predicate;
  using trace::at_send;
  scripts[kP1] = {at_predicate(1.0, true), at_send(2.0, kP2),
                  at_send(11.0, kP2), at_predicate(30.0, false)};
  scripts[kP2] = {at_predicate(1.5, true), at_send(3.5, kP1),
                  at_predicate(5.0, false), at_send(6.0, kP3),
                  at_predicate(10.0, true), at_send(13.0, kP3),
                  at_send(17.0, kP1), at_predicate(20.0, false)};
  scripts[kP3] = {at_predicate(8.0, true), at_send(15.0, kP2),
                  at_send(15.5, kP4), at_predicate(19.0, false)};
  scripts[kP4] = {at_predicate(10.0, true), at_send(13.0, kP3),
                  at_predicate(18.0, false)};
  cfg.behavior_factory = [scripts](ProcessId id) {
    auto it = scripts.find(id);
    return std::make_unique<trace::ScriptedBehavior>(
        it == scripts.end() ? std::vector<trace::ScriptAction>{}
                            : it->second);
  };

  cfg.delay = sim::DelayModel::fixed(1.0);
  cfg.horizon = 60.0;
  cfg.drain = 30.0;
  cfg.track_provenance = true;
  cfg.record_execution = true;
  cfg.seed = 5;
  return cfg;
}

std::vector<std::pair<ProcessId, SeqNum>> bases_of(
    const detect::OccurrenceRecord& rec) {
  std::vector<std::pair<ProcessId, SeqNum>> out;
  for (const Interval& m : rec.solution) {
    const auto b = base_intervals(m);
    out.insert(out.end(), b.begin(), b.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PaperFigure2Test, RepeatedDetectionAtP2AndOneGlobalAtP3) {
  const ExperimentResult res = run_experiment(figure2_config());

  // P2 detects twice within its subtree {P1, P2}: {x1, x2} then {x1, x3}.
  EXPECT_EQ(res.metrics.node(kP2).detections, 2u);
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> at_p2;
  for (const auto& rec : res.occurrences) {
    if (rec.detector == kP2) {
      at_p2.push_back(bases_of(rec));
    }
  }
  ASSERT_EQ(at_p2.size(), 2u);
  EXPECT_EQ(at_p2[0], (std::vector<std::pair<ProcessId, SeqNum>>{
                          {kP2, 1}, {kP1, 1}}));  // {x2, x1}
  EXPECT_EQ(at_p2[1], (std::vector<std::pair<ProcessId, SeqNum>>{
                          {kP2, 2}, {kP1, 1}}));  // {x3, x1}

  // The root P3 detects the predicate exactly once, for {x1, x3, x4, x5}:
  // the first attempt on {x1, x2, x4, x5} must fail (Fig. 2's argument for
  // why repeated detection is necessary).
  EXPECT_EQ(res.global_count, 1u);
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> at_root;
  for (const auto& rec : res.occurrences) {
    if (rec.detector == kP3) {
      at_root.push_back(bases_of(rec));
    }
  }
  ASSERT_EQ(at_root.size(), 1u);
  EXPECT_EQ(at_root[0], (std::vector<std::pair<ProcessId, SeqNum>>{
                            {kP4, 1}, {kP2, 2}, {kP1, 1}, {kP3, 1}}));

  // Each leaf saw its own interval once.
  EXPECT_EQ(res.metrics.node(kP1).detections, 1u);
  EXPECT_EQ(res.metrics.node(kP4).detections, 1u);
}

TEST(PaperFigure2Test, OneShotDetectionWouldMissTheGlobalSolution) {
  // The paper's motivation: if P2 only ever reported its first solution
  // {x1, x2}, the global set could never be detected. Verified offline:
  // one-shot replay of P2's subtree finds {x1, x2}; the global replay needs
  // P2's *second* interval.
  const ExperimentResult res = run_experiment(figure2_config());
  const auto all = detect::offline::replay_centralized(res.execution);
  ASSERT_EQ(all.size(), 1u);
  bool uses_x3 = false;
  for (const auto& m : all[0].members) {
    if (m.origin == kP2 && m.seq == 2) {
      uses_x3 = true;
    }
  }
  EXPECT_TRUE(uses_x3);
}

TEST(PaperFigure2Test, Figure2cFailureOfP3) {
  ExperimentConfig cfg = figure2_config();
  cfg.heartbeats = true;
  cfg.hb_config.period = 1.0;
  cfg.hb_config.timeout_multiplier = 3.5;
  cfg.reattach_config.probe_window = 2.5;  // > probe+ack round trip (2.0)
  cfg.reattach_config.retry_backoff = 3.0;
  cfg.failures.push_back(FailureEvent{21.0, kP3});  // after x4 finishes
  cfg.horizon = 120.0;
  cfg.drain = 60.0;
  const ExperimentResult res = run_experiment(cfg);

  // The survivors re-form a tree headed by P4 (Fig. 2(c) shape): P2 under
  // P4, P1 still under P2.
  EXPECT_FALSE(res.final_alive[idx(kP3)]);
  EXPECT_EQ(res.final_parents[idx(kP4)], kNoProcess);
  EXPECT_EQ(res.final_parents[idx(kP2)], kP4);
  EXPECT_EQ(res.final_parents[idx(kP1)], kP2);

  // P2 still detects {x1, x2} and {x1, x3} (while orphaned, buffered), and
  // the new root P4 detects the partial predicate over {P1, P2, P4} in
  // {x1, x3, x5} — the paper's fault-tolerance headline.
  EXPECT_EQ(res.metrics.node(kP2).detections, 2u);
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> global;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      ASSERT_EQ(rec.detector, kP4);
      global.push_back(bases_of(rec));
    }
  }
  ASSERT_EQ(global.size(), 1u);
  EXPECT_EQ(global[0], (std::vector<std::pair<ProcessId, SeqNum>>{
                           {kP4, 1}, {kP2, 2}, {kP1, 1}}));
}

// The Fig. 2(c) outcome must not depend on channel timing: run the failure
// variant under several delay models and seeds and require the invariant
// outcome (survivors re-form one tree headed by P4; the partial predicate
// over {P1, P2, P4} is detected exactly once).
class Figure2cDelayAdversaryTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Figure2cDelayAdversaryTest, OutcomeIsTimingInvariant) {
  // NOTE: the scripted causal structure itself requires the fixed unit
  // delay for APP messages; the adversary varies the CONTROL plane by
  // jittering heartbeat/repair behaviour through the seed (phases, probe
  // arrival order) — the part of the system with real races.
  ExperimentConfig cfg = figure2_config();
  cfg.heartbeats = true;
  cfg.hb_config.period = 1.0;
  cfg.hb_config.timeout_multiplier = 3.5;
  cfg.reattach_config.probe_window = 2.5;
  cfg.reattach_config.retry_backoff = 3.0;
  cfg.failures.push_back(FailureEvent{21.0, kP3});
  cfg.horizon = 150.0;
  cfg.drain = 80.0;
  cfg.seed = GetParam();
  const ExperimentResult res = run_experiment(cfg);

  EXPECT_EQ(res.final_parents[idx(kP4)], kNoProcess) << "seed " << GetParam();
  EXPECT_EQ(res.final_parents[idx(kP2)], kP4);
  EXPECT_EQ(res.final_parents[idx(kP1)], kP2);
  std::size_t global = 0;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      ++global;
      EXPECT_EQ(rec.detector, kP4);
      EXPECT_EQ(rec.aggregate.weight, 3u);
    }
  }
  EXPECT_EQ(global, 1u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Figure2cDelayAdversaryTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(PaperFigure2Test, WithoutFaultToleranceDetectionDiesWithP3) {
  ExperimentConfig cfg = figure2_config();
  cfg.detector = DetectorKind::kCentralized;  // sink = P3
  cfg.failures.push_back(FailureEvent{21.0, kP3});
  const ExperimentResult res = run_experiment(cfg);
  // The centralized baseline loses everything when the sink dies:
  // x1 completes after the failure and the already-collected intervals
  // are gone — no detection, ever.
  EXPECT_EQ(res.global_count, 0u);
}

}  // namespace
}  // namespace hpd::runner
