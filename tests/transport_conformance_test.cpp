// Transport conformance: the behavioural contract of transport::Endpoint,
// checked against every backend — the deterministic simulator and the live
// thread/socket transport (unix-domain and TCP flavours).
//
// Assertions are ordering-agnostic: the contract promises delivery, payload
// integrity, timer semantics and crash behaviour, but no ordering across
// distinct (src, dst) pairs and no delay bounds. All inspection of node
// state happens after stop(), when every callback thread has been joined.
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "metrics/counters.hpp"
#include "rt/backend.hpp"
#include "rt/chaos.hpp"
#include "sim/delay.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"

namespace hpd {
namespace {

std::vector<std::uint8_t> payload_bytes(int a, int b) {
  return {static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b), 0x5A};
}

/// A programmable protocol node: tests install behaviour as lambdas. All
/// fields are written only from the node's callback context; tests read
/// them after Harness::stop().
class ScriptNode : public transport::Node {
 public:
  void on_start() override {
    if (start_fn) {
      start_fn(*this);
    }
  }
  void on_message(const transport::Message& msg) override {
    received.push_back(msg);
    if (message_fn) {
      message_fn(*this, msg);
    }
  }
  void on_timer(int tag) override {
    ++timer_fires[tag];
    if (timer_fn) {
      timer_fn(*this, tag);
    }
  }

  void send_to(ProcessId dst, int type, std::vector<std::uint8_t> bytes) {
    transport::Message m;
    m.src = self;
    m.dst = dst;
    m.type = type;
    m.wire_words = bytes.size();
    m.payload = std::move(bytes);
    net->send(std::move(m));
  }

  ProcessId self = kNoProcess;
  transport::Endpoint* net = nullptr;
  std::function<void(ScriptNode&)> start_fn;
  std::function<void(ScriptNode&, const transport::Message&)> message_fn;
  std::function<void(ScriptNode&, int)> timer_fn;

  transport::TimerId saved_timer = transport::kNoTimer;
  std::vector<transport::Message> received;
  std::map<int, int> timer_fires;
};

/// Backend-independent driver surface.
class Harness {
 public:
  virtual ~Harness() = default;
  virtual transport::Endpoint& endpoint(ProcessId id) = 0;
  virtual void start() = 0;
  /// Advance protocol time by `t` units (virtual or scaled wall clock).
  virtual void run_for(SimTime t) = 0;
  virtual void crash(ProcessId id) = 0;
  virtual void stop() = 0;
};

class SimHarness final : public Harness {
 public:
  SimHarness(std::vector<ScriptNode>& nodes,
             std::function<bool(ProcessId, ProcessId)> link_ok)
      : metrics_(nodes.size()),
        rng_(99),
        net_(nodes.size(), sched_, rng_, sim::DelayModel::uniform(0.1, 0.6),
             metrics_, std::move(link_ok)) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i].self = static_cast<ProcessId>(i);
      nodes[i].net = &net_;
      net_.register_node(static_cast<ProcessId>(i), nodes[i]);
    }
  }

  transport::Endpoint& endpoint(ProcessId) override { return net_; }
  void start() override { net_.start(); }
  void run_for(SimTime t) override { sched_.run_until(sched_.now() + t); }
  void crash(ProcessId id) override { net_.crash(id); }
  void stop() override {}

 private:
  MetricsRegistry metrics_;
  Rng rng_;
  sim::Scheduler sched_;
  sim::Network net_;
};

class LiveHarness final : public Harness {
 public:
  LiveHarness(std::vector<ScriptNode>& nodes,
              std::function<bool(ProcessId, ProcessId)> link_ok,
              rt::SockAddr::Kind kind, rt::LiveBackendKind backend) {
    rt::LiveConfig cfg;
    cfg.backend = backend;
    cfg.socket_kind = kind;
    cfg.time_scale = 0.005;  // 5 ms per protocol time unit: jitter-robust
    net_ = rt::make_live_backend(nodes.size(), cfg);
    if (link_ok) {
      net_->set_link_filter(std::move(link_ok));
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto id = static_cast<ProcessId>(i);
      nodes[i].self = id;
      nodes[i].net = &net_->endpoint(id);
      net_->register_node(id, nodes[i]);
    }
  }

  transport::Endpoint& endpoint(ProcessId id) override {
    return net_->endpoint(id);
  }
  void start() override { net_->start(); }
  void run_for(SimTime t) override { net_->sleep_until(net_->now() + t); }
  void crash(ProcessId id) override { net_->crash(id); }
  void stop() override { net_->stop(); }

 private:
  std::unique_ptr<rt::LiveBackend> net_;
};

enum class Backend { kSim, kLiveUnix, kLiveTcp, kReactorUnix, kReactorTcp };

class TransportConformance : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<Harness> make(
      std::vector<ScriptNode>& nodes,
      std::function<bool(ProcessId, ProcessId)> link_ok = nullptr) {
    switch (GetParam()) {
      case Backend::kSim:
        return std::make_unique<SimHarness>(nodes, std::move(link_ok));
      case Backend::kLiveUnix:
        return std::make_unique<LiveHarness>(nodes, std::move(link_ok),
                                             rt::SockAddr::Kind::kUnix,
                                             rt::LiveBackendKind::kThreads);
      case Backend::kLiveTcp:
        return std::make_unique<LiveHarness>(nodes, std::move(link_ok),
                                             rt::SockAddr::Kind::kTcp,
                                             rt::LiveBackendKind::kThreads);
      case Backend::kReactorUnix:
        return std::make_unique<LiveHarness>(nodes, std::move(link_ok),
                                             rt::SockAddr::Kind::kUnix,
                                             rt::LiveBackendKind::kReactor);
      case Backend::kReactorTcp:
        return std::make_unique<LiveHarness>(nodes, std::move(link_ok),
                                             rt::SockAddr::Kind::kTcp,
                                             rt::LiveBackendKind::kReactor);
    }
    return nullptr;
  }
};

std::vector<std::uint8_t> body_of(const transport::Message& m) {
  return std::any_cast<std::vector<std::uint8_t>>(m.payload);
}

TEST_P(TransportConformance, DeliversAllWithIntactPayloads) {
  constexpr int kCount = 25;
  std::vector<ScriptNode> nodes(2);
  nodes[0].start_fn = [](ScriptNode& n) {
    for (int k = 0; k < kCount; ++k) {
      n.send_to(1, 7, payload_bytes(k, k * 3));
    }
  };
  auto h = make(nodes);
  h->start();
  h->run_for(30.0);
  h->stop();

  ASSERT_EQ(nodes[1].received.size(), static_cast<std::size_t>(kCount));
  // Payloads intact, as a multiset (no cross-message ordering promised).
  std::vector<std::vector<std::uint8_t>> got;
  std::vector<std::vector<std::uint8_t>> expect;
  for (const auto& m : nodes[1].received) {
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.dst, 1);
    EXPECT_EQ(m.type, 7);
    got.push_back(body_of(m));
  }
  for (int k = 0; k < kCount; ++k) {
    expect.push_back(payload_bytes(k, k * 3));
  }
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

TEST_P(TransportConformance, AllToAllDelivery) {
  constexpr std::size_t kN = 4;
  std::vector<ScriptNode> nodes(kN);
  for (auto& node : nodes) {
    node.start_fn = [](ScriptNode& n) {
      for (ProcessId d = 0; d < static_cast<ProcessId>(kN); ++d) {
        if (d != n.self) {
          n.send_to(d, 2, payload_bytes(n.self, d));
        }
      }
    };
  }
  auto h = make(nodes);
  h->start();
  h->run_for(30.0);
  h->stop();

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(nodes[i].received.size(), kN - 1) << "node " << i;
    std::vector<ProcessId> senders;
    for (const auto& m : nodes[i].received) {
      senders.push_back(m.src);
      EXPECT_EQ(body_of(m), payload_bytes(m.src, static_cast<int>(i)));
    }
    std::sort(senders.begin(), senders.end());
    std::vector<ProcessId> expect;
    for (std::size_t s = 0; s < kN; ++s) {
      if (s != i) {
        expect.push_back(static_cast<ProcessId>(s));
      }
    }
    EXPECT_EQ(senders, expect);
  }
}

TEST_P(TransportConformance, RepliesFlowBack) {
  // Request/response across the transport: 1 echoes everything back to 0,
  // from inside its on_message callback (the threading contract's context).
  constexpr int kCount = 10;
  std::vector<ScriptNode> nodes(2);
  nodes[0].start_fn = [](ScriptNode& n) {
    for (int k = 0; k < kCount; ++k) {
      n.send_to(1, 3, payload_bytes(k, 1));
    }
  };
  nodes[1].message_fn = [](ScriptNode& n, const transport::Message& m) {
    n.send_to(m.src, 4, body_of(m));
  };
  auto h = make(nodes);
  h->start();
  h->run_for(30.0);
  h->stop();
  ASSERT_EQ(nodes[0].received.size(), static_cast<std::size_t>(kCount));
  std::vector<std::vector<std::uint8_t>> got;
  for (const auto& m : nodes[0].received) {
    EXPECT_EQ(m.type, 4);
    got.push_back(body_of(m));
  }
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(std::unique(got.begin(), got.end()) == got.end());
}

TEST_P(TransportConformance, SelfSendDeliversLocally) {
  std::vector<ScriptNode> nodes(2);
  nodes[0].start_fn = [](ScriptNode& n) {
    n.send_to(0, 6, payload_bytes(1, 2));
  };
  auto h = make(nodes);
  h->start();
  h->run_for(10.0);
  h->stop();
  ASSERT_EQ(nodes[0].received.size(), 1u);
  EXPECT_EQ(nodes[0].received[0].src, 0);
  EXPECT_EQ(nodes[0].received[0].type, 6);
  EXPECT_EQ(body_of(nodes[0].received[0]), payload_bytes(1, 2));
}

TEST_P(TransportConformance, TimerSemantics) {
  std::vector<ScriptNode> nodes(1);
  nodes[0].start_fn = [](ScriptNode& n) {
    n.saved_timer =
        n.net->set_timer(n.self, 1, 2.0, /*periodic=*/true, /*period=*/2.0);
    n.net->set_timer(n.self, 2, 3.0);  // one-shot: fires exactly once
    const transport::TimerId doomed = n.net->set_timer(n.self, 3, 5.0);
    n.net->cancel_timer(doomed);  // cancelled before expiry: never fires
  };
  nodes[0].timer_fn = [](ScriptNode& n, int tag) {
    if (tag == 1 && n.timer_fires[1] == 3) {
      // Cancelling a periodic timer from its own callback stops it.
      n.net->cancel_timer(n.saved_timer);
    }
  };
  auto h = make(nodes);
  h->start();
  h->run_for(40.0);
  h->stop();
  EXPECT_EQ(nodes[0].timer_fires[1], 3);
  EXPECT_EQ(nodes[0].timer_fires[2], 1);
  EXPECT_EQ(nodes[0].timer_fires.count(3), 0u);
}

TEST_P(TransportConformance, LinkFilterBlocksNonNeighbors) {
  // Chain 0 - 1 - 2: direct 0→2 traffic must be dropped by the transport.
  auto chain = [](ProcessId a, ProcessId b) {
    return a - b == 1 || b - a == 1;
  };
  std::vector<ScriptNode> nodes(3);
  nodes[0].start_fn = [](ScriptNode& n) {
    n.send_to(2, 9, payload_bytes(0, 2));  // dropped: not a link
    n.send_to(1, 8, payload_bytes(0, 1));  // delivered
  };
  auto h = make(nodes, chain);
  h->start();
  h->run_for(20.0);
  h->stop();
  EXPECT_EQ(nodes[2].received.size(), 0u);
  ASSERT_EQ(nodes[1].received.size(), 1u);
  EXPECT_EQ(nodes[1].received[0].type, 8);
}

TEST_P(TransportConformance, CrashStopsDeliveryAndAliveReflectsIt) {
  std::vector<ScriptNode> nodes(2);
  // Node 0 streams one message per time unit to node 1, forever.
  nodes[0].start_fn = [](ScriptNode& n) {
    n.net->set_timer(n.self, 1, 1.0, /*periodic=*/true, /*period=*/1.0);
  };
  nodes[0].timer_fn = [](ScriptNode& n, int tag) {
    if (tag == 1) {
      n.send_to(1, 5, payload_bytes(n.timer_fires[1], 0));
    }
  };
  auto h = make(nodes);
  h->start();
  h->run_for(20.0);
  EXPECT_TRUE(h->endpoint(0).alive(1));
  h->crash(1);
  EXPECT_FALSE(h->endpoint(0).alive(1));
  // crash() is synchronous in every backend (scheduler purge / thread join /
  // worker op future), so the victim's delivery log is stable from here on:
  // "nothing delivered after death" is exact, not a timing-slack bound.
  const std::size_t at_crash = nodes[1].received.size();
  EXPECT_GE(at_crash, 5u);
  // The sender must keep running against a dead peer without deadlock.
  h->run_for(20.0);
  h->stop();
  EXPECT_EQ(nodes[1].received.size(), at_crash);
  EXPECT_GE(nodes[0].timer_fires[1], 15);  // sender stayed live throughout
}

// Chaos injection must be a pure function of (seed, src, dst, seq, attempt):
// two runs over real sockets — with all the kernel-scheduling jitter that
// implies — must produce byte-identical chaos-event logs. Retransmission is
// pushed past the test window so only first-attempt frames exist; otherwise
// wall-clock-dependent retransmit counts would legitimately differ between
// runs (each attempt is its own deterministic decision, but *how many*
// attempts happen depends on timing).
TEST(TransportChaosDeterminism, SameSeedSameEventLog) {
  auto run_once = [](rt::LiveBackendKind backend) {
    constexpr std::size_t kN = 3;
    std::vector<ScriptNode> nodes(kN);
    for (auto& node : nodes) {
      node.start_fn = [](ScriptNode& n) {
        for (ProcessId d = 0; d < static_cast<ProcessId>(kN); ++d) {
          if (d == n.self) {
            continue;
          }
          for (int k = 0; k < 20; ++k) {
            n.send_to(d, 2, payload_bytes(k, d));
          }
        }
      };
    }
    rt::LiveConfig cfg;
    cfg.backend = backend;
    cfg.time_scale = 0.005;
    cfg.retx_initial = 1.0e5;  // no retransmissions inside the test window
    cfg.chaos.drop_p = 0.25;
    cfg.chaos.dup_p = 0.15;
    cfg.chaos.corrupt_p = 0.10;
    cfg.chaos.reset_p = 0.05;
    cfg.chaos.delay_p = 0.10;
    cfg.chaos.seed = 42;
    std::unique_ptr<rt::LiveBackend> net = rt::make_live_backend(kN, cfg);
    for (std::size_t i = 0; i < kN; ++i) {
      const auto id = static_cast<ProcessId>(i);
      nodes[i].self = id;
      nodes[i].net = &net->endpoint(id);
      net->register_node(id, nodes[i]);
    }
    net->start();
    net->sleep_until(net->now() + 20.0);
    net->stop();
    return net->chaos_events();
  };

  // Determinism across runs — and across *backends*: the chaos plan is a
  // pure function of (seed, src, dst, seq, attempt), so the epoll reactor
  // must produce the byte-identical event log the thread backend does.
  const std::vector<rt::ChaosEvent> a =
      run_once(rt::LiveBackendKind::kThreads);
  const std::vector<rt::ChaosEvent> b =
      run_once(rt::LiveBackendKind::kThreads);
  const std::vector<rt::ChaosEvent> c =
      run_once(rt::LiveBackendKind::kReactor);
  EXPECT_FALSE(a.empty());
  auto expect_same = [&](const std::vector<rt::ChaosEvent>& x,
                         const char* label) {
    ASSERT_EQ(a.size(), x.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i] == x[i])
          << label << " diverged at event " << i << ": "
          << rt::to_string(a[i].kind) << " src=" << a[i].src
          << " dst=" << a[i].dst << " seq=" << a[i].seq
          << " attempt=" << a[i].attempt << " vs " << rt::to_string(x[i].kind)
          << " src=" << x[i].src << " dst=" << x[i].dst << " seq=" << x[i].seq
          << " attempt=" << x[i].attempt;
    }
  };
  expect_same(b, "threads-vs-threads");
  expect_same(c, "threads-vs-reactor");
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TransportConformance,
    ::testing::Values(Backend::kSim, Backend::kLiveUnix, Backend::kLiveTcp,
                      Backend::kReactorUnix, Backend::kReactorTcp),
    // Named `pinfo`, not `info`: the INSTANTIATE_ macro itself declares an
    // `info` parameter the lambda would shadow (-Wshadow).
    [](const ::testing::TestParamInfo<Backend>& pinfo) -> std::string {
      switch (pinfo.param) {
        case Backend::kSim:
          return "Sim";
        case Backend::kLiveUnix:
          return "LiveUnix";
        case Backend::kLiveTcp:
          return "LiveTcp";
        case Backend::kReactorUnix:
          return "ReactorUnix";
        case Backend::kReactorTcp:
          return "ReactorTcp";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace hpd
