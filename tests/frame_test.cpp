// wire/frame: varint-length + CRC32C framing over a byte stream.
#include "wire/frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace hpd::wire {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) {
    out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

TEST(FrameCrc, KnownVector) {
  // The canonical CRC-32C check value: crc32c("123456789") = 0xE3069283.
  const std::string s = "123456789";
  std::vector<std::uint8_t> b(s.begin(), s.end());
  EXPECT_EQ(crc32c(b), 0xE3069283u);
}

TEST(FrameCrc, EmptyIsZero) {
  EXPECT_EQ(crc32c(std::span<const std::uint8_t>{}), 0u);
}

TEST(FrameRoundTrip, SingleFrame) {
  const auto payload = bytes_of({1, 2, 3, 250, 0, 7});
  const auto f = frame(payload);
  FrameReader r;
  r.feed(f);
  const auto got = r.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(FrameRoundTrip, EmptyPayload) {
  const auto f = frame(std::span<const std::uint8_t>{});
  FrameReader r;
  r.feed(f);
  const auto got = r.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(FrameRoundTrip, ManyConcatenatedFrames) {
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> payloads;
  Rng rng(7);
  for (int k = 0; k < 100; ++k) {
    std::vector<std::uint8_t> p(
        static_cast<std::size_t>(rng.uniform_int(0, 300)));
    for (auto& b : p) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    append_frame(stream, p);
    payloads.push_back(std::move(p));
  }
  FrameReader r;
  r.feed(stream);
  for (const auto& expect : payloads) {
    const auto got = r.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expect);
  }
  EXPECT_EQ(r.next(), std::nullopt);
}

TEST(FrameRoundTrip, ArbitraryChunking) {
  // Deliver the same stream one byte at a time; boundaries must not matter.
  std::vector<std::uint8_t> stream;
  for (int k = 0; k < 20; ++k) {
    std::vector<std::uint8_t> p(static_cast<std::size_t>(k) * 17 + 1);
    std::iota(p.begin(), p.end(), static_cast<std::uint8_t>(k));
    append_frame(stream, p);
  }
  FrameReader r;
  std::size_t frames = 0;
  for (const std::uint8_t b : stream) {
    r.feed(std::span<const std::uint8_t>(&b, 1));
    while (r.next().has_value()) {
      ++frames;
    }
  }
  EXPECT_EQ(frames, 20u);
}

TEST(FrameDecoder, TruncatedWaitsForMore) {
  const auto payload = bytes_of({9, 9, 9, 9});
  const auto f = frame(payload);
  FrameReader r;
  for (std::size_t cut = 0; cut + 1 < f.size(); ++cut) {
    FrameReader partial;
    partial.feed(std::span<const std::uint8_t>(f.data(), cut));
    EXPECT_EQ(partial.next(), std::nullopt) << "cut at " << cut;
  }
  r.feed(f);
  EXPECT_TRUE(r.next().has_value());
}

TEST(FrameDecoder, CorruptPayloadThrows) {
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  auto f = frame(payload);
  for (std::size_t i = 0; i < f.size(); ++i) {
    auto bad = f;
    bad[i] ^= 0x40u;  // flip one bit anywhere: length, body, or checksum
    FrameReader r;
    r.feed(bad);
    bool fine = true;
    try {
      const auto got = r.next();
      // A length-prefix flip may just leave the reader waiting for more
      // bytes — that is acceptable; returning a *wrong payload* is not.
      fine = !got.has_value() || *got == payload;
    } catch (const FrameError&) {
      fine = true;  // detected
    }
    EXPECT_TRUE(fine) << "flip at byte " << i << " yielded a corrupt payload";
  }
}

TEST(FrameDecoder, ChecksumCoversEveryPayloadByte) {
  std::vector<std::uint8_t> payload(64, 0xAB);
  auto f = frame(payload);
  // Flip each payload byte (skip the 1-byte length prefix).
  for (std::size_t i = 1; i + 4 < f.size(); ++i) {
    auto bad = f;
    bad[i] ^= 0x01u;
    FrameReader r;
    r.feed(bad);
    EXPECT_THROW(r.next(), FrameError) << "payload flip at " << i;
  }
}

TEST(FrameDecoder, OversizedLengthRejected) {
  // 0xFF 0xFF 0xFF 0xFF 0x7F encodes ~34 GiB.
  const auto evil = bytes_of({0xFF, 0xFF, 0xFF, 0xFF, 0x7F});
  FrameReader r;
  r.feed(evil);
  EXPECT_THROW(r.next(), FrameError);
}

TEST(FrameDecoder, OverlongLengthPrefixRejected) {
  // Six continuation bytes: longer than any admissible length prefix.
  const auto evil = bytes_of({0x80, 0x80, 0x80, 0x80, 0x80, 0x80});
  FrameReader r;
  r.feed(evil);
  EXPECT_THROW(r.next(), FrameError);
}

TEST(FrameDecoder, ResyncAfterGoodFramesThenGarbage) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, bytes_of({1}));
  append_frame(stream, bytes_of({2, 2}));
  stream.push_back(0x05);  // claims 5 payload bytes...
  stream.insert(stream.end(), {1, 2, 3, 4, 5, 0, 0, 0, 0});  // ...bad crc
  FrameReader r;
  r.feed(stream);
  EXPECT_EQ(*r.next(), bytes_of({1}));
  EXPECT_EQ(*r.next(), bytes_of({2, 2}));
  EXPECT_THROW(r.next(), FrameError);
}

TEST(FrameDecoder, PoisonedAfterChecksumMismatch) {
  // A stream that lost sync cannot be trusted again: after the first
  // corruption the reader must refuse every further feed()/next(), even if
  // the later bytes happen to form valid frames. Recovery is a fresh
  // connection with a fresh reader (which is what rt::LiveTransport does).
  std::vector<std::uint8_t> stream;
  append_frame(stream, bytes_of({1, 2, 3}));
  stream[2] ^= 0x10u;  // corrupt a payload byte: CRC mismatch
  FrameReader r;
  EXPECT_FALSE(r.poisoned());
  r.feed(stream);
  EXPECT_THROW(r.next(), FrameError);
  EXPECT_TRUE(r.poisoned());

  const auto good = frame(bytes_of({9}));
  EXPECT_THROW(r.feed(good), FrameError);
  EXPECT_THROW(r.next(), FrameError);
  EXPECT_TRUE(r.poisoned());
  EXPECT_EQ(r.buffered(), 0u);  // poisoning discards the untrusted buffer

  // A fresh reader on the same good bytes works: the stream, not the
  // frame format, is what went bad.
  FrameReader fresh;
  fresh.feed(good);
  EXPECT_EQ(*fresh.next(), bytes_of({9}));
}

TEST(FrameDecoder, PoisonedAfterBadLengthPrefix) {
  const auto evil = bytes_of({0xFF, 0xFF, 0xFF, 0xFF, 0x7F});
  FrameReader r;
  r.feed(evil);
  EXPECT_THROW(r.next(), FrameError);
  EXPECT_TRUE(r.poisoned());
  EXPECT_THROW(r.feed(bytes_of({0})), FrameError);
}

TEST(FrameWriter, RejectsOversizedPayload) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> huge(kMaxFramePayload + 1);
  EXPECT_THROW(append_frame(out, huge), FrameError);
}

TEST(FrameRoundTrip, LargePayloadCrossesChunks) {
  std::vector<std::uint8_t> payload(70000);
  Rng rng(42);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto f = frame(payload);
  FrameReader r;
  std::size_t off = 0;
  std::optional<std::vector<std::uint8_t>> got;
  while (off < f.size()) {
    const std::size_t chunk = std::min<std::size_t>(4096, f.size() - off);
    r.feed(std::span<const std::uint8_t>(f.data() + off, chunk));
    off += chunk;
    if (auto p = r.next()) {
      got = std::move(p);
    }
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

}  // namespace
}  // namespace hpd::wire
