#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "interval/interval.hpp"

namespace hpd {
namespace {

Interval make(ProcessId origin, SeqNum seq, VectorClock lo, VectorClock hi) {
  Interval x;
  x.origin = origin;
  x.seq = seq;
  x.lo = std::move(lo);
  x.hi = std::move(hi);
  return x;
}

TEST(IntervalTest, PairwiseOverlapNeedsBothCrossings) {
  // P0's interval knows P1's start and vice versa -> overlap.
  const Interval a = make(0, 1, {1, 0}, {3, 2});
  const Interval b = make(1, 1, {0, 1}, {2, 3});
  EXPECT_TRUE(overlap(a, b));
  EXPECT_TRUE(overlap(b, a));

  // c entirely after a (causally): no overlap.
  const Interval c = make(1, 2, {3, 4}, {3, 6});
  EXPECT_FALSE(overlap(a, c));
}

TEST(IntervalTest, SetOverlapSkipsSelfPairs) {
  // A single-event interval must not falsify the set condition by itself.
  const Interval solo = make(0, 1, {1}, {1});
  const Interval xs[] = {solo};
  EXPECT_TRUE(overlap(std::span<const Interval>(xs)));
}

TEST(IntervalTest, SetOverlapDetectsViolation) {
  const Interval a = make(0, 1, {1, 0, 0}, {4, 2, 2});
  const Interval b = make(1, 1, {0, 1, 0}, {2, 4, 2});
  const Interval c = make(2, 1, {5, 5, 5}, {6, 6, 7});  // after both
  const Interval good[] = {a, b};
  const Interval bad[] = {a, b, c};
  EXPECT_TRUE(overlap(std::span<const Interval>(good)));
  EXPECT_FALSE(overlap(std::span<const Interval>(bad)));
}

TEST(AggregationTest, AggregateIsComponentwiseMaxMin) {
  const Interval a = make(0, 1, {1, 0, 2}, {5, 4, 9});
  const Interval b = make(2, 1, {0, 3, 1}, {7, 6, 3});
  const Interval agg = aggregate(a, b, 9, 4);
  EXPECT_EQ(agg.lo, (VectorClock{1, 3, 2}));  // Eq. (5)
  EXPECT_EQ(agg.hi, (VectorClock{5, 4, 3}));  // Eq. (6)
  EXPECT_EQ(agg.origin, 9);
  EXPECT_EQ(agg.seq, 4u);
  EXPECT_TRUE(agg.aggregated);
  EXPECT_EQ(agg.weight, 2u);
}

TEST(AggregationTest, EmptySetRejected) {
  std::vector<Interval> none;
  EXPECT_THROW(aggregate(std::span<const Interval>(none), 0, 1),
               AssertionError);
}

// The scenario of the paper's Figure 3: four processes; X = {x1@P1, x2@P3}
// and Y = {y1@P2, y2@P4} each satisfy overlap, and the aggregates overlap,
// hence Definitely holds across all four (Theorem 1). The exact clock
// values below are constructed to realize that causal structure (the
// figure's own numbers are embedded in an image; any instance with the
// same relations exercises the same claim).
class PaperFigure3Style : public ::testing::Test {
 protected:
  // A "round" of messages among all four processes makes every interval
  // see every other's start and be seen before every other's end.
  const Interval x1 = make(0, 1, {1, 0, 0, 0}, {4, 3, 3, 3});
  const Interval x2 = make(2, 1, {0, 0, 1, 0}, {3, 3, 4, 3});
  const Interval y1 = make(1, 1, {0, 1, 0, 0}, {3, 4, 3, 3});
  const Interval y2 = make(3, 1, {0, 0, 0, 1}, {3, 3, 3, 4});
};

TEST_F(PaperFigure3Style, PartsOverlap) {
  const Interval X[] = {x1, x2};
  const Interval Y[] = {y1, y2};
  EXPECT_TRUE(overlap(std::span<const Interval>(X)));
  EXPECT_TRUE(overlap(std::span<const Interval>(Y)));
}

TEST_F(PaperFigure3Style, Theorem1BothDirections) {
  const Interval X[] = {x1, x2};
  const Interval Y[] = {y1, y2};
  const Interval Z[] = {x1, x2, y1, y2};
  const Interval aggX = aggregate(std::span<const Interval>(X), 0, 1);
  const Interval aggY = aggregate(std::span<const Interval>(Y), 1, 1);
  // overlap(Z) holds, so the aggregates must overlap...
  EXPECT_TRUE(overlap(std::span<const Interval>(Z)));
  EXPECT_TRUE(overlap(aggX, aggY));
  // ... and u < r from the paper's Eq. (4) narrative:
  EXPECT_TRUE(vc_less(aggX.lo, aggY.hi));
  EXPECT_TRUE(vc_less(aggY.lo, aggX.hi));
}

TEST_F(PaperFigure3Style, Equation7AggregationComposes) {
  const Interval X[] = {x1, x2};
  const Interval Y[] = {y1, y2};
  const Interval Z[] = {x1, x2, y1, y2};
  const Interval aggX = aggregate(std::span<const Interval>(X), 7, 1);
  const Interval aggY = aggregate(std::span<const Interval>(Y), 7, 2);
  const Interval nested = aggregate(aggX, aggY, 7, 3);
  const Interval flat = aggregate(std::span<const Interval>(Z), 7, 3);
  EXPECT_EQ(nested.lo, flat.lo);
  EXPECT_EQ(nested.hi, flat.hi);
  EXPECT_EQ(nested.weight, flat.weight);
}

// Figure 1's point: the approach of [7] assumes solution sets are nested
// (min(x_i) ≺ min(x_j) ∧ max(x_j) ≺ max(x_i) for i < j). Here is a valid
// Definitely solution set that is NOT nested in either order — yet ⊓
// aggregates it without any ordering assumption.
TEST(AggregationTest, NonNestedSolutionExists) {
  const Interval a = make(0, 1, {1, 0}, {3, 2});
  const Interval b = make(1, 1, {0, 1}, {2, 3});
  const Interval set[] = {a, b};
  ASSERT_TRUE(overlap(std::span<const Interval>(set)));
  // Neither a nests inside b nor b inside a:
  const bool a_in_b = vc_less(b.lo, a.lo) && vc_less(a.hi, b.hi);
  const bool b_in_a = vc_less(a.lo, b.lo) && vc_less(b.hi, a.hi);
  EXPECT_FALSE(a_in_b);
  EXPECT_FALSE(b_in_a);
  const Interval agg = aggregate(std::span<const Interval>(set), 5, 1);
  EXPECT_TRUE(vc_leq(agg.lo, agg.hi));
}

TEST(IntervalTest, SuccessorRelation) {
  const Interval a = make(3, 1, {1, 0}, {2, 1});
  const Interval b = make(3, 2, {3, 2}, {4, 2});
  const Interval other = make(4, 2, {3, 2}, {4, 2});
  EXPECT_TRUE(is_successor(a, b));
  EXPECT_FALSE(is_successor(b, a));
  EXPECT_FALSE(is_successor(a, other));  // different origin
}

TEST(ProvenanceTest, BaseIntervalsRollUpThroughAggregates) {
  Interval a = make(0, 3, {1, 0}, {3, 2});
  Interval b = make(1, 7, {0, 1}, {2, 3});
  attach_base_provenance(a);
  attach_base_provenance(b);
  const Interval agg1 = aggregate(a, b, 5, 1);
  Interval c = make(0, 4, {4, 3}, {6, 5});
  attach_base_provenance(c);
  const Interval agg2 = aggregate(agg1, c, 6, 1);
  const auto bases = base_intervals(agg2);
  ASSERT_EQ(bases.size(), 3u);
  EXPECT_EQ(bases[0], (std::pair<ProcessId, SeqNum>{0, 3}));
  EXPECT_EQ(bases[1], (std::pair<ProcessId, SeqNum>{0, 4}));
  EXPECT_EQ(bases[2], (std::pair<ProcessId, SeqNum>{1, 7}));
}

TEST(ProvenanceTest, MissingProvenanceYieldsNoBases) {
  const Interval a = make(0, 1, {1, 0}, {3, 2});
  EXPECT_TRUE(base_intervals(a).empty());
  const Interval b = make(1, 1, {0, 1}, {2, 3});
  const Interval agg = aggregate(a, b, 5, 1);
  EXPECT_EQ(agg.provenance, nullptr);  // inputs had none
}

// ---- Theorem 1 as a randomized property ------------------------------------

class AggregationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Interval random_interval(Rng& rng, std::size_t n, ProcessId origin) {
    VectorClock lo(n);
    VectorClock hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = static_cast<ClockValue>(rng.uniform_int(0, 5));
      hi[i] = lo[i] + static_cast<ClockValue>(rng.uniform_int(0, 5));
    }
    return make(origin, 1, std::move(lo), std::move(hi));
  }
};

// Theorem 1 for arbitrary vectors holds as a sandwich (see the
// overlap_cuts doc comment for why the paper's strict ⇔ needs a repair on
// aggregated cuts):
//   strict overlap(⊓X,⊓Y) ∧ parts  ⇒  overlap(X∪Y)
//                                  ⇒  overlap_cuts(⊓X,⊓Y) ∧ parts.
// On raw executions (endpoints never equal across processes) the two
// bounds coincide; integration tests cover that exact equivalence.
TEST_P(AggregationPropertyTest, Theorem1SandwichOnRandomSets) {
  Rng rng(GetParam());
  int union_overlaps = 0;
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = 2 + rng.uniform_index(4);
    std::vector<Interval> X;
    std::vector<Interval> Y;
    std::vector<Interval> Z;
    const std::size_t kx = 1 + rng.uniform_index(3);
    const std::size_t ky = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < kx; ++i) {
      X.push_back(random_interval(rng, n, static_cast<ProcessId>(i)));
      Z.push_back(X.back());
    }
    for (std::size_t i = 0; i < ky; ++i) {
      Y.push_back(
          random_interval(rng, n, static_cast<ProcessId>(kx + i)));
      Z.push_back(Y.back());
    }
    const bool oz = overlap(std::span<const Interval>(Z));
    const bool ox = overlap(std::span<const Interval>(X));
    const bool oy = overlap(std::span<const Interval>(Y));
    const Interval ax = aggregate(std::span<const Interval>(X), 90, 1);
    const Interval ay = aggregate(std::span<const Interval>(Y), 91, 1);
    if (ox && oy && overlap(ax, ay)) {
      EXPECT_TRUE(oz) << "iter " << iter;  // strict lower bound
    }
    if (oz) {
      EXPECT_TRUE(ox && oy && overlap_cuts(ax, ay))
          << "iter " << iter;  // non-strict upper bound
    }
    union_overlaps += oz ? 1 : 0;
  }
  // The generator must exercise both sides.
  EXPECT_GT(union_overlaps, 0);
}

// Lemma 1 (d sets), same sandwich form.
TEST_P(AggregationPropertyTest, Lemma1SandwichForManySets) {
  Rng rng(GetParam() ^ 0x77);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = 2 + rng.uniform_index(3);
    const std::size_t d = 2 + rng.uniform_index(3);  // number of sets
    std::vector<std::vector<Interval>> sets(d);
    std::vector<Interval> z;
    ProcessId next_origin = 0;
    for (auto& s : sets) {
      const std::size_t k = 1 + rng.uniform_index(2);
      for (std::size_t i = 0; i < k; ++i) {
        s.push_back(random_interval(rng, n, next_origin++));
        z.push_back(s.back());
      }
    }
    bool parts_ok = true;
    std::vector<Interval> aggs;
    for (std::size_t i = 0; i < d; ++i) {
      parts_ok =
          parts_ok && overlap(std::span<const Interval>(sets[i]));
      aggs.push_back(aggregate(std::span<const Interval>(sets[i]),
                               static_cast<ProcessId>(100 + i), 1));
    }
    bool aggs_strict = true;
    bool aggs_leq = true;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        if (i != j) {
          aggs_strict = aggs_strict && vc_less(aggs[i].lo, aggs[j].hi);
          aggs_leq = aggs_leq && vc_leq(aggs[i].lo, aggs[j].hi);
        }
      }
    }
    const bool oz = overlap(std::span<const Interval>(z));
    if (parts_ok && aggs_strict) {
      EXPECT_TRUE(oz) << "iter " << iter;
    }
    if (oz) {
      EXPECT_TRUE(parts_ok && aggs_leq) << "iter " << iter;
    }
  }
}

TEST_P(AggregationPropertyTest, Equation7Associativity) {
  Rng rng(GetParam() ^ 0x99);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = 1 + rng.uniform_index(4);
    std::vector<Interval> X;
    std::vector<Interval> Y;
    for (std::size_t i = 0; i < 1 + rng.uniform_index(3); ++i) {
      X.push_back(random_interval(rng, n, static_cast<ProcessId>(i)));
    }
    for (std::size_t i = 0; i < 1 + rng.uniform_index(3); ++i) {
      Y.push_back(random_interval(rng, n, static_cast<ProcessId>(10 + i)));
    }
    std::vector<Interval> Z = X;
    Z.insert(Z.end(), Y.begin(), Y.end());
    const Interval ax = aggregate(std::span<const Interval>(X), 50, 1);
    const Interval ay = aggregate(std::span<const Interval>(Y), 51, 1);
    const Interval nested = aggregate(ax, ay, 52, 1);
    const Interval flat = aggregate(std::span<const Interval>(Z), 52, 1);
    EXPECT_EQ(nested.lo, flat.lo);
    EXPECT_EQ(nested.hi, flat.hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace hpd
