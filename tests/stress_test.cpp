// Stress tests: randomized failures with online repair, heavy channel
// reordering, and degenerate tree shapes — the scenarios most likely to
// break protocol state machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "detect/offline/replay.hpp"
#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"

namespace hpd::runner {
namespace {

using detect::offline::replay_centralized;

/// Survivors must form a forest of valid trees: live parents, no cycles.
/// Returns the number of roots.
std::size_t check_forest(const ExperimentResult& res) {
  const std::size_t n = res.final_alive.size();
  std::size_t roots = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!res.final_alive[i]) {
      continue;
    }
    const ProcessId p = res.final_parents[i];
    if (p == kNoProcess) {
      ++roots;
      continue;
    }
    EXPECT_TRUE(res.final_alive[idx(p)]) << "node " << i << " parent dead";
    // Walk up; must terminate (no cycle) within n hops.
    ProcessId cur = static_cast<ProcessId>(i);
    std::size_t hops = 0;
    while (cur != kNoProcess) {
      cur = res.final_parents[idx(cur)];
      if (++hops > n) {
        ADD_FAILURE() << "cycle through node " << i;
        break;
      }
    }
  }
  return roots;
}

class FailureStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureStressTest, RandomCrashesHealIntoOneTree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    ExperimentConfig cfg;
    Rng topo_rng = rng.split();
    cfg.topology = net::Topology::random_geometric(24, 0.3, topo_rng);
    cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
    trace::PulseConfig pc;
    pc.rounds = 12;
    pc.period = 90.0;
    cfg.behavior_factory = [pc](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(pc);
    };
    cfg.horizon = 1300.0;
    cfg.drain = 250.0;
    cfg.heartbeats = true;
    cfg.seed = rng();
    cfg.occurrence_solutions = false;

    // Kill three random distinct nodes, spaced apart, only if the topology
    // stays connected over the survivors (otherwise partitions are the
    // *expected* outcome and tested separately below).
    std::vector<bool> alive(cfg.topology.size(), true);
    SimTime when = 300.0;
    int killed = 0;
    while (killed < 3) {
      const auto v =
          static_cast<ProcessId>(rng.uniform_index(cfg.topology.size()));
      if (!alive[idx(v)]) {
        continue;
      }
      alive[idx(v)] = false;
      if (!cfg.topology.connected(&alive)) {
        alive[idx(v)] = true;
        continue;
      }
      cfg.failures.push_back(FailureEvent{when, v});
      when += 220.0;
      ++killed;
    }

    const ExperimentResult res = run_experiment(cfg);
    EXPECT_EQ(check_forest(res), 1u) << "trial " << trial;
    // Detection survived: the final root kept detecting after the last
    // crash (at least one global detection overall).
    EXPECT_GT(res.global_count, 0u) << "trial " << trial;
  }
}

TEST_P(FailureStressTest, PartitionYieldsTwoLiveDetectingTrees) {
  // A dumbbell: two cliques joined by one bridge node. Killing the bridge
  // partitions the network; each side must become its own tree and keep
  // detecting its own partial predicate.
  const std::size_t side = 4;
  net::Topology topo(2 * side + 1);
  const auto bridge = static_cast<ProcessId>(2 * side);
  for (std::size_t a = 0; a < side; ++a) {
    for (std::size_t b = a + 1; b < side; ++b) {
      topo.add_edge(static_cast<ProcessId>(a), static_cast<ProcessId>(b));
      topo.add_edge(static_cast<ProcessId>(side + a),
                    static_cast<ProcessId>(side + b));
    }
  }
  topo.add_edge(bridge, 0);
  topo.add_edge(bridge, static_cast<ProcessId>(side));

  ExperimentConfig cfg;
  cfg.topology = topo;
  cfg.tree = net::SpanningTree::bfs_tree(topo, bridge);
  trace::PulseConfig pc;
  pc.rounds = 10;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 1000.0;
  cfg.drain = 250.0;
  cfg.heartbeats = true;
  cfg.seed = GetParam();
  cfg.failures.push_back(FailureEvent{250.0, bridge});
  cfg.occurrence_solutions = false;

  const ExperimentResult res = run_experiment(cfg);
  EXPECT_EQ(check_forest(res), 2u);  // one tree per partition
  // Both partitions kept detecting (their roots raise global occurrences
  // for their own halves).
  std::set<ProcessId> detecting_roots;
  for (const auto& rec : res.occurrences) {
    if (rec.global && rec.time > 400.0) {
      detecting_roots.insert(rec.detector);
    }
  }
  EXPECT_EQ(detecting_roots.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureStressTest,
                         ::testing::Values(11u, 22u, 33u));

// ---- Heavy reordering --------------------------------------------------------

class ReorderStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReorderStressTest, ExponentialDelaysPreserveEquivalence) {
  ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 400.0;
  g.mean_gap = 3.0;
  g.p_send = 0.45;
  g.p_toggle = 0.35;
  g.max_intervals = 12;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  // Exponential tails reorder aggressively (mean 3 on top of min 0.1).
  cfg.delay = sim::DelayModel::exponential(3.0, 0.1);
  cfg.horizon = 420.0;
  cfg.drain = 120.0;
  cfg.seed = GetParam();
  cfg.record_execution = true;
  cfg.track_provenance = true;

  const ExperimentResult res = run_experiment(cfg);
  const auto reference = replay_centralized(res.execution);
  std::size_t online_global = 0;
  for (const auto& rec : res.occurrences) {
    online_global += rec.global ? 1 : 0;
  }
  EXPECT_EQ(online_global, reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderStressTest,
                         ::testing::Range<std::uint64_t>(200, 210));

// ---- Degenerate tree shapes ---------------------------------------------------

struct ShapeCase {
  const char* name;
  std::uint64_t seed;
};

class TreeShapeTest : public ::testing::Test {
 protected:
  static ExperimentConfig base_config(net::Topology topo,
                                      net::SpanningTree tree,
                                      std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.topology = std::move(topo);
    cfg.tree = std::move(tree);
    trace::PulseConfig pc;
    pc.rounds = 10;
    pc.period = 80.0;
    pc.participation = 0.9;
    cfg.behavior_factory = [pc](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(pc);
    };
    cfg.horizon = 900.0;
    cfg.drain = 120.0;
    cfg.seed = seed;
    cfg.record_execution = true;
    cfg.track_provenance = true;
    return cfg;
  }

  static void expect_matches_replay(const ExperimentConfig& cfg) {
    const ExperimentResult res = run_experiment(cfg);
    const auto reference = replay_centralized(res.execution);
    std::size_t online_global = 0;
    for (const auto& rec : res.occurrences) {
      online_global += rec.global ? 1 : 0;
    }
    EXPECT_EQ(online_global, reference.size());
    EXPECT_EQ(res.global_count, reference.size());
  }
};

TEST_F(TreeShapeTest, ChainTreeDegreeOne) {
  // h = n: every node has exactly one child — the deepest hierarchy.
  const std::size_t n = 8;
  net::Topology topo(n);
  std::vector<ProcessId> parents(n, kNoProcess);
  for (std::size_t i = 1; i < n; ++i) {
    topo.add_edge(static_cast<ProcessId>(i - 1), static_cast<ProcessId>(i));
    parents[i] = static_cast<ProcessId>(i - 1);
  }
  expect_matches_replay(base_config(
      std::move(topo), net::SpanningTree::from_parents(parents, 0), 31));
}

TEST_F(TreeShapeTest, StarTreeIsEffectivelyCentralized) {
  // h = 2: the hierarchy degenerates to the centralized layout.
  const std::size_t n = 9;
  net::Topology topo = net::Topology::star(n);
  expect_matches_replay(
      base_config(std::move(topo), net::SpanningTree::bfs_tree(
                                       net::Topology::star(n), 0),
                  32));
}

TEST_F(TreeShapeTest, LopsidedScaleFreeTree) {
  Rng rng(33);
  net::Topology topo = net::Topology::scale_free(20, 2, rng);
  auto tree = net::SpanningTree::bfs_tree(topo, 3);
  expect_matches_replay(base_config(std::move(topo), std::move(tree), 33));
}

TEST_F(TreeShapeTest, RandomRootsOnSmallWorld) {
  Rng rng(34);
  for (const ProcessId root : {0, 7, 13}) {
    net::Topology topo = net::Topology::small_world(16, 4, 0.25, rng);
    auto tree = net::SpanningTree::bfs_tree(topo, root);
    expect_matches_replay(base_config(std::move(topo), std::move(tree),
                                      static_cast<std::uint64_t>(40 + root)));
  }
}

}  // namespace
}  // namespace hpd::runner
