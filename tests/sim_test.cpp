#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "metrics/counters.hpp"
#include "sim/delay.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace hpd::sim {
namespace {

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.cancel(id);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, RunUntilStopsAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(3.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      s.schedule_after(1.0, recurse);
    }
  };
  s.schedule_at(0.0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(s.now(), 4.0);
}

TEST(SchedulerTest, RejectsPastAndInfiniteTimes) {
  Scheduler s;
  s.schedule_at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(1.0, [] {}), AssertionError);
  EXPECT_THROW(s.schedule_at(kNeverTime, [] {}), AssertionError);
}

TEST(DelayModelTest, FixedIsConstant) {
  Rng rng(1);
  const DelayModel m = DelayModel::fixed(2.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(m.sample(rng), 2.5);
  }
  EXPECT_FALSE(m.can_reorder());
}

TEST(DelayModelTest, UniformWithinRange) {
  Rng rng(1);
  const DelayModel m = DelayModel::uniform(1.0, 3.0);
  for (int i = 0; i < 1000; ++i) {
    const SimTime v = m.sample(rng);
    ASSERT_GE(v, 1.0);
    ASSERT_LT(v, 3.0);
  }
  EXPECT_TRUE(m.can_reorder());
}

TEST(DelayModelTest, ExponentialRespectsMinimum) {
  Rng rng(1);
  const DelayModel m = DelayModel::exponential(2.0, 0.5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(m.sample(rng), 0.5);
  }
}

// ---- Network -----------------------------------------------------------

class RecordingNode final : public Node {
 public:
  void on_message(const Message& msg) override {
    received.push_back(static_cast<int>(msg.id));
    payloads.push_back(std::any_cast<std::string>(msg.payload));
  }
  void on_timer(int tag) override { timer_tags.push_back(tag); }
  void on_crash() override { crashed = true; }

  std::vector<int> received;
  std::vector<std::string> payloads;
  std::vector<int> timer_tags;
  bool crashed = false;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : metrics_(3),
        net_(3, sched_, rng_, DelayModel::fixed(1.0), metrics_) {
    for (int i = 0; i < 3; ++i) {
      net_.register_node(i, nodes_[static_cast<std::size_t>(i)]);
    }
  }

  Message msg(ProcessId src, ProcessId dst, std::string body) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = 1;
    m.payload = std::move(body);
    m.wire_words = 4;
    return m;
  }

  Scheduler sched_;
  Rng rng_{7};
  MetricsRegistry metrics_;
  Network net_;
  RecordingNode nodes_[3];
};

TEST_F(NetworkTest, DeliversWithDelayAndCountsMetrics) {
  net_.send(msg(0, 1, "hello"));
  EXPECT_TRUE(nodes_[1].received.empty());
  sched_.run();
  ASSERT_EQ(nodes_[1].payloads.size(), 1u);
  EXPECT_EQ(nodes_[1].payloads[0], "hello");
  EXPECT_DOUBLE_EQ(sched_.now(), 1.0);
  EXPECT_EQ(metrics_.msgs_total(), 1u);
  EXPECT_EQ(metrics_.node(0).msgs_sent, 1u);
  EXPECT_EQ(metrics_.wire_words_total(), 4u);
}

TEST_F(NetworkTest, CrashStopsDeliveryAndSending) {
  net_.crash(1);
  EXPECT_TRUE(nodes_[1].crashed);
  EXPECT_FALSE(net_.alive(1));
  EXPECT_EQ(net_.alive_count(), 2u);
  net_.send(msg(0, 1, "to-dead"));   // delivery dropped at arrival
  net_.send(msg(1, 0, "from-dead"));  // send dropped immediately
  sched_.run();
  EXPECT_TRUE(nodes_[1].received.empty());
  EXPECT_TRUE(nodes_[0].received.empty());
  EXPECT_EQ(net_.dropped_messages(), 2u);
}

TEST_F(NetworkTest, CrashIsIdempotent) {
  net_.crash(1);
  net_.crash(1);
  EXPECT_EQ(net_.alive_count(), 2u);
}

TEST_F(NetworkTest, InFlightMessageToCrashedNodeDropped) {
  net_.send(msg(0, 1, "in-flight"));
  sched_.schedule_at(0.5, [&] { net_.crash(1); });
  sched_.run();
  EXPECT_TRUE(nodes_[1].received.empty());
  EXPECT_EQ(net_.dropped_messages(), 1u);
}

TEST_F(NetworkTest, OneShotAndPeriodicTimers) {
  net_.set_timer(0, 42, 1.0);
  net_.set_timer(1, 7, 0.5, /*periodic=*/true, /*period=*/2.0);
  sched_.run_until(6.0);
  EXPECT_EQ(nodes_[0].timer_tags, (std::vector<int>{42}));
  // Fires at 0.5, 2.5, 4.5 within the window.
  EXPECT_EQ(nodes_[1].timer_tags, (std::vector<int>{7, 7, 7}));
}

TEST_F(NetworkTest, CancelTimer) {
  const TimerId id = net_.set_timer(0, 42, 1.0);
  net_.cancel_timer(id);
  sched_.run();
  EXPECT_TRUE(nodes_[0].timer_tags.empty());
}

TEST_F(NetworkTest, TimersOfDeadNodesDoNotFire) {
  net_.set_timer(1, 7, 1.0, /*periodic=*/true, /*period=*/1.0);
  sched_.run_until(1.5);
  EXPECT_EQ(nodes_[1].timer_tags.size(), 1u);
  net_.crash(1);
  sched_.run_until(5.0);
  EXPECT_EQ(nodes_[1].timer_tags.size(), 1u);
}

TEST_F(NetworkTest, LinkValidatorBlocksNonNeighbors) {
  MetricsRegistry metrics(3);
  Scheduler sched;
  Rng rng(3);
  Network net(3, sched, rng, DelayModel::fixed(1.0), metrics,
              [](ProcessId a, ProcessId b) { return a + b != 2; });
  RecordingNode nodes[3];
  for (int i = 0; i < 3; ++i) {
    net.register_node(i, nodes[static_cast<std::size_t>(i)]);
  }
  Message m;
  m.src = 0;
  m.dst = 2;  // 0+2 == 2 → blocked
  m.type = 1;
  m.payload = std::string("x");
  net.send(m);
  m.dst = 1;
  m.payload = std::string("y");
  net.send(m);
  sched.run();
  EXPECT_TRUE(nodes[2].received.empty());
  EXPECT_EQ(nodes[1].payloads, (std::vector<std::string>{"y"}));
}

TEST(NetworkNonFifoTest, RandomDelaysReorderMessages) {
  // With uniform delays, later sends can overtake earlier ones.
  Scheduler sched;
  Rng rng(99);
  MetricsRegistry metrics(2);
  Network net(2, sched, rng, DelayModel::uniform(0.1, 5.0), metrics);
  RecordingNode a;
  RecordingNode b;
  net.register_node(0, a);
  net.register_node(1, b);
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.type = 1;
    m.payload = std::string(1, static_cast<char>('a' + (i % 26)));
    net.send(m);
  }
  sched.run();
  ASSERT_EQ(b.received.size(), 50u);
  // Message ids are assigned in send order; delivery must NOT be sorted.
  EXPECT_FALSE(std::is_sorted(b.received.begin(), b.received.end()));
}

TEST(NetworkDeterminismTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    Scheduler sched;
    Rng rng(seed);
    MetricsRegistry metrics(2);
    Network net(2, sched, rng, DelayModel::uniform(0.1, 5.0), metrics);
    RecordingNode a;
    RecordingNode b;
    net.register_node(0, a);
    net.register_node(1, b);
    for (int i = 0; i < 20; ++i) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.type = 1;
      m.payload = std::string("x");
      net.send(m);
    }
    sched.run();
    return b.received;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace hpd::sim
