// Proves every hpd_lint rule live: each fixture under tests/data/lint/bad
// carries one deliberate violation per rule and must fire exactly there; the
// clean fixture (banned tokens appearing only in comments/strings) and the
// real tree must both come back empty. Runs the actual binary — the contract
// under test is the CLI surface CI uses, not some internal API.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

// Paths are injected by tests/CMakeLists.txt.
const std::string kLintBin = HPD_LINT_BIN;
const std::string kDataDir = HPD_LINT_DATA;
const std::string kRepoRoot = HPD_REPO_ROOT;

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = kLintBin + " " + args + " 2>/dev/null";
  RunResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return r;
  }
  std::array<char, 4096> buf{};
  std::size_t k = 0;
  while ((k = ::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), k);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  }
  return r;
}

TEST(LintTest, BadTreeFiresEveryRule) {
  const RunResult r = run_lint("--root " + kDataDir + "/bad");
  EXPECT_EQ(r.exit_code, 1) << r.out;

  // One expected finding per rule, pinned to file and line so a rule that
  // silently stops matching (or fires on the wrong line) fails loudly.
  EXPECT_NE(r.out.find("src/sim/includes_rt.hpp:4: layering"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/core/wallclock.cpp:8: determinism"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/core/wallclock.cpp:10: determinism"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/proto/raw_endian.cpp:7: wire-endianness"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/interval/raw_mutex.cpp:7: raw-concurrency"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/detect/spawn_thread.cpp:7: raw-concurrency"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/net/todo.cpp:3: todo-issue"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/net/todo.cpp:4: todo-issue"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/net/no_guard.hpp:1: pragma-once"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/analysis/using_ns.cpp:4: using-namespace"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/vc/hot_map.cpp:8: hot-path-containers"),
            std::string::npos)
      << r.out;
  EXPECT_NE(
      r.out.find("src/rt/reactor/blocking_call.cpp:6: reactor-nonblocking"),
      std::string::npos)
      << r.out;
  EXPECT_NE(
      r.out.find("src/rt/reactor/blocking_call.cpp:7: reactor-nonblocking"),
      std::string::npos)
      << r.out;
  EXPECT_NE(
      r.out.find("src/rt/reactor/blocking_call.cpp:8: reactor-nonblocking"),
      std::string::npos)
      << r.out;
  EXPECT_NE(
      r.out.find("src/detect/hand_rolled_ckpt.cpp:8: ckpt-serialization"),
      std::string::npos)
      << r.out;
  EXPECT_NE(
      r.out.find("src/detect/hand_rolled_ckpt.cpp:9: ckpt-serialization"),
      std::string::npos)
      << r.out;
  // Raw strings before the violation must not swallow it or shift its
  // line number (blanker regression: delimiter scan + prefixed literals).
  EXPECT_NE(r.out.find("src/core/raw_then_clock.cpp:9: determinism"),
            std::string::npos)
      << r.out;
  // Vendor intrinsics headers outside src/vc/simd.* — both families fire,
  // and the <immintrin.h> mention in the fixture's comment must not.
  EXPECT_NE(r.out.find("src/interval/vendor_simd.cpp:5: simd-intrinsics"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("src/interval/vendor_simd.cpp:7: simd-intrinsics"),
            std::string::npos)
      << r.out;
}

TEST(LintTest, CleanFixtureHasNoFindings) {
  // Every banned token appears in the clean fixture — inside comments and
  // string literals, where the linter must not look.
  const RunResult r = run_lint("--root " + kDataDir + "/clean");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, AllowlistSuppressesListedRulesOnly) {
  const RunResult r = run_lint("--root " + kDataDir + "/bad --rules " +
                               kDataDir + "/allow_all_bad.txt");
  // todo-issue is deliberately absent from the allowlist: it must survive,
  // everything else must be suppressed.
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("todo-issue"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("layering"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("determinism"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("wire-endianness"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("raw-concurrency"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("pragma-once"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("using-namespace"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("hot-path-containers"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("reactor-nonblocking"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("ckpt-serialization"), std::string::npos) << r.out;
}

TEST(LintTest, RealTreeIsClean) {
  // The canonical gate: src/ plus the shipped allowlist must lint clean,
  // with every allowlist entry earning its keep (--strict, as CI runs it).
  const RunResult r = run_lint("--root " + kRepoRoot + " --strict");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, CleanFixtureHidesTokensInRawStringsAndSplicedComments) {
  // Blanker regression: encoding-prefixed raw strings (LR"(...)",
  // u8R"(...)") and `//` comments spliced by a trailing backslash hide
  // banned tokens from the compiler — the linter must not see them either.
  const RunResult r = run_lint("--root " + kDataDir + "/clean");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.out.find("raw_and_spliced"), std::string::npos) << r.out;
}

TEST(LintTest, MalformedAllowlistIsFatal) {
  EXPECT_EQ(run_lint("--root " + kDataDir + "/bad --rules " + kDataDir +
                     "/malformed_rules.txt")
                .exit_code,
            2);
  EXPECT_EQ(run_lint("--root " + kDataDir + "/bad --rules " + kDataDir +
                     "/bad_rule_id.txt")
                .exit_code,
            2);
}

TEST(LintTest, UnusedAllowlistEntriesFailOnlyUnderStrict) {
  // Against the clean tree, every allow_all_bad.txt entry is unused:
  // quietly tolerated by default, fatal with --strict.
  const std::string args =
      "--root " + kDataDir + "/clean --rules " + kDataDir + "/allow_all_bad.txt";
  EXPECT_EQ(run_lint(args).exit_code, 0);
  EXPECT_EQ(run_lint(args + " --strict").exit_code, 1);
}

TEST(LintTest, UsageErrors) {
  EXPECT_EQ(run_lint("--root /nonexistent-hpd-lint-root").exit_code, 2);
  EXPECT_EQ(run_lint("--bogus-flag").exit_code, 2);
  EXPECT_EQ(run_lint("--root " + kDataDir + "/bad --rules /nonexistent.txt")
                .exit_code,
            2);
}

}  // namespace
