// Shared helpers for hpd tests: a standalone random-execution generator
// that drives AppCore instances directly (no simulator), producing valid
// recorded executions with randomized causality for property tests.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "trace/app_core.hpp"
#include "trace/execution.hpp"

namespace hpd::testutil {

struct ExecGenOptions {
  std::size_t processes = 3;
  std::size_t steps = 30;
  double p_send = 0.25;
  double p_receive = 0.3;
  double p_toggle = 0.3;  // remaining mass: internal event
  bool track_provenance = false;
};

/// Generate a random but causally valid execution: at each step one process
/// performs an internal event, toggles its predicate, sends to a random
/// peer, or receives a pending message (channels here are per-pair FIFO,
/// which is irrelevant for the recorded partial order).
inline trace::ExecutionRecord random_execution(Rng& rng,
                                               const ExecGenOptions& opt) {
  const std::size_t n = opt.processes;
  std::vector<std::unique_ptr<trace::AppCore>> cores;
  cores.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cores.push_back(std::make_unique<trace::AppCore>(
        static_cast<ProcessId>(i), n, nullptr));
    cores.back()->set_track_provenance(opt.track_provenance);
    cores.back()->enable_recording([] { return 0.0; });
  }
  // pending[dst] = queue of (src, stamp).
  std::vector<std::deque<std::pair<ProcessId, VectorClock>>> pending(n);

  for (std::size_t step = 0; step < opt.steps; ++step) {
    const std::size_t i = rng.uniform_index(n);
    const double roll = rng.uniform01();
    if (roll < opt.p_send && n > 1) {
      std::size_t j = rng.uniform_index(n - 1);
      if (j >= i) {
        ++j;
      }
      pending[j].emplace_back(static_cast<ProcessId>(i),
                              cores[i]->prepare_send(static_cast<ProcessId>(j)));
    } else if (roll < opt.p_send + opt.p_receive && !pending[i].empty()) {
      auto [src, stamp] = pending[i].front();
      pending[i].pop_front();
      cores[i]->receive(src, stamp);
    } else if (roll < opt.p_send + opt.p_receive + opt.p_toggle) {
      cores[i]->set_predicate(!cores[i]->predicate());
    } else {
      cores[i]->internal_event();
    }
  }
  trace::ExecutionRecord exec;
  exec.procs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cores[i]->finalize();
    exec.procs[i] = cores[i]->recorded();
  }
  return exec;
}

}  // namespace hpd::testutil
