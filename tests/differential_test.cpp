// Differential property tests: the ISSUE-5 hot path (small-buffer
// VectorClock, fused comparison kernels, slot-flattened QueueEngine)
// against the frozen pre-optimization implementations kept verbatim under
// tests/reference/ (namespace hpd::reference). The optimization claims
// *bit-identical semantics* — every observable (solutions, statistics,
// queue contents, comparison counts) must match over fuzzed schedules,
// including structural fault-tolerance operations.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "detect/queue_engine.hpp"
#include "reference/queue_engine.hpp"
#include "reference/vector_clock.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {
namespace {

// ---- VectorClock kernels vs the frozen seed --------------------------------

reference::VectorClock ref_clock(const VectorClock& vc) {
  reference::VectorClock out(vc.size());
  for (std::size_t i = 0; i < vc.size(); ++i) {
    out[i] = vc[i];
  }
  return out;
}

VectorClock random_clock(Rng& rng, std::size_t n, ClockValue max_value) {
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) {
    vc[i] = static_cast<ClockValue>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_value)));
  }
  return vc;
}

TEST(VcDifferentialTest, FusedKernelsMatchSeedOverFuzzedPairs) {
  Rng rng(20260807);
  for (int iter = 0; iter < 4000; ++iter) {
    // Straddle the inline capacity (16): both storage modes must agree.
    const std::size_t n = 1 + rng.uniform_index(40);
    // Small component range so equal / dominated pairs actually occur.
    const auto max_value =
        static_cast<ClockValue>(1 + rng.uniform_index(4) * 40);
    VectorClock a = random_clock(rng, n, max_value);
    VectorClock b = rng.uniform_int(0, 4) == 0 ? a  // force equality often
                                               : random_clock(rng, n, max_value);
    const reference::VectorClock ra = ref_clock(a);
    const reference::VectorClock rb = ref_clock(b);

    EXPECT_EQ(static_cast<int>(compare(a, b)),
              static_cast<int>(reference::compare(ra, rb)));
    EXPECT_EQ(vc_less(a, b), reference::vc_less(ra, rb));
    EXPECT_EQ(vc_less(b, a), reference::vc_less(rb, ra));
    EXPECT_EQ(vc_leq(a, b), reference::vc_leq(ra, rb));
    EXPECT_EQ(vc_concurrent(a, b), reference::vc_concurrent(ra, rb));
    EXPECT_EQ(a == b, ra == rb);
    EXPECT_EQ(a.total(), ra.total());

    const VectorClock mx = component_max(a, b);
    const VectorClock mn = component_min(a, b);
    const reference::VectorClock rmx = reference::component_max(ra, rb);
    const reference::VectorClock rmn = reference::component_min(ra, rb);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(mx[i], rmx[i]);
      EXPECT_EQ(mn[i], rmn[i]);
    }

    VectorClock m = a;
    reference::VectorClock rm = ra;
    m.merge(b);
    rm.merge(rb);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(m[i], rm[i]);
    }
  }
}

TEST(VcDifferentialTest, CopyAndMoveSemanticsAcrossStorageModes) {
  Rng rng(42);
  for (const std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{64}}) {
    VectorClock a = random_clock(rng, n, 1000);
    const VectorClock snapshot = a;
    VectorClock moved = std::move(a);
    EXPECT_EQ(moved, snapshot);
    VectorClock assigned;
    assigned = snapshot;             // empty -> n
    EXPECT_EQ(assigned, snapshot);
    assigned = random_clock(rng, n, 9);  // same-size reuse path
    assigned = VectorClock();            // n -> empty
    EXPECT_TRUE(assigned.empty());
    VectorClock move_assigned = random_clock(rng, 3, 5);
    move_assigned = std::move(moved);    // 3 -> n
    EXPECT_EQ(move_assigned, snapshot);
  }
}

// ---- QueueEngine vs the frozen seed ----------------------------------------

// Interval stream generator: per-origin own component strictly increases so
// succ() holds; cross components are random (same scheme as fuzz_test).
struct StreamGen {
  Rng rng;
  std::size_t n;
  std::vector<ClockValue> last_hi;

  StreamGen(std::uint64_t seed, std::size_t n_procs)
      : rng(seed), n(n_procs), last_hi(n_procs, 0) {}

  Interval next(ProcessId origin, SeqNum seq) {
    Interval x;
    x.lo = VectorClock(n);
    x.hi = VectorClock(n);
    const ClockValue lo_own = last_hi[idx(origin)] + 1 +
                              static_cast<ClockValue>(rng.uniform_int(0, 2));
    const ClockValue hi_own =
        lo_own + static_cast<ClockValue>(rng.uniform_int(0, 3));
    last_hi[idx(origin)] = hi_own;
    for (std::size_t i = 0; i < n; ++i) {
      const ClockValue base = static_cast<ClockValue>(rng.uniform_int(0, 12));
      x.lo[i] = base;
      x.hi[i] = base + static_cast<ClockValue>(rng.uniform_int(0, 6));
    }
    x.lo[idx(origin)] = lo_own;
    x.hi[idx(origin)] = hi_own;
    for (std::size_t i = 0; i < n; ++i) {
      if (x.lo[i] > x.hi[i]) {
        std::swap(x.lo[i], x.hi[i]);
      }
    }
    x.origin = origin;
    x.seq = seq;
    return x;
  }
};

reference::Interval ref_interval(const Interval& x) {
  reference::Interval out;
  out.lo = ref_clock(x.lo);
  out.hi = ref_clock(x.hi);
  out.origin = x.origin;
  out.seq = x.seq;
  out.weight = x.weight;
  out.aggregated = x.aggregated;
  out.completed_at = x.completed_at;
  return out;
}

void expect_same_member(const Interval& m, const reference::Interval& r) {
  ASSERT_EQ(m.lo.size(), r.lo.size());
  for (std::size_t i = 0; i < m.lo.size(); ++i) {
    EXPECT_EQ(m.lo[i], r.lo[i]);
    EXPECT_EQ(m.hi[i], r.hi[i]);
  }
  EXPECT_EQ(m.origin, r.origin);
  EXPECT_EQ(m.seq, r.seq);
  EXPECT_EQ(m.weight, r.weight);
  EXPECT_EQ(m.aggregated, r.aggregated);
}

void expect_same_state(detect::QueueEngine& eng,
                       reference::detect::QueueEngine& ref) {
  EXPECT_EQ(eng.comparisons(), ref.comparisons());
  EXPECT_EQ(eng.stored(), ref.stored());
  EXPECT_EQ(eng.stored_peak(), ref.stored_peak());
  EXPECT_EQ(eng.eliminated(), ref.eliminated());
  EXPECT_EQ(eng.pruned(), ref.pruned());
  EXPECT_EQ(eng.solutions_found(), ref.solutions_found());
  EXPECT_EQ(eng.offered(), ref.offered());
  EXPECT_EQ(eng.rejected(), ref.rejected());
  EXPECT_EQ(eng.num_queues(), ref.num_queues());
  EXPECT_EQ(eng.keys(), ref.keys());
  for (const ProcessId k : eng.keys()) {
    EXPECT_EQ(eng.queue_size(k), ref.queue_size(k)) << "queue " << k;
  }
  EXPECT_EQ(eng.heads_compatible(), ref.heads_compatible());
}

void expect_same_solutions(
    const std::vector<detect::Solution>& got,
    const std::vector<reference::detect::Solution>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = 0; s < got.size(); ++s) {
    ASSERT_EQ(got[s].members.size(), want[s].members.size());
    for (std::size_t m = 0; m < got[s].members.size(); ++m) {
      expect_same_member(got[s].members[m], want[s].members[m]);
    }
  }
}

class EngineDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// 1000 fuzzed schedules total across the 10 seeds x 100 rounds, each mixing
// offers with the fault-tolerance operations (remove_queue + recheck,
// restore_pruned, clear_queue) and randomized capacity / prune mode.
TEST_P(EngineDifferentialTest, FlattenedEngineMatchesSeedExactly) {
  Rng rng(GetParam() * 1013904223u + 12345u);
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 2 + rng.uniform_index(5);
    const auto mode = static_cast<detect::QueueEngine::PruneMode>(
        rng.uniform_index(3));
    detect::QueueEngine eng(mode);
    reference::detect::QueueEngine ref(
        static_cast<reference::detect::QueueEngine::PruneMode>(mode));
    if (rng.uniform_int(0, 3) == 0) {
      const std::size_t cap = 1 + rng.uniform_index(4);
      eng.set_capacity(cap);
      ref.set_capacity(cap);
    }
    for (std::size_t i = 0; i < n; ++i) {
      eng.add_queue(static_cast<ProcessId>(i));
      ref.add_queue(static_cast<ProcessId>(i));
    }
    StreamGen gen(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)), n);
    std::vector<SeqNum> next_seq(n, 0);
    std::vector<bool> removed(n, false);
    const int steps = 20 + static_cast<int>(rng.uniform_index(40));
    for (int s = 0; s < steps; ++s) {
      const int action = static_cast<int>(rng.uniform_int(0, 19));
      if (action == 0 && eng.num_queues() > 1) {
        // Child failure: drop a random live queue, then recheck.
        ProcessId victim;
        do {
          victim = static_cast<ProcessId>(rng.uniform_index(n));
        } while (removed[idx(victim)]);
        removed[idx(victim)] = true;
        eng.remove_queue(victim);
        ref.remove_queue(victim);
        expect_same_solutions(eng.recheck(), ref.recheck());
      } else if (action == 1) {
        // Tree repair: resurrect pruned heads.
        eng.restore_pruned();
        ref.restore_pruned();
        expect_same_solutions(eng.recheck(), ref.recheck());
      } else if (action == 2 && eng.num_queues() > 0) {
        // Crash recovery: wipe one queue's state.
        const auto live = eng.keys();
        const ProcessId victim = live[rng.uniform_index(live.size())];
        eng.clear_queue(victim);
        ref.clear_queue(victim);
      } else {
        ProcessId p = static_cast<ProcessId>(rng.uniform_index(n));
        if (removed[idx(p)]) {
          continue;
        }
        const Interval x = gen.next(p, next_seq[idx(p)]++);
        const reference::Interval rx = ref_interval(x);
        // Rvalue offer on the optimized engine, by-value on the seed.
        expect_same_solutions(eng.offer(p, Interval(x)), ref.offer(p, rx));
      }
      expect_same_state(eng, ref);
      if (::testing::Test::HasFailure()) {
        FAIL() << "divergence at seed " << GetParam() << " round " << round
               << " step " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace hpd
