#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "net/render.hpp"
#include "net/repair.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"

namespace hpd::net {
namespace {

TEST(TopologyTest, AddAndQueryEdges) {
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 3);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 0));
  EXPECT_FALSE(t.has_edge(0, 3));
  EXPECT_EQ(t.num_edges(), 2u);
  EXPECT_EQ(t.neighbors(1), (std::vector<ProcessId>{0, 3}));
  t.add_edge(0, 1);  // duplicate ignored
  EXPECT_EQ(t.num_edges(), 2u);
  EXPECT_THROW(t.add_edge(2, 2), AssertionError);
  EXPECT_THROW(t.add_edge(0, 9), AssertionError);
}

TEST(TopologyTest, Generators) {
  EXPECT_EQ(Topology::complete(5).num_edges(), 10u);
  EXPECT_EQ(Topology::ring(6).num_edges(), 6u);
  EXPECT_EQ(Topology::star(6).num_edges(), 5u);
  const Topology g = Topology::grid(3, 4);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // 17
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(Topology::ring(6).connected());
}

TEST(TopologyTest, BfsDistances) {
  const Topology g = Topology::grid(2, 3);
  // 0 1 2
  // 3 4 5
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[5], 3);
}

TEST(TopologyTest, ConnectivityWithDeadNodes) {
  const Topology line = Topology::grid(1, 5);  // 0-1-2-3-4
  std::vector<bool> alive(5, true);
  EXPECT_TRUE(line.connected(&alive));
  alive[2] = false;  // cuts the line in two
  EXPECT_FALSE(line.connected(&alive));
  alive[3] = alive[4] = false;  // only {0, 1} remain, still adjacent
  EXPECT_TRUE(line.connected(&alive));
}

TEST(TopologyTest, RandomGeometricConnected) {
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const Topology t = Topology::random_geometric(40, 0.18, rng, true);
    EXPECT_EQ(t.size(), 40u);
    EXPECT_TRUE(t.connected());
    EXPECT_EQ(t.positions().size(), 40u);
  }
}

TEST(TopologyTest, SmallWorldConnectedAndRewired) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = Topology::small_world(30, 4, 0.3, rng);
    EXPECT_TRUE(t.connected());
    // Edge count stays near n*k/2 (rewiring moves edges, rarely drops one).
    EXPECT_GE(t.num_edges(), 30u * 2u - 8u);
    EXPECT_LE(t.num_edges(), 30u * 2u);
  }
  // beta = 0 is the exact ring lattice.
  const Topology lattice = Topology::small_world(20, 4, 0.0, rng);
  EXPECT_EQ(lattice.num_edges(), 40u);
  EXPECT_TRUE(lattice.has_edge(0, 1));
  EXPECT_TRUE(lattice.has_edge(0, 2));
  EXPECT_THROW(Topology::small_world(10, 3, 0.1, rng), AssertionError);
}

TEST(TopologyTest, ScaleFreeHasHubs) {
  Rng rng(15);
  const Topology t = Topology::scale_free(200, 2, rng);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.num_edges(), 3u + (200u - 3u) * 2u);  // clique + 2 per newcomer
  std::size_t max_degree = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    max_degree = std::max(max_degree, t.degree(static_cast<ProcessId>(i)));
  }
  // Preferential attachment must concentrate degree far above the mean (~4).
  EXPECT_GE(max_degree, 12u);
}

TEST(TopologyTest, TreePlusCrosslinks) {
  Rng rng(5);
  const auto tree = SpanningTree::balanced_dary(2, 4);
  const Topology base = tree_topology(tree);
  const Topology t = Topology::tree_plus_crosslinks(base, 6, rng);
  EXPECT_EQ(t.num_edges(), base.num_edges() + 6u);
  EXPECT_TRUE(tree.respects(t));
  EXPECT_TRUE(t.connected());
}

TEST(SpanningTreeTest, BalancedDarySizesAndShape) {
  EXPECT_EQ(SpanningTree::balanced_dary_size(2, 3), 7u);
  EXPECT_EQ(SpanningTree::balanced_dary_size(4, 3), 21u);
  const SpanningTree t = SpanningTree::balanced_dary(2, 3);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.max_degree(), 2u);
  EXPECT_EQ(t.children(0), (std::vector<ProcessId>{1, 2}));
  EXPECT_EQ(t.parent(5), 2);
  EXPECT_TRUE(t.is_leaf(6));
  EXPECT_FALSE(t.is_leaf(2));
  EXPECT_EQ(t.depth(6), 2);
  EXPECT_EQ(t.level(6), 1);  // leaf
  EXPECT_EQ(t.level(2), 2);
  EXPECT_EQ(t.level(0), 3);  // root
}

TEST(SpanningTreeTest, SubtreeAndPaths) {
  const SpanningTree t = SpanningTree::balanced_dary(2, 3);
  EXPECT_EQ(t.subtree(2), (std::vector<ProcessId>{2, 5, 6}));
  EXPECT_EQ(t.path_to_root(6), (std::vector<ProcessId>{6, 2, 0}));
  EXPECT_TRUE(t.in_subtree(6, 2));
  EXPECT_FALSE(t.in_subtree(6, 1));
  EXPECT_TRUE(t.in_subtree(0, 0));
}

TEST(SpanningTreeTest, SetParentRejectsCycles) {
  SpanningTree t = SpanningTree::balanced_dary(2, 3);
  EXPECT_THROW(t.set_parent(0, 5), AssertionError);  // 5 is 0's descendant
  EXPECT_THROW(t.set_parent(3, 3), AssertionError);
}

TEST(SpanningTreeTest, DetachAndReattach) {
  SpanningTree t = SpanningTree::balanced_dary(2, 3);
  t.detach(2);
  EXPECT_FALSE(t.valid());  // 2's subtree is detached
  EXPECT_EQ(t.depth(5), -1);
  t.set_parent(2, 1);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.depth(5), 3);
}

TEST(SpanningTreeTest, BfsTreeOfGrid) {
  const Topology g = Topology::grid(4, 4);
  const SpanningTree t = SpanningTree::bfs_tree(g, 5);
  EXPECT_TRUE(t.valid());
  EXPECT_TRUE(t.respects(g));
  EXPECT_EQ(t.root(), 5);
  // BFS tree depth equals hop distance.
  const auto dist = g.bfs_distances(5);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(t.depth(static_cast<ProcessId>(i)), dist[i]);
  }
}

TEST(SpanningTreeTest, FromParentsRoundTrip) {
  const SpanningTree t = SpanningTree::balanced_dary(3, 3);
  std::vector<ProcessId> parents(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    parents[i] = t.parent(static_cast<ProcessId>(i));
  }
  const SpanningTree u = SpanningTree::from_parents(parents, t.root());
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(u.height(), t.height());
}

TEST(SpanningTreeTest, TreeTopologyHasExactlyTreeEdges) {
  const SpanningTree t = SpanningTree::balanced_dary(3, 3);
  const Topology topo = tree_topology(t);
  EXPECT_EQ(topo.num_edges(), t.size() - 1);
  EXPECT_TRUE(t.respects(topo));
  EXPECT_TRUE(topo.connected());
}

TEST(RenderTest, TreeAndForest) {
  const auto tree = SpanningTree::balanced_dary(2, 3);
  const std::string s = tree_to_string(tree);
  EXPECT_EQ(s,
            "0\n"
            "|- 1\n"
            "|  |- 3\n"
            "|  `- 4\n"
            "`- 2\n"
            "   |- 5\n"
            "   `- 6\n");
  // Forest with a dead detached node and two roots.
  std::vector<ProcessId> parents = {kNoProcess, 0, kNoProcess, 2};
  std::vector<bool> alive = {true, true, true, true};
  std::ostringstream os;
  render_forest(os, parents, &alive);
  EXPECT_EQ(os.str(),
            "0\n"
            "`- 1\n"
            "2\n"
            "`- 3\n");
  alive[2] = false;
  parents[3] = kNoProcess;
  std::ostringstream os2;
  render_forest(os2, parents, &alive);
  EXPECT_NE(os2.str().find("2 x(dead)"), std::string::npos);
}

// ---- Repair planner ---------------------------------------------------------

class RepairTest : public ::testing::Test {
 protected:
  static std::vector<bool> alive_except(std::size_t n, ProcessId dead) {
    std::vector<bool> alive(n, true);
    alive[idx(dead)] = false;
    return alive;
  }
};

TEST_F(RepairTest, LeafFailureNeedsNoAttachments) {
  SpanningTree t = SpanningTree::balanced_dary(2, 3);
  const Topology topo = tree_topology(t);
  const auto alive = alive_except(t.size(), 6);
  const auto plan = plan_repair(t, topo, alive, 6);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->attachments.empty());
  apply_repair(t, *plan, 6);
  EXPECT_TRUE(t.valid(&alive));
}

TEST_F(RepairTest, InternalFailureOnPureTreeIsImpossible) {
  // With only tree edges, the orphaned subtrees have no link back.
  SpanningTree t = SpanningTree::balanced_dary(2, 3);
  const Topology topo = tree_topology(t);
  const auto alive = alive_except(t.size(), 2);
  EXPECT_FALSE(plan_repair(t, topo, alive, 2).has_value());
}

TEST_F(RepairTest, InternalFailureWithCrossEdges) {
  SpanningTree t = SpanningTree::balanced_dary(2, 3);
  Topology topo = tree_topology(t);
  topo.add_edge(5, 1);  // cross link gives 2's subtree a way back
  topo.add_edge(6, 4);
  const auto alive = alive_except(t.size(), 2);
  const auto plan = plan_repair(t, topo, alive, 2);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->new_root, 0);
  apply_repair(t, *plan, 2);
  EXPECT_TRUE(t.valid(&alive));
  EXPECT_TRUE(t.respects(topo));
  // All live nodes reach the root.
  for (ProcessId i : {1, 3, 4, 5, 6}) {
    EXPECT_GE(t.depth(i), 0) << "node " << i;
  }
}

TEST_F(RepairTest, RootFailurePromotesChildSubtree) {
  SpanningTree t = SpanningTree::balanced_dary(2, 3);
  Topology topo = tree_topology(t);
  topo.add_edge(1, 2);  // siblings can reach each other
  const auto alive = alive_except(t.size(), 0);
  const auto plan = plan_repair(t, topo, alive, 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->new_root, 1);
  apply_repair(t, *plan, 0);
  EXPECT_TRUE(t.valid(&alive));
  EXPECT_EQ(t.root(), 1);
}

TEST_F(RepairTest, RandomFailuresOnGridStayValid) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const Topology topo = Topology::grid(4, 4);
    SpanningTree t = SpanningTree::bfs_tree(topo, 0);
    std::vector<bool> alive(topo.size(), true);
    // Kill up to 4 nodes one at a time, repairing after each.
    for (int k = 0; k < 4; ++k) {
      std::vector<ProcessId> live;
      for (std::size_t i = 0; i < alive.size(); ++i) {
        if (alive[i]) {
          live.push_back(static_cast<ProcessId>(i));
        }
      }
      const ProcessId victim = live[rng.uniform_index(live.size())];
      alive[idx(victim)] = false;
      if (!topo.connected(&alive)) {
        alive[idx(victim)] = true;  // keep the scenario repairable
        continue;
      }
      const auto plan = plan_repair(t, topo, alive, victim);
      ASSERT_TRUE(plan.has_value()) << "victim " << victim;
      apply_repair(t, *plan, victim);
      ASSERT_TRUE(t.valid(&alive)) << "victim " << victim;
      ASSERT_TRUE(t.respects(topo));
    }
  }
}

}  // namespace
}  // namespace hpd::net
