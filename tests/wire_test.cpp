#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "wire/codec.hpp"

namespace hpd::wire {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xffffffffull,
        0xffffffffffffffffull}) {
    Encoder e;
    e.put_varint(v);
    Decoder d(e.bytes());
    EXPECT_EQ(d.get_varint(), v);
    EXPECT_TRUE(d.exhausted());
  }
}

TEST(VarintTest, CompactForSmallValues) {
  Encoder e;
  e.put_varint(5);
  EXPECT_EQ(e.bytes().size(), 1u);
  Encoder e2;
  e2.put_varint(300);
  EXPECT_EQ(e2.bytes().size(), 2u);
}

TEST(VarintTest, TruncationThrows) {
  Encoder e;
  e.put_varint(0xffffffffull);
  auto bytes = e.bytes();
  bytes.pop_back();
  Decoder d(bytes);
  EXPECT_THROW(d.get_varint(), DecodeError);
}

TEST(VarintTest, OverlongRejected) {
  // 11 continuation bytes cannot be a valid varint.
  std::vector<std::uint8_t> bad(11, 0x80);
  Decoder d(bad);
  EXPECT_THROW(d.get_varint(), DecodeError);
}

TEST(ClockCodecTest, RoundTrip) {
  const VectorClock vc{0, 1, 127, 128, 70000};
  Encoder e;
  e.put_clock(vc);
  Decoder d(e.bytes());
  EXPECT_EQ(d.get_clock(), vc);
}

TEST(ClockCodecTest, HugeDeclaredSizeRejected) {
  Encoder e;
  e.put_varint(1u << 30);  // claims 2^30 components, then nothing
  Decoder d(e.bytes());
  EXPECT_THROW(d.get_clock(), DecodeError);
}

TEST(IntervalCodecTest, RoundTripPreservesEverything) {
  Interval x;
  x.lo = VectorClock{1, 2, 3};
  x.hi = VectorClock{4, 5, 6};
  x.origin = 2;
  x.seq = 99;
  x.weight = 7;
  x.aggregated = true;
  Encoder e;
  e.put_interval(x);
  Decoder d(e.bytes());
  const Interval y = d.get_interval();
  EXPECT_EQ(y.lo, x.lo);
  EXPECT_EQ(y.hi, x.hi);
  EXPECT_EQ(y.origin, x.origin);
  EXPECT_EQ(y.seq, x.seq);
  EXPECT_EQ(y.weight, x.weight);
  EXPECT_EQ(y.aggregated, x.aggregated);
}

TEST(IntervalCodecTest, MismatchedBoundsRejected) {
  Encoder e;
  e.put_clock(VectorClock{1, 2});
  e.put_clock(VectorClock{1, 2, 3});
  e.put_varint(1);
  e.put_varint(1);
  e.put_varint(1);
  e.put_u8(0);
  Decoder d(e.bytes());
  EXPECT_THROW(d.get_interval(), DecodeError);
}

TEST(MessageCodecTest, AppRoundTrip) {
  proto::AppPayload p;
  p.subtype = 2;
  p.round = 17;
  p.stamp = VectorClock{3, 0, 9};
  const auto m = decode(encode(p));
  EXPECT_EQ(m.type, proto::kApp);
  EXPECT_EQ(m.app.subtype, 2);
  EXPECT_EQ(m.app.round, 17u);
  EXPECT_EQ(m.app.stamp, p.stamp);
}

TEST(MessageCodecTest, ReportRoundTripBothTags) {
  proto::ReportPayload p;
  p.interval.lo = VectorClock{1, 1};
  p.interval.hi = VectorClock{2, 3};
  p.interval.origin = 1;
  p.interval.seq = 4;
  for (const int tag : {proto::kReportHier, proto::kReportCentral}) {
    const auto m = decode(encode_report(p, tag));
    EXPECT_EQ(m.type, tag);
    EXPECT_EQ(m.report.interval.origin, 1);
    EXPECT_EQ(m.report.interval.seq, 4u);
    EXPECT_EQ(m.report.interval.hi, p.interval.hi);
  }
}

TEST(MessageCodecTest, HeartbeatAndProbeAckRoundTrip) {
  proto::HeartbeatPayload hb;
  hb.attached = true;
  hb.root_path = {4, 2, 0};
  const auto m = decode(encode(hb));
  EXPECT_EQ(m.type, proto::kHeartbeat);
  EXPECT_TRUE(m.heartbeat.attached);
  EXPECT_EQ(m.heartbeat.root_path, hb.root_path);

  proto::ProbeAckPayload ack;
  ack.attached = false;
  const auto m2 = decode(encode(ack));
  EXPECT_FALSE(m2.probe_ack.attached);
  EXPECT_TRUE(m2.probe_ack.root_path.empty());
}

TEST(MessageCodecTest, ControlMessagesRoundTrip) {
  EXPECT_EQ(decode(encode(proto::ProbePayload{})).type, proto::kProbe);
  EXPECT_EQ(decode(encode(proto::FlipGoPayload{})).type, proto::kFlipGo);

  proto::AttachReqPayload ar;
  ar.next_report_seq = 12;
  EXPECT_EQ(decode(encode(ar)).attach_req.next_report_seq, 12u);

  proto::AttachAckPayload aa;
  aa.accepted = true;
  EXPECT_TRUE(decode(encode(aa)).attach_ack.accepted);

  proto::DelegatePayload dp;
  dp.orphan = 5;
  EXPECT_EQ(decode(encode(dp)).delegate.orphan, 5);

  proto::DelegateFailPayload df;
  df.orphan = kNoProcess;  // sentinel survives the wire
  EXPECT_EQ(decode(encode(df)).delegate_fail.orphan, kNoProcess);

  proto::FlipPayload fp;
  fp.orphan = 3;
  EXPECT_EQ(decode(encode(fp)).flip.orphan, 3);

  proto::FlipAckPayload fa;
  fa.first_seq = 42;
  EXPECT_EQ(decode(encode(fa)).flip_ack.first_seq, 42u);
}

TEST(MessageCodecTest, TrailingGarbageRejected) {
  auto bytes = encode(proto::AttachAckPayload{true});
  bytes.push_back(0);
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(MessageCodecTest, UnknownTagRejected) {
  const std::vector<std::uint8_t> bytes = {0x7f};
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(MessageCodecTest, EmptyInputRejected) {
  EXPECT_THROW(decode(std::vector<std::uint8_t>{}), DecodeError);
}

// Every truncation of every valid message must throw, never crash or
// succeed.
TEST(MessageCodecTest, AllPrefixesRejected) {
  proto::AppPayload p;
  p.subtype = 1;
  p.round = 300;
  p.stamp = VectorClock{1, 200, 3, 70000};
  const auto full = encode(p);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    EXPECT_THROW(decode(prefix), DecodeError) << "cut " << cut;
  }
}

// Random bytes: decode must either produce a message or throw DecodeError —
// never crash (fuzz-light).
TEST(MessageCodecTest, RandomBytesNeverCrash) {
  Rng rng(404);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform_index(64));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      (void)decode(junk);
    } catch (const DecodeError&) {
      // fine
    }
  }
}

// ---- Delta (v2) interval layout ---------------------------------------------

Interval random_interval(Rng& rng, std::size_t n) {
  Interval x;
  x.lo = VectorClock(n);
  x.hi = VectorClock(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Arbitrary bounds, including hi components below lo (the codec must
    // not assume well-formed intervals).
    x.lo[i] = static_cast<ClockValue>(rng.uniform_int(0, 1 << 20));
    x.hi[i] = static_cast<ClockValue>(rng.uniform_int(0, 1 << 20));
  }
  x.origin = static_cast<ProcessId>(rng.uniform_int(-1, 40));
  x.seq = static_cast<SeqNum>(rng.uniform_int(0, 1 << 30));
  x.weight = static_cast<std::uint32_t>(rng.uniform_int(1, 900));
  x.aggregated = rng.uniform_int(0, 1) == 1;
  return x;
}

void expect_same_interval(const Interval& y, const Interval& x) {
  EXPECT_EQ(y.lo, x.lo);
  EXPECT_EQ(y.hi, x.hi);
  EXPECT_EQ(y.origin, x.origin);
  EXPECT_EQ(y.seq, x.seq);
  EXPECT_EQ(y.weight, x.weight);
  EXPECT_EQ(y.aggregated, x.aggregated);
  EXPECT_EQ(base_intervals(y), base_intervals(x));
}

TEST(DeltaCodecTest, DeltaIntervalRoundTripPreservesEverything) {
  Interval x;
  x.lo = VectorClock{100000, 2, 30};
  x.hi = VectorClock{100003, 5, 30};
  x.origin = 2;
  x.seq = 99;
  x.weight = 7;
  x.aggregated = true;
  attach_base_provenance(x);
  Encoder e(WireFormat::kDelta);
  e.put_interval(x);
  Decoder d(e.bytes());
  expect_same_interval(d.get_interval(), x);
}

TEST(DeltaCodecTest, FuzzedIntervalsRoundTripInBothFormats) {
  Rng rng(1234);
  for (int iter = 0; iter < 500; ++iter) {
    // Sizes straddling the VectorClock inline capacity, including empty.
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const Interval x = random_interval(rng, n);
    for (const WireFormat f : {WireFormat::kV1, WireFormat::kDelta}) {
      Encoder e(f);
      e.put_interval(x);
      Decoder d(e.bytes());
      expect_same_interval(d.get_interval(), x);
      EXPECT_TRUE(d.exhausted());
    }
  }
}

TEST(DeltaCodecTest, DeltaReportDecodesUnderBothTags) {
  proto::ReportPayload p;
  p.interval.lo = VectorClock{70000, 70001};
  p.interval.hi = VectorClock{70002, 70001};
  p.interval.origin = 3;
  p.interval.seq = 11;
  for (const int tag : {proto::kReportHier, proto::kReportCentral}) {
    const auto m = decode(encode_report(p, tag, WireFormat::kDelta));
    EXPECT_EQ(m.type, tag);
    expect_same_interval(m.report.interval, p.interval);
  }
}

TEST(DeltaCodecTest, DeltaReportPrefixesRejected) {
  proto::ReportPayload p;
  p.interval.lo = VectorClock{5, 1000000};
  p.interval.hi = VectorClock{9, 1000004};
  const auto full = encode_report(p, proto::kReportHier, WireFormat::kDelta);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    EXPECT_THROW(decode(prefix), DecodeError) << "cut " << cut;
  }
}

TEST(DeltaCodecTest, V1EmptyBoundsIntervalStillDecodable) {
  // The v2 sentinel shares its first byte with a v1 empty-clock interval;
  // the disambiguating second byte must keep old bytes decodable.
  Interval x;  // empty lo and hi
  x.origin = 4;
  x.seq = 8;
  Encoder v1(WireFormat::kV1);
  v1.put_interval(x);
  Decoder d(v1.bytes());
  expect_same_interval(d.get_interval(), x);

  Encoder v2(WireFormat::kDelta);
  v2.put_interval(x);
  Decoder d2(v2.bytes());
  expect_same_interval(d2.get_interval(), x);
}

TEST(DeltaCodecTest, UnknownIntervalVersionRejected) {
  Encoder e;
  e.put_varint(0);  // sentinel
  e.put_u8(0x03);   // not 0x00 (v1 empty hi) and not 0x02 (delta)
  EXPECT_THROW(Decoder(e.bytes()).get_interval(), DecodeError);
}

TEST(DeltaCodecTest, BatchRoundTrip) {
  Rng rng(77);
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{2}, std::size_t{25}}) {
    std::vector<Interval> xs;
    VectorClock cursor(12);
    for (std::size_t i = 0; i < cursor.size(); ++i) {
      cursor[i] = static_cast<ClockValue>(rng.uniform_int(100000, 200000));
    }
    for (std::size_t k = 0; k < count; ++k) {
      Interval x = random_interval(rng, 0);
      x.lo = cursor;
      x.hi = cursor;
      for (std::size_t i = 0; i < cursor.size(); ++i) {
        // Slowly advancing stream: a few events per interval.
        x.hi[i] = x.lo[i] + static_cast<ClockValue>(rng.uniform_int(0, 5));
        cursor[i] = x.hi[i] + static_cast<ClockValue>(rng.uniform_int(0, 3));
      }
      xs.push_back(std::move(x));
    }
    const auto bytes = encode_interval_batch(xs);
    const auto ys = decode_interval_batch(bytes);
    ASSERT_EQ(ys.size(), xs.size());
    for (std::size_t k = 0; k < xs.size(); ++k) {
      expect_same_interval(ys[k], xs[k]);
    }
  }
}

TEST(DeltaCodecTest, BatchMixedClockSizesRejected) {
  std::vector<Interval> xs(2);
  xs[0].lo = VectorClock{1, 2};
  xs[0].hi = VectorClock{3, 4};
  xs[1].lo = VectorClock{1, 2, 3};
  xs[1].hi = VectorClock{4, 5, 6};
  EXPECT_THROW(encode_interval_batch(xs), AssertionError);
}

TEST(DeltaCodecTest, BatchPrefixesAndRandomBytesRejected) {
  std::vector<Interval> xs(3);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    xs[k].lo = VectorClock{static_cast<ClockValue>(10 * k + 1), 7};
    xs[k].hi = VectorClock{static_cast<ClockValue>(10 * k + 4), 9};
  }
  const auto full = encode_interval_batch(xs);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    EXPECT_THROW(decode_interval_batch(prefix), DecodeError) << "cut " << cut;
  }
  Rng rng(505);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform_index(64));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      (void)decode_interval_batch(junk);
    } catch (const DecodeError&) {
      // fine
    }
  }
}

TEST(DeltaCodecTest, DeltaBeatsV1OnSlowlyAdvancingClocks) {
  // Mature system: large absolute stamps, small per-interval advance —
  // exactly the steady-state stream a long-lived deployment reports.
  Rng rng(99);
  std::vector<Interval> xs;
  VectorClock cursor(64);
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    cursor[i] = static_cast<ClockValue>(rng.uniform_int(1 << 20, 1 << 21));
  }
  for (int k = 0; k < 50; ++k) {
    Interval x;
    x.lo = cursor;
    x.hi = cursor;
    for (std::size_t i = 0; i < cursor.size(); ++i) {
      x.hi[i] = x.lo[i] + static_cast<ClockValue>(rng.uniform_int(0, 4));
      cursor[i] = x.hi[i] + static_cast<ClockValue>(rng.uniform_int(0, 2));
    }
    x.origin = 1;
    x.seq = static_cast<SeqNum>(k);
    xs.push_back(std::move(x));
  }
  std::size_t v1_bytes = 0;
  std::size_t delta_bytes = 0;
  for (const Interval& x : xs) {
    Encoder v1(WireFormat::kV1);
    v1.put_interval(x);
    v1_bytes += v1.bytes().size();
    Encoder v2(WireFormat::kDelta);
    v2.put_interval(x);
    delta_bytes += v2.bytes().size();
  }
  // hi rides on lo: v2 collapses half the clock bytes to ~1 byte each,
  // cutting the per-interval cost by at least a quarter on this workload.
  EXPECT_LT(delta_bytes, v1_bytes * 3 / 4);
  // Chaining lo across the batch compresses further still.
  const auto batch = encode_interval_batch(xs);
  EXPECT_LT(batch.size(), delta_bytes * 2 / 3);
}

TEST(MessageCodecTest, VarintClocksBeatRawEncodingOnTypicalStamps) {
  // A realistic stamp in a 256-process system: mostly small counters.
  VectorClock vc(256);
  Rng rng(7);
  for (std::size_t i = 0; i < vc.size(); ++i) {
    vc[i] = static_cast<ClockValue>(rng.uniform_int(0, 500));
  }
  Encoder e;
  e.put_clock(vc);
  EXPECT_LT(e.bytes().size(), 256u * 4u / 2u);  // at least 2x smaller
}

}  // namespace
}  // namespace hpd::wire
