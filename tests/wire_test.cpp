#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "wire/codec.hpp"

namespace hpd::wire {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xffffffffull,
        0xffffffffffffffffull}) {
    Encoder e;
    e.put_varint(v);
    Decoder d(e.bytes());
    EXPECT_EQ(d.get_varint(), v);
    EXPECT_TRUE(d.exhausted());
  }
}

TEST(VarintTest, CompactForSmallValues) {
  Encoder e;
  e.put_varint(5);
  EXPECT_EQ(e.bytes().size(), 1u);
  Encoder e2;
  e2.put_varint(300);
  EXPECT_EQ(e2.bytes().size(), 2u);
}

TEST(VarintTest, TruncationThrows) {
  Encoder e;
  e.put_varint(0xffffffffull);
  auto bytes = e.bytes();
  bytes.pop_back();
  Decoder d(bytes);
  EXPECT_THROW(d.get_varint(), DecodeError);
}

TEST(VarintTest, OverlongRejected) {
  // 11 continuation bytes cannot be a valid varint.
  std::vector<std::uint8_t> bad(11, 0x80);
  Decoder d(bad);
  EXPECT_THROW(d.get_varint(), DecodeError);
}

TEST(ClockCodecTest, RoundTrip) {
  const VectorClock vc{0, 1, 127, 128, 70000};
  Encoder e;
  e.put_clock(vc);
  Decoder d(e.bytes());
  EXPECT_EQ(d.get_clock(), vc);
}

TEST(ClockCodecTest, HugeDeclaredSizeRejected) {
  Encoder e;
  e.put_varint(1u << 30);  // claims 2^30 components, then nothing
  Decoder d(e.bytes());
  EXPECT_THROW(d.get_clock(), DecodeError);
}

TEST(IntervalCodecTest, RoundTripPreservesEverything) {
  Interval x;
  x.lo = VectorClock{1, 2, 3};
  x.hi = VectorClock{4, 5, 6};
  x.origin = 2;
  x.seq = 99;
  x.weight = 7;
  x.aggregated = true;
  Encoder e;
  e.put_interval(x);
  Decoder d(e.bytes());
  const Interval y = d.get_interval();
  EXPECT_EQ(y.lo, x.lo);
  EXPECT_EQ(y.hi, x.hi);
  EXPECT_EQ(y.origin, x.origin);
  EXPECT_EQ(y.seq, x.seq);
  EXPECT_EQ(y.weight, x.weight);
  EXPECT_EQ(y.aggregated, x.aggregated);
}

TEST(IntervalCodecTest, MismatchedBoundsRejected) {
  Encoder e;
  e.put_clock(VectorClock{1, 2});
  e.put_clock(VectorClock{1, 2, 3});
  e.put_varint(1);
  e.put_varint(1);
  e.put_varint(1);
  e.put_u8(0);
  Decoder d(e.bytes());
  EXPECT_THROW(d.get_interval(), DecodeError);
}

TEST(MessageCodecTest, AppRoundTrip) {
  proto::AppPayload p;
  p.subtype = 2;
  p.round = 17;
  p.stamp = VectorClock{3, 0, 9};
  const auto m = decode(encode(p));
  EXPECT_EQ(m.type, proto::kApp);
  EXPECT_EQ(m.app.subtype, 2);
  EXPECT_EQ(m.app.round, 17u);
  EXPECT_EQ(m.app.stamp, p.stamp);
}

TEST(MessageCodecTest, ReportRoundTripBothTags) {
  proto::ReportPayload p;
  p.interval.lo = VectorClock{1, 1};
  p.interval.hi = VectorClock{2, 3};
  p.interval.origin = 1;
  p.interval.seq = 4;
  for (const int tag : {proto::kReportHier, proto::kReportCentral}) {
    const auto m = decode(encode_report(p, tag));
    EXPECT_EQ(m.type, tag);
    EXPECT_EQ(m.report.interval.origin, 1);
    EXPECT_EQ(m.report.interval.seq, 4u);
    EXPECT_EQ(m.report.interval.hi, p.interval.hi);
  }
}

TEST(MessageCodecTest, HeartbeatAndProbeAckRoundTrip) {
  proto::HeartbeatPayload hb;
  hb.attached = true;
  hb.root_path = {4, 2, 0};
  const auto m = decode(encode(hb));
  EXPECT_EQ(m.type, proto::kHeartbeat);
  EXPECT_TRUE(m.heartbeat.attached);
  EXPECT_EQ(m.heartbeat.root_path, hb.root_path);

  proto::ProbeAckPayload ack;
  ack.attached = false;
  const auto m2 = decode(encode(ack));
  EXPECT_FALSE(m2.probe_ack.attached);
  EXPECT_TRUE(m2.probe_ack.root_path.empty());
}

TEST(MessageCodecTest, ControlMessagesRoundTrip) {
  EXPECT_EQ(decode(encode(proto::ProbePayload{})).type, proto::kProbe);
  EXPECT_EQ(decode(encode(proto::FlipGoPayload{})).type, proto::kFlipGo);

  proto::AttachReqPayload ar;
  ar.next_report_seq = 12;
  EXPECT_EQ(decode(encode(ar)).attach_req.next_report_seq, 12u);

  proto::AttachAckPayload aa;
  aa.accepted = true;
  EXPECT_TRUE(decode(encode(aa)).attach_ack.accepted);

  proto::DelegatePayload dp;
  dp.orphan = 5;
  EXPECT_EQ(decode(encode(dp)).delegate.orphan, 5);

  proto::DelegateFailPayload df;
  df.orphan = kNoProcess;  // sentinel survives the wire
  EXPECT_EQ(decode(encode(df)).delegate_fail.orphan, kNoProcess);

  proto::FlipPayload fp;
  fp.orphan = 3;
  EXPECT_EQ(decode(encode(fp)).flip.orphan, 3);

  proto::FlipAckPayload fa;
  fa.first_seq = 42;
  EXPECT_EQ(decode(encode(fa)).flip_ack.first_seq, 42u);
}

TEST(MessageCodecTest, TrailingGarbageRejected) {
  auto bytes = encode(proto::AttachAckPayload{true});
  bytes.push_back(0);
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(MessageCodecTest, UnknownTagRejected) {
  const std::vector<std::uint8_t> bytes = {0x7f};
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(MessageCodecTest, EmptyInputRejected) {
  EXPECT_THROW(decode(std::vector<std::uint8_t>{}), DecodeError);
}

// Every truncation of every valid message must throw, never crash or
// succeed.
TEST(MessageCodecTest, AllPrefixesRejected) {
  proto::AppPayload p;
  p.subtype = 1;
  p.round = 300;
  p.stamp = VectorClock{1, 200, 3, 70000};
  const auto full = encode(p);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    EXPECT_THROW(decode(prefix), DecodeError) << "cut " << cut;
  }
}

// Random bytes: decode must either produce a message or throw DecodeError —
// never crash (fuzz-light).
TEST(MessageCodecTest, RandomBytesNeverCrash) {
  Rng rng(404);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform_index(64));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      (void)decode(junk);
    } catch (const DecodeError&) {
      // fine
    }
  }
}

TEST(MessageCodecTest, VarintClocksBeatRawEncodingOnTypicalStamps) {
  // A realistic stamp in a 256-process system: mostly small counters.
  VectorClock vc(256);
  Rng rng(7);
  for (std::size_t i = 0; i < vc.size(); ++i) {
    vc[i] = static_cast<ClockValue>(rng.uniform_int(0, 500));
  }
  Encoder e;
  e.put_clock(vc);
  EXPECT_LT(e.bytes().size(), 256u * 4u / 2u);  // at least 2x smaller
}

}  // namespace
}  // namespace hpd::wire
