// Cross-feature matrix: every combination of {detector} × {wire encoding}
// × {failure plan} × {topology family} that is supported must run to
// completion and satisfy the universal invariants. This is the "did some
// feature pair rot?" tripwire.
#include <gtest/gtest.h>

#include <sstream>

#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd::runner {
namespace {

struct MatrixCase {
  const char* topology;
  DetectorKind detector;
  bool wire;
  bool failures;  // kill one node (+ heartbeats, hierarchical only)
};

std::string case_name(const MatrixCase& c) {
  std::ostringstream os;
  os << c.topology << "/"
     << (c.detector == DetectorKind::kHierarchical
             ? "hier"
             : (c.detector == DetectorKind::kCentralized ? "central"
                                                         : "possibly"))
     << (c.wire ? "/wire" : "") << (c.failures ? "/fail" : "");
  return os.str();
}

net::Topology make_topology(const std::string& kind, Rng& rng) {
  if (kind == "grid") {
    return net::Topology::grid(3, 3);
  }
  if (kind == "geometric") {
    return net::Topology::random_geometric(12, 0.4, rng);
  }
  if (kind == "smallworld") {
    return net::Topology::small_world(12, 4, 0.2, rng);
  }
  if (kind == "scalefree") {
    return net::Topology::scale_free(12, 2, rng);
  }
  return net::Topology::complete(6);
}

class MatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(MatrixTest, RunsAndHoldsInvariants) {
  const MatrixCase& c = GetParam();
  Rng topo_rng(7);
  ExperimentConfig cfg;
  cfg.topology = make_topology(c.topology, topo_rng);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::PulseConfig pc;
  pc.rounds = 8;
  pc.period = 80.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 740.0;
  cfg.drain = 200.0;
  cfg.seed = 99;
  cfg.detector = c.detector;
  cfg.wire_encoding = c.wire;
  cfg.occurrence_solutions = false;
  if (c.failures) {
    cfg.heartbeats = c.detector == DetectorKind::kHierarchical;
    cfg.failures.push_back(FailureEvent{250.0, 2});
  }

  const ExperimentResult res = run_experiment(cfg);
  SCOPED_TRACE(case_name(c));

  // Universal invariants.
  EXPECT_GT(res.metrics.msgs_total(), 0u);
  if (!c.failures) {
    // Full participation, no failures: every round detected.
    EXPECT_EQ(res.global_count, 8u);
    EXPECT_EQ(res.dropped_messages, 0u);
  } else if (c.detector == DetectorKind::kHierarchical) {
    // With repair, detection continues for the survivors.
    bool late = false;
    for (const auto& rec : res.occurrences) {
      late = late || (rec.global && rec.time > 500.0);
    }
    EXPECT_TRUE(late);
  }
  // Occurrence indices are per-node monotone.
  std::map<ProcessId, SeqNum> last_index;
  for (const auto& rec : res.occurrences) {
    auto it = last_index.find(rec.detector);
    if (it != last_index.end()) {
      EXPECT_GT(rec.index, it->second);
    }
    last_index[rec.detector] = rec.index;
  }
  // Byte accounting is consistent with the wire flag.
  EXPECT_EQ(res.metrics.wire_bytes_total() > 0, c.wire);
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> out;
  for (const char* topo :
       {"grid", "geometric", "smallworld", "scalefree", "complete"}) {
    for (const DetectorKind det :
         {DetectorKind::kHierarchical, DetectorKind::kCentralized,
          DetectorKind::kPossiblyCentralized}) {
      for (const bool wire : {false, true}) {
        out.push_back(MatrixCase{topo, det, wire, false});
      }
    }
    // Failure plans: hierarchical (with repair), centralized and possibly
    // (both stall without repair, but must not crash or corrupt).
    out.push_back(MatrixCase{topo, DetectorKind::kHierarchical, false, true});
    out.push_back(MatrixCase{topo, DetectorKind::kHierarchical, true, true});
    out.push_back(MatrixCase{topo, DetectorKind::kCentralized, false, true});
    out.push_back(
        MatrixCase{topo, DetectorKind::kPossiblyCentralized, false, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, MatrixTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<MatrixCase>& param_info) {
                           std::string name = case_name(param_info.param);
                           for (char& ch : name) {
                             if (ch == '/') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace hpd::runner
