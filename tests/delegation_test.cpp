// Targeted tests for the subtree-delegated parent search and the FLIP
// re-rooting chain (Section III-F realized as a protocol; see
// ft/reattach.hpp and docs/ARCHITECTURE.md).
#include <gtest/gtest.h>

#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd::runner {
namespace {

/// Chain 0-1-2-3-4 with the tree rooted at 0, plus the single escape edge
/// 4-0. Killing node 1 orphans the subtree {2,3,4}; node 2's own
/// neighbourhood is gone (1 dead, 3 a descendant), node 3's too, and only
/// node 4 — two delegation hops down — can reach the main tree. The attach
/// at 4 must then flip the edges 4→3 and 3→2 to re-root the subtree.
ExperimentConfig deep_delegation_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  net::Topology topo(5);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  topo.add_edge(2, 3);
  topo.add_edge(3, 4);
  topo.add_edge(4, 0);  // the only way back for the orphaned subtree
  cfg.topology = topo;
  std::vector<ProcessId> parents = {kNoProcess, 0, 1, 2, 3};
  cfg.tree = net::SpanningTree::from_parents(parents, 0);

  trace::PulseConfig pc;
  pc.rounds = 10;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 950.0;
  cfg.drain = 250.0;
  cfg.heartbeats = true;
  // Must exceed the worst-case probe+ack round trip (2 × 1.5 under the
  // default U(0.5, 1.5) delays), or acks can miss the window.
  cfg.reattach_config.probe_window = 3.5;
  cfg.reattach_config.retry_backoff = 3.0;
  cfg.failures.push_back(FailureEvent{150.0, 1});
  cfg.seed = seed;
  cfg.occurrence_solutions = false;
  return cfg;
}

class DeepDelegationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeepDelegationTest, TwoLevelDelegationReRootsTheSubtree) {
  const ExperimentResult res = run_experiment(deep_delegation_config(GetParam()));

  // Expected healed shape: 0 root; 4 under 0; 3 under 4; 2 under 3.
  EXPECT_FALSE(res.final_alive[1]);
  EXPECT_EQ(res.final_parents[0], kNoProcess);
  EXPECT_EQ(res.final_parents[4], 0);
  EXPECT_EQ(res.final_parents[3], 4);
  EXPECT_EQ(res.final_parents[2], 3);

  // Delegation and flips actually ran.
  EXPECT_GE(res.metrics.msgs_of_type(proto::kDelegate), 2u);
  EXPECT_GE(res.metrics.msgs_of_type(proto::kFlip), 2u);
  EXPECT_GE(res.metrics.msgs_of_type(proto::kFlipAck), 2u);
  EXPECT_GE(res.metrics.msgs_of_type(proto::kFlipGo), 2u);

  // Detection resumed over the four survivors after the repair: some
  // global occurrence late in the run covers weight 4.
  bool full_coverage_after_repair = false;
  for (const auto& rec : res.occurrences) {
    if (rec.global && rec.time > 400.0) {
      full_coverage_after_repair = true;
    }
  }
  EXPECT_TRUE(full_coverage_after_repair);
  EXPECT_GT(res.global_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepDelegationTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

/// One-level delegation: the orphan's child holds the escape edge.
TEST(DelegationTest, SingleLevelDelegation) {
  ExperimentConfig cfg;
  net::Topology topo(4);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  topo.add_edge(2, 3);
  topo.add_edge(3, 0);
  cfg.topology = topo;
  std::vector<ProcessId> parents = {kNoProcess, 0, 1, 2};
  cfg.tree = net::SpanningTree::from_parents(parents, 0);
  trace::PulseConfig pc;
  pc.rounds = 8;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 760.0;
  cfg.drain = 250.0;
  cfg.heartbeats = true;
  cfg.failures.push_back(FailureEvent{140.0, 1});
  cfg.seed = 17;
  cfg.occurrence_solutions = false;

  const ExperimentResult res = run_experiment(cfg);
  EXPECT_EQ(res.final_parents[3], 0);
  EXPECT_EQ(res.final_parents[2], 3);  // flipped under the pivot
  EXPECT_GT(res.global_count, 0u);
}

/// A genuinely partitioned subtree (no escape edge at any depth) must
/// exhaust the DFS and elect its own root — partial-predicate detection
/// over the partition.
TEST(DelegationTest, ExhaustedSearchBecomesPartitionRoot) {
  ExperimentConfig cfg;
  net::Topology topo(5);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  topo.add_edge(2, 3);
  topo.add_edge(2, 4);
  cfg.topology = topo;
  std::vector<ProcessId> parents = {kNoProcess, 0, 1, 2, 2};
  cfg.tree = net::SpanningTree::from_parents(parents, 0);
  trace::PulseConfig pc;
  pc.rounds = 8;
  pc.period = 100.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 850.0;
  cfg.drain = 300.0;
  cfg.heartbeats = true;
  cfg.failures.push_back(FailureEvent{150.0, 1});
  cfg.seed = 23;
  cfg.occurrence_solutions = false;

  const ExperimentResult res = run_experiment(cfg);
  // Two partitions: {0} and {2,3,4} headed by 2.
  EXPECT_EQ(res.final_parents[0], kNoProcess);
  EXPECT_EQ(res.final_parents[2], kNoProcess);
  EXPECT_EQ(res.final_parents[3], 2);
  EXPECT_EQ(res.final_parents[4], 2);
  // The delegation DFS ran and failed upward before node 2 conceded.
  EXPECT_GE(res.metrics.msgs_of_type(proto::kDelegateFail), 1u);
  // Both partitions keep detecting their partial predicates.
  std::set<ProcessId> roots_detecting;
  for (const auto& rec : res.occurrences) {
    if (rec.global && rec.time > 450.0) {
      roots_detecting.insert(rec.detector);
    }
  }
  EXPECT_TRUE(roots_detecting.count(0) == 1);
  EXPECT_TRUE(roots_detecting.count(2) == 1);
}

}  // namespace
}  // namespace hpd::runner
