#include <gtest/gtest.h>

#include <span>

#include "detect/queue_engine.hpp"
#include "detect/reorder.hpp"

namespace hpd::detect {
namespace {

Interval iv(ProcessId origin, SeqNum seq, VectorClock lo, VectorClock hi) {
  Interval x;
  x.origin = origin;
  x.seq = seq;
  x.lo = std::move(lo);
  x.hi = std::move(hi);
  return x;
}

// Round r's two-process intervals, mutually overlapping within a round
// (each sees the other's start) and eliminating across rounds.
Interval crossing(ProcessId p, ClockValue round) {
  const ClockValue b = (round - 1) * 4;
  if (p == 0) {
    return iv(0, round, {static_cast<ClockValue>(b + 1), b},
              {static_cast<ClockValue>(b + 4), static_cast<ClockValue>(b + 2)});
  }
  return iv(1, round, {b, static_cast<ClockValue>(b + 1)},
            {static_cast<ClockValue>(b + 2), static_cast<ClockValue>(b + 4)});
}

TEST(QueueEngineTest, SingleQueueEveryIntervalIsASolution) {
  QueueEngine e;
  e.add_queue(3);
  const auto s1 = e.offer(3, iv(3, 1, {1}, {2}));
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].members.size(), 1u);
  EXPECT_EQ(s1[0].members[0].seq, 1u);
  const auto s2 = e.offer(3, iv(3, 2, {3}, {4}));
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(e.stored(), 0u);  // pruned away
  EXPECT_EQ(e.solutions_found(), 2u);
}

TEST(QueueEngineTest, TwoQueueSolutionAndPruning) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // First interval waits for the other queue.
  EXPECT_TRUE(e.offer(0, iv(0, 1, {1, 0}, {3, 2})).empty());
  EXPECT_EQ(e.stored(), 1u);
  const auto sols = e.offer(1, iv(1, 1, {0, 1}, {2, 3}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].members.size(), 2u);
  // Eq. (10): neither max dominates the other -> both pruned.
  EXPECT_EQ(e.stored(), 0u);
  EXPECT_EQ(e.pruned(), 2u);
  EXPECT_EQ(e.eliminated(), 0u);
}

TEST(QueueEngineTest, EliminationRemovesStaleInterval) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // y (on queue 1) ends causally before x (queue 0) starts:
  // min(x) = (5,4) dominates max(y) = (1,2) -> y can never pair with x.
  EXPECT_TRUE(e.offer(1, iv(1, 1, {0, 1}, {1, 2})).empty());
  EXPECT_TRUE(e.offer(0, iv(0, 1, {5, 4}, {7, 5})).empty());
  EXPECT_EQ(e.eliminated(), 1u);
  EXPECT_EQ(e.stored(), 1u);  // only x remains
  EXPECT_EQ(e.queue_size(1), 0u);
  EXPECT_EQ(e.queue_size(0), 1u);
}

TEST(QueueEngineTest, EliminationExposesNextIntervalWhichSolves) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // Stale y1 then good y2 queued behind it on queue 1.
  EXPECT_TRUE(e.offer(1, iv(1, 1, {0, 1}, {1, 2})).empty());
  EXPECT_TRUE(e.offer(1, iv(1, 2, {4, 3}, {6, 8})).empty());
  // x overlaps y2 but eliminates y1.
  const auto sols = e.offer(0, iv(0, 1, {5, 4}, {7, 5}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].members[1].seq, 2u);
  EXPECT_EQ(e.eliminated(), 1u);
}

TEST(QueueEngineTest, RepeatedDetectionAcrossRounds) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // Queue 1 accumulates two rounds' intervals while queue 0 is empty.
  EXPECT_TRUE(e.offer(1, crossing(1, 1)).empty());
  EXPECT_TRUE(e.offer(1, crossing(1, 2)).empty());
  const auto s1 = e.offer(0, crossing(0, 1));
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].members[0].seq, 1u);
  // Feeding queue 0's second round produces the second solution.
  const auto s2 = e.offer(0, crossing(0, 2));
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(s2[0].members[0].seq, 2u);
  EXPECT_EQ(e.solutions_found(), 2u);
  EXPECT_EQ(e.stored(), 0u);
}

TEST(QueueEngineTest, PruneKeepsLaggard) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // max(x0) < max(x1) strictly: Eq. (10) removes only x0.
  const Interval x0 = iv(0, 1, {1, 1}, {2, 2});
  const Interval x1 = iv(1, 1, {1, 1}, {3, 3});
  EXPECT_TRUE(e.offer(0, x0).empty());
  const auto sols = e.offer(1, x1);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(e.pruned(), 1u);
  EXPECT_EQ(e.queue_size(1), 1u);  // x1 kept: may pair with succ(x0)
  EXPECT_EQ(e.queue_size(0), 0u);
}

TEST(QueueEngineTest, SinglePruneModeRemovesOne) {
  QueueEngine e(QueueEngine::PruneMode::kSingleEq10);
  e.add_queue(0);
  e.add_queue(1);
  EXPECT_TRUE(e.offer(0, iv(0, 1, {1, 0}, {3, 2})).empty());
  const auto sols = e.offer(1, iv(1, 1, {0, 1}, {2, 3}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(e.pruned(), 1u);
  EXPECT_EQ(e.stored(), 1u);
}

TEST(QueueEngineTest, RemoveQueueUnblocksSolution) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  e.add_queue(2);
  EXPECT_TRUE(e.offer(0, iv(0, 1, {1, 0, 0}, {3, 2, 2})).empty());
  EXPECT_TRUE(e.offer(1, iv(1, 1, {0, 1, 0}, {2, 3, 2})).empty());
  // Queue 2 never delivers; removing it (child died) completes the set.
  e.remove_queue(2);
  const auto sols = e.recheck();
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].members.size(), 2u);
  EXPECT_EQ(e.num_queues(), 2u);
}

TEST(QueueEngineTest, RemoveQueueDropsStoredIntervals) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  e.offer(0, iv(0, 1, {1, 0}, {3, 2}));
  EXPECT_EQ(e.stored(), 1u);
  e.remove_queue(0);
  EXPECT_EQ(e.stored(), 0u);
  EXPECT_FALSE(e.has_queue(0));
  EXPECT_THROW(e.offer(0, iv(0, 2, {4, 0}, {5, 2})), AssertionError);
}

TEST(QueueEngineTest, StatsTrackPeaksAndComparisons) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  e.offer(0, iv(0, 1, {1, 0}, {3, 2}));
  e.offer(0, iv(0, 2, {4, 3}, {6, 4}));
  EXPECT_EQ(e.stored_peak(), 2u);
  EXPECT_EQ(e.offered(), 2u);
  EXPECT_EQ(e.comparisons(), 0u);  // queue 1 still empty: nothing compared
  e.offer(1, iv(1, 1, {0, 1}, {2, 3}));
  EXPECT_GT(e.comparisons(), 0u);
}

TEST(QueueEngineTest, DuplicateQueueRejected) {
  QueueEngine e;
  e.add_queue(0);
  EXPECT_THROW(e.add_queue(0), AssertionError);
  EXPECT_THROW(e.remove_queue(5), AssertionError);
}

TEST(QueueEngineTest, RestorePrunedRevivesLastHead) {
  // A leaf-turned-root scenario (paper Fig. 2(c)): the single-queue engine
  // consumed x5 as a trivial solution; when a child queue appears, x5 must
  // come back to combine with the child's aggregate.
  QueueEngine e;
  e.add_queue(0);
  EXPECT_EQ(e.offer(0, iv(0, 1, {1, 0}, {2, 5})).size(), 1u);
  EXPECT_EQ(e.stored(), 0u);
  e.restore_pruned();
  EXPECT_EQ(e.stored(), 1u);
  e.add_queue(1);
  const auto sols = e.offer(1, iv(1, 1, {0, 1}, {5, 2}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].members[0].seq, 1u);
}

TEST(QueueEngineTest, RestorePrunedIsOneShot) {
  QueueEngine e;
  e.add_queue(0);
  e.offer(0, iv(0, 1, {1}, {2}));
  e.restore_pruned();
  EXPECT_EQ(e.stored(), 1u);
  e.restore_pruned();  // nothing left to restore
  EXPECT_EQ(e.stored(), 1u);
}

TEST(QueueEngineTest, RestorePrunedKeepsQueueOrderAndRevives) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  // Solution prunes both heads; a later interval is already queued behind.
  e.offer(0, crossing(0, 1));
  e.offer(0, crossing(0, 2));
  e.offer(1, crossing(1, 1));  // solution on round 1, both heads pruned
  EXPECT_EQ(e.solutions_found(), 1u);
  EXPECT_EQ(e.queue_size(0), 1u);
  e.restore_pruned();
  // Restored round-1 heads sit in front of anything queued behind them.
  EXPECT_EQ(e.queue_size(0), 2u);
  EXPECT_EQ(e.queue_size(1), 1u);
  // Revival semantics: the restored pair forms the same solution again
  // (this is why restore is only used when the detection scope changes).
  const auto again = e.recheck();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].members[0].seq, 1u);
  // Detection then proceeds normally with the later intervals.
  const auto sols = e.offer(1, crossing(1, 2));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].members[0].seq, 2u);
}

TEST(QueueEngineTest, RemoveQueueForgetsItsPrunedHead) {
  QueueEngine e;
  e.add_queue(0);
  e.add_queue(1);
  e.offer(0, crossing(0, 1));
  e.offer(1, crossing(1, 1));  // solution; both pruned
  e.remove_queue(1);
  e.restore_pruned();
  EXPECT_EQ(e.queue_size(0), 1u);  // queue 0's head restored
  EXPECT_FALSE(e.has_queue(1));    // queue 1's pruned head gone with it
}

// ---- ReorderBuffer ----------------------------------------------------------

TEST(ReorderBufferTest, InOrderPassThrough) {
  ReorderBuffer rb;
  rb.track(7, 1);
  auto out = rb.push(7, iv(7, 1, {1}, {2}));
  ASSERT_EQ(out.size(), 1u);
  out = rb.push(7, iv(7, 2, {3}, {4}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 2u);
  EXPECT_EQ(rb.pending(), 0u);
}

TEST(ReorderBufferTest, GapHoldsAndReleases) {
  ReorderBuffer rb;
  rb.track(7, 1);
  EXPECT_TRUE(rb.push(7, iv(7, 3, {5}, {6})).empty());
  EXPECT_TRUE(rb.push(7, iv(7, 2, {3}, {4})).empty());
  EXPECT_EQ(rb.pending(), 2u);
  const auto out = rb.push(7, iv(7, 1, {1}, {2}));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(out[2].seq, 3u);
  EXPECT_EQ(rb.pending(), 0u);
}

TEST(ReorderBufferTest, StaleAndUnknownDropped) {
  ReorderBuffer rb;
  rb.track(7, 5);
  EXPECT_TRUE(rb.push(7, iv(7, 4, {1}, {2})).empty());  // below expected
  EXPECT_TRUE(rb.push(8, iv(8, 1, {1}, {2})).empty());  // unknown origin
  EXPECT_EQ(rb.dropped_stale(), 2u);
  EXPECT_EQ(rb.push(7, iv(7, 5, {3}, {4})).size(), 1u);
}

TEST(ReorderBufferTest, RetrackResetsStream) {
  ReorderBuffer rb;
  rb.track(7, 1);
  rb.push(7, iv(7, 2, {3}, {4}));  // parked
  EXPECT_EQ(rb.pending(), 1u);
  rb.track(7, 10);  // re-adoption with a new starting seq
  EXPECT_EQ(rb.pending(), 0u);
  EXPECT_EQ(rb.push(7, iv(7, 10, {9}, {9})).size(), 1u);
}

TEST(ReorderBufferTest, UntrackDropsEverything) {
  ReorderBuffer rb;
  rb.track(7, 1);
  rb.push(7, iv(7, 2, {3}, {4}));
  rb.untrack(7);
  EXPECT_FALSE(rb.tracking(7));
  EXPECT_EQ(rb.pending(), 0u);
  EXPECT_TRUE(rb.push(7, iv(7, 1, {1}, {2})).empty());
}

}  // namespace
}  // namespace hpd::detect
