#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hpd {
namespace {

TEST(AssertTest, RequireThrowsWithContext) {
  try {
    HPD_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(AssertTest, RequirePassesSilently) {
  EXPECT_NO_THROW(HPD_REQUIRE(true, "fine"));
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, KnownFirstDraw) {
  // Pin the exact stream so cross-platform regressions are caught: this is
  // xoshiro256** seeded via SplitMix64(7).
  Rng a(7);
  const std::uint64_t v1 = a();
  Rng b(7);
  EXPECT_EQ(v1, b());
  EXPECT_NE(v1, 0u);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), AssertionError);
}

TEST(RngTest, Uniform01Range) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(4.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.15);
}

TEST(RngTest, ExponentialRejectsBadMean) {
  Rng rng(9);
  EXPECT_THROW(rng.exponential(0.0), AssertionError);
  EXPECT_THROW(rng.exponential(-1.0), AssertionError);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(123);
  Rng child = parent.split();
  // The child stream should not be a shifted copy of the parent stream.
  Rng parent2(123);
  (void)parent2();  // consume what split consumed
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (child() == parent2()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(LogTest, LevelGating) {
  Log::set_level(LogLevel::kOff);
  EXPECT_EQ(Log::level(), LogLevel::kOff);
  Log::set_level(LogLevel::kWarn);
  EXPECT_EQ(Log::level(), LogLevel::kWarn);
  EXPECT_STREQ(Log::level_name(LogLevel::kDebug), "debug");
  Log::set_level(LogLevel::kOff);
}

TEST(TypesTest, IdxRoundTrip) {
  EXPECT_EQ(idx(ProcessId{5}), 5u);
  EXPECT_EQ(kNoProcess, -1);
}

}  // namespace
}  // namespace hpd
