// Unit + property tests for the computation-slicing engine (detect/slicing):
// the doom rule's certificates are sound against brute force, the admission
// filter never changes the inner engine's solution sequence, join-irreducible
// cuts match their definition, the deliberately broken mode observably loses
// solutions, and the detector shell mirrors CentralSink record for record.
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "detect/centralized.hpp"
#include "detect/slicing.hpp"

namespace hpd::detect {
namespace {

using Ids = std::vector<std::pair<ProcessId, SeqNum>>;

Ids ids_of(const Solution& sol) {
  Ids out;
  for (const auto& m : sol.members) {
    out.emplace_back(m.origin, m.seq);
  }
  return out;
}

// ---- Causal interval stream generator --------------------------------------
//
// Unlike the adversarial StreamGen used by the queue-engine fuzzers (random
// cross components), this generator runs real vector clocks: local events,
// predicate toggles, and messages whose receipt merges clocks — the monotone
// channel conditions a regular predicate's slice is defined over. Per-origin
// streams therefore satisfy the succ() invariant the slicer's binary
// searches rely on.
struct CausalGen {
  Rng rng;
  std::size_t n;
  std::vector<VectorClock> clock;
  std::vector<bool> open;
  std::vector<VectorClock> open_lo;
  std::vector<SeqNum> next_seq;

  CausalGen(std::uint64_t seed, std::size_t n_procs)
      : rng(seed), n(n_procs), clock(n_procs, VectorClock(n_procs)),
        open(n_procs, false), open_lo(n_procs), next_seq(n_procs, 1) {}

  void tick(std::size_t p) { clock[p][p] = clock[p][p] + 1; }

  /// One random step (internal event, message, toggle); returns the
  /// completed interval when a truth period closes.
  std::optional<Interval> step() {
    const std::size_t p = rng.uniform_index(n);
    const double roll = rng.uniform01();
    if (roll < 0.35 && n > 1) {
      std::size_t q = rng.uniform_index(n - 1);
      if (q >= p) {
        ++q;
      }
      tick(p);
      clock[q].merge(clock[p]);
      tick(q);
    } else if (!open[p] && roll < 0.70) {
      tick(p);
      open[p] = true;
      open_lo[p] = clock[p];
    } else if (open[p]) {
      tick(p);
      Interval x;
      x.lo = open_lo[p];
      x.hi = clock[p];
      x.origin = static_cast<ProcessId>(p);
      x.seq = next_seq[p]++;
      open[p] = false;
      return x;
    } else {
      tick(p);
    }
    return std::nullopt;
  }

  std::vector<Interval> run(int steps) {
    std::vector<Interval> out;
    for (int s = 0; s < steps; ++s) {
      if (auto x = step()) {
        out.push_back(std::move(*x));
      }
    }
    return out;
  }
};

bool can_pair(const Interval& x, const Interval& y) {
  return vc_leq(y.lo, x.hi) && vc_leq(x.lo, y.hi);
}

Interval make(ProcessId origin, SeqNum seq, std::vector<ClockValue> lo,
              std::vector<ClockValue> hi) {
  Interval x;
  x.lo = VectorClock(lo.size());
  x.hi = VectorClock(hi.size());
  for (std::size_t i = 0; i < lo.size(); ++i) {
    x.lo[i] = lo[i];
    x.hi[i] = hi[i];
  }
  x.origin = origin;
  x.seq = seq;
  return x;
}

// ---- Differential: the filter must not change the solution sequence --------

class SlicingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlicingPropertyTest, FilterPreservesQueueEngineSolutionsExactly) {
  const QueueEngine::PruneMode modes[] = {
      QueueEngine::PruneMode::kAllEq10,
      QueueEngine::PruneMode::kSingleEq10,
  };
  Rng rng(GetParam() ^ 0x51ce);
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 2 + rng.uniform_index(4);
    const auto mode = modes[rng.uniform_index(2)];
    QueueEngine bare(mode);
    SlicingEngine sliced(SlicingEngine::Mode::kExact, mode);
    for (std::size_t i = 0; i < n; ++i) {
      bare.add_queue(static_cast<ProcessId>(i));
      sliced.add_queue(static_cast<ProcessId>(i));
    }
    CausalGen gen(GetParam() * 613 + static_cast<std::uint64_t>(round), n);
    std::vector<Ids> bare_sols;
    std::vector<Ids> sliced_sols;
    for (const Interval& x : gen.run(400)) {
      for (const auto& sol : bare.offer(x.origin, x)) {
        bare_sols.push_back(ids_of(sol));
      }
      for (const auto& sol : sliced.offer(x.origin, x)) {
        sliced_sols.push_back(ids_of(sol));
      }
    }
    ASSERT_EQ(bare_sols, sliced_sols)
        << "seed " << GetParam() << " round " << round << " n " << n;
    // The filter is an optimization: whatever it discarded, the inner
    // engine sees fewer intervals, never different solutions.
    EXPECT_EQ(sliced.inner().offered() + sliced.discarded_by_slice(),
              bare.offered());
  }
}

TEST_P(SlicingPropertyTest, DoomCertificatesAreSoundAgainstBruteForce) {
  Rng rng(GetParam() ^ 0xd003);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 2 + rng.uniform_index(4);
    SlicingEngine sliced;
    for (std::size_t i = 0; i < n; ++i) {
      sliced.add_queue(static_cast<ProcessId>(i));
    }
    CausalGen gen(GetParam() * 271 + static_cast<std::uint64_t>(round), n);
    const std::vector<Interval> all = gen.run(500);
    std::vector<Interval> discarded;
    std::uint64_t before = 0;
    for (const Interval& x : all) {
      sliced.offer(x.origin, x);
      if (sliced.discarded_by_slice() > before) {
        discarded.push_back(x);
        before = sliced.discarded_by_slice();
      }
    }
    // Soundness: a discarded interval has, on some remote stream, no
    // compatible partner in the ENTIRE execution — past or future. (The
    // certificate is issued online from a prefix; succ() monotonicity is
    // what makes it final.)
    for (const Interval& x : discarded) {
      bool some_stream_empty = false;
      for (std::size_t j = 0; j < n && !some_stream_empty; ++j) {
        if (static_cast<ProcessId>(j) == x.origin) {
          continue;
        }
        bool any = false;
        for (const Interval& y : all) {
          if (y.origin == static_cast<ProcessId>(j) && can_pair(x, y)) {
            any = true;
            break;
          }
        }
        some_stream_empty = !any;
      }
      EXPECT_TRUE(some_stream_empty)
          << "P" << x.origin << "#" << x.seq
          << " was discarded but pairs on every stream (seed " << GetParam()
          << " round " << round << ")";
    }
  }
}

TEST_P(SlicingPropertyTest, JoinIrreducibleCutMatchesDefinition) {
  Rng rng(GetParam() ^ 0x1cc7);
  const std::size_t n = 2 + rng.uniform_index(3);
  SlicingEngine sliced;
  for (std::size_t i = 0; i < n; ++i) {
    sliced.add_queue(static_cast<ProcessId>(i));
  }
  CausalGen gen(GetParam() * 97 + 11, n);
  std::vector<Interval> delivered;
  for (const Interval& x : gen.run(400)) {
    sliced.offer(x.origin, x);
    delivered.push_back(x);
    const auto cut = sliced.jcut(x);
    // Brute-force J(x) over the delivered prefix: frontier is the join of
    // x.lo with the lo of the EARLIEST compatible-from-below interval per
    // remote stream; closed iff every remote stream has one.
    VectorClock expect = x.lo;
    bool closed = true;
    for (std::size_t j = 0; j < n; ++j) {
      if (static_cast<ProcessId>(j) == x.origin) {
        continue;
      }
      const Interval* witness = nullptr;
      for (const Interval& y : delivered) {
        if (y.origin == static_cast<ProcessId>(j) && vc_leq(x.lo, y.hi)) {
          witness = &y;
          break;  // streams are delivered in succ() order: first = earliest
        }
      }
      if (witness == nullptr) {
        closed = false;
      } else {
        expect.merge(witness->lo);
      }
    }
    EXPECT_EQ(cut.closed, closed);
    ASSERT_EQ(cut.frontier.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(cut.frontier[i], expect[i]) << "component " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicingPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 42u, 1000u));

// ---- Boundary cases ---------------------------------------------------------

TEST(SlicingBoundaryTest, EmptySliceDiscardsEverythingAndFindsNothing) {
  // P1's only interval causally follows P0's: no consistent cut satisfies
  // the conjunction, the slice is empty, and the interval that arrives
  // after the window provably closed is discarded at admission.
  SlicingEngine sliced;
  sliced.add_queue(0);
  sliced.add_queue(1);
  // P1 completes first (in wall-clock/report order), having already heard
  // of P0's third event — its window starts after any P0 interval ending
  // at or before component 2.
  EXPECT_TRUE(sliced.offer(1, make(1, 1, {3, 1}, {3, 2})).empty());
  // P0's interval ended at (2,0): vc_leq((3,1),(2,0)) fails at index 0 of
  // P1's history, so the pairing window is closed before it ever opened.
  const Interval x = make(0, 1, {1, 0}, {2, 0});
  EXPECT_TRUE(sliced.is_doomed(x));
  EXPECT_TRUE(sliced.offer(0, Interval(x)).empty());
  EXPECT_EQ(sliced.discarded_by_slice(), 1u);
  EXPECT_EQ(sliced.admitted(), 1u);  // P1's interval had an open future
  EXPECT_EQ(sliced.inner().solutions_found(), 0u);
}

TEST(SlicingBoundaryTest, FullSliceAdmitsEverythingAndCutsClose) {
  // Three mutually concurrent intervals: every consistent cut past the
  // starts can satisfy Φ — the slice is the whole computation, nothing is
  // discarded, and the last join-irreducible cut is closed.
  SlicingEngine sliced;
  for (ProcessId p = 0; p < 3; ++p) {
    sliced.add_queue(p);
  }
  EXPECT_TRUE(sliced.offer(0, make(0, 1, {1, 0, 0}, {1, 1, 1})).empty());
  EXPECT_TRUE(sliced.offer(1, make(1, 1, {0, 1, 0}, {1, 1, 1})).empty());
  const auto sols = sliced.offer(2, make(2, 1, {0, 0, 1}, {1, 1, 1}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sliced.discarded_by_slice(), 0u);
  EXPECT_EQ(sliced.admitted(), 3u);
  EXPECT_EQ(sliced.jcuts_closed(), 1u);  // the third arrival sees both witnesses
}

TEST(SlicingBoundaryTest, CapacityBackpressureForwardsToInnerEngine) {
  SlicingEngine sliced;
  sliced.set_capacity(1);
  sliced.add_queue(0);
  sliced.add_queue(1);
  sliced.offer(0, make(0, 1, {1, 0}, {2, 5}));
  sliced.offer(0, make(0, 2, {3, 6}, {4, 9}));  // queue 0 full: rejected
  EXPECT_EQ(sliced.inner().rejected(), 1u);
}

// ---- The broken mode is observably wrong ------------------------------------

TEST(SlicingBrokenModeTest, EagerDoomDiscardsLiveIntervalsAndLosesSolutions) {
  bool lost_somewhere = false;
  for (std::uint64_t seed = 1; seed <= 20 && !lost_somewhere; ++seed) {
    const std::size_t n = 3;
    SlicingEngine exact(SlicingEngine::Mode::kExact);
    SlicingEngine broken(SlicingEngine::Mode::kTestBrokenEagerDoom);
    for (std::size_t i = 0; i < n; ++i) {
      exact.add_queue(static_cast<ProcessId>(i));
      broken.add_queue(static_cast<ProcessId>(i));
    }
    CausalGen gen(seed * 1717, n);
    std::size_t exact_sols = 0;
    std::size_t broken_sols = 0;
    for (const Interval& x : gen.run(500)) {
      exact_sols += exact.offer(x.origin, x).size();
      broken_sols += broken.offer(x.origin, x).size();
    }
    EXPECT_GE(broken.discarded_by_slice(), exact.discarded_by_slice());
    if (broken_sols < exact_sols) {
      lost_somewhere = true;
    }
  }
  EXPECT_TRUE(lost_somewhere)
      << "eager doom never lost a solution over 20 causal schedules — the "
         "broken fixture has no teeth";
}

// ---- Detector shell ---------------------------------------------------------

TEST(SlicingDetectorTest, MirrorsCentralSinkRecordForRecord) {
  const std::size_t n = 3;
  std::vector<ProcessId> all;
  for (std::size_t i = 0; i < n; ++i) {
    all.push_back(static_cast<ProcessId>(i));
  }
  std::size_t total_detections = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SimTime fake_now = 0.0;
    std::vector<OccurrenceRecord> central_recs;
    std::vector<OccurrenceRecord> slicing_recs;
    CentralSink::Hooks ch;
    ch.on_occurrence = [&](const OccurrenceRecord& r) {
      central_recs.push_back(r);
    };
    ch.now = [&] { return fake_now; };
    SlicingDetector::Hooks sh;
    sh.on_occurrence = [&](const OccurrenceRecord& r) {
      slicing_recs.push_back(r);
    };
    sh.now = [&] { return fake_now; };
    CentralSink central(0, all, std::move(ch));
    SlicingDetector slicing(0, all, std::move(sh));

    CausalGen gen(seed * 7919, n);
    for (const Interval& x : gen.run(600)) {
      fake_now += 1.0;
      if (x.origin == 0) {
        central.local_interval(x);
        slicing.local_interval(x);
      } else {
        central.report(x);
        slicing.report(x);
      }
    }
    ASSERT_EQ(central_recs.size(), slicing_recs.size()) << "seed " << seed;
    total_detections += central_recs.size();
    for (std::size_t k = 0; k < central_recs.size(); ++k) {
      const auto& a = central_recs[k];
      const auto& b = slicing_recs[k];
      EXPECT_EQ(a.index, b.index);
      EXPECT_EQ(a.time, b.time);
      EXPECT_EQ(a.global, b.global);
      EXPECT_EQ(a.aggregate.seq, b.aggregate.seq);
      EXPECT_TRUE(vc_leq(a.aggregate.lo, b.aggregate.lo) &&
                  vc_leq(b.aggregate.lo, a.aggregate.lo));
      EXPECT_TRUE(vc_leq(a.aggregate.hi, b.aggregate.hi) &&
                  vc_leq(b.aggregate.hi, a.aggregate.hi));
      ASSERT_EQ(a.solution.size(), b.solution.size());
      for (std::size_t m = 0; m < a.solution.size(); ++m) {
        EXPECT_EQ(a.solution[m].origin, b.solution[m].origin);
        EXPECT_EQ(a.solution[m].seq, b.solution[m].seq);
      }
    }
    EXPECT_EQ(central.occurrences(), slicing.occurrences());
  }
  EXPECT_GT(total_detections, 0u) << "no schedule produced a detection";
}

TEST(SlicingDetectorTest, RemoveProcessUnblocksRemainingConjunction) {
  std::vector<OccurrenceRecord> recs;
  SlicingDetector::Hooks hooks;
  hooks.on_occurrence = [&](const OccurrenceRecord& r) { recs.push_back(r); };
  SlicingDetector det(0, {0, 1, 2}, std::move(hooks));
  det.local_interval(make(0, 1, {1, 0, 0}, {1, 1, 1}));
  det.report(make(1, 1, {0, 1, 0}, {1, 1, 1}));
  EXPECT_TRUE(recs.empty());  // P2's queue is empty: no full conjunction
  det.remove_process(2);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].solution.size(), 2u);
  // A stale report from the removed process is ignored, not fatal.
  det.report(make(2, 1, {0, 0, 1}, {1, 1, 1}));
  EXPECT_EQ(recs.size(), 1u);
}

}  // namespace
}  // namespace hpd::detect
