// Byte-identity tests for the work-parallel detection paths:
//
//   ParallelAggregateTest  aggregate_parallel() vs the serial aggregate()
//                          over random batches — identical clocks, weight,
//                          completion time, and provenance shape for every
//                          pool size, including above/below the slice
//                          alignment and the inline/heap storage seam
//   ParallelReplayTest     replay_triple() and the *_sharded() drivers vs
//                          their serial counterparts over recorded
//                          executions — identical solution streams
//
// Named Parallel* on purpose: the TSan CI leg selects suites by that
// token, so these run with full race instrumentation.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "detect/offline/par_replay.hpp"
#include "detect/par_aggregate.hpp"
#include "interval/interval.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "parallel/thread_pool.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"

namespace hpd {
namespace {

VectorClock random_clock(Rng& rng, std::size_t n, ClockValue max_value) {
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) {
    vc[i] = static_cast<ClockValue>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_value)));
  }
  return vc;
}

std::vector<Interval> random_batch(Rng& rng, std::size_t count, std::size_t n,
                                   bool with_provenance) {
  std::vector<Interval> out(count);
  for (std::size_t k = 0; k < count; ++k) {
    out[k].lo = random_clock(rng, n, 60);
    out[k].hi = random_clock(rng, n, 60);
    out[k].origin = static_cast<ProcessId>(k);
    out[k].seq = static_cast<SeqNum>(k + 1);
    out[k].weight = static_cast<std::uint32_t>(1 + rng.uniform_index(3));
    out[k].completed_at = static_cast<SimTime>(rng.uniform_index(1000));
    if (with_provenance) {
      attach_base_provenance(out[k]);
    }
  }
  return out;
}

void expect_identical(const Interval& got, const Interval& want) {
  ASSERT_EQ(got.lo.size(), want.lo.size());
  for (std::size_t i = 0; i < got.lo.size(); ++i) {
    ASSERT_EQ(got.lo[i], want.lo[i]) << "lo[" << i << "]";
    ASSERT_EQ(got.hi[i], want.hi[i]) << "hi[" << i << "]";
  }
  EXPECT_EQ(got.origin, want.origin);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.weight, want.weight);
  EXPECT_EQ(got.aggregated, want.aggregated);
  EXPECT_EQ(got.completed_at, want.completed_at);
  EXPECT_EQ(base_intervals(got), base_intervals(want));
}

TEST(ParallelAggregateTest, BitIdenticalToSerialAcrossPoolAndBatchShapes) {
  Rng rng(20260811);
  // Clock widths straddle the slice alignment (16 components/cache line)
  // and the inline/heap seam; batch sizes cross the parallel threshold.
  const std::size_t widths[] = {1, 15, 16, 17, 64, 255, 1024};
  const std::size_t batches[] = {1, 2, 7, 40};
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}}) {
    parallel::ThreadPool pool(workers);
    for (const std::size_t n : widths) {
      for (const std::size_t count : batches) {
        for (const bool prov : {false, true}) {
          SCOPED_TRACE("workers=" + std::to_string(workers) +
                       " n=" + std::to_string(n) +
                       " batch=" + std::to_string(count) +
                       " prov=" + std::to_string(prov));
          const std::vector<Interval> xs = random_batch(rng, count, n, prov);
          const std::span<const Interval> span(xs);
          const Interval serial = aggregate(span, 0, 7);
          const Interval par = detect::aggregate_parallel(span, 0, 7, pool);
          expect_identical(par, serial);
        }
      }
    }
  }
}

TEST(ParallelAggregateTest, ThresholdGatesTheParallelPath) {
  parallel::ThreadPool pool(2);
  parallel::ThreadPool solo(1);
  using detect::aggregate_should_parallelize;
  using detect::kParallelAggregateMinWork;
  EXPECT_FALSE(aggregate_should_parallelize(8, 16, nullptr));
  EXPECT_FALSE(aggregate_should_parallelize(8, 16, &pool));
  // A single-worker pool never qualifies — the handoff cannot win.
  EXPECT_FALSE(
      aggregate_should_parallelize(kParallelAggregateMinWork, 4096, &solo));
  EXPECT_TRUE(aggregate_should_parallelize(
      kParallelAggregateMinWork / 4096 + 1, 4096, &pool));
}

// ---- Parallel offline replay -------------------------------------------------

runner::ExperimentConfig gossip_case(std::uint64_t seed,
                                     runner::DetectorKind kind) {
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 250.0;
  g.mean_gap = 4.0;
  g.p_toggle = 0.4;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = 270.0;
  cfg.drain = 80.0;
  cfg.detector = kind;
  cfg.record_execution = true;
  cfg.seed = seed;
  return cfg;
}

std::string solutions_fingerprint(const std::vector<detect::Solution>& sols) {
  std::string out;
  for (const auto& sol : sols) {
    for (const Interval& m : sol.members) {
      out += m.to_string();
      out += ';';
    }
    out += '|';
  }
  return out;
}

TEST(ParallelReplayTest, TripleMatchesSerialReplays) {
  parallel::ThreadPool pool(2);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const auto cfg = gossip_case(seed, runner::DetectorKind::kHierarchical);
    const auto res = runner::run_experiment(cfg);
    detect::offline::TripleOptions topt;
    const auto triple =
        detect::offline::replay_triple(res.execution, cfg.tree, topt, pool);

    detect::offline::ReplayOptions copt;
    EXPECT_EQ(
        solutions_fingerprint(triple.central),
        solutions_fingerprint(
            detect::offline::replay_centralized(res.execution, copt)));

    detect::offline::SlicingReplayOptions sopt;
    const auto serial_slicing =
        detect::offline::replay_slicing(res.execution, sopt);
    EXPECT_EQ(solutions_fingerprint(triple.slicing.solutions),
              solutions_fingerprint(serial_slicing.solutions));
    EXPECT_EQ(triple.slicing.admitted, serial_slicing.admitted);
    EXPECT_EQ(triple.slicing.discarded_by_slice,
              serial_slicing.discarded_by_slice);

    const auto serial_hier =
        detect::offline::hier_replay(res.execution, cfg.tree);
    ASSERT_EQ(triple.hier.solutions.size(), serial_hier.solutions.size());
    for (const auto& [node, sols] : serial_hier.solutions) {
      const auto it = triple.hier.solutions.find(node);
      ASSERT_NE(it, triple.hier.solutions.end());
      EXPECT_EQ(solutions_fingerprint(it->second),
                solutions_fingerprint(sols));
    }
  }
}

TEST(ParallelReplayTest, ShardedDriversPreserveInputOrderAndContent) {
  parallel::ThreadPool pool(3);
  std::vector<trace::ExecutionRecord> execs;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    execs.push_back(
        runner::run_experiment(
            gossip_case(seed, runner::DetectorKind::kCentralized))
            .execution);
  }
  const std::span<const trace::ExecutionRecord> span(execs);

  detect::offline::ReplayOptions copt;
  const auto central =
      detect::offline::replay_centralized_sharded(span, copt, pool);
  ASSERT_EQ(central.size(), execs.size());
  for (std::size_t i = 0; i < execs.size(); ++i) {
    EXPECT_EQ(solutions_fingerprint(central[i]),
              solutions_fingerprint(
                  detect::offline::replay_centralized(execs[i], copt)))
        << "execution " << i;
  }

  detect::offline::SlicingReplayOptions sopt;
  const auto slicing =
      detect::offline::replay_slicing_sharded(span, sopt, pool);
  ASSERT_EQ(slicing.size(), execs.size());
  for (std::size_t i = 0; i < execs.size(); ++i) {
    EXPECT_EQ(solutions_fingerprint(slicing[i].solutions),
              solutions_fingerprint(
                  detect::offline::replay_slicing(execs[i], sopt).solutions))
        << "execution " << i;
  }

  const auto possibly = detect::offline::possibly_replay_sharded(
      span, detect::PossiblyEngine::Mode::kRepeatedConsumeAll, pool);
  ASSERT_EQ(possibly.size(), execs.size());
  for (std::size_t i = 0; i < execs.size(); ++i) {
    EXPECT_EQ(solutions_fingerprint(possibly[i]),
              solutions_fingerprint(detect::possibly_replay(execs[i])))
        << "execution " << i;
  }
}

// Attaching a pool to the centralized sink must never change the
// occurrence stream — the work threshold decides cost, aggregate_parallel
// guarantees content. Run the same experiment with and without the pool
// and require identical occurrence records.
TEST(ParallelReplayTest, SinkThreadPoolDoesNotChangeOccurrences) {
  parallel::ThreadPool pool(2);
  auto cfg = gossip_case(31, runner::DetectorKind::kCentralized);
  const auto serial = runner::run_experiment(cfg);
  cfg.aggregate_pool = &pool;
  const auto parallel_run = runner::run_experiment(cfg);
  ASSERT_EQ(parallel_run.occurrences.size(), serial.occurrences.size());
  for (std::size_t i = 0; i < serial.occurrences.size(); ++i) {
    expect_identical(parallel_run.occurrences[i].aggregate,
                     serial.occurrences[i].aggregate);
    EXPECT_EQ(parallel_run.occurrences[i].index, serial.occurrences[i].index);
    EXPECT_EQ(parallel_run.occurrences[i].global,
              serial.occurrences[i].global);
  }
  EXPECT_EQ(parallel_run.global_count, serial.global_count);
}

}  // namespace
}  // namespace hpd
