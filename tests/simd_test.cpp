// Differential property suite for the SIMD kernel layer (vc/simd.hpp).
//
// Every compiled-in backend (portable always; AVX2/NEON when the host
// supports them) is swept against the frozen seed implementations in
// tests/reference/ over random clocks at the boundary lengths where lane
// tails and the inline/heap storage seam live: n in {1, 15, 16, 17, 31,
// 32, 33, 255, 4096}. A divergence of one bit on one lane fails here
// before it can corrupt a detection run. The suite also pins the dispatch
// contract: dispatch_for_test() resolves override names without touching
// the cached table, and active_kernel() honors HPD_SIMD — CMake registers
// this binary a second time with HPD_SIMD=portable so the whole sweep
// also runs through the forced-portable path.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "reference/vector_clock.hpp"
#include "vc/simd.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {
namespace {

// Lane-tail and storage-seam boundary lengths (kInlineCapacity = 16, AVX2
// block = 8 lanes, NEON block = 4 lanes, portable block = 8).
constexpr std::size_t kLens[] = {1, 15, 16, 17, 31, 32, 33, 255, 4096};

std::vector<ClockValue> random_vec(Rng& rng, std::size_t n,
                                   ClockValue max_value) {
  std::vector<ClockValue> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<ClockValue>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_value)));
  }
  return v;
}

reference::VectorClock ref_clock(const std::vector<ClockValue>& v) {
  reference::VectorClock out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i];
  }
  return out;
}

std::vector<const vc_simd::Kernels*> compiled_backends() {
  std::vector<const vc_simd::Kernels*> out{&vc_simd::portable_kernels()};
  if (const vc_simd::Kernels* k = vc_simd::avx2_kernels()) {
    out.push_back(k);
  }
  if (const vc_simd::Kernels* k = vc_simd::neon_kernels()) {
    out.push_back(k);
  }
  return out;
}

unsigned ref_order_flags(const reference::VectorClock& a,
                         const reference::VectorClock& b) {
  switch (reference::compare(a, b)) {
    case reference::Ordering::kEqual:
      return 0;
    case reference::Ordering::kBefore:
      return vc_simd::kSomeLess;
    case reference::Ordering::kAfter:
      return vc_simd::kSomeGreater;
    case reference::Ordering::kConcurrent:
      return vc_simd::kSomeLess | vc_simd::kSomeGreater;
  }
  return 0;
}

TEST(SimdKernelTest, BackendsMatchFrozenReferenceAtBoundaryLengths) {
  Rng rng(20260809);
  const auto backends = compiled_backends();
  ASSERT_FALSE(backends.empty());
  for (const std::size_t n : kLens) {
    const int iters = n >= 255 ? 25 : 400;
    for (int iter = 0; iter < iters; ++iter) {
      // Small component ranges so ties, dominated pairs, and equal pairs
      // all actually occur; occasionally force exact equality.
      const auto max_value =
          static_cast<ClockValue>(1 + rng.uniform_index(4) * 40);
      const std::vector<ClockValue> a = random_vec(rng, n, max_value);
      const std::vector<ClockValue> b =
          rng.uniform_int(0, 4) == 0 ? a : random_vec(rng, n, max_value);
      const reference::VectorClock ra = ref_clock(a);
      const reference::VectorClock rb = ref_clock(b);
      const reference::VectorClock rmx = reference::component_max(ra, rb);
      const reference::VectorClock rmn = reference::component_min(ra, rb);
      const unsigned rflags = ref_order_flags(ra, rb);
      for (const vc_simd::Kernels* k : backends) {
        SCOPED_TRACE(std::string(k->name) + " n=" + std::to_string(n));
        std::vector<ClockValue> mx(n), mn(n);
        k->join(mx.data(), a.data(), b.data(), n);
        k->meet(mn.data(), a.data(), b.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(mx[i], rmx[i]);
          ASSERT_EQ(mn[i], rmn[i]);
        }
        // Fused aggregation step: lo/hi accumulate in place.
        std::vector<ClockValue> lo = a;
        std::vector<ClockValue> hi = a;
        k->meet_join(lo.data(), hi.data(), b.data(), b.data(), n);
        EXPECT_EQ(lo, mx);
        EXPECT_EQ(hi, mn);
        EXPECT_EQ(k->order_flags(a.data(), b.data(), n), rflags);
        EXPECT_EQ(k->leq(a.data(), b.data(), n), reference::vc_leq(ra, rb));
        EXPECT_EQ(k->leq(b.data(), a.data(), n), reference::vc_leq(rb, ra));
        EXPECT_EQ(k->less(a.data(), b.data(), n), reference::vc_less(ra, rb));
        EXPECT_EQ(k->less(b.data(), a.data(), n), reference::vc_less(rb, ra));
      }
    }
  }
}

// The fan-in kernel must equal a sequential fold of the two-input kernel
// for any input count, including counts that cross the aggregate() pointer
// group size (32).
TEST(SimdKernelTest, MeetJoinManyEqualsSequentialFold) {
  Rng rng(20260812);
  const auto backends = compiled_backends();
  const std::size_t counts[] = {1, 2, 7, 31, 32, 33, 70};
  for (const std::size_t n : kLens) {
    for (const std::size_t count : counts) {
      if (n >= 255 && count > 7) {
        continue;  // keep the sweep fast; wide x deep adds no new seams
      }
      std::vector<std::vector<ClockValue>> ls;
      std::vector<std::vector<ClockValue>> hs;
      std::vector<const ClockValue*> qls;
      std::vector<const ClockValue*> qhs;
      for (std::size_t k = 0; k < count; ++k) {
        ls.push_back(random_vec(rng, n, 90));
        hs.push_back(random_vec(rng, n, 90));
        qls.push_back(ls.back().data());
        qhs.push_back(hs.back().data());
      }
      const std::vector<ClockValue> lo0 = random_vec(rng, n, 90);
      const std::vector<ClockValue> hi0 = random_vec(rng, n, 90);
      for (const vc_simd::Kernels* k : backends) {
        SCOPED_TRACE(std::string(k->name) + " n=" + std::to_string(n) +
                     " count=" + std::to_string(count));
        std::vector<ClockValue> want_lo = lo0;
        std::vector<ClockValue> want_hi = hi0;
        for (std::size_t j = 0; j < count; ++j) {
          k->meet_join(want_lo.data(), want_hi.data(), qls[j], qhs[j], n);
        }
        std::vector<ClockValue> lo = lo0;
        std::vector<ClockValue> hi = hi0;
        k->meet_join_many(lo.data(), hi.data(), qls.data(), qhs.data(), count,
                          n);
        EXPECT_EQ(lo, want_lo);
        EXPECT_EQ(hi, want_hi);
      }
    }
  }
}

TEST(SimdKernelTest, JoinAndMeetTolerateDstAliasingAnInput) {
  Rng rng(7);
  const auto backends = compiled_backends();
  for (const std::size_t n : kLens) {
    const std::vector<ClockValue> a = random_vec(rng, n, 100);
    const std::vector<ClockValue> b = random_vec(rng, n, 100);
    for (const vc_simd::Kernels* k : backends) {
      SCOPED_TRACE(std::string(k->name) + " n=" + std::to_string(n));
      std::vector<ClockValue> want_mx(n), want_mn(n);
      k->join(want_mx.data(), a.data(), b.data(), n);
      k->meet(want_mn.data(), a.data(), b.data(), n);
      std::vector<ClockValue> x = a;
      k->join(x.data(), x.data(), b.data(), n);  // dst == a
      EXPECT_EQ(x, want_mx);
      x = b;
      k->join(x.data(), a.data(), x.data(), n);  // dst == b
      EXPECT_EQ(x, want_mx);
      x = a;
      k->meet(x.data(), x.data(), b.data(), n);
      EXPECT_EQ(x, want_mn);
    }
  }
}

// The VectorClock wrappers route through the dispatched table above the
// inline capacity — run them against the reference at heap lengths so the
// seam (and whatever backend this host dispatches to) is covered end to
// end, not just at the raw-kernel layer.
TEST(SimdVectorClockTest, WrappersMatchReferenceAtHeapLengths) {
  Rng rng(20260810);
  for (const std::size_t n : {std::size_t{17}, std::size_t{33},
                              std::size_t{255}, std::size_t{4096}}) {
    for (int iter = 0; iter < 50; ++iter) {
      const auto max_value =
          static_cast<ClockValue>(1 + rng.uniform_index(4) * 40);
      const std::vector<ClockValue> av = random_vec(rng, n, max_value);
      const std::vector<ClockValue> bv =
          rng.uniform_int(0, 4) == 0 ? av : random_vec(rng, n, max_value);
      VectorClock a(n), b(n);
      std::memcpy(a.data(), av.data(), n * sizeof(ClockValue));
      std::memcpy(b.data(), bv.data(), n * sizeof(ClockValue));
      const reference::VectorClock ra = ref_clock(av);
      const reference::VectorClock rb = ref_clock(bv);
      SCOPED_TRACE("n=" + std::to_string(n));
      EXPECT_EQ(static_cast<int>(compare(a, b)),
                static_cast<int>(reference::compare(ra, rb)));
      EXPECT_EQ(vc_less(a, b), reference::vc_less(ra, rb));
      EXPECT_EQ(vc_leq(a, b), reference::vc_leq(ra, rb));
      EXPECT_EQ(vc_concurrent(a, b), reference::vc_concurrent(ra, rb));
      const VectorClock mx = component_max(a, b);
      const VectorClock mn = component_min(a, b);
      const reference::VectorClock rmx = reference::component_max(ra, rb);
      const reference::VectorClock rmn = reference::component_min(ra, rb);
      VectorClock merged = a;
      merged.merge(b);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(mx[i], rmx[i]);
        ASSERT_EQ(mn[i], rmn[i]);
        ASSERT_EQ(merged[i], rmx[i]);
      }
    }
  }
}

TEST(SimdDispatchTest, TestHookResolvesOverridesWithoutTouchingCache) {
  using vc_simd::dispatch_for_test;
  EXPECT_STREQ(dispatch_for_test("portable").name, "portable");
  // Unknown names degrade to portable rather than crashing a run that set
  // a typo'd HPD_SIMD.
  EXPECT_STREQ(dispatch_for_test("bogus").name, "portable");
  EXPECT_STREQ(dispatch_for_test("").name,
               dispatch_for_test(nullptr).name);
  EXPECT_STREQ(dispatch_for_test("avx2").name,
               vc_simd::avx2_kernels() != nullptr ? "avx2" : "portable");
  EXPECT_STREQ(dispatch_for_test("neon").name,
               vc_simd::neon_kernels() != nullptr ? "neon" : "portable");
  // nullptr = probe order: avx2, then neon, then portable.
  const char* best = vc_simd::avx2_kernels() != nullptr ? "avx2"
                     : vc_simd::neon_kernels() != nullptr ? "neon"
                                                          : "portable";
  EXPECT_STREQ(dispatch_for_test(nullptr).name, best);
}

TEST(SimdDispatchTest, ActiveKernelHonorsEnvOverride) {
  // Under the forced-portable ctest registration HPD_SIMD=portable is in
  // the environment; expected resolves exactly like the dispatcher.
  const char* env = std::getenv("HPD_SIMD");  // NOLINT(concurrency-mt-unsafe)
  EXPECT_STREQ(vc_simd::active_kernel(),
               vc_simd::dispatch_for_test(env).name);
  // The cached table is one of the compiled backends, whatever happens.
  bool known = false;
  for (const vc_simd::Kernels* k : compiled_backends()) {
    known = known || std::strcmp(k->name, vc_simd::active_kernel()) == 0;
  }
  EXPECT_TRUE(known);
}

}  // namespace
}  // namespace hpd
