#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ft/heartbeat.hpp"
#include "ft/reattach.hpp"

namespace hpd::ft {
namespace {

// ---- HeartbeatAgent --------------------------------------------------------

struct HbHarness {
  HbHarness(ProcessId self, const HeartbeatConfig& cfg) {
    HeartbeatAgent::Hooks hooks;
    hooks.send = [this](ProcessId dst, const proto::HeartbeatPayload& p) {
      sent.emplace_back(dst, p);
    };
    hooks.on_failed = [this](ProcessId nbr, bool was_parent) {
      failures.emplace_back(nbr, was_parent);
    };
    hooks.now = [this] { return now; };
    agent.emplace(self, cfg, std::move(hooks));
  }
  std::vector<std::pair<ProcessId, proto::HeartbeatPayload>> sent;
  std::vector<std::pair<ProcessId, bool>> failures;
  SimTime now = 0.0;
  std::optional<HeartbeatAgent> agent;
};

TEST(HeartbeatTest, RootAdvertisesItself) {
  HbHarness h(0, {});
  h.agent->init_as_root();
  EXPECT_TRUE(h.agent->attached());
  EXPECT_TRUE(h.agent->is_root());
  EXPECT_EQ(h.agent->depth(), 0);
  h.agent->add_child(1);
  h.agent->on_tick();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].first, 1);
  EXPECT_TRUE(h.sent[0].second.attached);
  EXPECT_EQ(h.sent[0].second.root_path, (std::vector<ProcessId>{0}));
}

TEST(HeartbeatTest, BeatsGoToParentAndChildren) {
  HbHarness h(2, {});
  h.agent->init_with_parent(1, {2, 1, 0});
  h.agent->add_child(5);
  h.agent->add_child(6);
  h.agent->on_tick();
  ASSERT_EQ(h.sent.size(), 3u);
  EXPECT_EQ(h.sent[0].first, 1);  // parent first
  EXPECT_EQ(h.agent->depth(), 2);
}

TEST(HeartbeatTest, ParentTimeoutDetected) {
  HeartbeatConfig cfg;
  cfg.period = 1.0;
  cfg.timeout_multiplier = 3.0;
  HbHarness h(2, cfg);
  h.agent->init_with_parent(1, {2, 1, 0});
  h.agent->add_child(5);
  // Child keeps beating; the parent goes silent.
  for (int tick = 1; tick <= 5; ++tick) {
    h.now = tick;
    h.agent->on_heartbeat(5, proto::HeartbeatPayload{true, {5, 2, 1, 0}});
    h.agent->on_tick();
  }
  ASSERT_EQ(h.failures.size(), 1u);
  EXPECT_EQ(h.failures[0], (std::pair<ProcessId, bool>{1, true}));
  EXPECT_FALSE(h.agent->attached());
  EXPECT_EQ(h.agent->parent(), kNoProcess);
}

TEST(HeartbeatTest, ChildTimeoutDetected) {
  HeartbeatConfig cfg;
  cfg.period = 1.0;
  cfg.timeout_multiplier = 3.0;
  HbHarness h(2, cfg);
  h.agent->init_with_parent(1, {2, 1, 0});
  h.agent->add_child(5);
  for (int tick = 1; tick <= 5; ++tick) {
    h.now = tick;
    h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 0}});
    h.agent->on_tick();
  }
  ASSERT_EQ(h.failures.size(), 1u);
  EXPECT_EQ(h.failures[0], (std::pair<ProcessId, bool>{5, false}));
  EXPECT_TRUE(h.agent->attached());  // parent beats kept us attached
}

TEST(HeartbeatTest, PathRefreshFromParent) {
  HbHarness h(2, {});
  h.agent->init_with_parent(1, {2, 1, 0});
  h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 7}});
  EXPECT_EQ(h.agent->root_path(), (std::vector<ProcessId>{2, 1, 7}));
  EXPECT_EQ(h.agent->depth(), 2);
}

TEST(HeartbeatTest, DetachedParentPropagates) {
  HbHarness h(2, {});
  h.agent->init_with_parent(1, {2, 1, 0});
  h.agent->on_heartbeat(1, proto::HeartbeatPayload{false, {}});
  EXPECT_FALSE(h.agent->attached());
  // A later attached beat restores the path.
  h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 3}});
  EXPECT_TRUE(h.agent->attached());
}

TEST(HeartbeatTest, TransientLoopingPathIgnored) {
  HbHarness h(2, {});
  h.agent->init_with_parent(1, {2, 1, 0});
  // A (stale) parent path claiming to run through us must not be adopted;
  // one or two such beats are normal mid-repair staleness.
  h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 2, 0}});
  EXPECT_EQ(h.agent->root_path(), (std::vector<ProcessId>{2, 1, 0}));
  EXPECT_TRUE(h.failures.empty());
  // A clean beat resets the streak.
  h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 0}});
  h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 2, 0}});
  h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 2, 0}});
  EXPECT_TRUE(h.failures.empty());
}

TEST(HeartbeatTest, PersistentLoopBreaksTheCycle) {
  HbHarness h(2, {});
  h.agent->init_with_parent(1, {2, 1, 0});
  // Three consecutive looping beats: stale repair data actually formed a
  // cycle; the agent must break it by declaring the parent failed.
  for (int k = 0; k < 3; ++k) {
    h.agent->on_heartbeat(1, proto::HeartbeatPayload{true, {1, 2, 1, 0}});
  }
  ASSERT_EQ(h.failures.size(), 1u);
  EXPECT_EQ(h.failures[0], (std::pair<ProcessId, bool>{1, true}));
  EXPECT_EQ(h.agent->parent(), kNoProcess);
  EXPECT_FALSE(h.agent->attached());
}

TEST(HeartbeatTest, UntrackedSenderIgnored) {
  HbHarness h(2, {});
  h.agent->init_with_parent(1, {2, 1, 0});
  h.agent->on_heartbeat(9, proto::HeartbeatPayload{true, {9, 0}});
  EXPECT_EQ(h.agent->root_path(), (std::vector<ProcessId>{2, 1, 0}));
}

TEST(HeartbeatTest, SetParentAndBecomeRoot) {
  HbHarness h(2, {});
  h.agent->init_with_parent(1, {2, 1, 0});
  h.agent->clear_parent();
  EXPECT_FALSE(h.agent->attached());
  h.agent->set_parent(4);
  EXPECT_TRUE(h.agent->attached());
  EXPECT_EQ(h.agent->parent(), 4);
  EXPECT_EQ(h.agent->root_path(), (std::vector<ProcessId>{2, 4}));
  h.agent->become_root();
  EXPECT_TRUE(h.agent->is_root());
  EXPECT_EQ(h.agent->depth(), 0);
}

// ---- ReattachProtocol --------------------------------------------------------

struct RaHarness {
  explicit RaHarness(ProcessId self, ReattachConfig cfg = {}) {
    ReattachProtocol::Hooks hooks;
    hooks.broadcast_probe = [this] { ++probes; };
    hooks.send_attach_req = [this](ProcessId dst) { attach_to.push_back(dst); };
    hooks.set_timer = [this](int tag, SimTime delay) {
      timers.emplace_back(tag, delay);
    };
    hooks.on_attached = [this](ProcessId p) { attached_to = p; };
    hooks.on_search_exhausted = [this] { ++exhausted; };
    proto.emplace(self, cfg, std::move(hooks));
  }

  /// Fire the most recently set timer.
  void fire_timer() {
    ASSERT_FALSE(timers.empty());
    const int tag = timers.back().first;
    timers.pop_back();
    proto->on_timer(tag);
  }

  int probes = 0;
  int exhausted = 0;
  std::vector<ProcessId> attach_to;
  std::vector<std::pair<int, SimTime>> timers;
  ProcessId attached_to = kNoProcess;
  std::optional<ReattachProtocol> proto;
};

proto::ProbeAckPayload ack(bool attached, std::vector<ProcessId> path) {
  proto::ProbeAckPayload p;
  p.attached = attached;
  p.root_path = std::move(path);
  return p;
}

TEST(ReattachTest, HappyPathAttachesToShallowestCandidate) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  EXPECT_EQ(h.probes, 1);
  EXPECT_TRUE(h.proto->searching());
  h.proto->on_probe_ack(4, ack(true, {4, 1, 0}));  // depth 2
  h.proto->on_probe_ack(3, ack(true, {3, 0}));     // depth 1 — better
  h.fire_timer();                                   // probe window expires
  ASSERT_EQ(h.attach_to.size(), 1u);
  EXPECT_EQ(h.attach_to[0], 3);
  h.proto->on_attach_ack(3, proto::AttachAckPayload{true});
  EXPECT_EQ(h.attached_to, 3);
  EXPECT_EQ(h.proto->state(), ReattachProtocol::State::kAttached);
  EXPECT_EQ(h.exhausted, 0);
}

TEST(ReattachTest, DescendantResponsesAreRejected) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  // The only responder's root path runs through us: adopting would loop.
  h.proto->on_probe_ack(4, ack(true, {4, 9, 0}));
  h.fire_timer();
  EXPECT_TRUE(h.attach_to.empty());
  EXPECT_EQ(h.exhausted, 0);  // first failed round: retry scheduled
  EXPECT_EQ(h.proto->retries(), 1);
}

TEST(ReattachTest, OnlyDescendantsTwiceExhaustsSearch) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  h.proto->on_probe_ack(4, ack(true, {4, 9, 0}));
  h.fire_timer();  // round 1: retry
  h.fire_timer();  // retry timer: new probe round
  EXPECT_EQ(h.probes, 2);
  h.proto->on_probe_ack(4, ack(true, {4, 9, 0}));
  h.fire_timer();  // round 2: still nothing viable
  EXPECT_EQ(h.exhausted, 1);
  EXPECT_EQ(h.proto->state(), ReattachProtocol::State::kIdle);
}

TEST(ReattachTest, DelegateModeRejectsOrphanSubtreePaths) {
  RaHarness h(5);
  h.proto->begin(ReattachProtocol::Mode::kDelegate, 9);
  EXPECT_EQ(h.proto->mode(), ReattachProtocol::Mode::kDelegate);
  // A responder whose path passes through the orphan 9 must be rejected
  // even though it does not pass through us (node 5).
  h.proto->on_probe_ack(4, ack(true, {4, 9, 0}));
  // A clean outside candidate is accepted.
  h.proto->on_probe_ack(7, ack(true, {7, 2, 0}));
  h.fire_timer();
  ASSERT_EQ(h.attach_to.size(), 1u);
  EXPECT_EQ(h.attach_to[0], 7);
}

TEST(ReattachTest, DelegateModeExhaustsQuicklyIgnoringOrphans) {
  RaHarness h(5);
  h.proto->begin(ReattachProtocol::Mode::kDelegate, 9);
  h.proto->on_probe_ack(2, ack(false, {}));  // smaller-id orphan nearby
  h.fire_timer();  // round 1 fails (no waiting in delegate mode)
  EXPECT_EQ(h.exhausted, 0);
  h.fire_timer();  // retry -> round 2
  h.fire_timer();  // round 2 fails -> exhausted
  EXPECT_EQ(h.exhausted, 1);
}

TEST(ReattachTest, WaitsForSmallerIdOrphan) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  for (int round = 1; round <= 3; ++round) {
    h.proto->on_probe_ack(2, ack(false, {}));  // smaller-id orphan nearby
    h.fire_timer();                             // window -> retry
    EXPECT_EQ(h.exhausted, 0) << "round " << round;
    h.fire_timer();                             // retry -> new probe round
  }
  // Once the smaller orphan has become root and answers attached, we join.
  h.proto->on_probe_ack(2, ack(true, {2}));
  h.fire_timer();
  EXPECT_EQ(h.attach_to.back(), 2);
}

TEST(ReattachTest, SmallerOrphanEventuallyGivesUpViaMaxRetries) {
  ReattachConfig cfg;
  cfg.max_retries = 3;
  RaHarness h(9, cfg);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  for (int round = 1; round <= 2; ++round) {
    h.proto->on_probe_ack(2, ack(false, {}));
    h.fire_timer();
    h.fire_timer();
  }
  h.proto->on_probe_ack(2, ack(false, {}));
  h.fire_timer();  // third failure hits max_retries
  EXPECT_EQ(h.exhausted, 1);
}

TEST(ReattachTest, RefusedAttachRetries) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  h.proto->on_probe_ack(3, ack(true, {3, 0}));
  h.fire_timer();
  h.proto->on_attach_ack(3, proto::AttachAckPayload{false});
  EXPECT_EQ(h.proto->state(), ReattachProtocol::State::kProbing);
  EXPECT_EQ(h.attached_to, kNoProcess);
}

TEST(ReattachTest, AttachDeadlineFallsBackToProbing) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  h.proto->on_probe_ack(3, ack(true, {3, 0}));
  h.fire_timer();  // window -> attach sent, deadline timer armed
  EXPECT_EQ(h.proto->state(), ReattachProtocol::State::kAttaching);
  h.fire_timer();  // deadline expires: prospective parent died
  EXPECT_EQ(h.probes, 2);  // re-probing
}

TEST(ReattachTest, AckFromWrongSenderIgnored) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  h.proto->on_probe_ack(3, ack(true, {3, 0}));
  h.fire_timer();
  h.proto->on_attach_ack(4, proto::AttachAckPayload{true});  // not pending
  EXPECT_EQ(h.attached_to, kNoProcess);
  h.proto->on_attach_ack(3, proto::AttachAckPayload{true});
  EXPECT_EQ(h.attached_to, 3);
}

TEST(ReattachTest, SilenceExhaustsAfterTwoRounds) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  h.fire_timer();  // round 1: no acks -> retry
  EXPECT_EQ(h.exhausted, 0);
  h.fire_timer();  // retry -> probe round 2
  h.fire_timer();  // round 2: silence again -> search exhausted
  EXPECT_EQ(h.exhausted, 1);
}

TEST(ReattachTest, BeginWhileSearchingIsNoop) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  EXPECT_EQ(h.probes, 1);
}

TEST(ReattachTest, CanRestartAfterExhaustion) {
  RaHarness h(9);
  h.proto->begin(ReattachProtocol::Mode::kOrphan, 9);
  h.fire_timer();
  h.fire_timer();
  h.fire_timer();
  ASSERT_EQ(h.exhausted, 1);
  // A later begin (e.g. a delegated search) starts fresh.
  h.proto->begin(ReattachProtocol::Mode::kDelegate, 4);
  EXPECT_TRUE(h.proto->searching());
  EXPECT_EQ(h.proto->retries(), 0);
}

}  // namespace
}  // namespace hpd::ft
