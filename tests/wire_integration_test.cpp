// End-to-end wire-mode tests: every protocol message serialized to bytes
// and decoded at the receiver, across full simulations (including the
// failure-handling message types), must be behaviourally invisible.
#include <gtest/gtest.h>

#include "proto/messages.hpp"
#include "detect/offline/replay.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"

namespace hpd::runner {
namespace {

ExperimentConfig base_pulse(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.tree = net::SpanningTree::balanced_dary(2, 4);
  cfg.topology = net::tree_topology(cfg.tree);
  trace::PulseConfig pc;
  pc.rounds = 12;
  pc.period = 70.0;
  pc.participation = 0.9;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 950.0;
  cfg.drain = 120.0;
  cfg.seed = seed;
  cfg.occurrence_solutions = false;
  return cfg;
}

TEST(WireIntegrationTest, EncodingIsBehaviourallyInvisible) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto plain = base_pulse(seed);
    auto wired = base_pulse(seed);
    wired.wire_encoding = true;
    const auto a = run_experiment(plain);
    const auto b = run_experiment(wired);
    EXPECT_EQ(a.global_count, b.global_count);
    EXPECT_EQ(a.metrics.total_detections(), b.metrics.total_detections());
    EXPECT_EQ(a.metrics.msgs_total(), b.metrics.msgs_total());
    EXPECT_EQ(a.metrics.wire_words_total(), b.metrics.wire_words_total());
    EXPECT_EQ(a.metrics.wire_bytes_total(), 0u);
    EXPECT_GT(b.metrics.wire_bytes_total(), 0u);
    // Bytes are strictly smaller than the naive 4-bytes-per-word floor
    // (LEB128 clocks on mostly-small counters).
    EXPECT_LT(b.metrics.wire_bytes_total(),
              4 * b.metrics.wire_words_total());
  }
}

TEST(WireIntegrationTest, CentralizedModeAlsoEncodes) {
  auto cfg = base_pulse(4);
  cfg.detector = DetectorKind::kCentralized;
  cfg.wire_encoding = true;
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.global_count, 0u);
  EXPECT_GT(res.metrics.bytes_of_type(proto::kReportCentral), 0u);
}

TEST(WireIntegrationTest, FailureHandlingTrafficSurvivesEncoding) {
  // The grid + crash scenario exercises heartbeat, probe, attach, delegate
  // and flip messages — all byte-encoded here.
  auto make = [](bool wire) {
    ExperimentConfig cfg;
    cfg.topology = net::Topology::grid(3, 3);
    cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
    trace::PulseConfig pc;
    pc.rounds = 10;
    pc.period = 80.0;
    cfg.behavior_factory = [pc](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(pc);
    };
    cfg.horizon = 900.0;
    cfg.drain = 200.0;
    cfg.heartbeats = true;
    cfg.failures.push_back(FailureEvent{200.0, 1});
    cfg.seed = 5;
    cfg.wire_encoding = wire;
    cfg.occurrence_solutions = false;
    return cfg;
  };
  const auto plain = run_experiment(make(false));
  const auto wired = run_experiment(make(true));
  EXPECT_EQ(plain.final_parents, wired.final_parents);
  EXPECT_EQ(plain.global_count, wired.global_count);
  EXPECT_GT(wired.metrics.bytes_of_type(proto::kHeartbeat), 0u);
  EXPECT_GT(wired.metrics.bytes_of_type(proto::kProbeAck), 0u);
}

TEST(WireIntegrationTest, GossipUnderWireMode) {
  ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 300.0;
  g.mean_gap = 3.0;
  g.p_send = 0.5;
  g.p_toggle = 0.3;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = 320.0;
  cfg.drain = 80.0;
  cfg.seed = 8;
  cfg.wire_encoding = true;
  cfg.record_execution = true;
  const auto res = run_experiment(cfg);
  // Still matches the offline reference while running over bytes.
  const auto reference = detect::offline::replay_centralized(res.execution);
  EXPECT_EQ(res.global_count, reference.size());
}

}  // namespace
}  // namespace hpd::runner
