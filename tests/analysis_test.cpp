#include <gtest/gtest.h>

#include "analysis/formulas.hpp"

#include "common/assert.hpp"
#include <sstream>
#include "analysis/execution_stats.hpp"
#include "analysis/fit.hpp"
#include "common/rng.hpp"
#include <cmath>
#include "trace/app_core.hpp"

namespace hpd::analysis {
namespace {

TEST(FormulaTest, HierClosedFormMatchesDirectSum) {
  for (std::size_t d : {2u, 3u, 4u, 5u}) {
    for (std::size_t h : {1u, 2u, 3u, 5u, 8u}) {
      for (double alpha : {0.0, 0.1, 0.45, 0.9, 1.0}) {
        EXPECT_NEAR(hier_messages(d, h, 20, alpha),
                    hier_messages_direct(d, h, 20, alpha),
                    1e-6 * (1.0 + hier_messages_direct(d, h, 20, alpha)))
            << "d=" << d << " h=" << h << " alpha=" << alpha;
      }
    }
  }
}

TEST(FormulaTest, CorrectedCentralClosedFormMatchesDirectSum) {
  for (std::size_t d : {2u, 3u, 4u, 7u}) {
    for (std::size_t h : {1u, 2u, 3u, 5u, 8u, 10u}) {
      EXPECT_NEAR(central_messages(d, h, 20),
                  central_messages_direct(d, h, 20),
                  1e-6 * (1.0 + central_messages_direct(d, h, 20)))
          << "d=" << d << " h=" << h;
    }
  }
}

// Erratum check: the paper's printed Eq. (14) does NOT match its own model
// (the direct sum of Eq. (12)); see analysis/formulas.hpp.
TEST(FormulaTest, PaperEq14DeviatesFromItsModel) {
  // d = 2, h = 3, p = 1: direct sum = 4·2 + 2·1 = 10, printed form = 2.
  EXPECT_DOUBLE_EQ(central_messages_direct(2, 3, 1), 10.0);
  EXPECT_DOUBLE_EQ(central_messages_paper_eq14(2, 3, 1), 2.0);
  EXPECT_DOUBLE_EQ(central_messages(2, 3, 1), 10.0);
  // The relative discrepancy shrinks as h grows (the figures look alike).
  const double direct = central_messages_direct(2, 10, 20);
  const double printed = central_messages_paper_eq14(2, 10, 20);
  EXPECT_LT(std::abs(direct - printed) / direct, 0.01);
}

TEST(FormulaTest, HierMessagesEdgeCases) {
  EXPECT_DOUBLE_EQ(hier_messages(2, 1, 20, 0.5), 0.0);  // single node
  // alpha = 1 uses the continuity limit: p d^{h-1} (h-1).
  EXPECT_DOUBLE_EQ(hier_messages(2, 4, 10, 1.0), 10.0 * 8.0 * 3.0);
  // alpha = 0: only the leaves send; p d^{h-1}.
  EXPECT_DOUBLE_EQ(hier_messages(3, 4, 10, 0.0), 10.0 * 27.0);
}

TEST(FormulaTest, HierBeatsCentralizedForTallTrees) {
  // The paper's headline: for h > 2 the hierarchical algorithm sends fewer
  // (hop-weighted) messages, increasingly so as the network grows.
  for (std::size_t d : {2u, 4u}) {
    for (std::size_t h : {3u, 5u, 8u, 10u}) {
      for (double alpha : {0.1, 0.45}) {
        EXPECT_LT(hier_messages(d, h, 20, alpha),
                  central_messages_direct(d, h, 20))
            << "d=" << d << " h=" << h << " alpha=" << alpha;
      }
    }
  }
}

TEST(FormulaTest, PaperTreeNodes) {
  EXPECT_EQ(paper_tree_nodes(2, 1), 1u);
  EXPECT_EQ(paper_tree_nodes(2, 3), 7u);
  EXPECT_EQ(paper_tree_nodes(2, 4), 15u);
  EXPECT_EQ(paper_tree_nodes(4, 3), 21u);
  EXPECT_EQ(paper_tree_nodes(3, 4), 40u);
}

TEST(FormulaTest, ComplexityModelsOrdering) {
  // Table I: d² p n² < p n³ whenever n > d² (h > 2 in the paper's n = d^h).
  const std::size_t d = 3;
  const std::size_t n = 81;  // d^4 > d²
  const std::size_t p = 20;
  EXPECT_LT(hier_time_model(d, n, p), central_time_model(n, p));
  EXPECT_GT(space_model(n, p), 0.0);
}

TEST(ExecutionStatsTest, CountsEventsMessagesIntervals) {
  trace::AppCore a(0, 2, nullptr);
  trace::AppCore b(1, 2, nullptr);
  a.enable_recording([] { return 0.0; });
  b.enable_recording([] { return 0.0; });
  a.set_predicate(true);                       // event 1 (true)
  const VectorClock st = a.prepare_send(1);    // event 2 (send, true)
  b.receive(0, st);                            // event 1 (recv)
  b.set_predicate(true);                       // event 2 (true)
  b.set_predicate(false);                      // event 3
  a.set_predicate(false);                      // event 3
  trace::ExecutionRecord exec;
  exec.procs = {a.recorded(), b.recorded()};

  const auto stats = compute_stats(exec);
  EXPECT_EQ(stats.total_events, 6u);
  EXPECT_EQ(stats.total_messages, 1u);
  EXPECT_EQ(stats.total_intervals, 2u);
  EXPECT_EQ(stats.max_intervals, 1u);
  EXPECT_EQ(stats.comm[0][1], 1u);
  EXPECT_EQ(stats.comm[1][0], 0u);
  EXPECT_EQ(stats.per_process[0].sends, 1u);
  EXPECT_EQ(stats.per_process[1].receives, 1u);
  EXPECT_DOUBLE_EQ(stats.per_process[0].mean_interval_events, 2.0);
  EXPECT_DOUBLE_EQ(stats.per_process[1].mean_interval_events, 1.0);
  // One cross pair; b's interval starts causally after a's started (via the
  // message) but a never hears back: coexistence yes, overlap no.
  EXPECT_EQ(stats.pairs_total, 1u);
  EXPECT_EQ(stats.pairs_overlap, 0u);
  EXPECT_EQ(stats.pairs_coexist, 1u);
  // Printing shouldn't blow up.
  std::ostringstream os;
  print_stats(os, stats);
  EXPECT_NE(os.str().find("cross-process interval pairs"), std::string::npos);
}

TEST(ExecutionStatsTest, EmptyExecution) {
  trace::ExecutionRecord exec;
  exec.procs.resize(3);
  const auto stats = compute_stats(exec);
  EXPECT_EQ(stats.total_events, 0u);
  EXPECT_EQ(stats.pairs_total, 0u);
  std::ostringstream os;
  print_stats(os, stats);  // no division by zero
}

TEST(PowerFitTest, RecoversExactPowerLaws) {
  std::vector<double> x = {2, 4, 8, 16, 32, 64};
  for (const double k : {0.0, 1.0, 2.0, 3.0}) {
    std::vector<double> y;
    for (const double v : x) {
      y.push_back(5.0 * std::pow(v, k));
    }
    const auto fit = fit_power_law(x, y);
    EXPECT_NEAR(fit.exponent, k, 1e-9);
    EXPECT_NEAR(fit.coefficient, 5.0, 1e-6);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  }
}

TEST(PowerFitTest, NoisyDataStillClose) {
  Rng rng(77);
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 4; v <= 4096; v *= 2) {
    x.push_back(v);
    y.push_back(3.0 * v * v * rng.uniform_real(0.9, 1.1));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(PowerFitTest, RejectsBadInput) {
  EXPECT_THROW(fit_power_law({1.0}, {1.0}), AssertionError);
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {0.0, 1.0}), AssertionError);
  EXPECT_THROW(fit_power_law({3.0, 3.0}, {1.0, 2.0}), AssertionError);
}

TEST(FormulaTest, BadParamsRejected) {
  EXPECT_THROW(hier_messages(0, 3, 20, 0.5), AssertionError);
  EXPECT_THROW(hier_messages(2, 3, 20, 1.5), AssertionError);
  EXPECT_THROW(central_messages(1, 3, 20), AssertionError);
}

}  // namespace
}  // namespace hpd::analysis
