// Chaos hardening of the live transport: frame-level fault injection under
// the reliable session layer, checked end-to-end.
//
// The contract under test (see rt/live_transport.hpp): chaos may drop,
// duplicate, corrupt, delay or reset DATA frames, yet every accepted message
// is either delivered exactly once or *surfaced* through
// transport::Node::on_peer_unreachable and the surfaced_losses counter —
// never silently lost. Concretely:
//
//   delivered + surfaced_losses >= reliable_sent      (no silent loss)
//   delivered <= reliable_sent                        (unique delivery)
//
// with exact equality (delivered == sent, surfaced == 0) on failure-free
// runs that stop injecting before the drain so retransmission can flush.
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mc/mc_case.hpp"
#include "mc/oracles.hpp"
#include "metrics/counters.hpp"
#include "rt/chaos.hpp"
#include "rt/live_runner.hpp"
#include "rt/live_transport.hpp"
#include "runner/experiment.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"

namespace hpd {
namespace {

/// Minimal programmable node: behaviour installed as lambdas, state read
/// only after LiveTransport::stop() has joined every loop thread.
class ChaosNode : public transport::Node {
 public:
  void on_start() override {
    if (start_fn) {
      start_fn(*this);
    }
  }
  void on_message(const transport::Message& msg) override {
    received.push_back(std::any_cast<std::vector<std::uint8_t>>(msg.payload));
  }
  void on_timer(int tag) override {
    if (timer_fn) {
      timer_fn(*this, tag);
    }
  }
  void on_peer_unreachable(ProcessId peer) override {
    (void)peer;
    ++unreachable_upcalls;
  }

  void send_to(ProcessId dst, int type, std::vector<std::uint8_t> bytes) {
    transport::Message m;
    m.src = self;
    m.dst = dst;
    m.type = type;
    m.wire_words = bytes.size();
    m.payload = std::move(bytes);
    net->send(std::move(m));
  }

  ProcessId self = kNoProcess;
  transport::Endpoint* net = nullptr;
  std::function<void(ChaosNode&)> start_fn;
  std::function<void(ChaosNode&, int)> timer_fn;
  std::vector<std::vector<std::uint8_t>> received;
  int unreachable_upcalls = 0;
};

void attach(rt::LiveTransport& net, std::vector<ChaosNode>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto id = static_cast<ProcessId>(i);
    nodes[i].self = id;
    nodes[i].net = &net.endpoint(id);
    net.register_node(id, nodes[i]);
  }
}

/// All-to-all burst under drop + duplicate chaos: every message must arrive
/// exactly once, recovered by retransmission, with duplicates absorbed by
/// the receive window — and the books must balance exactly.
TEST(LiveChaos, ReliableDeliveryUnderDropAndDup) {
  constexpr std::size_t kN = 4;
  constexpr int kPerPeer = 50;
  std::vector<ChaosNode> nodes(kN);
  for (auto& node : nodes) {
    node.start_fn = [](ChaosNode& n) {
      for (ProcessId d = 0; d < static_cast<ProcessId>(kN); ++d) {
        if (d == n.self) {
          continue;
        }
        for (int k = 0; k < kPerPeer; ++k) {
          n.send_to(d, 2,
                    {static_cast<std::uint8_t>(n.self),
                     static_cast<std::uint8_t>(k)});
        }
      }
    };
  }

  rt::LiveConfig cfg;
  cfg.time_scale = 0.005;
  cfg.chaos.drop_p = 0.20;
  cfg.chaos.dup_p = 0.10;
  cfg.chaos.until = 20.0;  // stop injecting so retransmission can flush
  cfg.chaos.seed = 7;
  rt::LiveTransport net(kN, cfg);
  attach(net, nodes);
  net.start();
  net.sleep_until(80.0);
  net.stop();

  const TransportCounters tc = net.stats();
  const auto expected_sent =
      static_cast<std::uint64_t>(kN * (kN - 1) * kPerPeer);
  EXPECT_EQ(tc.reliable_sent, expected_sent);
  EXPECT_EQ(tc.msgs_delivered, expected_sent);
  EXPECT_EQ(tc.surfaced_losses, 0u);
  EXPECT_GT(tc.retransmits, 0u);
  EXPECT_GT(tc.dups_suppressed, 0u);
  EXPECT_GT(tc.chaos_events, 0u);
  EXPECT_FALSE(net.chaos_events().empty());

  // Each node holds exactly one copy of each peer's kPerPeer payloads.
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(nodes[i].received.size(),
              static_cast<std::size_t>((kN - 1) * kPerPeer))
        << "node " << i;
    auto got = nodes[i].received;
    std::sort(got.begin(), got.end());
    EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
        << "duplicate delivery at node " << i;
  }
}

/// Regression: a failed dial starts a peer-down cooldown; the cooldown must
/// expire the moment the peer is observed alive again (the revive()
/// broadcast), not after the wall-clock cooldown lapses. With a 60 s
/// cooldown and a sub-second test window, post-revive delivery only happens
/// when the revive observation clears it.
TEST(LiveChaos, CooldownExpiresOnRevive) {
  constexpr SimTime kCrashAt = 10.0;
  constexpr SimTime kReviveAt = 20.0;
  constexpr SimTime kEndAt = 50.0;

  std::vector<ChaosNode> nodes(2);
  nodes[0].start_fn = [](ChaosNode& n) {
    n.net->set_timer(n.self, 1, 1.0, /*periodic=*/true, /*period=*/1.0);
  };
  nodes[0].timer_fn = [count = 0](ChaosNode& n, int) mutable {
    ++count;
    n.send_to(1, 5, {static_cast<std::uint8_t>(count)});
  };

  rt::LiveConfig cfg;
  cfg.time_scale = 0.005;
  cfg.peer_down_cooldown = std::chrono::milliseconds(60000);
  rt::LiveTransport net(2, cfg);
  attach(net, nodes);
  net.start();
  net.sleep_until(kCrashAt);
  net.crash(1);
  net.sleep_until(kReviveAt);
  net.revive(1);
  net.sleep_until(kEndAt);
  net.stop();

  // Deliveries resumed well after the revive: sends from the last stretch
  // of the run (numbered beyond the revive instant) made it through, which
  // is impossible while the 60 s cooldown is still blocking the re-dial.
  int max_payload = 0;
  for (const auto& p : nodes[1].received) {
    ASSERT_EQ(p.size(), 1u);
    max_payload = std::max(max_payload, static_cast<int>(p[0]));
  }
  EXPECT_GE(max_payload, static_cast<int>(kReviveAt) + 10);

  // Messages queued while node 1 was dead were addressed to its previous
  // incarnation: the revive broadcast purges them as surfaced losses and
  // reports the peer unreachable — they are not silently dropped and not
  // delivered across the epoch boundary.
  const TransportCounters tc = net.stats();
  EXPECT_GT(tc.surfaced_losses, 0u);
  EXPECT_GT(nodes[0].unreachable_upcalls, 0);
  EXPECT_GE(tc.msgs_delivered + tc.surfaced_losses, tc.reliable_sent);
  EXPECT_LE(tc.msgs_delivered, tc.reliable_sent);
}

/// A corrupted frame poisons the receiver's FrameReader (wire/frame): the
/// connection is torn down, the counters record it, and the session layer
/// resynchronizes over a fresh connection — every message still arrives
/// exactly once.
TEST(LiveChaos, CorruptStreamResyncsByReconnect) {
  constexpr int kCount = 100;
  std::vector<ChaosNode> nodes(2);
  nodes[0].start_fn = [](ChaosNode& n) {
    for (int k = 0; k < kCount; ++k) {
      n.send_to(1, 3,
                {static_cast<std::uint8_t>(k), static_cast<std::uint8_t>(7)});
    }
  };

  rt::LiveConfig cfg;
  cfg.time_scale = 0.005;
  cfg.peer_down_cooldown = std::chrono::milliseconds(10);
  cfg.chaos.corrupt_p = 0.30;
  cfg.chaos.until = 20.0;
  cfg.chaos.seed = 11;
  rt::LiveTransport net(2, cfg);
  attach(net, nodes);
  net.start();
  net.sleep_until(80.0);
  net.stop();

  const TransportCounters tc = net.stats();
  EXPECT_EQ(tc.reliable_sent, static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(tc.msgs_delivered, static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(tc.surfaced_losses, 0u);
  EXPECT_GT(tc.frame_errors, 0u);
  EXPECT_GT(tc.conn_resets, 0u);
  ASSERT_EQ(nodes[1].received.size(), static_cast<std::size_t>(kCount));
  auto got = nodes[1].received;
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
}

std::string join(const std::vector<std::string>& v) {
  std::string s;
  for (const auto& x : v) {
    s += x;
    s += '\n';
  }
  return s;
}

/// Failure-free full protocol stack under chaos: the strict per-node
/// differential against the offline replay must still hold — the session
/// layer makes frame-level faults invisible to the detection algorithm.
TEST(LiveChaos, StrictDifferentialOracleHoldsUnderChaos) {
  mc::McCase c;
  c.topology = "dary:2:2";
  c.workload = mc::WorkloadKind::kPulse;
  c.pulse_rounds = 3;
  c.pulse_period = 30.0;
  c.seed = 19;
  ASSERT_TRUE(c.strict());

  const runner::ExperimentConfig cfg = mc::build_case(c);
  rt::LiveConfig lc;
  lc.time_scale = 0.005;
  lc.chaos.drop_p = 0.15;
  lc.chaos.dup_p = 0.08;
  lc.chaos.corrupt_p = 0.03;
  lc.chaos.delay_p = 0.05;
  lc.chaos.delay_max = 2.0;
  lc.chaos.until = cfg.horizon;  // the drain phase flushes retransmits
  lc.chaos.seed = 23;
  const rt::LiveResult res = rt::run_live_experiment(cfg, lc);

  const auto violations = mc::check_oracles(c, cfg, res.result);
  EXPECT_TRUE(violations.empty()) << join(violations);
  EXPECT_GT(res.result.global_count, 0u);

  EXPECT_EQ(res.transport.msgs_delivered, res.transport.reliable_sent);
  EXPECT_EQ(res.transport.surfaced_losses, 0u);
  EXPECT_GT(res.transport.retransmits, 0u);
  EXPECT_GT(res.transport.chaos_events, 0u);
  EXPECT_FALSE(res.chaos_events.empty());
  // The counters flow into the shared metrics registry (hpd_sim --json).
  EXPECT_EQ(res.result.metrics.transport().reliable_sent,
            res.transport.reliable_sent);
}

/// The acceptance scenario: 16 nodes on a multi-hop grid, one crash plus
/// reattachment, with >= 10% drop and >= 5% duplication injected for the
/// whole workload. The coverage oracle must pass and the loss accounting
/// must balance — chaos may slow the run down but may not lose a message
/// silently or deliver one twice.
TEST(LiveChaos, ChaosSoak16NodesCrashReattach) {
  mc::McCase c;
  c.topology = "grid:4x4";
  c.workload = mc::WorkloadKind::kPulse;
  c.pulse_rounds = 7;
  c.pulse_period = 30.0;
  c.crashes = {{40.0, 5}};
  c.recoveries = {{70.0, 5}};
  c.seed = 3;

  runner::ExperimentConfig cfg = mc::build_case(c);
  ASSERT_TRUE(cfg.heartbeats);
  cfg.hb_config.period = 5.0;
  cfg.hb_config.timeout_multiplier = 4.0;

  rt::LiveConfig lc;
  lc.time_scale = 0.01;  // 10 ms per unit: heartbeat timeout = 200 ms real
  lc.chaos.drop_p = 0.12;
  lc.chaos.dup_p = 0.06;
  lc.chaos.until = cfg.horizon;
  lc.chaos.seed = 31;
  rt::LiveResult res = rt::run_live_experiment(cfg, lc);

  ASSERT_EQ(res.actual_crashes.size(), 1u);
  ASSERT_EQ(res.actual_recoveries.size(), 1u);
  EXPECT_GE(res.actual_crashes[0].time, 40.0);
  EXPECT_LE(res.actual_crashes[0].time, 60.0);
  EXPECT_GE(res.actual_recoveries[0].time, 70.0);
  EXPECT_LE(res.actual_recoveries[0].time, 90.0);

  c.crashes = {{res.actual_crashes[0].time, 5}};
  c.recoveries = {{res.actual_recoveries[0].time, 5}};
  ASSERT_TRUE(c.coverage_checkable());
  const auto violations = mc::check_oracles(c, cfg, res.result);
  EXPECT_TRUE(violations.empty()) << join(violations);
  EXPECT_GT(res.result.global_count, 0u);

  const TransportCounters& tc = res.transport;
  EXPECT_GT(tc.chaos_events, 0u);
  EXPECT_GT(tc.retransmits, 0u);
  EXPECT_GT(tc.dups_suppressed, 0u);
  // Zero silent loss, unique delivery: under a crash the sender cannot know
  // whether in-flight messages landed before the axe fell, so a message may
  // be both delivered and surfaced — the inequalities are the strongest
  // invariant that exists (two-generals), and they must be tight.
  EXPECT_GE(tc.msgs_delivered + tc.surfaced_losses, tc.reliable_sent);
  EXPECT_LE(tc.msgs_delivered, tc.reliable_sent);
  for (const bool a : res.result.final_alive) {
    EXPECT_TRUE(a);  // the crashed node revived and survived to the end
  }
}

}  // namespace
}  // namespace hpd
