#include <gtest/gtest.h>

#include "tests/test_util.hpp"
#include "trace/trace_io.hpp"
#include "trace/validate.hpp"

namespace hpd::trace {
namespace {

TEST(ValidateTest, RealExecutionsAreValid) {
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(4);
    opt.steps = 10 + rng.uniform_index(60);
    const auto exec = testutil::random_execution(rng, opt);
    const auto issues = validate_execution(exec);
    EXPECT_TRUE(issues.empty())
        << "iter " << iter << ": " << issues.front().message;
  }
}

TEST(ValidateTest, RoundTrippedExecutionsStayValid) {
  Rng rng(6);
  testutil::ExecGenOptions opt;
  opt.processes = 3;
  opt.steps = 40;
  const auto exec = testutil::random_execution(rng, opt);
  const auto copy = execution_from_string(execution_to_string(exec));
  EXPECT_TRUE(execution_valid(copy));
}

class ValidateCorruptionTest : public ::testing::Test {
 protected:
  ValidateCorruptionTest() {
    Rng rng(7);
    testutil::ExecGenOptions opt;
    opt.processes = 3;
    opt.steps = 30;
    opt.p_toggle = 0.4;
    exec_ = testutil::random_execution(rng, opt);
    // Ensure there is material to corrupt.
    while (exec_.procs[0].events.size() < 3 ||
           exec_.procs[0].intervals.empty()) {
      opt.steps += 20;
      exec_ = testutil::random_execution(rng, opt);
    }
  }
  ExecutionRecord exec_;
};

TEST_F(ValidateCorruptionTest, DetectsOwnComponentGap) {
  exec_.procs[0].events[1].vc[0] += 5;
  EXPECT_FALSE(execution_valid(exec_));
}

TEST_F(ValidateCorruptionTest, DetectsForeignRegression) {
  // Force a foreign component to go backwards.
  auto& events = exec_.procs[0].events;
  events[1].vc[1] = 9;
  events[2].vc[1] = 3;
  EXPECT_FALSE(execution_valid(exec_));
}

TEST_F(ValidateCorruptionTest, DetectsCausalUnclosure) {
  exec_.procs[0].events[1].vc[2] = 1000;
  EXPECT_FALSE(execution_valid(exec_));
}

TEST_F(ValidateCorruptionTest, DetectsIntervalSeqGap) {
  exec_.procs[0].intervals[0].seq = 7;
  EXPECT_FALSE(execution_valid(exec_));
}

TEST_F(ValidateCorruptionTest, DetectsLoAboveHi) {
  auto& x = exec_.procs[0].intervals[0];
  x.lo[1] = x.hi[1] + 4;
  EXPECT_FALSE(execution_valid(exec_));
}

TEST_F(ValidateCorruptionTest, DetectsWrongOrigin) {
  exec_.procs[0].intervals[0].origin = 2;
  EXPECT_FALSE(execution_valid(exec_));
}

TEST_F(ValidateCorruptionTest, IssuesCarryContext) {
  exec_.procs[1].events.front().vc[1] = 99;
  const auto issues = validate_execution(exec_);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().process, 1);
  EXPECT_EQ(issues.front().event_index, 0u);
  EXPECT_FALSE(issues.front().message.empty());
}

}  // namespace
}  // namespace hpd::trace
