#include <gtest/gtest.h>

#include <vector>

#include "trace/app_core.hpp"
#include "trace/execution.hpp"

namespace hpd::trace {
namespace {

struct CoreHarness {
  explicit CoreHarness(ProcessId self, std::size_t n)
      : core(self, n, [this](const Interval& x) { intervals.push_back(x); }) {
    core.enable_recording([this] { return clock_time; });
  }
  std::vector<Interval> intervals;
  SimTime clock_time = 0.0;
  AppCore core;
};

TEST(AppCoreTest, VectorClockRules) {
  CoreHarness a(0, 2);
  CoreHarness b(1, 2);
  a.core.internal_event();
  EXPECT_EQ(a.core.clock(), (VectorClock{1, 0}));
  const VectorClock stamp = a.core.prepare_send(1);
  EXPECT_EQ(stamp, (VectorClock{2, 0}));
  b.core.receive(0, stamp);  // merge then tick (paper rule 3)
  EXPECT_EQ(b.core.clock(), (VectorClock{2, 1}));
  b.core.internal_event();
  EXPECT_EQ(b.core.clock(), (VectorClock{2, 2}));
}

TEST(AppCoreTest, IntervalBoundariesAreEventTimestamps) {
  CoreHarness h(0, 1);
  h.core.internal_event();        // VC (1)
  h.core.set_predicate(true);     // VC (2): interval opens
  h.core.internal_event();        // VC (3): extends
  h.core.internal_event();        // VC (4): extends
  h.core.set_predicate(false);    // VC (5): closes; not part of interval
  ASSERT_EQ(h.intervals.size(), 1u);
  EXPECT_EQ(h.intervals[0].lo, (VectorClock{2}));
  EXPECT_EQ(h.intervals[0].hi, (VectorClock{4}));
  EXPECT_EQ(h.intervals[0].origin, 0);
  EXPECT_EQ(h.intervals[0].seq, 1u);
}

TEST(AppCoreTest, SingleEventInterval) {
  CoreHarness h(0, 1);
  h.core.set_predicate(true);
  h.core.set_predicate(false);
  ASSERT_EQ(h.intervals.size(), 1u);
  EXPECT_EQ(h.intervals[0].lo, h.intervals[0].hi);
}

TEST(AppCoreTest, SendReceiveExtendInterval) {
  CoreHarness a(0, 2);
  a.core.set_predicate(true);          // (1,0)
  const VectorClock st = a.core.prepare_send(1);  // (2,0)
  a.core.receive(1, VectorClock{2, 5});  // (3,5)
  a.core.set_predicate(false);
  ASSERT_EQ(a.intervals.size(), 1u);
  EXPECT_EQ(a.intervals[0].lo, (VectorClock{1, 0}));
  EXPECT_EQ(a.intervals[0].hi, (VectorClock{3, 5}));
  EXPECT_EQ(st, (VectorClock{2, 0}));
}

TEST(AppCoreTest, RedundantSetPredicateIsStillAnEvent) {
  CoreHarness h(0, 1);
  h.core.set_predicate(true);   // opens at (1)
  h.core.set_predicate(true);   // extends to (2)
  h.core.set_predicate(false);  // closes
  ASSERT_EQ(h.intervals.size(), 1u);
  EXPECT_EQ(h.intervals[0].hi, (VectorClock{2}));
  h.core.set_predicate(false);  // no-op for intervals
  EXPECT_EQ(h.intervals.size(), 1u);
  EXPECT_EQ(h.core.clock(), (VectorClock{4}));  // but still ticked
}

TEST(AppCoreTest, FinalizeClosesOpenInterval) {
  CoreHarness h(0, 1);
  h.core.set_predicate(true);
  h.core.internal_event();
  EXPECT_TRUE(h.intervals.empty());
  h.core.finalize();
  ASSERT_EQ(h.intervals.size(), 1u);
  EXPECT_EQ(h.intervals[0].hi, (VectorClock{2}));
  h.core.finalize();  // idempotent
  EXPECT_EQ(h.intervals.size(), 1u);
}

TEST(AppCoreTest, MultipleIntervalsNumberedSequentially) {
  CoreHarness h(0, 1);
  for (int k = 0; k < 3; ++k) {
    h.core.set_predicate(true);
    h.core.set_predicate(false);
  }
  ASSERT_EQ(h.intervals.size(), 3u);
  EXPECT_EQ(h.intervals[0].seq, 1u);
  EXPECT_EQ(h.intervals[2].seq, 3u);
  EXPECT_EQ(h.core.intervals_completed(), 3u);
  // Successive intervals at one process are successors.
  EXPECT_TRUE(is_successor(h.intervals[0], h.intervals[1]));
  EXPECT_TRUE(is_successor(h.intervals[1], h.intervals[2]));
}

TEST(AppCoreTest, RecordingCapturesEventsAndPredicate) {
  CoreHarness h(0, 2);
  h.clock_time = 1.5;
  h.core.set_predicate(true);
  h.clock_time = 2.5;
  const VectorClock st = h.core.prepare_send(1);
  (void)st;
  h.clock_time = 3.5;
  h.core.set_predicate(false);
  const ProcessTrace& tr = h.core.recorded();
  ASSERT_EQ(tr.events.size(), 3u);
  EXPECT_EQ(tr.events[0].kind, EventKind::kInternal);
  EXPECT_TRUE(tr.events[0].predicate_after);
  EXPECT_EQ(tr.events[1].kind, EventKind::kSend);
  EXPECT_EQ(tr.events[1].peer, 1);
  EXPECT_DOUBLE_EQ(tr.events[1].time, 2.5);
  EXPECT_FALSE(tr.events[2].predicate_after);
  ASSERT_EQ(tr.intervals.size(), 1u);
  EXPECT_FALSE(tr.initial_predicate);
}

TEST(AppCoreTest, ProvenanceTaggingOptIn) {
  CoreHarness h(0, 1);
  h.core.set_track_provenance(true);
  h.core.set_predicate(true);
  h.core.set_predicate(false);
  ASSERT_EQ(h.intervals.size(), 1u);
  ASSERT_NE(h.intervals[0].provenance, nullptr);
  const auto bases = base_intervals(h.intervals[0]);
  ASSERT_EQ(bases.size(), 1u);
  EXPECT_EQ(bases[0], (std::pair<ProcessId, SeqNum>{0, 1}));
}

TEST(ExecutionRecordTest, Totals) {
  ExecutionRecord exec;
  exec.procs.resize(2);
  exec.procs[0].events.resize(3);
  exec.procs[1].events.resize(2);
  exec.procs[0].intervals.resize(2);
  exec.procs[1].intervals.resize(5);
  EXPECT_EQ(exec.num_processes(), 2u);
  EXPECT_EQ(exec.total_events(), 5u);
  EXPECT_EQ(exec.total_intervals(), 7u);
  EXPECT_EQ(exec.max_intervals_per_process(), 5u);
}

}  // namespace
}  // namespace hpd::trace
