// Property tests for the aggregation operator ⊓ (Eqs. (5)–(7)) and the
// Theorem 1 / Lemma 1 overlap sandwich, over randomized causally-valid
// executions rather than hand-built vectors.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "interval/interval.hpp"
#include "tests/test_util.hpp"
#include "trace/execution.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {
namespace {

/// One random interval per process (for processes that have any), i.e. a
/// candidate member set for ⊓ exactly as Algorithm 1 forms one.
std::vector<Interval> pick_members(const trace::ExecutionRecord& exec,
                                   Rng& rng) {
  std::vector<Interval> out;
  for (const auto& proc : exec.procs) {
    if (!proc.intervals.empty()) {
      out.push_back(proc.intervals[rng.uniform_index(proc.intervals.size())]);
    }
  }
  return out;
}

trace::ExecutionRecord random_exec(Rng& rng, std::size_t procs,
                                   std::size_t steps) {
  testutil::ExecGenOptions opt;
  opt.processes = procs;
  opt.steps = steps;
  // Message-heavy: Definitely(Φ) needs causal crossings between every pair
  // of truth intervals, which sparse traffic almost never produces.
  opt.p_send = 0.35;
  opt.p_receive = 0.4;
  opt.p_toggle = 0.2;
  opt.track_provenance = true;
  return testutil::random_execution(rng, opt);
}

// Eq. (7): the aggregate's span is bounded by every member's span —
// componentwise min(x) <= min(⊓X) and max(⊓X) <= max(x), immediately from
// ⊓ being max-of-mins / min-of-maxes.
TEST(AggregateAlgebra, Eq7BoundsWithinEveryMember) {
  Rng rng(11);
  std::size_t checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto exec = random_exec(rng, 2 + rng.uniform_index(4), 60);
    const auto members = pick_members(exec, rng);
    if (members.size() < 2) {
      continue;
    }
    const Interval g = aggregate(members, /*origin=*/0, /*seq=*/1);
    for (const auto& x : members) {
      EXPECT_TRUE(vc_leq(x.lo, g.lo)) << "min(x) must bound min(⊓X) below";
      EXPECT_TRUE(vc_leq(g.hi, x.hi)) << "max(⊓X) must stay within max(x)";
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);  // the generator produced real work
}

// ⊓ flattens: aggregating the aggregates of a partition gives the same cut
// bounds as aggregating the union directly (associativity at cut level).
// This is what lets every tree shape compute the same root aggregate.
TEST(AggregateAlgebra, PartitionAssociativity) {
  Rng rng(17);
  std::size_t checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto exec = random_exec(rng, 3 + rng.uniform_index(3), 70);
    const auto members = pick_members(exec, rng);
    if (members.size() < 3) {
      continue;
    }
    // Random two-block partition with both blocks non-empty.
    std::vector<Interval> a;
    std::vector<Interval> b;
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i == 0 || (i != 1 && rng.bernoulli(0.5)) ? a : b).push_back(members[i]);
    }
    const Interval flat = aggregate(members, 0, 1);
    const Interval nested =
        aggregate(aggregate(a, 1, 1), aggregate(b, 2, 1), 0, 1);
    EXPECT_EQ(flat.lo, nested.lo);
    EXPECT_EQ(flat.hi, nested.hi);
    EXPECT_EQ(flat.weight, nested.weight);
    EXPECT_EQ(flat.completed_at, nested.completed_at);
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

// Bookkeeping carried through ⊓: weight adds, completed_at maxes, the
// aggregated flag is set, and provenance covers exactly the members' bases.
TEST(AggregateAlgebra, WeightCompletionAndProvenance) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const auto exec = random_exec(rng, 2 + rng.uniform_index(4), 60);
    const auto members = pick_members(exec, rng);
    if (members.size() < 2) {
      continue;
    }
    const Interval g = aggregate(members, 7, 3);
    EXPECT_TRUE(g.aggregated);
    EXPECT_EQ(g.origin, 7);
    EXPECT_EQ(g.seq, 3);

    std::uint32_t weight = 0;
    SimTime completed = 0.0;
    std::vector<std::pair<ProcessId, SeqNum>> bases;
    for (const auto& x : members) {
      weight += x.weight;
      completed = std::max(completed, x.completed_at);
      const auto part = base_intervals(x);
      bases.insert(bases.end(), part.begin(), part.end());
    }
    std::sort(bases.begin(), bases.end());
    EXPECT_EQ(g.weight, weight);
    EXPECT_EQ(g.completed_at, completed);
    EXPECT_EQ(base_intervals(g), bases);
  }
}

/// A synthetic interval with a random window per clock component. The
/// sandwich is pure vector algebra over windows, so untethering from a real
/// execution lets the generator hit its preconditions densely (real
/// executions of 4+ processes almost never satisfy Definitely).
Interval synth_interval(Rng& rng, std::size_t dims, ProcessId origin,
                        bool wide) {
  Interval x;
  x.lo = VectorClock(dims);
  x.hi = VectorClock(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    // Wide windows overlap almost surely (the positive space of the
    // sandwich); narrow ones miss each other often (the negative space).
    const auto base =
        static_cast<ClockValue>(rng.uniform_int(0, wide ? 5 : 10));
    const auto width =
        static_cast<ClockValue>(wide ? rng.uniform_int(4, 10)
                                     : rng.uniform_int(0, 5));
    x.lo[i] = base;
    x.hi[i] = base + width;
  }
  x.origin = origin;
  x.seq = 1;
  return x;
}

/// One interval per distinct origin, pairwise satisfying Eq. (2) — i.e. a
/// well-formed solution set, the precondition Theorem 1 places on each of
/// the two sides (a child only reports an aggregate of a solution).
std::vector<Interval> synth_solution_set(Rng& rng, std::size_t dims,
                                         std::size_t size,
                                         ProcessId first_origin, bool wide) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::vector<Interval> xs;
    for (std::size_t i = 0; i < size; ++i) {
      xs.push_back(synth_interval(
          rng, dims, first_origin + static_cast<ProcessId>(i), wide));
    }
    if (overlap(xs)) {
      return xs;
    }
  }
  return {};
}

// The Theorem 1 / Lemma 1 sandwich, one aggregation level up:
//   overlap(⊓X, ⊓Y)  ⇒  overlap(X ∪ Y)  ⇒  overlap_cuts(⊓X, ⊓Y)
// for solution sets X and Y over disjoint processes. The strict direction
// is the paper's Theorem 1 (a strict overlap of two reported aggregates
// certifies a Definitely solution over the union); the non-strict return
// direction is the library's cut-level erratum.
TEST(AggregateAlgebra, Theorem1Sandwich) {
  Rng rng(31);
  std::size_t strict_hits = 0;
  std::size_t union_hits = 0;
  std::size_t negative_hits = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const bool wide = rng.bernoulli(0.5);
    const std::size_t nx = 2 + rng.uniform_index(2);
    const std::size_t ny = 2 + rng.uniform_index(2);
    const std::size_t dims = nx + ny;
    const auto xs = synth_solution_set(rng, dims, nx, 0, wide);
    const auto ys = synth_solution_set(rng, dims, ny,
                                       static_cast<ProcessId>(nx), wide);
    if (xs.empty() || ys.empty()) {
      continue;
    }
    const Interval gx = aggregate(xs, 100, 1);
    const Interval gy = aggregate(ys, 101, 1);

    std::vector<Interval> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    const bool strict = overlap(gx, gy);
    const bool base_union = overlap(all);  // Eq. (2) over X ∪ Y
    const bool cuts = overlap_cuts(gx, gy);

    if (strict) {
      EXPECT_TRUE(base_union)
          << "Theorem 1: strict aggregate overlap must certify the union";
      ++strict_hits;
    } else {
      ++negative_hits;
    }
    if (base_union) {
      EXPECT_TRUE(cuts)
          << "Lemma: a base-level solution must survive at cut level";
      ++union_hits;
    }
  }
  // The sweep must exercise both implications and their negative space.
  EXPECT_GT(strict_hits, 20u);
  EXPECT_GT(union_hits, 20u);
  EXPECT_GT(negative_hits, 20u);
}

// Same sandwich one level higher: the left side is an aggregate of
// aggregates, as at every internal tree node above the lowest level.
// Theorem 1 composes because an aggregate of solution aggregates is again
// the aggregate of the flattened member union (PartitionAssociativity).
TEST(AggregateAlgebra, SandwichNested) {
  Rng rng(37);
  std::size_t hits = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t dims = 6;
    const auto left_a = synth_solution_set(rng, dims, 2, 0, true);
    const auto left_b = synth_solution_set(rng, dims, 2, 2, true);
    const auto right = synth_solution_set(rng, dims, 2, 4, true);
    if (left_a.empty() || left_b.empty() || right.empty()) {
      continue;
    }
    std::vector<Interval> left_union = left_a;
    left_union.insert(left_union.end(), left_b.begin(), left_b.end());
    if (!overlap(left_union)) {
      continue;  // the two left blocks don't form a joint solution
    }
    const Interval left = aggregate(aggregate(left_a, 100, 1),
                                    aggregate(left_b, 101, 1), 102, 1);
    const Interval flat = aggregate(left_union, 102, 1);
    EXPECT_EQ(left.lo, flat.lo);
    EXPECT_EQ(left.hi, flat.hi);

    const Interval gr = aggregate(right, 103, 1);
    if (overlap(left, gr)) {
      std::vector<Interval> all = left_union;
      all.insert(all.end(), right.begin(), right.end());
      EXPECT_TRUE(overlap(all)) << "nested Theorem 1 failed";
      ++hits;
    }
  }
  EXPECT_GT(hits, 10u);
}

}  // namespace
}  // namespace hpd
