// Unit tests for the nonblocking-aware socket helpers (rt/socket) on a
// socketpair fixture: EAGAIN surfacing, partial-write resume, EOF and
// broken-pipe folding, and the two-phase nonblocking connect
// (connect_start / connect_finish) over both Unix-domain and TCP sockets.
#include "rt/socket.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace hpd::rt {
namespace {

struct PairFixture {
  Fd a;
  Fd b;

  PairFixture() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair failed";
      return;
    }
    set_nonblocking(fds[0]);
    set_nonblocking(fds[1]);
    a = Fd(fds[0]);
    b = Fd(fds[1]);
  }
};

TEST(Socket, ReadOnEmptySocketIsAgain) {
  PairFixture p;
  std::uint8_t buf[16];
  const IoResult r = read_some(p.a.get(), buf, sizeof(buf));
  EXPECT_EQ(r.status, IoResult::Status::kAgain);
  EXPECT_EQ(r.n, 0u);
}

TEST(Socket, WriteReadRoundTrip) {
  PairFixture p;
  std::vector<std::uint8_t> out(1000);
  std::iota(out.begin(), out.end(), std::uint8_t{0});

  const IoResult w = write_some(p.a.get(), out.data(), out.size());
  ASSERT_EQ(w.status, IoResult::Status::kOk);
  ASSERT_EQ(w.n, out.size());

  std::vector<std::uint8_t> in(out.size());
  std::size_t got = 0;
  while (got < in.size()) {
    const IoResult r = read_some(p.b.get(), in.data() + got, in.size() - got);
    ASSERT_EQ(r.status, IoResult::Status::kOk);
    got += r.n;
  }
  EXPECT_EQ(in, out);
}

TEST(Socket, EofFoldsToClosed) {
  PairFixture p;
  p.a.reset();
  std::uint8_t buf[16];
  const IoResult r = read_some(p.b.get(), buf, sizeof(buf));
  EXPECT_EQ(r.status, IoResult::Status::kClosed);
  EXPECT_EQ(r.n, 0u);
}

// Writing into a reset connection must fold to kClosed, not raise SIGPIPE
// (write_some sends with MSG_NOSIGNAL). The first write after the peer
// closes may still be absorbed by the kernel; the reset is observed by the
// next one.
TEST(Socket, BrokenPipeFoldsToClosed) {
  PairFixture p;
  p.b.reset();
  std::uint8_t buf[256] = {0};
  IoResult r = write_some(p.a.get(), buf, sizeof(buf));
  if (r.status != IoResult::Status::kClosed) {
    r = write_some(p.a.get(), buf, sizeof(buf));
  }
  EXPECT_EQ(r.status, IoResult::Status::kClosed);
}

// The partial-write contract: against a tiny kernel buffer a large write
// stops early (short count or kAgain), and resuming from the reported
// offset as the receiver drains moves every byte intact.
TEST(Socket, PartialWriteResume) {
  PairFixture p;
  const int small = 4096;
  ::setsockopt(p.a.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(p.b.get(), SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  std::vector<std::uint8_t> out(512 * 1024);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  std::vector<std::uint8_t> in;
  in.reserve(out.size());

  std::size_t sent = 0;
  bool saw_stall = false;
  std::uint8_t chunk[8192];
  int spins = 0;
  while (in.size() < out.size()) {
    ASSERT_LT(++spins, 1000000) << "transfer made no progress";
    if (sent < out.size()) {
      const IoResult w = write_some(p.a.get(), out.data() + sent,
                                    out.size() - sent);
      ASSERT_NE(w.status, IoResult::Status::kClosed);
      if (w.status == IoResult::Status::kAgain || w.n < out.size() - sent) {
        saw_stall = true;  // the resume path is actually exercised
      }
      sent += w.n;
    }
    const IoResult r = read_some(p.b.get(), chunk, sizeof(chunk));
    ASSERT_NE(r.status, IoResult::Status::kClosed);
    in.insert(in.end(), chunk, chunk + r.n);
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_EQ(in, out);
}

TEST(Socket, ConnectStartUnixConnectsOrFails) {
  const std::string dir = make_socket_dir();
  SockAddr addr;
  addr.kind = SockAddr::Kind::kUnix;
  addr.path = dir + "/node.sock";

  // No listener yet: refused.
  EXPECT_EQ(connect_start(addr).status, ConnectStart::Status::kFailed);

  Fd listener = listen_on(addr);
  ASSERT_TRUE(listener.valid());
  ConnectStart cs = connect_start(addr);
  ASSERT_NE(cs.status, ConnectStart::Status::kFailed);
  if (cs.status == ConnectStart::Status::kPending) {
    struct pollfd pfd = {cs.fd.get(), POLLOUT, 0};
    ASSERT_GT(::poll(&pfd, 1, 2000), 0);
    ASSERT_TRUE(connect_finish(cs.fd));
  }

  Fd accepted;
  for (int i = 0; i < 1000 && !accepted.valid(); ++i) {
    accepted = accept_conn(listener);
  }
  ASSERT_TRUE(accepted.valid());

  // The established pair is usable in both directions.
  const std::uint8_t ping = 0x5a;
  ASSERT_EQ(write_some(cs.fd.get(), &ping, 1).status, IoResult::Status::kOk);
  std::uint8_t got = 0;
  IoResult r;
  do {
    r = read_some(accepted.get(), &got, 1);
  } while (r.status == IoResult::Status::kAgain);
  ASSERT_EQ(r.status, IoResult::Status::kOk);
  EXPECT_EQ(got, ping);

  listener.reset();
  accepted.reset();
  cs.fd.reset();
  remove_socket_dir(dir);
  struct stat st;
  EXPECT_NE(::stat(dir.c_str(), &st), 0);  // directory actually removed
}

TEST(Socket, ConnectStartTcpPendingResolves) {
  SockAddr addr;
  addr.kind = SockAddr::Kind::kTcp;
  addr.port = 0;
  Fd listener = listen_on(addr);
  ASSERT_TRUE(listener.valid());
  ASSERT_NE(addr.port, 0);  // kernel-chosen port written back

  ConnectStart cs = connect_start(addr);
  ASSERT_NE(cs.status, ConnectStart::Status::kFailed);
  if (cs.status == ConnectStart::Status::kPending) {
    struct pollfd pfd = {cs.fd.get(), POLLOUT, 0};
    ASSERT_GT(::poll(&pfd, 1, 2000), 0);
    EXPECT_TRUE(connect_finish(cs.fd));
  }

  Fd accepted;
  for (int i = 0; i < 1000 && !accepted.valid(); ++i) {
    accepted = accept_conn(listener);
  }
  EXPECT_TRUE(accepted.valid());
}

TEST(Socket, ConnectFinishReportsRefusal) {
  // Bind a port, learn it, close the listener: a connect to it must fail
  // either immediately or at connect_finish after the writable edge.
  SockAddr addr;
  addr.kind = SockAddr::Kind::kTcp;
  addr.port = 0;
  {
    Fd listener = listen_on(addr);
    ASSERT_TRUE(listener.valid());
  }
  ConnectStart cs = connect_start(addr);
  if (cs.status == ConnectStart::Status::kPending) {
    struct pollfd pfd = {cs.fd.get(), POLLOUT, 0};
    ASSERT_GT(::poll(&pfd, 1, 2000), 0);
    EXPECT_FALSE(connect_finish(cs.fd));
  } else {
    EXPECT_EQ(cs.status, ConnectStart::Status::kFailed);
  }
}

}  // namespace
}  // namespace hpd::rt
