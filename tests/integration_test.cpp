// Whole-system tests: workloads running over the simulated network with the
// detectors online, validated against exact expectations and against the
// offline ground-truth reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "detect/offline/lattice.hpp"
#include "detect/offline/replay.hpp"
#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"

namespace hpd::runner {
namespace {

using detect::offline::replay_centralized;

ExperimentConfig pulse_config(std::size_t d, std::size_t h, SeqNum rounds,
                              double participation, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.tree = net::SpanningTree::balanced_dary(d, h);
  cfg.topology = net::tree_topology(cfg.tree);
  trace::PulseConfig pc;
  pc.rounds = rounds;
  pc.start = 5.0;
  pc.period = 60.0;
  pc.participation = participation;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 5.0 + static_cast<SimTime>(rounds) * 60.0 + 60.0;
  cfg.drain = 80.0;
  cfg.seed = seed;
  return cfg;
}

/// (origin, seq) base ids of an occurrence's solution, sorted.
std::vector<std::pair<ProcessId, SeqNum>> bases_of(
    const detect::OccurrenceRecord& rec) {
  std::vector<std::pair<ProcessId, SeqNum>> out;
  for (const Interval& m : rec.solution) {
    const auto b = base_intervals(m);
    out.insert(out.end(), b.begin(), b.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<ProcessId, SeqNum>> members_of(
    const detect::Solution& sol) {
  std::vector<std::pair<ProcessId, SeqNum>> out;
  for (const Interval& m : sol.members) {
    out.emplace_back(m.origin, m.seq);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Pulse, full participation: exact counting -----------------------------

TEST(PulseIntegrationTest, EveryRoundDetectedGlobally) {
  auto cfg = pulse_config(2, 3, 5, 1.0, 42);
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_EQ(res.global_count, 5u);
  // Every node detects its subtree's satisfaction once per round.
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(res.metrics.node(static_cast<ProcessId>(i)).detections, 5u)
        << "node " << i;
  }
  // Every non-root node sends exactly one report per round, one hop each.
  EXPECT_EQ(res.metrics.msgs_of_type(proto::kReportHier), 6u * 5u);
  EXPECT_EQ(res.metrics.msgs_of_type(proto::kReportCentral), 0u);
  EXPECT_EQ(res.dropped_messages, 0u);
}

TEST(PulseIntegrationTest, MeasuredAlphaIsOneOverDAtFullParticipation) {
  // With every round solving at every node, an internal node turns each
  // batch of d child intervals into one aggregate: alpha = 1/d.
  for (std::size_t d : {2u, 3u}) {
    auto cfg = pulse_config(d, 3, 6, 1.0, 7);
    const ExperimentResult res = run_experiment(cfg);
    EXPECT_NEAR(res.measured_alpha(), 1.0 / static_cast<double>(d), 1e-9)
        << "d=" << d;
  }
}

TEST(PulseIntegrationTest, CentralizedHopWeightedMessageCount) {
  auto cfg = pulse_config(2, 3, 5, 1.0, 42);
  cfg.detector = DetectorKind::kCentralized;
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_EQ(res.global_count, 5u);
  // Eq. (12) accounting: each process's interval travels depth(i) hops.
  // Tree d=2, h=3: depths 0,1,1,2,2,2,2 → 10 hop-messages per round.
  EXPECT_EQ(res.metrics.msgs_of_type(proto::kReportCentral), 10u * 5u);
  EXPECT_EQ(res.metrics.msgs_of_type(proto::kReportHier), 0u);
}

TEST(PulseIntegrationTest, HierarchicalBeatsCentralizedOnMessages) {
  // The paper's headline claim, measured rather than modeled.
  for (std::uint64_t seed : {1u, 2u}) {
    auto hier = pulse_config(2, 4, 6, 1.0, seed);
    auto central = pulse_config(2, 4, 6, 1.0, seed);
    central.detector = DetectorKind::kCentralized;
    const auto hr = run_experiment(hier);
    const auto cr = run_experiment(central);
    EXPECT_EQ(hr.global_count, cr.global_count);
    EXPECT_LT(hr.metrics.msgs_of_type(proto::kReportHier),
              cr.metrics.msgs_of_type(proto::kReportCentral));
  }
}

TEST(PulseIntegrationTest, SpaceIsDistributedInHierarchicalMode) {
  auto hier = pulse_config(3, 3, 6, 1.0, 11);
  auto central = pulse_config(3, 3, 6, 1.0, 11);
  central.detector = DetectorKind::kCentralized;
  const auto hr = run_experiment(hier);
  const auto cr = run_experiment(central);
  // The sink stores intervals from all 13 processes; a hierarchical node
  // stores only its own + its children's.
  EXPECT_GT(cr.metrics.max_node_storage_peak(),
            hr.metrics.max_node_storage_peak());
}

class PulsePartialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PulsePartialTest, OnlineDetectionMatchesOfflineReplay) {
  auto cfg = pulse_config(2, 3, 20, 0.85, GetParam());
  cfg.record_execution = true;
  cfg.track_provenance = true;
  const ExperimentResult res = run_experiment(cfg);
  const auto reference = replay_centralized(res.execution);
  EXPECT_EQ(res.global_count, reference.size());

  // Compare the actual solution sets, not just counts.
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> online;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      online.push_back(bases_of(rec));
    }
  }
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> offline;
  offline.reserve(reference.size());
  for (const auto& sol : reference) {
    offline.push_back(members_of(sol));
  }
  EXPECT_EQ(online, offline);
}

TEST_P(PulsePartialTest, CentralizedOnlineMatchesItsOwnReplay) {
  auto cfg = pulse_config(2, 3, 20, 0.85, GetParam() ^ 0xbeef);
  cfg.detector = DetectorKind::kCentralized;
  cfg.record_execution = true;
  const ExperimentResult res = run_experiment(cfg);
  const auto reference = replay_centralized(res.execution);
  EXPECT_EQ(res.global_count, reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PulsePartialTest,
                         ::testing::Values(3u, 14u, 159u));

// ---- Gossip: the adversarial equivalence property ---------------------------

struct GossipCase {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t cols;
};

class GossipEquivalenceTest : public ::testing::TestWithParam<GossipCase> {
 protected:
  static ExperimentConfig make_config(const GossipCase& gc) {
    ExperimentConfig cfg;
    cfg.topology = net::Topology::grid(gc.rows, gc.cols);
    cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
    trace::GossipConfig g;
    g.horizon = 500.0;
    g.mean_gap = 3.0;
    g.p_send = 0.45;
    g.p_toggle = 0.35;
    g.max_intervals = 15;
    cfg.behavior_factory = [g](ProcessId) {
      return std::make_unique<trace::GossipBehavior>(g);
    };
    cfg.horizon = 520.0;
    cfg.drain = 60.0;
    cfg.seed = gc.seed;
    cfg.record_execution = true;
    cfg.track_provenance = true;
    return cfg;
  }
};

TEST_P(GossipEquivalenceTest, HierarchicalRootMatchesFlatReplay) {
  const ExperimentResult res = run_experiment(make_config(GetParam()));
  const auto reference = replay_centralized(res.execution);
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> online;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      online.push_back(bases_of(rec));
    }
  }
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> offline;
  for (const auto& sol : reference) {
    offline.push_back(members_of(sol));
  }
  EXPECT_EQ(online, offline);
}

TEST_P(GossipEquivalenceTest, EverySolutionIsSafeAndCoversTheSubtree) {
  const auto cfg = make_config(GetParam());
  const ExperimentResult res = run_experiment(cfg);
  for (const auto& rec : res.occurrences) {
    const auto bases = bases_of(rec);
    // Exactly one base interval per process of the detector's subtree.
    const auto subtree = cfg.tree.subtree(rec.detector);
    std::vector<ProcessId> expected(subtree.begin(), subtree.end());
    std::sort(expected.begin(), expected.end());
    std::vector<ProcessId> got;
    for (const auto& [origin, seq] : bases) {
      got.push_back(origin);
    }
    ASSERT_EQ(got, expected) << "detector " << rec.detector;
    // The raw intervals satisfy the Definitely overlap condition (safety).
    std::vector<Interval> raw;
    for (const auto& [origin, seq] : bases) {
      const auto& ivs = res.execution.procs[idx(origin)].intervals;
      ASSERT_GE(ivs.size(), seq);
      raw.push_back(ivs[seq - 1]);
      ASSERT_EQ(ivs[seq - 1].seq, seq);
    }
    EXPECT_TRUE(overlap(std::span<const Interval>(raw)))
        << "detector " << rec.detector << " occurrence " << rec.index;
  }
}

TEST_P(GossipEquivalenceTest, CentralizedOnlineMatchesFlatReplay) {
  auto cfg = make_config(GetParam());
  cfg.detector = DetectorKind::kCentralized;
  const ExperimentResult res = run_experiment(cfg);
  const auto reference = replay_centralized(res.execution);
  EXPECT_EQ(res.global_count, reference.size());
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> online;
  for (const auto& rec : res.occurrences) {
    online.push_back(bases_of(rec));
  }
  std::vector<std::vector<std::pair<ProcessId, SeqNum>>> offline;
  for (const auto& sol : reference) {
    offline.push_back(members_of(sol));
  }
  EXPECT_EQ(online, offline);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GossipEquivalenceTest,
    ::testing::Values(GossipCase{1, 1, 2}, GossipCase{2, 1, 3},
                      GossipCase{3, 2, 2}, GossipCase{4, 2, 3},
                      GossipCase{5, 2, 3}, GossipCase{6, 3, 3},
                      GossipCase{7, 1, 4}, GossipCase{8, 2, 4}));

// ---- Small executions vs the lattice ground truth ----------------------------

class LatticeCrossCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatticeCrossCheckTest, FirstGlobalDetectionIffLatticeDefinitely) {
  ExperimentConfig cfg;
  cfg.topology = net::Topology::complete(3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 60.0;
  g.mean_gap = 5.0;
  g.p_send = 0.4;
  g.p_toggle = 0.4;
  g.max_intervals = 4;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = 80.0;
  cfg.drain = 40.0;
  cfg.seed = GetParam();
  cfg.record_execution = true;
  const ExperimentResult res = run_experiment(cfg);
  const bool definitely = detect::offline::lattice_definitely(res.execution);
  EXPECT_EQ(res.global_count > 0, definitely);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeCrossCheckTest,
                         ::testing::Range<std::uint64_t>(100, 130));

// ---- Theorem 2 as an end-to-end property -------------------------------------

TEST_P(PulsePartialTest, SuccessiveAggregatesAreSuccessors) {
  // Theorem 2: aggregates generated at one node are totally ordered by the
  // succ relation (max of the earlier < min of the later). Verified on the
  // actual reported aggregates of a full run (no failures).
  auto cfg = pulse_config(2, 4, 15, 0.9, GetParam() ^ 0x777);
  const ExperimentResult res = run_experiment(cfg);
  std::map<ProcessId, Interval> last_at;
  std::size_t checked = 0;
  for (const auto& rec : res.occurrences) {
    auto it = last_at.find(rec.detector);
    if (it != last_at.end()) {
      EXPECT_TRUE(is_successor(it->second, rec.aggregate))
          << "node " << rec.detector << " occurrence " << rec.index;
      ++checked;
    }
    last_at[rec.detector] = rec.aggregate;
  }
  EXPECT_GT(checked, 0u);
}

// ---- Determinism --------------------------------------------------------------

TEST(ScaleTest, ExactCountsAtFiveHundredNodes) {
  // d = 2, h = 9: 511 processes. At full participation the message model is
  // exact: every non-root node sends one report per round, and the
  // centralized baseline pays the full hop-weighted bill.
  const std::size_t n = net::SpanningTree::balanced_dary_size(2, 9);
  ASSERT_EQ(n, 511u);
  auto hier = pulse_config(2, 9, 6, 1.0, 5);
  const auto hr = run_experiment(hier);
  EXPECT_EQ(hr.global_count, 6u);
  EXPECT_EQ(hr.metrics.msgs_of_type(proto::kReportHier), (n - 1) * 6u);
  // Per-node costs stay tree-local: a node stores at most its own and its
  // two children's current intervals.
  EXPECT_LE(hr.metrics.max_node_storage_peak(), 6u);

  auto central = pulse_config(2, 9, 6, 1.0, 5);
  central.detector = DetectorKind::kCentralized;
  const auto cr = run_experiment(central);
  EXPECT_EQ(cr.global_count, 6u);
  double hop_model = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    hop_model += central.tree.depth(static_cast<ProcessId>(i));
  }
  EXPECT_EQ(cr.metrics.msgs_of_type(proto::kReportCentral),
            static_cast<std::uint64_t>(hop_model) * 6u);
}

TEST(ScaleTest, ThousandNodesExact) {
  // d = 2, h = 10: 1023 processes, vector clocks 1023 wide. Three rounds,
  // exact message accounting — the "large-scale" in the paper's title.
  const std::size_t n = net::SpanningTree::balanced_dary_size(2, 10);
  ASSERT_EQ(n, 1023u);
  auto cfg = pulse_config(2, 10, 3, 1.0, 77);
  cfg.keep_occurrence_records = false;
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.global_count, 3u);
  EXPECT_EQ(res.metrics.msgs_of_type(proto::kReportHier), (n - 1) * 3u);
  EXPECT_LE(res.metrics.max_node_storage_peak(), 4u);
  EXPECT_EQ(res.dropped_messages, 0u);
}

TEST(CapacityTest, BoundedQueuesDegradeDetectionNotCorrectness) {
  // With partial participation, a 1-slot queue cannot hold the waiting
  // partial matches: fewer detections, but everything that IS detected
  // stays valid (safety is capacity-independent).
  auto unbounded = pulse_config(2, 4, 20, 0.8, 99);
  auto bounded = pulse_config(2, 4, 20, 0.8, 99);
  bounded.queue_capacity = 1;
  bounded.record_execution = true;
  bounded.track_provenance = true;
  const auto u = run_experiment(unbounded);
  const auto b = run_experiment(bounded);
  EXPECT_LE(b.global_count, u.global_count);
  EXPECT_LE(b.metrics.max_node_storage_peak(),
            1u * (2u + 1u));  // capacity × queues per node
  for (const auto& rec : b.occurrences) {
    if (!rec.global) {
      continue;
    }
    std::vector<Interval> raw;
    for (const auto& m : rec.solution) {
      for (const auto& [origin, seq] : base_intervals(m)) {
        raw.push_back(b.execution.procs[idx(origin)].intervals[seq - 1]);
      }
    }
    EXPECT_TRUE(overlap(std::span<const Interval>(raw)));
  }
}

TEST(DeterminismTest, IdenticalSeedsIdenticalResults) {
  const auto r1 = run_experiment(pulse_config(2, 3, 8, 0.7, 77));
  const auto r2 = run_experiment(pulse_config(2, 3, 8, 0.7, 77));
  EXPECT_EQ(r1.global_count, r2.global_count);
  EXPECT_EQ(r1.metrics.msgs_total(), r2.metrics.msgs_total());
  EXPECT_EQ(r1.metrics.total_vc_comparisons(), r2.metrics.total_vc_comparisons());
  EXPECT_EQ(r1.sim_events, r2.sim_events);
  const auto r3 = run_experiment(pulse_config(2, 3, 8, 0.7, 78));
  EXPECT_NE(r1.metrics.msgs_total(), r3.metrics.msgs_total());
}

}  // namespace
}  // namespace hpd::runner
