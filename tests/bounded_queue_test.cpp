// TSan-targeted stress tests for rt::BoundedQueue. These are deliberately
// contention-heavy: the interesting assertions are the ones ThreadSanitizer
// makes (no data race, no lock inversion), with item-accounting checks on
// top so the tests also mean something in a plain Release run. The CI tsan
// leg picks these up via the BoundedQueue name in its ctest regex.

#include "src/rt/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

namespace hpd::rt {
namespace {

TEST(BoundedQueueTest, SingleThreadFifoAndCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.try_pop(), std::optional<int>(2));
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.close();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 8;
  constexpr int kConsumers = 8;
  constexpr int kPerProducer = 2000;
  BoundedQueue<std::int64_t> q(16);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<std::int64_t>(p) * kPerProducer + i));
      }
    });
  }

  std::vector<std::int64_t> sums(kConsumers, 0);
  std::vector<std::int64_t> counts(kConsumers, 0);
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &sums, &counts, c] {
      while (auto item = q.pop()) {
        sums[static_cast<std::size_t>(c)] += *item;
        ++counts[static_cast<std::size_t>(c)];
      }
    });
  }

  for (auto& t : producers) {
    t.join();
  }
  q.close();  // consumers drain the remainder, then see nullopt
  for (auto& t : consumers) {
    t.join();
  }

  const auto total_count =
      std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  const auto total_sum =
      std::accumulate(sums.begin(), sums.end(), std::int64_t{0});
  constexpr std::int64_t kN = std::int64_t{kProducers} * kPerProducer;
  EXPECT_EQ(total_count, kN);
  EXPECT_EQ(total_sum, kN * (kN - 1) / 2);  // each value 0..N-1 exactly once
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducersAndConsumers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(0));  // now full: pushers below must block

  constexpr int kBlockedPushers = 4;
  constexpr int kBlockedPoppers = 4;
  std::atomic<int> rejected_pushes{0};
  std::atomic<int> empty_pops{0};

  std::vector<std::thread> threads;
  threads.reserve(kBlockedPushers + kBlockedPoppers);
  for (int i = 0; i < kBlockedPushers; ++i) {
    threads.emplace_back([&q, &rejected_pushes] {
      if (!q.push(99)) {
        rejected_pushes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // One popper takes the only item; the rest block on an empty queue until
  // close() (or a racing push(99) that sneaks in before close lands — both
  // orders are legal, the accounting below covers them).
  std::atomic<int> popped_items{0};
  for (int i = 0; i < kBlockedPoppers; ++i) {
    threads.emplace_back([&q, &empty_pops, &popped_items] {
      if (q.pop().has_value()) {
        popped_items.fetch_add(1, std::memory_order_relaxed);
      } else {
        empty_pops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  q.close();
  for (auto& t : threads) {
    t.join();
  }

  // Every thread came back: close() must have woken all waiters. Items that
  // were pushed (initial + any successful racing push) either got popped or
  // are still queued; pushes/pops that lost the race were told so.
  const int pushed = 1 + (kBlockedPushers - rejected_pushes.load());
  EXPECT_EQ(popped_items.load() + static_cast<int>(q.size()), pushed);
  EXPECT_EQ(popped_items.load() + empty_pops.load(), kBlockedPoppers);
}

TEST(BoundedQueueTest, CapacityOnePingPong) {
  // Capacity 1 forces strict hand-offs: every push waits for the previous
  // item to be consumed, exercising space_cv_ on each iteration.
  constexpr int kRounds = 20000;
  BoundedQueue<int> q(1);

  std::thread producer([&q] {
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(q.push(i));
    }
    q.close();
  });

  int expected = 0;
  while (auto item = q.pop()) {
    EXPECT_EQ(*item, expected);  // capacity 1 + one producer => strict order
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kRounds);
}

TEST(BoundedQueueTest, TryOpsUnderContention) {
  // Mixed blocking/non-blocking traffic: try_push/try_pop failures are legal
  // under contention, but successful hand-offs must conserve items.
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> q(4);
  std::atomic<int> pushed{0};
  std::atomic<int> popped{0};

  std::thread blocking_producer([&q, &pushed] {
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_TRUE(q.push(i));
      pushed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread try_producer([&q, &pushed] {
    for (int i = 0; i < kPerProducer; ++i) {
      if (q.try_push(i)) {
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread blocking_consumer([&q, &popped] {
    while (q.pop().has_value()) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread try_consumer([&q, &popped] {
    // Spin on try_pop until the blocking producer is known to be done and
    // the queue reads empty; residual items are the blocking consumer's.
    for (int i = 0; i < kPerProducer; ++i) {
      if (q.try_pop().has_value()) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  blocking_producer.join();
  try_producer.join();
  try_consumer.join();
  q.close();
  blocking_consumer.join();

  EXPECT_EQ(popped.load() + static_cast<int>(q.size()), pushed.load());
}

}  // namespace
}  // namespace hpd::rt
