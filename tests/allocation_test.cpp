// Proof of the ISSUE-5 allocation-free hot path: global operator new /
// delete are replaced with counting pass-throughs, and steady-state
// QueueEngine::offer() at n ≤ VectorClock::kInlineCapacity is shown to
// perform zero heap allocations — across the append fast path, the
// elimination cycle, and rejected (back-pressure) offers. VectorClock
// construction itself is also checked in both storage modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "detect/queue_engine.hpp"
#include "vc/vector_clock.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hpd::detect {
namespace {

/// Allocations performed while running `fn`.
template <typename Fn>
std::uint64_t allocations_during(Fn&& fn) {
  const std::uint64_t before = g_allocations.load();
  fn();
  return g_allocations.load() - before;
}

Interval make_interval(std::size_t n, ClockValue lo_base, ClockValue hi_base,
                       ProcessId origin, SeqNum seq) {
  Interval x;
  x.lo = VectorClock(n);
  x.hi = VectorClock(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.lo[i] = lo_base;
    x.hi[i] = hi_base;
  }
  x.origin = origin;
  x.seq = seq;
  return x;
}

TEST(AllocationTest, InlineClocksNeverTouchTheHeap) {
  const auto n = VectorClock::kInlineCapacity;
  EXPECT_EQ(allocations_during([&] {
              VectorClock a(n);
              VectorClock b = a;       // copy
              VectorClock c = std::move(b);
              c.tick(0);
              a.merge(c);
              (void)vc_less(a, c);
              (void)vc_leq(a, c);
              (void)compare(a, c);
              VectorClock d;
              d = a;                   // copy-assign into empty
              d = std::move(c);
            }),
            0u);
  // One past the capacity pays exactly one array allocation.
  EXPECT_EQ(allocations_during([&] { VectorClock big(n + 1); }), 1u);
}

TEST(AllocationTest, SteadyStateOfferIsAllocationFree) {
  const auto n = VectorClock::kInlineCapacity;  // 16: clocks stay inline
  QueueEngine eng;
  eng.add_queue(0);
  eng.add_queue(1);
  eng.add_queue(2);  // stays empty: no solutions form, heads stay resident

  // Warm-up: grow queue 0's ring well past the measured workload, run the
  // detection scratch (bitmaps) once, then drain queue 0 again by offering
  // a far-future head on queue 1 — each elimination round pops one stale
  // head until queue 0 is empty.
  for (int i = 0; i < 150; ++i) {
    (void)eng.offer(0, make_interval(n, 1, 2, 0, static_cast<SeqNum>(i)));
  }
  (void)eng.offer(1, make_interval(n, 100000, 100001, 1, 0));
  ASSERT_EQ(eng.queue_size(0), 0u);
  ASSERT_EQ(eng.eliminated(), 150u);
  // Re-seed queue 0 with a head compatible with queue 1's (queue 2 being
  // empty blocks any solution), so the measured offers below pure-append.
  (void)eng.offer(0, make_interval(n, 100000, 100001, 0, 1000));
  ASSERT_EQ(eng.queue_size(0), 1u);

  // ---- Steady state ----
  // Append path: queue non-empty, no detection triggered.
  for (int i = 0; i < 100; ++i) {
    const auto allocs = allocations_during([&] {
      Interval x = make_interval(n, 100002, 100003, 0,
                                 static_cast<SeqNum>(2000 + i));
      auto sols = eng.offer(0, std::move(x));
      ASSERT_TRUE(sols.empty());
    });
    EXPECT_EQ(allocs, 0u) << "append offer " << i;
  }

  // Elimination path: a fresh head on queue 1 whose lo is far ahead of the
  // other heads kills them (no solution forms; detect_loop runs for real).
  {
    QueueEngine fresh;
    fresh.add_queue(0);
    fresh.add_queue(1);
    // Warm both rings and scratch bitmaps.
    (void)fresh.offer(0, make_interval(n, 1, 2, 0, 0));
    (void)fresh.offer(1, make_interval(n, 1000, 1001, 1, 0));
    ClockValue far = 2000;
    for (int i = 0; i < 100; ++i) {
      // Queue 0 is empty again after each elimination: every offer triggers
      // a full detect cycle that eliminates the stale head.
      const auto allocs = allocations_during([&] {
        auto sols = fresh.offer(
            0, make_interval(n, far, far + 1, 0, static_cast<SeqNum>(i + 1)));
        ASSERT_TRUE(sols.empty());
      });
      EXPECT_EQ(allocs, 0u) << "eliminating offer " << i;
      // Re-arm queue 1 with a head the next far-future offer eliminates.
      // (Appends to an empty queue; detection finds queue 0's head is
      // behind and eliminates it, leaving queue 1 resident.)
      far += 1000;
      const auto rearm = allocations_during([&] {
        auto sols = fresh.offer(
            1, make_interval(n, far, far + 1, 1, static_cast<SeqNum>(i + 1)));
        ASSERT_TRUE(sols.empty());
      });
      EXPECT_EQ(rearm, 0u) << "re-arm offer " << i;
      far += 1000;
    }
    EXPECT_GT(fresh.eliminated(), 100u);  // the cycle really ran
  }

  // Back-pressure path: a full queue rejects without allocating.
  {
    QueueEngine bounded;
    bounded.add_queue(0);
    bounded.add_queue(1);
    bounded.set_capacity(4);
    for (int i = 0; i < 8; ++i) {
      (void)bounded.offer(0, make_interval(n, 1, 2, 0,
                                           static_cast<SeqNum>(i)));
    }
    const auto allocs = allocations_during([&] {
      auto sols = bounded.offer(0, make_interval(n, 50, 51, 0, 99));
      ASSERT_TRUE(sols.empty());
    });
    EXPECT_EQ(allocs, 0u);
    EXPECT_GT(bounded.rejected(), 0u);
  }
}

}  // namespace
}  // namespace hpd::detect
