#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "parallel/thread_pool.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd::parallel {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21; });
  auto f2 = pool.submit([] { return 2; });
  EXPECT_EQ(f1.get() * f2.get(), 42);
}

TEST(ThreadPoolTest, ParallelMapPreservesOrder) {
  ThreadPool pool(8);
  const auto out = parallel_map<std::size_t>(
      pool, 64, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { ++count; });
    }
  }  // join
  EXPECT_EQ(count.load(), 50);
}

// Shutdown-path regressions. submit() used to accept tasks after the
// destructor had flagged shutdown; with every worker already gone, the
// returned future never resolved and the caller hung forever. It now
// refuses loudly.
TEST(ThreadPoolShutdown, SubmitAfterShutdownThrows) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto pool = std::make_unique<ThreadPool>(1);
  // Park the sole worker so the destructor blocks in join() with
  // `stopping_` already set — the exact window where an accepted task's
  // future could never resolve.
  pool->submit([&] {
    started = true;
    while (!release) {
      std::this_thread::yield();
    }
  });
  while (!started) {
    std::this_thread::yield();
  }
  ThreadPool* raw = pool.get();  // reset() nulls the pointer before deleting
  std::thread destroyer([&] { pool.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_THROW(raw->submit([] { return 1; }), std::runtime_error);
  release = true;
  destroyer.join();
}

// parallel_for used to rethrow on the *first* failed future, abandoning the
// rest — while queued tasks still referenced the (caller-owned, possibly
// temporary) fn. All tasks must finish before the exception surfaces.
TEST(ThreadPoolShutdown, ParallelForDrainsBeforeRethrow) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [&](std::size_t i) {
                     if (i == 0) {
                       throw std::runtime_error("early failure");
                     }
                     std::this_thread::sleep_for(std::chrono::milliseconds(1));
                     ++completed;
                   }),
      std::runtime_error);
  // Every non-throwing task ran to completion before the rethrow returned.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolShutdown, ParallelMapDrainsBeforeRethrow) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_map<int>(pool, 32,
                                 [&](std::size_t i) -> int {
                                   if (i % 8 == 0) {
                                     throw std::runtime_error("boom");
                                   }
                                   ++completed;
                                   return static_cast<int>(i);
                                 }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 28);
}

TEST(ThreadPoolShutdown, RapidCreateDestroyStress) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { ++count; });
    }
    // Destructor must drain all 20 (DestructorDrainsQueue invariant) without
    // lost wakeups even when construction/destruction churns.
  }
  SUCCEED();
}

// Simulations fanned across threads are bit-identical to serial runs: the
// whole experiment state is per-run, so the sweep layer adds no
// nondeterminism.
TEST(ThreadPoolTest, ParallelSimulationsAreDeterministic) {
  auto make = [](std::uint64_t seed) {
    runner::ExperimentConfig cfg;
    cfg.tree = net::SpanningTree::balanced_dary(2, 3);
    cfg.topology = net::tree_topology(cfg.tree);
    trace::PulseConfig pc;
    pc.rounds = 5;
    pc.period = 60.0;
    pc.participation = 0.8;
    cfg.behavior_factory = [pc](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(pc);
    };
    cfg.horizon = 400.0;
    cfg.seed = seed;
    cfg.keep_occurrence_records = false;
    return cfg;
  };
  ThreadPool pool(8);
  const auto parallel_results = parallel_map<std::uint64_t>(
      pool, 16, [&](std::size_t i) {
        return runner::run_experiment(make(i)).metrics.msgs_total();
      });
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(parallel_results[i],
              runner::run_experiment(make(i)).metrics.msgs_total())
        << "seed " << i;
  }
}

}  // namespace
}  // namespace hpd::parallel
