#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "wire/delta_clock.hpp"

namespace hpd::wire {
namespace {

TEST(DeltaClockTest, FirstClockIsFull) {
  DeltaClockEncoder enc(3);
  DeltaClockDecoder dec(3);
  const VectorClock vc{1, 2, 3};
  const auto bytes = enc.encode(vc);
  EXPECT_EQ(bytes[0], 0);  // full
  EXPECT_EQ(dec.decode(bytes), vc);
  EXPECT_EQ(enc.full_clocks_sent(), 1u);
}

TEST(DeltaClockTest, DeltasTrackChanges) {
  DeltaClockEncoder enc(4);
  DeltaClockDecoder dec(4);
  VectorClock vc{1, 0, 0, 0};
  dec.decode(enc.encode(vc));
  vc[0] = 2;
  vc[3] = 7;
  const auto bytes = enc.encode(vc);
  EXPECT_EQ(bytes[0], 1);  // delta
  EXPECT_EQ(dec.decode(bytes), vc);
  // Unchanged clock: empty delta, 2 bytes (kind + count).
  const auto empty = enc.encode(vc);
  EXPECT_EQ(empty.size(), 2u);
  EXPECT_EQ(dec.decode(empty), vc);
}

TEST(DeltaClockTest, StreamRoundTripRandomWalk) {
  Rng rng(42);
  const std::size_t n = 64;
  DeltaClockEncoder enc(n, 16);
  DeltaClockDecoder dec(n);
  VectorClock vc(n);
  for (int step = 0; step < 300; ++step) {
    // A few components advance per message (a realistic stamp stream).
    const std::size_t changes = rng.uniform_index(4);
    for (std::size_t c = 0; c < changes; ++c) {
      vc[rng.uniform_index(n)] +=
          static_cast<ClockValue>(rng.uniform_int(1, 5));
    }
    ASSERT_EQ(dec.decode(enc.encode(vc)), vc) << "step " << step;
  }
  EXPECT_GE(enc.full_clocks_sent(), 300u / 16u);
}

TEST(DeltaClockTest, CompressionBeatsFullEncodingOnSparseChanges) {
  Rng rng(7);
  const std::size_t n = 256;
  DeltaClockEncoder delta(n, 0);  // no resync, best case
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) {
    vc[i] = static_cast<ClockValue>(rng.uniform_int(100, 1000));
  }
  std::uint64_t full_bytes = 0;
  for (int step = 0; step < 100; ++step) {
    vc[rng.uniform_index(n)] += 1;
    vc[rng.uniform_index(n)] += 2;
    (void)delta.encode(vc);
    Encoder full;
    full.put_clock(vc);
    full_bytes += full.bytes().size();
  }
  // Two changed components per message: deltas should be >20x smaller.
  EXPECT_LT(delta.bytes_emitted() * 20, full_bytes);
}

TEST(DeltaClockTest, MonotonicityEnforced) {
  DeltaClockEncoder enc(2);
  enc.encode(VectorClock{3, 3});
  EXPECT_THROW(enc.encode(VectorClock{2, 3}), AssertionError);
}

TEST(DeltaClockTest, DecoderRejectsDeltaBeforeFull) {
  DeltaClockEncoder enc(2);
  DeltaClockDecoder dec(2);
  enc.encode(VectorClock{1, 1});               // full, not given to dec
  const auto delta = enc.encode(VectorClock{2, 1});
  EXPECT_THROW(dec.decode(delta), DecodeError);
}

TEST(DeltaClockTest, DecoderRejectsMalformedDeltas) {
  DeltaClockDecoder dec(3);
  {
    Encoder e;  // full clock of the wrong size
    e.put_u8(0);
    e.put_clock(VectorClock{1, 2});
    EXPECT_THROW(dec.decode(e.bytes()), DecodeError);
  }
  {
    Encoder e;
    e.put_u8(0);
    e.put_clock(VectorClock{1, 2, 3});
    dec.decode(e.bytes());  // prime the state
  }
  {
    Encoder e;  // index out of range
    e.put_u8(1);
    e.put_varint(1);
    e.put_varint(9);  // first gap → index 8
    e.put_varint(5);
    EXPECT_THROW(dec.decode(e.bytes()), DecodeError);
  }
  {
    Encoder e;  // component going backwards
    e.put_u8(1);
    e.put_varint(1);
    e.put_varint(3);  // index 2 (current value 3)
    e.put_varint(1);
    EXPECT_THROW(dec.decode(e.bytes()), DecodeError);
  }
  {
    Encoder e;  // zero gap between indices
    e.put_u8(1);
    e.put_varint(2);
    e.put_varint(1);
    e.put_varint(9);
    e.put_varint(0);
    e.put_varint(9);
    EXPECT_THROW(dec.decode(e.bytes()), DecodeError);
  }
  {
    Encoder e;  // unknown kind
    e.put_u8(7);
    EXPECT_THROW(dec.decode(e.bytes()), DecodeError);
  }
}

TEST(DeltaClockTest, PeriodicResyncRecoversALostDecoder) {
  // A decoder that joined late (missed earlier messages) recovers at the
  // next full clock — the reason resync_every exists.
  DeltaClockEncoder enc(3, 4);
  DeltaClockDecoder late(3);
  VectorClock vc{1, 1, 1};
  std::vector<std::vector<std::uint8_t>> stream;
  for (int i = 0; i < 10; ++i) {
    vc[0] += 1;
    stream.push_back(enc.encode(vc));
  }
  // Skip ahead to the next full clock in the stream and resume from there.
  std::size_t first_full = 1;
  while (first_full < stream.size() && stream[first_full][0] != 0) {
    ++first_full;
  }
  ASSERT_LT(first_full, stream.size());
  VectorClock got;
  for (std::size_t i = first_full; i < stream.size(); ++i) {
    got = late.decode(stream[i]);
  }
  EXPECT_EQ(got, vc);
}

}  // namespace
}  // namespace hpd::wire
