// FROZEN SEED SNAPSHOT — do not optimize. This is the pre-PR (ISSUE 5)
// implementation, kept verbatim under hpd::reference as the ground truth
// for the differential property tests and the bench_micro baseline kernels.
// Vector clocks (Mattern / Fidge) and the happened-before partial order.
//
// A VectorClock V at process Pi satisfies: V[j] = number of events of Pj
// that causally precede (or equal, for j == i) Pi's current state. The
// paper's update rules (Section II-A) are implemented by tick() / merge().
//
// Component-wise min / max ("meet" and "join" of cuts) implement the
// aggregation operator of the paper's Eqs. (5) and (6).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hpd::reference {

/// Relationship of two vector timestamps under happened-before.
enum class Ordering {
  kEqual,       ///< identical vectors
  kBefore,      ///< a < b : a happened-before b
  kAfter,       ///< a > b : b happened-before a
  kConcurrent,  ///< a || b : incomparable
};

const char* to_string(Ordering o);

class VectorClock {
 public:
  /// Empty clock (size 0). Useful as a "not yet assigned" placeholder.
  VectorClock() = default;

  /// Zero clock for a system of n processes.
  explicit VectorClock(std::size_t n) : comp_(n, 0) {}

  /// Clock with explicit components, mostly for tests and scripted scenarios.
  VectorClock(std::initializer_list<ClockValue> values) : comp_(values) {}

  static VectorClock zero(std::size_t n) { return VectorClock(n); }

  std::size_t size() const { return comp_.size(); }
  bool empty() const { return comp_.empty(); }

  ClockValue operator[](std::size_t i) const {
    HPD_DASSERT(i < comp_.size(), "VectorClock: component out of range");
    return comp_[i];
  }
  ClockValue& operator[](std::size_t i) {
    HPD_DASSERT(i < comp_.size(), "VectorClock: component out of range");
    return comp_[i];
  }

  /// Rule 1/2 of the paper: advance the local component before an event.
  void tick(ProcessId self) {
    HPD_DASSERT(self >= 0 && static_cast<std::size_t>(self) < comp_.size(),
                "VectorClock::tick: bad process id");
    ++comp_[static_cast<std::size_t>(self)];
  }

  /// Rule 3 of the paper (receive): component-wise max with the message
  /// timestamp. The caller then ticks the local component.
  void merge(const VectorClock& other);

  /// Sum of all components — a cheap total "amount of causality" measure,
  /// used only by diagnostics.
  std::uint64_t total() const;

  /// Number of ClockValue words a timestamp occupies on the wire. Used by
  /// the metrics layer to account message sizes in O(n) units.
  std::size_t wire_size() const { return comp_.size(); }

  std::string to_string() const;

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    return a.comp_ == b.comp_;
  }
  friend bool operator!=(const VectorClock& a, const VectorClock& b) {
    return !(a == b);
  }

 private:
  std::vector<ClockValue> comp_;
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

/// Full comparison under the happened-before partial order.
/// Requires a.size() == b.size() and both non-empty.
Ordering compare(const VectorClock& a, const VectorClock& b);

/// a < b : every component of a is <= the matching component of b and at
/// least one is strictly smaller. This is the paper's "<" on timestamps
/// (equivalently Lamport's happened-before on the underlying events/cuts).
bool vc_less(const VectorClock& a, const VectorClock& b);

/// a <= b component-wise (a < b or a == b).
bool vc_leq(const VectorClock& a, const VectorClock& b);

/// Incomparable under happened-before.
bool vc_concurrent(const VectorClock& a, const VectorClock& b);

/// Component-wise maximum (join of two cuts).
VectorClock component_max(const VectorClock& a, const VectorClock& b);

/// Component-wise minimum (meet of two cuts).
VectorClock component_min(const VectorClock& a, const VectorClock& b);

}  // namespace hpd::reference
