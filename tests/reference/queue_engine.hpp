// FROZEN SEED SNAPSHOT — do not optimize. This is the pre-PR (ISSUE 5)
// implementation, kept verbatim under hpd::reference as the ground truth
// for the differential property tests and the bench_micro baseline kernels.
// The queue-based Definitely(Φ) detection engine — the computational core of
// the paper's Algorithm 1 and of the centralized baseline [12].
//
// The engine maintains one FIFO queue of intervals per source (the node's
// own intervals plus one queue per child for the hierarchical algorithm;
// one queue per process for the centralized sink). Offering an interval
// triggers the elimination / detection / pruning cycle:
//
//   1. Elimination fixpoint (Algorithm 1, lines 4–17): repeatedly compare
//      updated queue heads pairwise; a head y with min(x) ≮ max(y) can never
//      pair with x or any successor of x (timestamps only grow), so y is
//      deleted. Deleted heads expose new heads, which join the next round.
//   2. Solution (lines 18–22): at a fixpoint, if every queue is non-empty
//      the heads are pairwise compatible and form a solution set.
//   3. Pruning for repeated detection (lines 23–33, Eq. (10)): every head
//      whose max is not dominated (no other head with strictly smaller max)
//      is removed — Theorem 3 shows this is safe, Theorem 4 that at least
//      one head is removed. The pruned queues seed the next fixpoint round,
//      so several solutions can emerge from a single offer.
//
// Structural note: the paper's listing places the solution check inside the
// elimination loop; a solution is only sound at a fixpoint (heads exposed by
// a deletion have not been compared yet), so we restructure as fixpoint →
// check → prune → repeat. Pruning uses the exact partial-order test
// max(x_j) ≮ max(x_i); the listing's component-wise loop (line 27) misses
// the equal-vectors corner case.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "reference/interval.hpp"

namespace hpd::reference::detect {

/// A solution set found by the engine: a snapshot of all queue heads at the
/// moment of detection, in ascending queue-key order.
struct Solution {
  std::vector<Interval> members;
};

class QueueEngine {
 public:
  enum class PruneMode {
    kAllEq10,     ///< remove every head satisfying Eq. (10) — the paper
    kSingleEq10,  ///< remove only the first such head (ablation A4)
    /// Deliberately broken rule for fault-injection testing ONLY: after a
    /// solution, prune *every* head, including those Eq. (10) would keep
    /// because another head's smaller max proves they can still combine
    /// with a successor. Over-pruning silently loses later solutions; the
    /// model checker's differential oracles must detect and shrink it.
    /// Never use outside tests.
    kTestBrokenPruneAll,
  };

  explicit QueueEngine(PruneMode mode = PruneMode::kAllEq10) : mode_(mode) {}

  /// Resource-constrained mode: bound each queue to `max_per_queue`
  /// intervals (0 = unbounded, the default). A full queue rejects new
  /// offers (back-pressure: the in-queue order and the succ() invariant are
  /// preserved; the cost is missed occurrences, quantified by
  /// bench_capacity). Rejected offers are counted.
  void set_capacity(std::size_t max_per_queue) { capacity_ = max_per_queue; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t rejected() const { return rejected_; }

  // ---- Queue management --------------------------------------------------

  void add_queue(ProcessId key);

  /// Remove a queue and everything in it (child failed). Call recheck()
  /// afterwards: dropping the blocking queue may complete a solution.
  void remove_queue(ProcessId key);

  bool has_queue(ProcessId key) const { return queues_.count(key) != 0; }
  std::size_t num_queues() const { return queues_.size(); }
  std::size_t queue_size(ProcessId key) const;

  /// All queue keys, ascending.
  std::vector<ProcessId> keys() const;

  /// Drop a queue's contents (and its remembered pruned head) without
  /// removing the queue itself — crash-recovery state reset.
  void clear_queue(ProcessId key);

  // ---- Detection ---------------------------------------------------------

  /// Offer an interval to queue `key` (which must exist). Intervals from
  /// one key must arrive in succ() order (see ReorderBuffer). Returns the
  /// solutions detected, in detection order.
  std::vector<Solution> offer(ProcessId key, Interval x);

  /// Re-run detection after structural changes (queue removal).
  std::vector<Solution> recheck();

  /// Restore each queue's most recently *pruned* head (Section III-F
  /// support). Pruning-safety (Theorem 3) is proven for a fixed queue set;
  /// when the detection scope grows — the node gains a child after a tree
  /// repair — the last pruned interval may legitimately belong to a
  /// solution of the enlarged subtree (the paper's Fig. 2(c) expects
  /// exactly this: P4's own x5 must still combine with P2's {x1, x3}
  /// aggregate after P4 becomes the new root). Restored intervals go back
  /// to the queue front; each is restored at most once.
  void restore_pruned();

  // ---- Statistics (the paper's complexity units) --------------------------

  /// Vector-timestamp comparisons performed (time-complexity unit).
  std::uint64_t comparisons() const { return comparisons_; }
  /// Intervals currently stored.
  std::size_t stored() const { return stored_; }
  /// Peak simultaneous storage (space-complexity unit).
  std::size_t stored_peak() const { return stored_peak_; }
  /// Heads deleted by the elimination fixpoint.
  std::uint64_t eliminated() const { return eliminated_; }
  /// Heads deleted by Eq. (10) pruning.
  std::uint64_t pruned() const { return pruned_; }
  /// Solutions found over the engine's lifetime.
  std::uint64_t solutions_found() const { return solutions_found_; }
  /// Intervals ever offered (enqueued) to this engine.
  std::uint64_t offered() const { return offered_; }

  /// Self-check of the engine's core invariant: outside of a detect cycle,
  /// the current queue heads are pairwise compatible (every incompatibility
  /// is resolved the moment it becomes observable). Returns true if the
  /// invariant holds; O(q²·n). Test/debug instrumentation.
  bool heads_compatible() const;

 private:
  bool vc_less_counted(const VectorClock& a, const VectorClock& b);
  bool vc_leq_counted(const VectorClock& a, const VectorClock& b);
  bool all_queues_nonempty() const;
  void pop_head(ProcessId key);

  /// The detection cycle, seeded with the queues whose heads changed.
  std::vector<Solution> detect_loop(std::set<ProcessId> updated);

  std::map<ProcessId, std::deque<Interval>> queues_;
  std::map<ProcessId, Interval> last_pruned_;
  PruneMode mode_;
  std::size_t capacity_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t comparisons_ = 0;
  std::size_t stored_ = 0;
  std::size_t stored_peak_ = 0;
  std::uint64_t eliminated_ = 0;
  std::uint64_t pruned_ = 0;
  std::uint64_t solutions_found_ = 0;
  std::uint64_t offered_ = 0;
};

}  // namespace hpd::reference::detect
