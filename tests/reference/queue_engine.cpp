// FROZEN SEED SNAPSHOT — do not optimize. This is the pre-PR (ISSUE 5)
// implementation, kept verbatim under hpd::reference as the ground truth
// for the differential property tests and the bench_micro baseline kernels.
#include "reference/queue_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hpd::reference::detect {

void QueueEngine::add_queue(ProcessId key) {
  HPD_REQUIRE(queues_.count(key) == 0, "QueueEngine: queue already exists");
  queues_.emplace(key, std::deque<Interval>{});
}

void QueueEngine::remove_queue(ProcessId key) {
  auto it = queues_.find(key);
  HPD_REQUIRE(it != queues_.end(), "QueueEngine: removing unknown queue");
  stored_ -= it->second.size();
  queues_.erase(it);
  last_pruned_.erase(key);
}

void QueueEngine::restore_pruned() {
  for (auto& [key, interval] : last_pruned_) {
    auto it = queues_.find(key);
    if (it != queues_.end()) {
      it->second.push_front(std::move(interval));
      ++stored_;
      stored_peak_ = std::max(stored_peak_, stored_);
    }
  }
  last_pruned_.clear();
}

std::size_t QueueEngine::queue_size(ProcessId key) const {
  auto it = queues_.find(key);
  HPD_REQUIRE(it != queues_.end(), "QueueEngine: unknown queue");
  return it->second.size();
}

std::vector<ProcessId> QueueEngine::keys() const {
  std::vector<ProcessId> out;
  out.reserve(queues_.size());
  for (const auto& [key, q] : queues_) {
    out.push_back(key);
  }
  return out;
}

void QueueEngine::clear_queue(ProcessId key) {
  auto it = queues_.find(key);
  HPD_REQUIRE(it != queues_.end(), "QueueEngine: unknown queue");
  stored_ -= it->second.size();
  it->second.clear();
  last_pruned_.erase(key);
}

bool QueueEngine::vc_less_counted(const VectorClock& a, const VectorClock& b) {
  ++comparisons_;
  return vc_less(a, b);
}

bool QueueEngine::vc_leq_counted(const VectorClock& a, const VectorClock& b) {
  ++comparisons_;
  return vc_leq(a, b);
}

bool QueueEngine::all_queues_nonempty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& kv) { return !kv.second.empty(); });
}

bool QueueEngine::heads_compatible() const {
  for (const auto& [a, qa] : queues_) {
    if (qa.empty()) {
      continue;
    }
    for (const auto& [b, qb] : queues_) {
      if (b == a || qb.empty()) {
        continue;
      }
      if (!vc_leq(qa.front().lo, qb.front().hi)) {
        return false;
      }
    }
  }
  return true;
}

void QueueEngine::pop_head(ProcessId key) {
  auto& q = queues_.at(key);
  HPD_DASSERT(!q.empty(), "QueueEngine::pop_head: empty queue");
  q.pop_front();
  --stored_;
}

std::vector<Solution> QueueEngine::offer(ProcessId key, Interval x) {
  auto it = queues_.find(key);
  HPD_REQUIRE(it != queues_.end(), "QueueEngine::offer: unknown queue");
  if (capacity_ != 0 && it->second.size() >= capacity_) {
    ++rejected_;  // back-pressure: bounded node memory (see set_capacity)
    return {};
  }
  const bool was_empty = it->second.empty();
  it->second.push_back(std::move(x));
  ++offered_;
  ++stored_;
  stored_peak_ = std::max(stored_peak_, stored_);
  if (!was_empty) {
    // Algorithm 1, line 2: only a new head can enable progress.
    return {};
  }
  return detect_loop({key});
}

std::vector<Solution> QueueEngine::recheck() {
  std::set<ProcessId> updated;
  for (const auto& [key, q] : queues_) {
    if (!q.empty()) {
      updated.insert(key);
    }
  }
  if (updated.empty()) {
    return {};
  }
  return detect_loop(std::move(updated));
}

std::vector<Solution> QueueEngine::detect_loop(std::set<ProcessId> updated) {
  std::vector<Solution> solutions;
  while (!updated.empty()) {
    // ---- One elimination round (lines 5–17) ----
    std::set<ProcessId> new_updated;
    for (const ProcessId a : updated) {
      const auto qa = queues_.find(a);
      if (qa == queues_.end() || qa->second.empty()) {
        continue;
      }
      const Interval& x = qa->second.front();
      for (const auto& [b, qb] : queues_) {
        if (b == a || qb.empty()) {
          continue;
        }
        const Interval& y = qb.front();
        // Non-strict comparison: raw event timestamps from different
        // processes are never equal (so this matches the paper's strict
        // test exactly), while aggregated cuts may legitimately coincide
        // (see overlap_cuts in interval/interval.hpp).
        if (!vc_leq_counted(x.lo, y.hi)) {
          // y can never pair with x or any successor of x: delete y.
          new_updated.insert(b);
        }
        if (!vc_leq_counted(y.lo, x.hi)) {
          new_updated.insert(a);
        }
      }
    }
    if (!new_updated.empty()) {
      for (const ProcessId c : new_updated) {
        if (!queues_.at(c).empty()) {
          pop_head(c);
          ++eliminated_;
        }
      }
      updated = std::move(new_updated);
      continue;
    }

    // ---- Fixpoint reached: solution check (lines 18–22) ----
    if (!all_queues_nonempty()) {
      break;
    }
    Solution sol;
    sol.members.reserve(queues_.size());
    for (const auto& [key, q] : queues_) {
      sol.members.push_back(q.front());
    }
    solutions.push_back(sol);
    ++solutions_found_;

    // ---- Pruning for repeated detection (lines 23–33, Eq. (10)) ----
    std::set<ProcessId> prune_set;
    for (const auto& [a, qa2] : queues_) {
      bool removable = true;
      if (mode_ != PruneMode::kTestBrokenPruneAll) {
        for (const auto& [b, qb2] : queues_) {
          if (b == a) {
            continue;
          }
          if (vc_less_counted(qb2.front().hi, qa2.front().hi)) {
            removable = false;  // Eq. (10) fails: some max(x_b) < max(x_a)
            break;
          }
        }
      }
      if (removable) {
        prune_set.insert(a);
        if (mode_ == PruneMode::kSingleEq10) {
          break;
        }
      }
    }
    // Theorem 4 (liveness): at least one head always satisfies Eq. (10).
    HPD_ASSERT(!prune_set.empty(),
               "QueueEngine: Eq.(10) pruned nothing (violates Theorem 4)");
    for (const ProcessId c : prune_set) {
      last_pruned_[c] = queues_.at(c).front();
      pop_head(c);
      ++pruned_;
    }
    updated = std::move(prune_set);
  }
  return solutions;
}

}  // namespace hpd::reference::detect
