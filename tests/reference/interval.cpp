// FROZEN SEED SNAPSHOT — do not optimize. This is the pre-PR (ISSUE 5)
// implementation, kept verbatim under hpd::reference as the ground truth
// for the differential property tests and the bench_micro baseline kernels.
#include "reference/interval.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace hpd::reference {

std::string Interval::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& x) {
  os << (x.aggregated ? "agg" : "int") << "[P" << x.origin << "#" << x.seq
     << " lo=" << x.lo << " hi=" << x.hi << " w=" << x.weight << ']';
  return os;
}

bool overlap(const Interval& x, const Interval& y) {
  return vc_less(x.lo, y.hi) && vc_less(y.lo, x.hi);
}

bool overlap(std::span<const Interval> xs) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (i != j && !vc_less(xs[i].lo, xs[j].hi)) {
        return false;
      }
    }
  }
  return true;
}

bool overlap_cuts(const Interval& x, const Interval& y) {
  return vc_leq(x.lo, y.hi) && vc_leq(y.lo, x.hi);
}

Interval aggregate(std::span<const Interval> xs, ProcessId origin, SeqNum seq) {
  HPD_REQUIRE(!xs.empty(), "aggregate: empty interval set");
  Interval out;
  out.lo = xs.front().lo;
  out.hi = xs.front().hi;
  out.weight = 0;
  bool all_provenance = true;
  for (const Interval& x : xs) {
    out.weight += x.weight;
    out.completed_at = std::max(out.completed_at, x.completed_at);
    all_provenance = all_provenance && (x.provenance != nullptr);
  }
  for (std::size_t k = 1; k < xs.size(); ++k) {
    out.lo = component_max(out.lo, xs[k].lo);  // Eq. (5)
    out.hi = component_min(out.hi, xs[k].hi);  // Eq. (6)
  }
  out.origin = origin;
  out.seq = seq;
  out.aggregated = true;
  if (all_provenance) {
    auto prov = std::make_shared<Provenance>();
    prov->origin = origin;
    prov->seq = seq;
    prov->parts.reserve(xs.size());
    for (const Interval& x : xs) {
      prov->parts.push_back(x.provenance);
    }
    out.provenance = std::move(prov);
  }
  return out;
}

Interval aggregate(const Interval& a, const Interval& b, ProcessId origin,
                   SeqNum seq) {
  const Interval xs[] = {a, b};
  return aggregate(std::span<const Interval>(xs, 2), origin, seq);
}

bool is_successor(const Interval& x, const Interval& y) {
  return x.origin == y.origin && vc_less(x.hi, y.lo);
}

namespace {

void collect_bases(const Provenance& p,
                   std::vector<std::pair<ProcessId, SeqNum>>& out) {
  if (p.parts.empty()) {
    out.emplace_back(p.origin, p.seq);
    return;
  }
  for (const auto& part : p.parts) {
    if (part != nullptr) {
      collect_bases(*part, out);
    }
  }
}

}  // namespace

std::vector<std::pair<ProcessId, SeqNum>> base_intervals(const Interval& x) {
  std::vector<std::pair<ProcessId, SeqNum>> out;
  if (x.provenance != nullptr) {
    collect_bases(*x.provenance, out);
    std::sort(out.begin(), out.end());
  }
  return out;
}

void attach_base_provenance(Interval& x) {
  auto prov = std::make_shared<Provenance>();
  prov->origin = x.origin;
  prov->seq = x.seq;
  x.provenance = std::move(prov);
}

}  // namespace hpd::reference
