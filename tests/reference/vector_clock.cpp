// FROZEN SEED SNAPSHOT — do not optimize. This is the pre-PR (ISSUE 5)
// implementation, kept verbatim under hpd::reference as the ground truth
// for the differential property tests and the bench_micro baseline kernels.
#include "reference/vector_clock.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <sstream>

namespace hpd::reference {

const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kEqual:
      return "equal";
    case Ordering::kBefore:
      return "before";
    case Ordering::kAfter:
      return "after";
    case Ordering::kConcurrent:
      return "concurrent";
  }
  return "?";
}

void VectorClock::merge(const VectorClock& other) {
  HPD_REQUIRE(comp_.size() == other.comp_.size(),
              "VectorClock::merge: size mismatch");
  for (std::size_t i = 0; i < comp_.size(); ++i) {
    comp_[i] = std::max(comp_[i], other.comp_[i]);
  }
}

std::uint64_t VectorClock::total() const {
  return std::accumulate(comp_.begin(), comp_.end(), std::uint64_t{0});
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '(';
  for (std::size_t i = 0; i < vc.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << vc[i];
  }
  os << ')';
  return os;
}

Ordering compare(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size() && !a.empty(),
              "compare: clocks must be non-empty and of equal size");
  bool some_less = false;
  bool some_greater = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      some_less = true;
    } else if (a[i] > b[i]) {
      some_greater = true;
    }
    if (some_less && some_greater) {
      return Ordering::kConcurrent;
    }
  }
  if (some_less) {
    return Ordering::kBefore;
  }
  if (some_greater) {
    return Ordering::kAfter;
  }
  return Ordering::kEqual;
}

bool vc_less(const VectorClock& a, const VectorClock& b) {
  return compare(a, b) == Ordering::kBefore;
}

bool vc_leq(const VectorClock& a, const VectorClock& b) {
  const Ordering o = compare(a, b);
  return o == Ordering::kBefore || o == Ordering::kEqual;
}

bool vc_concurrent(const VectorClock& a, const VectorClock& b) {
  return compare(a, b) == Ordering::kConcurrent;
}

VectorClock component_max(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size(), "component_max: size mismatch");
  VectorClock out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = std::max(a[i], b[i]);
  }
  return out;
}

VectorClock component_min(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size(), "component_min: size mismatch");
  VectorClock out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = std::min(a[i], b[i]);
  }
  return out;
}

}  // namespace hpd::reference
