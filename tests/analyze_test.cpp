// Proves every hpd_analyze rule live against the fixture trees under
// tests/data/analyze/: the bad tree must fire blocking-reachability (via a
// helper *outside* the reactor directory, reached only transitively),
// lock-order-cycle (two mutexes, split across translation units), and
// unchecked-status — each pinned to file and line; the clean twin and the
// real tree must come back empty. Exercises the CLI surface CI uses:
// --root/--rules/--strict/--dump-callgraph and exit codes 0/1/2.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>

#include "analysis/callgraph.hpp"
#include "analysis/source_index.hpp"

namespace {

using hpd::analysis::BodyEvent;
using hpd::analysis::SourceIndex;

// Paths are injected by tests/CMakeLists.txt.
const std::string kAnalyzeBin = HPD_ANALYZE_BIN;
const std::string kDataDir = HPD_ANALYZE_DATA;
const std::string kRepoRoot = HPD_REPO_ROOT;

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_analyze(const std::string& args) {
  const std::string cmd = kAnalyzeBin + " " + args + " 2>/dev/null";
  RunResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return r;
  }
  std::array<char, 4096> buf{};
  std::size_t k = 0;
  while ((k = ::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), k);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  }
  return r;
}

std::string bad_args() {
  return "--root " + kDataDir + "/bad --rules " + kDataDir + "/bad/rules.txt";
}

TEST(AnalyzeTest, BadTreeFiresEveryRule) {
  const RunResult r = run_analyze(bad_args());
  EXPECT_EQ(r.exit_code, 1) << r.out;

  // Blocking call reached only transitively, through a helper that lives
  // outside the reactor directory — the case file-local linting cannot see.
  EXPECT_NE(r.out.find("src/common/helper.cpp:6: blocking-reachability"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("demo::EventLoop::run -> demo::helpers::pump -> "
                       "demo::helpers::wait_ready -> ::poll()"),
            std::string::npos)
      << r.out;

  // Two-mutex cycle split across translation units, both sites named.
  EXPECT_NE(r.out.find("src/store/store_a.cpp:12: lock-order-cycle"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("mu_a -> mu_b -> mu_a"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("mu_b before mu_a at src/store/store_b.cpp:10"),
            std::string::npos)
      << r.out;

  EXPECT_NE(r.out.find("src/io/teardown.cpp:9: unchecked-status"),
            std::string::npos)
      << r.out;
}

TEST(AnalyzeTest, CleanFixtureIsStrictClean) {
  // The clean twin passes even with --strict: its one allow entry (the
  // deliberately-blocking pace() barrier) is used.
  const RunResult r = run_analyze("--root " + kDataDir + "/clean --rules " +
                                  kDataDir + "/clean/rules.txt --strict");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.out, "");
}

TEST(AnalyzeTest, UnusedAllowEntryFailsOnlyUnderStrict) {
  const std::string args = "--root " + kDataDir + "/clean --rules " +
                           kDataDir + "/unused_allow.txt";
  EXPECT_EQ(run_analyze(args).exit_code, 0);
  EXPECT_EQ(run_analyze(args + " --strict").exit_code, 1);
}

TEST(AnalyzeTest, MalformedRulesFileIsFatal) {
  const RunResult r = run_analyze("--root " + kDataDir + "/clean --rules " +
                                  kDataDir + "/malformed_rules.txt");
  EXPECT_EQ(r.exit_code, 2) << r.out;
}

TEST(AnalyzeTest, DumpCallgraphShowsIndexAndResolution) {
  const RunResult r = run_analyze(bad_args() + " --dump-callgraph");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  // Function recovery with qualified names and resolved vs external calls.
  EXPECT_NE(r.out.find("fn demo::EventLoop::run"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("call 6 ::poll [discarded] -> <external>"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("call 14 helpers::pump"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("-> demo::helpers::pump"), std::string::npos) << r.out;
  // Lock events carry the canonical cross-TU mutex identity.
  EXPECT_NE(r.out.find("lock 11 mu_a"), std::string::npos) << r.out;
}

TEST(AnalyzeTest, RealTreeIsClean) {
  // The canonical gate: src/ plus the shipped rules file must analyze
  // clean with every allowlist entry earning its keep.
  const RunResult r = run_analyze("--root " + kRepoRoot + " --strict");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.out, "");
}

// ---- indexer unit tests (the library underneath the CLI) ------------------

TEST(SourceIndexTest, RecoversQualifiedFunctionsAndCalls) {
  SourceIndex idx;
  hpd::analysis::index_file("src/x.cpp",
                            "namespace a::b {\n"
                            "class C {\n"
                            " public:\n"
                            "  void m() { helper(1); }\n"
                            "};\n"
                            "void C::out() { obj_->run(); }\n"
                            "}  // namespace a::b\n",
                            idx);
  ASSERT_EQ(idx.functions.size(), 2u);
  EXPECT_EQ(idx.functions[0].qname, "a::b::C::m");
  EXPECT_EQ(idx.functions[0].enclosing_class, "C");
  ASSERT_EQ(idx.functions[0].events.size(), 1u);
  EXPECT_EQ(idx.functions[0].events[0].name, "helper");
  EXPECT_EQ(idx.functions[1].qname, "a::b::C::out");
  ASSERT_EQ(idx.functions[1].events.size(), 1u);
  EXPECT_TRUE(idx.functions[1].events[0].member);
  EXPECT_EQ(idx.functions[1].events[0].receiver, "obj_");
}

TEST(SourceIndexTest, LockEventsGetCanonicalIdentity) {
  SourceIndex idx;
  hpd::analysis::index_file("src/x.cpp",
                            "namespace n {\n"
                            "struct Q {\n"
                            "  void f() { MutexLock l(mutex_); }\n"
                            "  void g(Q* o) { MutexLock l(o->mutex_); }\n"
                            "  int mutex_;\n"
                            "};\n"
                            "}\n",
                            idx);
  ASSERT_EQ(idx.functions.size(), 2u);
  // Bare member: qualified by the enclosing class so same-named fields of
  // different classes stay distinct.
  EXPECT_EQ(idx.functions[0].events[0].name, "Q::mutex_");
  // Prefixed member: field identity, merging across instances and TUs.
  EXPECT_EQ(idx.functions[1].events[0].name, "mutex_");
  EXPECT_EQ(idx.functions[1].events[0].kind, BodyEvent::Kind::kLock);
}

TEST(SourceIndexTest, DiscardedResultDetection) {
  SourceIndex idx;
  hpd::analysis::index_file("src/x.cpp",
                            "void f(C* c) {\n"
                            "  c->flush();\n"
                            "  int rc = c->flush();\n"
                            "  (void)c->flush();\n"
                            "  if (c->flush()) { rc = 0; }\n"
                            "}\n",
                            idx);
  ASSERT_EQ(idx.functions.size(), 1u);
  int discarded = 0;
  for (const auto& ev : idx.functions[0].events) {
    discarded += ev.name == "flush" && ev.discarded ? 1 : 0;
  }
  EXPECT_EQ(discarded, 1);
  EXPECT_EQ(idx.functions[0].events[0].line, 2u);
  EXPECT_TRUE(idx.functions[0].events[0].discarded);
}

TEST(SourceIndexTest, BlankerHandlesRawStringsAndContinuations) {
  using hpd::analysis::blank_comments_and_strings;
  // Raw strings with encoding prefixes: the unescaped inner quote must not
  // terminate the literal early and leak `leak(` as code.
  const std::string raw = blank_comments_and_strings(
      "auto s = u8R\"(quote \" leak(1); )\";\nnext();\n");
  EXPECT_EQ(raw.find("leak"), std::string::npos) << raw;
  EXPECT_NE(raw.find("next();"), std::string::npos) << raw;
  // A `//` comment ending in a backslash splices onto the next physical
  // line — the continuation is still comment, not code.
  const std::string spliced = blank_comments_and_strings(
      "int a;  // hidden \\\nstill_comment();\nreal();\n");
  EXPECT_EQ(spliced.find("still_comment"), std::string::npos) << spliced;
  EXPECT_NE(spliced.find("real();"), std::string::npos) << spliced;
  // Newline count (and thus line numbers) must survive both.
  EXPECT_EQ(std::count(raw.begin(), raw.end(), '\n'), 2);
  EXPECT_EQ(std::count(spliced.begin(), spliced.end(), '\n'), 3);
}

TEST(CallGraphTest, TypedFieldReceiverResolvesPrecisely) {
  SourceIndex idx;
  hpd::analysis::index_file("src/x.cpp",
                            "struct A { void go() {} };\n"
                            "struct B { void go() {} };\n"
                            "struct H {\n"
                            "  A a_;\n"
                            "  std::vector<int> v_;\n"
                            "  void run() { a_.go(); v_.size(); }\n"
                            "};\n",
                            idx);
  const auto g = hpd::analysis::build_callgraph(idx);
  ASSERT_EQ(idx.functions.size(), 3u);
  const auto& run_targets = g.targets[2];
  ASSERT_EQ(run_targets.size(), 2u);
  // a_.go() binds to A::go only, not every `go` in the tree.
  ASSERT_EQ(run_targets[0].size(), 1u);
  EXPECT_EQ(idx.functions[run_targets[0][0]].qname, "A::go");
  // v_ is a foreign type: external, no in-tree candidates.
  EXPECT_TRUE(run_targets[1].empty());
}

TEST(AnalyzeTest, UsageErrors) {
  EXPECT_EQ(run_analyze("--root /nonexistent-hpd-analyze-root").exit_code, 2);
  EXPECT_EQ(run_analyze("--bogus-flag").exit_code, 2);
  EXPECT_EQ(run_analyze("--root " + kDataDir + "/bad --rules /nonexistent.txt")
                .exit_code,
            2);
}

}  // namespace
