// Unit tests for the workload behaviours, driven through a mock AppContext
// (no simulator): the pulse state machine's convergecast/broadcast logic,
// its stall watchdog and stale-round guard, and the gossip action mix.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "trace/gossip.hpp"
#include "trace/pulse.hpp"

namespace hpd::trace {
namespace {

struct MockApp {
  explicit MockApp(ProcessId self, std::size_t n)
      : core(self, n, [this](const Interval& x) { intervals.push_back(x); }) {
    ctx.self = self;
    ctx.core = &core;
    ctx.rng = &rng;
    ctx.topo = nullptr;
    ctx.parent = [this] { return parent; };
    ctx.children = [this] { return children; };
    ctx.send_app = [this](ProcessId dst, int subtype, SeqNum round) {
      sent.push_back({dst, subtype, round});
      (void)core.prepare_send(dst);
    };
    ctx.set_timer = [this](int tag, SimTime delay) {
      timers.push_back({tag, now + delay});
    };
    ctx.now = [this] { return now; };
  }

  struct Sent {
    ProcessId dst;
    int subtype;
    SeqNum round;
  };
  struct Timer {
    int tag;
    SimTime at;
  };

  AppCore core;
  Rng rng{42};
  AppContext ctx;
  ProcessId parent = kNoProcess;
  std::vector<ProcessId> children;
  std::vector<Interval> intervals;
  std::vector<Sent> sent;
  std::vector<Timer> timers;
  SimTime now = 0.0;
};

PulseConfig small_pulse() {
  PulseConfig pc;
  pc.rounds = 2;
  pc.start = 1.0;
  pc.period = 50.0;
  pc.jitter = 0.5;
  return pc;
}

TEST(PulseUnitTest, LeafSendsUpAtRoundStart) {
  MockApp app(3, 4);
  app.parent = 1;
  PulseBehavior pulse(small_pulse());
  pulse.on_start(app.ctx);
  ASSERT_EQ(app.timers.size(), 2u);  // one per round
  app.now = 1.2;
  pulse.on_timer(app.ctx, 0);
  EXPECT_TRUE(app.core.predicate());  // participation = 1.0
  ASSERT_EQ(app.sent.size(), 1u);
  EXPECT_EQ(app.sent[0].dst, 1);
  EXPECT_EQ(app.sent[0].subtype, PulseBehavior::kUp);
  EXPECT_EQ(app.sent[0].round, 0u);
  // Watchdog armed alongside participation.
  EXPECT_EQ(app.timers.back().tag, 2);  // rounds + round = 2 + 0
}

TEST(PulseUnitTest, InternalNodeWaitsForAllChildren) {
  MockApp app(1, 4);
  app.parent = 0;
  app.children = {2, 3};
  PulseBehavior pulse(small_pulse());
  pulse.on_start(app.ctx);
  app.now = 1.5;
  pulse.on_timer(app.ctx, 0);
  EXPECT_TRUE(app.sent.empty());  // gather incomplete
  pulse.on_app_message(app.ctx, 2, PulseBehavior::kUp, 0);
  EXPECT_TRUE(app.sent.empty());
  pulse.on_app_message(app.ctx, 3, PulseBehavior::kUp, 0);
  ASSERT_EQ(app.sent.size(), 1u);
  EXPECT_EQ(app.sent[0].dst, 0);
  EXPECT_EQ(app.sent[0].subtype, PulseBehavior::kUp);
}

TEST(PulseUnitTest, RootBroadcastsDownAndLowersPredicate) {
  MockApp app(0, 3);
  app.children = {1, 2};
  PulseBehavior pulse(small_pulse());
  pulse.on_start(app.ctx);
  app.now = 1.5;
  pulse.on_timer(app.ctx, 0);
  EXPECT_TRUE(app.core.predicate());
  pulse.on_app_message(app.ctx, 1, PulseBehavior::kUp, 0);
  pulse.on_app_message(app.ctx, 2, PulseBehavior::kUp, 0);
  // Gather complete: DOWN to both children, predicate lowered, interval out.
  ASSERT_EQ(app.sent.size(), 2u);
  EXPECT_EQ(app.sent[0].subtype, PulseBehavior::kDown);
  EXPECT_FALSE(app.core.predicate());
  ASSERT_EQ(app.intervals.size(), 1u);
}

TEST(PulseUnitTest, DownLowersOnlyParticipants) {
  MockApp app(2, 3);
  app.parent = 0;
  PulseConfig pc = small_pulse();
  pc.participation = 0.0;  // never participates
  PulseBehavior pulse(pc);
  pulse.on_start(app.ctx);
  app.now = 1.5;
  pulse.on_timer(app.ctx, 0);
  EXPECT_FALSE(app.core.predicate());
  pulse.on_app_message(app.ctx, 0, PulseBehavior::kDown, 0);
  EXPECT_TRUE(app.intervals.empty());  // nothing to close
}

TEST(PulseUnitTest, WatchdogClosesStalledRound) {
  MockApp app(2, 3);
  app.parent = 0;
  PulseBehavior pulse(small_pulse());
  pulse.on_start(app.ctx);
  app.now = 1.5;
  pulse.on_timer(app.ctx, 0);  // participates, UP sent, watchdog armed
  ASSERT_TRUE(app.core.predicate());
  // The DOWN never arrives; the watchdog (tag rounds + 0 = 2) fires.
  app.now = 51.5;
  pulse.on_timer(app.ctx, 2);
  EXPECT_FALSE(app.core.predicate());
  ASSERT_EQ(app.intervals.size(), 1u);
  // A late DOWN is then harmless.
  pulse.on_app_message(app.ctx, 0, PulseBehavior::kDown, 0);
  EXPECT_EQ(app.intervals.size(), 1u);
}

TEST(PulseUnitTest, StaleRoundAfterRevivalIsSkipped) {
  MockApp app(2, 3);
  app.parent = 0;
  PulseBehavior pulse(small_pulse());
  pulse.on_start(app.ctx);
  // Round 0's nominal time is 1.0; firing it at t = 60 (> nominal + period)
  // must do nothing — the round's wave is long gone.
  app.now = 60.0;
  pulse.on_timer(app.ctx, 0);
  EXPECT_FALSE(app.core.predicate());
  EXPECT_TRUE(app.sent.empty());
}

TEST(PulseUnitTest, TreeChangeReleasesWaitingRound) {
  MockApp app(1, 4);
  app.parent = 0;
  app.children = {2, 3};
  PulseBehavior pulse(small_pulse());
  pulse.on_start(app.ctx);
  app.now = 1.5;
  pulse.on_timer(app.ctx, 0);
  pulse.on_app_message(app.ctx, 2, PulseBehavior::kUp, 0);
  EXPECT_TRUE(app.sent.empty());  // still waiting for child 3
  // Child 3 dies; the runner shrinks the child set and notifies.
  app.children = {2};
  pulse.on_tree_changed(app.ctx);
  ASSERT_EQ(app.sent.size(), 1u);  // gather now complete
}

TEST(GossipUnitTest, RespectsIntervalBudgetAndHorizon) {
  MockApp app(0, 2);
  GossipConfig g;
  g.horizon = 1000.0;
  g.mean_gap = 1.0;
  g.p_send = 0.0;  // toggles and internals only
  g.p_toggle = 1.0;
  g.max_intervals = 3;
  GossipBehavior gossip(g);
  gossip.on_start(app.ctx);
  // Drive the action timer manually until the horizon.
  for (int step = 0; step < 500 && !app.timers.empty(); ++step) {
    const auto t = app.timers.back();
    app.timers.pop_back();
    app.now = t.at;
    if (app.now > g.horizon) {
      break;
    }
    gossip.on_timer(app.ctx, t.tag);
  }
  app.core.finalize();
  // The budget (p) caps the interval count.
  EXPECT_EQ(app.intervals.size(), 3u);
}

TEST(GossipUnitTest, SendOnlyMixProducesNoIntervals) {
  MockApp app(0, 2);
  net::Topology topo = net::Topology::complete(2);
  app.ctx.topo = &topo;
  GossipConfig g;
  g.horizon = 50.0;
  g.mean_gap = 1.0;
  g.p_send = 1.0;
  g.p_toggle = 0.0;
  GossipBehavior gossip(g);
  gossip.on_start(app.ctx);
  for (int step = 0; step < 100 && !app.timers.empty(); ++step) {
    const auto t = app.timers.back();
    app.timers.pop_back();
    app.now = t.at;
    if (app.now > g.horizon) {
      break;
    }
    gossip.on_timer(app.ctx, t.tag);
  }
  EXPECT_TRUE(app.intervals.empty());
  EXPECT_FALSE(app.sent.empty());
  for (const auto& s : app.sent) {
    EXPECT_EQ(s.dst, 1);  // the only neighbour
  }
}

}  // namespace
}  // namespace hpd::trace
