// Crash-consistency as a property: for a random execution, an arbitrary
// checkpoint cadence, and an arbitrary kill point, a detector that is
// killed, rebuilt in a fresh object, restored from its last checkpoint,
// and re-fed the stream from the checkpoint's consumed-events cursor must
// emit exactly the occurrence stream of a run that never crashed. Every
// image crosses the full container codec (encode_checkpoint_file →
// decode_checkpoint_file), and a slice of cases goes through a real
// CheckpointStore directory, so the property covers the bytes-on-disk
// path, not just in-memory snapshots. On failure a custom shrinker
// minimizes (event-prefix length, kill point) before reporting — the
// oracle-bound mc::shrink cannot express restore divergence.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/snapshot.hpp"
#include "common/rng.hpp"
#include "core/hier_engine.hpp"
#include "detect/centralized.hpp"
#include "detect/offline/replay.hpp"
#include "detect/slicing.hpp"
#include "tests/test_util.hpp"

namespace hpd::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr EngineKind kKinds[] = {EngineKind::kCentral, EngineKind::kSlicing,
                                 EngineKind::kHier};

const char* kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kCentral:
      return "central";
    case EngineKind::kSlicing:
      return "slicing";
    case EngineKind::kHier:
      return "hier";
  }
  return "?";
}

/// The daemon's uniform ingestion surface, rebuilt here so the test owns a
/// fresh-construct + restore lifecycle (tools/hpd_sim.cpp has the
/// production twin; both route stream process 0 to the sink/root).
class Sink {
 public:
  Sink(EngineKind kind, std::size_t processes, std::vector<std::string>* out,
       const std::uint64_t* consumed)
      : kind_(kind) {
    // Mirrors the daemon's determinism invariant: occurrence time is the
    // logical stream position, so a restored run reproduces rows exactly.
    detect::OccurrenceCallback on_occ = [out,
                                         consumed](const auto& rec) {
      std::ostringstream row;
      row << *consumed << ',' << rec.detector << ',' << rec.index << ','
          << (rec.global ? 1 : 0) << ',' << rec.aggregate.weight;
      out->push_back(row.str());
    };
    auto now = [consumed] { return static_cast<SimTime>(*consumed); };
    std::vector<ProcessId> procs;
    for (std::size_t i = 0; i < processes; ++i) {
      procs.push_back(static_cast<ProcessId>(i));
    }
    switch (kind_) {
      case EngineKind::kCentral:
        central_ = std::make_unique<detect::CentralSink>(
            0, procs,
            detect::CentralSink::Hooks{std::move(on_occ), std::move(now)});
        break;
      case EngineKind::kSlicing:
        slicing_ = std::make_unique<detect::SlicingDetector>(
            0, procs,
            detect::SlicingDetector::Hooks{std::move(on_occ), std::move(now)});
        break;
      case EngineKind::kHier: {
        core::HierNodeEngine::Config c;
        c.self = 0;
        c.has_parent = false;
        core::HierNodeEngine::Hooks h;
        h.on_occurrence = std::move(on_occ);
        h.now = std::move(now);
        hier_ = std::make_unique<core::HierNodeEngine>(c, std::move(h));
        for (std::size_t j = 1; j < processes; ++j) {
          hier_->add_child(static_cast<ProcessId>(j), 1);
        }
        break;
      }
    }
  }

  void feed(const Interval& x) {
    switch (kind_) {
      case EngineKind::kCentral:
        x.origin == 0 ? central_->local_interval(x) : central_->report(x);
        break;
      case EngineKind::kSlicing:
        x.origin == 0 ? slicing_->local_interval(x) : slicing_->report(x);
        break;
      case EngineKind::kHier:
        x.origin == 0 ? hier_->local_interval(x)
                      : hier_->child_report(x.origin, x);
        break;
    }
  }

  DetectorImage image(std::uint64_t consumed) const {
    DetectorImage img;
    img.kind = kind_;
    img.consumed_events = consumed;
    switch (kind_) {
      case EngineKind::kCentral:
        img.central = central_->snapshot();
        break;
      case EngineKind::kSlicing:
        img.slicing = slicing_->snapshot();
        break;
      case EngineKind::kHier:
        img.hier = hier_->snapshot();
        break;
    }
    return img;
  }

  void restore(const DetectorImage& img) {
    switch (kind_) {
      case EngineKind::kCentral:
        central_->restore(img.central);
        break;
      case EngineKind::kSlicing:
        slicing_->restore(img.slicing);
        break;
      case EngineKind::kHier:
        hier_->restore(img.hier);
        break;
    }
  }

 private:
  EngineKind kind_;
  std::unique_ptr<detect::CentralSink> central_;
  std::unique_ptr<detect::SlicingDetector> slicing_;
  std::unique_ptr<core::HierNodeEngine> hier_;
};

struct Case {
  EngineKind kind = EngineKind::kCentral;
  std::size_t processes = 3;
  std::vector<Interval> events;  ///< arrival order of the stream
  std::uint64_t ckpt_every = 4;
  std::size_t kill_point = 0;  ///< crash after feeding this many events
};

std::vector<std::string> run_reference(const Case& c) {
  std::vector<std::string> out;
  std::uint64_t consumed = 0;
  Sink sink(c.kind, c.processes, &out, &consumed);
  for (const Interval& x : c.events) {
    ++consumed;
    sink.feed(x);
  }
  return out;
}

/// Round-trip an image through the real container codec — the property must
/// hold for the bytes a daemon writes, not for in-memory snapshots.
DetectorImage through_container(const DetectorImage& img,
                                std::uint64_t emitted,
                                CheckpointStore* store) {
  CheckpointData data;
  data.meta.engine_kind = static_cast<std::uint8_t>(img.kind);
  data.meta.consumed_events = img.consumed_events;
  data.meta.occurrences_emitted = emitted;
  data.detector = encode_detector(img);
  CheckpointData back;
  if (store != nullptr) {
    store->write(std::move(data));
    auto loaded = store->load_latest();
    EXPECT_TRUE(loaded.has_value());
    back = std::move(*loaded);
  } else {
    back = decode_checkpoint_file(encode_checkpoint_file(data));
  }
  EXPECT_EQ(back.meta.consumed_events, img.consumed_events);
  EXPECT_EQ(back.meta.occurrences_emitted, emitted);
  return decode_detector(back.detector);
}

/// Kill at c.kill_point, rebuild, restore from the last checkpoint (if
/// any), truncate the output log to the checkpoint's emitted count, and
/// replay the remaining stream — exactly the daemon's restore procedure.
std::vector<std::string> run_with_crash(const Case& c,
                                        CheckpointStore* store) {
  std::vector<std::string> out;
  std::optional<DetectorImage> ckpt;
  std::uint64_t ckpt_emitted = 0;
  {
    std::uint64_t consumed = 0;
    Sink sink(c.kind, c.processes, &out, &consumed);
    for (std::size_t i = 0; i < c.kill_point && i < c.events.size(); ++i) {
      ++consumed;
      sink.feed(c.events[i]);
      if (consumed % c.ckpt_every == 0) {
        ckpt = through_container(sink.image(consumed), out.size(), store);
        ckpt_emitted = out.size();
      }
    }
    // The first incarnation dies here; `sink` is destroyed unsnapshot.
  }

  std::uint64_t consumed = ckpt ? ckpt->consumed_events : 0;
  out.resize(ckpt ? ckpt_emitted : 0);  // truncate_occ_log equivalent
  Sink fresh(c.kind, c.processes, &out, &consumed);
  if (ckpt) {
    fresh.restore(*ckpt);
  }
  for (std::size_t i = consumed; i < c.events.size(); ++i) {
    ++consumed;
    fresh.feed(c.events[i]);
  }
  return out;
}

bool diverges(const Case& c, CheckpointStore* store = nullptr) {
  return run_reference(c) != run_with_crash(c, store);
}

/// Minimize a failing case over (event-prefix length, kill point): shorter
/// streams first, then earlier kills, repeated to a fixed point.
Case shrink_case(Case c) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t cut = c.events.size() / 2; cut >= 1; cut /= 2) {
      while (c.events.size() > cut) {
        Case candidate = c;
        candidate.events.resize(c.events.size() - cut);
        if (candidate.kill_point > candidate.events.size()) {
          candidate.kill_point = candidate.events.size();
        }
        if (!diverges(candidate)) {
          break;
        }
        c = std::move(candidate);
        progressed = true;
      }
    }
    while (c.kill_point > 0) {
      Case candidate = c;
      candidate.kill_point -= 1;
      if (!diverges(candidate)) {
        break;
      }
      c = std::move(candidate);
      progressed = true;
    }
  }
  return c;
}

std::string describe(const Case& c) {
  std::ostringstream os;
  os << kind_name(c.kind) << " procs=" << c.processes
     << " events=" << c.events.size() << " ckpt_every=" << c.ckpt_every
     << " kill=" << c.kill_point;
  return os.str();
}

Case random_case(Rng& rng, EngineKind kind) {
  Case c;
  c.kind = kind;
  c.processes = static_cast<std::size_t>(rng.uniform_int(2, 4));
  testutil::ExecGenOptions opt;
  opt.processes = c.processes;
  opt.steps = static_cast<std::size_t>(rng.uniform_int(60, 160));
  // Strong conjunction of every local predicate is rare under the default
  // mix; bias toward toggles and message crossings so a healthy share of
  // schedules actually produce detections (the non-vacuity guard below).
  opt.p_toggle = 0.45;
  opt.p_send = 0.3;
  opt.p_receive = 0.35;
  const auto exec = testutil::random_execution(rng, opt);
  const auto shuffle =
      rng.bernoulli(0.5) ? std::optional<std::uint64_t>(rng()) : std::nullopt;
  for (const auto& [p, i] : detect::offline::arrival_order(exec, shuffle)) {
    c.events.push_back(exec.procs[p].intervals[i]);
  }
  c.ckpt_every = static_cast<std::uint64_t>(rng.uniform_int(1, 9));
  c.kill_point = rng.uniform_index(c.events.size() + 1);
  return c;
}

TEST(RestoreProperty, KillAnywhereReplayMatchesUninterrupted) {
  // 400 random schedules x 3 engines = 1200 kill/restore round trips, every
  // image crossing the container codec.
  Rng rng(0xC4A5);
  std::size_t total_occurrences = 0;
  for (int iter = 0; iter < 400; ++iter) {
    for (EngineKind kind : kKinds) {
      Case c = random_case(rng, kind);
      const auto ref = run_reference(c);
      if (ref != run_with_crash(c, nullptr)) {
        const Case min = shrink_case(c);
        FAIL() << "restore diverged: " << describe(c)
               << "\n  shrunk to: " << describe(min);
      }
      total_occurrences += ref.size();
    }
  }
  // Non-vacuity: the generator must keep producing schedules on which the
  // detectors actually fire, or the property stops testing anything.
  EXPECT_GT(total_occurrences, 100u);
}

TEST(RestoreProperty, HoldsThroughRealCheckpointStore) {
  // A slice of cases writes/loads through an actual store directory, so
  // generation numbering, manifest handling, and atomic publish are in the
  // loop (fewer iterations: this hits the filesystem per checkpoint).
  const fs::path dir =
      fs::temp_directory_path() /
      ("hpd-restore-test-" + std::to_string(::getpid()));
  Rng rng(0x57A7E);
  for (int iter = 0; iter < 12; ++iter) {
    for (EngineKind kind : kKinds) {
      Case c = random_case(rng, kind);
      fs::remove_all(dir);
      CheckpointStore store(dir.string(), kind_name(kind));
      if (diverges(c, &store)) {
        const Case min = shrink_case(c);
        FAIL() << "restore-via-store diverged: " << describe(c)
               << "\n  shrunk to: " << describe(min);
      }
    }
  }
  fs::remove_all(dir);
}

TEST(RestoreProperty, KillBeforeFirstCheckpointStartsFresh) {
  // No checkpoint ever written: the restore path degrades to a from-scratch
  // replay, which must still match the uninterrupted run.
  Rng rng(0xF00D);
  for (EngineKind kind : kKinds) {
    Case c = random_case(rng, kind);
    c.ckpt_every = c.events.size() + 1;  // never reached
    c.kill_point = c.events.size() / 3;
    EXPECT_FALSE(diverges(c)) << describe(c);
  }
}

TEST(RestoreProperty, KillAtEveryPointOnOneSchedule) {
  // Exhaustive kill sweep on a single small schedule: every prefix of the
  // stream is a valid crash site, including 0 and the final event.
  Rng rng(0xBEEF);
  for (EngineKind kind : kKinds) {
    Case c = random_case(rng, kind);
    c.ckpt_every = 3;
    for (std::size_t k = 0; k <= c.events.size(); ++k) {
      c.kill_point = k;
      if (diverges(c)) {
        FAIL() << "kill sweep diverged at k=" << k << ": " << describe(c);
      }
    }
  }
}

}  // namespace
}  // namespace hpd::ckpt
