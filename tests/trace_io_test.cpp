#include <gtest/gtest.h>

#include <sstream>

#include "detect/occurrence_io.hpp"
#include "detect/offline/lattice.hpp"
#include "detect/offline/replay.hpp"
#include "tests/test_util.hpp"
#include "trace/trace_io.hpp"

namespace hpd::trace {
namespace {

bool executions_equal(const ExecutionRecord& a, const ExecutionRecord& b) {
  if (a.num_processes() != b.num_processes()) {
    return false;
  }
  for (std::size_t p = 0; p < a.num_processes(); ++p) {
    const auto& pa = a.procs[p];
    const auto& pb = b.procs[p];
    if (pa.initial_predicate != pb.initial_predicate ||
        pa.events.size() != pb.events.size() ||
        pa.intervals.size() != pb.intervals.size()) {
      return false;
    }
    for (std::size_t e = 0; e < pa.events.size(); ++e) {
      const auto& ea = pa.events[e];
      const auto& eb = pb.events[e];
      if (ea.kind != eb.kind || ea.vc != eb.vc || ea.peer != eb.peer ||
          ea.predicate_after != eb.predicate_after ||
          ea.time != eb.time) {
        return false;
      }
    }
    for (std::size_t i = 0; i < pa.intervals.size(); ++i) {
      const auto& xa = pa.intervals[i];
      const auto& xb = pb.intervals[i];
      if (xa.lo != xb.lo || xa.hi != xb.hi || xa.seq != xb.seq ||
          xa.origin != xb.origin) {
        return false;
      }
    }
  }
  return true;
}

TEST(TraceIoTest, RoundTripRandomExecutions) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    testutil::ExecGenOptions opt;
    opt.processes = 2 + rng.uniform_index(4);
    opt.steps = 10 + rng.uniform_index(40);
    const auto exec = testutil::random_execution(rng, opt);
    const auto copy = execution_from_string(execution_to_string(exec));
    EXPECT_TRUE(executions_equal(exec, copy)) << "iter " << iter;
  }
}

TEST(TraceIoTest, ReplayResultsSurviveTheRoundTrip) {
  Rng rng(123);
  testutil::ExecGenOptions opt;
  opt.processes = 3;
  opt.steps = 50;
  opt.p_toggle = 0.4;
  const auto exec = testutil::random_execution(rng, opt);
  const auto copy = execution_from_string(execution_to_string(exec));
  const auto a = detect::offline::replay_centralized(exec);
  const auto b = detect::offline::replay_centralized(copy);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(detect::offline::lattice_definitely(exec),
            detect::offline::lattice_definitely(copy));
}

TEST(TraceIoTest, EmptyExecution) {
  ExecutionRecord exec;
  exec.procs.resize(2);
  const auto copy = execution_from_string(execution_to_string(exec));
  EXPECT_EQ(copy.num_processes(), 2u);
  EXPECT_EQ(copy.total_events(), 0u);
}

TEST(TraceIoTest, MalformedInputsRejected) {
  EXPECT_THROW(execution_from_string(""), AssertionError);
  EXPECT_THROW(execution_from_string("bogus 2\nend\n"), AssertionError);
  EXPECT_THROW(execution_from_string("execution 1\n"), AssertionError);
  EXPECT_THROW(execution_from_string("execution 1\ne int 0 0 0 1\nend\n"),
               AssertionError);  // event before proc line
  EXPECT_THROW(
      execution_from_string("execution 1\nproc 5 init 0\nend\n"),
      AssertionError);  // proc id out of range
  EXPECT_THROW(
      execution_from_string("execution 1\nproc 0 init 0\ne int 0 0 1\nend\n"),
      AssertionError);  // truncated clock
  EXPECT_THROW(
      execution_from_string(
          "execution 1\nproc 0 init 0\ni 1 3 4\nend\n"),
      AssertionError);  // missing interval separator
}

TEST(TraceIoTest, OccurrenceCsv) {
  std::vector<detect::OccurrenceRecord> occ(2);
  occ[0].time = 1.5;
  occ[0].detector = 3;
  occ[0].index = 1;
  occ[0].global = true;
  occ[0].aggregate.weight = 4;
  occ[1].time = 2.5;
  occ[1].detector = 1;
  occ[1].index = 1;
  occ[1].global = false;
  occ[1].aggregate.weight = 2;
  std::ostringstream os;
  detect::write_occurrences_csv(os, occ);
  EXPECT_EQ(os.str(),
            "time,node,index,global,weight\n"
            "1.5,3,1,1,4\n"
            "2.5,1,1,0,2\n");
}

}  // namespace
}  // namespace hpd::trace
