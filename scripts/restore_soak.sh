#!/usr/bin/env bash
# Kill -9 / restore soak (experiment A14, EXPERIMENTS.md).
#
# Proves the durability contract end to end, on the real binary:
#
#   1. A live reactor run under 5% frame drop records its sink-ingestion
#      schedule as a durable event stream (--dump-stream), oracle-checked.
#   2. A reference daemon consumes the stream uninterrupted; its occurrence
#      log is the ground truth.
#   3. For each engine (hier / central / slicing), the daemon is killed
#      with SIGKILL mid-ingestion, restarted with --restore, and the
#      combined occurrence log must be byte-identical to the reference.
#   4. Deterministic kill-point sweep via --crash-after (exit 137, no
#      final checkpoint) at several stream positions, same oracle.
#
# Usage: scripts/restore_soak.sh [path-to-hpd_sim]
set -euo pipefail

SIM="${1:-./build/tools/hpd_sim}"
[ -x "$SIM" ] || { echo "restore_soak: $SIM not executable" >&2; exit 2; }
SIM="$(cd "$(dirname "$SIM")" && pwd)/$(basename "$SIM")"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/hpd-restore-soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

STREAM=stream.evt

echo "== phase 1: live reactor run (5% drop), record event stream =="
timeout 120 "$SIM" --live --live-backend reactor \
  --topology dary:2:3 --workload pulse:rounds=12 --seed 7 \
  --chaos drop=0.05 --dump-stream "$STREAM" --json > live.json
grep -q '"oracle": "PASS"' live.json

for det in hier central slicing; do
  echo "== engine $det: reference run =="
  timeout 60 "$SIM" --daemon --detector "$det" --stream "$STREAM" \
    --occ-log "ref-$det.csv" --json > /dev/null

  echo "== engine $det: SIGKILL mid-ingestion, then restore =="
  rm -rf "ckpt-$det"
  # Throttled so the kill lands mid-stream; if the daemon finishes first
  # the restore is a no-op and the comparison still gates correctness.
  # No timeout(1) wrapper here: SIGKILL must hit the daemon itself, not a
  # wrapper that would die and orphan it (the throttle bounds the runtime).
  "$SIM" --daemon --detector "$det" --stream "$STREAM" \
    --occ-log "kill-$det.csv" --ckpt-dir "ckpt-$det" --ckpt-every 5 \
    --throttle-us 10000 --json > /dev/null &
  pid=$!
  sleep 0.3
  kill -9 "$pid" 2>/dev/null || echo "  (daemon finished before the kill)"
  wait "$pid" 2>/dev/null || true
  timeout 60 "$SIM" --daemon --detector "$det" --stream "$STREAM" \
    --occ-log "kill-$det.csv" --ckpt-dir "ckpt-$det" --ckpt-every 5 \
    --restore --json > "restore-$det.json"
  cmp "ref-$det.csv" "kill-$det.csv"
  echo "  restored ok: $(grep -o '"restore_generation": [0-9]*' "restore-$det.json" || true)"
done

echo "== deterministic kill-point sweep (--crash-after) =="
for k in 10 25 37 50 64 79 83; do
  for det in hier slicing; do
    rm -rf ckpt-sweep
    rc=0
    timeout 60 "$SIM" --daemon --detector "$det" --stream "$STREAM" \
      --occ-log sweep.csv --ckpt-dir ckpt-sweep --ckpt-every 7 \
      --crash-after "$k" --json > /dev/null 2>&1 || rc=$?
    [ "$rc" -eq 137 ] || { echo "crash-after $k/$det: exit $rc != 137" >&2; exit 1; }
    timeout 60 "$SIM" --daemon --detector "$det" --stream "$STREAM" \
      --occ-log sweep.csv --ckpt-dir ckpt-sweep --ckpt-every 7 \
      --restore --json > /dev/null
    cmp "ref-$det.csv" sweep.csv || { echo "diverged at kill=$k det=$det" >&2; exit 1; }
  done
done

echo "restore_soak: all occurrence logs byte-identical to the reference"
