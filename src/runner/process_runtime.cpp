#include "runner/process_runtime.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace hpd::runner {

ProcessRuntime::ProcessRuntime(ProcessId self, const Shared& shared, Rng rng)
    : self_(self),
      shared_(shared),
      rng_(rng),
      core_(self, shared.config->topology.size(),
            [this](const Interval& x) { on_local_interval(x); }) {
  const ExperimentConfig& cfg = *shared_.config;
  parent_ = cfg.tree.parent(self_);
  children_ = cfg.tree.children(self_);
  core_.set_track_provenance(cfg.track_provenance);
  core_.set_time_source([this] { return shared_.net->now(); });
  if (cfg.record_execution) {
    core_.enable_recording([this] { return shared_.net->now(); });
  }
  setup_app();
  setup_detector();
  setup_ft();
}

void ProcessRuntime::setup_app() {
  const ExperimentConfig& cfg = *shared_.config;
  HPD_REQUIRE(cfg.behavior_factory != nullptr,
              "ExperimentConfig: behavior_factory is required");
  behavior_ = cfg.behavior_factory(self_);
  actx_.self = self_;
  actx_.core = &core_;
  actx_.rng = &rng_;
  actx_.topo = &cfg.topology;
  actx_.parent = [this] { return parent_; };
  actx_.children = [this] { return children_; };
  actx_.send_app = [this](ProcessId dst, int subtype, SeqNum round) {
    app_send(dst, subtype, round);
  };
  actx_.set_timer = [this](int tag, SimTime delay) {
    shared_.net->set_timer(self_, kAppTagBase + tag, std::max(0.0, delay));
  };
  actx_.now = [this] { return shared_.net->now(); };
}

void ProcessRuntime::setup_detector() {
  const ExperimentConfig& cfg = *shared_.config;
  if (cfg.detector == DetectorKind::kHierarchical) {
    core::HierNodeEngine::Config hc;
    hc.self = self_;
    hc.has_parent = (parent_ != kNoProcess);
    hc.prune_mode = cfg.prune_mode;
    hc.queue_capacity = cfg.queue_capacity;
    core::HierNodeEngine::Hooks hooks;
    hooks.send_report = [this](const Interval& agg) { queue_report(agg); };
    hooks.on_occurrence = [this](const detect::OccurrenceRecord& rec) {
      record_occurrence(rec);
    };
    hooks.now = [this] { return shared_.net->now(); };
    hier_.emplace(hc, std::move(hooks));
    for (const ProcessId c : children_) {
      hier_->add_child(c, 1);
    }
  } else if (self_ == shared_.sink) {
    std::vector<ProcessId> all(cfg.topology.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<ProcessId>(i);
    }
    if (cfg.detector == DetectorKind::kCentralized) {
      detect::CentralSink::Hooks hooks;
      hooks.on_occurrence = [this](const detect::OccurrenceRecord& rec) {
        record_occurrence(rec);
      };
      hooks.now = [this] { return shared_.net->now(); };
      sink_.emplace(self_, all, std::move(hooks), cfg.prune_mode,
                    cfg.queue_capacity);
      sink_->set_thread_pool(cfg.aggregate_pool);
    } else if (cfg.detector == DetectorKind::kSlicing) {
      detect::SlicingDetector::Hooks hooks;
      hooks.on_occurrence = [this](const detect::OccurrenceRecord& rec) {
        record_occurrence(rec);
      };
      hooks.now = [this] { return shared_.net->now(); };
      slicing_sink_.emplace(self_, all, std::move(hooks), cfg.prune_mode,
                            cfg.queue_capacity, cfg.slicing_mode);
    } else {
      detect::PossiblySink::Hooks hooks;
      hooks.on_occurrence = [this](const detect::OccurrenceRecord& rec) {
        record_occurrence(rec);
      };
      hooks.now = [this] { return shared_.net->now(); };
      possibly_sink_.emplace(self_, all, std::move(hooks));
    }
  }
}

void ProcessRuntime::setup_ft() {
  const ExperimentConfig& cfg = *shared_.config;
  if (!cfg.heartbeats) {
    return;
  }
  HPD_REQUIRE(cfg.detector == DetectorKind::kHierarchical,
              "heartbeats / repair are only wired for the hierarchical "
              "detector (the centralized baseline has no failure handling)");
  ft::HeartbeatAgent::Hooks hb_hooks;
  hb_hooks.send = [this](ProcessId dst, const proto::HeartbeatPayload& p) {
    send(dst, proto::kHeartbeat, p);
  };
  hb_hooks.on_failed = [this](ProcessId nbr, bool was_parent) {
    on_neighbor_failed(nbr, was_parent);
  };
  hb_hooks.now = [this] { return shared_.net->now(); };
  hb_.emplace(self_, cfg.hb_config, std::move(hb_hooks));
  if (parent_ == kNoProcess) {
    hb_->init_as_root();
  } else {
    hb_->init_with_parent(parent_, cfg.tree.path_to_root(self_));
  }
  for (const ProcessId c : children_) {
    hb_->add_child(c);
  }

  ft::ReattachProtocol::Hooks ra_hooks;
  ra_hooks.broadcast_probe = [this] {
    for (const ProcessId nbr : shared_.config->topology.neighbors(self_)) {
      send(nbr, proto::kProbe, proto::ProbePayload{});
    }
  };
  ra_hooks.send_attach_req = [this](ProcessId dst) {
    proto::AttachReqPayload p;
    p.next_report_seq = attach_first_seq();
    send(dst, proto::kAttachReq, p);
  };
  ra_hooks.set_timer = [this](int tag, SimTime delay) {
    const int runtime_tag = (tag == ft::ReattachProtocol::kProbeWindowTag)
                                ? kTagProbeWindow
                                : kTagRetry;
    shared_.net->set_timer(self_, runtime_tag, delay);
  };
  ra_hooks.on_attached = [this](ProcessId p) { on_attached(p); };
  ra_hooks.on_search_exhausted = [this] { on_search_exhausted(); };
  reattach_.emplace(self_, cfg.reattach_config, std::move(ra_hooks));
}

void ProcessRuntime::on_start() {
  if (behavior_) {
    behavior_->on_start(actx_);
  }
  if (hb_) {
    // Random phase so the fleet's beats do not synchronize.
    const SimTime phase =
        rng_.uniform_real(0.0, shared_.config->hb_config.period);
    shared_.net->set_timer(self_, kTagHeartbeat, phase, /*periodic=*/true,
                           shared_.config->hb_config.period);
    // Even the deployment-time root probes for a smaller-id tree: if the
    // network ever splits and heals, exactly one of any two adjacent trees'
    // roots can merge under the other, re-unifying detection.
    const SimTime period = shared_.config->reattach_config.root_merge_period;
    if (parent_ == kNoProcess && period > 0.0) {
      shared_.net->set_timer(self_, kTagRootMerge, period);
    }
  }
}

void ProcessRuntime::on_revive() {
  HPD_DEBUG("node " << self_ << ": reviving at t=" << shared_.net->now());
  // Volatile state died with the old incarnation.
  children_.clear();
  await_flip_go_ = false;
  searching_as_delegate_ = false;
  delegating_ = false;
  active_delegate_ = kNoProcess;
  pending_flip_child_ = kNoProcess;
  outbox_.clear();
  last_sent_.reset();
  core_.abandon_open_interval();
  if (hier_) {
    hier_->reset_as_leaf();
  }
  if (hb_) {
    hb_->reset();
    parent_ = kNoProcess;
    const SimTime phase =
        rng_.uniform_real(0.0, shared_.config->hb_config.period);
    shared_.net->set_timer(self_, kTagHeartbeat, phase, /*periodic=*/true,
                           shared_.config->hb_config.period);
  }
  // In centralized / possibly mode the tree is static: keep the old parent
  // so relayed reporting resumes immediately.
  if (behavior_) {
    // Behaviours re-arm their timers; already-executed steps are guarded by
    // their own per-round / per-action state.
    behavior_->on_start(actx_);
  }
  if (reattach_) {
    reattach_->reset();
    reattach_->begin(ft::ReattachProtocol::Mode::kOrphan, self_);
  }
}

void ProcessRuntime::app_send(ProcessId dst, int subtype, SeqNum round) {
  proto::AppPayload p;
  p.subtype = subtype;
  p.round = round;
  p.stamp = core_.prepare_send(dst);
  send(dst, proto::kApp, p);
}

void ProcessRuntime::on_message(const transport::Message& msg) {
  if (!shared_.config->wire_encoding) {
    dispatch(msg);
    return;
  }
  // Wire mode: the payload travelled as bytes; decode and re-dispatch.
  const auto& bytes =
      std::any_cast<const std::vector<std::uint8_t>&>(msg.payload);
  const wire::DecodedMessage dm = wire::decode(bytes);
  HPD_ASSERT(dm.type == msg.type, "wire: tag/type mismatch");
  transport::Message typed = msg;
  switch (dm.type) {
    case proto::kApp:
      typed.payload = dm.app;
      break;
    case proto::kReportHier:
    case proto::kReportCentral:
      typed.payload = dm.report;
      break;
    case proto::kHeartbeat:
      typed.payload = dm.heartbeat;
      break;
    case proto::kProbe:
      typed.payload = proto::ProbePayload{};
      break;
    case proto::kProbeAck:
      typed.payload = dm.probe_ack;
      break;
    case proto::kAttachReq:
      typed.payload = dm.attach_req;
      break;
    case proto::kAttachAck:
      typed.payload = dm.attach_ack;
      break;
    case proto::kDelegate:
      typed.payload = dm.delegate;
      break;
    case proto::kDelegateFail:
      typed.payload = dm.delegate_fail;
      break;
    case proto::kFlip:
      typed.payload = dm.flip;
      break;
    case proto::kFlipAck:
      typed.payload = dm.flip_ack;
      break;
    case proto::kFlipGo:
      typed.payload = proto::FlipGoPayload{};
      break;
    case proto::kDisown:
      typed.payload = proto::DisownPayload{};
      break;
    default:
      HPD_REQUIRE(false, "wire: unknown decoded type");
  }
  dispatch(typed);
}

void ProcessRuntime::dispatch(const transport::Message& msg) {
  switch (msg.type) {
    case proto::kApp: {
      const auto& p = std::any_cast<const proto::AppPayload&>(msg.payload);
      core_.receive(msg.src, p.stamp);
      if (behavior_) {
        behavior_->on_app_message(actx_, msg.src, p.subtype, p.round);
      }
      break;
    }
    case proto::kReportHier: {
      const auto& p = std::any_cast<const proto::ReportPayload&>(msg.payload);
      if (hier_ && hier_->has_child(msg.src)) {
        ++child_intervals_received_;
        hier_->child_report(msg.src, p.interval);
      }
      break;
    }
    case proto::kReportCentral: {
      const auto& p = std::any_cast<const proto::ReportPayload&>(msg.payload);
      if (sink_) {
        sink_->report(p.interval);
      } else if (slicing_sink_) {
        slicing_sink_->report(p.interval);
      } else if (possibly_sink_) {
        possibly_sink_->report(p.interval);
      } else if (parent_ != kNoProcess) {
        // Relay one hop toward the sink (a fresh message: the paper counts
        // every hop of the centralized algorithm's reports).
        send(parent_, proto::kReportCentral, p);
      }
      // Orphaned relay in centralized mode: the report is lost — the
      // baseline has no failure handling.
      break;
    }
    case proto::kHeartbeat: {
      if (hb_) {
        hb_->on_heartbeat(
            msg.src, std::any_cast<const proto::HeartbeatPayload&>(msg.payload));
      }
      break;
    }
    case proto::kProbe: {
      if (hb_) {
        proto::ProbeAckPayload ack;
        ack.attached = hb_->attached();
        ack.root_path = hb_->root_path();
        send(msg.src, proto::kProbeAck, ack);
      }
      break;
    }
    case proto::kProbeAck: {
      if (reattach_) {
        reattach_->on_probe_ack(
            msg.src, std::any_cast<const proto::ProbeAckPayload&>(msg.payload));
      }
      break;
    }
    case proto::kAttachReq: {
      const auto& p =
          std::any_cast<const proto::AttachReqPayload&>(msg.payload);
      handle_attach_request(msg.src, p.next_report_seq);
      break;
    }
    case proto::kAttachAck: {
      if (reattach_) {
        reattach_->on_attach_ack(
            msg.src,
            std::any_cast<const proto::AttachAckPayload&>(msg.payload));
      }
      break;
    }
    case proto::kDelegate: {
      const auto& p = std::any_cast<const proto::DelegatePayload&>(msg.payload);
      handle_delegate(msg.src, p.orphan);
      break;
    }
    case proto::kDelegateFail: {
      const auto& p =
          std::any_cast<const proto::DelegateFailPayload&>(msg.payload);
      handle_delegate_fail(msg.src, p.orphan);
      break;
    }
    case proto::kFlip: {
      const auto& p = std::any_cast<const proto::FlipPayload&>(msg.payload);
      handle_flip(msg.src, p.orphan);
      break;
    }
    case proto::kFlipAck: {
      const auto& p = std::any_cast<const proto::FlipAckPayload&>(msg.payload);
      handle_flip_ack(msg.src, p.first_seq);
      break;
    }
    case proto::kFlipGo: {
      handle_flip_go(msg.src);
      break;
    }
    case proto::kDisown: {
      // Our parent has (wrongly or rightly) declared us dead and dropped
      // our queue. Treat it exactly like a parent failure: clear the
      // relation and search for a parent again (possibly the same node —
      // the attach handshake re-establishes the report stream cleanly).
      if (msg.src == parent_) {
        if (hb_) {
          hb_->clear_parent();
        }
        on_neighbor_failed(msg.src, /*was_parent=*/true);
      }
      break;
    }
    default:
      HPD_WARN("node " << self_ << ": unknown message type " << msg.type);
  }
}

void ProcessRuntime::on_timer(int tag) {
  if (tag == kTagHeartbeat) {
    if (hb_) {
      hb_->on_tick();
    }
  } else if (tag == kTagProbeWindow) {
    if (reattach_) {
      reattach_->on_timer(ft::ReattachProtocol::kProbeWindowTag);
    }
  } else if (tag == kTagRetry) {
    if (reattach_) {
      reattach_->on_timer(ft::ReattachProtocol::kRetryTag);
    }
  } else if (tag == kTagRootMerge) {
    // Periodic partition healing: while we head a surviving partition,
    // probe for a smaller-id tree to merge back into.
    if (parent_ == kNoProcess && hb_ && hb_->is_root() && reattach_) {
      reattach_->begin(ft::ReattachProtocol::Mode::kRootMerge, self_);
      const SimTime period = shared_.config->reattach_config.root_merge_period;
      if (period > 0.0) {
        shared_.net->set_timer(self_, kTagRootMerge, period);
      }
    }
  } else if (tag >= kAppTagBase && behavior_) {
    behavior_->on_timer(actx_, tag - kAppTagBase);
  }
}

void ProcessRuntime::on_local_interval(const Interval& x) {
  if (hier_) {
    hier_->local_interval(x);
  } else if (sink_) {
    sink_->local_interval(x);
  } else if (slicing_sink_) {
    slicing_sink_->local_interval(x);
  } else if (possibly_sink_) {
    possibly_sink_->local_interval(x);
  } else if (parent_ != kNoProcess) {
    proto::ReportPayload p{x};
    send(parent_, proto::kReportCentral, p);
  }
}

void ProcessRuntime::queue_report(const Interval& agg) {
  outbox_.push_back(agg);
  flush_outbox();
}

void ProcessRuntime::flush_outbox() {
  if (parent_ == kNoProcess || await_flip_go_) {
    return;  // orphaned or mid-flip: buffer until the parent is ready
  }
  while (!outbox_.empty()) {
    proto::ReportPayload p{outbox_.front()};
    send(parent_, proto::kReportHier, p);
    last_sent_ = std::move(outbox_.front());
    outbox_.pop_front();
  }
}

void ProcessRuntime::on_neighbor_failed(ProcessId neighbor, bool was_parent) {
  HPD_DEBUG("node " << self_ << ": neighbor " << neighbor << " failed (parent="
                    << was_parent << ") at t=" << shared_.net->now());
  if (was_parent) {
    parent_ = kNoProcess;
    await_flip_go_ = false;
    searching_as_delegate_ = false;
    if (behavior_) {
      behavior_->on_tree_changed(actx_);
    }
    if (reattach_) {
      reattach_->begin(ft::ReattachProtocol::Mode::kOrphan, self_);
    }
  } else {
    children_.erase(std::remove(children_.begin(), children_.end(), neighbor),
                    children_.end());
    if (hier_) {
      hier_->remove_child(neighbor);  // may complete solutions via recheck
    }
    // Best effort: if the child is actually alive (a false-positive
    // timeout), tell it so it can reattach instead of reporting into the
    // void forever.
    send(neighbor, proto::kDisown, proto::DisownPayload{});
    if (delegating_ && neighbor == active_delegate_) {
      send_next_delegate();  // the delegate died mid-search
    }
    if (behavior_) {
      behavior_->on_tree_changed(actx_);
    }
  }
}

void ProcessRuntime::on_peer_unreachable(ProcessId peer) {
  // The live transport gave up on messages to `peer` (retransmit budget
  // exhausted, or the peer's incarnation changed under queued messages).
  // For tree neighbors that is indistinguishable from a detected failure,
  // so route it through the same path the heartbeat timeout uses — the
  // hb_ state must be cleared first or the next heartbeat round would
  // re-report the same neighbor. Non-tree traffic (probes, attach
  // requests) has its own retry logic and is left alone.
  if (!hb_ || peer == self_) {
    return;
  }
  HPD_DEBUG("node " << self_ << ": transport surfaced loss to peer " << peer
                    << " at t=" << shared_.net->now());
  if (peer == parent_) {
    hb_->clear_parent();
    on_neighbor_failed(peer, /*was_parent=*/true);
  } else if (std::find(children_.begin(), children_.end(), peer) !=
             children_.end()) {
    hb_->remove_child(peer);
    on_neighbor_failed(peer, /*was_parent=*/false);
  }
}

bool ProcessRuntime::should_resend_last() const {
  if (!shared_.config->resend_last_on_attach || !last_sent_.has_value()) {
    return false;
  }
  const SeqNum next = outbox_.empty()
                          ? (hier_ ? hier_->next_report_seq() : SeqNum{1})
                          : outbox_.front().seq;
  return last_sent_->seq + 1 == next;
}

SeqNum ProcessRuntime::attach_first_seq() const {
  if (should_resend_last()) {
    return last_sent_->seq;
  }
  if (!outbox_.empty()) {
    return outbox_.front().seq;
  }
  return hier_ ? hier_->next_report_seq() : 1;
}

void ProcessRuntime::on_attached(ProcessId new_parent) {
  HPD_DEBUG("node " << self_ << ": attached to " << new_parent << " at t="
                    << shared_.net->now());
  const ProcessId former_parent = searching_as_delegate_ ? parent_ : kNoProcess;
  parent_ = new_parent;
  if (hb_) {
    hb_->set_parent(new_parent);
  }
  if (hier_) {
    hier_->set_has_parent(true);  // an ex-partition-root stops being global
  }
  if (should_resend_last()) {
    // The last report may have died with the old parent; the attach
    // handshake told the new parent to expect exactly this sequence.
    proto::ReportPayload p{*last_sent_};
    send(parent_, proto::kReportHier, p);
  }
  flush_outbox();
  if (behavior_) {
    behavior_->on_tree_changed(actx_);
  }
  if (searching_as_delegate_) {
    // We attached on behalf of an orphaned ancestor: re-root the orphan's
    // subtree at this node by flipping the edges back to the orphan.
    searching_as_delegate_ = false;
    if (former_parent != kNoProcess) {
      pending_flip_child_ = former_parent;
      proto::FlipPayload p{search_forbidden_};
      send(former_parent, proto::kFlip, p);
    }
  }
}

void ProcessRuntime::on_search_exhausted() {
  if (reattach_ &&
      reattach_->mode() == ft::ReattachProtocol::Mode::kRootMerge) {
    return;  // still a (partition) root; the periodic probe will retry
  }
  if (searching_as_delegate_) {
    // Delegated search found nothing around this node: recurse into our
    // own children, or report failure to the delegator (our parent).
    searching_as_delegate_ = false;
    if (!children_.empty()) {
      start_delegation(search_forbidden_);
    } else if (parent_ != kNoProcess) {
      proto::DelegateFailPayload p{search_forbidden_};
      send(parent_, proto::kDelegateFail, p);
    }
    return;
  }
  // Orphan: nothing viable in our own neighbourhood; search the subtree
  // before conceding and heading the surviving partition.
  if (!children_.empty()) {
    start_delegation(self_);
  } else {
    become_root();
  }
}

void ProcessRuntime::start_delegation(ProcessId orphan) {
  delegating_ = true;
  delegation_orphan_ = orphan;
  delegation_candidates_ = children_;
  delegation_next_ = 0;
  send_next_delegate();
}

void ProcessRuntime::send_next_delegate() {
  while (delegation_next_ < delegation_candidates_.size()) {
    const ProcessId c = delegation_candidates_[delegation_next_++];
    if (std::find(children_.begin(), children_.end(), c) != children_.end()) {
      active_delegate_ = c;
      proto::DelegatePayload p{delegation_orphan_};
      send(c, proto::kDelegate, p);
      return;
    }
  }
  // Every branch exhausted.
  delegating_ = false;
  active_delegate_ = kNoProcess;
  if (delegation_orphan_ == self_) {
    become_root();
  } else if (parent_ != kNoProcess) {
    proto::DelegateFailPayload p{delegation_orphan_};
    send(parent_, proto::kDelegateFail, p);
  }
}

void ProcessRuntime::handle_delegate(ProcessId from, ProcessId orphan) {
  if (from != parent_ || !reattach_.has_value()) {
    return;  // stale (the tree moved on)
  }
  searching_as_delegate_ = true;
  search_forbidden_ = orphan;
  reattach_->begin(ft::ReattachProtocol::Mode::kDelegate, orphan);
}

void ProcessRuntime::handle_delegate_fail(ProcessId from, ProcessId orphan) {
  if (delegating_ && orphan == delegation_orphan_ && from == active_delegate_) {
    send_next_delegate();
  }
}

void ProcessRuntime::handle_flip(ProcessId from, ProcessId orphan) {
  if (std::find(children_.begin(), children_.end(), from) == children_.end()) {
    return;  // stale flip
  }
  HPD_DEBUG("node " << self_ << ": flipping under former child " << from
                    << " at t=" << shared_.net->now());
  const ProcessId former_parent = parent_;
  // The former child becomes our parent; drop its queue (its aggregates now
  // describe a subtree *containing us*).
  children_.erase(std::remove(children_.begin(), children_.end(), from),
                  children_.end());
  if (hb_) {
    hb_->remove_child(from);
  }
  await_flip_go_ = true;  // hold reports until the new parent is ready
  parent_ = from;
  if (hb_) {
    hb_->set_parent(from);
  }
  if (hier_) {
    hier_->remove_child(from);  // recheck may emit reports into the outbox
  }
  delegating_ = false;
  active_delegate_ = kNoProcess;
  proto::FlipAckPayload ack{attach_first_seq()};
  send(from, proto::kFlipAck, ack);
  if (former_parent != kNoProcess) {
    // Continue re-rooting toward the orphan.
    pending_flip_child_ = former_parent;
    proto::FlipPayload p{orphan};
    send(former_parent, proto::kFlip, p);
  }
  if (behavior_) {
    behavior_->on_tree_changed(actx_);
  }
}

void ProcessRuntime::handle_flip_ack(ProcessId from, SeqNum first_seq) {
  if (from != pending_flip_child_) {
    return;
  }
  pending_flip_child_ = kNoProcess;
  if (std::find(children_.begin(), children_.end(), from) ==
      children_.end()) {
    children_.push_back(from);
  }
  if (hb_) {
    hb_->add_child(from);
  }
  if (hier_) {
    hier_->ensure_child(from, first_seq);
  }
  send(from, proto::kFlipGo, proto::FlipGoPayload{});
  if (behavior_) {
    behavior_->on_tree_changed(actx_);
  }
}

void ProcessRuntime::handle_flip_go(ProcessId from) {
  if (parent_ != from || !await_flip_go_) {
    return;
  }
  await_flip_go_ = false;
  if (should_resend_last()) {
    proto::ReportPayload p{*last_sent_};
    send(parent_, proto::kReportHier, p);
  }
  flush_outbox();
  if (behavior_) {
    behavior_->on_tree_changed(actx_);
  }
}

void ProcessRuntime::become_root() {
  HPD_DEBUG("node " << self_ << ": becoming root at t="
                    << shared_.net->now());
  parent_ = kNoProcess;
  if (hb_) {
    hb_->become_root();
  }
  if (hier_) {
    hier_->set_has_parent(false);
  }
  outbox_.clear();
  if (behavior_) {
    behavior_->on_tree_changed(actx_);
  }
  // Partition healing: keep looking for a smaller-id tree to merge into
  // (connectivity may return, e.g. when a crashed cut vertex recovers).
  const SimTime period = shared_.config->reattach_config.root_merge_period;
  if (period > 0.0) {
    shared_.net->set_timer(self_, kTagRootMerge, period);
  }
}

void ProcessRuntime::handle_attach_request(ProcessId from, SeqNum first_seq) {
  bool accept = false;
  if (hb_ && hb_->attached() && from != self_) {
    const auto& path = hb_->root_path();
    accept = std::find(path.begin(), path.end(), from) == path.end();
  }
  if (accept && hier_) {
    if (std::find(children_.begin(), children_.end(), from) ==
        children_.end()) {
      children_.push_back(from);
    }
    hb_->add_child(from);
    hier_->ensure_child(from, first_seq);
    if (behavior_) {
      behavior_->on_tree_changed(actx_);
    }
  }
  proto::AttachAckPayload ack;
  ack.accepted = accept;
  send(from, proto::kAttachAck, ack);
}

void ProcessRuntime::record_occurrence(const detect::OccurrenceRecord& rec) {
  shared_.metrics->node(self_).detections += 1;
  if (rec.global && shared_.global_count != nullptr) {
    ++(*shared_.global_count);
  }
  if (shared_.occurrences != nullptr) {
    if (shared_.config->occurrence_solutions) {
      shared_.occurrences->push_back(rec);
    } else {
      detect::OccurrenceRecord slim;
      slim.detector = rec.detector;
      slim.index = rec.index;
      slim.time = rec.time;
      slim.latest_member_completion = rec.latest_member_completion;
      slim.global = rec.global;
      // Keep the scalar coverage info; only the O(n) clocks are stripped.
      slim.aggregate.weight = rec.aggregate.weight;
      slim.aggregate.origin = rec.aggregate.origin;
      slim.aggregate.seq = rec.aggregate.seq;
      shared_.occurrences->push_back(std::move(slim));
    }
  }
}

}  // namespace hpd::runner
