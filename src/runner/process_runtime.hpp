// One protocol process: application layer (workload behaviour + vector
// clock), detection layer (hierarchical engine, or centralized sink /
// relay), and failure-handling layer (heartbeats + reattachment), sharing
// the process's single transport endpoint.
//
// The runtime is written against transport::Endpoint only, so the exact
// same code executes inside the deterministic simulator (sim::Network) and
// over real threads + sockets (rt::LiveTransport).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/hier_engine.hpp"
#include "detect/centralized.hpp"
#include "detect/possibly.hpp"
#include "detect/slicing.hpp"
#include "ft/heartbeat.hpp"
#include "ft/reattach.hpp"
#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/app_core.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"
#include "wire/codec.hpp"

namespace hpd::runner {

// Byte encoding per payload type (wire mode); the report payload needs the
// tag because it appears under two message types.
inline std::vector<std::uint8_t> encode_payload(int, const proto::AppPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(int type,
                                                const proto::ReportPayload& p) {
  return wire::encode_report(p, type);
}
inline std::vector<std::uint8_t> encode_payload(
    int, const proto::HeartbeatPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(int,
                                                const proto::ProbePayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(
    int, const proto::ProbeAckPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(
    int, const proto::AttachReqPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(
    int, const proto::AttachAckPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(
    int, const proto::DelegatePayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(
    int, const proto::DelegateFailPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(int,
                                                const proto::FlipPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(
    int, const proto::FlipAckPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(int,
                                                const proto::FlipGoPayload& p) {
  return wire::encode(p);
}
inline std::vector<std::uint8_t> encode_payload(int,
                                                const proto::DisownPayload& p) {
  return wire::encode(p);
}

class ProcessRuntime final : public transport::Node {
 public:
  /// Experiment-wide context shared by all runtimes (owned by the driver).
  /// In the live runtime, metrics / occurrences / global_count point at
  /// per-node storage (merged at shutdown) so node threads never share
  /// mutable state.
  struct Shared {
    const ExperimentConfig* config = nullptr;
    transport::Endpoint* net = nullptr;
    MetricsRegistry* metrics = nullptr;
    std::vector<detect::OccurrenceRecord>* occurrences = nullptr;  // nullable
    std::uint64_t* global_count = nullptr;
    ProcessId sink = kNoProcess;  ///< initial tree root
  };

  ProcessRuntime(ProcessId self, const Shared& shared, Rng rng);

  // transport::Node
  void on_start() override;
  void on_message(const transport::Message& msg) override;
  void on_timer(int tag) override;
  void on_peer_unreachable(ProcessId peer) override;

  // ---- Inspection (results collection / tests) ---------------------------

  ProcessId self() const { return self_; }

  /// Close any still-open local interval at the end of the run.
  void finalize_app() { core_.finalize(); }

  /// Crash recovery: the network has just revived this node; reset all
  /// layers to a fresh-leaf incarnation, re-arm timers, and (in
  /// fault-tolerant mode) start searching for a parent.
  void on_revive();

  ProcessId current_parent() const { return parent_; }
  const std::vector<ProcessId>& current_children() const { return children_; }
  const trace::AppCore& core() const { return core_; }
  const core::HierNodeEngine* hier() const {
    return hier_ ? &*hier_ : nullptr;
  }
  const detect::CentralSink* sink() const {
    return sink_ ? &*sink_ : nullptr;
  }
  const detect::PossiblySink* possibly_sink() const {
    return possibly_sink_ ? &*possibly_sink_ : nullptr;
  }
  const detect::SlicingDetector* slicing_sink() const {
    return slicing_sink_ ? &*slicing_sink_ : nullptr;
  }
  std::uint64_t child_intervals_received() const {
    return child_intervals_received_;
  }

 private:
  // Timer tags.
  static constexpr int kTagHeartbeat = 1;
  static constexpr int kTagProbeWindow = 2;
  static constexpr int kTagRetry = 3;
  static constexpr int kTagRootMerge = 4;
  static constexpr int kAppTagBase = 10;

  void setup_app();
  void setup_detector();
  void setup_ft();

  /// Send a protocol payload, typed in-memory or byte-encoded (wire mode).
  template <typename P>
  void send(ProcessId dst, int type, const P& p) {
    transport::Message m;
    m.src = self_;
    m.dst = dst;
    m.type = type;
    m.wire_words = p.wire_words();
    if (shared_.config->wire_encoding) {
      std::vector<std::uint8_t> bytes = encode_payload(type, p);
      m.wire_bytes = bytes.size();
      m.payload = std::move(bytes);
    } else {
      m.payload = p;
    }
    shared_.net->send(std::move(m));
  }

  /// The typed dispatch (payload already decoded in wire mode).
  void dispatch(const transport::Message& msg);

  // Application plumbing.
  void app_send(ProcessId dst, int subtype, SeqNum round);
  void on_local_interval(const Interval& x);

  // Hierarchical report path with an outbox that survives orphanhood.
  void queue_report(const Interval& agg);
  void flush_outbox();

  // Failure handling.
  void on_neighbor_failed(ProcessId neighbor, bool was_parent);
  void on_attached(ProcessId new_parent);
  void on_search_exhausted();
  void become_root();
  void handle_attach_request(ProcessId from, SeqNum first_seq);

  /// Re-sending the last delivered aggregate is only coherent when it
  /// directly precedes the next report the parent will see; a node that
  /// generated aggregates while it had no parent (orphan buffering cleared
  /// by become_root, or a partition-root phase) has a gap that must not be
  /// advertised.
  bool should_resend_last() const;
  SeqNum attach_first_seq() const;

  // Subtree-wide parent search (DFS delegation) and the FLIP re-rooting
  // chain — see ft/reattach.hpp.
  void start_delegation(ProcessId orphan);
  void send_next_delegate();
  void handle_delegate(ProcessId from, ProcessId orphan);
  void handle_delegate_fail(ProcessId from, ProcessId orphan);
  void handle_flip(ProcessId from, ProcessId orphan);
  void handle_flip_ack(ProcessId from, SeqNum first_seq);
  void handle_flip_go(ProcessId from);

  void record_occurrence(const detect::OccurrenceRecord& rec);

  ProcessId self_;
  Shared shared_;
  Rng rng_;

  // Dynamic tree view (single source of truth for this node).
  ProcessId parent_ = kNoProcess;
  std::vector<ProcessId> children_;

  trace::AppCore core_;
  std::unique_ptr<trace::AppBehavior> behavior_;
  trace::AppContext actx_;

  std::optional<core::HierNodeEngine> hier_;
  std::optional<detect::CentralSink> sink_;
  std::optional<detect::PossiblySink> possibly_sink_;
  std::optional<detect::SlicingDetector> slicing_sink_;

  std::optional<ft::HeartbeatAgent> hb_;
  std::optional<ft::ReattachProtocol> reattach_;

  // Hierarchical report outbox (pending while orphaned) + last delivered.
  std::deque<Interval> outbox_;
  std::optional<Interval> last_sent_;
  /// Reports are held back until the new parent confirmed the queue exists
  /// (FLIP_GO), so a report cannot overtake the flip handshake.
  bool await_flip_go_ = false;

  // Delegated-search bookkeeping.
  bool searching_as_delegate_ = false;
  ProcessId search_forbidden_ = kNoProcess;
  bool delegating_ = false;
  ProcessId delegation_orphan_ = kNoProcess;
  std::vector<ProcessId> delegation_candidates_;
  std::size_t delegation_next_ = 0;
  ProcessId active_delegate_ = kNoProcess;
  ProcessId pending_flip_child_ = kNoProcess;

  std::uint64_t child_intervals_received_ = 0;
};

}  // namespace hpd::runner
