#include "runner/monitor.hpp"

#include <utility>

#include "common/assert.hpp"

namespace hpd {

Monitor::Monitor(MonitorConfig config) : config_(std::move(config)) {
  HPD_REQUIRE(config_.topology.size() >= 1, "Monitor: empty topology");
  HPD_REQUIRE(config_.topology.connected(),
              "Monitor: topology must be connected");
}

void Monitor::set_predicate(ProcessId node, SimTime time, bool value) {
  scripts_[node].push_back(trace::at_predicate(time, value));
}

void Monitor::add_internal_event(ProcessId node, SimTime time) {
  scripts_[node].push_back(trace::at_internal(time));
}

void Monitor::send_message(ProcessId from, ProcessId to, SimTime time) {
  HPD_REQUIRE(config_.topology.has_edge(from, to),
              "Monitor::send_message: not a topology edge");
  scripts_[from].push_back(trace::at_send(time, to));
}

void Monitor::inject_failure(ProcessId node, SimTime time) {
  failures_.push_back(runner::FailureEvent{time, node});
}

void Monitor::inject_recovery(ProcessId node, SimTime time) {
  recoveries_.push_back(runner::FailureEvent{time, node});
}

void Monitor::set_behavior_factory(
    std::function<std::unique_ptr<trace::AppBehavior>(ProcessId)> factory) {
  factory_ = std::move(factory);
}

void Monitor::on_occurrence(detect::OccurrenceCallback cb) {
  occurrence_cbs_.push_back(std::move(cb));
}

void Monitor::on_global_occurrence(detect::OccurrenceCallback cb) {
  global_cbs_.push_back(std::move(cb));
}

void Monitor::on_group_occurrence(ProcessId group_head,
                                  detect::OccurrenceCallback cb) {
  group_cbs_[group_head].push_back(std::move(cb));
}

runner::ExperimentResult Monitor::run() {
  runner::ExperimentConfig cfg;
  cfg.topology = config_.topology;
  cfg.tree = config_.tree.has_value()
                 ? *config_.tree
                 : net::SpanningTree::bfs_tree(config_.topology, 0);
  cfg.detector = config_.detector;
  cfg.record_execution = config_.record_execution;
  cfg.track_provenance = config_.track_provenance;
  cfg.heartbeats = config_.fault_tolerant;
  cfg.hb_config = config_.heartbeat;
  cfg.reattach_config = config_.reattach;
  cfg.failures = failures_;
  cfg.recoveries = recoveries_;
  cfg.delay = config_.delay;
  cfg.horizon = config_.horizon;
  cfg.drain = config_.drain;
  cfg.seed = config_.seed;
  if (factory_) {
    cfg.behavior_factory = factory_;
  } else {
    cfg.behavior_factory =
        [this](ProcessId id) -> std::unique_ptr<trace::AppBehavior> {
      auto it = scripts_.find(id);
      std::vector<trace::ScriptAction> actions;
      if (it != scripts_.end()) {
        actions = it->second;
      }
      return std::make_unique<trace::ScriptedBehavior>(std::move(actions));
    };
  }

  runner::ExperimentResult result = runner::run_experiment(cfg);

  for (const auto& rec : result.occurrences) {
    for (const auto& cb : occurrence_cbs_) {
      cb(rec);
    }
    if (rec.global) {
      for (const auto& cb : global_cbs_) {
        cb(rec);
      }
    }
    auto it = group_cbs_.find(rec.detector);
    if (it != group_cbs_.end()) {
      for (const auto& cb : it->second) {
        cb(rec);
      }
    }
  }
  return result;
}

}  // namespace hpd
