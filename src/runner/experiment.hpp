// Experiment configuration and results: one simulated run of a detection
// algorithm over a workload, with full cost accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "detect/occurrence.hpp"
#include "detect/queue_engine.hpp"
#include "detect/slicing.hpp"
#include "ft/heartbeat.hpp"
#include "ft/reattach.hpp"
#include "metrics/counters.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "sim/delay.hpp"
#include "sim/strategy.hpp"
#include "trace/behavior.hpp"
#include "trace/execution.hpp"

namespace hpd::parallel {
class ThreadPool;
}  // namespace hpd::parallel

namespace hpd::runner {

enum class DetectorKind {
  kHierarchical,  ///< the paper's Algorithm 1 (one engine per node)
  kCentralized,   ///< the baseline [12] (sink at the tree root, hop relays)
  kPossiblyCentralized,  ///< weak-modality companion (Possibly(Φ) at the sink)
  kSlicing,  ///< computation-slicing sink (slice filter + queue engine)
};

struct FailureEvent {
  SimTime time = 0.0;
  ProcessId node = kNoProcess;
};

struct ExperimentConfig {
  // ---- System shape -------------------------------------------------------
  net::Topology topology{0};
  net::SpanningTree tree{0};  ///< initial spanning tree; root == sink

  // ---- Workload -----------------------------------------------------------
  /// Creates the application behaviour for each process.
  std::function<std::unique_ptr<trace::AppBehavior>(ProcessId)>
      behavior_factory;

  // ---- Detection ----------------------------------------------------------
  DetectorKind detector = DetectorKind::kHierarchical;
  detect::QueueEngine::PruneMode prune_mode =
      detect::QueueEngine::PruneMode::kAllEq10;
  /// Admission rule for DetectorKind::kSlicing (the broken variant exists
  /// for oracle fault-injection tests only).
  detect::SlicingEngine::Mode slicing_mode = detect::SlicingEngine::Mode::kExact;
  /// Bound each detection queue (0 = unbounded): models nodes with fixed
  /// interval memory; full queues reject new intervals (back-pressure).
  std::size_t queue_capacity = 0;
  /// Serialize every protocol message through the byte codec (wire/codec)
  /// and decode at the receiver — exercises the real wire format under
  /// load and fills the byte counters in the metrics.
  bool wire_encoding = false;
  bool track_provenance = false;
  bool record_execution = false;
  /// Store OccurrenceRecords in the result (counts are always collected).
  /// Large sweeps turn this off — records hold full vector timestamps.
  bool keep_occurrence_records = true;
  /// Keep the solution member intervals inside each stored record.
  bool occurrence_solutions = true;
  /// Re-send the last aggregate to a new parent after reattachment
  /// (Section III-F example; reports may have died with the old parent).
  bool resend_last_on_attach = true;
  /// Optional worker pool (not owned) handed to the centralized sink for
  /// large solution-batch aggregations. Bit-identical to the serial path
  /// (detect/par_aggregate.hpp), so the simulation stays deterministic;
  /// only worth attaching for wide clocks (work threshold applies).
  parallel::ThreadPool* aggregate_pool = nullptr;

  // ---- Failure handling ---------------------------------------------------
  bool heartbeats = false;  ///< enable the ft layer (hierarchical mode only)
  ft::HeartbeatConfig hb_config{};
  ft::ReattachConfig reattach_config{};
  std::vector<FailureEvent> failures;
  /// Crash-recovery: bring nodes back at the given times. A recovered node
  /// rejoins with a clean slate (no children, predicate down, stale
  /// intervals discarded) but keeps its vector clock (stable storage) and
  /// its report sequence numbers. In hierarchical+heartbeats mode it then
  /// searches for a parent like any orphan; in centralized mode it simply
  /// resumes reporting along the (static) tree.
  std::vector<FailureEvent> recoveries;

  // ---- Simulation ---------------------------------------------------------
  sim::DelayModel delay = sim::DelayModel::uniform(0.5, 1.5);
  /// Optional message-scheduling strategy (non-owning; see sim/strategy.hpp).
  /// The model checker injects delay-bounded / PCT-style reorderings and
  /// drop/duplicate fault plans through this hook; nullptr = default
  /// per-message sampling from `delay`.
  sim::ScheduleStrategy* strategy = nullptr;
  SimTime horizon = 2000.0;  ///< workload window
  SimTime drain = 100.0;     ///< extra time for in-flight traffic to settle
  std::uint64_t seed = 1;
};

/// Per-(initial-tree-)level detection statistics, the basis for measuring
/// the paper's α (probability child aggregates combine one level up).
struct LevelStats {
  std::uint64_t nodes = 0;
  std::uint64_t solutions = 0;        ///< solutions found at this level
  std::uint64_t child_intervals = 0;  ///< intervals received from children

  /// Empirical α: solutions per received child interval (the paper's model
  /// has #aggregates = α · d · (intervals per child) = α · total received).
  double alpha() const {
    return child_intervals == 0
               ? 0.0
               : static_cast<double>(solutions) /
                     static_cast<double>(child_intervals);
  }
};

struct ExperimentResult {
  /// Every detection, at every node, in detection order
  /// (empty if keep_occurrence_records was false).
  std::vector<detect::OccurrenceRecord> occurrences;
  /// Detections flagged global (at the root / sink) — always counted.
  std::uint64_t global_count = 0;
  MetricsRegistry metrics;
  trace::ExecutionRecord execution;  ///< populated iff record_execution
  SimTime end_time = 0.0;
  std::uint64_t sim_events = 0;
  std::uint64_t dropped_messages = 0;
  std::map<int, LevelStats> levels;  ///< keyed by initial-tree level (leaf=1)

  /// Final control state, for validation under failures.
  std::vector<ProcessId> final_parents;
  std::vector<bool> final_alive;

  std::size_t global_occurrences() const;
  /// Weighted empirical α across internal levels.
  double measured_alpha() const;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace hpd::runner
