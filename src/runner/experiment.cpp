#include "runner/experiment.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "proto/messages.hpp"
#include "runner/process_runtime.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace hpd::runner {

std::size_t ExperimentResult::global_occurrences() const {
  return static_cast<std::size_t>(global_count);
}

double ExperimentResult::measured_alpha() const {
  std::uint64_t solutions = 0;
  std::uint64_t child_intervals = 0;
  for (const auto& [level, stats] : levels) {
    if (level >= 2) {  // internal nodes only
      solutions += stats.solutions;
      child_intervals += stats.child_intervals;
    }
  }
  return child_intervals == 0 ? 0.0
                              : static_cast<double>(solutions) /
                                    static_cast<double>(child_intervals);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const std::size_t n = config.topology.size();
  HPD_REQUIRE(n >= 1, "run_experiment: empty system");
  HPD_REQUIRE(config.tree.size() == n, "run_experiment: tree/topology size");
  HPD_REQUIRE(config.tree.valid(), "run_experiment: invalid spanning tree");
  HPD_REQUIRE(config.tree.respects(config.topology),
              "run_experiment: tree edge missing from topology");
  HPD_REQUIRE(config.behavior_factory != nullptr,
              "run_experiment: behavior_factory is required");

  ExperimentResult result;
  result.metrics.resize(n);
  proto::register_message_names(result.metrics);

  Rng master(config.seed);
  Rng net_rng = master.split();
  sim::Scheduler sched;
  sim::Network net(
      n, sched, net_rng, config.delay, result.metrics,
      [topo = &config.topology](ProcessId a, ProcessId b) {
        return topo->has_edge(a, b);
      });
  net.set_strategy(config.strategy);

  ProcessRuntime::Shared shared;
  shared.config = &config;
  shared.net = &net;
  shared.metrics = &result.metrics;
  shared.occurrences =
      config.keep_occurrence_records ? &result.occurrences : nullptr;
  shared.global_count = &result.global_count;
  shared.sink = config.tree.root();

  std::vector<std::unique_ptr<ProcessRuntime>> procs;
  procs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<ProcessRuntime>(
        static_cast<ProcessId>(i), shared, master.split()));
    net.register_node(static_cast<ProcessId>(i), *procs.back());
  }

  for (const FailureEvent& f : config.failures) {
    HPD_REQUIRE(f.node >= 0 && idx(f.node) < n,
                "run_experiment: failure of unknown node");
    sched.schedule_at(f.time, [&net, node = f.node] { net.crash(node); });
  }
  for (const FailureEvent& r : config.recoveries) {
    HPD_REQUIRE(r.node >= 0 && idx(r.node) < n,
                "run_experiment: recovery of unknown node");
    sched.schedule_at(r.time, [&net, &procs, node = r.node] {
      net.revive(node);
      procs[idx(node)]->on_revive();
    });
  }

  net.start();
  sched.run_until(config.horizon);

  // Close still-open intervals so detectors see the tail of the execution,
  // then let the resulting reports settle.
  for (std::size_t i = 0; i < n; ++i) {
    if (net.alive(static_cast<ProcessId>(i))) {
      procs[i]->finalize_app();
    }
  }
  sched.run_until(config.horizon + config.drain);

  // ---- Collect ------------------------------------------------------------
  result.end_time = sched.now();
  result.sim_events = sched.executed();
  result.dropped_messages = net.dropped_messages();
  result.final_parents.resize(n, kNoProcess);
  result.final_alive.resize(n, false);
  if (config.record_execution) {
    result.execution.procs.resize(n);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<ProcessId>(i);
    ProcessRuntime& rt = *procs[i];
    NodeMetrics& m = result.metrics.node(id);
    const detect::QueueEngine* engine = nullptr;
    if (rt.hier() != nullptr) {
      engine = &rt.hier()->engine();
    } else if (rt.sink() != nullptr) {
      engine = &rt.sink()->engine();
    } else if (rt.slicing_sink() != nullptr) {
      engine = &rt.slicing_sink()->engine();
    }
    if (engine != nullptr) {
      m.vc_comparisons = engine->comparisons();
      m.intervals_enqueued = engine->offered();
      m.intervals_stored_peak = engine->stored_peak();
      if (rt.slicing_sink() != nullptr) {
        // The slicer's own search cost rides on the same counter so the
        // comparison against the other engines stays apples-to-apples.
        m.vc_comparisons += rt.slicing_sink()->slicer().slice_comparisons();
      }
    } else if (rt.possibly_sink() != nullptr) {
      const auto& pe = rt.possibly_sink()->engine();
      m.vc_comparisons = pe.comparisons();
      m.intervals_enqueued = pe.offered();
      m.intervals_stored_peak = pe.stored_peak();
    }
    result.final_parents[i] = rt.current_parent();
    result.final_alive[i] = net.alive(id);
    if (config.record_execution) {
      result.execution.procs[i] = rt.core().recorded();
    }

    const int level = config.tree.level(id);
    LevelStats& ls = result.levels[level];
    ls.nodes += 1;
    ls.solutions += m.detections;
    ls.child_intervals += rt.child_intervals_received();
  }
  return result;
}

}  // namespace hpd::runner
