// hpd::Monitor — the user-facing facade.
//
// A Monitor owns a simulated deployment of the paper's system: you describe
// the network, (optionally) the spanning tree, what each node's local
// predicate does over time — either by scripting state changes / messages
// explicitly, or by installing a workload behaviour factory — and then run.
// Detections surface through callbacks: every subtree-level detection, or
// only the global (root) ones.
//
// Quick start (see examples/quickstart.cpp):
//
//   hpd::MonitorConfig cfg;
//   cfg.topology = hpd::net::Topology::grid(3, 3);
//   hpd::Monitor mon(cfg);
//   mon.set_predicate(4, 10.0, true);   // node 4's predicate rises at t=10
//   mon.send_message(4, 1, 11.0);       // causal crossings
//   ...
//   mon.on_global_occurrence([](const auto& rec) { ... alarm ... });
//   mon.run();
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "runner/experiment.hpp"
#include "trace/scripted.hpp"

namespace hpd {

struct MonitorConfig {
  net::Topology topology{0};
  /// Spanning tree; defaults to a BFS tree rooted at node 0.
  std::optional<net::SpanningTree> tree;
  runner::DetectorKind detector = runner::DetectorKind::kHierarchical;
  /// Enable heartbeats + reattachment (needed to survive inject_failure).
  bool fault_tolerant = false;
  ft::HeartbeatConfig heartbeat{};
  ft::ReattachConfig reattach{};
  sim::DelayModel delay = sim::DelayModel::uniform(0.5, 1.5);
  SimTime horizon = 1000.0;
  SimTime drain = 100.0;
  std::uint64_t seed = 1;
  bool record_execution = false;
  bool track_provenance = false;
};

class Monitor {
 public:
  explicit Monitor(MonitorConfig config);

  // ---- Scripted workload ---------------------------------------------------

  /// Schedule node's local predicate to become `value` at `time`.
  void set_predicate(ProcessId node, SimTime time, bool value);

  /// Schedule an internal event (predicate unchanged).
  void add_internal_event(ProcessId node, SimTime time);

  /// Schedule an application message from → to (must be a topology edge);
  /// this is what creates happens-before crossings between processes.
  void send_message(ProcessId from, ProcessId to, SimTime time);

  /// Crash-stop `node` at `time` (enable fault_tolerant to survive it).
  void inject_failure(ProcessId node, SimTime time);

  /// Bring a crashed node back at `time`: it rejoins as a fresh leaf and
  /// the monitored conjunction re-covers it (crash-recovery extension).
  void inject_recovery(ProcessId node, SimTime time);

  /// Replace the scripted workload with a generated one (e.g. PulseBehavior
  /// / GossipBehavior factories). Clears nothing: scripted actions are
  /// ignored when a factory is installed.
  void set_behavior_factory(
      std::function<std::unique_ptr<trace::AppBehavior>(ProcessId)> factory);

  // ---- Detection callbacks --------------------------------------------------

  /// Every detection at every node (subtree-level monitoring).
  void on_occurrence(detect::OccurrenceCallback cb);

  /// Only detections at the root / sink (the full conjunction).
  void on_global_occurrence(detect::OccurrenceCallback cb);

  /// Group-level monitoring (the paper's "finer-grained monitoring" for
  /// large-scale networks): only detections made *at* `group_head`, i.e.
  /// satisfactions of the partial conjunction over the subtree rooted
  /// there in the initial spanning tree.
  void on_group_occurrence(ProcessId group_head, detect::OccurrenceCallback cb);

  // ---- Run -------------------------------------------------------------------

  /// Execute the deployment. Callbacks fire in detection order after the
  /// simulation completes; the full result (metrics, occurrence list,
  /// recorded execution) is returned for further inspection.
  runner::ExperimentResult run();

 private:
  MonitorConfig config_;
  std::map<ProcessId, std::vector<trace::ScriptAction>> scripts_;
  std::vector<runner::FailureEvent> failures_;
  std::vector<runner::FailureEvent> recoveries_;
  std::function<std::unique_ptr<trace::AppBehavior>(ProcessId)> factory_;
  std::vector<detect::OccurrenceCallback> occurrence_cbs_;
  std::vector<detect::OccurrenceCallback> global_cbs_;
  std::map<ProcessId, std::vector<detect::OccurrenceCallback>> group_cbs_;
};

}  // namespace hpd
