// Spanning-tree reconnection after a crash (paper, Section III-F).
//
// When node f fails, each of f's children becomes the root of an orphaned
// subtree and must "establish a link between a node in the subtree and its
// neighbor which is still in the spanning tree". This planner computes such
// reattachments from global knowledge; the on-line message-based protocol in
// src/ft implements the same policy with local information, and the tests
// check both produce valid trees.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"

namespace hpd::net {

struct RepairAction {
  ProcessId subtree_node;  ///< node inside the orphaned subtree that reattaches
  ProcessId new_parent;    ///< live node of the main tree it attaches to
};

struct RepairPlan {
  /// Equals the old root unless the root itself failed, in which case the
  /// first orphaned subtree's root takes over.
  ProcessId new_root = kNoProcess;
  std::vector<RepairAction> attachments;
};

/// Plan reattachments for every subtree orphaned by the failure of `failed`.
/// `alive` reflects liveness *after* the failure. Prefers attaching the
/// orphaned subtree root directly to a live topology neighbour of smallest
/// depth; falls back to any (subtree node, main-tree node) topology edge —
/// in that case the orphaned subtree is re-rooted at the attaching node.
/// Returns std::nullopt if some orphaned subtree cannot reach the main tree
/// (the topology minus dead nodes is disconnected).
std::optional<RepairPlan> plan_repair(const SpanningTree& tree,
                                      const Topology& topo,
                                      const std::vector<bool>& alive,
                                      ProcessId failed);

/// Apply a plan produced by plan_repair on the same (unmodified) tree:
/// detaches `failed`, re-roots subtrees where needed, and reattaches them.
void apply_repair(SpanningTree& tree, const RepairPlan& plan,
                  ProcessId failed);

}  // namespace hpd::net
