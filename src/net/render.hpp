// Plain-text rendering of spanning trees (and final repaired forests) for
// examples and the hpd_sim CLI.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/spanning_tree.hpp"

namespace hpd::net {

/// ASCII box-drawing rendering:
///   0
///   ├─ 1
///   │  ├─ 3
///   │  └─ 4
///   └─ 2
/// `alive` (optional) marks dead nodes with a cross.
void render_tree(std::ostream& os, const SpanningTree& tree,
                 const std::vector<bool>* alive = nullptr);

/// Render a forest described by parent pointers (what ExperimentResult's
/// final_parents holds after failures): every kNoProcess entry is a root.
void render_forest(std::ostream& os, const std::vector<ProcessId>& parents,
                   const std::vector<bool>* alive = nullptr);

std::string tree_to_string(const SpanningTree& tree,
                           const std::vector<bool>* alive = nullptr);

}  // namespace hpd::net
