#include "net/render.hpp"

#include <ostream>
#include <sstream>

namespace hpd::net {

namespace {

struct Renderer {
  std::ostream& os;
  const std::vector<std::vector<ProcessId>>& children;
  const std::vector<bool>* alive;

  void node_label(ProcessId id) {
    os << id;
    if (alive != nullptr && !(*alive)[idx(id)]) {
      os << " x(dead)";
    }
    os << "\n";
  }

  void walk(ProcessId id, const std::string& prefix) {
    const auto& kids = children[idx(id)];
    for (std::size_t k = 0; k < kids.size(); ++k) {
      const bool last = (k + 1 == kids.size());
      os << prefix << (last ? "`- " : "|- ");
      node_label(kids[k]);
      walk(kids[k], prefix + (last ? "   " : "|  "));
    }
  }

  void root(ProcessId id) {
    node_label(id);
    walk(id, "");
  }
};

std::vector<std::vector<ProcessId>> children_of(
    const std::vector<ProcessId>& parents) {
  std::vector<std::vector<ProcessId>> children(parents.size());
  for (std::size_t i = 0; i < parents.size(); ++i) {
    const ProcessId p = parents[i];
    if (p != kNoProcess) {
      children[idx(p)].push_back(static_cast<ProcessId>(i));
    }
  }
  return children;
}

}  // namespace

void render_tree(std::ostream& os, const SpanningTree& tree,
                 const std::vector<bool>* alive) {
  std::vector<ProcessId> parents(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    parents[i] = tree.parent(static_cast<ProcessId>(i));
  }
  render_forest(os, parents, alive);
}

void render_forest(std::ostream& os, const std::vector<ProcessId>& parents,
                   const std::vector<bool>* alive) {
  const auto children = children_of(parents);
  Renderer renderer{os, children, alive};
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (parents[i] != kNoProcess) {
      continue;
    }
    const auto id = static_cast<ProcessId>(i);
    // Dead detached nodes are only worth a line if requested via `alive`.
    if (alive != nullptr && !(*alive)[i] && children[i].empty()) {
      os << id << " x(dead)\n";
      continue;
    }
    renderer.root(id);
  }
}

std::string tree_to_string(const SpanningTree& tree,
                           const std::vector<bool>* alive) {
  std::ostringstream os;
  render_tree(os, tree, alive);
  return os.str();
}

}  // namespace hpd::net
