#include "net/spanning_tree.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace hpd::net {

SpanningTree::SpanningTree(std::size_t n)
    : parent_(n, kNoProcess), children_(n) {}

void SpanningTree::check(ProcessId id) const {
  HPD_REQUIRE(id >= 0 && idx(id) < parent_.size(), "SpanningTree: bad id");
}

void SpanningTree::set_root(ProcessId id) {
  check(id);
  HPD_REQUIRE(parent_[idx(id)] == kNoProcess,
              "SpanningTree::set_root: root cannot have a parent");
  root_ = id;
}

ProcessId SpanningTree::parent(ProcessId id) const {
  check(id);
  return parent_[idx(id)];
}

const std::vector<ProcessId>& SpanningTree::children(ProcessId id) const {
  check(id);
  return children_[idx(id)];
}

void SpanningTree::set_parent(ProcessId child, ProcessId new_parent) {
  check(child);
  check(new_parent);
  HPD_REQUIRE(child != new_parent, "SpanningTree: self parent");
  HPD_REQUIRE(!in_subtree(new_parent, child),
              "SpanningTree: attaching under own descendant creates a cycle");
  detach(child);
  parent_[idx(child)] = new_parent;
  auto& kids = children_[idx(new_parent)];
  kids.insert(std::upper_bound(kids.begin(), kids.end(), child), child);
}

void SpanningTree::detach(ProcessId child) {
  check(child);
  const ProcessId p = parent_[idx(child)];
  if (p == kNoProcess) {
    return;
  }
  auto& kids = children_[idx(p)];
  kids.erase(std::remove(kids.begin(), kids.end(), child), kids.end());
  parent_[idx(child)] = kNoProcess;
}

int SpanningTree::depth(ProcessId id) const {
  check(id);
  int d = 0;
  ProcessId cur = id;
  while (cur != root_) {
    const ProcessId p = parent_[idx(cur)];
    if (p == kNoProcess) {
      return -1;  // detached from the root's tree
    }
    cur = p;
    ++d;
    HPD_ASSERT(d <= static_cast<int>(parent_.size()),
               "SpanningTree::depth: cycle detected");
  }
  return d;
}

int SpanningTree::level(ProcessId id) const {
  check(id);
  int best = 1;
  for (ProcessId c : children_[idx(id)]) {
    best = std::max(best, 1 + level(c));
  }
  return best;
}

int SpanningTree::height() const {
  HPD_REQUIRE(root_ != kNoProcess, "SpanningTree::height: no root");
  return level(root_);
}

std::size_t SpanningTree::max_degree() const {
  std::size_t best = 0;
  for (const auto& kids : children_) {
    best = std::max(best, kids.size());
  }
  return best;
}

std::vector<ProcessId> SpanningTree::subtree(ProcessId id) const {
  check(id);
  std::vector<ProcessId> out;
  std::vector<ProcessId> stack{id};
  while (!stack.empty()) {
    const ProcessId u = stack.back();
    stack.pop_back();
    out.push_back(u);
    const auto& kids = children_[idx(u)];
    // Push in reverse so preorder visits children in ascending order.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

bool SpanningTree::in_subtree(ProcessId node, ProcessId subtree_root) const {
  check(node);
  check(subtree_root);
  ProcessId cur = node;
  std::size_t hops = 0;
  while (cur != kNoProcess) {
    if (cur == subtree_root) {
      return true;
    }
    cur = parent_[idx(cur)];
    HPD_ASSERT(++hops <= parent_.size(), "SpanningTree: cycle detected");
  }
  return false;
}

std::vector<ProcessId> SpanningTree::path_to_root(ProcessId id) const {
  check(id);
  std::vector<ProcessId> path;
  ProcessId cur = id;
  while (cur != kNoProcess) {
    path.push_back(cur);
    HPD_ASSERT(path.size() <= parent_.size(),
               "SpanningTree::path_to_root: cycle detected");
    cur = parent_[idx(cur)];
  }
  return path;
}

bool SpanningTree::valid(const std::vector<bool>* alive) const {
  if (root_ == kNoProcess) {
    return false;
  }
  auto live = [&](ProcessId p) {
    return alive == nullptr || (*alive)[idx(p)];
  };
  if (!live(root_) || parent_[idx(root_)] != kNoProcess) {
    return false;
  }
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    const auto id = static_cast<ProcessId>(i);
    const ProcessId p = parent_[i];
    if (p != kNoProcess) {
      // parent/children must agree
      const auto& kids = children_[idx(p)];
      if (!std::binary_search(kids.begin(), kids.end(), id)) {
        return false;
      }
    }
    for (ProcessId c : children_[i]) {
      if (parent_[idx(c)] != id) {
        return false;
      }
    }
    if (!live(id)) {
      // Dead nodes must be fully detached.
      if (p != kNoProcess || !children_[i].empty()) {
        return false;
      }
      continue;
    }
    // Every live node must reach the root without a cycle.
    ProcessId cur = id;
    std::size_t hops = 0;
    while (cur != root_) {
      cur = parent_[idx(cur)];
      if (cur == kNoProcess || ++hops > parent_.size()) {
        return false;
      }
    }
  }
  return true;
}

bool SpanningTree::respects(const Topology& topo) const {
  HPD_REQUIRE(topo.size() == parent_.size(),
              "SpanningTree::respects: size mismatch");
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    const ProcessId p = parent_[i];
    if (p != kNoProcess && !topo.has_edge(static_cast<ProcessId>(i), p)) {
      return false;
    }
  }
  return true;
}

std::size_t SpanningTree::balanced_dary_size(std::size_t d, std::size_t h) {
  HPD_REQUIRE(d >= 1 && h >= 1, "balanced_dary_size: bad parameters");
  std::size_t total = 0;
  std::size_t level_count = 1;
  for (std::size_t i = 0; i < h; ++i) {
    total += level_count;
    level_count *= d;
  }
  return total;
}

SpanningTree SpanningTree::balanced_dary(std::size_t d, std::size_t h) {
  HPD_REQUIRE(d >= 1 && h >= 1, "balanced_dary: bad parameters");
  const std::size_t n = balanced_dary_size(d, h);
  SpanningTree tree(n);
  tree.set_root(0);
  // BFS numbering: the children of node i are d*i + 1 .. d*i + d.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 1; k <= d; ++k) {
      const std::size_t c = d * i + k;
      if (c < n) {
        tree.set_parent(static_cast<ProcessId>(c), static_cast<ProcessId>(i));
      }
    }
  }
  return tree;
}

SpanningTree SpanningTree::bfs_tree(const Topology& topo, ProcessId root) {
  HPD_REQUIRE(root >= 0 && idx(root) < topo.size(), "bfs_tree: bad root");
  HPD_REQUIRE(topo.connected(), "bfs_tree: topology must be connected");
  SpanningTree tree(topo.size());
  tree.set_root(root);
  std::vector<bool> seen(topo.size(), false);
  seen[idx(root)] = true;
  std::deque<ProcessId> frontier{root};
  while (!frontier.empty()) {
    const ProcessId u = frontier.front();
    frontier.pop_front();
    for (ProcessId v : topo.neighbors(u)) {
      if (!seen[idx(v)]) {
        seen[idx(v)] = true;
        tree.set_parent(v, u);
        frontier.push_back(v);
      }
    }
  }
  return tree;
}

SpanningTree SpanningTree::from_parents(const std::vector<ProcessId>& parents,
                                        ProcessId root) {
  SpanningTree tree(parents.size());
  tree.set_root(root);
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (parents[i] != kNoProcess) {
      tree.set_parent(static_cast<ProcessId>(i), parents[i]);
    } else {
      HPD_REQUIRE(static_cast<ProcessId>(i) == root,
                  "from_parents: only the root may lack a parent");
    }
  }
  HPD_REQUIRE(tree.valid(), "from_parents: parent array is not a tree");
  return tree;
}

Topology tree_topology(const SpanningTree& tree) {
  Topology topo(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<ProcessId>(i);
    if (tree.parent(id) != kNoProcess) {
      topo.add_edge(id, tree.parent(id));
    }
  }
  return topo;
}

}  // namespace hpd::net
