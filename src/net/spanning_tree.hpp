// Rooted spanning trees: the hierarchy along which the paper's algorithm
// detects, aggregates, and reports.
//
// Levels follow the paper's convention: leaves are level 1 and the root of
// a balanced tree of height h is level h. The "paper-model" d-ary tree has
// every internal node with exactly d children and all leaves at level 1,
// totalling (d^h - 1) / (d - 1) nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace hpd::net {

class SpanningTree {
 public:
  /// A forest of n isolated nodes; use set_root / set_parent to shape it.
  explicit SpanningTree(std::size_t n);

  std::size_t size() const { return parent_.size(); }

  ProcessId root() const { return root_; }
  void set_root(ProcessId id);

  /// kNoProcess for the root (and for detached nodes).
  ProcessId parent(ProcessId id) const;

  const std::vector<ProcessId>& children(ProcessId id) const;

  bool is_leaf(ProcessId id) const { return children(id).empty(); }

  /// Attach / re-attach `child` under `new_parent`, keeping children lists
  /// consistent. Rejects attaching a node under its own descendant.
  void set_parent(ProcessId child, ProcessId new_parent);

  /// Detach `child` from its parent (it becomes the root of its own
  /// disconnected subtree). Used when a node crashes.
  void detach(ProcessId child);

  /// Hop distance to the root; -1 if detached from the root's tree.
  int depth(ProcessId id) const;

  /// Paper's level: height of the subtree rooted at id (leaves = 1).
  int level(ProcessId id) const;

  /// Number of levels of the whole tree (= level(root)).
  int height() const;

  /// Maximum number of children over all nodes (the paper's d).
  std::size_t max_degree() const;

  /// All nodes of the subtree rooted at id, preorder.
  std::vector<ProcessId> subtree(ProcessId id) const;

  bool in_subtree(ProcessId node, ProcessId subtree_root) const;

  /// node, parent(node), ..., root.
  std::vector<ProcessId> path_to_root(ProcessId id) const;

  /// Structural validity: exactly one root, parent/children agree, no cycle,
  /// every node reaches the root. With `alive`, only live nodes are required
  /// to be attached (dead ones must be detached and childless).
  bool valid(const std::vector<bool>* alive = nullptr) const;

  /// Every tree edge must be a topology edge.
  bool respects(const Topology& topo) const;

  // ---- Builders ---------------------------------------------------------

  /// Paper-model balanced d-ary tree of height h (h levels, leaves level 1).
  /// Node 0 is the root; ids are assigned in BFS order.
  static SpanningTree balanced_dary(std::size_t d, std::size_t h);

  /// Number of nodes of the paper-model tree: sum_{i=0}^{h-1} d^i.
  static std::size_t balanced_dary_size(std::size_t d, std::size_t h);

  /// BFS spanning tree of a connected topology rooted at `root`.
  static SpanningTree bfs_tree(const Topology& topo, ProcessId root);

  /// Build from an explicit parent array (kNoProcess exactly at `root`).
  static SpanningTree from_parents(const std::vector<ProcessId>& parents,
                                   ProcessId root);

 private:
  void check(ProcessId id) const;

  std::vector<ProcessId> parent_;
  std::vector<std::vector<ProcessId>> children_;
  ProcessId root_ = kNoProcess;
};

/// The topology consisting of exactly the tree's edges (used by the figure
/// benches, where the network *is* the tree).
Topology tree_topology(const SpanningTree& tree);

}  // namespace hpd::net
