#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace hpd::net {

void Topology::check(ProcessId a) const {
  HPD_REQUIRE(a >= 0 && idx(a) < adj_.size(), "Topology: bad process id");
}

void Topology::add_edge(ProcessId a, ProcessId b) {
  check(a);
  check(b);
  HPD_REQUIRE(a != b, "Topology: self-loop");
  if (has_edge(a, b)) {
    return;
  }
  auto insert_sorted = [](std::vector<ProcessId>& v, ProcessId x) {
    v.insert(std::upper_bound(v.begin(), v.end(), x), x);
  };
  insert_sorted(adj_[idx(a)], b);
  insert_sorted(adj_[idx(b)], a);
  ++num_edges_;
}

bool Topology::has_edge(ProcessId a, ProcessId b) const {
  check(a);
  check(b);
  const auto& v = adj_[idx(a)];
  return std::binary_search(v.begin(), v.end(), b);
}

const std::vector<ProcessId>& Topology::neighbors(ProcessId a) const {
  check(a);
  return adj_[idx(a)];
}

bool Topology::connected(const std::vector<bool>* alive) const {
  if (adj_.empty()) {
    return true;
  }
  auto is_alive = [&](std::size_t i) { return alive == nullptr || (*alive)[i]; };
  std::size_t start = adj_.size();
  std::size_t live_total = 0;
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    if (is_alive(i)) {
      ++live_total;
      if (start == adj_.size()) {
        start = i;
      }
    }
  }
  if (live_total == 0) {
    return true;
  }
  const auto dist = bfs_distances(static_cast<ProcessId>(start), alive);
  std::size_t reached = 0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    if (is_alive(i) && dist[i] >= 0) {
      ++reached;
    }
  }
  return reached == live_total;
}

std::vector<int> Topology::bfs_distances(ProcessId src,
                                         const std::vector<bool>* alive) const {
  check(src);
  auto is_alive = [&](ProcessId p) {
    return alive == nullptr || (*alive)[idx(p)];
  };
  std::vector<int> dist(adj_.size(), -1);
  if (!is_alive(src)) {
    return dist;
  }
  std::deque<ProcessId> frontier{src};
  dist[idx(src)] = 0;
  while (!frontier.empty()) {
    const ProcessId u = frontier.front();
    frontier.pop_front();
    for (ProcessId v : adj_[idx(u)]) {
      if (dist[idx(v)] < 0 && is_alive(v)) {
        dist[idx(v)] = dist[idx(u)] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

Topology Topology::complete(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      t.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(j));
    }
  }
  return t;
}

Topology Topology::ring(std::size_t n) {
  HPD_REQUIRE(n >= 3, "Topology::ring: need at least 3 nodes");
  Topology t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add_edge(static_cast<ProcessId>(i),
               static_cast<ProcessId>((i + 1) % n));
  }
  return t;
}

Topology Topology::star(std::size_t n) {
  HPD_REQUIRE(n >= 2, "Topology::star: need at least 2 nodes");
  Topology t(n);
  for (std::size_t i = 1; i < n; ++i) {
    t.add_edge(0, static_cast<ProcessId>(i));
  }
  return t;
}

Topology Topology::grid(std::size_t rows, std::size_t cols) {
  HPD_REQUIRE(rows >= 1 && cols >= 1, "Topology::grid: empty grid");
  Topology t(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<ProcessId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        t.add_edge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows) {
        t.add_edge(id(r, c), id(r + 1, c));
      }
    }
  }
  return t;
}

Topology Topology::random_geometric(std::size_t n, double radius, Rng& rng,
                                    bool ensure_connected) {
  HPD_REQUIRE(n >= 1, "Topology::random_geometric: empty graph");
  HPD_REQUIRE(radius > 0.0, "Topology::random_geometric: bad radius");
  Topology t(n);
  t.positions_.resize(n);
  for (auto& p : t.positions_) {
    p.first = rng.uniform01();
    p.second = rng.uniform01();
  }
  auto dist2 = [&](std::size_t i, std::size_t j) {
    const double dx = t.positions_[i].first - t.positions_[j].first;
    const double dy = t.positions_[i].second - t.positions_[j].second;
    return dx * dx + dy * dy;
  };
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist2(i, j) <= r2) {
        t.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(j));
      }
    }
  }
  if (ensure_connected) {
    // Union components by repeatedly bridging the globally nearest pair of
    // nodes that lie in different components.
    while (!t.connected()) {
      const auto dist = t.bfs_distances(0);
      double best = std::numeric_limits<double>::infinity();
      std::size_t bi = 0;
      std::size_t bj = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (dist[i] < 0) {
          continue;  // i not in component of node 0
        }
        for (std::size_t j = 0; j < n; ++j) {
          if (dist[j] >= 0) {
            continue;  // j in the same component
          }
          const double d2 = dist2(i, j);
          if (d2 < best) {
            best = d2;
            bi = i;
            bj = j;
          }
        }
      }
      t.add_edge(static_cast<ProcessId>(bi), static_cast<ProcessId>(bj));
    }
  }
  return t;
}

Topology Topology::small_world(std::size_t n, std::size_t k, double beta,
                               Rng& rng) {
  HPD_REQUIRE(n >= 4 && k >= 2 && k % 2 == 0 && k < n,
              "Topology::small_world: need n >= 4, even k in [2, n)");
  HPD_REQUIRE(beta >= 0.0 && beta <= 1.0, "Topology::small_world: bad beta");
  Topology t(n);
  // Ring lattice: node i links to the k/2 clockwise neighbours. The
  // distance-1 edge is never rewired, keeping the backbone ring intact
  // (hence connectivity).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k / 2; ++d) {
      std::size_t j = (i + d) % n;
      if (d > 1 && rng.bernoulli(beta)) {
        // Rewire to a uniform random non-neighbour.
        for (int attempts = 0; attempts < 32; ++attempts) {
          const std::size_t cand = rng.uniform_index(n);
          if (cand != i &&
              !t.has_edge(static_cast<ProcessId>(i),
                          static_cast<ProcessId>(cand))) {
            j = cand;
            break;
          }
        }
      }
      if (!t.has_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(j))) {
        t.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(j));
      }
    }
  }
  return t;
}

Topology Topology::scale_free(std::size_t n, std::size_t m, Rng& rng) {
  HPD_REQUIRE(m >= 1 && n > m + 1, "Topology::scale_free: need n > m + 1");
  Topology t(n);
  // Seed clique of m + 1 nodes.
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = i + 1; j <= m; ++j) {
      t.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(j));
    }
  }
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // edge contributes both endpoints to the urn.
  std::vector<ProcessId> urn;
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t r = 0; r < m; ++r) {
      urn.push_back(static_cast<ProcessId>(i));
    }
  }
  for (std::size_t v = m + 1; v < n; ++v) {
    std::vector<ProcessId> targets;
    while (targets.size() < m) {
      const ProcessId pick = urn[rng.uniform_index(urn.size())];
      if (std::find(targets.begin(), targets.end(), pick) == targets.end()) {
        targets.push_back(pick);
      }
    }
    for (const ProcessId u : targets) {
      t.add_edge(static_cast<ProcessId>(v), u);
      urn.push_back(u);
      urn.push_back(static_cast<ProcessId>(v));
    }
  }
  return t;
}

Topology Topology::tree_plus_crosslinks(const Topology& tree_edges,
                                        std::size_t extra, Rng& rng) {
  Topology t = tree_edges;
  const std::size_t n = t.size();
  HPD_REQUIRE(n >= 3, "tree_plus_crosslinks: too small");
  std::size_t added = 0;
  for (int attempts = 0; added < extra && attempts < 1000; ++attempts) {
    const auto a = static_cast<ProcessId>(rng.uniform_index(n));
    const auto b = static_cast<ProcessId>(rng.uniform_index(n));
    if (a != b && !t.has_edge(a, b)) {
      t.add_edge(a, b);
      ++added;
    }
  }
  return t;
}

}  // namespace hpd::net
