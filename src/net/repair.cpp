#include "net/repair.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace hpd::net {

namespace {

/// Reverse parent pointers along new_root .. old subtree root, making
/// `new_root` the root of its (detached) subtree.
void reroot_subtree(SpanningTree& tree, ProcessId new_root) {
  std::vector<ProcessId> path = tree.path_to_root(new_root);
  // path = new_root, p1, ..., old_subtree_root (walk stops at a detached
  // node, which is exactly the orphaned subtree's root).
  tree.detach(new_root);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    tree.set_parent(path[i + 1], path[i]);
  }
}

}  // namespace

std::optional<RepairPlan> plan_repair(const SpanningTree& tree,
                                      const Topology& topo,
                                      const std::vector<bool>& alive,
                                      ProcessId failed) {
  HPD_REQUIRE(tree.size() == topo.size() && alive.size() == tree.size(),
              "plan_repair: size mismatch");
  HPD_REQUIRE(!alive[idx(failed)], "plan_repair: failed node still alive");

  RepairPlan plan;
  std::vector<ProcessId> orphan_roots = tree.children(failed);

  // Membership of the main (still-rooted) tree after removing `failed`.
  std::vector<bool> in_main(tree.size(), false);
  if (failed == tree.root()) {
    if (orphan_roots.empty()) {
      return std::nullopt;  // the whole system died
    }
    plan.new_root = orphan_roots.front();
    for (ProcessId u : tree.subtree(plan.new_root)) {
      in_main[idx(u)] = true;
    }
    orphan_roots.erase(orphan_roots.begin());
  } else {
    plan.new_root = tree.root();
    for (std::size_t i = 0; i < tree.size(); ++i) {
      in_main[i] = alive[i];
    }
    for (ProcessId u : tree.subtree(failed)) {
      in_main[idx(u)] = false;
    }
  }

  // Depths in the evolving main tree. Attachment changes depths only inside
  // the just-attached subtree, which we update incrementally.
  std::vector<int> depth(tree.size(), -1);
  auto seed_depths = [&](ProcessId sub_root, int base) {
    // Assign BFS depths below sub_root from its (possibly re-rooted) shape.
    // We only need approximate preference ordering, so pre-repair shape is
    // fine for planning; exact depths are recomputed by callers if needed.
    for (ProcessId u : tree.subtree(sub_root)) {
      depth[idx(u)] = base + (tree.depth(u) - tree.depth(sub_root));
    }
  };
  if (failed == tree.root()) {
    seed_depths(plan.new_root, 0);
  } else {
    for (std::size_t i = 0; i < tree.size(); ++i) {
      if (in_main[i]) {
        depth[i] = tree.depth(static_cast<ProcessId>(i));
      }
    }
  }

  // An orphan may only reach the main tree through a sibling orphan that
  // attaches first, so iterate to a fixpoint instead of a single pass.
  std::vector<ProcessId> waiting = orphan_roots;
  while (!waiting.empty()) {
    bool progress = false;
    std::vector<ProcessId> still_waiting;
    for (ProcessId orphan : waiting) {
      const std::vector<ProcessId> members = tree.subtree(orphan);
      ProcessId best_node = kNoProcess;
      ProcessId best_parent = kNoProcess;
      int best_depth = std::numeric_limits<int>::max();
      bool best_is_root = false;
      for (ProcessId u : members) {
        for (ProcessId w : topo.neighbors(u)) {
          if (!in_main[idx(w)] || !alive[idx(w)]) {
            continue;
          }
          const bool u_is_root = (u == orphan);
          const int dw = depth[idx(w)];
          // Prefer attaching the orphan root itself; then smaller depth.
          const bool better =
              (u_is_root && !best_is_root) ||
              (u_is_root == best_is_root && dw < best_depth);
          if (best_node == kNoProcess || better) {
            best_node = u;
            best_parent = w;
            best_depth = dw;
            best_is_root = u_is_root;
          }
        }
      }
      if (best_node == kNoProcess) {
        still_waiting.push_back(orphan);
        continue;
      }
      progress = true;
      plan.attachments.push_back(RepairAction{best_node, best_parent});
      for (ProcessId u : members) {
        in_main[idx(u)] = true;
        // Approximate post-attachment depth for later preference checks.
        depth[idx(u)] = best_depth + 1;
      }
    }
    if (!progress) {
      return std::nullopt;  // some orphan cannot reach the main tree
    }
    waiting = std::move(still_waiting);
  }
  return plan;
}

void apply_repair(SpanningTree& tree, const RepairPlan& plan,
                  ProcessId failed) {
  // Orphan every child, then drop the failed node itself.
  const std::vector<ProcessId> kids = tree.children(failed);
  for (ProcessId c : kids) {
    tree.detach(c);
  }
  tree.detach(failed);
  if (plan.new_root != tree.root()) {
    tree.set_root(plan.new_root);
  }
  for (const RepairAction& act : plan.attachments) {
    if (tree.parent(act.subtree_node) != kNoProcess) {
      reroot_subtree(tree, act.subtree_node);
    }
    tree.set_parent(act.subtree_node, act.new_parent);
  }
}

}  // namespace hpd::net
