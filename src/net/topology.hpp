// Undirected communication graphs and standard generators.
//
// In a wireless network a node can talk only to its radio neighbours
// (paper, Section II-A); the topology restricts which one-hop links exist
// and supplies the candidate set for spanning-tree reconnection after a
// failure.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hpd::net {

class Topology {
 public:
  explicit Topology(std::size_t n) : adj_(n) {}

  std::size_t size() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Insert the undirected edge {a, b}. Self-loops and duplicates rejected.
  void add_edge(ProcessId a, ProcessId b);

  bool has_edge(ProcessId a, ProcessId b) const;

  /// Sorted neighbour list.
  const std::vector<ProcessId>& neighbors(ProcessId a) const;

  std::size_t degree(ProcessId a) const { return neighbors(a).size(); }

  /// Connectivity over all nodes, or over the live nodes only when `alive`
  /// is provided (dead nodes neither relay nor count).
  bool connected(const std::vector<bool>* alive = nullptr) const;

  /// BFS hop distances from src through live nodes; -1 if unreachable.
  std::vector<int> bfs_distances(ProcessId src,
                                 const std::vector<bool>* alive = nullptr) const;

  // ---- Generators -------------------------------------------------------

  static Topology complete(std::size_t n);
  static Topology ring(std::size_t n);
  static Topology star(std::size_t n);  ///< node 0 is the hub
  static Topology grid(std::size_t rows, std::size_t cols);

  /// Random geometric graph on the unit square: nodes within `radius`
  /// are neighbours. If `ensure_connected`, bridges are added between the
  /// nearest nodes of disconnected components (a standard WSN idealization).
  static Topology random_geometric(std::size_t n, double radius, Rng& rng,
                                   bool ensure_connected = true);

  /// Watts–Strogatz small world: a ring lattice where each node links to
  /// its k nearest neighbours (k even), with every edge rewired to a random
  /// endpoint with probability beta. Always connected for k >= 2 (the
  /// construction keeps one ring edge per node un-rewired).
  static Topology small_world(std::size_t n, std::size_t k, double beta,
                              Rng& rng);

  /// Barabási–Albert preferential attachment: starts from a clique of
  /// m + 1 nodes; each new node attaches to m distinct existing nodes with
  /// probability proportional to their degree. Connected by construction.
  static Topology scale_free(std::size_t n, std::size_t m, Rng& rng);

  /// The given tree's edges plus `extra` random non-tree edges — handy for
  /// failure experiments on paper-model trees (pure trees cannot heal).
  static Topology tree_plus_crosslinks(const Topology& tree_edges,
                                       std::size_t extra, Rng& rng);

  /// Positions from the last random_geometric call that built this object
  /// (for examples that want to print layouts); empty otherwise.
  const std::vector<std::pair<double, double>>& positions() const {
    return positions_;
  }

 private:
  void check(ProcessId a) const;

  std::vector<std::vector<ProcessId>> adj_;
  std::vector<std::pair<double, double>> positions_;
  std::size_t num_edges_ = 0;
};

}  // namespace hpd::net
