#include "analysis/fit.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hpd::analysis {

PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y) {
  HPD_REQUIRE(x.size() == y.size() && x.size() >= 2,
              "fit_power_law: need >= 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    HPD_REQUIRE(x[i] > 0.0 && y[i] > 0.0,
                "fit_power_law: points must be positive");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double denom = n * sxx - sx * sx;
  HPD_REQUIRE(denom > 1e-12, "fit_power_law: x values are all equal");
  PowerFit fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.coefficient = std::exp((sy - fit.exponent * sx) / n);
  const double sst = syy - sy * sy / n;
  if (sst <= 1e-12) {
    fit.r_squared = 1.0;  // constant y: the fit is exact (k == 0)
  } else {
    double ssr = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double pred =
          std::log(fit.coefficient) + fit.exponent * std::log(x[i]);
      const double resid = std::log(y[i]) - pred;
      ssr += resid * resid;
    }
    fit.r_squared = 1.0 - ssr / sst;
  }
  return fit;
}

}  // namespace hpd::analysis
