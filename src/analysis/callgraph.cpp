#include "analysis/callgraph.hpp"

#include <ostream>

namespace hpd::analysis {

namespace {

std::vector<std::string> split_qname(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t p = s.find("::", start);
    if (p == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, p - start));
    start = p + 2;
  }
}

}  // namespace

bool qname_suffix_match(const std::string& qname, const std::string& suffix) {
  const std::vector<std::string> q = split_qname(qname);
  const std::vector<std::string> s = split_qname(suffix);
  if (s.empty() || s.size() > q.size()) {
    return false;
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (q[q.size() - s.size() + i] != s[i]) {
      return false;
    }
  }
  return true;
}

CallGraph build_callgraph(const SourceIndex& index) {
  CallGraph g;
  g.targets.resize(index.functions.size());
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    const FunctionDef& fn = index.functions[f];
    g.targets[f].resize(fn.events.size());
    for (std::size_t e = 0; e < fn.events.size(); ++e) {
      const BodyEvent& ev = fn.events[e];
      if (ev.kind != BodyEvent::Kind::kCall) {
        continue;
      }
      if (ev.name.rfind("::", 0) == 0) {
        continue;  // rooted (`::poll`) — external by construction
      }
      const std::size_t last_sep = ev.name.rfind("::");
      const std::string last =
          last_sep == std::string::npos ? ev.name : ev.name.substr(last_sep + 2);
      const auto it = index.by_name.find(last);
      if (it == index.by_name.end()) {
        continue;
      }
      // Typed receiver: a member call on a declared field of the enclosing
      // class resolves through the field's type. Three outcomes:
      //   * type is not ours (std::deque, ...): external, no candidates —
      //     `items_.size()` must not bind to every `size` in the tree;
      //   * our type defines the method: precisely those definitions;
      //   * our type defines no body (pure-virtual interface like
      //     SessionHost): fall through to name-based resolution so the
      //     call fans out to every override — virtual dispatch stays
      //     over-approximated.
      bool typed_handled = false;
      if (ev.member && !ev.receiver.empty() && !fn.enclosing_class.empty()) {
        const auto cit = index.fields.find(fn.enclosing_class);
        if (cit != index.fields.end()) {
          const auto fit = cit->second.find(ev.receiver);
          if (fit != cit->second.end()) {
            const std::string& type = fit->second;
            if (index.classes.count(type) == 0) {
              typed_handled = true;  // foreign type: external
            } else {
              for (const std::size_t cand : it->second) {
                if (qname_suffix_match(index.functions[cand].qname,
                                       type + "::" + last)) {
                  g.targets[f][e].push_back(cand);
                }
              }
              typed_handled = !g.targets[f][e].empty();
            }
          }
        }
      }
      if (typed_handled) {
        continue;
      }
      for (const std::size_t cand : it->second) {
        if (last_sep == std::string::npos ||
            qname_suffix_match(index.functions[cand].qname, ev.name)) {
          g.targets[f][e].push_back(cand);
        }
      }
    }
  }
  return g;
}

void dump_callgraph(const SourceIndex& index, const CallGraph& graph,
                    std::ostream& os) {
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    const FunctionDef& fn = index.functions[f];
    os << "fn " << fn.qname << " " << fn.file << ":" << fn.line << "\n";
    for (std::size_t e = 0; e < fn.events.size(); ++e) {
      const BodyEvent& ev = fn.events[e];
      if (ev.kind == BodyEvent::Kind::kLock) {
        os << "  lock " << ev.line << " " << ev.name << "\n";
        continue;
      }
      os << "  call " << ev.line << " " << ev.name;
      if (ev.discarded) {
        os << " [discarded]";
      }
      if (graph.targets[f][e].empty()) {
        os << " -> <external>";
      } else {
        os << " ->";
        for (const std::size_t t : graph.targets[f][e]) {
          os << " " << index.functions[t].qname;
        }
      }
      os << "\n";
    }
  }
}

}  // namespace hpd::analysis
