// Descriptive statistics of a recorded execution: event/message/interval
// profiles per process, the communication matrix, and interval-overlap
// structure. Used by the hpd_sim CLI (--stats) and handy when debugging
// why a predicate did (not) hold.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/execution.hpp"

namespace hpd::analysis {

struct ProcessStats {
  std::uint64_t events = 0;
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t internals = 0;
  std::uint64_t intervals = 0;
  double mean_interval_events = 0.0;  ///< truth-period length in own events
  double truth_fraction = 0.0;        ///< events with predicate true / events
};

struct ExecutionStats {
  std::vector<ProcessStats> per_process;
  std::uint64_t total_events = 0;
  std::uint64_t total_messages = 0;   ///< send events
  std::uint64_t total_intervals = 0;
  std::uint64_t max_intervals = 0;    ///< the paper's p
  /// comm[src][dst] = messages sent src → dst.
  std::vector<std::vector<std::uint32_t>> comm;
  /// Pairwise cross-process interval relations (over all interval pairs
  /// from different processes): how many satisfy the Definitely overlap,
  /// and how many can coexist in a cut (the Possibly condition).
  std::uint64_t pairs_total = 0;
  std::uint64_t pairs_overlap = 0;
  std::uint64_t pairs_coexist = 0;
};

ExecutionStats compute_stats(const trace::ExecutionRecord& exec);

void print_stats(std::ostream& os, const ExecutionStats& stats);

}  // namespace hpd::analysis
