// The three interprocedural rules hpd_analyze runs over the call graph.
//
//   blocking-reachability  no call-graph path from an event-loop entry
//                          point may reach a call whose name is a
//                          configured blocking token; the finding prints
//                          the offending chain.
//   lock-order-cycle       mutexes held when another hpd::MutexLock is
//                          constructed induce a lock-order graph (direct
//                          and through calls); any cycle is a finding.
//   unchecked-status       statement-position calls to configured
//                          status-returning APIs whose result dies.
//
// Rule configuration (entry points, blocking tokens, status APIs,
// allowlist) comes from a directive file — see read_rules below.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "analysis/source_index.hpp"

namespace hpd::analysis {

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

struct AllowEntry {
  std::string rule;
  /// Path prefix (contains '/' or '.') or qname suffix, same spirit as
  /// tools/hpd_lint_rules.txt. For blocking-reachability a matching
  /// function is a traversal *barrier*: the walk neither reports its
  /// sites nor follows its calls.
  std::string pattern;
  std::size_t line = 0;  ///< line in the rules file, for unused reports
  bool used = false;
};

struct Rules {
  std::vector<std::string> entries;   ///< entry-point qname suffixes
  std::set<std::string> blocking;     ///< blocking call tokens (last name)
  std::set<std::string> status_fns;   ///< status-returning API names
  std::vector<AllowEntry> allows;
};

/// Parse a rules file. Directives, one per line (`#` comments):
///   entry <qname-suffix>
///   blocking <name>
///   status <name>
///   allow <rule-id> <pattern>
/// Returns false and sets `err` on malformed lines or unknown directives
/// (the caller exits 2 — a typo must not silently disable a rule).
bool read_rules(const std::filesystem::path& file, Rules& out,
                std::string& err);

/// Run all three rules. Allowlist `used` flags are updated in place.
std::vector<Finding> run_checks(const SourceIndex& index,
                                const CallGraph& graph, Rules& rules);

}  // namespace hpd::analysis
