// Whole-tree textual C++ indexer behind tools/hpd_analyze.
//
// In the spirit of tools/hpd_lint this is deliberately lexical (no
// libclang): comments and string literals are blanked with a
// line-preserving state machine, the remainder is tokenized, and a
// single forward pass per file recovers
//
//   * function definitions with their scope-qualified names
//     (namespaces, class bodies, and out-of-line `Class::method`
//     qualifiers all contribute components),
//   * the call sites inside each body (qualified as written, with
//     member-call and discarded-result flags), and
//   * `hpd::MutexLock` acquisitions with a canonical mutex identity
//     and enough brace-depth bookkeeping to replay lock scopes.
//
// The recovered index is an over-approximation by construction —
// virtual calls and same-named functions resolve to every candidate —
// which is the right direction for the interprocedural checks built on
// top (analysis/checks.hpp): a missed edge hides a deadlock, a spurious
// edge costs one justified allowlist entry.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hpd::analysis {

/// One event inside a function body, in source order: either a call site
/// or a MutexLock acquisition.
struct BodyEvent {
  enum class Kind { kCall, kLock };
  Kind kind = Kind::kCall;

  /// kCall: the callee as written, `::`-joined (`flush`, `wire::decode`,
  /// `::poll`). kLock: the canonical mutex identity (see lock_id rules in
  /// source_index.cpp).
  std::string name;
  std::size_t line = 0;

  /// Brace depth inside the function body (body braces are depth 1).
  int depth = 0;
  /// Minimum depth seen between the previous event and this one: a lock
  /// acquired at depth d is released once min_depth_before < d.
  int min_depth_before = 0;

  // kCall only:
  bool member = false;     ///< spelled `obj.name(...)` / `obj->name(...)`
  bool discarded = false;  ///< statement-position call whose value dies
  /// Member calls: the identifier immediately left of the `.`/`->` ("" when
  /// the receiver is a compound expression). Lets the call graph resolve
  /// `queue_.push(...)` through the declared field type instead of binding
  /// to every `push` in the tree.
  std::string receiver;
};

/// One recovered function definition.
struct FunctionDef {
  std::string qname;  ///< fully qualified, e.g. `hpd::rt::Conn::flush`
  std::string name;   ///< last component of qname
  /// Innermost enclosing class of the definition ("" for free functions);
  /// used to qualify bare-member mutex identities.
  std::string enclosing_class;
  std::string file;  ///< path relative to the analysis root
  std::size_t line = 0;
  std::vector<BodyEvent> events;
};

struct SourceIndex {
  std::vector<FunctionDef> functions;
  /// Every class/struct name seen anywhere in the tree (last component).
  std::set<std::string> classes;
  /// Unqualified function name -> indices into `functions`.
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// class (last component) -> member field -> declared type (last
  /// component). `std::deque<T> items_;` records `items_ -> deque`, so a
  /// call on it resolves to nothing in-tree (external) rather than to
  /// every same-named method.
  std::map<std::string, std::map<std::string, std::string>> fields;
  std::vector<std::string> files;   ///< indexed files, root-relative
  std::vector<std::string> errors;  ///< unreadable files
};

/// Blank comment bodies and string/char literal contents, preserving
/// newlines (so line numbers survive). Handles raw strings including
/// encoding prefixes (`u8R"(...)"`, `LR"..."`) and backslash
/// line-continuations inside `//` comments.
std::string blank_comments_and_strings(const std::string& in);

/// Index one already-read file into `out`. `rel` is the root-relative
/// path recorded in findings. Exposed separately for unit tests.
void index_file(const std::string& rel, const std::string& text,
                SourceIndex& out);

/// Index every `.hpp`/`.cpp`/`.h`/`.cc` under `root/src`. Runs two
/// passes: class names are collected tree-wide first so out-of-line
/// definitions in any file can tell classes from namespaces.
SourceIndex index_tree(const std::filesystem::path& root);

}  // namespace hpd::analysis
