#include "analysis/checks.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

namespace hpd::analysis {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kRules = {
      "blocking-reachability", "lock-order-cycle", "unchecked-status"};
  return kRules;
}

bool is_path_pattern(const std::string& p) {
  return p.find('/') != std::string::npos || p.find('.') != std::string::npos;
}

/// Does any allow entry for `rule` cover this function? Marks entries used.
bool allowed(Rules& rules, const std::string& rule, const FunctionDef& fn) {
  bool hit = false;
  for (AllowEntry& a : rules.allows) {
    if (a.rule != rule) {
      continue;
    }
    const bool match = is_path_pattern(a.pattern)
                           ? fn.file.rfind(a.pattern, 0) == 0
                           : qname_suffix_match(fn.qname, a.pattern);
    if (match) {
      a.used = true;
      hit = true;  // keep scanning: every covering entry counts as used
    }
  }
  return hit;
}

std::string last_name(const std::string& callee) {
  std::string s = callee;
  if (s.rfind("::", 0) == 0) {
    s = s.substr(2);
  }
  const std::size_t p = s.rfind("::");
  return p == std::string::npos ? s : s.substr(p + 2);
}

void check_blocking(const SourceIndex& index, const CallGraph& graph,
                    Rules& rules, std::vector<Finding>& out) {
  const std::size_t n = index.functions.size();
  std::vector<std::size_t> parent(n, kNone);
  std::vector<bool> visited(n, false);
  std::deque<std::size_t> queue;
  for (std::size_t f = 0; f < n; ++f) {
    for (const std::string& e : rules.entries) {
      if (!qname_suffix_match(index.functions[f].qname, e)) {
        continue;
      }
      if (!visited[f] && !allowed(rules, "blocking-reachability",
                                  index.functions[f])) {
        visited[f] = true;
        queue.push_back(f);
      }
      break;
    }
  }
  std::set<std::pair<std::string, std::size_t>> reported;
  while (!queue.empty()) {
    const std::size_t f = queue.front();
    queue.pop_front();
    const FunctionDef& fn = index.functions[f];
    for (std::size_t e = 0; e < fn.events.size(); ++e) {
      const BodyEvent& ev = fn.events[e];
      if (ev.kind != BodyEvent::Kind::kCall) {
        continue;
      }
      if (rules.blocking.count(last_name(ev.name)) != 0 &&
          reported.insert({fn.file, ev.line}).second) {
        // Reconstruct the entry -> ... -> site chain.
        std::vector<std::string> chain;
        for (std::size_t c = f; c != kNone; c = parent[c]) {
          chain.push_back(index.functions[c].qname);
        }
        std::reverse(chain.begin(), chain.end());
        std::string msg = "blocking-reachability: `" + ev.name +
                          "` reachable from event-loop entry; chain: ";
        for (const std::string& link : chain) {
          msg += link + " -> ";
        }
        msg += ev.name + "()";
        out.push_back({"blocking-reachability", fn.file, ev.line, msg});
      }
      for (const std::size_t t : graph.targets[f][e]) {
        if (visited[t]) {
          continue;
        }
        if (allowed(rules, "blocking-reachability", index.functions[t])) {
          continue;  // allowlisted functions are traversal barriers
        }
        visited[t] = true;
        parent[t] = f;
        queue.push_back(t);
      }
    }
  }
}

struct LockEdge {
  std::string file;
  std::size_t line = 0;
  std::string in_qname;   ///< function whose body induces the edge
  std::string via;        ///< callee qname for transitive edges, else ""
};

void check_lock_order(const SourceIndex& index, const CallGraph& graph,
                      Rules& rules, std::vector<Finding>& out) {
  const std::size_t n = index.functions.size();
  // Transitive closure: every lock id a call into `f` may acquire.
  std::vector<std::set<std::string>> acquires(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const BodyEvent& ev : index.functions[f].events) {
      if (ev.kind == BodyEvent::Kind::kLock) {
        acquires[f].insert(ev.name);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < n; ++f) {
      for (std::size_t e = 0; e < index.functions[f].events.size(); ++e) {
        for (const std::size_t t : graph.targets[f][e]) {
          for (const std::string& id : acquires[t]) {
            changed = acquires[f].insert(id).second || changed;
          }
        }
      }
    }
  }
  // Lock-order edges: replay each body's lock scopes.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  struct Held {
    std::string id;
    int depth = 0;
  };
  for (std::size_t f = 0; f < n; ++f) {
    const FunctionDef& fn = index.functions[f];
    if (allowed(rules, "lock-order-cycle", fn)) {
      continue;
    }
    std::vector<Held> held;
    for (std::size_t e = 0; e < fn.events.size(); ++e) {
      const BodyEvent& ev = fn.events[e];
      while (!held.empty() && held.back().depth > ev.min_depth_before) {
        held.pop_back();
      }
      if (ev.kind == BodyEvent::Kind::kLock) {
        for (const Held& h : held) {
          edges.emplace(std::make_pair(h.id, ev.name),
                        LockEdge{fn.file, ev.line, fn.qname, ""});
        }
        held.push_back({ev.name, ev.depth});
        continue;
      }
      if (held.empty()) {
        continue;
      }
      for (const std::size_t t : graph.targets[f][e]) {
        for (const std::string& id : acquires[t]) {
          for (const Held& h : held) {
            edges.emplace(std::make_pair(h.id, id),
                          LockEdge{fn.file, ev.line, fn.qname,
                                   index.functions[t].qname});
          }
        }
      }
    }
  }
  // Cycle detection over the lock-order graph (DFS, three colors).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, edge] : edges) {
    adj[key.first].push_back(key.second);
    adj[key.second];  // ensure every node exists
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::vector<std::string>> seen_cycles;

  auto report_cycle = [&](const std::string& back_to) {
    std::vector<std::string> cyc;
    for (auto it = std::find(stack.begin(), stack.end(), back_to);
         it != stack.end(); ++it) {
      cyc.push_back(*it);
    }
    // Canonical rotation so A->B->A and B->A->B dedupe to one finding.
    std::vector<std::string> canon = cyc;
    const auto mn = std::min_element(canon.begin(), canon.end());
    std::rotate(canon.begin(), mn, canon.end());
    if (!seen_cycles.insert(canon).second) {
      return;
    }
    std::string msg = "lock-order-cycle: ";
    for (const std::string& id : cyc) {
      msg += id + " -> ";
    }
    msg += cyc.front() + ";";
    const LockEdge* anchor = nullptr;
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const auto& edge = edges.at({cyc[i], cyc[(i + 1) % cyc.size()]});
      msg += " " + cyc[i] + " before " + cyc[(i + 1) % cyc.size()] + " at " +
             edge.file + ":" + std::to_string(edge.line) + " (in " +
             edge.in_qname + (edge.via.empty() ? "" : " via " + edge.via) +
             ");";
      if (anchor == nullptr) {
        anchor = &edge;
      }
    }
    msg.pop_back();
    out.push_back({"lock-order-cycle", anchor->file, anchor->line, msg});
  };

  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        report_cycle(v);
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [node, unused] : adj) {
    (void)unused;
    if (color[node] == 0) {
      dfs(node);
    }
  }
}

void check_unchecked_status(const SourceIndex& index, Rules& rules,
                            std::vector<Finding>& out) {
  for (const FunctionDef& fn : index.functions) {
    if (allowed(rules, "unchecked-status", fn)) {
      continue;
    }
    for (const BodyEvent& ev : fn.events) {
      if (ev.kind != BodyEvent::Kind::kCall || !ev.discarded) {
        continue;
      }
      if (rules.status_fns.count(last_name(ev.name)) == 0) {
        continue;
      }
      out.push_back(
          {"unchecked-status", fn.file, ev.line,
           "unchecked-status: result of `" + ev.name + "` discarded in " +
               fn.qname + "; check it or cast to void explicitly"});
    }
  }
}

}  // namespace

bool read_rules(const std::filesystem::path& file, Rules& out,
                std::string& err) {
  std::ifstream in(file);
  if (!in) {
    err = "cannot open rules file: " + file.string();
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream is(line);
    std::string directive;
    if (!(is >> directive)) {
      continue;  // blank / comment-only line
    }
    const auto fail = [&](const std::string& what) {
      err = file.string() + ":" + std::to_string(lineno) + ": " + what;
      return false;
    };
    std::string a, b, extra;
    if (directive == "entry" || directive == "blocking" ||
        directive == "status") {
      if (!(is >> a) || (is >> extra)) {
        return fail("`" + directive + "` takes exactly one argument");
      }
      if (directive == "entry") {
        out.entries.push_back(a);
      } else if (directive == "blocking") {
        out.blocking.insert(a);
      } else {
        out.status_fns.insert(a);
      }
    } else if (directive == "allow") {
      if (!(is >> a >> b) || (is >> extra)) {
        return fail("`allow` takes exactly two arguments: <rule> <pattern>");
      }
      if (known_rules().count(a) == 0) {
        return fail("unknown rule in allow entry: " + a);
      }
      out.allows.push_back({a, b, lineno, false});
    } else {
      return fail("unknown directive: " + directive);
    }
  }
  return true;
}

std::vector<Finding> run_checks(const SourceIndex& index,
                                const CallGraph& graph, Rules& rules) {
  std::vector<Finding> out;
  check_blocking(index, graph, rules, out);
  check_lock_order(index, graph, rules, out);
  check_unchecked_status(index, rules, out);
  std::sort(out.begin(), out.end(), [](const Finding& x, const Finding& y) {
    return std::tie(x.file, x.line, x.rule) < std::tie(y.file, y.line, y.rule);
  });
  return out;
}

}  // namespace hpd::analysis
