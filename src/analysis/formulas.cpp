#include "analysis/formulas.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hpd::analysis {

namespace {
double dpow(std::size_t d, std::size_t e) {
  return std::pow(static_cast<double>(d), static_cast<double>(e));
}
}  // namespace

double hier_messages(std::size_t d, std::size_t h, std::size_t p,
                     double alpha) {
  HPD_REQUIRE(d >= 1 && h >= 1 && alpha >= 0.0 && alpha <= 1.0,
              "hier_messages: bad parameters");
  if (h == 1) {
    return 0.0;  // a single node sends nothing
  }
  const double ph = static_cast<double>(p);
  const double lead = ph * dpow(d, h - 1);
  if (alpha == 1.0) {
    return lead * static_cast<double>(h - 1);
  }
  return lead * (1.0 - std::pow(alpha, static_cast<double>(h - 1))) /
         (1.0 - alpha);
}

double hier_messages_direct(std::size_t d, std::size_t h, std::size_t p,
                            double alpha) {
  double total = 0.0;
  for (std::size_t i = 1; i + 1 <= h; ++i) {
    // d^{h-i} nodes at level i, each sending p (dα)^{i-1} reports up.
    total += dpow(d, h - i) * static_cast<double>(p) *
             std::pow(static_cast<double>(d) * alpha,
                      static_cast<double>(i - 1));
  }
  return total;
}

double central_messages_direct(std::size_t d, std::size_t h, std::size_t p) {
  double total = 0.0;
  for (std::size_t i = 1; i + 1 <= h; ++i) {
    total += static_cast<double>(p) * dpow(d, h - i) *
             static_cast<double>(h - i);
  }
  return total;
}

double central_messages(std::size_t d, std::size_t h, std::size_t p) {
  HPD_REQUIRE(d >= 2 && h >= 1, "central_messages: need d >= 2");
  const double dd = static_cast<double>(d);
  const double hh = static_cast<double>(h);
  const double num = dpow(d, h) * (dd * hh - dd - hh) + dd;
  return static_cast<double>(p) * num / ((dd - 1.0) * (dd - 1.0));
}

double central_messages_paper_eq14(std::size_t d, std::size_t h,
                                   std::size_t p) {
  HPD_REQUIRE(d >= 2 && h >= 1, "central_messages_paper_eq14: need d >= 2");
  const double dd = static_cast<double>(d);
  const double hh = static_cast<double>(h);
  const double num = (dpow(d, h) - 2.0 * dd) * (dd * hh - dd - hh) - dd;
  return static_cast<double>(p) * num / ((dd - 1.0) * (dd - 1.0));
}

std::size_t paper_tree_nodes(std::size_t d, std::size_t h) {
  std::size_t total = 0;
  std::size_t level = 1;
  for (std::size_t i = 0; i < h; ++i) {
    total += level;
    level *= d;
  }
  return total;
}

double paper_n(std::size_t d, std::size_t h) { return dpow(d, h); }

double hier_time_model(std::size_t d, std::size_t n, std::size_t p) {
  return static_cast<double>(d) * static_cast<double>(d) *
         static_cast<double>(p) * static_cast<double>(n) *
         static_cast<double>(n);
}

double central_time_model(std::size_t n, std::size_t p) {
  return static_cast<double>(p) * static_cast<double>(n) *
         static_cast<double>(n) * static_cast<double>(n);
}

double space_model(std::size_t n, std::size_t p) {
  return static_cast<double>(p) * static_cast<double>(n) *
         static_cast<double>(n);
}

}  // namespace hpd::analysis
