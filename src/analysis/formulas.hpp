// Closed-form cost models from Section IV of the paper, used by the
// Table I / Figure 4 / Figure 5 benches.
//
// ERRATUM (documented in EXPERIMENTS.md): the paper's printed Eq. (14) does
// not equal its own model, the direct sum of Eq. (12). The telescoping step
// in Eq. (13) flips a sign: (d-1)k = Σ_{i=2}^{h} d^i − (h−1)d, not "+".
// Propagating the correct k gives
//     total = p · [ d^h (dh − d − h) + d ] / (d − 1)²
// which matches the direct sum exactly (see FormulaTest.*). The discrepancy
// is small for large h (< 1% for d = 2, h = 10), so the paper's plotted
// curves are visually unaffected. We expose the direct sum (authoritative),
// the corrected closed form, and the printed form for comparison.
#pragma once

#include <cstddef>

namespace hpd::analysis {

/// Eq. (11): total one-hop messages of the hierarchical algorithm for a
/// paper-model tree of degree d, height h (levels), p intervals per process
/// and aggregation probability alpha. Handles alpha == 1 by continuity.
double hier_messages(std::size_t d, std::size_t h, std::size_t p,
                     double alpha);

/// Eq. (11) as the explicit level sum (cross-check).
double hier_messages_direct(std::size_t d, std::size_t h, std::size_t p,
                            double alpha);

/// Eq. (12): hop-weighted message total of the centralized baseline [12],
/// as the explicit (authoritative) sum Σ_{i=1}^{h-1} p d^{h-i} (h-i).
double central_messages_direct(std::size_t d, std::size_t h, std::size_t p);

/// Corrected closed form of Eq. (12): p [ d^h (dh − d − h) + d ] / (d−1)².
double central_messages(std::size_t d, std::size_t h, std::size_t p);

/// The closed form exactly as printed in the paper's Eq. (14):
/// p [ (d^h − 2d)(dh − d − h) − d ] / (d−1)². Kept for the erratum note.
double central_messages_paper_eq14(std::size_t d, std::size_t h,
                                   std::size_t p);

/// Nodes of the paper-model tree: Σ_{i=0}^{h-1} d^i.
std::size_t paper_tree_nodes(std::size_t d, std::size_t h);

/// The paper's loose n = d^h (leaf-count approximation used in Table I).
double paper_n(std::size_t d, std::size_t h);

// ---- Table I complexity expressions (orders of growth, for shape checks) --

/// Hierarchical time: O(d² p n²).
double hier_time_model(std::size_t d, std::size_t n, std::size_t p);

/// Centralized time: O(p n³).
double central_time_model(std::size_t n, std::size_t p);

/// Space (both algorithms): O(p n²) — distributed vs at the sink.
double space_model(std::size_t n, std::size_t p);

}  // namespace hpd::analysis
