#include "analysis/source_index.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

namespace hpd::analysis {

namespace {

namespace fs = std::filesystem;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---- Tokenizer --------------------------------------------------------------

struct Tok {
  std::string text;
  std::size_t line = 0;
  bool ident = false;  ///< identifier-or-keyword (starts with [A-Za-z_])
};

const Tok& null_tok() {
  static const Tok t;
  return t;
}

std::vector<Tok> tokenize(const std::string& blanked) {
  std::vector<Tok> toks;
  std::size_t line = 1;
  const std::size_t n = blanked.size();
  for (std::size_t i = 0; i < n;) {
    const char c = blanked[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#') {
      // Preprocessor directive: irrelevant to the index; skip the logical
      // line, honoring backslash continuations.
      while (i < n) {
        if (blanked[i] == '\\' && i + 1 < n && blanked[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (blanked[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    if (ident_char(c)) {
      std::size_t j = i;
      while (j < n && ident_char(blanked[j])) {
        ++j;
      }
      toks.push_back({blanked.substr(i, j - i), line, ident_start(c)});
      i = j;
      continue;
    }
    const char next = i + 1 < n ? blanked[i + 1] : '\0';
    if (c == ':' && next == ':') {
      toks.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && next == '>') {
      toks.push_back({"->", line, false});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), line, false});
    ++i;
  }
  return toks;
}

// Keywords that can never be a callee or a recovered function name.
bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "alignas",      "alignof",  "asm",         "auto",
      "bool",         "break",    "case",        "catch",
      "char",         "class",    "co_await",    "co_return",
      "co_yield",     "const",    "const_cast",  "consteval",
      "constexpr",    "constinit","continue",    "decltype",
      "default",      "delete",   "do",          "double",
      "dynamic_cast", "else",     "enum",        "explicit",
      "extern",       "false",    "final",       "float",
      "for",          "friend",   "goto",        "if",
      "inline",       "int",      "long",        "mutable",
      "namespace",    "new",      "noexcept",    "nullptr",
      "operator",     "override", "private",     "protected",
      "public",       "register", "reinterpret_cast", "requires",
      "return",       "short",    "signed",      "sizeof",
      "static",       "static_assert", "static_cast", "struct",
      "switch",       "template", "this",        "thread_local",
      "throw",        "true",     "try",         "typedef",
      "typeid",       "typename", "union",       "unsigned",
      "using",        "virtual",  "void",        "volatile",
      "wchar_t",      "while",
  };
  return kKw.count(s) != 0;
}

// Keywords after which an `ident(` is still a call (`return foo(x)`).
bool call_permitting_keyword(const std::string& s) {
  static const std::set<std::string> kOk = {
      "return", "throw",     "new",      "delete",   "else",
      "do",     "co_return", "co_yield", "co_await", "case",
  };
  return kOk.count(s) != 0;
}

// ---- Parser -----------------------------------------------------------------

class Parser {
 public:
  Parser(std::string rel, const std::vector<Tok>& toks, SourceIndex& out)
      : rel_(std::move(rel)), toks_(toks), out_(&out) {}

  void run();

 private:
  struct Scope {
    enum class Kind { kNamespace, kClass, kBlock };
    Kind kind = Kind::kBlock;
    std::string name;  ///< may hold multiple components ("hpd::rt")
  };

  const Tok& at(std::size_t i) const {
    return i < toks_.size() ? toks_[i] : null_tok();
  }

  /// toks_[i] must be `open`; returns the index just past the matching
  /// `close` (or toks_.size() on imbalance).
  std::size_t skip_balanced(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    for (; i < toks_.size(); ++i) {
      if (toks_[i].text == open) {
        ++depth;
      } else if (toks_[i].text == close) {
        if (--depth == 0) {
          return i + 1;
        }
      }
    }
    return toks_.size();
  }

  /// Skip a balanced `<...>` group starting at `i` (toks_[i] == "<");
  /// parenthesized subexpressions inside are skipped whole.
  std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    while (i < toks_.size()) {
      const std::string& t = toks_[i].text;
      if (t == "<") {
        ++depth;
        ++i;
      } else if (t == ">") {
        if (--depth == 0) {
          return i + 1;
        }
        ++i;
      } else if (t == "(") {
        i = skip_balanced(i, "(", ")");
      } else if (t == ";" || t == "{" || t == "}") {
        return i;  // clearly not template arguments; bail
      } else {
        ++i;
      }
    }
    return i;
  }

  std::string enclosing_class_of(const std::vector<std::string>& quals) const {
    // Innermost known class among (scope stack, explicit qualifier).
    for (auto it = quals.rbegin(); it != quals.rend(); ++it) {
      if (out_->classes.count(*it) != 0) {
        return *it;
      }
    }
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) {
        const std::size_t p = it->name.rfind("::");
        return p == std::string::npos ? it->name : it->name.substr(p + 2);
      }
    }
    return "";
  }

  std::string scope_prefix() const {
    std::string q;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::Kind::kBlock || s.name.empty()) {
        continue;
      }
      if (!q.empty()) {
        q += "::";
      }
      q += s.name;
    }
    return q;
  }

  void handle_namespace(std::size_t& i);
  void handle_class(std::size_t& i);
  void handle_enum(std::size_t& i);
  /// Directly inside a class body: `Type field_;` (with optional template
  /// arguments, pointers/references, annotation macros, and an in-class
  /// initializer). Records the field's declared type and returns true.
  bool try_field(std::size_t& i);
  /// A non-keyword identifier at namespace/class scope: either a function
  /// definition (parsed, body consumed) or some declaration (skipped).
  void handle_candidate(std::size_t& i);
  /// Signature tail after the parameter list; returns the index of the
  /// body `{` or npos for a plain declaration.
  std::size_t find_body(std::size_t i) const;
  void parse_body(FunctionDef& fn, std::size_t& i);
  std::string canonical_lock_id(std::size_t first, std::size_t last,
                                const std::string& enclosing) const;

  std::string rel_;
  const std::vector<Tok>& toks_;
  SourceIndex* out_;
  std::vector<Scope> scopes_;
};

void Parser::run() {
  std::size_t i = 0;
  while (i < toks_.size()) {
    const Tok& t = toks_[i];
    if (t.text == "template") {
      ++i;
      if (at(i).text == "<") {
        i = skip_angles(i);
      }
    } else if (t.text == "namespace") {
      handle_namespace(i);
    } else if (t.text == "class" || t.text == "struct" || t.text == "union") {
      handle_class(i);
    } else if (t.text == "enum") {
      handle_enum(i);
    } else if (t.text == "using" || t.text == "typedef" ||
               t.text == "static_assert" || t.text == "friend") {
      while (i < toks_.size() && toks_[i].text != ";") {
        if (toks_[i].text == "{") {
          i = skip_balanced(i, "{", "}");
        } else {
          ++i;
        }
      }
      ++i;
    } else if (t.text == "{") {
      scopes_.push_back({Scope::Kind::kBlock, ""});
      ++i;
    } else if (t.text == "}") {
      if (!scopes_.empty()) {
        scopes_.pop_back();
      }
      ++i;
    } else if ((t.ident && !is_keyword(t.text)) || t.text == "~") {
      if (!try_field(i)) {
        handle_candidate(i);
      }
    } else {
      ++i;
    }
  }
}

void Parser::handle_namespace(std::size_t& i) {
  ++i;  // past `namespace`
  std::string name;
  while (at(i).ident || at(i).text == "::") {
    name += at(i).text;
    ++i;
  }
  if (at(i).text == "{") {
    scopes_.push_back({Scope::Kind::kNamespace, name});
    ++i;
    return;
  }
  // Alias (`namespace fs = ...`) or malformed: skip to `;`.
  while (i < toks_.size() && toks_[i].text != ";" && toks_[i].text != "{") {
    ++i;
  }
  if (at(i).text == ";") {
    ++i;
  }
}

void Parser::handle_class(std::size_t& i) {
  ++i;  // past class/struct/union
  // Skip attributes / alignas.
  while (at(i).text == "[" || at(i).text == "alignas") {
    if (at(i).text == "[") {
      i = skip_balanced(i, "[", "]");
    } else {
      ++i;
      if (at(i).text == "(") {
        i = skip_balanced(i, "(", ")");
      }
    }
  }
  std::string qual;  // possibly `Outer::Inner` for out-of-line nested types
  while (at(i).ident && !is_keyword(at(i).text)) {
    if (!qual.empty()) {
      qual += "::";
    }
    qual += at(i).text;
    out_->classes.insert(at(i).text);
    ++i;
    if (at(i).text == "<") {
      i = skip_angles(i);  // specialization arguments
    }
    if (at(i).text == "::") {
      ++i;
      continue;
    }
    break;
  }
  if (at(i).text == "final") {
    ++i;
  }
  // Base clause / body / forward declaration / variable of elaborated type.
  while (i < toks_.size()) {
    const std::string& t = toks_[i].text;
    if (t == "{") {
      scopes_.push_back({Scope::Kind::kClass, qual});
      ++i;
      return;
    }
    if (t == ";") {
      ++i;
      return;
    }
    if (t == "<") {
      i = skip_angles(i);
    } else if (t == "(") {
      i = skip_balanced(i, "(", ")");
    } else {
      ++i;
    }
  }
}

void Parser::handle_enum(std::size_t& i) {
  while (i < toks_.size() && toks_[i].text != "{" && toks_[i].text != ";") {
    ++i;
  }
  if (at(i).text == "{") {
    i = skip_balanced(i, "{", "}");  // enumerators carry no index signal
  } else if (at(i).text == ";") {
    ++i;
  }
}

bool Parser::try_field(std::size_t& i) {
  if (scopes_.empty() || scopes_.back().kind != Scope::Kind::kClass) {
    return false;
  }
  std::size_t j = i;
  if (!at(j).ident || is_keyword(at(j).text)) {
    return false;
  }
  std::string type_last = at(j).text;
  ++j;
  while (at(j).text == "<" || at(j).text == "::") {
    if (at(j).text == "<") {
      j = skip_angles(j);
    } else {
      ++j;
      if (!at(j).ident || is_keyword(at(j).text)) {
        return false;
      }
      type_last = at(j).text;
      ++j;
    }
  }
  while (at(j).text == "*" || at(j).text == "&" || at(j).text == "&&") {
    ++j;
  }
  if (!at(j).ident || is_keyword(at(j).text)) {
    return false;
  }
  const std::string field = at(j).text;
  ++j;
  // Annotation macros after the declarator: HPD_GUARDED_BY(mutex_) etc.
  while (at(j).ident && !is_keyword(at(j).text)) {
    ++j;
    if (at(j).text == "(") {
      j = skip_balanced(j, "(", ")");
    }
  }
  if (at(j).text == "=") {
    while (j < toks_.size() && toks_[j].text != ";") {
      if (toks_[j].text == "{") {
        j = skip_balanced(j, "{", "}");
      } else if (toks_[j].text == "(") {
        j = skip_balanced(j, "(", ")");
      } else {
        ++j;
      }
    }
  } else if (at(j).text == "{") {
    j = skip_balanced(j, "{", "}");
  }
  if (at(j).text != ";") {
    return false;
  }
  i = j + 1;
  const std::string& cls = scopes_.back().name;
  const std::size_t p = cls.rfind("::");
  out_->fields[p == std::string::npos ? cls : cls.substr(p + 2)][field] =
      type_last;
  return true;
}

std::size_t Parser::find_body(std::size_t i) const {
  while (i < toks_.size()) {
    const std::string& t = toks_[i].text;
    if (t == "{") {
      return i;
    }
    if (t == ";" || t == "=" || t == "," || t == ")" || t == "}") {
      return std::string::npos;  // declaration / initializer / `= default`
    }
    if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
        t == "volatile" || t == "mutable" || t == "&" || t == "&&" ||
        t == "throw" || t == "requires") {
      ++i;
      if (at(i).text == "(") {
        i = skip_balanced(i, "(", ")");
      }
      continue;
    }
    if (t == "->") {
      // Trailing return type: runs to the body or the terminator.
      ++i;
      continue;
    }
    if (t == ":") {
      // Constructor initializer list: `ident(...)` / `ident{...}` pairs.
      ++i;
      while (i < toks_.size()) {
        while (at(i).ident || at(i).text == "::") {
          ++i;
          if (at(i).text == "<") {
            i = skip_angles(i);
          }
        }
        if (at(i).text == "(") {
          i = skip_balanced(i, "(", ")");
        } else if (at(i).text == "{") {
          // `member{init}` vs the body: an initializer's brace is always
          // preceded by the member name; the body brace follows `)`/`}`.
          const std::string& prev = i > 0 ? toks_[i - 1].text : "";
          if (prev == ")" || prev == "}" || prev == ":" || prev == ",") {
            return i;
          }
          i = skip_balanced(i, "{", "}");
        } else {
          return std::string::npos;
        }
        if (at(i).text == ",") {
          ++i;
          continue;
        }
        if (at(i).text == "{") {
          return i;
        }
        if (at(i).text == "." || at(i).text == "->") {
          // `lock_(mu.mu_)`-style initializers never reach here (their
          // member access is inside the balanced parens); anything else
          // is not a constructor we understand.
          return std::string::npos;
        }
      }
      return std::string::npos;
    }
    if (toks_[i].ident) {
      // Annotation macro after the signature (HPD_ACQUIRE(mu), attributes
      // spelled as macros): swallow it and any argument list.
      ++i;
      if (at(i).text == "(") {
        i = skip_balanced(i, "(", ")");
      }
      continue;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

void Parser::handle_candidate(std::size_t& i) {
  // Gather a (possibly qualified) declarator name ending right before `(`.
  std::vector<std::string> parts;
  std::size_t j = i;
  while (j < toks_.size()) {
    if (toks_[j].text == "~" && at(j + 1).ident) {
      parts.push_back("~" + at(j + 1).text);
      j += 2;
    } else if (toks_[j].text == "operator") {
      // Collapse every spelling to one name; operator bodies still index.
      parts.push_back("operator");
      while (j < toks_.size() && toks_[j].text != "(") {
        ++j;
      }
      break;
    } else if (toks_[j].ident && !is_keyword(toks_[j].text)) {
      parts.push_back(toks_[j].text);
      ++j;
      if (at(j).text == "<") {
        const std::size_t after = skip_angles(j);
        if (at(after).text != "::" && at(after).text != "(") {
          break;  // comparison, not template arguments
        }
        j = after;
      }
    } else {
      break;
    }
    if (at(j).text == "::") {
      ++j;
      continue;
    }
    break;
  }
  if (parts.empty() || at(j).text != "(") {
    // Not a function-shaped declarator; consume what we scanned.
    i = std::max(j, i + 1);
    return;
  }
  const std::size_t after_params = skip_balanced(j, "(", ")");
  const std::size_t body = find_body(after_params);
  if (body == std::string::npos) {
    i = after_params;
    return;
  }

  FunctionDef fn;
  fn.name = parts.back();
  std::vector<std::string> quals(parts.begin(), parts.end() - 1);
  std::string q = scope_prefix();
  for (const std::string& part : quals) {
    if (!q.empty()) {
      q += "::";
    }
    q += part;
  }
  fn.qname = q.empty() ? fn.name : q + "::" + fn.name;
  fn.enclosing_class = enclosing_class_of(quals);
  fn.file = rel_;
  fn.line = toks_[i].line;

  std::size_t k = body;
  parse_body(fn, k);
  out_->by_name[fn.name].push_back(out_->functions.size());
  out_->functions.push_back(std::move(fn));
  i = k;
}

std::string Parser::canonical_lock_id(std::size_t first, std::size_t last,
                                      const std::string& enclosing) const {
  // Join the expression tokens, normalize `->` to `.`, drop `this.`.
  std::string s;
  for (std::size_t i = first; i < last; ++i) {
    s += toks_[i].text == "->" ? "." : toks_[i].text;
  }
  if (s.rfind("this.", 0) == 0) {
    s = s.substr(5);
  }
  const std::size_t dot = s.rfind('.');
  if (dot != std::string::npos) {
    return s.substr(dot + 1);  // field identity merges across instances
  }
  bool plain = !s.empty() && ident_start(s[0]);
  for (const char c : s) {
    plain = plain && ident_char(c);
  }
  if (plain && !enclosing.empty()) {
    return enclosing + "::" + s;
  }
  return s;
}

void Parser::parse_body(FunctionDef& fn, std::size_t& i) {
  // toks_[i] == "{" — walk the body, tracking depth and the minimum depth
  // between consecutive events (lock-scope replay needs it).
  int depth = 1;
  int min_since = 1;
  std::size_t k = i + 1;
  while (k < toks_.size() && depth > 0) {
    const Tok& t = toks_[k];
    if (t.text == "{") {
      ++depth;
      ++k;
      continue;
    }
    if (t.text == "}") {
      --depth;
      min_since = std::min(min_since, depth);
      ++k;
      continue;
    }
    if (!t.ident || is_keyword(t.text)) {
      ++k;
      continue;
    }
    // MutexLock declaration: `MutexLock name(expr)`, optionally qualified.
    if (t.text == "MutexLock" && at(k + 1).ident && at(k + 2).text == "(") {
      const std::size_t close = skip_balanced(k + 2, "(", ")");
      BodyEvent ev;
      ev.kind = BodyEvent::Kind::kLock;
      ev.name = canonical_lock_id(k + 3, close - 1, fn.enclosing_class);
      ev.line = t.line;
      ev.depth = depth;
      ev.min_depth_before = min_since;
      fn.events.push_back(std::move(ev));
      min_since = depth;
      k = close;
      continue;
    }
    // Qualified-id chain; a trailing `(` makes it a call or a declaration.
    std::vector<std::string> parts{t.text};
    const bool rooted = k >= 1 && toks_[k - 1].text == "::" &&
                        (k < 2 || !toks_[k - 2].ident);
    std::size_t e = k + 1;
    while (at(e).text == "::" && at(e + 1).ident && !is_keyword(at(e + 1).text)) {
      parts.push_back(at(e + 1).text);
      e += 2;
    }
    if (at(e).text != "(") {
      k = e;
      continue;
    }
    const std::string& prev =
        rooted ? (k >= 2 ? toks_[k - 2].text : std::string())
               : (k >= 1 ? toks_[k - 1].text : std::string());
    const bool prev_ident = !prev.empty() && ident_start(prev[0]);
    if (prev_ident && !call_permitting_keyword(prev)) {
      // `Type name(args)` — a declaration, not a call.
      k = skip_balanced(e, "(", ")");
      continue;
    }
    const bool member = prev == "." || prev == "->";
    std::string receiver;
    if (member && k >= 2 && toks_[k - 2].ident &&
        !is_keyword(toks_[k - 2].text)) {
      receiver = toks_[k - 2].text;
    }
    // Discarded-result heuristic: the whole postfix expression starts a
    // statement and the call's value meets `;` unconsumed.
    bool discarded = false;
    {
      std::size_t a = k;
      bool traceable = true;
      if (rooted) {
        a = k - 1;
      }
      while (traceable && a >= 1 &&
             (toks_[a - 1].text == "." || toks_[a - 1].text == "->")) {
        if (a >= 2 && toks_[a - 2].ident) {
          a -= 2;
        } else {
          traceable = false;  // `foo(x).flush()` — give up, keep quiet
        }
      }
      if (traceable) {
        const std::string& anchor = a >= 1 ? toks_[a - 1].text : std::string();
        const bool stmt_start =
            anchor.empty() || anchor == ";" || anchor == "{" || anchor == "}";
        const std::size_t close = skip_balanced(e, "(", ")");
        discarded = stmt_start && at(close).text == ";";
      }
    }
    BodyEvent ev;
    ev.kind = BodyEvent::Kind::kCall;
    std::string callee;
    for (const std::string& part : parts) {
      if (!callee.empty()) {
        callee += "::";
      }
      callee += part;
    }
    ev.name = rooted ? "::" + callee : callee;
    ev.line = t.line;
    ev.depth = depth;
    ev.min_depth_before = min_since;
    ev.member = member;
    ev.discarded = discarded;
    ev.receiver = std::move(receiver);
    fn.events.push_back(std::move(ev));
    min_since = depth;
    k = e;  // continue *into* the argument list: nested calls index too
  }
  i = k;
}

// ---- Class pre-scan ---------------------------------------------------------

void collect_classes(const std::vector<Tok>& toks, SourceIndex& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t != "class" && t != "struct" && t != "union") {
      continue;
    }
    if (i >= 1 && toks[i - 1].text == "enum") {
      continue;  // scoped enums are not lock-qualifying classes
    }
    std::size_t j = i + 1;
    while (toks[j].text == "[" || toks[j].text == "alignas") {
      // attributes — rare; skip token-wise until something identifier-ish
      ++j;
      if (j >= toks.size()) {
        break;
      }
    }
    while (j < toks.size() && toks[j].ident && !is_keyword(toks[j].text)) {
      out.classes.insert(toks[j].text);
      if (j + 2 < toks.size() && toks[j + 1].text == "::") {
        j += 2;
        continue;
      }
      break;
    }
  }
}

}  // namespace

std::string blank_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for `R` plus an optional encoding prefix
          // (u8, u, U, L) starting at an identifier boundary.
          std::size_t r = i;
          bool raw = false;
          if (i >= 1 && out[i - 1] == 'R') {
            std::size_t pre = i - 1;
            if (pre >= 1 && (out[pre - 1] == 'u' || out[pre - 1] == 'U' ||
                             out[pre - 1] == 'L')) {
              pre -= 1;
            } else if (pre >= 2 && out[pre - 2] == 'u' && out[pre - 1] == '8') {
              pre -= 2;
            }
            if (pre == 0 || !ident_char(out[pre - 1])) {
              raw = true;
              r = i - 1;
            }
          }
          if (raw) {
            // Scan the delimiter (the standard caps it at 16 chars).
            std::size_t q = i + 1;
            raw_delim.clear();
            while (q < out.size() && out[q] != '(' && out[q] != '\n' &&
                   raw_delim.size() <= 16) {
              raw_delim += out[q++];
            }
            if (q < out.size() && out[q] == '(') {
              for (std::size_t k = r; k <= q; ++k) {
                out[k] = ' ';
              }
              i = q;
              st = St::kRaw;
            } else {
              st = St::kStr;  // `R"` not followed by a raw-string opener
            }
          } else {
            st = St::kStr;
          }
        } else if (c == '\'' && (i == 0 || !ident_char(out[i - 1]))) {
          // Identifier-boundary check keeps digit separators (1'000) intact.
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else if (c == '\\' && next == '\n') {
          // Backslash line-splice: the comment continues on the next
          // physical line. Keep the newline (line numbers!), stay kLine.
          out[i] = ' ';
          ++i;
        } else if (c == '\\' && next == '\r' && i + 2 < out.size() &&
                   out[i + 2] == '\n') {
          out[i] = out[i + 1] = ' ';
          i += 2;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (out.compare(i, closer.size(), closer) == 0) {
          for (std::size_t k = i; k < i + closer.size(); ++k) {
            out[k] = ' ';
          }
          i += closer.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

void index_file(const std::string& rel, const std::string& text,
                SourceIndex& out) {
  const std::vector<Tok> toks = tokenize(blank_comments_and_strings(text));
  collect_classes(toks, out);
  Parser(rel, toks, out).run();
  out.files.push_back(rel);
}

SourceIndex index_tree(const fs::path& root) {
  SourceIndex out;
  const fs::path src = root / "src";
  std::vector<std::pair<std::string, std::string>> contents;  // rel, text
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::vector<Tok>> toks;
  for (const fs::path& p : paths) {
    const std::string rel = fs::relative(p, root).generic_string();
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      out.errors.push_back(rel);
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    contents.emplace_back(rel, blank_comments_and_strings(buf.str()));
  }
  // Pass 1: class names tree-wide (out-of-line definitions in any file may
  // qualify with a class declared in any header).
  toks.reserve(contents.size());
  for (const auto& [rel, text] : contents) {
    toks.push_back(tokenize(text));
    collect_classes(toks.back(), out);
  }
  // Pass 2: functions, calls, locks.
  for (std::size_t i = 0; i < contents.size(); ++i) {
    Parser(contents[i].first, toks[i], out).run();
    out.files.push_back(contents[i].first);
  }
  return out;
}

}  // namespace hpd::analysis
