// Project-wide call graph over a SourceIndex.
//
// Resolution is name-based and over-approximating: an unqualified call
// `flush(...)` resolves to every indexed function named `flush`; a
// qualified call `wire::decode(...)` resolves to every function whose
// qualified name ends in `wire::decode`; a rooted call `::poll(...)`
// never resolves (it is external by construction). Virtual dispatch
// therefore resolves to every same-named override — exactly the
// over-approximation the reachability checks want.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/source_index.hpp"

namespace hpd::analysis {

struct CallGraph {
  /// targets[f][e] = indices (into SourceIndex::functions) the e-th body
  /// event of function f resolves to. Lock events and external calls get
  /// an empty vector.
  std::vector<std::vector<std::vector<std::size_t>>> targets;
};

/// True when `qname`'s `::`-separated components end with `suffix`'s
/// components (`hpd::rt::Conn::flush` matches `Conn::flush` and `flush`
/// but not `ush`).
bool qname_suffix_match(const std::string& qname, const std::string& suffix);

CallGraph build_callgraph(const SourceIndex& index);

/// Human-readable dump (the `--dump-callgraph` mode): one `fn` line per
/// definition, one indented `call`/`lock` line per body event with its
/// resolved targets or `<external>`.
void dump_callgraph(const SourceIndex& index, const CallGraph& graph,
                    std::ostream& os);

}  // namespace hpd::analysis
