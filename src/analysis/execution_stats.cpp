#include "analysis/execution_stats.hpp"

#include <ostream>

#include "metrics/report.hpp"

namespace hpd::analysis {

ExecutionStats compute_stats(const trace::ExecutionRecord& exec) {
  const std::size_t n = exec.num_processes();
  ExecutionStats out;
  out.per_process.resize(n);
  out.comm.assign(n, std::vector<std::uint32_t>(n, 0));

  for (std::size_t p = 0; p < n; ++p) {
    const auto& tr = exec.procs[p];
    ProcessStats& ps = out.per_process[p];
    ps.events = tr.events.size();
    std::uint64_t true_events = 0;
    for (const auto& e : tr.events) {
      switch (e.kind) {
        case trace::EventKind::kSend:
          ++ps.sends;
          if (e.peer >= 0 && idx(e.peer) < n) {
            ++out.comm[p][idx(e.peer)];
          }
          break;
        case trace::EventKind::kReceive:
          ++ps.receives;
          break;
        case trace::EventKind::kInternal:
          ++ps.internals;
          break;
      }
      true_events += e.predicate_after ? 1 : 0;
    }
    ps.intervals = tr.intervals.size();
    std::uint64_t interval_events = 0;
    for (const auto& x : tr.intervals) {
      interval_events += x.hi[p] - x.lo[p] + 1;
    }
    ps.mean_interval_events =
        ps.intervals == 0 ? 0.0
                          : static_cast<double>(interval_events) /
                                static_cast<double>(ps.intervals);
    ps.truth_fraction = ps.events == 0
                            ? 0.0
                            : static_cast<double>(true_events) /
                                  static_cast<double>(ps.events);
    out.total_events += ps.events;
    out.total_messages += ps.sends;
    out.total_intervals += ps.intervals;
    out.max_intervals = std::max(out.max_intervals, ps.intervals);
  }

  // Cross-process interval-pair relations.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (const auto& x : exec.procs[a].intervals) {
        for (const auto& y : exec.procs[b].intervals) {
          ++out.pairs_total;
          if (overlap(x, y)) {
            ++out.pairs_overlap;
          }
          if (y.lo[a] <= x.hi[a] && x.lo[b] <= y.hi[b]) {
            ++out.pairs_coexist;
          }
        }
      }
    }
  }
  return out;
}

void print_stats(std::ostream& os, const ExecutionStats& stats) {
  TextTable t({"proc", "events", "sends", "recvs", "internal", "intervals",
               "mean ivl len", "truth frac"});
  for (std::size_t p = 0; p < stats.per_process.size(); ++p) {
    const auto& ps = stats.per_process[p];
    t.add_row({std::to_string(p), std::to_string(ps.events),
               std::to_string(ps.sends), std::to_string(ps.receives),
               std::to_string(ps.internals), std::to_string(ps.intervals),
               TextTable::num(ps.mean_interval_events, 1),
               TextTable::num(ps.truth_fraction, 2)});
  }
  t.print(os);
  os << "total events " << stats.total_events << ", messages "
     << stats.total_messages << ", intervals " << stats.total_intervals
     << " (p = " << stats.max_intervals << ")\n";
  if (stats.pairs_total > 0) {
    os << "cross-process interval pairs: " << stats.pairs_total << ", "
       << stats.pairs_overlap << " satisfy the Definitely overlap ("
       << TextTable::num(100.0 * static_cast<double>(stats.pairs_overlap) /
                             static_cast<double>(stats.pairs_total),
                         1)
       << "%), " << stats.pairs_coexist << " can coexist in a cut ("
       << TextTable::num(100.0 * static_cast<double>(stats.pairs_coexist) /
                             static_cast<double>(stats.pairs_total),
                         1)
       << "%)\n";
  }
}

}  // namespace hpd::analysis
