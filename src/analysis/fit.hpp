// Power-law fitting for measured cost curves: fit y ≈ c·x^k by linear
// least squares in log–log space. Used by the Table I bench to report the
// *measured* growth exponents next to the paper's asymptotic claims
// (O(n²) vs O(n³) becomes k ≈ 2 vs k ≈ 3 on real data).
#pragma once

#include <cstddef>
#include <vector>

namespace hpd::analysis {

struct PowerFit {
  double exponent = 0.0;     ///< k in y = c·x^k
  double coefficient = 0.0;  ///< c
  double r_squared = 0.0;    ///< goodness of fit in log–log space
};

/// Fit y ≈ c·x^k. Requires at least two points, all strictly positive.
PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y);

}  // namespace hpd::analysis
