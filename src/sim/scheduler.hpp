// Deterministic discrete-event scheduler.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// execute in a deterministic order and a (config, seed) pair reproduces a
// bit-identical run. Cancellation is lazy (tombstones), which keeps both
// schedule and cancel O(log k).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hpd::sim {

using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedule a callback at absolute time t (>= now).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule a callback `delay` time units from now (delay >= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event; harmless if it already fired or never existed.
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Run events until the queue drains or `max_events` have executed.
  /// Returns the number of callbacks executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with fire time <= t_end; afterwards now() == max(now, t_end).
  /// Returns the number of callbacks executed.
  std::uint64_t run_until(SimTime t_end);

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Item {
    SimTime t;
    EventId id;  // doubles as insertion sequence (monotone)
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.id > b.id;
    }
  };

  /// Pop the next non-cancelled item, or return false if none.
  bool pop_next(Item& out);

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hpd::sim
