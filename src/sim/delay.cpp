#include "sim/delay.hpp"

namespace hpd::sim {

DelayModel DelayModel::fixed(SimTime value) {
  HPD_REQUIRE(value >= 0.0, "DelayModel::fixed: negative delay");
  return DelayModel(Kind::kFixed, value, 0.0);
}

DelayModel DelayModel::uniform(SimTime lo, SimTime hi) {
  HPD_REQUIRE(0.0 <= lo && lo <= hi, "DelayModel::uniform: bad range");
  return DelayModel(Kind::kUniform, lo, hi);
}

DelayModel DelayModel::exponential(SimTime mean, SimTime min) {
  HPD_REQUIRE(mean > 0.0 && min >= 0.0, "DelayModel::exponential: bad params");
  return DelayModel(Kind::kExponential, mean, min);
}

SimTime DelayModel::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return a_;
    case Kind::kUniform:
      return rng.uniform_real(a_, b_);
    case Kind::kExponential:
      return b_ + rng.exponential(a_);
  }
  return a_;
}

}  // namespace hpd::sim
