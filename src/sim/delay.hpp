// Channel delay models. Per-message independent sampling makes channels
// non-FIFO (the paper's system model), since a later message can draw a
// smaller delay and overtake an earlier one.
#pragma once

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hpd::sim {

class DelayModel {
 public:
  /// Every message takes exactly `value` time units (FIFO by construction).
  static DelayModel fixed(SimTime value);

  /// Uniform in [lo, hi); non-FIFO when lo < hi.
  static DelayModel uniform(SimTime lo, SimTime hi);

  /// min + Exponential(mean); heavy reordering tail.
  static DelayModel exponential(SimTime mean, SimTime min = 0.0);

  SimTime sample(Rng& rng) const;

  /// True if two messages on the same channel can be reordered.
  bool can_reorder() const { return kind_ != Kind::kFixed; }

 private:
  enum class Kind { kFixed, kUniform, kExponential };
  DelayModel(Kind kind, SimTime a, SimTime b) : kind_(kind), a_(a), b_(b) {}

  Kind kind_;
  SimTime a_;
  SimTime b_;
};

}  // namespace hpd::sim
