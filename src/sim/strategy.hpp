// Pluggable message-scheduling strategy: the hook the model checker uses to
// drive the network through adversarial schedules.
//
// By default the network samples one delivery delay per message from its
// DelayModel. A ScheduleStrategy replaces that decision wholesale: for every
// send it returns a DeliveryPlan that may reshape the delay (bounded
// reordering, priority lanes), drop the message, or deliver several copies
// (duplication). The strategy sees the full message (src, dst, type), so
// fault plans can target specific protocol layers — e.g. perturb only
// application traffic while leaving the heartbeat plane intact.
//
// Strategies must be deterministic functions of their own state and the Rng
// handed to them, so a (config, seed, strategy) triple reproduces a
// bit-identical run — the property the shrinker and repro files rely on.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/delay.hpp"
#include "sim/message.hpp"

namespace hpd::sim {

/// What to do with one sent message. `delays` holds one entry per delivered
/// copy: empty = drop, one entry = normal delivery, k entries = duplicate
/// into k copies. Delays are relative to the send time and must be >= 0.
struct DeliveryPlan {
  std::vector<SimTime> delays;

  static DeliveryPlan drop() { return DeliveryPlan{}; }
  static DeliveryPlan deliver(SimTime delay) { return DeliveryPlan{{delay}}; }
};

class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;

  /// Called once per Network::send, in send order. `base` is the network's
  /// configured delay model (strategies typically start from a base sample
  /// and perturb it); `rng` is the network's RNG stream.
  virtual DeliveryPlan plan(const Message& msg, const DelayModel& base,
                            Rng& rng) = 0;
};

}  // namespace hpd::sim
