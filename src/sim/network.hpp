// The simulated network: asynchronous point-to-point message delivery with
// randomized (hence non-FIFO) delays, per-node timers, and crash-stop
// failures. All behaviour is deterministic given the Rng seed.
//
// Network is the simulator backend of transport::Endpoint — the interface
// runner::ProcessRuntime is written against — so the same protocol stack
// also runs over the live thread/socket transport (rt::LiveTransport).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "metrics/counters.hpp"
#include "sim/delay.hpp"
#include "sim/message.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "sim/strategy.hpp"
#include "transport/endpoint.hpp"

namespace hpd::sim {

using TimerId = transport::TimerId;
inline constexpr TimerId kNoTimer = transport::kNoTimer;

class Network final : public transport::Endpoint {
 public:
  /// `link_ok(a, b)` restricts which pairs may exchange messages directly
  /// (one hop); pass nullptr for an unrestricted (complete) network.
  Network(std::size_t n, Scheduler& sched, Rng& rng, DelayModel delay,
          MetricsRegistry& metrics,
          std::function<bool(ProcessId, ProcessId)> link_ok = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t size() const { return nodes_.size(); }
  SimTime now() const override { return sched_.now(); }
  Scheduler& scheduler() { return sched_; }
  Rng& rng() { return rng_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Attach the behaviour object for a process. The caller retains ownership
  /// and must keep the node alive for the network's lifetime.
  void register_node(ProcessId id, Node& node);

  /// Invoke on_start() on every registered node (in id order).
  void start();

  /// Crash-stop `id` now: it stops sending, receiving, and firing timers.
  void crash(ProcessId id);

  /// Bring a crashed node back (crash-recovery model). The node's timers
  /// died with it — the owner must re-arm them (see ProcessRuntime::
  /// on_revive). Messages sent to it while dead are gone.
  void revive(ProcessId id);

  bool alive(ProcessId id) const override;
  std::size_t alive_count() const;

  /// Send a one-hop message. Drops silently (with a counter) if the source
  /// has crashed or the link is not allowed; delivery is dropped if the
  /// destination has crashed by arrival time.
  void send(Message msg) override;

  /// Install a scheduling strategy (non-owning; the caller keeps it alive
  /// and must not swap it mid-run). nullptr restores the default behaviour
  /// (one delivery per send, delay sampled from the DelayModel).
  void set_strategy(ScheduleStrategy* strategy) { strategy_ = strategy; }

  /// One-shot or periodic timer for a node. Fires on_timer(tag).
  TimerId set_timer(ProcessId id, int tag, SimTime delay, bool periodic = false,
                    SimTime period = 0.0) override;
  void cancel_timer(TimerId id) override;

  /// Diagnostics.
  std::uint64_t dropped_messages() const { return dropped_; }
  std::uint64_t delivered_messages() const { return delivered_; }
  /// Messages dropped / copies added by the installed strategy (0 without).
  std::uint64_t strategy_dropped() const { return strategy_dropped_; }
  std::uint64_t strategy_duplicated() const { return strategy_duplicated_; }

 private:
  struct TimerRec {
    ProcessId node = kNoProcess;
    int tag = 0;
    SimTime period = 0.0;
    bool periodic = false;
  };

  void deliver(const Message& msg);
  void fire_timer(TimerId id);

  Scheduler& sched_;
  Rng& rng_;
  MetricsRegistry& metrics_;
  DelayModel delay_;
  ScheduleStrategy* strategy_ = nullptr;
  std::function<bool(ProcessId, ProcessId)> link_ok_;
  std::vector<Node*> nodes_;
  std::vector<bool> alive_;
  std::unordered_map<TimerId, TimerRec> timers_;
  TimerId next_timer_ = 1;
  SeqNum next_msg_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t strategy_dropped_ = 0;
  std::uint64_t strategy_duplicated_ = 0;
};

}  // namespace hpd::sim
