#include "sim/network.hpp"

#include <utility>

#include "common/logging.hpp"

namespace hpd::sim {

Network::Network(std::size_t n, Scheduler& sched, Rng& rng, DelayModel delay,
                 MetricsRegistry& metrics,
                 std::function<bool(ProcessId, ProcessId)> link_ok)
    : sched_(sched),
      rng_(rng),
      metrics_(metrics),
      delay_(delay),
      link_ok_(std::move(link_ok)),
      nodes_(n, nullptr),
      alive_(n, true) {
  if (metrics_.num_nodes() < n) {
    metrics_.resize(n);
  }
}

void Network::register_node(ProcessId id, Node& node) {
  HPD_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
              "Network::register_node: bad id");
  HPD_REQUIRE(nodes_[static_cast<std::size_t>(id)] == nullptr,
              "Network::register_node: id already registered");
  nodes_[static_cast<std::size_t>(id)] = &node;
}

void Network::start() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] != nullptr && alive_[i]) {
      nodes_[i]->on_start();
    }
  }
}

void Network::crash(ProcessId id) {
  HPD_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
              "Network::crash: bad id");
  auto idx = static_cast<std::size_t>(id);
  if (!alive_[idx]) {
    return;  // already dead
  }
  alive_[idx] = false;
  HPD_DEBUG("node " << id << " crashed at t=" << now());
  if (nodes_[idx] != nullptr) {
    nodes_[idx]->on_crash();
  }
}

void Network::revive(ProcessId id) {
  HPD_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
              "Network::revive: bad id");
  HPD_REQUIRE(!alive_[static_cast<std::size_t>(id)],
              "Network::revive: node is not dead");
  alive_[static_cast<std::size_t>(id)] = true;
  HPD_DEBUG("node " << id << " revived at t=" << now());
}

bool Network::alive(ProcessId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= alive_.size()) {
    return false;
  }
  return alive_[static_cast<std::size_t>(id)];
}

std::size_t Network::alive_count() const {
  std::size_t count = 0;
  for (bool a : alive_) {
    count += a ? 1 : 0;
  }
  return count;
}

void Network::send(Message msg) {
  HPD_REQUIRE(msg.src >= 0 && static_cast<std::size_t>(msg.src) < nodes_.size(),
              "Network::send: bad src");
  HPD_REQUIRE(msg.dst >= 0 && static_cast<std::size_t>(msg.dst) < nodes_.size(),
              "Network::send: bad dst");
  if (!alive(msg.src)) {
    ++dropped_;
    return;
  }
  if (link_ok_ && !link_ok_(msg.src, msg.dst)) {
    ++dropped_;
    HPD_WARN("send over non-existent link " << msg.src << "->" << msg.dst);
    return;
  }
  msg.id = next_msg_id_++;
  msg.sent_at = sched_.now();
  metrics_.on_send(msg.src, msg.type, msg.wire_words, msg.wire_bytes);
  if (strategy_ == nullptr) {
    const SimTime delay = delay_.sample(rng_);
    sched_.schedule_after(
        delay, [this, m = std::move(msg)]() mutable { deliver(m); });
    return;
  }
  const DeliveryPlan plan = strategy_->plan(msg, delay_, rng_);
  if (plan.delays.empty()) {
    ++strategy_dropped_;
    ++dropped_;
    return;
  }
  strategy_duplicated_ += plan.delays.size() - 1;
  for (std::size_t k = 0; k + 1 < plan.delays.size(); ++k) {
    HPD_REQUIRE(plan.delays[k] >= 0.0, "ScheduleStrategy: negative delay");
    sched_.schedule_after(plan.delays[k], [this, m = msg] { deliver(m); });
  }
  HPD_REQUIRE(plan.delays.back() >= 0.0, "ScheduleStrategy: negative delay");
  sched_.schedule_after(plan.delays.back(),
                        [this, m = std::move(msg)]() mutable { deliver(m); });
}

void Network::deliver(const Message& msg) {
  if (!alive(msg.dst)) {
    ++dropped_;
    return;
  }
  Node* node = nodes_[static_cast<std::size_t>(msg.dst)];
  if (node == nullptr) {
    ++dropped_;
    return;
  }
  ++delivered_;
  node->on_message(msg);
}

TimerId Network::set_timer(ProcessId id, int tag, SimTime delay, bool periodic,
                           SimTime period) {
  HPD_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
              "Network::set_timer: bad id");
  HPD_REQUIRE(!periodic || period > 0.0,
              "Network::set_timer: periodic timer needs positive period");
  const TimerId tid = next_timer_++;
  timers_[tid] = TimerRec{id, tag, period, periodic};
  sched_.schedule_after(delay, [this, tid] { fire_timer(tid); });
  return tid;
}

void Network::cancel_timer(TimerId id) { timers_.erase(id); }

void Network::fire_timer(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) {
    return;  // cancelled
  }
  const TimerRec rec = it->second;
  if (!alive(rec.node)) {
    timers_.erase(it);
    return;
  }
  if (rec.periodic) {
    sched_.schedule_after(rec.period, [this, id] { fire_timer(id); });
  } else {
    timers_.erase(it);
  }
  Node* node = nodes_[static_cast<std::size_t>(rec.node)];
  if (node != nullptr) {
    node->on_timer(rec.tag);
  }
}

}  // namespace hpd::sim
