#include "sim/scheduler.hpp"

#include <cmath>
#include <utility>

namespace hpd::sim {

EventId Scheduler::schedule_at(SimTime t, Callback cb) {
  HPD_REQUIRE(std::isfinite(t), "Scheduler: event time must be finite");
  HPD_REQUIRE(t >= now_, "Scheduler: cannot schedule in the past");
  HPD_REQUIRE(cb != nullptr, "Scheduler: null callback");
  const EventId id = next_id_++;
  queue_.push(Item{t, id, std::move(cb)});
  ++live_count_;
  return id;
}

bool Scheduler::pop_next(Item& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback must be moved out, so we
    // const_cast the item we are about to pop. This is the standard idiom
    // for move-only payloads in a priority_queue.
    Item& top = const_cast<Item&>(queue_.top());
    Item item{top.t, top.id, std::move(top.cb)};
    queue_.pop();
    auto it = cancelled_.find(item.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --live_count_;
      continue;
    }
    out = std::move(item);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  Item item;
  while (executed < max_events && pop_next(item)) {
    --live_count_;
    now_ = item.t;
    ++executed_;
    ++executed;
    item.cb();
  }
  return executed;
}

std::uint64_t Scheduler::run_until(SimTime t_end) {
  std::uint64_t executed = 0;
  Item item;
  while (pop_next(item)) {
    if (item.t > t_end) {
      // Put it back; it fires in a later epoch.
      queue_.push(std::move(item));
      break;
    }
    --live_count_;
    now_ = item.t;
    ++executed_;
    ++executed;
    item.cb();
  }
  if (now_ < t_end) {
    now_ = t_end;
  }
  return executed;
}

}  // namespace hpd::sim
