// Typed point-to-point messages exchanged by simulated nodes.
//
// The struct itself lives in transport/ (it is shared verbatim with the
// live runtime); this alias keeps the historical sim:: spelling working.
#pragma once

#include "transport/message.hpp"

namespace hpd::sim {

using Message = transport::Message;

}  // namespace hpd::sim
