// Interface every simulated node implements.
#pragma once

#include "sim/message.hpp"

namespace hpd::sim {

class Node {
 public:
  virtual ~Node() = default;

  /// Invoked once when the simulation starts (Network::start()).
  virtual void on_start() {}

  /// A message addressed to this node has been delivered.
  virtual void on_message(const Message& msg) = 0;

  /// A timer set via Network::set_timer fired. `tag` is caller-defined.
  virtual void on_timer(int tag) { (void)tag; }

  /// This node has crashed (crash-stop). Called exactly once, at crash time,
  /// so implementations can drop resources; after this, the network never
  /// invokes the node again.
  virtual void on_crash() {}
};

}  // namespace hpd::sim
