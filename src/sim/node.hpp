// Interface every simulated node implements.
//
// The interface lives in transport/ (live-runtime nodes implement the same
// one); this alias keeps the historical sim:: spelling working.
#pragma once

#include "transport/node.hpp"

namespace hpd::sim {

using Node = transport::Node;

}  // namespace hpd::sim
