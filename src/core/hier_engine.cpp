#include "core/hier_engine.hpp"

#include <span>
#include <utility>

#include "common/assert.hpp"

namespace hpd::core {

HierNodeEngine::HierNodeEngine(const Config& config, Hooks hooks)
    : self_(config.self),
      has_parent_(config.has_parent),
      hooks_(std::move(hooks)),
      engine_(config.prune_mode) {
  HPD_REQUIRE(self_ >= 0, "HierNodeEngine: bad self id");
  engine_.set_capacity(config.queue_capacity);
  engine_.add_queue(self_);  // Q0: local intervals
}

void HierNodeEngine::set_has_parent(bool has_parent) {
  has_parent_ = has_parent;
}

void HierNodeEngine::add_child(ProcessId child, SeqNum first_seq) {
  HPD_REQUIRE(child != self_, "HierNodeEngine: cannot adopt self");
  // The detection scope grows: recently pruned heads become viable again
  // (see QueueEngine::restore_pruned). No solution can complete yet — the
  // new child's queue starts empty — so no recheck is needed here.
  engine_.restore_pruned();
  engine_.add_queue(child);
  reorder_.track(child, first_seq);
}

void HierNodeEngine::ensure_child(ProcessId child, SeqNum first_seq) {
  if (engine_.has_queue(child)) {
    reorder_.track(child, first_seq);
    return;
  }
  add_child(child, first_seq);
}

void HierNodeEngine::remove_child(ProcessId child) {
  engine_.remove_queue(child);
  reorder_.untrack(child);
  handle_solutions(engine_.recheck());
}

void HierNodeEngine::reset_as_leaf() {
  for (const ProcessId key : engine_.keys()) {
    if (key == self_) {
      engine_.clear_queue(self_);
    } else {
      engine_.remove_queue(key);
      reorder_.untrack(key);
    }
  }
}

void HierNodeEngine::local_interval(Interval x) {
  HPD_DASSERT(x.origin == self_, "HierNodeEngine: local interval origin");
  handle_solutions(engine_.offer(self_, std::move(x)));
}

void HierNodeEngine::child_report(ProcessId child, Interval x) {
  if (!engine_.has_queue(child)) {
    return;  // stale report from a removed child
  }
  for (Interval& y : reorder_.push(child, std::move(x))) {
    handle_solutions(engine_.offer(child, std::move(y)));
  }
}

HierNodeEngine::Snapshot HierNodeEngine::snapshot() const {
  Snapshot snap;
  snap.self = self_;
  snap.has_parent = has_parent_;
  snap.engine = engine_.snapshot();
  snap.reorder = reorder_.snapshot();
  snap.next_seq = next_seq_;
  snap.occurrence_count = occurrence_count_;
  snap.last_report = last_report_;
  return snap;
}

void HierNodeEngine::restore(const Snapshot& snap) {
  HPD_REQUIRE(snap.self == self_, "HierNodeEngine::restore: node id mismatch");
  has_parent_ = snap.has_parent;
  engine_.restore(snap.engine);
  reorder_.restore(snap.reorder);
  next_seq_ = snap.next_seq;
  occurrence_count_ = snap.occurrence_count;
  last_report_ = snap.last_report;
}

void HierNodeEngine::resend_last_report() {
  if (last_report_.has_value() && has_parent_ && hooks_.send_report) {
    hooks_.send_report(*last_report_);
  }
}

void HierNodeEngine::handle_solutions(
    const std::vector<detect::Solution>& sols) {
  for (const detect::Solution& sol : sols) {
    Interval agg = aggregate(std::span<const Interval>(sol.members), self_,
                             next_seq_++);
    detect::OccurrenceRecord rec;
    rec.detector = self_;
    rec.index = ++occurrence_count_;
    rec.time = now();
    rec.latest_member_completion = agg.completed_at;
    rec.global = !has_parent_;
    rec.aggregate = agg;
    rec.solution = sol.members;
    if (hooks_.on_occurrence) {
      hooks_.on_occurrence(rec);
    }
    if (has_parent_) {
      HPD_ASSERT(hooks_.send_report != nullptr,
                 "HierNodeEngine: has parent but no send hook");
      hooks_.send_report(agg);
      last_report_ = std::move(agg);
    }
  }
}

}  // namespace hpd::core
