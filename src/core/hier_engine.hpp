// Per-node engine of the paper's hierarchical detection algorithm
// (Algorithm 1). This is the primary contribution of the paper.
//
// Every node detects Definitely(Φ) within the subtree rooted at itself,
// over one queue of local intervals plus one queue per child. When a
// solution is found the node aggregates it with ⊓ (Theorem 1 / Lemma 1
// justify treating the aggregate as an ordinary interval one level up) and
// reports the aggregate to its parent; the root raises a global detection.
// Queue pruning (Eq. (10)) makes detection repeated at every level.
//
// The class is pure algorithm logic: all I/O goes through injected hooks,
// which makes it directly unit-testable and lets the runner wire it to the
// simulated network. Child sets are dynamic to support the failure handling
// of Section III-F (queues are added / removed as the spanning tree is
// repaired around crashed nodes).
#pragma once

#include <functional>
#include <optional>

#include "common/types.hpp"
#include "detect/occurrence.hpp"
#include "detect/queue_engine.hpp"
#include "detect/reorder.hpp"
#include "interval/interval.hpp"

namespace hpd::core {

class HierNodeEngine {
 public:
  struct Config {
    ProcessId self = kNoProcess;
    bool has_parent = false;  ///< false for the spanning-tree root
    detect::QueueEngine::PruneMode prune_mode =
        detect::QueueEngine::PruneMode::kAllEq10;
    /// Bound each queue (0 = unbounded); see QueueEngine::set_capacity.
    std::size_t queue_capacity = 0;
  };

  struct Hooks {
    /// Transmit an aggregated interval to the current parent. Must be
    /// non-null whenever has_parent is true.
    std::function<void(const Interval&)> send_report;
    /// Raised for every solution found at this node (subtree-level
    /// detection; `global` is set when the node currently has no parent).
    detect::OccurrenceCallback on_occurrence;
    /// Timestamp source for occurrence records (may be null → 0).
    std::function<SimTime()> now;
  };

  HierNodeEngine(const Config& config, Hooks hooks);

  ProcessId self() const { return self_; }
  bool has_parent() const { return has_parent_; }

  // ---- Dynamic tree wiring (Section III-F) -------------------------------

  /// The node was re-rooted / orphaned / adopted.
  void set_has_parent(bool has_parent);

  /// Start accepting reports from `child`, whose first report will carry
  /// sequence number `first_seq` (1 at start-up; negotiated by the attach
  /// handshake after a repair).
  void add_child(ProcessId child, SeqNum first_seq);

  /// The child failed or moved away: its queue and pending reports are
  /// dropped, and detection is re-run — removing the blocking queue may
  /// complete a solution for the shrunken subtree.
  void remove_child(ProcessId child);

  /// Idempotent adoption: (re)establish the report stream for `child`.
  /// Used when an attach handshake is retried.
  void ensure_child(ProcessId child, SeqNum first_seq);

  /// Crash-recovery reset: drop every child queue and all stale local
  /// intervals; the node rejoins the system as a fresh leaf. Report and
  /// occurrence sequence numbers continue (monotone across incarnations),
  /// so downstream reorder buffers stay consistent.
  void reset_as_leaf();

  bool has_child(ProcessId child) const { return engine_.has_queue(child); }
  std::size_t num_children() const { return engine_.num_queues() - 1; }
  bool is_leaf() const { return num_children() == 0; }

  // ---- Inputs -------------------------------------------------------------

  /// A completed local-predicate interval (origin == self, seq increasing).
  void local_interval(Interval x);

  /// A report received from a child (aggregated unless the child is a leaf
  /// in spirit; uniformly treated either way). Reports from unknown
  /// children (e.g. declared dead while the message was in flight) and
  /// stale duplicates are dropped by the reorder buffer.
  void child_report(ProcessId child, Interval x);

  // ---- Re-report support (Section III-F) ----------------------------------

  /// The last aggregate sent to a parent, if any; re-sent on reattachment
  /// because it may have died with the old parent.
  const std::optional<Interval>& last_report() const { return last_report_; }

  /// Sequence number the next generated aggregate will carry.
  SeqNum next_report_seq() const { return next_seq_; }

  /// Re-send last_report() to the (new) parent, if both exist.
  void resend_last_report();

  // ---- Introspection -------------------------------------------------------

  const detect::QueueEngine& engine() const { return engine_; }
  const detect::ReorderBuffer& reorder() const { return reorder_; }
  SeqNum occurrences() const { return occurrence_count_; }

  // ---- Checkpoint surface (durability) ------------------------------------

  /// Deep image of the per-node detection state: queue engine (own + child
  /// queues), reorder buffer, parent linkage, report/occurrence numbering,
  /// and the re-report cache. A restored engine continues its report and
  /// occurrence sequences exactly where the snapshot left off, so
  /// downstream reorder buffers stay consistent across a restart.
  struct Snapshot {
    ProcessId self = kNoProcess;
    bool has_parent = false;
    detect::QueueEngine::Snapshot engine;
    detect::ReorderBuffer::Snapshot reorder;
    SeqNum next_seq = 1;
    SeqNum occurrence_count = 0;
    std::optional<Interval> last_report;
  };

  Snapshot snapshot() const;
  /// The engine must have been constructed with the same `self` and prune
  /// mode (validated; see QueueEngine::restore).
  void restore(const Snapshot& snap);

 private:
  void handle_solutions(const std::vector<detect::Solution>& sols);
  SimTime now() const { return hooks_.now ? hooks_.now() : 0.0; }

  ProcessId self_;
  bool has_parent_;
  Hooks hooks_;
  detect::QueueEngine engine_;
  detect::ReorderBuffer reorder_;
  SeqNum next_seq_ = 1;
  SeqNum occurrence_count_ = 0;
  std::optional<Interval> last_report_;
};

}  // namespace hpd::core
