#include "common/logging.hpp"

#include <atomic>

#include "common/thread_annotations.hpp"

namespace hpd {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};
Mutex g_write_mutex;  ///< serializes whole lines onto std::clog
}  // namespace

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::set_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

void Log::write(LogLevel level, const std::string& message) {
  MutexLock lock(g_write_mutex);
  std::clog << "[hpd:" << level_name(level) << "] " << message << '\n';
}

}  // namespace hpd
