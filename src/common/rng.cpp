#include "common/rng.hpp"

#include <cmath>

namespace hpd {

std::uint64_t Rng::bounded(std::uint64_t bound) {
  HPD_DASSERT(bound > 0, "bounded: bound must be positive");
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  HPD_REQUIRE(mean > 0.0, "exponential: mean must be positive");
  double u = uniform01();
  // Guard against log(0); uniform01() < 1 always, but can be exactly 0.
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

}  // namespace hpd
