// Deterministic, platform-independent random number generation.
//
// std::mt19937 is portable but std::*_distribution is not (the mapping from
// bits to values is implementation-defined), which would make simulation
// results differ across standard libraries. We therefore implement the
// engine (xoshiro256**) and the distributions ourselves so that a
// (config, seed) pair reproduces bit-identical executions everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace hpd {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the public-domain reference implementation).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** engine (Blackman & Vigna, public domain reference code).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : state_) {
      w = sm.next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HPD_REQUIRE(lo <= hi, "uniform_int: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>((*this)());
    }
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n) {
    HPD_REQUIRE(n > 0, "uniform_index: n must be positive");
    return static_cast<std::size_t>(bounded(n));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 high-quality bits -> [0,1) double, the standard conversion.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    HPD_REQUIRE(lo <= hi, "uniform_real: empty range");
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean);

  /// Derive an independent child generator (for per-node / per-task streams).
  Rng split() { return Rng((*this)() ^ 0x6c62272e07bb0142ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded integer in [0, bound) via Lemire's method.
  std::uint64_t bounded(std::uint64_t bound);

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hpd
