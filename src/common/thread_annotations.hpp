// Clang Thread Safety Analysis support: attribute macros plus annotated
// synchronization primitives (Mutex / MutexLock / CondVar) that every piece
// of concurrent code in src/ must use instead of naked std::mutex (enforced
// by tools/hpd_lint, rule `raw-concurrency`).
//
// Under Clang with -Wthread-safety (CMake option HPD_THREAD_SAFETY) the
// annotations make lock discipline a compile-time property: a field marked
// HPD_GUARDED_BY(mu) can only be touched while `mu` is held, a function
// marked HPD_REQUIRES(mu) can only be called with `mu` held, and the build
// fails (-Werror=thread-safety) on any violation. Under GCC (or Clang
// without the option) everything expands to nothing and the wrappers are
// zero-cost shims over the std primitives, so ASan/TSan legs and release
// builds are unchanged.
//
// Conventions (see docs/STATIC_ANALYSIS.md):
//   * Every shared field gets HPD_GUARDED_BY(its mutex). Thread-confined
//     state (touched by exactly one thread) stays unannotated but must say
//     so in a comment naming the owning thread.
//   * Private helpers that expect a caller-held lock are annotated
//     HPD_REQUIRES(mu) instead of re-locking.
//   * Condition-variable predicates are written as explicit `while` loops
//     under the held MutexLock — never as wait-predicate lambdas, which
//     escape the analysis (the lambda body runs inside std::condition_
//     variable::wait, where the analysis cannot see the held capability).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define HPD_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HPD_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

#define HPD_CAPABILITY(x) HPD_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define HPD_SCOPED_CAPABILITY HPD_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define HPD_GUARDED_BY(x) HPD_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define HPD_PT_GUARDED_BY(x) HPD_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define HPD_ACQUIRE(...) \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define HPD_RELEASE(...) \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define HPD_TRY_ACQUIRE(...) \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define HPD_REQUIRES(...) \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define HPD_EXCLUDES(...) \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define HPD_ASSERT_CAPABILITY(x) \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define HPD_RETURN_CAPABILITY(x) \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define HPD_NO_THREAD_SAFETY_ANALYSIS \
  HPD_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace hpd {

class CondVar;
class MutexLock;

/// Annotated mutex. A thin wrapper over std::mutex that carries the
/// `capability` attribute so guarded fields and REQUIRES clauses can name
/// it. Prefer the scoped MutexLock over calling lock()/unlock() directly.
class HPD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HPD_ACQUIRE() { mu_.lock(); }
  void unlock() HPD_RELEASE() { mu_.unlock(); }
  bool try_lock() HPD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock holder (RAII). Supports early release (`unlock()`) for the
/// unlock-then-notify pattern and re-acquisition (`lock()`); the destructor
/// releases only if still held.
class HPD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HPD_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() HPD_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() HPD_RELEASE() { lock_.unlock(); }
  void lock() HPD_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable used with Mutex/MutexLock. wait() atomically releases
/// and re-acquires the underlying std::mutex, so from the analysis's point
/// of view the capability is held across the call — which is exactly the
/// contract the caller's `while (!predicate) cv.wait(lock);` loop relies
/// on: the predicate is always evaluated under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hpd
