// Minimal leveled logger. Off by default so simulations stay quiet and fast;
// examples and debugging sessions raise the level explicitly.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace hpd {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

/// Global log configuration (process-wide; guarded for multi-threaded sweeps).
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

}  // namespace hpd

#define HPD_LOG(lvl, expr)                                      \
  do {                                                          \
    if (static_cast<int>(lvl) <=                                \
        static_cast<int>(::hpd::Log::level())) {                \
      std::ostringstream hpd_log_os_;                           \
      hpd_log_os_ << expr;                                      \
      ::hpd::Log::write((lvl), hpd_log_os_.str());              \
    }                                                           \
  } while (false)

#define HPD_ERROR(expr) HPD_LOG(::hpd::LogLevel::kError, expr)
#define HPD_WARN(expr) HPD_LOG(::hpd::LogLevel::kWarn, expr)
#define HPD_INFO(expr) HPD_LOG(::hpd::LogLevel::kInfo, expr)
#define HPD_DEBUG(expr) HPD_LOG(::hpd::LogLevel::kDebug, expr)
#define HPD_TRACE(expr) HPD_LOG(::hpd::LogLevel::kTrace, expr)
