// Fundamental identifier and scalar types shared by every hpd module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace hpd {

/// Index of a process (node) in the system. Processes are numbered
/// 0 .. n-1; the same index is used for vector-clock components,
/// topology vertices, and spanning-tree nodes.
using ProcessId = std::int32_t;

/// Sentinel for "no process" (e.g. the parent of the spanning-tree root).
inline constexpr ProcessId kNoProcess = -1;

/// Simulated wall-clock time, in abstract time units.
using SimTime = double;

/// Sentinel for "never" / unset time.
inline constexpr SimTime kNeverTime = std::numeric_limits<SimTime>::infinity();

/// Monotone sequence number (per-origin interval numbering, event ids, ...).
using SeqNum = std::uint64_t;

/// A single vector-clock component value.
using ClockValue = std::uint32_t;

/// Convert a (validated) ProcessId into a container index.
inline constexpr std::size_t idx(ProcessId id) {
  return static_cast<std::size_t>(id);
}

}  // namespace hpd
