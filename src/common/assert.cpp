#include "common/assert.hpp"

#include <sstream>

namespace hpd::detail {

void assertion_failed(const char* expr, const char* file, int line,
                      const std::string& message) {
  std::ostringstream os;
  os << "hpd assertion failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw AssertionError(os.str());
}

}  // namespace hpd::detail
