// Always-on invariant checks that throw instead of aborting, so unit tests
// can assert on violations and long sweeps fail loudly with context.
#pragma once

#include <stdexcept>
#include <string>

namespace hpd {

/// Thrown when an HPD_REQUIRE / HPD_ASSERT condition is violated.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace hpd

/// Precondition / invariant check, enabled in all build types.
#define HPD_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::hpd::detail::assertion_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

/// Internal consistency check; same behaviour as HPD_REQUIRE but signals
/// a library bug rather than caller misuse.
#define HPD_ASSERT(cond, msg) HPD_REQUIRE(cond, msg)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define HPD_DASSERT(cond, msg) \
  do {                         \
  } while (false)
#else
#define HPD_DASSERT(cond, msg) HPD_REQUIRE(cond, msg)
#endif
