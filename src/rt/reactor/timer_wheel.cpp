#include "rt/reactor/timer_wheel.hpp"

#include <algorithm>
#include <utility>

namespace hpd::rt {

void TimerWheel::reset(Clock::time_point origin, Clock::duration tick) {
  origin_ = origin;
  tick_ = tick;
  current_ = 0;
  next_id_ = 1;
  for (auto& s : slots_) {
    s.clear();
  }
  overflow_.clear();
  live_.clear();
}

std::uint64_t TimerWheel::to_tick(Clock::time_point t) const {
  if (t <= origin_) {
    return 0;
  }
  return static_cast<std::uint64_t>((t - origin_) / tick_);
}

TimerWheel::TimerId TimerWheel::schedule(Clock::time_point due,
                                         std::uint64_t data) {
  Entry e;
  const TimerId id = next_id_++;
  e.id = id;
  e.due = due;
  // Already-due timers land in the very next tick so advance() sees them.
  e.due_tick = std::max(to_tick(due), current_ + 1);
  e.data = data;
  live_.insert(id);
  place(std::move(e));
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  // Lazy: the slot entry is discarded whenever its slot is next visited.
  return live_.erase(id) != 0;
}

void TimerWheel::place(Entry e) {
  const std::uint64_t delta =
      e.due_tick > current_ ? e.due_tick - current_ : 0;
  int level;
  if (delta < kSlots) {
    level = 0;
  } else if (delta < kSlots * kSlots) {
    level = 1;
  } else if (delta < kSlots * kSlots * kSlots) {
    level = 2;
  } else if (delta < kHorizon) {
    level = 3;
  } else {
    overflow_.push_back(std::move(e));
    return;
  }
  const std::uint64_t slot = (e.due_tick >> (6 * level)) % kSlots;
  slots_[static_cast<std::size_t>(level) * kSlots + slot].push_back(
      std::move(e));
}

void TimerWheel::cascade(int level) {
  if (level >= kLevels) {
    // Top of the wheel wrapped: re-sow whatever overflow now fits.
    std::vector<Entry> keep;
    for (auto& e : overflow_) {
      if (live_.count(e.id) == 0) {
        continue;
      }
      if (e.due_tick - current_ < kHorizon) {
        place(std::move(e));
      } else {
        keep.push_back(std::move(e));
      }
    }
    overflow_ = std::move(keep);
    return;
  }
  const std::uint64_t slot = (current_ >> (6 * level)) % kSlots;
  auto& src = slots_[static_cast<std::size_t>(level) * kSlots + slot];
  std::vector<Entry> entries;
  entries.swap(src);
  for (auto& e : entries) {
    if (live_.count(e.id) != 0) {
      place(std::move(e));  // re-lands at a finer level (or fires this tick)
    }
  }
  if (slot == 0) {
    cascade(level + 1);
  }
}

void TimerWheel::advance(Clock::time_point now,
                         std::vector<std::uint64_t>& fired) {
  const std::uint64_t target = to_tick(now);
  if (live_.empty()) {
    // Nothing can fire; jump. Stale (cancelled) entries left behind in
    // skipped slots are discarded whenever their slot is next visited.
    current_ = std::max(current_, target);
    return;
  }
  std::vector<Entry> due;
  while (current_ < target) {
    ++current_;
    if (current_ % kSlots == 0) {
      cascade(1);
    }
    auto& slot = slots_[current_ % kSlots];  // level 0
    if (slot.empty()) {
      continue;
    }
    std::vector<Entry> entries;
    entries.swap(slot);
    for (auto& e : entries) {
      if (live_.count(e.id) == 0) {
        continue;
      }
      if (e.due_tick <= current_) {
        live_.erase(e.id);
        due.push_back(std::move(e));
      } else {
        place(std::move(e));  // same slot, a later lap of the wheel
      }
    }
  }
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.due != b.due ? a.due < b.due : a.id < b.id;
  });
  for (const auto& e : due) {
    fired.push_back(e.data);
  }
}

TimerWheel::Clock::time_point TimerWheel::next_due() const {
  if (live_.empty()) {
    return Clock::time_point::max();
  }
  // Exact within the level-0 revolution; otherwise the next cascade
  // boundary — at most one revolution early, never late.
  Clock::time_point best = Clock::time_point::max();
  for (std::uint64_t s = 0; s < kSlots; ++s) {
    for (const auto& e : slots_[s]) {
      if (e.due_tick > current_ && live_.count(e.id) != 0) {
        best = std::min(best, e.due);
      }
    }
  }
  if (best != Clock::time_point::max()) {
    return best;
  }
  const std::uint64_t boundary = (current_ / kSlots + 1) * kSlots;
  return origin_ + tick_ * static_cast<std::int64_t>(boundary);
}

}  // namespace hpd::rt
