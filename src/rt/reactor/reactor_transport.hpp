// The epoll reactor live backend: a small pool of worker threads, each
// running one epoll loop that multiplexes the I/O, timers and protocol
// state machines of hundreds of nodes. This is what scales live detector
// runs from dozens of nodes (one OS thread each, rt/live_transport) to
// thousands: at 4096 nodes the thread backend needs 4096 stacks and the
// scheduler thrashes; the reactor needs `reactor_workers` threads total.
//
// Sharding: node `i` belongs to worker `i % W`, permanently. Everything a
// node owns — sockets, session, timers — is touched only by its worker
// thread, so the per-node single-threaded execution contract of
// transport::Node holds by construction and no protocol code grows locks.
//
// Hosted state machines (identical to the thread backend, by design):
//   * rt::Conn for frame I/O — here in edge-triggered mode: reads loop to
//     EAGAIN, writes resume from the partial-write offset on the next
//     writable edge. Outgoing dials are nonblocking (rt::connect_start);
//     a pending connect resolves on its first writable edge.
//   * rt::NodeSession for reliable delivery, epochs and chaos. Its
//     retransmit/delay deadlines and the per-node Endpoint timers are
//     multiplexed onto one hierarchical TimerWheel per worker (one wheel
//     entry per node: the min of all that node's deadlines).
//
// Control plane: crash()/revive()/post() enqueue closures on the owning
// worker (woken through a pipe) and the driver blocks on a promise when it
// needs completion — the same happens-before edges the thread backend gets
// from joining node threads.
//
// Nothing in this directory may block: no sleeps, no blocking socket
// calls, no poll/select (enforced by the `reactor-nonblocking` lint rule).
// The one epoll_wait per worker is the only place a worker parks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "metrics/counters.hpp"
#include "rt/backend.hpp"
#include "rt/chaos.hpp"
#include "rt/clock.hpp"
#include "rt/conn.hpp"
#include "rt/reactor/timer_wheel.hpp"
#include "rt/session.hpp"
#include "rt/socket.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"

namespace hpd::rt {

class ReactorTransport;

/// One node's Endpoint view of the reactor. All calls except now()/alive()
/// must come from the node's worker thread (i.e. from inside the node's
/// own callbacks).
class ReactorEndpoint final : public transport::Endpoint {
 public:
  SimTime now() const override;
  void send(transport::Message msg) override;
  transport::TimerId set_timer(ProcessId id, int tag, SimTime delay,
                               bool periodic = false,
                               SimTime period = 0.0) override;
  void cancel_timer(transport::TimerId id) override;
  bool alive(ProcessId id) const override;

 private:
  friend class ReactorTransport;
  ReactorEndpoint() = default;
  ReactorTransport* transport_ = nullptr;
  ProcessId self_ = kNoProcess;
};

class ReactorTransport final : public LiveBackend {
 public:
  explicit ReactorTransport(std::size_t n, LiveConfig cfg = {});
  ~ReactorTransport() override;

  ReactorTransport(const ReactorTransport&) = delete;
  ReactorTransport& operator=(const ReactorTransport&) = delete;

  std::size_t size() const override { return nodes_.size(); }
  int workers() const { return static_cast<int>(workers_.size()); }

  void set_link_filter(
      std::function<bool(ProcessId, ProcessId)> link_ok) override;
  void register_node(ProcessId id, transport::Node& node,
                     MetricsRegistry* metrics = nullptr,
                     std::function<void()> on_revive = nullptr) override;
  transport::Endpoint& endpoint(ProcessId id) override;

  void start() override;
  void stop() override;

  /// Crash-stop `id` on its worker: on_crash runs there, every socket and
  /// timer of the node is dropped, queued posts for it are abandoned.
  /// Blocks until the worker has executed the crash.
  void crash(ProcessId id) override;

  /// Bring a crashed node back on its worker: re-bind the same address,
  /// bump the session epoch, run the registered on_revive callback, then
  /// tell every other node about the new incarnation. Blocks until the
  /// node is live again (the observe broadcast is asynchronous).
  void revive(ProcessId id) override;

  bool alive(ProcessId id) const override;
  std::size_t alive_count() const override;

  std::uint64_t session_epoch(ProcessId id) const override;
  void adopt_session_epoch(ProcessId id, std::uint64_t epoch) override;

  SimTime now() const override;
  void sleep_until(SimTime t) const override;

  bool post(ProcessId id, std::function<void()> fn) override;
  bool run_on_node_sync(ProcessId id, std::function<void()> fn) override;

  std::vector<LifeEvent> crash_events() const override;
  std::vector<LifeEvent> revive_events() const override;

  // ---- Diagnostics: stable only once stop() returned -----------------------
  std::uint64_t delivered_messages() const override;
  std::uint64_t dropped_messages() const override;
  std::uint64_t frame_errors() const override;
  std::uint64_t connections_accepted() const override;
  TransportCounters stats() const override;
  std::vector<ChaosEvent> chaos_events() const override;
  ReactorCounters reactor_stats() const override;

 private:
  friend class ReactorEndpoint;
  using Clock = std::chrono::steady_clock;

  struct Worker;
  struct RNode;

  RNode& node_of(ProcessId id);
  const RNode& node_of(ProcessId id) const;
  Worker& worker_of(ProcessId id);

  void worker_main(Worker& w);
  void worker_iteration(Worker& w);
  void worker_shutdown(Worker& w);
  void dispatch_event(Worker& w, int fd, std::uint32_t events);
  void service_node(Worker& w, RNode& nd, Clock::time_point now);
  void fire_due_timers(RNode& nd, Clock::time_point now);
  void wake(Worker& w);
  bool post_op(Worker& w, ProcessId node, std::function<void()> fn);
  bool run_on_worker_sync(Worker& w, ProcessId node, std::function<void()> fn);

  void do_send(RNode& nd, transport::Message msg);
  Conn* outgoing_conn(RNode& nd, ProcessId dst);
  void drop_outgoing(RNode& nd, ProcessId peer, bool cooldown);
  void drop_inbound(Worker& w, RNode& nd, int fd);
  void do_crash(RNode& nd);
  void shutdown_io(RNode& nd);

  transport::TimerId do_set_timer(RNode& nd, int tag, SimTime delay,
                                  bool periodic, SimTime period);
  void do_cancel_timer(RNode& nd, transport::TimerId id);

  void epoll_add(Worker& w, int fd, std::uint32_t events);
  void epoll_del(Worker& w, int fd);

  LiveConfig cfg_;
  std::string socket_dir_;
  bool own_socket_dir_ = false;
  std::function<bool(ProcessId, ProcessId)> link_ok_;
  std::vector<std::unique_ptr<RNode>> nodes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ScaledClock clock_;
  bool started_ = false;
  bool stopped_ = false;

  mutable Mutex events_mutex_;
  std::vector<LifeEvent> crashes_ HPD_GUARDED_BY(events_mutex_);
  std::vector<LifeEvent> revives_ HPD_GUARDED_BY(events_mutex_);
};

}  // namespace hpd::rt
