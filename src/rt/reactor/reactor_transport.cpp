#include "rt/reactor/reactor_transport.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <future>
#include <system_error>
#include <utility>

#include "common/assert.hpp"
#include "wire/frame.hpp"

namespace hpd::rt {

// ---- Internal state ---------------------------------------------------------

/// Per-node context. Everything here is owned by the node's worker thread
/// (`alive` is the one cross-thread flag). Implements SessionHost so the
/// NodeSession can dial/reset connections without knowing about epoll.
struct ReactorTransport::RNode final : SessionHost {
  ReactorTransport* t = nullptr;
  Worker* w = nullptr;
  ProcessId id = kNoProcess;
  transport::Node* node = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::function<void()> on_revive;
  ReactorEndpoint endpoint;

  SockAddr addr;  ///< fixed at start(); stable across crash/revive
  Fd listener;
  std::atomic<bool> alive{false};

  std::map<int, std::unique_ptr<Conn>> inbound;  ///< keyed by fd
  std::map<ProcessId, std::unique_ptr<Conn>> outgoing;
  /// Sparse re-dial cooldowns (a node only talks to its tree neighbours;
  /// a dense n-vector per node would be O(n^2) at reactor scale).
  std::map<ProcessId, Clock::time_point> peer_down;

  struct TimerRec {
    int tag = 0;
    bool periodic = false;
    Clock::time_point due;
    Clock::duration period{};
  };
  std::map<transport::TimerId, TimerRec> timers;
  transport::TimerId next_timer = 1;

  NodeSession session;
  std::uint64_t accepted = 0;

  /// The node's single wheel entry: min over its Endpoint timers and the
  /// session's reliability deadline. 0 / max() = not armed.
  TimerWheel::TimerId armed_id = 0;
  Clock::time_point armed_due = Clock::time_point::max();

  // ---- SessionHost ---------------------------------------------------------
  void session_write(ProcessId dst,
                     const std::vector<std::uint8_t>& framed) override;
  void session_reset_conn(ProcessId dst) override {
    t->drop_outgoing(*this, dst, /*cooldown=*/false);
  }
  void session_peer_alive(ProcessId peer) override { peer_down.erase(peer); }
};

/// One reactor worker: an epoll loop plus the timer wheel, wake pipe and
/// control queue for the shard of nodes with id % W == index.
struct ReactorTransport::Worker {
  ReactorTransport* t = nullptr;
  int index = 0;
  Fd epoll;
  Fd wake_read;
  Fd wake_write;
  std::thread thread;

  Mutex ctl_mutex;
  struct CtlOp {
    ProcessId node = kNoProcess;  ///< kNoProcess = worker-level op
    std::function<void()> fn;
  };
  std::deque<CtlOp> ctl HPD_GUARDED_BY(ctl_mutex);
  bool stop_requested HPD_GUARDED_BY(ctl_mutex) = false;

  // ---- Worker-thread-only state --------------------------------------------
  TimerWheel wheel;
  struct FdRef {
    enum class Kind { kWake, kListener, kInbound, kOutgoing };
    ProcessId node = kNoProcess;
    Kind kind = Kind::kWake;
    ProcessId peer = kNoProcess;  ///< outgoing conns: destination id
  };
  /// fd -> owner. Resolved per event; a closed fd simply misses the map,
  /// so stale epoll events after a teardown are skipped harmlessly.
  std::unordered_map<int, FdRef> fds;
  /// Nodes whose session needs servicing (and wheel re-arming) before the
  /// next epoll_wait.
  std::set<ProcessId> dirty;
  std::vector<std::uint64_t> fired;
  std::vector<std::uint8_t> read_buf;
  std::vector<RNode*> owned;  ///< this shard, ascending id
  bool busy_valid = false;
  Clock::time_point busy_start{};
  ReactorCounters counters;
};

void ReactorTransport::RNode::session_write(
    ProcessId dst, const std::vector<std::uint8_t>& framed) {
  Conn* conn = t->outgoing_conn(*this, dst);
  if (conn == nullptr) {
    return;  // cooling down or dial failed; the retransmit path recovers
  }
  conn->queue(framed);
  w->counters.max_outbound_backlog = std::max(
      w->counters.max_outbound_backlog,
      static_cast<std::uint64_t>(conn->backlog()));
  if (!conn->connecting && conn->flush() == Conn::FlushStatus::kBroken) {
    ++session.counters().conn_resets;
    t->drop_outgoing(*this, dst, /*cooldown=*/true);
  }
}

// ---- ReactorEndpoint --------------------------------------------------------

SimTime ReactorEndpoint::now() const { return transport_->now(); }

void ReactorEndpoint::send(transport::Message msg) {
  HPD_REQUIRE(msg.src == self_,
              "ReactorEndpoint::send: src must be the owning node");
  transport_->do_send(transport_->node_of(self_), std::move(msg));
}

transport::TimerId ReactorEndpoint::set_timer(ProcessId id, int tag,
                                              SimTime delay, bool periodic,
                                              SimTime period) {
  HPD_REQUIRE(id == self_,
              "ReactorEndpoint::set_timer: timers belong to the owning node");
  return transport_->do_set_timer(transport_->node_of(self_), tag, delay,
                                  periodic, period);
}

void ReactorEndpoint::cancel_timer(transport::TimerId id) {
  transport_->do_cancel_timer(transport_->node_of(self_), id);
}

bool ReactorEndpoint::alive(ProcessId id) const {
  return transport_->alive(id);
}

// ---- Construction / registration -------------------------------------------

ReactorTransport::ReactorTransport(std::size_t n, LiveConfig cfg)
    : cfg_(std::move(cfg)) {
  HPD_REQUIRE(n >= 1, "ReactorTransport: empty system");
  HPD_REQUIRE(cfg_.time_scale > 0.0,
              "ReactorTransport: time_scale must be > 0");
  HPD_REQUIRE(cfg_.retx_max_attempts >= 1,
              "ReactorTransport: retx_max_attempts must be >= 1");
  HPD_REQUIRE(cfg_.retx_queue_cap >= 1,
              "ReactorTransport: retx_queue_cap must be >= 1");
  HPD_REQUIRE(cfg_.reactor_workers >= 0,
              "ReactorTransport: reactor_workers must be >= 0");
  clock_.reset(Clock::now(), cfg_.time_scale);
  if (cfg_.socket_kind == SockAddr::Kind::kUnix && cfg_.socket_dir.empty()) {
    socket_dir_ = make_socket_dir();
    own_socket_dir_ = true;
  } else {
    socket_dir_ = cfg_.socket_dir;
  }

  std::size_t nworkers = static_cast<std::size_t>(cfg_.reactor_workers);
  if (nworkers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    nworkers = std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
  }
  nworkers = std::max<std::size_t>(1, std::min(nworkers, n));

  workers_.reserve(nworkers);
  for (std::size_t wi = 0; wi < nworkers; ++wi) {
    auto w = std::make_unique<Worker>();
    w->t = this;
    w->index = static_cast<int>(wi);
    w->epoll = Fd(::epoll_create1(0));
    if (!w->epoll.valid()) {
      throw TransportError("epoll_create1");
    }
    int pipefd[2];
    if (::pipe(pipefd) < 0) {
      throw TransportError("pipe: wake channel");
    }
    w->wake_read = Fd(pipefd[0]);
    w->wake_write = Fd(pipefd[1]);
    set_nonblocking(w->wake_read.get());
    set_nonblocking(w->wake_write.get());
    w->read_buf.resize(cfg_.read_chunk);
    w->counters.workers = 1;  // summed into the pool total by merge
    workers_.push_back(std::move(w));
  }

  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto nd = std::make_unique<RNode>();
    nd->t = this;
    nd->w = workers_[i % nworkers].get();
    nd->id = static_cast<ProcessId>(i);
    nd->endpoint.transport_ = this;
    nd->endpoint.self_ = nd->id;
    nd->addr.kind = cfg_.socket_kind;
    if (cfg_.socket_kind == SockAddr::Kind::kUnix) {
      nd->addr.path = socket_dir_ + "/node-" + std::to_string(i) + ".sock";
    }
    nd->w->owned.push_back(nd.get());
    nodes_.push_back(std::move(nd));
  }
}

ReactorTransport::~ReactorTransport() {
  stop();
  if (own_socket_dir_) {
    remove_socket_dir(socket_dir_);
  }
}

ReactorTransport::RNode& ReactorTransport::node_of(ProcessId id) {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "ReactorTransport: unknown node id");
  return *nodes_[idx(id)];
}

const ReactorTransport::RNode& ReactorTransport::node_of(ProcessId id) const {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "ReactorTransport: unknown node id");
  return *nodes_[idx(id)];
}

ReactorTransport::Worker& ReactorTransport::worker_of(ProcessId id) {
  return *node_of(id).w;
}

void ReactorTransport::set_link_filter(
    std::function<bool(ProcessId, ProcessId)> link_ok) {
  HPD_REQUIRE(!started_, "ReactorTransport: link filter must precede start()");
  link_ok_ = std::move(link_ok);
}

void ReactorTransport::register_node(ProcessId id, transport::Node& node,
                                     MetricsRegistry* metrics,
                                     std::function<void()> on_revive) {
  HPD_REQUIRE(!started_,
              "ReactorTransport: register_node must precede start()");
  RNode& nd = node_of(id);
  nd.node = &node;
  nd.metrics = metrics;
  nd.on_revive = std::move(on_revive);
}

transport::Endpoint& ReactorTransport::endpoint(ProcessId id) {
  return node_of(id).endpoint;
}

// ---- Lifecycle --------------------------------------------------------------

void ReactorTransport::start() {
  HPD_REQUIRE(!started_, "ReactorTransport: started twice");
  for (auto& nd : nodes_) {
    HPD_REQUIRE(nd->node != nullptr, "ReactorTransport: node not registered");
    // Bind every listener before any worker runs: a refused connect can
    // then only mean "peer crashed".
    nd->listener = listen_on(nd->addr);
    nd->session.init(nd->id, nodes_.size(), &cfg_, &clock_, nd.get(),
                     nd->node, nd->metrics, &link_ok_);
  }
  clock_.reset(Clock::now(), cfg_.time_scale);
  started_ = true;
  for (auto& nd : nodes_) {
    nd->alive.store(true, std::memory_order_release);
  }
  for (auto& w : workers_) {
    Worker* p = w.get();
    w->thread = std::thread([this, p] { worker_main(*p); });
  }
}

void ReactorTransport::stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  for (auto& w : workers_) {
    {
      MutexLock lock(w->ctl_mutex);
      w->stop_requested = true;
    }
    wake(*w);
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

void ReactorTransport::crash(ProcessId id) {
  RNode& nd = node_of(id);
  if (!nd.alive.load(std::memory_order_acquire)) {
    return;
  }
  // Worker-level op: it must run even though the target node is alive-false
  // by the time queued node-bound ops would be gated.
  run_on_worker_sync(*nd.w, kNoProcess, [this, &nd] { do_crash(nd); });
}

std::uint64_t ReactorTransport::session_epoch(ProcessId id) const {
  return node_of(id).session.epoch();
}

void ReactorTransport::adopt_session_epoch(ProcessId id,
                                           std::uint64_t epoch) {
  RNode& nd = node_of(id);
  HPD_REQUIRE(!started_ || !nd.alive.load(std::memory_order_acquire),
              "ReactorTransport: adopt_session_epoch on a running node");
  nd.session.adopt_epoch(epoch);
}

void ReactorTransport::revive(ProcessId id) {
  RNode& nd = node_of(id);
  HPD_REQUIRE(started_, "ReactorTransport: revive before start");
  HPD_REQUIRE(!nd.alive.load(std::memory_order_acquire),
              "ReactorTransport: revive of a live node");
  // The node is provably not running (crash() synchronized with its
  // worker), so the driver may touch its session epoch directly.
  nd.session.bump_epoch();
  const bool ok = run_on_worker_sync(*nd.w, kNoProcess, [this, &nd] {
    Worker& w = *nd.w;
    nd.listener = listen_on(nd.addr);  // same path / port as before
    epoll_add(w, nd.listener.get(), EPOLLIN | EPOLLET);
    w.fds[nd.listener.get()] = {nd.id, Worker::FdRef::Kind::kListener,
                                kNoProcess};
    {
      MutexLock lock(events_mutex_);
      revives_.push_back({nd.id, now()});
    }
    nd.alive.store(true, std::memory_order_release);
    if (nd.on_revive) {
      nd.on_revive();
    }
    w.dirty.insert(nd.id);
  });
  HPD_REQUIRE(ok, "ReactorTransport: revive on a stopped pool");
  // Tell everyone the id is back with a new incarnation: expires re-dial
  // cooldowns and purges (surfaces) retransmit entries addressed to the
  // dead incarnation.
  const ProcessId rid = nd.id;
  const std::uint64_t e = nd.session.epoch();
  for (auto& other : nodes_) {
    if (other->id == rid) {
      continue;
    }
    RNode* oc = other.get();
    post(other->id, [oc, rid, e] { oc->session.observe_peer(rid, e); });
  }
}

bool ReactorTransport::alive(ProcessId id) const {
  return node_of(id).alive.load(std::memory_order_acquire);
}

std::size_t ReactorTransport::alive_count() const {
  std::size_t k = 0;
  for (const auto& nd : nodes_) {
    if (nd->alive.load(std::memory_order_acquire)) {
      ++k;
    }
  }
  return k;
}

// ---- Time -------------------------------------------------------------------

SimTime ReactorTransport::now() const { return clock_.now(); }

void ReactorTransport::sleep_until(SimTime t) const {
  // Driver-side wait; workers never call this (they park in epoll only).
  clock_.sleep_until(t);
}

// ---- Control plane ----------------------------------------------------------

void ReactorTransport::wake(Worker& w) {
  const std::uint8_t b = 0;
  // EAGAIN means a wake byte is already pending, which is just as good.
  [[maybe_unused]] const ssize_t k = ::write(w.wake_write.get(), &b, 1);
}

bool ReactorTransport::post_op(Worker& w, ProcessId node,
                               std::function<void()> fn) {
  {
    MutexLock lock(w.ctl_mutex);
    if (w.stop_requested) {
      return false;
    }
    if (node != kNoProcess &&
        !node_of(node).alive.load(std::memory_order_acquire)) {
      return false;
    }
    w.ctl.push_back({node, std::move(fn)});
  }
  wake(w);
  return true;
}

bool ReactorTransport::post(ProcessId id, std::function<void()> fn) {
  return post_op(worker_of(id), id, std::move(fn));
}

bool ReactorTransport::run_on_worker_sync(Worker& w, ProcessId node,
                                          std::function<void()> fn) {
  auto prom = std::make_shared<std::promise<void>>();
  std::future<void> done = prom->get_future();
  const bool posted = post_op(w, node, [prom, fn = std::move(fn)] {
    fn();
    prom->set_value();
  });
  if (!posted) {
    return false;
  }
  try {
    done.get();
    return true;
  } catch (const std::future_error&) {
    return false;  // the node died before running fn (promise abandoned)
  }
}

bool ReactorTransport::run_on_node_sync(ProcessId id,
                                        std::function<void()> fn) {
  return run_on_worker_sync(worker_of(id), id, std::move(fn));
}

std::vector<LifeEvent> ReactorTransport::crash_events() const {
  MutexLock lock(events_mutex_);
  return crashes_;
}

std::vector<LifeEvent> ReactorTransport::revive_events() const {
  MutexLock lock(events_mutex_);
  return revives_;
}

// ---- Diagnostics ------------------------------------------------------------

std::uint64_t ReactorTransport::delivered_messages() const {
  std::uint64_t k = 0;
  for (const auto& nd : nodes_) {
    k += nd->session.counters().msgs_delivered;
  }
  return k;
}

std::uint64_t ReactorTransport::dropped_messages() const {
  std::uint64_t k = 0;
  for (const auto& nd : nodes_) {
    k += nd->session.counters().msgs_dropped;
  }
  return k;
}

std::uint64_t ReactorTransport::frame_errors() const {
  std::uint64_t k = 0;
  for (const auto& nd : nodes_) {
    k += nd->session.counters().frame_errors;
  }
  return k;
}

std::uint64_t ReactorTransport::connections_accepted() const {
  std::uint64_t k = 0;
  for (const auto& nd : nodes_) {
    k += nd->accepted;
  }
  return k;
}

TransportCounters ReactorTransport::stats() const {
  TransportCounters t;
  for (const auto& nd : nodes_) {
    t.add(nd->session.counters());
  }
  return t;
}

std::vector<ChaosEvent> ReactorTransport::chaos_events() const {
  std::vector<ChaosEvent> all;
  for (const auto& nd : nodes_) {
    all.insert(all.end(), nd->session.chaos_log().begin(),
               nd->session.chaos_log().end());
  }
  canonical_sort(all);
  return all;
}

ReactorCounters ReactorTransport::reactor_stats() const {
  ReactorCounters r;
  for (const auto& w : workers_) {
    r.add(w->counters);
  }
  return r;
}

// ---- Timers -----------------------------------------------------------------

transport::TimerId ReactorTransport::do_set_timer(RNode& nd, int tag,
                                                  SimTime delay, bool periodic,
                                                  SimTime period) {
  HPD_REQUIRE(!periodic || period > 0.0,
              "ReactorTransport: periodic timer needs a positive period");
  const transport::TimerId tid = nd.next_timer++;
  RNode::TimerRec rec;
  rec.tag = tag;
  rec.periodic = periodic;
  rec.due = Clock::now() + clock_.to_real(delay);
  rec.period = clock_.to_real(period);
  nd.timers.emplace(tid, rec);
  // The caller is inside one of the node's callbacks, so the node is (or is
  // about to be) dirty and service_node re-arms the wheel afterwards.
  nd.w->dirty.insert(nd.id);
  return tid;
}

void ReactorTransport::do_cancel_timer(RNode& nd, transport::TimerId id) {
  nd.timers.erase(id);
}

void ReactorTransport::fire_due_timers(RNode& nd, Clock::time_point now) {
  std::vector<transport::TimerId> due;
  for (const auto& [tid, rec] : nd.timers) {
    if (rec.due <= now) {
      due.push_back(tid);
    }
  }
  for (const transport::TimerId tid : due) {
    auto it = nd.timers.find(tid);
    if (it == nd.timers.end()) {
      continue;  // cancelled by an earlier callback this round
    }
    const int tag = it->second.tag;
    if (it->second.periodic) {
      it->second.due = now + it->second.period;
    } else {
      nd.timers.erase(it);
    }
    nd.node->on_timer(tag);
  }
}

// ---- Send path (runs on the node's worker) ----------------------------------

void ReactorTransport::do_send(RNode& nd, transport::Message msg) {
  if (!nd.alive.load(std::memory_order_relaxed)) {
    ++nd.session.counters().msgs_dropped;
    return;
  }
  nd.session.send(std::move(msg));
  nd.w->dirty.insert(nd.id);
}

Conn* ReactorTransport::outgoing_conn(RNode& nd, ProcessId dst) {
  auto it = nd.outgoing.find(dst);
  if (it != nd.outgoing.end()) {
    return it->second.get();
  }
  auto cd = nd.peer_down.find(dst);
  if (cd != nd.peer_down.end()) {
    if (Clock::now() < cd->second) {
      return nullptr;  // cooling down; skip the dial until it lapses
    }
    nd.peer_down.erase(cd);
  }
  // Nonblocking dial: no retry loop here — a failure starts the cooldown
  // and the session's retransmit path re-dials after it lapses.
  ConnectStart cs = connect_start(nodes_[idx(dst)]->addr);
  if (cs.status == ConnectStart::Status::kFailed) {
    nd.peer_down[dst] = Clock::now() + cfg_.peer_down_cooldown;
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = std::move(cs.fd);
  conn->peer = dst;
  conn->connecting = cs.status == ConnectStart::Status::kPending;
  conn->outbuf = hello_frame(nd.id, nodes_.size(), nd.session.epoch());
  const int fd = conn->fd.get();
  epoll_add(*nd.w, fd, EPOLLIN | EPOLLOUT | EPOLLET);
  nd.w->fds[fd] = {nd.id, Worker::FdRef::Kind::kOutgoing, dst};
  Conn* p = conn.get();
  nd.outgoing.emplace(dst, std::move(conn));
  return p;
}

void ReactorTransport::drop_outgoing(RNode& nd, ProcessId peer,
                                     bool cooldown) {
  auto it = nd.outgoing.find(peer);
  if (it == nd.outgoing.end()) {
    return;
  }
  const int fd = it->second->fd.get();
  epoll_del(*nd.w, fd);
  nd.w->fds.erase(fd);
  nd.outgoing.erase(it);
  if (cooldown) {
    nd.peer_down[peer] = Clock::now() + cfg_.peer_down_cooldown;
  }
}

void ReactorTransport::drop_inbound(Worker& w, RNode& nd, int fd) {
  epoll_del(w, fd);
  w.fds.erase(fd);
  nd.inbound.erase(fd);
}

// ---- epoll plumbing ---------------------------------------------------------

void ReactorTransport::epoll_add(Worker& w, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(w.epoll.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw TransportError("epoll_ctl(ADD): " +
                         std::system_category().message(errno));
  }
}

void ReactorTransport::epoll_del(Worker& w, int fd) {
  // The fd is about to be closed anyway; ENOENT/EBADF are not actionable.
  epoll_event ev{};
  [[maybe_unused]] const int rc =
      ::epoll_ctl(w.epoll.get(), EPOLL_CTL_DEL, fd, &ev);
}

// ---- Worker loop ------------------------------------------------------------

void ReactorTransport::worker_main(Worker& w) {
  epoll_add(w, w.wake_read.get(), EPOLLIN);
  w.fds[w.wake_read.get()] = {kNoProcess, Worker::FdRef::Kind::kWake,
                              kNoProcess};
  for (RNode* nd : w.owned) {
    epoll_add(w, nd->listener.get(), EPOLLIN | EPOLLET);
    w.fds[nd->listener.get()] = {nd->id, Worker::FdRef::Kind::kListener,
                                 kNoProcess};
  }
  w.wheel.reset(Clock::now(), std::chrono::milliseconds(1));
  for (RNode* nd : w.owned) {
    nd->node->on_start();
    w.dirty.insert(nd->id);
  }
  for (;;) {
    // Control plane first: stop beats everything else.
    std::deque<Worker::CtlOp> ops;
    bool stop_now = false;
    {
      MutexLock lock(w.ctl_mutex);
      ops.swap(w.ctl);
      stop_now = w.stop_requested;
    }
    for (auto& op : ops) {
      if (op.node != kNoProcess) {
        RNode& nd = node_of(op.node);
        if (!nd.alive.load(std::memory_order_relaxed)) {
          continue;  // dropping the closure breaks any promise inside it
        }
        op.fn();
        w.dirty.insert(op.node);
      } else {
        op.fn();
      }
    }
    if (stop_now) {
      worker_shutdown(w);
      return;
    }
    worker_iteration(w);
  }
}

void ReactorTransport::worker_iteration(Worker& w) {
  Clock::time_point now = Clock::now();

  // Timer wheel: each fired datum is a node id whose deadline (Endpoint
  // timer or session reliability) matured.
  w.fired.clear();
  w.wheel.advance(now, w.fired);
  w.counters.timer_fires += w.fired.size();
  for (const std::uint64_t data : w.fired) {
    RNode& nd = node_of(static_cast<ProcessId>(data));
    nd.armed_id = 0;
    nd.armed_due = Clock::time_point::max();
    if (!nd.alive.load(std::memory_order_relaxed)) {
      continue;
    }
    fire_due_timers(nd, now);
    w.dirty.insert(nd.id);
  }

  // Service every touched node: deferred upcalls, matured retransmits,
  // coalesced ACKs — then re-arm its wheel entry.
  if (!w.dirty.empty()) {
    std::set<ProcessId> dirty;
    dirty.swap(w.dirty);
    now = Clock::now();
    for (const ProcessId id : dirty) {
      RNode& nd = node_of(id);
      if (!nd.alive.load(std::memory_order_relaxed)) {
        continue;
      }
      service_node(w, nd, now);
    }
  }

  // Park until the next wheel deadline (the wake pipe cuts it short).
  int timeout_ms = 100;
  const Clock::time_point next = w.wheel.next_due();
  if (next != Clock::time_point::max()) {
    // Round *up*: truncating a sub-millisecond wait to 0 would turn the
    // park into a busy spin until the deadline's tick arrives.
    const auto wait = std::chrono::duration_cast<std::chrono::microseconds>(
        next - Clock::now());
    timeout_ms = static_cast<int>(
        std::clamp<std::int64_t>((wait.count() + 999) / 1000, 0, timeout_ms));
  }
  if (w.busy_valid) {
    const auto busy = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - w.busy_start);
    w.counters.max_loop_micros = std::max(
        w.counters.max_loop_micros, static_cast<std::uint64_t>(busy.count()));
  }
  epoll_event evs[128];
  const int rc = ::epoll_wait(w.epoll.get(), evs, 128, timeout_ms);
  w.busy_start = Clock::now();
  w.busy_valid = true;
  ++w.counters.wakeups;
  if (rc < 0) {
    if (errno == EINTR) {
      return;
    }
    throw TransportError("epoll_wait: " +
                         std::system_category().message(errno));
  }
  w.counters.ready_events += static_cast<std::uint64_t>(rc);
  for (int i = 0; i < rc; ++i) {
    dispatch_event(w, evs[i].data.fd, evs[i].events);
  }
  // Dirty nodes from this batch are serviced (ACKs flushed, wheels
  // re-armed) at the top of the next iteration, before the next park.
}

void ReactorTransport::service_node(Worker& w, RNode& nd,
                                    Clock::time_point now) {
  // Each pass either delivers deferred upcalls or matures deadlines whose
  // replacements are strictly in the future, so this converges.
  while (nd.session.next_due() <= now) {
    nd.session.service(now);
  }
  nd.session.flush_acks();

  Clock::time_point due = nd.session.next_due();
  for (const auto& [tid, rec] : nd.timers) {
    due = std::min(due, rec.due);
  }
  if (due == Clock::time_point::max()) {
    if (nd.armed_id != 0) {
      w.wheel.cancel(nd.armed_id);
      nd.armed_id = 0;
      nd.armed_due = Clock::time_point::max();
    }
    return;
  }
  if (nd.armed_id != 0 && due >= nd.armed_due) {
    return;  // the armed entry already fires early enough
  }
  if (nd.armed_id != 0) {
    w.wheel.cancel(nd.armed_id);
  }
  nd.armed_id = w.wheel.schedule(due, static_cast<std::uint64_t>(nd.id));
  nd.armed_due = due;
  ++w.counters.timers_scheduled;
}

void ReactorTransport::dispatch_event(Worker& w, int fd,
                                      std::uint32_t events) {
  auto it = w.fds.find(fd);
  if (it == w.fds.end()) {
    return;  // stale event for an fd torn down earlier in this batch
  }
  const Worker::FdRef ref = it->second;
  switch (ref.kind) {
    case Worker::FdRef::Kind::kWake: {
      std::uint8_t buf[64];
      while (::read(w.wake_read.get(), buf, sizeof(buf)) > 0) {
      }
      break;
    }
    case Worker::FdRef::Kind::kListener: {
      RNode& nd = node_of(ref.node);
      for (;;) {  // edge-triggered: accept until EAGAIN
        Fd nc = accept_conn(nd.listener);
        if (!nc.valid()) {
          break;
        }
        auto conn = std::make_unique<Conn>();
        const int cfd = nc.get();
        conn->fd = std::move(nc);
        epoll_add(w, cfd, EPOLLIN | EPOLLET);
        w.fds[cfd] = {nd.id, Worker::FdRef::Kind::kInbound, kNoProcess};
        nd.inbound.emplace(cfd, std::move(conn));
        ++nd.accepted;
      }
      break;
    }
    case Worker::FdRef::Kind::kInbound: {
      RNode& nd = node_of(ref.node);
      auto ci = nd.inbound.find(fd);
      if (ci == nd.inbound.end()) {
        break;
      }
      Conn& conn = *ci->second;
      bool open = true;
      while (open) {  // edge-triggered: read until EAGAIN
        switch (conn.read_once(std::span<std::uint8_t>(w.read_buf),
                               nd.session)) {
          case Conn::ReadStatus::kData:
            break;
          case Conn::ReadStatus::kDrained:
            open = false;
            break;
          case Conn::ReadStatus::kProtocolError:
            ++nd.session.counters().frame_errors;
            ++nd.session.counters().conn_resets;
            drop_inbound(w, nd, fd);
            open = false;
            break;
          case Conn::ReadStatus::kClosed:
            drop_inbound(w, nd, fd);  // peer closed (crash/stop)
            open = false;
            break;
        }
      }
      w.dirty.insert(nd.id);
      break;
    }
    case Worker::FdRef::Kind::kOutgoing: {
      RNode& nd = node_of(ref.node);
      auto ci = nd.outgoing.find(ref.peer);
      if (ci == nd.outgoing.end() || ci->second->fd.get() != fd) {
        break;  // replaced since the event was queued
      }
      Conn& conn = *ci->second;
      bool broken = false;
      if ((events & EPOLLOUT) != 0) {
        if (conn.connecting) {
          if (connect_finish(conn.fd)) {
            conn.connecting = false;
          } else {
            broken = true;  // refused: the peer is down
          }
        }
        if (!broken && conn.flush() == Conn::FlushStatus::kBroken) {
          broken = true;  // queued frames lost; retransmission recovers
        }
      }
      if (!broken && (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        // Send-only connection: readable means the peer closed (or the
        // pending connect failed without a writable edge).
        for (;;) {
          const Conn::ReadStatus s =
              conn.drain_ignore(std::span<std::uint8_t>(w.read_buf));
          if (s == Conn::ReadStatus::kClosed) {
            broken = true;
            break;
          }
          if (s == Conn::ReadStatus::kDrained) {
            break;
          }
        }
      }
      if (broken) {
        ++nd.session.counters().conn_resets;
        drop_outgoing(nd, ref.peer, /*cooldown=*/true);
      }
      break;
    }
  }
}

// ---- Crash / shutdown (on the worker) ---------------------------------------

void ReactorTransport::do_crash(RNode& nd) {
  if (!nd.alive.load(std::memory_order_relaxed)) {
    return;
  }
  {
    MutexLock lock(events_mutex_);
    crashes_.push_back({nd.id, now()});
  }
  nd.node->on_crash();
  nd.alive.store(false, std::memory_order_release);
  {
    // Abandon queued posts for this node: their promises (if any) break,
    // which run_on_node_sync reports as failure.
    Worker& w = *nd.w;
    MutexLock lock(w.ctl_mutex);
    for (auto& op : w.ctl) {
      if (op.node == nd.id) {
        op.fn = nullptr;
        op.node = kNoProcess;
      }
    }
    w.ctl.erase(std::remove_if(w.ctl.begin(), w.ctl.end(),
                               [](const Worker::CtlOp& op) {
                                 return op.fn == nullptr;
                               }),
                w.ctl.end());
  }
  shutdown_io(nd);
}

void ReactorTransport::shutdown_io(RNode& nd) {
  Worker& w = *nd.w;
  nd.session.shutdown();
  nd.peer_down.clear();
  for (const auto& [fd, conn] : nd.inbound) {
    epoll_del(w, fd);
    w.fds.erase(fd);
  }
  nd.inbound.clear();
  for (const auto& [peer, conn] : nd.outgoing) {
    const int fd = conn->fd.get();
    epoll_del(w, fd);
    w.fds.erase(fd);
  }
  nd.outgoing.clear();
  nd.timers.clear();
  if (nd.armed_id != 0) {
    w.wheel.cancel(nd.armed_id);
    nd.armed_id = 0;
    nd.armed_due = Clock::time_point::max();
  }
  if (nd.listener.valid()) {
    epoll_del(w, nd.listener.get());
    w.fds.erase(nd.listener.get());
    nd.listener.reset();
  }
  w.dirty.erase(nd.id);
}

void ReactorTransport::worker_shutdown(Worker& w) {
  for (RNode* nd : w.owned) {
    if (nd->alive.load(std::memory_order_relaxed)) {
      nd->alive.store(false, std::memory_order_release);
      shutdown_io(*nd);
    }
  }
}

}  // namespace hpd::rt
