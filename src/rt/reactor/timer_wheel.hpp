// Hierarchical timer wheel for the reactor workers.
//
// Four levels of 64 slots over a fixed tick (default 1 ms): level 0 resolves
// single ticks, each higher level covers 64x the span of the one below, and
// anything past the top level's horizon (64^4 ticks) parks in a coarse
// overflow bucket that is re-sown as the wheel turns. advance() fires every
// entry due at or before `now` in (due, id) order; scheduling and expiring
// are O(1) amortized regardless of how many timers are pending, which is
// what lets one worker own the heartbeat/retransmit/chaos deadlines of
// hundreds of nodes.
//
// Cancellation is lazy: cancel() drops the id from the live set and the
// entry is discarded when its slot is next visited. Single-threaded: each
// reactor worker owns exactly one wheel.
#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace hpd::rt {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using TimerId = std::uint64_t;

  static constexpr int kLevels = 4;
  static constexpr std::uint64_t kSlots = 64;  // per level; 6 bits
  /// Ticks covered by the wheel proper; beyond this is the overflow bucket.
  static constexpr std::uint64_t kHorizon = kSlots * kSlots * kSlots * kSlots;

  TimerWheel() { slots_.resize(kLevels * kSlots); }

  /// (Re)base the wheel: `origin` becomes tick 0. Drops all pending timers.
  void reset(Clock::time_point origin, Clock::duration tick);

  /// Schedule `data` to fire at `due` (clamped to the next tick if already
  /// past). Returns an id usable with cancel().
  TimerId schedule(Clock::time_point due, std::uint64_t data);

  /// Drop a pending timer. False if it already fired or was cancelled.
  bool cancel(TimerId id);

  /// Turn the wheel up to `now`, appending the data of every fired timer to
  /// `fired` in (due, id) order.
  void advance(Clock::time_point now, std::vector<std::uint64_t>& fired);

  /// Earliest instant a pending timer could fire, for the epoll timeout.
  /// Coarse above level 0: at most one wheel revolution (64 ticks) early,
  /// never late. time_point::max() when empty.
  Clock::time_point next_due() const;

  std::size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    TimerId id = 0;
    std::uint64_t due_tick = 0;
    Clock::time_point due;
    std::uint64_t data = 0;
  };

  std::uint64_t to_tick(Clock::time_point t) const;
  void place(Entry e);
  void cascade(int level);

  Clock::time_point origin_{};
  Clock::duration tick_{std::chrono::milliseconds(1)};
  std::uint64_t current_ = 0;  ///< last tick fully processed
  TimerId next_id_ = 1;
  std::vector<std::vector<Entry>> slots_;  ///< [level * kSlots + slot]
  std::vector<Entry> overflow_;            ///< due beyond kHorizon ticks out
  std::unordered_set<TimerId> live_;
};

}  // namespace hpd::rt
