#include "rt/session.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "wire/frame.hpp"

namespace hpd::rt {

namespace {

/// Selective-ack list bound per ACK frame; the cumulative ack carries the
/// rest across subsequent ACKs.
constexpr std::size_t kMaxSacks = 64;

/// Bound on chaos-delayed frames buffered per node. Overflow drops the
/// delayed copy — the retransmit path recovers the original.
constexpr std::size_t kMaxDelayed = 4096;

}  // namespace

void NodeSession::init(
    ProcessId self, std::size_t cluster, const LiveConfig* cfg,
    const ScaledClock* clock, SessionHost* host, transport::Node* node,
    MetricsRegistry* metrics,
    const std::function<bool(ProcessId, ProcessId)>* link_ok) {
  self_ = self;
  cluster_ = cluster;
  cfg_ = cfg;
  clock_ = clock;
  host_ = host;
  node_ = node;
  metrics_ = metrics;
  link_ok_ = link_ok;
  rng_.reseed(0x9e3779b97f4a7c15ULL ^
              (static_cast<std::uint64_t>(idx(self)) * 0x100000001b3ULL));
}

std::uint64_t NodeSession::epoch_of(ProcessId peer) const {
  auto it = peer_epoch_.find(peer);
  return it == peer_epoch_.end() ? 1 : it->second;
}

// ---- Send path --------------------------------------------------------------

void NodeSession::send(transport::Message msg) {
  const auto* bytes = std::any_cast<std::vector<std::uint8_t>>(&msg.payload);
  HPD_REQUIRE(bytes != nullptr,
              "NodeSession: payloads must be wire-encoded bytes "
              "(run with wire_encoding enabled)");
  if (msg.dst < 0 || idx(msg.dst) >= cluster_) {
    ++tc_.msgs_dropped;
    return;
  }
  if (link_ok_ != nullptr && *link_ok_ && !(*link_ok_)(msg.src, msg.dst)) {
    ++tc_.msgs_dropped;
    return;
  }
  msg.wire_bytes = bytes->size();
  msg.sent_at = clock_->now();
  if (metrics_ != nullptr) {
    metrics_->on_send(msg.src, msg.type, msg.wire_words, msg.wire_bytes);
  }
  ++tc_.reliable_sent;
  if (msg.dst == self_) {
    // Loopback to self: deliver inline on this (the correct) context.
    msg.id = ++tc_.msgs_delivered;
    node_->on_message(msg);
    return;
  }
  PeerSend& ps = peer_send_[msg.dst];
  if (ps.unacked.size() >= cfg_->retx_queue_cap) {
    // Bounded queue: surface the oldest entry to make room. The peer has
    // been unresponsive for the whole queue's worth of traffic.
    ps.unacked.erase(ps.unacked.begin());
    ++tc_.surfaced_losses;
    unreachable_pending_.insert(msg.dst);
  }
  const SeqNum seq = ps.next_seq++;
  Pending p;
  p.dst_epoch = epoch_of(msg.dst);
  {
    wire::Encoder e;
    e.put_u8(kFrameData);
    e.put_varint(static_cast<std::uint64_t>(msg.src));
    e.put_varint(static_cast<std::uint64_t>(msg.dst));
    e.put_varint(epoch_);
    e.put_varint(p.dst_epoch);
    e.put_varint(seq);
    e.put_varint(static_cast<std::uint32_t>(msg.type));
    e.put_varint(msg.wire_words);
    p.body = e.take();
    p.body.insert(p.body.end(), bytes->begin(), bytes->end());
  }
  transmit(msg.dst, seq, /*attempt=*/0, p.body);
  p.attempts = 1;
  p.backoff = clock_->to_real(cfg_->retx_initial);
  p.next_retx = Clock::now() + jittered(p.backoff);
  reliability_due_ = std::min(reliability_due_, p.next_retx);
  ps.unacked.emplace(seq, std::move(p));
}

void NodeSession::transmit(ProcessId dst, SeqNum seq, int attempt,
                           const std::vector<std::uint8_t>& body) {
  const ChaosConfig& ch = cfg_->chaos;
  ChaosDecision d;
  if (ch.any_faults()) {
    const SimTime t = clock_->now();
    if (ch.active_at(t)) {
      if (partitioned(ch, self_, dst, t)) {
        chaos_log_.push_back(
            {ChaosEvent::Kind::kPartition, self_, dst, seq, attempt});
        ++tc_.chaos_events;
        return;  // swallowed; the retransmit path tries again later
      }
      d = plan_frame(ch, self_, dst, seq, attempt);
    }
  }
  if (d.reset) {
    chaos_log_.push_back({ChaosEvent::Kind::kReset, self_, dst, seq, attempt});
    ++tc_.chaos_events;
    ++tc_.conn_resets;
    // The peer is healthy, only the connection dies: reset without the
    // peer-down cooldown so the next transmission re-dials immediately.
    host_->session_reset_conn(dst);
    return;
  }
  if (d.drop) {
    chaos_log_.push_back({ChaosEvent::Kind::kDrop, self_, dst, seq, attempt});
    ++tc_.chaos_events;
    return;
  }
  std::vector<std::uint8_t> framed;
  wire::append_frame(framed, body);
  if (d.corrupt) {
    chaos_log_.push_back(
        {ChaosEvent::Kind::kCorrupt, self_, dst, seq, attempt});
    ++tc_.chaos_events;
    framed[corrupt_offset(ch, self_, dst, seq, attempt, framed.size())] ^= 0x20;
  }
  if (d.copies > 1) {
    chaos_log_.push_back(
        {ChaosEvent::Kind::kDuplicate, self_, dst, seq, attempt});
    ++tc_.chaos_events;
  }
  if (d.delay > 0.0) {
    chaos_log_.push_back({ChaosEvent::Kind::kDelay, self_, dst, seq, attempt});
    ++tc_.chaos_events;
    const Clock::time_point due = Clock::now() + clock_->to_real(d.delay);
    for (int k = 0; k < d.copies; ++k) {
      if (delayed_.size() >= kMaxDelayed) {
        break;  // delayed copy lost; retransmission recovers the original
      }
      delayed_.push_back({due, dst, framed});
    }
    reliability_due_ = std::min(reliability_due_, due);
    return;
  }
  for (int k = 0; k < d.copies; ++k) {
    host_->session_write(dst, framed);
  }
}

// ---- Reliability ------------------------------------------------------------

NodeSession::Clock::duration NodeSession::jittered(Clock::duration d) {
  const double f = 1.0 + cfg_->retx_jitter * rng_.uniform01();
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          std::chrono::duration<double>(d).count() * f));
}

void NodeSession::observe_peer(ProcessId peer, std::uint64_t epoch) {
  if (peer < 0 || idx(peer) >= cluster_ || peer == self_) {
    return;
  }
  // Signs of life: whatever cooldown was pending, the peer answers now.
  host_->session_peer_alive(peer);
  if (epoch <= epoch_of(peer)) {
    return;
  }
  peer_epoch_[peer] = epoch;
  // Queued messages addressed to the dead incarnation must not reach the
  // new one (it would be replaying another life's conversation); purge them
  // and surface the loss so the protocol stack can recover (ft::reattach).
  PeerSend& ps = peer_send_[peer];
  std::size_t purged = 0;
  for (auto it = ps.unacked.begin(); it != ps.unacked.end();) {
    if (it->second.dst_epoch < epoch) {
      it = ps.unacked.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  if (purged != 0) {
    tc_.surfaced_losses += purged;
    unreachable_pending_.insert(peer);
  }
  // Any open connection still points at the dead incarnation's socket;
  // reset it (no cooldown) so the next transmission re-dials the new one.
  host_->session_reset_conn(peer);
}

void NodeSession::service(Clock::time_point now) {
  // Surface losses discovered since the last turn. Deferred to here so the
  // upcall (which may send, e.g. reattach probes) never runs inside the
  // scan or dispatch that found the loss.
  if (!unreachable_pending_.empty()) {
    std::vector<ProcessId> peers(unreachable_pending_.begin(),
                                 unreachable_pending_.end());
    unreachable_pending_.clear();
    for (const ProcessId peer : peers) {
      node_->on_peer_unreachable(peer);
    }
  }
  reliability_due_ = Clock::time_point::max();
  // Release chaos-delayed frames that have matured.
  for (std::size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].due <= now) {
      const ProcessId dst = delayed_[i].dst;
      std::vector<std::uint8_t> framed = std::move(delayed_[i].framed);
      delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
      host_->session_write(dst, framed);
    } else {
      reliability_due_ = std::min(reliability_due_, delayed_[i].due);
      ++i;
    }
  }
  // Retransmit scan: due entries either go out again (backoff doubled) or,
  // once the budget is spent, are surfaced.
  for (auto& [peer, ps] : peer_send_) {
    for (auto it = ps.unacked.begin(); it != ps.unacked.end();) {
      Pending& p = it->second;
      if (p.next_retx > now) {
        reliability_due_ = std::min(reliability_due_, p.next_retx);
        ++it;
        continue;
      }
      if (p.attempts >= cfg_->retx_max_attempts) {
        ++tc_.surfaced_losses;
        unreachable_pending_.insert(peer);
        it = ps.unacked.erase(it);
        continue;
      }
      ++tc_.retransmits;
      transmit(peer, it->first, p.attempts, p.body);
      ++p.attempts;
      p.backoff = std::min(p.backoff * 2, clock_->to_real(cfg_->retx_max_backoff));
      p.next_retx = now + jittered(p.backoff);
      reliability_due_ = std::min(reliability_due_, p.next_retx);
      ++it;
    }
  }
}

void NodeSession::flush_acks() {
  if (ack_pending_.empty()) {
    return;
  }
  std::set<ProcessId> peers;
  peers.swap(ack_pending_);
  for (const ProcessId peer : peers) {
    send_ack(peer);
  }
}

void NodeSession::send_ack(ProcessId peer) {
  auto prit = peer_recv_.find(peer);
  if (prit == peer_recv_.end() || prit->second.epoch == 0) {
    return;  // nothing delivered from this peer yet
  }
  const PeerRecv& pr = prit->second;
  wire::Encoder e;
  e.put_u8(kFrameAck);
  e.put_varint(static_cast<std::uint64_t>(self_));
  e.put_varint(static_cast<std::uint64_t>(peer));
  e.put_varint(epoch_);
  e.put_varint(pr.epoch);
  e.put_varint(pr.cum);
  const std::size_t k = std::min(pr.above.size(), kMaxSacks);
  e.put_varint(k);
  std::size_t i = 0;
  for (const SeqNum s : pr.above) {
    if (i == k) {
      break;
    }
    e.put_varint(s);
    ++i;
  }
  std::vector<std::uint8_t> framed;
  wire::append_frame(framed, e.bytes());
  ++tc_.acks_sent;
  // ACKs bypass transmit(): chaos never perturbs the control plane (see
  // rt/chaos.hpp). Loss is still possible via connection resets and is
  // recovered by the sender's retransmit, which re-triggers the ACK.
  host_->session_write(peer, framed);
}

// ---- Receive path -----------------------------------------------------------

void NodeSession::on_payload(Conn& conn,
                             const std::vector<std::uint8_t>& payload) {
  wire::Decoder d(payload);
  const std::uint8_t kind = d.get_u8();
  if (kind == kFrameHello) {
    for (const std::uint8_t m : kMagic) {
      if (d.get_u8() != m) {
        throw wire::DecodeError("live: bad HELLO magic");
      }
    }
    if (d.get_varint() != kLiveProtocolVersion) {
      throw wire::DecodeError("live: protocol version mismatch");
    }
    const auto peer = static_cast<ProcessId>(d.get_varint());
    if (peer < 0 || idx(peer) >= cluster_) {
      throw wire::DecodeError("live: HELLO from unknown peer");
    }
    if (d.get_varint() != cluster_) {
      throw wire::DecodeError("live: HELLO cluster-size mismatch");
    }
    const std::uint64_t peer_epoch = d.get_varint();
    conn.peer = peer;
    conn.hello_seen = true;
    observe_peer(peer, peer_epoch);
    return;
  }
  if (!conn.hello_seen) {
    throw wire::DecodeError("live: frame before HELLO");
  }
  if (kind == kFrameData) {
    handle_data(d, payload);
    return;
  }
  if (kind == kFrameAck) {
    handle_ack(d);
    return;
  }
  throw wire::DecodeError("live: unexpected frame kind");
}

void NodeSession::handle_data(wire::Decoder& d,
                              const std::vector<std::uint8_t>& payload) {
  transport::Message m;
  m.src = static_cast<ProcessId>(d.get_varint());
  m.dst = static_cast<ProcessId>(d.get_varint());
  const std::uint64_t src_epoch = d.get_varint();
  const std::uint64_t dst_epoch = d.get_varint();
  const SeqNum seq = d.get_varint();
  m.type = static_cast<int>(d.get_varint());
  m.wire_words = static_cast<std::size_t>(d.get_varint());
  if (m.dst != self_) {
    throw wire::DecodeError("live: misrouted frame");
  }
  if (m.src < 0 || idx(m.src) >= cluster_) {
    throw wire::DecodeError("live: DATA from unknown peer");
  }
  // The frame proves its sender is alive with `src_epoch`.
  observe_peer(m.src, src_epoch);
  if (dst_epoch != epoch_) {
    // Addressed to a previous incarnation of this node: a stale
    // retransmission that must not leak into the new life. No ACK — the
    // sender purges and surfaces it when it observes the new epoch.
    ++tc_.stale_rejected;
    return;
  }
  PeerRecv& pr = peer_recv_[m.src];
  if (src_epoch < pr.epoch) {
    ++tc_.stale_rejected;  // late frame from a superseded sender life
    return;
  }
  if (src_epoch > pr.epoch) {
    pr = PeerRecv{};  // new sender incarnation, new seq space
    pr.epoch = src_epoch;
  }
  if (seq <= pr.cum || pr.above.count(seq) != 0) {
    ++tc_.dups_suppressed;
    ack_pending_.insert(m.src);  // re-ack: the first ACK may have been lost
    return;
  }
  if (seq == pr.cum + 1) {
    ++pr.cum;
    while (!pr.above.empty() && *pr.above.begin() == pr.cum + 1) {
      ++pr.cum;
      pr.above.erase(pr.above.begin());
    }
  } else {
    pr.above.insert(seq);
  }
  ack_pending_.insert(m.src);
  const std::size_t rest = d.remaining();
  std::vector<std::uint8_t> body(payload.end() -
                                     static_cast<std::ptrdiff_t>(rest),
                                 payload.end());
  m.wire_bytes = body.size();
  m.payload = std::move(body);
  m.sent_at = clock_->now();  // delivery stamp; the wire carries no send time
  m.id = ++tc_.msgs_delivered;
  node_->on_message(m);
}

void NodeSession::handle_ack(wire::Decoder& d) {
  const auto acker = static_cast<ProcessId>(d.get_varint());
  const auto dst = static_cast<ProcessId>(d.get_varint());
  const std::uint64_t acker_epoch = d.get_varint();
  const std::uint64_t acked_epoch = d.get_varint();
  const SeqNum cum = d.get_varint();
  const std::uint64_t nsacks = d.get_varint();
  if (dst != self_) {
    throw wire::DecodeError("live: misrouted ACK");
  }
  if (acker < 0 || idx(acker) >= cluster_) {
    throw wire::DecodeError("live: ACK from unknown peer");
  }
  if (nsacks > kMaxSacks) {
    throw wire::DecodeError("live: oversized ACK");
  }
  observe_peer(acker, acker_epoch);
  PeerSend& ps = peer_send_[acker];
  for (std::uint64_t i = 0; i < nsacks; ++i) {
    const SeqNum s = d.get_varint();
    if (acked_epoch == epoch_) {
      ps.unacked.erase(s);
    }
  }
  if (acked_epoch != epoch_) {
    return;  // acknowledges a previous life's messages; nothing to release
  }
  ps.unacked.erase(ps.unacked.begin(), ps.unacked.upper_bound(cum));
}

// ---- Checkpoint surface ------------------------------------------------------

ckpt::SessionState NodeSession::export_state() const {
  ckpt::SessionState state;
  state.self = self_;
  state.epoch = epoch_;
  for (const auto& [peer, ps] : peer_send_) {
    ckpt::SessionState::PeerSend out;
    out.peer = peer;
    out.next_seq = ps.next_seq;
    for (const auto& [seq, p] : ps.unacked) {
      ckpt::SessionState::Unacked u;
      u.seq = seq;
      u.body = p.body;
      u.attempts = static_cast<std::uint32_t>(p.attempts);
      u.dst_epoch = p.dst_epoch;
      out.unacked.push_back(std::move(u));
    }
    state.send.push_back(std::move(out));
  }
  for (const auto& [peer, pr] : peer_recv_) {
    ckpt::SessionState::PeerRecv out;
    out.peer = peer;
    out.epoch = pr.epoch;
    out.cum = pr.cum;
    out.above.assign(pr.above.begin(), pr.above.end());
    state.recv.push_back(std::move(out));
  }
  for (const auto& [peer, epoch] : peer_epoch_) {
    state.peer_epochs.emplace_back(peer, epoch);
  }
  return state;
}

void NodeSession::import_state(const ckpt::SessionState& state) {
  HPD_REQUIRE(state.self == self_, "NodeSession: checkpoint node mismatch");
  adopt_epoch(state.epoch);
  peer_send_.clear();
  peer_recv_.clear();
  peer_epoch_.clear();
  delayed_.clear();
  ack_pending_.clear();
  unreachable_pending_.clear();
  for (const auto& in : state.send) {
    PeerSend& ps = peer_send_[in.peer];
    ps.next_seq = in.next_seq;
    for (const auto& u : in.unacked) {
      Pending p;
      p.body = u.body;
      p.attempts = static_cast<int>(u.attempts);
      p.dst_epoch = u.dst_epoch;
      // Deadlines do not survive a restart: everything unacked is due now,
      // with the initial backoff re-applied on the first retransmission.
      p.backoff = clock_->to_real(cfg_->retx_initial);
      p.next_retx = Clock::time_point::min();
      ps.unacked.emplace(u.seq, std::move(p));
    }
  }
  for (const auto& in : state.recv) {
    PeerRecv& pr = peer_recv_[in.peer];
    pr.epoch = in.epoch;
    pr.cum = in.cum;
    pr.above.insert(in.above.begin(), in.above.end());
  }
  for (const auto& [peer, epoch] : state.peer_epochs) {
    peer_epoch_[peer] = epoch;
  }
  reliability_due_ = Clock::time_point::min();
}

// ---- Shutdown ---------------------------------------------------------------

void NodeSession::shutdown() {
  // Messages still awaiting acknowledgment die with this incarnation;
  // account them as surfaced so no loss is ever silent. (At a clean stop
  // after a drain these queues are empty and the counter is untouched.)
  for (auto& [peer, ps] : peer_send_) {
    tc_.surfaced_losses += ps.unacked.size();
  }
  peer_send_.clear();
  peer_recv_.clear();
  peer_epoch_.clear();
  delayed_.clear();
  ack_pending_.clear();
  unreachable_pending_.clear();
  reliability_due_ = Clock::time_point::max();
}

}  // namespace hpd::rt
