#include "rt/chaos.hpp"

#include <algorithm>
#include <tuple>

#include "common/rng.hpp"

namespace hpd::rt {
namespace {

// Key the decision stream on the frame identity. Each roll draws from a
// SplitMix64 whose seed mixes (cfg.seed, src, dst, seq, attempt) plus a
// per-purpose salt, so the rolls are mutually independent and adding a new
// roll kind cannot shift the outcomes of existing ones.
std::uint64_t frame_key(const ChaosConfig& cfg, ProcessId src, ProcessId dst,
                        SeqNum seq, int attempt, std::uint64_t salt) {
  SplitMix64 sm(cfg.seed ^ salt);
  std::uint64_t h = sm.next();
  h ^= SplitMix64(h + static_cast<std::uint64_t>(src)).next();
  h ^= SplitMix64(h + static_cast<std::uint64_t>(dst)).next();
  h ^= SplitMix64(h + seq).next();
  h ^= SplitMix64(h + static_cast<std::uint64_t>(attempt)).next();
  return h;
}

double roll01(const ChaosConfig& cfg, ProcessId src, ProcessId dst,
              SeqNum seq, int attempt, std::uint64_t salt) {
  // Same 53-bit conversion Rng::uniform01 uses.
  return static_cast<double>(
             frame_key(cfg, src, dst, seq, attempt, salt) >> 11) *
         0x1.0p-53;
}

constexpr std::uint64_t kSaltReset = 0x9d8a75e3c1f04b21ULL;
constexpr std::uint64_t kSaltDrop = 0x417cfb90a2d6e853ULL;
constexpr std::uint64_t kSaltCorrupt = 0x6e2f18c47b09d5a3ULL;
constexpr std::uint64_t kSaltDup = 0xb35d60f2984ac1e7ULL;
constexpr std::uint64_t kSaltDelay = 0x28c9e47f5d13ab60ULL;
constexpr std::uint64_t kSaltDelayAmt = 0xf016b3d8ea47c295ULL;
constexpr std::uint64_t kSaltOffset = 0x75ea0c31f8b9264dULL;

}  // namespace

const char* to_string(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kDrop:
      return "drop";
    case ChaosEvent::Kind::kDuplicate:
      return "duplicate";
    case ChaosEvent::Kind::kCorrupt:
      return "corrupt";
    case ChaosEvent::Kind::kDelay:
      return "delay";
    case ChaosEvent::Kind::kReset:
      return "reset";
    case ChaosEvent::Kind::kPartition:
      return "partition";
  }
  return "?";
}

void canonical_sort(std::vector<ChaosEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) {
              return std::tuple(a.src, a.dst, a.seq, a.attempt,
                                static_cast<int>(a.kind)) <
                     std::tuple(b.src, b.dst, b.seq, b.attempt,
                                static_cast<int>(b.kind));
            });
}

ChaosDecision plan_frame(const ChaosConfig& cfg, ProcessId src, ProcessId dst,
                         SeqNum seq, int attempt) {
  ChaosDecision d;
  if (cfg.reset_p > 0.0 &&
      roll01(cfg, src, dst, seq, attempt, kSaltReset) < cfg.reset_p) {
    d.reset = true;
    return d;
  }
  if (cfg.drop_p > 0.0 &&
      roll01(cfg, src, dst, seq, attempt, kSaltDrop) < cfg.drop_p) {
    d.drop = true;
    return d;
  }
  if (cfg.corrupt_p > 0.0 &&
      roll01(cfg, src, dst, seq, attempt, kSaltCorrupt) < cfg.corrupt_p) {
    d.corrupt = true;
  }
  if (cfg.dup_p > 0.0 &&
      roll01(cfg, src, dst, seq, attempt, kSaltDup) < cfg.dup_p) {
    d.copies = 1 + std::max(1, cfg.dup_copies);
  }
  if (cfg.delay_p > 0.0 && cfg.delay_max > 0.0 &&
      roll01(cfg, src, dst, seq, attempt, kSaltDelay) < cfg.delay_p) {
    const double u = roll01(cfg, src, dst, seq, attempt, kSaltDelayAmt);
    d.delay = cfg.delay_max * (1.0 - u);  // (0, delay_max]
  }
  return d;
}

std::size_t corrupt_offset(const ChaosConfig& cfg, ProcessId src,
                           ProcessId dst, SeqNum seq, int attempt,
                           std::size_t size) {
  if (size == 0) return 0;
  return static_cast<std::size_t>(
      frame_key(cfg, src, dst, seq, attempt, kSaltOffset) % size);
}

bool partitioned(const ChaosConfig& cfg, ProcessId src, ProcessId dst,
                 SimTime now) {
  for (const ChaosPartition& p : cfg.partitions) {
    if (p.covers(src, dst, now)) return true;
  }
  return false;
}

}  // namespace hpd::rt
