// The reliable-delivery session layer of the live transport (protocol v2),
// extracted as a backend-neutral, nonblocking state machine. One
// NodeSession is the per-node protocol brain: sequence assignment,
// bounded retransmit queues with exponential backoff + jitter, duplicate
// suppression, cumulative + selective ACKs, session epochs, chaos
// injection at the frame boundary, and surfaced-loss accounting.
//
// It performs no I/O and owns no sockets or timers: everything it needs
// from its host backend goes through the SessionHost interface, and the
// host learns when to call back in via next_due(). Both live backends —
// thread-per-node (rt/live_transport, poll loops) and the epoll reactor
// (rt/reactor, worker shards) — host this exact object, which is what
// "replacing thread-per-node without touching protocol semantics" means
// mechanically: the protocol is this file, the backends are schedulers.
//
// Threading contract: every method must be called from the node's single
// execution context (its loop thread, or its reactor worker while holding
// the shard). bump_epoch() is the one exception — the driver calls it
// during revive(), while the node's context is provably not running.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ckpt/session_state.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "metrics/counters.hpp"
#include "rt/backend.hpp"
#include "rt/chaos.hpp"
#include "rt/clock.hpp"
#include "rt/conn.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"
#include "wire/codec.hpp"

namespace hpd::rt {

/// What a NodeSession needs from the backend hosting it. All calls arrive
/// on the node's execution context, re-entrantly from NodeSession methods.
class SessionHost {
 public:
  virtual ~SessionHost() = default;

  /// Queue already-framed bytes toward dst, dialling lazily. May drop the
  /// bytes entirely (peer down / cooling down / dial failed) — the
  /// retransmit path recovers.
  virtual void session_write(ProcessId dst,
                             const std::vector<std::uint8_t>& framed) = 0;

  /// Tear down the outgoing connection to dst *without* a cooldown: the
  /// peer is healthy, only the socket must die (chaos reset, or an epoch
  /// change that makes the old stream meaningless).
  virtual void session_reset_conn(ProcessId dst) = 0;

  /// The peer showed signs of life: expire any re-dial cooldown.
  virtual void session_peer_alive(ProcessId peer) = 0;
};

class NodeSession final : public PayloadSink {
 public:
  NodeSession() = default;

  NodeSession(const NodeSession&) = delete;
  NodeSession& operator=(const NodeSession&) = delete;

  /// Wire the session to its node and host. `link_ok` may be null; if
  /// non-null it must outlive the session (the backend owns it).
  void init(ProcessId self, std::size_t cluster, const LiveConfig* cfg,
            const ScaledClock* clock, SessionHost* host, transport::Node* node,
            MetricsRegistry* metrics,
            const std::function<bool(ProcessId, ProcessId)>* link_ok);

  ProcessId self() const { return self_; }

  // ---- Epochs ---------------------------------------------------------------
  std::uint64_t epoch() const { return epoch_; }
  /// New incarnation (revive): every live peer will reject DATA addressed
  /// to the previous life. Driver-side, only while this node is stopped.
  void bump_epoch() { epoch_ += 1; }
  /// Epoch continuity across a real process restart: adopt the larger of
  /// the current and the checkpointed incarnation. Epochs only move
  /// forward — a stale checkpoint can never demote this life. Same calling
  /// contract as bump_epoch().
  void adopt_epoch(std::uint64_t epoch) { epoch_ = std::max(epoch_, epoch); }

  // ---- Checkpoint surface ---------------------------------------------------
  /// Export the durable reliable-delivery state into the backend-neutral
  /// ckpt image (see ckpt::SessionState for what is deliberately absent).
  /// Same calling contract as bump_epoch(): driver-side, only while this
  /// node's execution context is not running.
  ckpt::SessionState export_state() const;
  /// Rebuild from an exported image: per-peer send/receive windows and the
  /// retransmit queue are restored with every unacked message immediately
  /// due (deadlines do not survive a restart), and the epoch is adopted
  /// via adopt_epoch(). Same calling contract as export_state().
  void import_state(const ckpt::SessionState& state);

  // ---- Send path ------------------------------------------------------------
  /// Accept one application message (the body of Endpoint::send once the
  /// backend has checked the node is alive): accounting, self-loopback,
  /// sequence assignment, first transmission, retransmit-queue entry.
  void send(transport::Message msg);

  // ---- Receive path ---------------------------------------------------------
  /// Frame dispatch (PayloadSink): HELLO handshake, DATA delivery with
  /// dup/epoch filtering, ACK release. Throws wire::DecodeError on
  /// malformed payloads — Conn::read_once maps it to kProtocolError.
  void on_payload(Conn& conn, const std::vector<std::uint8_t>& payload) override;

  /// Record that `peer` is alive with incarnation `epoch`: expires the
  /// re-dial cooldown; an epoch raise purges (surfaces) queued messages
  /// addressed to the dead incarnation and resets the outgoing connection.
  void observe_peer(ProcessId peer, std::uint64_t epoch);

  // ---- Periodic service -----------------------------------------------------
  /// Deferred on_peer_unreachable upcalls, matured chaos-delayed frames,
  /// retransmit scan. Call once per loop turn, or when next_due() arrives.
  void service(std::chrono::steady_clock::time_point now);

  /// Earliest instant service() must run again: the next retransmit /
  /// delayed-frame deadline, or time_point::min() while a surfaced loss
  /// still owes its deferred on_peer_unreachable upcall.
  /// time_point::max() when idle. Recomputed by service(); only ever moved
  /// *earlier* in between.
  std::chrono::steady_clock::time_point next_due() const {
    if (!unreachable_pending_.empty()) {
      return std::chrono::steady_clock::time_point::min();
    }
    return reliability_due_;
  }

  /// Send coalesced ACKs owed for this turn's deliveries. Call at the end
  /// of every loop turn that may have delivered DATA.
  void flush_acks();

  /// True if this turn produced deliveries/losses whose ACKs/deadlines the
  /// backend still has to act on (reactor: re-arm the service timer).
  bool has_pending_acks() const { return !ack_pending_.empty(); }

  // ---- Shutdown -------------------------------------------------------------
  /// Account every still-unacknowledged message as a surfaced loss and
  /// clear all session state. The backend drops sockets/timers itself.
  void shutdown();

  // ---- Accounting -----------------------------------------------------------
  TransportCounters& counters() { return tc_; }
  const TransportCounters& counters() const { return tc_; }
  std::vector<ChaosEvent>& chaos_log() { return chaos_log_; }
  const std::vector<ChaosEvent>& chaos_log() const { return chaos_log_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::vector<std::uint8_t> body;  ///< encoded DATA payload (unframed)
    Clock::time_point next_retx;
    Clock::duration backoff{};
    int attempts = 0;             ///< transmissions performed so far
    std::uint64_t dst_epoch = 0;  ///< destination incarnation targeted
  };
  struct PeerSend {
    SeqNum next_seq = 1;
    std::map<SeqNum, Pending> unacked;
  };
  /// Receive window for one sender: `epoch` is the sender incarnation the
  /// sequence space belongs to; everything <= cum plus the `above` set has
  /// been delivered.
  struct PeerRecv {
    std::uint64_t epoch = 0;
    SeqNum cum = 0;
    std::set<SeqNum> above;
  };
  struct DelayedFrame {
    Clock::time_point due;
    ProcessId dst = kNoProcess;
    std::vector<std::uint8_t> framed;
  };

  /// One (possibly chaos-perturbed) transmission of an encoded DATA body.
  void transmit(ProcessId dst, SeqNum seq, int attempt,
                const std::vector<std::uint8_t>& body);
  void handle_data(wire::Decoder& d, const std::vector<std::uint8_t>& payload);
  void handle_ack(wire::Decoder& d);
  void send_ack(ProcessId peer);
  Clock::duration jittered(Clock::duration d);
  std::uint64_t epoch_of(ProcessId peer) const;

  ProcessId self_ = kNoProcess;
  std::size_t cluster_ = 0;
  const LiveConfig* cfg_ = nullptr;
  const ScaledClock* clock_ = nullptr;
  SessionHost* host_ = nullptr;
  transport::Node* node_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  const std::function<bool(ProcessId, ProcessId)>* link_ok_ = nullptr;

  std::uint64_t epoch_ = 1;
  // Sparse per-peer state: a node only ever talks to its tree neighbours
  // (plus reattachment candidates), so at reactor scale (thousands of
  // nodes) dense n-sized vectors per node would be O(n²) memory for
  // nothing. Keyed maps iterate in ascending peer order, which keeps
  // upcall/scan order identical to the old dense-vector code.
  std::map<ProcessId, PeerSend> peer_send_;
  std::map<ProcessId, PeerRecv> peer_recv_;
  /// Last observed incarnation of each peer (absent == 1, monotone).
  std::map<ProcessId, std::uint64_t> peer_epoch_;

  std::vector<DelayedFrame> delayed_;
  /// Peers owed an ACK after this loop turn's deliveries (coalesced).
  std::set<ProcessId> ack_pending_;
  /// Peers with freshly surfaced losses; on_peer_unreachable runs at the
  /// top of the next service() turn, outside the scans and dispatches that
  /// discovered the losses.
  std::set<ProcessId> unreachable_pending_;
  Clock::time_point reliability_due_ = Clock::time_point::max();
  /// Retransmit jitter only — never consulted for chaos decisions.
  Rng rng_;

  std::vector<ChaosEvent> chaos_log_;
  // tc_.msgs_delivered doubles as the per-node delivery id source.
  TransportCounters tc_;
};

}  // namespace hpd::rt
