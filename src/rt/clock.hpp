// Scaled wall clock shared by every live backend: one SimTime unit is
// `scale` real seconds on std::chrono::steady_clock. Both the thread-per-node
// backend (rt/live_transport) and the reactor backend (rt/reactor) measure
// protocol time through this one translation so their chaos windows, timer
// deadlines and recorded fault instants agree by construction.
//
// sleep_until() lives here (and not in the reactor sources) on purpose: it
// is a *driver-thread* facility — worker threads inside src/rt/reactor/ are
// forbidden to block (see the reactor-nonblocking lint rule).
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/types.hpp"

namespace hpd::rt {

class ScaledClock {
 public:
  using Clock = std::chrono::steady_clock;

  ScaledClock() : start_(Clock::now()) {}

  /// Re-anchor SimTime 0 at `t0` with `scale` real seconds per unit.
  void reset(Clock::time_point t0, double scale) {
    start_ = t0;
    scale_ = scale;
  }

  Clock::time_point start() const { return start_; }

  /// SimTime units elapsed since the anchor. Any thread.
  SimTime now() const {
    const std::chrono::duration<double> el = Clock::now() - start_;
    return el.count() / scale_;
  }

  /// A SimTime duration as a real steady-clock duration (clamped at 0).
  Clock::duration to_real(SimTime d) const {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(std::max(0.0, d) * scale_));
  }

  /// The real instant at which SimTime `t` arrives.
  Clock::time_point at(SimTime t) const { return start_ + to_real(t); }

  /// Block the calling (driver) thread until now() >= t.
  void sleep_until(SimTime t) const { std::this_thread::sleep_until(at(t)); }

 private:
  Clock::time_point start_;
  double scale_ = 0.02;
};

}  // namespace hpd::rt
