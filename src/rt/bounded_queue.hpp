// A small bounded MPSC/MPMC blocking queue for the live runtime: node event
// loops produce into it, a collector (or the loop itself) drains it. Closing
// wakes every waiter; producers see the rejection, consumers drain the
// remainder and then get std::nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hpd::rt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; false if the queue is full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking push; false only if the queue closed while waiting.
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      space_cv_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;        ///< waiters for items
  std::condition_variable space_cv_;  ///< waiters for space
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hpd::rt
