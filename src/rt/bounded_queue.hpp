// A small bounded MPSC/MPMC blocking queue for the live runtime: node event
// loops produce into it, a collector (or the loop itself) drains it. Closing
// wakes every waiter; producers see the rejection, consumers drain the
// remainder and then get std::nullopt.
//
// Lock discipline is machine-checked (Clang Thread Safety Analysis, see
// common/thread_annotations.hpp): items_ and closed_ are HPD_GUARDED_BY
// mutex_, and every wait predicate is an explicit loop under the held
// MutexLock rather than a lambda handed to the condition variable — the
// lambda form runs the guarded reads inside std::condition_variable::wait,
// outside what the analysis can prove.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.hpp"

namespace hpd::rt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; false if the queue is full or closed.
  bool try_push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_ || !has_space()) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking push; false only if the queue closed while waiting.
  bool push(T item) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && !has_space()) {
        space_cv_.wait(lock);
      }
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      cv_.wait(lock);
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = take_front();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = take_front();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  bool has_space() const HPD_REQUIRES(mutex_) {
    return items_.size() < capacity_;
  }

  T take_front() HPD_REQUIRES(mutex_) {
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar cv_;        ///< waiters for items
  CondVar space_cv_;  ///< waiters for space
  std::deque<T> items_ HPD_GUARDED_BY(mutex_);
  bool closed_ HPD_GUARDED_BY(mutex_) = false;
};

}  // namespace hpd::rt
