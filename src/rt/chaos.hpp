// Deterministic fault injection for the live transport.
//
// The chaos layer sits at the frame boundary of rt::LiveTransport: just
// before a DATA frame is written to its outgoing connection, the sender
// consults plan_frame() and may drop the frame, duplicate it, flip a byte
// inside the CRC-protected region, hold it back for a while, or reset the
// whole connection. This mirrors the sim backend's sim::Strategy semantics
// (a DeliveryPlan of zero/one/many delayed copies) so the same fault plan
// can be expressed against either backend.
//
// Determinism contract: every decision is a pure function of
// (cfg.seed, src, dst, seq, attempt) — no generator state is threaded
// between calls and no wall clock is consulted. Two runs with the same
// seed, the same config and the same per-peer sequence numbers therefore
// produce the same chaos-event log (see transport_conformance_test).
// Retransmissions carry a fresh `attempt` ordinal so a retry of a dropped
// frame is a new coin toss, not a guaranteed repeat of the first outcome.
//
// Chaos applies to DATA frames only. HELLO and ACK frames are never
// perturbed: connection resets already exercise handshake/ack loss, and
// keeping the control plane clean is what makes the event log reproducible
// (ack timing is wall-clock dependent, DATA sequence numbers are not).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hpd::rt {

/// One directional link suppression window: frames src -> dst are swallowed
/// while `from <= now < until` (until < 0 → forever). kNoProcess on either
/// side is a wildcard, so {kNoProcess, 3} isolates node 3's inbound half —
/// asymmetric partitions fall out of listing only one direction.
struct ChaosPartition {
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  SimTime from = 0.0;
  SimTime until = -1.0;

  bool covers(ProcessId s, ProcessId d, SimTime now) const {
    if (src != kNoProcess && src != s) return false;
    if (dst != kNoProcess && dst != d) return false;
    if (now < from) return false;
    return until < 0.0 || now < until;
  }
};

/// Frame-level fault plan. All probabilities are independent per frame
/// transmission; `until` bounds the injection window in SimTime so tests
/// can stop injecting before the drain phase and assert a clean flush.
struct ChaosConfig {
  double drop_p = 0.0;     ///< Swallow the frame.
  double dup_p = 0.0;      ///< Send `1 + dup_copies` identical frames.
  double corrupt_p = 0.0;  ///< Flip one byte (CRC catches it downstream).
  double reset_p = 0.0;    ///< Close the outgoing connection, frame lost.
  double delay_p = 0.0;    ///< Hold the frame back uniform(0, delay_max].
  SimTime delay_max = 4.0;
  int dup_copies = 1;      ///< Extra copies when a duplication fires.
  SimTime until = -1.0;    ///< Injection window end; < 0 → no limit.
  std::uint64_t seed = 0x51ab5u;
  std::vector<ChaosPartition> partitions;

  bool any_faults() const {
    return drop_p > 0.0 || dup_p > 0.0 || corrupt_p > 0.0 || reset_p > 0.0 ||
           delay_p > 0.0 || !partitions.empty();
  }
  bool active_at(SimTime now) const { return until < 0.0 || now < until; }
};

/// A recorded injection, one per perturbed frame transmission. Logs are
/// kept per sender thread and merged after join; canonical_sort gives the
/// run-independent order the determinism test compares.
struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kDrop,
    kDuplicate,
    kCorrupt,
    kDelay,
    kReset,
    kPartition,
  };
  Kind kind = Kind::kDrop;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  SeqNum seq = 0;
  int attempt = 0;

  friend bool operator==(const ChaosEvent& a, const ChaosEvent& b) {
    return a.kind == b.kind && a.src == b.src && a.dst == b.dst &&
           a.seq == b.seq && a.attempt == b.attempt;
  }
};

const char* to_string(ChaosEvent::Kind kind);

/// Sort by (src, dst, seq, attempt, kind): a total order independent of the
/// wall-clock interleaving the events were produced under.
void canonical_sort(std::vector<ChaosEvent>& events);

/// The outcome of the per-frame rolls, precedence already applied:
/// reset > drop > {corrupt, duplicate, delay} (the latter three compose).
struct ChaosDecision {
  bool reset = false;
  bool drop = false;
  bool corrupt = false;
  int copies = 1;        ///< Total transmissions (>= 1).
  SimTime delay = 0.0;   ///< 0 → send immediately.
};

/// Pure function of (cfg.seed, src, dst, seq, attempt); see file comment.
ChaosDecision plan_frame(const ChaosConfig& cfg, ProcessId src, ProcessId dst,
                         SeqNum seq, int attempt);

/// Which byte of a `size`-byte framed buffer a corruption flips. Any byte
/// works — length prefix, payload and CRC trailer are all covered by the
/// reader's integrity checks — but the choice must be deterministic.
std::size_t corrupt_offset(const ChaosConfig& cfg, ProcessId src,
                           ProcessId dst, SeqNum seq, int attempt,
                           std::size_t size);

/// True when some partition window currently suppresses src -> dst.
bool partitioned(const ChaosConfig& cfg, ProcessId src, ProcessId dst,
                 SimTime now);

}  // namespace hpd::rt
