#include "rt/live_transport.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <deque>
#include <future>
#include <map>
#include <sys/socket.h>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace hpd::rt {

namespace {

using Clock = std::chrono::steady_clock;

// Frame payload kinds. Every frame starts with one of these bytes.
constexpr std::uint8_t kFrameHello = 1;
constexpr std::uint8_t kFrameData = 2;

constexpr std::uint8_t kMagic[4] = {'H', 'P', 'D', 'L'};

}  // namespace

// ---- Internal state ---------------------------------------------------------

/// One stream connection. Outgoing connections (keyed by peer in
/// NodeCtx::outgoing) only ever send; inbound connections only receive.
struct LiveTransport::Conn {
  Fd fd;
  wire::FrameReader reader;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_pos = 0;
  ProcessId peer = kNoProcess;
  bool hello_seen = false;
};

struct LiveTransport::NodeCtx {
  ProcessId id = kNoProcess;
  transport::Node* node = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::function<void()> on_revive;
  LiveEndpoint endpoint;

  SockAddr addr;  ///< fixed at start(); stable across crash/revive
  Fd listener;
  std::thread thread;
  std::atomic<bool> alive{false};

  // Control plane: any thread -> loop thread.
  Mutex ctl_mutex;
  std::deque<std::function<void()>> ctl HPD_GUARDED_BY(ctl_mutex);
  bool crash_requested HPD_GUARDED_BY(ctl_mutex) = false;
  bool stop_requested HPD_GUARDED_BY(ctl_mutex) = false;
  Fd wake_read;
  Fd wake_write;

  // ---- Loop-thread-only state ----------------------------------------------
  std::vector<std::unique_ptr<Conn>> inbound;
  std::map<ProcessId, std::unique_ptr<Conn>> outgoing;

  struct TimerRec {
    int tag = 0;
    bool periodic = false;
    Clock::time_point due;
    Clock::duration period{};
  };
  std::map<transport::TimerId, TimerRec> timers;
  transport::TimerId next_timer = 1;

  /// Per-peer re-dial cooldown after a failed connect / broken pipe.
  std::vector<Clock::time_point> peer_down;

  std::vector<std::uint8_t> read_buf;

  // Counters: written by the loop thread, read after it has been joined.
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t accepted = 0;
};

// ---- LiveEndpoint -----------------------------------------------------------

SimTime LiveEndpoint::now() const { return transport_->now(); }

void LiveEndpoint::send(transport::Message msg) {
  HPD_REQUIRE(msg.src == self_,
              "LiveEndpoint::send: src must be the owning node");
  transport_->do_send(transport_->ctx(self_), std::move(msg));
}

transport::TimerId LiveEndpoint::set_timer(ProcessId id, int tag,
                                           SimTime delay, bool periodic,
                                           SimTime period) {
  HPD_REQUIRE(id == self_,
              "LiveEndpoint::set_timer: timers belong to the owning node");
  return transport_->do_set_timer(transport_->ctx(self_), tag, delay, periodic,
                                  period);
}

void LiveEndpoint::cancel_timer(transport::TimerId id) {
  transport_->do_cancel_timer(transport_->ctx(self_), id);
}

bool LiveEndpoint::alive(ProcessId id) const { return transport_->alive(id); }

// ---- Construction / registration -------------------------------------------

LiveTransport::LiveTransport(std::size_t n, LiveConfig cfg)
    : cfg_(std::move(cfg)), start_(Clock::now()) {
  HPD_REQUIRE(n >= 1, "LiveTransport: empty system");
  HPD_REQUIRE(cfg_.time_scale > 0.0, "LiveTransport: time_scale must be > 0");
  if (cfg_.socket_kind == SockAddr::Kind::kUnix && cfg_.socket_dir.empty()) {
    socket_dir_ = make_socket_dir();
    own_socket_dir_ = true;
  } else {
    socket_dir_ = cfg_.socket_dir;
  }
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto c = std::make_unique<NodeCtx>();
    c->id = static_cast<ProcessId>(i);
    c->endpoint.transport_ = this;
    c->endpoint.self_ = c->id;
    c->addr.kind = cfg_.socket_kind;
    if (cfg_.socket_kind == SockAddr::Kind::kUnix) {
      c->addr.path = socket_dir_ + "/node-" + std::to_string(i) + ".sock";
    }
    c->peer_down.resize(n);
    c->read_buf.resize(cfg_.read_chunk);
    int pipefd[2];
    if (::pipe(pipefd) < 0) {
      throw TransportError("pipe: wake channel");
    }
    c->wake_read = Fd(pipefd[0]);
    c->wake_write = Fd(pipefd[1]);
    set_nonblocking(c->wake_read.get());
    set_nonblocking(c->wake_write.get());
    nodes_.push_back(std::move(c));
  }
}

LiveTransport::~LiveTransport() {
  stop();
  if (own_socket_dir_) {
    remove_socket_dir(socket_dir_);
  }
}

LiveTransport::NodeCtx& LiveTransport::ctx(ProcessId id) {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "LiveTransport: unknown node id");
  return *nodes_[idx(id)];
}

const LiveTransport::NodeCtx& LiveTransport::ctx(ProcessId id) const {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "LiveTransport: unknown node id");
  return *nodes_[idx(id)];
}

void LiveTransport::set_link_filter(
    std::function<bool(ProcessId, ProcessId)> link_ok) {
  HPD_REQUIRE(!started_, "LiveTransport: link filter must precede start()");
  link_ok_ = std::move(link_ok);
}

void LiveTransport::register_node(ProcessId id, transport::Node& node,
                                  MetricsRegistry* metrics,
                                  std::function<void()> on_revive) {
  HPD_REQUIRE(!started_, "LiveTransport: register_node must precede start()");
  NodeCtx& c = ctx(id);
  c.node = &node;
  c.metrics = metrics;
  c.on_revive = std::move(on_revive);
}

transport::Endpoint& LiveTransport::endpoint(ProcessId id) {
  return ctx(id).endpoint;
}

// ---- Lifecycle --------------------------------------------------------------

void LiveTransport::start() {
  HPD_REQUIRE(!started_, "LiveTransport: started twice");
  for (auto& c : nodes_) {
    HPD_REQUIRE(c->node != nullptr, "LiveTransport: node not registered");
    // Binding every listener before any thread runs means a refused connect
    // can only ever mean "peer crashed".
    c->listener = listen_on(c->addr);
  }
  start_ = Clock::now();
  started_ = true;
  for (auto& c : nodes_) {
    c->alive.store(true, std::memory_order_release);
  }
  for (auto& c : nodes_) {
    NodeCtx* p = c.get();
    c->thread = std::thread([this, p] { node_loop(*p, /*initial=*/true); });
  }
}

void LiveTransport::stop() {
  for (auto& c : nodes_) {
    {
      MutexLock lock(c->ctl_mutex);
      c->stop_requested = true;
    }
    wake(*c);
  }
  for (auto& c : nodes_) {
    if (c->thread.joinable()) {
      c->thread.join();
    }
  }
}

void LiveTransport::crash(ProcessId id) {
  NodeCtx& c = ctx(id);
  if (!c.alive.load(std::memory_order_acquire)) {
    return;
  }
  {
    MutexLock lock(c.ctl_mutex);
    c.crash_requested = true;
  }
  wake(c);
  if (c.thread.joinable()) {
    c.thread.join();
  }
}

void LiveTransport::revive(ProcessId id) {
  NodeCtx& c = ctx(id);
  HPD_REQUIRE(started_, "LiveTransport: revive before start");
  HPD_REQUIRE(!c.alive.load(std::memory_order_acquire),
              "LiveTransport: revive of a live node");
  if (c.thread.joinable()) {
    c.thread.join();
  }
  {
    MutexLock lock(c.ctl_mutex);
    c.crash_requested = false;
    c.stop_requested = false;
    c.ctl.clear();
  }
  c.listener = listen_on(c.addr);  // same path / port as before the crash
  c.alive.store(true, std::memory_order_release);
  NodeCtx* p = &c;
  c.thread = std::thread([this, p] { node_loop(*p, /*initial=*/false); });
}

bool LiveTransport::alive(ProcessId id) const {
  return ctx(id).alive.load(std::memory_order_acquire);
}

std::size_t LiveTransport::alive_count() const {
  std::size_t k = 0;
  for (const auto& c : nodes_) {
    if (c->alive.load(std::memory_order_acquire)) {
      ++k;
    }
  }
  return k;
}

// ---- Time -------------------------------------------------------------------

SimTime LiveTransport::now() const {
  const std::chrono::duration<double> el = Clock::now() - start_;
  return el.count() / cfg_.time_scale;
}

Clock::duration LiveTransport::to_real(SimTime d) const {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(0.0, d) * cfg_.time_scale));
}

void LiveTransport::sleep_until(SimTime t) const {
  std::this_thread::sleep_until(start_ + to_real(t));
}

// ---- Control plane ----------------------------------------------------------

void LiveTransport::wake(NodeCtx& c) {
  const std::uint8_t b = 0;
  // EAGAIN means a wake byte is already pending, which is just as good.
  [[maybe_unused]] const ssize_t k = ::write(c.wake_write.get(), &b, 1);
}

bool LiveTransport::post(ProcessId id, std::function<void()> fn) {
  NodeCtx& c = ctx(id);
  {
    MutexLock lock(c.ctl_mutex);
    if (!c.alive.load(std::memory_order_acquire) || c.crash_requested ||
        c.stop_requested) {
      return false;
    }
    c.ctl.push_back(std::move(fn));
  }
  wake(c);
  return true;
}

bool LiveTransport::run_on_node_sync(ProcessId id, std::function<void()> fn) {
  auto prom = std::make_shared<std::promise<void>>();
  std::future<void> done = prom->get_future();
  const bool posted = post(id, [prom, fn = std::move(fn)] {
    fn();
    prom->set_value();
  });
  if (!posted) {
    return false;
  }
  try {
    done.get();
    return true;
  } catch (const std::future_error&) {
    return false;  // the node crashed before running fn (promise abandoned)
  }
}

std::vector<LifeEvent> LiveTransport::crash_events() const {
  MutexLock lock(events_mutex_);
  return crashes_;
}

std::vector<LifeEvent> LiveTransport::revive_events() const {
  MutexLock lock(events_mutex_);
  return revives_;
}

// ---- Diagnostics ------------------------------------------------------------

std::uint64_t LiveTransport::delivered_messages() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->delivered;
  }
  return k;
}

std::uint64_t LiveTransport::dropped_messages() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->dropped;
  }
  return k;
}

std::uint64_t LiveTransport::frame_errors() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->frame_errors;
  }
  return k;
}

std::uint64_t LiveTransport::connections_accepted() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->accepted;
  }
  return k;
}

// ---- Timers -----------------------------------------------------------------

transport::TimerId LiveTransport::do_set_timer(NodeCtx& c, int tag,
                                               SimTime delay, bool periodic,
                                               SimTime period) {
  HPD_REQUIRE(!periodic || period > 0.0,
              "LiveTransport: periodic timer needs a positive period");
  const transport::TimerId tid = c.next_timer++;
  NodeCtx::TimerRec rec;
  rec.tag = tag;
  rec.periodic = periodic;
  rec.due = Clock::now() + to_real(delay);
  rec.period = to_real(period);
  c.timers.emplace(tid, rec);
  return tid;
}

void LiveTransport::do_cancel_timer(NodeCtx& c, transport::TimerId id) {
  c.timers.erase(id);
}

void LiveTransport::fire_due_timers(NodeCtx& c) {
  const Clock::time_point t = Clock::now();
  std::vector<transport::TimerId> due;
  for (const auto& [tid, rec] : c.timers) {
    if (rec.due <= t) {
      due.push_back(tid);
    }
  }
  for (const transport::TimerId tid : due) {
    auto it = c.timers.find(tid);
    if (it == c.timers.end()) {
      continue;  // cancelled by an earlier callback this round
    }
    const int tag = it->second.tag;
    if (it->second.periodic) {
      it->second.due = t + it->second.period;
    } else {
      c.timers.erase(it);
    }
    c.node->on_timer(tag);
  }
}

// ---- Send path (runs on the sender's loop thread) ---------------------------

void LiveTransport::do_send(NodeCtx& c, transport::Message msg) {
  if (!c.alive.load(std::memory_order_relaxed)) {
    ++c.dropped;
    return;
  }
  const auto* bytes = std::any_cast<std::vector<std::uint8_t>>(&msg.payload);
  HPD_REQUIRE(bytes != nullptr,
              "LiveTransport: payloads must be wire-encoded bytes "
              "(run with wire_encoding enabled)");
  if (msg.dst < 0 || idx(msg.dst) >= nodes_.size()) {
    ++c.dropped;
    return;
  }
  if (link_ok_ && !link_ok_(msg.src, msg.dst)) {
    ++c.dropped;
    return;
  }
  msg.wire_bytes = bytes->size();
  msg.sent_at = now();
  if (c.metrics != nullptr) {
    c.metrics->on_send(msg.src, msg.type, msg.wire_words, msg.wire_bytes);
  }
  if (msg.dst == c.id) {
    // Loopback to self: deliver inline on this (the correct) thread.
    msg.id = ++c.delivered;
    c.node->on_message(msg);
    return;
  }
  Conn* conn = outgoing_conn(c, msg.dst);
  if (conn == nullptr) {
    ++c.dropped;
    return;
  }
  wire::Encoder e;
  e.put_u8(kFrameData);
  e.put_varint(static_cast<std::uint64_t>(msg.src));
  e.put_varint(static_cast<std::uint64_t>(msg.dst));
  e.put_varint(static_cast<std::uint32_t>(msg.type));
  e.put_varint(msg.wire_words);
  std::vector<std::uint8_t> body = e.take();
  body.insert(body.end(), bytes->begin(), bytes->end());
  wire::append_frame(conn->outbuf, body);
  if (!flush_conn(*conn)) {
    ++c.dropped;
    drop_outgoing(c, msg.dst);
  }
}

LiveTransport::Conn* LiveTransport::outgoing_conn(NodeCtx& c, ProcessId dst) {
  auto it = c.outgoing.find(dst);
  if (it != c.outgoing.end()) {
    return it->second.get();
  }
  if (Clock::now() < c.peer_down[idx(dst)]) {
    return nullptr;  // cooling down; drop instead of re-dialing
  }
  const SockAddr& addr = nodes_[idx(dst)]->addr;
  Fd fd;
  auto backoff = cfg_.connect_backoff;
  for (int attempt = 0;; ++attempt) {
    fd = connect_to(addr);
    if (fd.valid() || attempt >= cfg_.connect_retries) {
      break;
    }
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
  if (!fd.valid()) {
    c.peer_down[idx(dst)] = Clock::now() + cfg_.peer_down_cooldown;
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = std::move(fd);
  conn->peer = dst;
  wire::Encoder e;
  e.put_u8(kFrameHello);
  for (const std::uint8_t m : kMagic) {
    e.put_u8(m);
  }
  e.put_varint(kLiveProtocolVersion);
  e.put_varint(static_cast<std::uint64_t>(c.id));
  e.put_varint(nodes_.size());
  wire::append_frame(conn->outbuf, e.bytes());
  Conn* p = conn.get();
  c.outgoing.emplace(dst, std::move(conn));
  return p;
}

bool LiveTransport::flush_conn(Conn& conn) {
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t k =
        ::send(conn.fd.get(), conn.outbuf.data() + conn.out_pos,
               conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (k > 0) {
      conn.out_pos += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // kernel buffer full; POLLOUT resumes the flush
    }
    if (k < 0 && errno == EINTR) {
      continue;
    }
    return false;  // broken pipe / reset: the peer is gone
  }
  conn.outbuf.clear();
  conn.out_pos = 0;
  return true;
}

void LiveTransport::drop_outgoing(NodeCtx& c, ProcessId peer) {
  c.outgoing.erase(peer);
  c.peer_down[idx(peer)] = Clock::now() + cfg_.peer_down_cooldown;
}

// ---- Receive path -----------------------------------------------------------

void LiveTransport::handle_payload(NodeCtx& c, Conn& conn,
                                   const std::vector<std::uint8_t>& payload) {
  wire::Decoder d(payload);
  const std::uint8_t kind = d.get_u8();
  if (kind == kFrameHello) {
    for (const std::uint8_t m : kMagic) {
      if (d.get_u8() != m) {
        throw wire::DecodeError("live: bad HELLO magic");
      }
    }
    if (d.get_varint() != kLiveProtocolVersion) {
      throw wire::DecodeError("live: protocol version mismatch");
    }
    const auto peer = static_cast<ProcessId>(d.get_varint());
    if (peer < 0 || idx(peer) >= nodes_.size()) {
      throw wire::DecodeError("live: HELLO from unknown peer");
    }
    if (d.get_varint() != nodes_.size()) {
      throw wire::DecodeError("live: HELLO cluster-size mismatch");
    }
    conn.peer = peer;
    conn.hello_seen = true;
    return;
  }
  if (kind != kFrameData || !conn.hello_seen) {
    throw wire::DecodeError("live: unexpected frame kind");
  }
  transport::Message m;
  m.src = static_cast<ProcessId>(d.get_varint());
  m.dst = static_cast<ProcessId>(d.get_varint());
  m.type = static_cast<int>(d.get_varint());
  m.wire_words = static_cast<std::size_t>(d.get_varint());
  if (m.dst != c.id) {
    throw wire::DecodeError("live: misrouted frame");
  }
  const std::size_t rest = d.remaining();
  std::vector<std::uint8_t> body(payload.end() -
                                     static_cast<std::ptrdiff_t>(rest),
                                 payload.end());
  m.wire_bytes = body.size();
  m.payload = std::move(body);
  m.sent_at = now();  // delivery stamp; the wire does not carry send time
  m.id = ++c.delivered;
  c.node->on_message(m);
}

// ---- Event loop -------------------------------------------------------------

void LiveTransport::node_loop(NodeCtx& c, const bool initial) {
  if (!initial) {
    {
      MutexLock lock(events_mutex_);
      revives_.push_back({c.id, now()});
    }
    if (c.on_revive) {
      c.on_revive();
    }
  } else {
    c.node->on_start();
  }
  for (;;) {
    // Control plane first: crash/stop beat everything else.
    std::deque<std::function<void()>> fns;
    bool crash_now = false;
    bool stop_now = false;
    {
      MutexLock lock(c.ctl_mutex);
      fns.swap(c.ctl);
      crash_now = c.crash_requested;
      stop_now = c.stop_requested;
    }
    if (crash_now) {
      do_crash(c);
      return;
    }
    for (auto& fn : fns) {
      fn();
    }
    if (stop_now) {
      c.alive.store(false, std::memory_order_release);
      shutdown_io(c);
      return;
    }
    fire_due_timers(c);
    loop_iteration(c);
  }
}

void LiveTransport::loop_iteration(NodeCtx& c) {
  struct Slot {
    enum class What { kWake, kListener, kInbound, kOutgoing } what;
    std::size_t index = 0;    // inbound index
    ProcessId peer = kNoProcess;  // outgoing peer
  };
  std::vector<pollfd> pfds;
  std::vector<Slot> slots;

  pfds.push_back({c.wake_read.get(), POLLIN, 0});
  slots.push_back({Slot::What::kWake, 0, kNoProcess});
  if (c.listener.valid()) {
    pfds.push_back({c.listener.get(), POLLIN, 0});
    slots.push_back({Slot::What::kListener, 0, kNoProcess});
  }
  for (std::size_t i = 0; i < c.inbound.size(); ++i) {
    pfds.push_back({c.inbound[i]->fd.get(), POLLIN, 0});
    slots.push_back({Slot::What::kInbound, i, kNoProcess});
  }
  for (const auto& [peer, conn] : c.outgoing) {
    short ev = POLLIN;  // peers never send here, but we must see the close
    if (conn->out_pos < conn->outbuf.size()) {
      ev = static_cast<short>(ev | POLLOUT);
    }
    pfds.push_back({conn->fd.get(), ev, 0});
    slots.push_back({Slot::What::kOutgoing, 0, peer});
  }

  // Sleep until the next timer (capped; the wake pipe cuts it short).
  int timeout_ms = 100;
  if (!c.timers.empty()) {
    Clock::time_point next = c.timers.begin()->second.due;
    for (const auto& [tid, rec] : c.timers) {
      next = std::min(next, rec.due);
    }
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        next - Clock::now());
    timeout_ms = static_cast<int>(
        std::clamp<std::int64_t>(wait.count(), 0, timeout_ms));
  }
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) {
      return;
    }
    throw TransportError("poll: " + std::system_category().message(errno));
  }

  std::vector<std::size_t> dead_inbound;
  std::vector<ProcessId> dead_outgoing;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const short re = pfds[i].revents;
    if (re == 0) {
      continue;
    }
    const Slot& slot = slots[i];
    switch (slot.what) {
      case Slot::What::kWake: {
        std::uint8_t buf[64];
        while (::read(c.wake_read.get(), buf, sizeof(buf)) > 0) {
        }
        break;
      }
      case Slot::What::kListener: {
        for (;;) {
          Fd nc = accept_conn(c.listener);
          if (!nc.valid()) {
            break;
          }
          auto conn = std::make_unique<Conn>();
          conn->fd = std::move(nc);
          c.inbound.push_back(std::move(conn));
          ++c.accepted;
        }
        break;
      }
      case Slot::What::kInbound: {
        Conn& conn = *c.inbound[slot.index];
        const ssize_t k =
            ::read(conn.fd.get(), c.read_buf.data(), c.read_buf.size());
        if (k > 0) {
          try {
            conn.reader.feed(std::span<const std::uint8_t>(
                c.read_buf.data(), static_cast<std::size_t>(k)));
            while (auto p = conn.reader.next()) {
              handle_payload(c, conn, *p);
            }
          } catch (const wire::FrameError&) {
            ++c.frame_errors;
            dead_inbound.push_back(slot.index);
          } catch (const wire::DecodeError&) {
            ++c.frame_errors;
            dead_inbound.push_back(slot.index);
          }
        } else if (k == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                              errno != EINTR)) {
          dead_inbound.push_back(slot.index);  // peer closed (crash or stop)
        }
        break;
      }
      case Slot::What::kOutgoing: {
        // The send path may have dropped this connection while we were
        // handling an earlier slot; re-resolve by peer id.
        auto it = c.outgoing.find(slot.peer);
        if (it == c.outgoing.end()) {
          break;
        }
        Conn& conn = *it->second;
        bool broken = false;
        if ((re & POLLOUT) != 0 && !flush_conn(conn)) {
          ++c.dropped;  // whatever was still queued is lost
          broken = true;
        }
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && !broken) {
          const ssize_t k =
              ::read(conn.fd.get(), c.read_buf.data(), c.read_buf.size());
          if (k == 0 || (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR)) {
            broken = true;  // receive-side close: the peer is gone
          }
          // Any actual bytes on a send-only connection are ignored.
        }
        if (broken) {
          dead_outgoing.push_back(slot.peer);
        }
        break;
      }
    }
  }
  for (const ProcessId peer : dead_outgoing) {
    drop_outgoing(c, peer);
  }
  if (!dead_inbound.empty()) {
    std::sort(dead_inbound.begin(), dead_inbound.end(),
              std::greater<std::size_t>());
    for (const std::size_t i : dead_inbound) {
      c.inbound.erase(c.inbound.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void LiveTransport::do_crash(NodeCtx& c) {
  {
    MutexLock lock(events_mutex_);
    crashes_.push_back({c.id, now()});
  }
  c.node->on_crash();
  c.alive.store(false, std::memory_order_release);
  {
    // Abandon queued control functions: their promises (if any) break,
    // which run_on_node_sync reports as failure.
    MutexLock lock(c.ctl_mutex);
    c.ctl.clear();
  }
  shutdown_io(c);
}

void LiveTransport::shutdown_io(NodeCtx& c) {
  c.inbound.clear();
  c.outgoing.clear();
  c.timers.clear();
  c.listener.reset();
}

}  // namespace hpd::rt
