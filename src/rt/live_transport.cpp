#include "rt/live_transport.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <set>
#include <sys/socket.h>
#include <system_error>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace hpd::rt {

namespace {

using Clock = std::chrono::steady_clock;

// Frame payload kinds. Every frame starts with one of these bytes.
constexpr std::uint8_t kFrameHello = 1;
constexpr std::uint8_t kFrameData = 2;
constexpr std::uint8_t kFrameAck = 3;

constexpr std::uint8_t kMagic[4] = {'H', 'P', 'D', 'L'};

/// Selective-ack list bound per ACK frame; the cumulative ack carries the
/// rest across subsequent ACKs.
constexpr std::size_t kMaxSacks = 64;

/// Bound on chaos-delayed frames buffered per node. Overflow drops the
/// delayed copy — the retransmit path recovers the original.
constexpr std::size_t kMaxDelayed = 4096;

}  // namespace

// ---- Internal state ---------------------------------------------------------

/// One stream connection. Outgoing connections (keyed by peer in
/// NodeCtx::outgoing) only ever send; inbound connections only receive.
struct LiveTransport::Conn {
  Fd fd;
  wire::FrameReader reader;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_pos = 0;
  ProcessId peer = kNoProcess;
  bool hello_seen = false;
};

struct LiveTransport::NodeCtx {
  ProcessId id = kNoProcess;
  transport::Node* node = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::function<void()> on_revive;
  LiveEndpoint endpoint;

  SockAddr addr;  ///< fixed at start(); stable across crash/revive
  Fd listener;
  std::thread thread;
  std::atomic<bool> alive{false};

  // Control plane: any thread -> loop thread.
  Mutex ctl_mutex;
  std::deque<std::function<void()>> ctl HPD_GUARDED_BY(ctl_mutex);
  bool crash_requested HPD_GUARDED_BY(ctl_mutex) = false;
  bool stop_requested HPD_GUARDED_BY(ctl_mutex) = false;
  Fd wake_read;
  Fd wake_write;

  // ---- Loop-thread-only state ----------------------------------------------
  std::vector<std::unique_ptr<Conn>> inbound;
  std::map<ProcessId, std::unique_ptr<Conn>> outgoing;

  struct TimerRec {
    int tag = 0;
    bool periodic = false;
    Clock::time_point due;
    Clock::duration period{};
  };
  std::map<transport::TimerId, TimerRec> timers;
  transport::TimerId next_timer = 1;

  /// Per-peer re-dial cooldown after a failed connect / broken pipe.
  /// Expired early by observe_peer() when the peer shows signs of life.
  std::vector<Clock::time_point> peer_down;

  std::vector<std::uint8_t> read_buf;

  // ---- Reliable-delivery session state (loop-thread-only; `epoch` is
  // bumped by revive() on the driver thread, but only while this node's
  // loop thread is joined, which is the required happens-before edge) -------
  std::uint64_t epoch = 1;

  struct Pending {
    std::vector<std::uint8_t> body;  ///< encoded DATA payload (unframed)
    Clock::time_point next_retx;
    Clock::duration backoff{};
    int attempts = 0;            ///< transmissions performed so far
    std::uint64_t dst_epoch = 0; ///< destination incarnation targeted
  };
  struct PeerSend {
    SeqNum next_seq = 1;
    std::map<SeqNum, Pending> unacked;
  };
  /// Receive window for one sender: `epoch` is the sender incarnation the
  /// sequence space belongs to; everything <= cum plus the `above` set has
  /// been delivered.
  struct PeerRecv {
    std::uint64_t epoch = 0;
    SeqNum cum = 0;
    std::set<SeqNum> above;
  };
  std::vector<PeerSend> peer_send;
  std::vector<PeerRecv> peer_recv;
  /// Last observed incarnation of each peer (starts at 1, monotone).
  std::vector<std::uint64_t> peer_epoch;

  struct DelayedFrame {
    Clock::time_point due;
    ProcessId dst = kNoProcess;
    std::vector<std::uint8_t> framed;
  };
  std::vector<DelayedFrame> delayed;

  /// Peers owed an ACK after this loop turn's deliveries (coalesced).
  std::set<ProcessId> ack_pending;
  /// Peers with freshly surfaced losses; on_peer_unreachable runs at the
  /// top of the next service_reliability() turn, outside the scans and
  /// dispatches that discovered the losses.
  std::set<ProcessId> unreachable_pending;
  /// Earliest retransmit / delayed-frame deadline (poll timeout hint).
  Clock::time_point reliability_due = Clock::time_point::max();
  /// Retransmit jitter only — never consulted for chaos decisions.
  Rng rng;

  std::vector<ChaosEvent> chaos_log;

  // Counters: written by the loop thread, read after it has been joined.
  // tc.msgs_delivered doubles as the per-node delivery id source.
  TransportCounters tc;
  std::uint64_t accepted = 0;
};

// ---- LiveEndpoint -----------------------------------------------------------

SimTime LiveEndpoint::now() const { return transport_->now(); }

void LiveEndpoint::send(transport::Message msg) {
  HPD_REQUIRE(msg.src == self_,
              "LiveEndpoint::send: src must be the owning node");
  transport_->do_send(transport_->ctx(self_), std::move(msg));
}

transport::TimerId LiveEndpoint::set_timer(ProcessId id, int tag,
                                           SimTime delay, bool periodic,
                                           SimTime period) {
  HPD_REQUIRE(id == self_,
              "LiveEndpoint::set_timer: timers belong to the owning node");
  return transport_->do_set_timer(transport_->ctx(self_), tag, delay, periodic,
                                  period);
}

void LiveEndpoint::cancel_timer(transport::TimerId id) {
  transport_->do_cancel_timer(transport_->ctx(self_), id);
}

bool LiveEndpoint::alive(ProcessId id) const { return transport_->alive(id); }

// ---- Construction / registration -------------------------------------------

LiveTransport::LiveTransport(std::size_t n, LiveConfig cfg)
    : cfg_(std::move(cfg)), start_(Clock::now()) {
  HPD_REQUIRE(n >= 1, "LiveTransport: empty system");
  HPD_REQUIRE(cfg_.time_scale > 0.0, "LiveTransport: time_scale must be > 0");
  HPD_REQUIRE(cfg_.retx_max_attempts >= 1,
              "LiveTransport: retx_max_attempts must be >= 1");
  HPD_REQUIRE(cfg_.retx_queue_cap >= 1,
              "LiveTransport: retx_queue_cap must be >= 1");
  if (cfg_.socket_kind == SockAddr::Kind::kUnix && cfg_.socket_dir.empty()) {
    socket_dir_ = make_socket_dir();
    own_socket_dir_ = true;
  } else {
    socket_dir_ = cfg_.socket_dir;
  }
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto c = std::make_unique<NodeCtx>();
    c->id = static_cast<ProcessId>(i);
    c->endpoint.transport_ = this;
    c->endpoint.self_ = c->id;
    c->addr.kind = cfg_.socket_kind;
    if (cfg_.socket_kind == SockAddr::Kind::kUnix) {
      c->addr.path = socket_dir_ + "/node-" + std::to_string(i) + ".sock";
    }
    c->peer_down.resize(n);
    c->peer_send.resize(n);
    c->peer_recv.resize(n);
    c->peer_epoch.assign(n, 1);
    c->rng.reseed(0x9e3779b97f4a7c15ULL ^ (i * 0x100000001b3ULL));
    c->read_buf.resize(cfg_.read_chunk);
    int pipefd[2];
    if (::pipe(pipefd) < 0) {
      throw TransportError("pipe: wake channel");
    }
    c->wake_read = Fd(pipefd[0]);
    c->wake_write = Fd(pipefd[1]);
    set_nonblocking(c->wake_read.get());
    set_nonblocking(c->wake_write.get());
    nodes_.push_back(std::move(c));
  }
}

LiveTransport::~LiveTransport() {
  stop();
  if (own_socket_dir_) {
    remove_socket_dir(socket_dir_);
  }
}

LiveTransport::NodeCtx& LiveTransport::ctx(ProcessId id) {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "LiveTransport: unknown node id");
  return *nodes_[idx(id)];
}

const LiveTransport::NodeCtx& LiveTransport::ctx(ProcessId id) const {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "LiveTransport: unknown node id");
  return *nodes_[idx(id)];
}

void LiveTransport::set_link_filter(
    std::function<bool(ProcessId, ProcessId)> link_ok) {
  HPD_REQUIRE(!started_, "LiveTransport: link filter must precede start()");
  link_ok_ = std::move(link_ok);
}

void LiveTransport::register_node(ProcessId id, transport::Node& node,
                                  MetricsRegistry* metrics,
                                  std::function<void()> on_revive) {
  HPD_REQUIRE(!started_, "LiveTransport: register_node must precede start()");
  NodeCtx& c = ctx(id);
  c.node = &node;
  c.metrics = metrics;
  c.on_revive = std::move(on_revive);
}

transport::Endpoint& LiveTransport::endpoint(ProcessId id) {
  return ctx(id).endpoint;
}

// ---- Lifecycle --------------------------------------------------------------

void LiveTransport::start() {
  HPD_REQUIRE(!started_, "LiveTransport: started twice");
  for (auto& c : nodes_) {
    HPD_REQUIRE(c->node != nullptr, "LiveTransport: node not registered");
    // Binding every listener before any thread runs means a refused connect
    // can only ever mean "peer crashed".
    c->listener = listen_on(c->addr);
  }
  start_ = Clock::now();
  started_ = true;
  for (auto& c : nodes_) {
    c->alive.store(true, std::memory_order_release);
  }
  for (auto& c : nodes_) {
    NodeCtx* p = c.get();
    c->thread = std::thread([this, p] { node_loop(*p, /*initial=*/true); });
  }
}

void LiveTransport::stop() {
  for (auto& c : nodes_) {
    {
      MutexLock lock(c->ctl_mutex);
      c->stop_requested = true;
    }
    wake(*c);
  }
  for (auto& c : nodes_) {
    if (c->thread.joinable()) {
      c->thread.join();
    }
  }
}

void LiveTransport::crash(ProcessId id) {
  NodeCtx& c = ctx(id);
  if (!c.alive.load(std::memory_order_acquire)) {
    return;
  }
  {
    MutexLock lock(c.ctl_mutex);
    c.crash_requested = true;
  }
  wake(c);
  if (c.thread.joinable()) {
    c.thread.join();
  }
}

void LiveTransport::revive(ProcessId id) {
  NodeCtx& c = ctx(id);
  HPD_REQUIRE(started_, "LiveTransport: revive before start");
  HPD_REQUIRE(!c.alive.load(std::memory_order_acquire),
              "LiveTransport: revive of a live node");
  if (c.thread.joinable()) {
    c.thread.join();
  }
  {
    MutexLock lock(c.ctl_mutex);
    c.crash_requested = false;
    c.stop_requested = false;
    c.ctl.clear();
  }
  // New incarnation: a fresh session epoch makes every live node reject
  // DATA that was addressed to the previous life of this id.
  c.epoch += 1;
  c.listener = listen_on(c.addr);  // same path / port as before the crash
  c.alive.store(true, std::memory_order_release);
  NodeCtx* p = &c;
  c.thread = std::thread([this, p] { node_loop(*p, /*initial=*/false); });
  // Tell everyone the id is back with a new incarnation. This expires
  // re-dial cooldowns immediately (a cooldown that started just before the
  // revive must not keep suppressing sends to a now-alive peer) and purges
  // (surfaces) retransmit-queue entries addressed to the dead incarnation.
  const ProcessId rid = c.id;
  const std::uint64_t e = c.epoch;
  for (auto& other : nodes_) {
    if (other->id == rid) {
      continue;
    }
    NodeCtx* oc = other.get();
    post(other->id, [this, oc, rid, e] { observe_peer(*oc, rid, e); });
  }
}

bool LiveTransport::alive(ProcessId id) const {
  return ctx(id).alive.load(std::memory_order_acquire);
}

std::size_t LiveTransport::alive_count() const {
  std::size_t k = 0;
  for (const auto& c : nodes_) {
    if (c->alive.load(std::memory_order_acquire)) {
      ++k;
    }
  }
  return k;
}

// ---- Time -------------------------------------------------------------------

SimTime LiveTransport::now() const {
  const std::chrono::duration<double> el = Clock::now() - start_;
  return el.count() / cfg_.time_scale;
}

Clock::duration LiveTransport::to_real(SimTime d) const {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(0.0, d) * cfg_.time_scale));
}

void LiveTransport::sleep_until(SimTime t) const {
  std::this_thread::sleep_until(start_ + to_real(t));
}

// ---- Control plane ----------------------------------------------------------

void LiveTransport::wake(NodeCtx& c) {
  const std::uint8_t b = 0;
  // EAGAIN means a wake byte is already pending, which is just as good.
  [[maybe_unused]] const ssize_t k = ::write(c.wake_write.get(), &b, 1);
}

bool LiveTransport::post(ProcessId id, std::function<void()> fn) {
  NodeCtx& c = ctx(id);
  {
    MutexLock lock(c.ctl_mutex);
    if (!c.alive.load(std::memory_order_acquire) || c.crash_requested ||
        c.stop_requested) {
      return false;
    }
    c.ctl.push_back(std::move(fn));
  }
  wake(c);
  return true;
}

bool LiveTransport::run_on_node_sync(ProcessId id, std::function<void()> fn) {
  auto prom = std::make_shared<std::promise<void>>();
  std::future<void> done = prom->get_future();
  const bool posted = post(id, [prom, fn = std::move(fn)] {
    fn();
    prom->set_value();
  });
  if (!posted) {
    return false;
  }
  try {
    done.get();
    return true;
  } catch (const std::future_error&) {
    return false;  // the node crashed before running fn (promise abandoned)
  }
}

std::vector<LifeEvent> LiveTransport::crash_events() const {
  MutexLock lock(events_mutex_);
  return crashes_;
}

std::vector<LifeEvent> LiveTransport::revive_events() const {
  MutexLock lock(events_mutex_);
  return revives_;
}

// ---- Diagnostics ------------------------------------------------------------

std::uint64_t LiveTransport::delivered_messages() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->tc.msgs_delivered;
  }
  return k;
}

std::uint64_t LiveTransport::dropped_messages() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->tc.msgs_dropped;
  }
  return k;
}

std::uint64_t LiveTransport::frame_errors() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->tc.frame_errors;
  }
  return k;
}

std::uint64_t LiveTransport::connections_accepted() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->accepted;
  }
  return k;
}

TransportCounters LiveTransport::stats() const {
  TransportCounters t;
  for (const auto& c : nodes_) {
    t.add(c->tc);
  }
  return t;
}

std::vector<ChaosEvent> LiveTransport::chaos_events() const {
  std::vector<ChaosEvent> all;
  for (const auto& c : nodes_) {
    all.insert(all.end(), c->chaos_log.begin(), c->chaos_log.end());
  }
  canonical_sort(all);
  return all;
}

// ---- Timers -----------------------------------------------------------------

transport::TimerId LiveTransport::do_set_timer(NodeCtx& c, int tag,
                                               SimTime delay, bool periodic,
                                               SimTime period) {
  HPD_REQUIRE(!periodic || period > 0.0,
              "LiveTransport: periodic timer needs a positive period");
  const transport::TimerId tid = c.next_timer++;
  NodeCtx::TimerRec rec;
  rec.tag = tag;
  rec.periodic = periodic;
  rec.due = Clock::now() + to_real(delay);
  rec.period = to_real(period);
  c.timers.emplace(tid, rec);
  return tid;
}

void LiveTransport::do_cancel_timer(NodeCtx& c, transport::TimerId id) {
  c.timers.erase(id);
}

void LiveTransport::fire_due_timers(NodeCtx& c) {
  const Clock::time_point t = Clock::now();
  std::vector<transport::TimerId> due;
  for (const auto& [tid, rec] : c.timers) {
    if (rec.due <= t) {
      due.push_back(tid);
    }
  }
  for (const transport::TimerId tid : due) {
    auto it = c.timers.find(tid);
    if (it == c.timers.end()) {
      continue;  // cancelled by an earlier callback this round
    }
    const int tag = it->second.tag;
    if (it->second.periodic) {
      it->second.due = t + it->second.period;
    } else {
      c.timers.erase(it);
    }
    c.node->on_timer(tag);
  }
}

// ---- Send path (runs on the sender's loop thread) ---------------------------

void LiveTransport::do_send(NodeCtx& c, transport::Message msg) {
  if (!c.alive.load(std::memory_order_relaxed)) {
    ++c.tc.msgs_dropped;
    return;
  }
  const auto* bytes = std::any_cast<std::vector<std::uint8_t>>(&msg.payload);
  HPD_REQUIRE(bytes != nullptr,
              "LiveTransport: payloads must be wire-encoded bytes "
              "(run with wire_encoding enabled)");
  if (msg.dst < 0 || idx(msg.dst) >= nodes_.size()) {
    ++c.tc.msgs_dropped;
    return;
  }
  if (link_ok_ && !link_ok_(msg.src, msg.dst)) {
    ++c.tc.msgs_dropped;
    return;
  }
  msg.wire_bytes = bytes->size();
  msg.sent_at = now();
  if (c.metrics != nullptr) {
    c.metrics->on_send(msg.src, msg.type, msg.wire_words, msg.wire_bytes);
  }
  ++c.tc.reliable_sent;
  if (msg.dst == c.id) {
    // Loopback to self: deliver inline on this (the correct) thread.
    msg.id = ++c.tc.msgs_delivered;
    c.node->on_message(msg);
    return;
  }
  NodeCtx::PeerSend& ps = c.peer_send[idx(msg.dst)];
  if (ps.unacked.size() >= cfg_.retx_queue_cap) {
    // Bounded queue: surface the oldest entry to make room. The peer has
    // been unresponsive for the whole queue's worth of traffic.
    ps.unacked.erase(ps.unacked.begin());
    ++c.tc.surfaced_losses;
    c.unreachable_pending.insert(msg.dst);
  }
  const SeqNum seq = ps.next_seq++;
  NodeCtx::Pending p;
  p.dst_epoch = c.peer_epoch[idx(msg.dst)];
  {
    wire::Encoder e;
    e.put_u8(kFrameData);
    e.put_varint(static_cast<std::uint64_t>(msg.src));
    e.put_varint(static_cast<std::uint64_t>(msg.dst));
    e.put_varint(c.epoch);
    e.put_varint(p.dst_epoch);
    e.put_varint(seq);
    e.put_varint(static_cast<std::uint32_t>(msg.type));
    e.put_varint(msg.wire_words);
    p.body = e.take();
    p.body.insert(p.body.end(), bytes->begin(), bytes->end());
  }
  transmit(c, msg.dst, seq, /*attempt=*/0, p.body);
  p.attempts = 1;
  p.backoff = to_real(cfg_.retx_initial);
  p.next_retx = Clock::now() + jittered(c, p.backoff);
  c.reliability_due = std::min(c.reliability_due, p.next_retx);
  ps.unacked.emplace(seq, std::move(p));
}

void LiveTransport::transmit(NodeCtx& c, ProcessId dst, SeqNum seq,
                             int attempt,
                             const std::vector<std::uint8_t>& body) {
  const ChaosConfig& ch = cfg_.chaos;
  ChaosDecision d;
  if (ch.any_faults()) {
    const SimTime t = now();
    if (ch.active_at(t)) {
      if (partitioned(ch, c.id, dst, t)) {
        c.chaos_log.push_back(
            {ChaosEvent::Kind::kPartition, c.id, dst, seq, attempt});
        ++c.tc.chaos_events;
        return;  // swallowed; the retransmit path tries again later
      }
      d = plan_frame(ch, c.id, dst, seq, attempt);
    }
  }
  if (d.reset) {
    c.chaos_log.push_back({ChaosEvent::Kind::kReset, c.id, dst, seq, attempt});
    ++c.tc.chaos_events;
    ++c.tc.conn_resets;
    // The peer is healthy, only the connection dies: erase without the
    // peer-down cooldown so the next transmission re-dials immediately.
    c.outgoing.erase(dst);
    return;
  }
  if (d.drop) {
    c.chaos_log.push_back({ChaosEvent::Kind::kDrop, c.id, dst, seq, attempt});
    ++c.tc.chaos_events;
    return;
  }
  std::vector<std::uint8_t> framed;
  wire::append_frame(framed, body);
  if (d.corrupt) {
    c.chaos_log.push_back(
        {ChaosEvent::Kind::kCorrupt, c.id, dst, seq, attempt});
    ++c.tc.chaos_events;
    framed[corrupt_offset(ch, c.id, dst, seq, attempt, framed.size())] ^= 0x20;
  }
  if (d.copies > 1) {
    c.chaos_log.push_back(
        {ChaosEvent::Kind::kDuplicate, c.id, dst, seq, attempt});
    ++c.tc.chaos_events;
  }
  if (d.delay > 0.0) {
    c.chaos_log.push_back({ChaosEvent::Kind::kDelay, c.id, dst, seq, attempt});
    ++c.tc.chaos_events;
    const Clock::time_point due = Clock::now() + to_real(d.delay);
    for (int k = 0; k < d.copies; ++k) {
      if (c.delayed.size() >= kMaxDelayed) {
        break;  // delayed copy lost; retransmission recovers the original
      }
      c.delayed.push_back({due, dst, framed});
    }
    c.reliability_due = std::min(c.reliability_due, due);
    return;
  }
  for (int k = 0; k < d.copies; ++k) {
    write_framed(c, dst, framed);
  }
}

void LiveTransport::write_framed(NodeCtx& c, ProcessId dst,
                                 const std::vector<std::uint8_t>& framed) {
  Conn* conn = outgoing_conn(c, dst);
  if (conn == nullptr) {
    return;  // cooling down or unreachable; the retransmit path recovers
  }
  conn->outbuf.insert(conn->outbuf.end(), framed.begin(), framed.end());
  if (!flush_conn(*conn)) {
    ++c.tc.conn_resets;
    drop_outgoing(c, dst);
  }
}

LiveTransport::Conn* LiveTransport::outgoing_conn(NodeCtx& c, ProcessId dst) {
  auto it = c.outgoing.find(dst);
  if (it != c.outgoing.end()) {
    return it->second.get();
  }
  if (Clock::now() < c.peer_down[idx(dst)]) {
    return nullptr;  // cooling down; skip the dial until it lapses
  }
  const SockAddr& addr = nodes_[idx(dst)]->addr;
  Fd fd;
  auto backoff = cfg_.connect_backoff;
  for (int attempt = 0;; ++attempt) {
    fd = connect_to(addr);
    if (fd.valid() || attempt >= cfg_.connect_retries) {
      break;
    }
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
  if (!fd.valid()) {
    c.peer_down[idx(dst)] = Clock::now() + cfg_.peer_down_cooldown;
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = std::move(fd);
  conn->peer = dst;
  wire::Encoder e;
  e.put_u8(kFrameHello);
  for (const std::uint8_t m : kMagic) {
    e.put_u8(m);
  }
  e.put_varint(kLiveProtocolVersion);
  e.put_varint(static_cast<std::uint64_t>(c.id));
  e.put_varint(nodes_.size());
  e.put_varint(c.epoch);
  wire::append_frame(conn->outbuf, e.bytes());
  Conn* p = conn.get();
  c.outgoing.emplace(dst, std::move(conn));
  return p;
}

bool LiveTransport::flush_conn(Conn& conn) {
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t k =
        ::send(conn.fd.get(), conn.outbuf.data() + conn.out_pos,
               conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (k > 0) {
      conn.out_pos += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // kernel buffer full; POLLOUT resumes the flush
    }
    if (k < 0 && errno == EINTR) {
      continue;
    }
    return false;  // broken pipe / reset: the peer is gone
  }
  conn.outbuf.clear();
  conn.out_pos = 0;
  return true;
}

void LiveTransport::drop_outgoing(NodeCtx& c, ProcessId peer) {
  c.outgoing.erase(peer);
  c.peer_down[idx(peer)] = Clock::now() + cfg_.peer_down_cooldown;
}

// ---- Reliability (runs on the sender's loop thread) -------------------------

Clock::duration LiveTransport::jittered(NodeCtx& c, Clock::duration d) {
  const double f = 1.0 + cfg_.retx_jitter * c.rng.uniform01();
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          std::chrono::duration<double>(d).count() * f));
}

void LiveTransport::observe_peer(NodeCtx& c, ProcessId peer,
                                 std::uint64_t epoch) {
  if (peer < 0 || idx(peer) >= nodes_.size() || peer == c.id) {
    return;
  }
  // Signs of life: whatever cooldown was pending, the peer answers now.
  c.peer_down[idx(peer)] = Clock::time_point{};
  if (epoch <= c.peer_epoch[idx(peer)]) {
    return;
  }
  c.peer_epoch[idx(peer)] = epoch;
  // Queued messages addressed to the dead incarnation must not reach the
  // new one (it would be replaying another life's conversation); purge them
  // and surface the loss so the protocol stack can recover (ft::reattach).
  NodeCtx::PeerSend& ps = c.peer_send[idx(peer)];
  std::size_t purged = 0;
  for (auto it = ps.unacked.begin(); it != ps.unacked.end();) {
    if (it->second.dst_epoch < epoch) {
      it = ps.unacked.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  if (purged != 0) {
    c.tc.surfaced_losses += purged;
    c.unreachable_pending.insert(peer);
  }
  // Any open connection still points at the dead incarnation's socket;
  // drop it (no cooldown) so the next transmission re-dials the new one.
  c.outgoing.erase(peer);
}

void LiveTransport::service_reliability(NodeCtx& c) {
  // Surface losses discovered since the last turn. Deferred to here so the
  // upcall (which may send, e.g. reattach probes) never runs inside the
  // scan or dispatch that found the loss.
  if (!c.unreachable_pending.empty()) {
    std::vector<ProcessId> peers(c.unreachable_pending.begin(),
                                 c.unreachable_pending.end());
    c.unreachable_pending.clear();
    for (const ProcessId peer : peers) {
      c.node->on_peer_unreachable(peer);
    }
  }
  const Clock::time_point t = Clock::now();
  c.reliability_due = Clock::time_point::max();
  // Release chaos-delayed frames that have matured.
  for (std::size_t i = 0; i < c.delayed.size();) {
    if (c.delayed[i].due <= t) {
      const ProcessId dst = c.delayed[i].dst;
      std::vector<std::uint8_t> framed = std::move(c.delayed[i].framed);
      c.delayed.erase(c.delayed.begin() + static_cast<std::ptrdiff_t>(i));
      write_framed(c, dst, framed);
    } else {
      c.reliability_due = std::min(c.reliability_due, c.delayed[i].due);
      ++i;
    }
  }
  // Retransmit scan: due entries either go out again (backoff doubled) or,
  // once the budget is spent, are surfaced.
  for (std::size_t pi = 0; pi < c.peer_send.size(); ++pi) {
    const ProcessId peer = static_cast<ProcessId>(pi);
    NodeCtx::PeerSend& ps = c.peer_send[pi];
    for (auto it = ps.unacked.begin(); it != ps.unacked.end();) {
      NodeCtx::Pending& p = it->second;
      if (p.next_retx > t) {
        c.reliability_due = std::min(c.reliability_due, p.next_retx);
        ++it;
        continue;
      }
      if (p.attempts >= cfg_.retx_max_attempts) {
        ++c.tc.surfaced_losses;
        c.unreachable_pending.insert(peer);
        it = ps.unacked.erase(it);
        continue;
      }
      ++c.tc.retransmits;
      transmit(c, peer, it->first, p.attempts, p.body);
      ++p.attempts;
      p.backoff = std::min(p.backoff * 2, to_real(cfg_.retx_max_backoff));
      p.next_retx = t + jittered(c, p.backoff);
      c.reliability_due = std::min(c.reliability_due, p.next_retx);
      ++it;
    }
  }
}

void LiveTransport::flush_pending_acks(NodeCtx& c) {
  if (c.ack_pending.empty()) {
    return;
  }
  std::set<ProcessId> peers;
  peers.swap(c.ack_pending);
  for (const ProcessId peer : peers) {
    send_ack(c, peer);
  }
}

void LiveTransport::send_ack(NodeCtx& c, ProcessId peer) {
  const NodeCtx::PeerRecv& pr = c.peer_recv[idx(peer)];
  if (pr.epoch == 0) {
    return;  // nothing delivered from this peer yet
  }
  wire::Encoder e;
  e.put_u8(kFrameAck);
  e.put_varint(static_cast<std::uint64_t>(c.id));
  e.put_varint(static_cast<std::uint64_t>(peer));
  e.put_varint(c.epoch);
  e.put_varint(pr.epoch);
  e.put_varint(pr.cum);
  const std::size_t k = std::min(pr.above.size(), kMaxSacks);
  e.put_varint(k);
  std::size_t i = 0;
  for (const SeqNum s : pr.above) {
    if (i == k) {
      break;
    }
    e.put_varint(s);
    ++i;
  }
  std::vector<std::uint8_t> framed;
  wire::append_frame(framed, e.bytes());
  ++c.tc.acks_sent;
  // ACKs bypass transmit(): chaos never perturbs the control plane (see
  // rt/chaos.hpp). Loss is still possible via connection resets and is
  // recovered by the sender's retransmit, which re-triggers the ACK.
  write_framed(c, peer, framed);
}

// ---- Receive path -----------------------------------------------------------

void LiveTransport::handle_payload(NodeCtx& c, Conn& conn,
                                   const std::vector<std::uint8_t>& payload) {
  wire::Decoder d(payload);
  const std::uint8_t kind = d.get_u8();
  if (kind == kFrameHello) {
    for (const std::uint8_t m : kMagic) {
      if (d.get_u8() != m) {
        throw wire::DecodeError("live: bad HELLO magic");
      }
    }
    if (d.get_varint() != kLiveProtocolVersion) {
      throw wire::DecodeError("live: protocol version mismatch");
    }
    const auto peer = static_cast<ProcessId>(d.get_varint());
    if (peer < 0 || idx(peer) >= nodes_.size()) {
      throw wire::DecodeError("live: HELLO from unknown peer");
    }
    if (d.get_varint() != nodes_.size()) {
      throw wire::DecodeError("live: HELLO cluster-size mismatch");
    }
    const std::uint64_t peer_epoch = d.get_varint();
    conn.peer = peer;
    conn.hello_seen = true;
    observe_peer(c, peer, peer_epoch);
    return;
  }
  if (!conn.hello_seen) {
    throw wire::DecodeError("live: frame before HELLO");
  }
  if (kind == kFrameData) {
    handle_data(c, conn, d, payload);
    return;
  }
  if (kind == kFrameAck) {
    handle_ack(c, d);
    return;
  }
  throw wire::DecodeError("live: unexpected frame kind");
}

void LiveTransport::handle_data(NodeCtx& c, Conn& conn, wire::Decoder& d,
                                const std::vector<std::uint8_t>& payload) {
  (void)conn;
  transport::Message m;
  m.src = static_cast<ProcessId>(d.get_varint());
  m.dst = static_cast<ProcessId>(d.get_varint());
  const std::uint64_t src_epoch = d.get_varint();
  const std::uint64_t dst_epoch = d.get_varint();
  const SeqNum seq = d.get_varint();
  m.type = static_cast<int>(d.get_varint());
  m.wire_words = static_cast<std::size_t>(d.get_varint());
  if (m.dst != c.id) {
    throw wire::DecodeError("live: misrouted frame");
  }
  if (m.src < 0 || idx(m.src) >= nodes_.size()) {
    throw wire::DecodeError("live: DATA from unknown peer");
  }
  // The frame proves its sender is alive with `src_epoch`.
  observe_peer(c, m.src, src_epoch);
  if (dst_epoch != c.epoch) {
    // Addressed to a previous incarnation of this node: a stale
    // retransmission that must not leak into the new life. No ACK — the
    // sender purges and surfaces it when it observes the new epoch.
    ++c.tc.stale_rejected;
    return;
  }
  NodeCtx::PeerRecv& pr = c.peer_recv[idx(m.src)];
  if (src_epoch < pr.epoch) {
    ++c.tc.stale_rejected;  // late frame from a superseded sender life
    return;
  }
  if (src_epoch > pr.epoch) {
    pr = NodeCtx::PeerRecv{};  // new sender incarnation, new seq space
    pr.epoch = src_epoch;
  }
  if (seq <= pr.cum || pr.above.count(seq) != 0) {
    ++c.tc.dups_suppressed;
    c.ack_pending.insert(m.src);  // re-ack: the first ACK may have been lost
    return;
  }
  if (seq == pr.cum + 1) {
    ++pr.cum;
    while (!pr.above.empty() && *pr.above.begin() == pr.cum + 1) {
      ++pr.cum;
      pr.above.erase(pr.above.begin());
    }
  } else {
    pr.above.insert(seq);
  }
  c.ack_pending.insert(m.src);
  const std::size_t rest = d.remaining();
  std::vector<std::uint8_t> body(payload.end() -
                                     static_cast<std::ptrdiff_t>(rest),
                                 payload.end());
  m.wire_bytes = body.size();
  m.payload = std::move(body);
  m.sent_at = now();  // delivery stamp; the wire does not carry send time
  m.id = ++c.tc.msgs_delivered;
  c.node->on_message(m);
}

void LiveTransport::handle_ack(NodeCtx& c, wire::Decoder& d) {
  const auto acker = static_cast<ProcessId>(d.get_varint());
  const auto dst = static_cast<ProcessId>(d.get_varint());
  const std::uint64_t acker_epoch = d.get_varint();
  const std::uint64_t acked_epoch = d.get_varint();
  const SeqNum cum = d.get_varint();
  const std::uint64_t nsacks = d.get_varint();
  if (dst != c.id) {
    throw wire::DecodeError("live: misrouted ACK");
  }
  if (acker < 0 || idx(acker) >= nodes_.size()) {
    throw wire::DecodeError("live: ACK from unknown peer");
  }
  if (nsacks > kMaxSacks) {
    throw wire::DecodeError("live: oversized ACK");
  }
  observe_peer(c, acker, acker_epoch);
  NodeCtx::PeerSend& ps = c.peer_send[idx(acker)];
  for (std::uint64_t i = 0; i < nsacks; ++i) {
    const SeqNum s = d.get_varint();
    if (acked_epoch == c.epoch) {
      ps.unacked.erase(s);
    }
  }
  if (acked_epoch != c.epoch) {
    return;  // acknowledges a previous life's messages; nothing to release
  }
  ps.unacked.erase(ps.unacked.begin(), ps.unacked.upper_bound(cum));
}

// ---- Event loop -------------------------------------------------------------

void LiveTransport::node_loop(NodeCtx& c, const bool initial) {
  if (!initial) {
    {
      MutexLock lock(events_mutex_);
      revives_.push_back({c.id, now()});
    }
    if (c.on_revive) {
      c.on_revive();
    }
  } else {
    c.node->on_start();
  }
  for (;;) {
    // Control plane first: crash/stop beat everything else.
    std::deque<std::function<void()>> fns;
    bool crash_now = false;
    bool stop_now = false;
    {
      MutexLock lock(c.ctl_mutex);
      fns.swap(c.ctl);
      crash_now = c.crash_requested;
      stop_now = c.stop_requested;
    }
    if (crash_now) {
      do_crash(c);
      return;
    }
    for (auto& fn : fns) {
      fn();
    }
    if (stop_now) {
      c.alive.store(false, std::memory_order_release);
      shutdown_io(c);
      return;
    }
    fire_due_timers(c);
    service_reliability(c);
    loop_iteration(c);
  }
}

void LiveTransport::loop_iteration(NodeCtx& c) {
  struct Slot {
    enum class What { kWake, kListener, kInbound, kOutgoing } what;
    std::size_t index = 0;    // inbound index
    ProcessId peer = kNoProcess;  // outgoing peer
  };
  std::vector<pollfd> pfds;
  std::vector<Slot> slots;

  pfds.push_back({c.wake_read.get(), POLLIN, 0});
  slots.push_back({Slot::What::kWake, 0, kNoProcess});
  if (c.listener.valid()) {
    pfds.push_back({c.listener.get(), POLLIN, 0});
    slots.push_back({Slot::What::kListener, 0, kNoProcess});
  }
  for (std::size_t i = 0; i < c.inbound.size(); ++i) {
    pfds.push_back({c.inbound[i]->fd.get(), POLLIN, 0});
    slots.push_back({Slot::What::kInbound, i, kNoProcess});
  }
  for (const auto& [peer, conn] : c.outgoing) {
    short ev = POLLIN;  // peers never send here, but we must see the close
    if (conn->out_pos < conn->outbuf.size()) {
      ev = static_cast<short>(ev | POLLOUT);
    }
    pfds.push_back({conn->fd.get(), ev, 0});
    slots.push_back({Slot::What::kOutgoing, 0, peer});
  }

  // Sleep until the next timer or reliability deadline (capped; the wake
  // pipe cuts it short).
  int timeout_ms = 100;
  Clock::time_point next = c.reliability_due;
  for (const auto& [tid, rec] : c.timers) {
    next = std::min(next, rec.due);
  }
  if (next != Clock::time_point::max()) {
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        next - Clock::now());
    timeout_ms = static_cast<int>(
        std::clamp<std::int64_t>(wait.count(), 0, timeout_ms));
  }
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) {
      return;
    }
    throw TransportError("poll: " + std::system_category().message(errno));
  }

  std::vector<std::size_t> dead_inbound;
  std::vector<ProcessId> dead_outgoing;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const short re = pfds[i].revents;
    if (re == 0) {
      continue;
    }
    const Slot& slot = slots[i];
    switch (slot.what) {
      case Slot::What::kWake: {
        std::uint8_t buf[64];
        while (::read(c.wake_read.get(), buf, sizeof(buf)) > 0) {
        }
        break;
      }
      case Slot::What::kListener: {
        for (;;) {
          Fd nc = accept_conn(c.listener);
          if (!nc.valid()) {
            break;
          }
          auto conn = std::make_unique<Conn>();
          conn->fd = std::move(nc);
          c.inbound.push_back(std::move(conn));
          ++c.accepted;
        }
        break;
      }
      case Slot::What::kInbound: {
        Conn& conn = *c.inbound[slot.index];
        const ssize_t k =
            ::read(conn.fd.get(), c.read_buf.data(), c.read_buf.size());
        if (k > 0) {
          try {
            conn.reader.feed(std::span<const std::uint8_t>(
                c.read_buf.data(), static_cast<std::size_t>(k)));
            while (auto p = conn.reader.next()) {
              handle_payload(c, conn, *p);
            }
          } catch (const wire::FrameError&) {
            // The byte stream has lost sync: the only safe recovery is to
            // drop the connection and let the sender re-dial (its session
            // layer retransmits whatever the broken tail swallowed).
            ++c.tc.frame_errors;
            ++c.tc.conn_resets;
            dead_inbound.push_back(slot.index);
          } catch (const wire::DecodeError&) {
            ++c.tc.frame_errors;
            ++c.tc.conn_resets;
            dead_inbound.push_back(slot.index);
          }
        } else if (k == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                              errno != EINTR)) {
          dead_inbound.push_back(slot.index);  // peer closed (crash or stop)
        }
        break;
      }
      case Slot::What::kOutgoing: {
        // The send path may have dropped this connection while we were
        // handling an earlier slot; re-resolve by peer id.
        auto it = c.outgoing.find(slot.peer);
        if (it == c.outgoing.end()) {
          break;
        }
        Conn& conn = *it->second;
        bool broken = false;
        if ((re & POLLOUT) != 0 && !flush_conn(conn)) {
          broken = true;  // queued frames lost; retransmission recovers them
        }
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && !broken) {
          const ssize_t k =
              ::read(conn.fd.get(), c.read_buf.data(), c.read_buf.size());
          if (k == 0 || (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR)) {
            broken = true;  // receive-side close: the peer is gone
          }
          // Any actual bytes on a send-only connection are ignored.
        }
        if (broken) {
          dead_outgoing.push_back(slot.peer);
        }
        break;
      }
    }
  }
  for (const ProcessId peer : dead_outgoing) {
    ++c.tc.conn_resets;
    drop_outgoing(c, peer);
  }
  if (!dead_inbound.empty()) {
    std::sort(dead_inbound.begin(), dead_inbound.end(),
              std::greater<std::size_t>());
    for (const std::size_t i : dead_inbound) {
      c.inbound.erase(c.inbound.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  // ACKs owed for this turn's deliveries, coalesced per peer.
  flush_pending_acks(c);
}

void LiveTransport::do_crash(NodeCtx& c) {
  {
    MutexLock lock(events_mutex_);
    crashes_.push_back({c.id, now()});
  }
  c.node->on_crash();
  c.alive.store(false, std::memory_order_release);
  {
    // Abandon queued control functions: their promises (if any) break,
    // which run_on_node_sync reports as failure.
    MutexLock lock(c.ctl_mutex);
    c.ctl.clear();
  }
  shutdown_io(c);
}

void LiveTransport::shutdown_io(NodeCtx& c) {
  // Messages still awaiting acknowledgment die with this incarnation;
  // account them as surfaced so no loss is ever silent. (At a clean stop
  // after a drain these queues are empty and the counter is untouched.)
  for (NodeCtx::PeerSend& ps : c.peer_send) {
    c.tc.surfaced_losses += ps.unacked.size();
    ps = NodeCtx::PeerSend{};
  }
  for (NodeCtx::PeerRecv& pr : c.peer_recv) {
    pr = NodeCtx::PeerRecv{};
  }
  std::fill(c.peer_down.begin(), c.peer_down.end(), Clock::time_point{});
  c.delayed.clear();
  c.ack_pending.clear();
  c.unreachable_pending.clear();
  c.reliability_due = Clock::time_point::max();
  c.inbound.clear();
  c.outgoing.clear();
  c.timers.clear();
  c.listener.reset();
}

}  // namespace hpd::rt
