#include "rt/live_transport.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <system_error>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "wire/frame.hpp"

namespace hpd::rt {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

// ---- Internal state ---------------------------------------------------------

/// Per-node context: the NodeSession protocol state machine plus everything
/// scheduler-specific — the loop thread, its wake pipe and control queue,
/// the socket set, and the timer table. Implements SessionHost so the
/// session can dial/reset connections without knowing about threads.
struct LiveTransport::NodeCtx final : SessionHost {
  LiveTransport* t = nullptr;
  ProcessId id = kNoProcess;
  transport::Node* node = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::function<void()> on_revive;
  LiveEndpoint endpoint;

  SockAddr addr;  ///< fixed at start(); stable across crash/revive
  Fd listener;
  std::thread thread;
  std::atomic<bool> alive{false};

  // Control plane: any thread -> loop thread.
  Mutex ctl_mutex;
  std::deque<std::function<void()>> ctl HPD_GUARDED_BY(ctl_mutex);
  bool crash_requested HPD_GUARDED_BY(ctl_mutex) = false;
  bool stop_requested HPD_GUARDED_BY(ctl_mutex) = false;
  Fd wake_read;
  Fd wake_write;

  // ---- Loop-thread-only state ----------------------------------------------
  std::vector<std::unique_ptr<Conn>> inbound;
  std::map<ProcessId, std::unique_ptr<Conn>> outgoing;

  struct TimerRec {
    int tag = 0;
    bool periodic = false;
    Clock::time_point due;
    Clock::duration period{};
  };
  std::map<transport::TimerId, TimerRec> timers;
  transport::TimerId next_timer = 1;

  /// Per-peer re-dial cooldown after a failed connect / broken pipe.
  /// Expired early by the session's observe_peer when the peer shows life.
  std::vector<Clock::time_point> peer_down;

  std::vector<std::uint8_t> read_buf;

  /// The protocol brain (rt/session): reliable delivery, chaos, epochs,
  /// counters. Loop-thread-only, except bump_epoch() during revive().
  NodeSession session;

  std::uint64_t accepted = 0;

  // ---- SessionHost ---------------------------------------------------------
  void session_write(ProcessId dst,
                     const std::vector<std::uint8_t>& framed) override {
    Conn* conn = t->outgoing_conn(*this, dst);
    if (conn == nullptr) {
      return;  // cooling down or unreachable; the retransmit path recovers
    }
    conn->queue(framed);
    if (conn->flush() == Conn::FlushStatus::kBroken) {
      ++session.counters().conn_resets;
      t->drop_outgoing(*this, dst);
    }
  }

  void session_reset_conn(ProcessId dst) override { outgoing.erase(dst); }

  void session_peer_alive(ProcessId peer) override {
    peer_down[idx(peer)] = Clock::time_point{};
  }
};

// ---- LiveEndpoint -----------------------------------------------------------

SimTime LiveEndpoint::now() const { return transport_->now(); }

void LiveEndpoint::send(transport::Message msg) {
  HPD_REQUIRE(msg.src == self_,
              "LiveEndpoint::send: src must be the owning node");
  transport_->do_send(transport_->ctx(self_), std::move(msg));
}

transport::TimerId LiveEndpoint::set_timer(ProcessId id, int tag,
                                           SimTime delay, bool periodic,
                                           SimTime period) {
  HPD_REQUIRE(id == self_,
              "LiveEndpoint::set_timer: timers belong to the owning node");
  return transport_->do_set_timer(transport_->ctx(self_), tag, delay, periodic,
                                  period);
}

void LiveEndpoint::cancel_timer(transport::TimerId id) {
  transport_->do_cancel_timer(transport_->ctx(self_), id);
}

bool LiveEndpoint::alive(ProcessId id) const { return transport_->alive(id); }

// ---- Construction / registration -------------------------------------------

LiveTransport::LiveTransport(std::size_t n, LiveConfig cfg)
    : cfg_(std::move(cfg)) {
  HPD_REQUIRE(n >= 1, "LiveTransport: empty system");
  HPD_REQUIRE(cfg_.time_scale > 0.0, "LiveTransport: time_scale must be > 0");
  HPD_REQUIRE(cfg_.retx_max_attempts >= 1,
              "LiveTransport: retx_max_attempts must be >= 1");
  HPD_REQUIRE(cfg_.retx_queue_cap >= 1,
              "LiveTransport: retx_queue_cap must be >= 1");
  clock_.reset(Clock::now(), cfg_.time_scale);
  if (cfg_.socket_kind == SockAddr::Kind::kUnix && cfg_.socket_dir.empty()) {
    socket_dir_ = make_socket_dir();
    own_socket_dir_ = true;
  } else {
    socket_dir_ = cfg_.socket_dir;
  }
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto c = std::make_unique<NodeCtx>();
    c->t = this;
    c->id = static_cast<ProcessId>(i);
    c->endpoint.transport_ = this;
    c->endpoint.self_ = c->id;
    c->addr.kind = cfg_.socket_kind;
    if (cfg_.socket_kind == SockAddr::Kind::kUnix) {
      c->addr.path = socket_dir_ + "/node-" + std::to_string(i) + ".sock";
    }
    c->peer_down.resize(n);
    c->read_buf.resize(cfg_.read_chunk);
    int pipefd[2];
    if (::pipe(pipefd) < 0) {
      throw TransportError("pipe: wake channel");
    }
    c->wake_read = Fd(pipefd[0]);
    c->wake_write = Fd(pipefd[1]);
    set_nonblocking(c->wake_read.get());
    set_nonblocking(c->wake_write.get());
    nodes_.push_back(std::move(c));
  }
}

LiveTransport::~LiveTransport() {
  stop();
  if (own_socket_dir_) {
    remove_socket_dir(socket_dir_);
  }
}

LiveTransport::NodeCtx& LiveTransport::ctx(ProcessId id) {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "LiveTransport: unknown node id");
  return *nodes_[idx(id)];
}

const LiveTransport::NodeCtx& LiveTransport::ctx(ProcessId id) const {
  HPD_REQUIRE(id >= 0 && idx(id) < nodes_.size(),
              "LiveTransport: unknown node id");
  return *nodes_[idx(id)];
}

void LiveTransport::set_link_filter(
    std::function<bool(ProcessId, ProcessId)> link_ok) {
  HPD_REQUIRE(!started_, "LiveTransport: link filter must precede start()");
  link_ok_ = std::move(link_ok);
}

void LiveTransport::register_node(ProcessId id, transport::Node& node,
                                  MetricsRegistry* metrics,
                                  std::function<void()> on_revive) {
  HPD_REQUIRE(!started_, "LiveTransport: register_node must precede start()");
  NodeCtx& c = ctx(id);
  c.node = &node;
  c.metrics = metrics;
  c.on_revive = std::move(on_revive);
}

transport::Endpoint& LiveTransport::endpoint(ProcessId id) {
  return ctx(id).endpoint;
}

// ---- Lifecycle --------------------------------------------------------------

void LiveTransport::start() {
  HPD_REQUIRE(!started_, "LiveTransport: started twice");
  for (auto& c : nodes_) {
    HPD_REQUIRE(c->node != nullptr, "LiveTransport: node not registered");
    // Binding every listener before any thread runs means a refused connect
    // can only ever mean "peer crashed".
    c->listener = listen_on(c->addr);
    c->session.init(c->id, nodes_.size(), &cfg_, &clock_, c.get(), c->node,
                    c->metrics, &link_ok_);
  }
  clock_.reset(Clock::now(), cfg_.time_scale);
  started_ = true;
  for (auto& c : nodes_) {
    c->alive.store(true, std::memory_order_release);
  }
  for (auto& c : nodes_) {
    NodeCtx* p = c.get();
    c->thread = std::thread([this, p] { node_loop(*p, /*initial=*/true); });
  }
}

void LiveTransport::stop() {
  for (auto& c : nodes_) {
    {
      MutexLock lock(c->ctl_mutex);
      c->stop_requested = true;
    }
    wake(*c);
  }
  for (auto& c : nodes_) {
    if (c->thread.joinable()) {
      c->thread.join();
    }
  }
}

void LiveTransport::crash(ProcessId id) {
  NodeCtx& c = ctx(id);
  if (!c.alive.load(std::memory_order_acquire)) {
    return;
  }
  {
    MutexLock lock(c.ctl_mutex);
    c.crash_requested = true;
  }
  wake(c);
  if (c.thread.joinable()) {
    c.thread.join();
  }
}

void LiveTransport::revive(ProcessId id) {
  NodeCtx& c = ctx(id);
  HPD_REQUIRE(started_, "LiveTransport: revive before start");
  HPD_REQUIRE(!c.alive.load(std::memory_order_acquire),
              "LiveTransport: revive of a live node");
  if (c.thread.joinable()) {
    c.thread.join();
  }
  {
    MutexLock lock(c.ctl_mutex);
    c.crash_requested = false;
    c.stop_requested = false;
    c.ctl.clear();
  }
  // New incarnation: a fresh session epoch makes every live node reject
  // DATA that was addressed to the previous life of this id.
  c.session.bump_epoch();
  c.listener = listen_on(c.addr);  // same path / port as before the crash
  c.alive.store(true, std::memory_order_release);
  NodeCtx* p = &c;
  c.thread = std::thread([this, p] { node_loop(*p, /*initial=*/false); });
  // Tell everyone the id is back with a new incarnation. This expires
  // re-dial cooldowns immediately (a cooldown that started just before the
  // revive must not keep suppressing sends to a now-alive peer) and purges
  // (surfaces) retransmit-queue entries addressed to the dead incarnation.
  const ProcessId rid = c.id;
  const std::uint64_t e = c.session.epoch();
  for (auto& other : nodes_) {
    if (other->id == rid) {
      continue;
    }
    NodeCtx* oc = other.get();
    post(other->id, [oc, rid, e] { oc->session.observe_peer(rid, e); });
  }
}

bool LiveTransport::alive(ProcessId id) const {
  return ctx(id).alive.load(std::memory_order_acquire);
}

std::uint64_t LiveTransport::session_epoch(ProcessId id) const {
  return ctx(id).session.epoch();
}

void LiveTransport::adopt_session_epoch(ProcessId id, std::uint64_t epoch) {
  NodeCtx& c = ctx(id);
  HPD_REQUIRE(!started_ || !c.alive.load(std::memory_order_acquire),
              "LiveTransport: adopt_session_epoch on a running node");
  c.session.adopt_epoch(epoch);
}

std::size_t LiveTransport::alive_count() const {
  std::size_t k = 0;
  for (const auto& c : nodes_) {
    if (c->alive.load(std::memory_order_acquire)) {
      ++k;
    }
  }
  return k;
}

// ---- Time -------------------------------------------------------------------

SimTime LiveTransport::now() const { return clock_.now(); }

void LiveTransport::sleep_until(SimTime t) const { clock_.sleep_until(t); }

// ---- Control plane ----------------------------------------------------------

void LiveTransport::wake(NodeCtx& c) {
  const std::uint8_t b = 0;
  // EAGAIN means a wake byte is already pending, which is just as good.
  [[maybe_unused]] const ssize_t k = ::write(c.wake_write.get(), &b, 1);
}

bool LiveTransport::post(ProcessId id, std::function<void()> fn) {
  NodeCtx& c = ctx(id);
  {
    MutexLock lock(c.ctl_mutex);
    if (!c.alive.load(std::memory_order_acquire) || c.crash_requested ||
        c.stop_requested) {
      return false;
    }
    c.ctl.push_back(std::move(fn));
  }
  wake(c);
  return true;
}

bool LiveTransport::run_on_node_sync(ProcessId id, std::function<void()> fn) {
  auto prom = std::make_shared<std::promise<void>>();
  std::future<void> done = prom->get_future();
  const bool posted = post(id, [prom, fn = std::move(fn)] {
    fn();
    prom->set_value();
  });
  if (!posted) {
    return false;
  }
  try {
    done.get();
    return true;
  } catch (const std::future_error&) {
    return false;  // the node crashed before running fn (promise abandoned)
  }
}

std::vector<LifeEvent> LiveTransport::crash_events() const {
  MutexLock lock(events_mutex_);
  return crashes_;
}

std::vector<LifeEvent> LiveTransport::revive_events() const {
  MutexLock lock(events_mutex_);
  return revives_;
}

// ---- Diagnostics ------------------------------------------------------------

std::uint64_t LiveTransport::delivered_messages() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->session.counters().msgs_delivered;
  }
  return k;
}

std::uint64_t LiveTransport::dropped_messages() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->session.counters().msgs_dropped;
  }
  return k;
}

std::uint64_t LiveTransport::frame_errors() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->session.counters().frame_errors;
  }
  return k;
}

std::uint64_t LiveTransport::connections_accepted() const {
  std::uint64_t k = 0;
  for (const auto& c : nodes_) {
    k += c->accepted;
  }
  return k;
}

TransportCounters LiveTransport::stats() const {
  TransportCounters t;
  for (const auto& c : nodes_) {
    t.add(c->session.counters());
  }
  return t;
}

std::vector<ChaosEvent> LiveTransport::chaos_events() const {
  std::vector<ChaosEvent> all;
  for (const auto& c : nodes_) {
    all.insert(all.end(), c->session.chaos_log().begin(),
               c->session.chaos_log().end());
  }
  canonical_sort(all);
  return all;
}

// ---- Timers -----------------------------------------------------------------

transport::TimerId LiveTransport::do_set_timer(NodeCtx& c, int tag,
                                               SimTime delay, bool periodic,
                                               SimTime period) {
  HPD_REQUIRE(!periodic || period > 0.0,
              "LiveTransport: periodic timer needs a positive period");
  const transport::TimerId tid = c.next_timer++;
  NodeCtx::TimerRec rec;
  rec.tag = tag;
  rec.periodic = periodic;
  rec.due = Clock::now() + clock_.to_real(delay);
  rec.period = clock_.to_real(period);
  c.timers.emplace(tid, rec);
  return tid;
}

void LiveTransport::do_cancel_timer(NodeCtx& c, transport::TimerId id) {
  c.timers.erase(id);
}

void LiveTransport::fire_due_timers(NodeCtx& c) {
  const Clock::time_point t = Clock::now();
  std::vector<transport::TimerId> due;
  for (const auto& [tid, rec] : c.timers) {
    if (rec.due <= t) {
      due.push_back(tid);
    }
  }
  for (const transport::TimerId tid : due) {
    auto it = c.timers.find(tid);
    if (it == c.timers.end()) {
      continue;  // cancelled by an earlier callback this round
    }
    const int tag = it->second.tag;
    if (it->second.periodic) {
      it->second.due = t + it->second.period;
    } else {
      c.timers.erase(it);
    }
    c.node->on_timer(tag);
  }
}

// ---- Send path (runs on the sender's loop thread) ---------------------------

void LiveTransport::do_send(NodeCtx& c, transport::Message msg) {
  if (!c.alive.load(std::memory_order_relaxed)) {
    ++c.session.counters().msgs_dropped;
    return;
  }
  c.session.send(std::move(msg));
}

Conn* LiveTransport::outgoing_conn(NodeCtx& c, ProcessId dst) {
  auto it = c.outgoing.find(dst);
  if (it != c.outgoing.end()) {
    return it->second.get();
  }
  if (Clock::now() < c.peer_down[idx(dst)]) {
    return nullptr;  // cooling down; skip the dial until it lapses
  }
  const SockAddr& addr = nodes_[idx(dst)]->addr;
  Fd fd;
  auto backoff = cfg_.connect_backoff;
  for (int attempt = 0;; ++attempt) {
    fd = connect_to(addr);
    if (fd.valid() || attempt >= cfg_.connect_retries) {
      break;
    }
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
  if (!fd.valid()) {
    c.peer_down[idx(dst)] = Clock::now() + cfg_.peer_down_cooldown;
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = std::move(fd);
  conn->peer = dst;
  conn->outbuf = hello_frame(c.id, nodes_.size(), c.session.epoch());
  Conn* p = conn.get();
  c.outgoing.emplace(dst, std::move(conn));
  return p;
}

void LiveTransport::drop_outgoing(NodeCtx& c, ProcessId peer) {
  c.outgoing.erase(peer);
  c.peer_down[idx(peer)] = Clock::now() + cfg_.peer_down_cooldown;
}

// ---- Event loop -------------------------------------------------------------

void LiveTransport::node_loop(NodeCtx& c, const bool initial) {
  if (!initial) {
    {
      MutexLock lock(events_mutex_);
      revives_.push_back({c.id, now()});
    }
    if (c.on_revive) {
      c.on_revive();
    }
  } else {
    c.node->on_start();
  }
  for (;;) {
    // Control plane first: crash/stop beat everything else.
    std::deque<std::function<void()>> fns;
    bool crash_now = false;
    bool stop_now = false;
    {
      MutexLock lock(c.ctl_mutex);
      fns.swap(c.ctl);
      crash_now = c.crash_requested;
      stop_now = c.stop_requested;
    }
    if (crash_now) {
      do_crash(c);
      return;
    }
    for (auto& fn : fns) {
      fn();
    }
    if (stop_now) {
      c.alive.store(false, std::memory_order_release);
      shutdown_io(c);
      return;
    }
    fire_due_timers(c);
    c.session.service(Clock::now());
    loop_iteration(c);
  }
}

void LiveTransport::loop_iteration(NodeCtx& c) {
  struct Slot {
    enum class What { kWake, kListener, kInbound, kOutgoing } what;
    std::size_t index = 0;        // inbound index
    ProcessId peer = kNoProcess;  // outgoing peer
  };
  std::vector<pollfd> pfds;
  std::vector<Slot> slots;

  pfds.push_back({c.wake_read.get(), POLLIN, 0});
  slots.push_back({Slot::What::kWake, 0, kNoProcess});
  if (c.listener.valid()) {
    pfds.push_back({c.listener.get(), POLLIN, 0});
    slots.push_back({Slot::What::kListener, 0, kNoProcess});
  }
  for (std::size_t i = 0; i < c.inbound.size(); ++i) {
    pfds.push_back({c.inbound[i]->fd.get(), POLLIN, 0});
    slots.push_back({Slot::What::kInbound, i, kNoProcess});
  }
  for (const auto& [peer, conn] : c.outgoing) {
    short ev = POLLIN;  // peers never send here, but we must see the close
    if (conn->backlog() != 0) {
      ev = static_cast<short>(ev | POLLOUT);
    }
    pfds.push_back({conn->fd.get(), ev, 0});
    slots.push_back({Slot::What::kOutgoing, 0, peer});
  }

  // Sleep until the next timer or reliability deadline (capped; the wake
  // pipe cuts it short).
  int timeout_ms = 100;
  Clock::time_point next = c.session.next_due();
  for (const auto& [tid, rec] : c.timers) {
    next = std::min(next, rec.due);
  }
  if (next != Clock::time_point::max()) {
    // Round *up*: truncating a sub-millisecond wait to 0 would busy-spin
    // the loop until the deadline actually arrives.
    const auto wait = std::chrono::duration_cast<std::chrono::microseconds>(
        next - Clock::now());
    timeout_ms = static_cast<int>(
        std::clamp<std::int64_t>((wait.count() + 999) / 1000, 0, timeout_ms));
  }
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) {
      return;
    }
    throw TransportError("poll: " + std::system_category().message(errno));
  }

  std::vector<std::size_t> dead_inbound;
  std::vector<ProcessId> dead_outgoing;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const short re = pfds[i].revents;
    if (re == 0) {
      continue;
    }
    const Slot& slot = slots[i];
    switch (slot.what) {
      case Slot::What::kWake: {
        std::uint8_t buf[64];
        while (::read(c.wake_read.get(), buf, sizeof(buf)) > 0) {
        }
        break;
      }
      case Slot::What::kListener: {
        for (;;) {
          Fd nc = accept_conn(c.listener);
          if (!nc.valid()) {
            break;
          }
          auto conn = std::make_unique<Conn>();
          conn->fd = std::move(nc);
          c.inbound.push_back(std::move(conn));
          ++c.accepted;
        }
        break;
      }
      case Slot::What::kInbound: {
        Conn& conn = *c.inbound[slot.index];
        // One bounded read per wake is the inbound flow-control gate; the
        // level-triggered poll re-arms for whatever is left.
        switch (conn.read_once(std::span<std::uint8_t>(c.read_buf),
                               c.session)) {
          case Conn::ReadStatus::kData:
          case Conn::ReadStatus::kDrained:
            break;
          case Conn::ReadStatus::kProtocolError:
            ++c.session.counters().frame_errors;
            ++c.session.counters().conn_resets;
            dead_inbound.push_back(slot.index);
            break;
          case Conn::ReadStatus::kClosed:
            dead_inbound.push_back(slot.index);  // peer closed (crash/stop)
            break;
        }
        break;
      }
      case Slot::What::kOutgoing: {
        // The send path may have dropped this connection while we were
        // handling an earlier slot; re-resolve by peer id.
        auto it = c.outgoing.find(slot.peer);
        if (it == c.outgoing.end()) {
          break;
        }
        Conn& conn = *it->second;
        bool broken = false;
        if ((re & POLLOUT) != 0 &&
            conn.flush() == Conn::FlushStatus::kBroken) {
          broken = true;  // queued frames lost; retransmission recovers them
        }
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && !broken) {
          if (conn.drain_ignore(std::span<std::uint8_t>(c.read_buf)) ==
              Conn::ReadStatus::kClosed) {
            broken = true;  // receive-side close: the peer is gone
          }
        }
        if (broken) {
          dead_outgoing.push_back(slot.peer);
        }
        break;
      }
    }
  }
  for (const ProcessId peer : dead_outgoing) {
    ++c.session.counters().conn_resets;
    drop_outgoing(c, peer);
  }
  if (!dead_inbound.empty()) {
    std::sort(dead_inbound.begin(), dead_inbound.end(),
              std::greater<std::size_t>());
    for (const std::size_t i : dead_inbound) {
      c.inbound.erase(c.inbound.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  // ACKs owed for this turn's deliveries, coalesced per peer.
  c.session.flush_acks();
}

void LiveTransport::do_crash(NodeCtx& c) {
  {
    MutexLock lock(events_mutex_);
    crashes_.push_back({c.id, now()});
  }
  c.node->on_crash();
  c.alive.store(false, std::memory_order_release);
  {
    // Abandon queued control functions: their promises (if any) break,
    // which run_on_node_sync reports as failure.
    MutexLock lock(c.ctl_mutex);
    c.ctl.clear();
  }
  shutdown_io(c);
}

void LiveTransport::shutdown_io(NodeCtx& c) {
  c.session.shutdown();
  std::fill(c.peer_down.begin(), c.peer_down.end(), Clock::time_point{});
  c.inbound.clear();
  c.outgoing.clear();
  c.timers.clear();
  c.listener.reset();
}

}  // namespace hpd::rt
