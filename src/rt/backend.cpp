#include "rt/backend.hpp"

#include <utility>

#include "common/assert.hpp"
#include "rt/live_transport.hpp"
#include "rt/reactor/reactor_transport.hpp"

namespace hpd::rt {

std::unique_ptr<LiveBackend> make_live_backend(std::size_t n, LiveConfig cfg) {
  switch (cfg.backend) {
    case LiveBackendKind::kThreads:
      return std::make_unique<LiveTransport>(n, std::move(cfg));
    case LiveBackendKind::kReactor:
      return std::make_unique<ReactorTransport>(n, std::move(cfg));
  }
  HPD_REQUIRE(false, "make_live_backend: unknown backend kind");
  return nullptr;
}

}  // namespace hpd::rt
