// Drive one experiment over the live transport: the same ExperimentConfig
// the simulator consumes, executed by real node threads over sockets.
//
// Differences from runner::run_experiment, by construction of the medium:
//   * wire_encoding is forced on — bytes are the only thing a socket carries;
//   * the delay model is ignored and a schedule strategy is rejected — the
//     kernel scheduler *is* the adversary here;
//   * failures / recoveries give planned times; the measured instants (what
//     the offline oracle must be fed) come back in actual_crashes /
//     actual_recoveries;
//   * metrics, occurrence records and global counts are collected per node
//     (each node thread owns its storage) and merged after the threads stop.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "rt/backend.hpp"
#include "runner/experiment.hpp"

namespace hpd::rt {

struct LiveResult {
  runner::ExperimentResult result;
  /// True when a stop request (see run_live_experiment) cut the run short:
  /// remaining planned faults were skipped and the workload truncated, so
  /// the offline oracles are not expected to hold. The drain and the
  /// final checkpoint flush still happened.
  bool interrupted = false;
  /// Measured fault instants in SimTime units (loop-thread timestamps).
  std::vector<LifeEvent> actual_crashes;
  std::vector<LifeEvent> actual_recoveries;
  // Transport diagnostics.
  std::uint64_t delivered_messages = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t connections_accepted = 0;
  /// Session-layer accounting (also mirrored into result.metrics.transport()
  /// so it reaches report_json / --json output). The no-silent-loss
  /// invariant: transport.msgs_delivered + transport.surfaced_losses >=
  /// transport.reliable_sent, with equality-of-delivery (delivered == sent,
  /// surfaced == 0) on failure-free runs that drain cleanly.
  TransportCounters transport;
  /// Injected chaos events in canonical order (empty without a ChaosConfig).
  std::vector<ChaosEvent> chaos_events;
  /// Event-loop counters (all-zero under the thread backend); also mirrored
  /// into result.metrics.reactor() for --json output.
  ReactorCounters reactor;
};

/// Run the experiment over the live backend selected by live.backend
/// (thread-per-node or epoll reactor). Blocks the calling thread for
/// roughly (horizon + drain) * live.time_scale real seconds.
///
/// `stop` (nullable) is a cooperative early-shutdown request, typically
/// set from a signal handler via hpd_sim's self-pipe: once it reads true
/// the driver skips the rest of the fault plan and workload horizon,
/// finalizes the app on every live node, drains, persists the final
/// checkpoint (when live.ckpt_dir is set), and returns with
/// LiveResult::interrupted set.
LiveResult run_live_experiment(const runner::ExperimentConfig& config,
                               const LiveConfig& live = {},
                               const std::atomic<bool>* stop = nullptr);

}  // namespace hpd::rt
