// Thin RAII layer over the POSIX sockets the live transport runs on:
// loopback TCP (127.0.0.1, ephemeral ports) or Unix-domain stream sockets
// (one path per node under a private directory). Everything here is
// blocking-free except connect, which the caller wraps in a retry/backoff
// loop (rt/live_transport).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace hpd::rt {

class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only file-descriptor owner.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Where a node listens. For TCP, `port == 0` asks the kernel for an
/// ephemeral port and listen_on fills in the chosen one — the port then
/// stays stable across crash/revive (re-bound with SO_REUSEADDR).
struct SockAddr {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kUnix;
  std::string path;         ///< unix-domain socket path
  std::uint16_t port = 0;   ///< tcp port on 127.0.0.1
};

/// Bind + listen on `addr` (mutated: tcp port filled in). Non-blocking.
Fd listen_on(SockAddr& addr);

/// Accept one pending connection (non-blocking); invalid Fd if none.
Fd accept_conn(const Fd& listener);

/// One blocking connect attempt; invalid Fd on refusal/failure. The
/// returned socket is switched to non-blocking.
Fd connect_to(const SockAddr& addr);

void set_nonblocking(int fd);

// ---- Nonblocking-aware I/O helpers ------------------------------------------
// EINTR is retried internally; EAGAIN/EWOULDBLOCK surfaces as kAgain so an
// event loop can park the fd until the next readiness edge. All transient
// conditions are folded into the three outcomes a state machine actually
// branches on.

struct IoResult {
  enum class Status {
    kOk,      ///< `n` bytes transferred (n >= 1)
    kAgain,   ///< would block; retry on the next readiness edge
    kClosed,  ///< orderly EOF (read) or broken pipe / reset (write)
  };
  Status status = Status::kAgain;
  std::size_t n = 0;
};

/// One nonblocking read of at most `len` bytes.
IoResult read_some(int fd, std::uint8_t* buf, std::size_t len);

/// One nonblocking send (MSG_NOSIGNAL) of at most `len` bytes. A short
/// write returns kOk with the partial count — the caller resumes from
/// `n` (see Conn::flush for the canonical partial-write-resume loop).
IoResult write_some(int fd, const std::uint8_t* buf, std::size_t len);

/// Begin a nonblocking connect. kPending means the socket is mid-handshake:
/// wait for write readiness, then call connect_finish.
struct ConnectStart {
  enum class Status {
    kConnected,  ///< established immediately (typical for Unix sockets)
    kPending,    ///< in progress; finish on the next writable edge
    kFailed,     ///< refused / no listener
  };
  Status status = Status::kFailed;
  Fd fd;
};
ConnectStart connect_start(const SockAddr& addr);

/// Resolve a kPending connect once the fd reported writable: true if the
/// connection is established, false if it failed (SO_ERROR set).
bool connect_finish(const Fd& fd);

/// Create a private directory for unix socket paths (mkdtemp under
/// $TMPDIR). Returns the path; the caller removes it at shutdown.
std::string make_socket_dir();
void remove_socket_dir(const std::string& dir);

}  // namespace hpd::rt
