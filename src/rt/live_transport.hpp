// The thread-per-node live backend of transport::Endpoint: every node runs
// its own event-loop thread and the nodes exchange protocol messages over
// loopback TCP or Unix-domain stream sockets, framed by wire/frame (varint
// length + CRC-32C) and encoded by wire/codec.
//
// The protocol itself — reliable delivery (seqs/ACKs/epochs), chaos
// injection, frame decode and connection lifecycle — lives in the
// backend-neutral rt/session + rt/conn state machines; this file is the
// *scheduler* that hosts one NodeSession per OS thread. The epoll reactor
// (rt/reactor) hosts the same state machines on a worker pool instead; both
// implement rt::LiveBackend.
//
// Structure:
//   * All listeners are bound before any thread starts, so a connect can
//     only be refused when the peer has actually crashed.
//   * Node `i`'s callbacks (on_start / on_message / on_timer / on_crash) run
//     exclusively on `i`'s loop thread; sends initiated inside a callback
//     therefore satisfy the Endpoint threading contract by construction.
//   * Outgoing connections are opened lazily on first send (blocking connect
//     with bounded retry/backoff, then a per-peer cooldown while the peer is
//     down); each carries a HELLO frame first. Inbound connections are
//     receive-only, outgoing connections send-only.
//   * Time is scaled wall clock: `time_scale` real seconds per SimTime unit.
//     Timers live in a per-node table serviced by the node's poll loop.
//   * Crash-stop: crash() makes the loop run on_crash, drop every socket
//     (including the listener) and exit its thread. revive() re-binds the
//     same address and spawns a fresh thread that runs the registered
//     on_revive callback. Actual crash/revive times (in SimTime) are
//     recorded for the offline oracle.
//   * Flow control is structural: one bounded read per connection per wake
//     feeds frames that are dispatched inline, so a slow node simply lets
//     TCP/socket buffers fill and senders queue in their outbufs.
//
// Reliable delivery and chaos injection are specified in rt/session.hpp
// and docs/PROTOCOL.md; the invariant the chaos suite checks is
// `delivered + surfaced_losses >= sent` and `delivered <= sent`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "metrics/counters.hpp"
#include "rt/backend.hpp"
#include "rt/chaos.hpp"
#include "rt/clock.hpp"
#include "rt/conn.hpp"
#include "rt/session.hpp"
#include "rt/socket.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"

namespace hpd::rt {

class LiveTransport;

/// One node's view of the live transport. Satisfies transport::Endpoint;
/// all calls except now()/alive() must come from the node's loop thread.
class LiveEndpoint final : public transport::Endpoint {
 public:
  SimTime now() const override;
  void send(transport::Message msg) override;
  transport::TimerId set_timer(ProcessId id, int tag, SimTime delay,
                               bool periodic = false,
                               SimTime period = 0.0) override;
  void cancel_timer(transport::TimerId id) override;
  bool alive(ProcessId id) const override;

 private:
  friend class LiveTransport;
  LiveEndpoint() = default;
  LiveTransport* transport_ = nullptr;
  ProcessId self_ = kNoProcess;
};

class LiveTransport final : public LiveBackend {
 public:
  explicit LiveTransport(std::size_t n, LiveConfig cfg = {});
  ~LiveTransport() override;

  LiveTransport(const LiveTransport&) = delete;
  LiveTransport& operator=(const LiveTransport&) = delete;

  std::size_t size() const override { return nodes_.size(); }

  void set_link_filter(
      std::function<bool(ProcessId, ProcessId)> link_ok) override;
  void register_node(ProcessId id, transport::Node& node,
                     MetricsRegistry* metrics = nullptr,
                     std::function<void()> on_revive = nullptr) override;
  transport::Endpoint& endpoint(ProcessId id) override;

  /// Bind all listeners, reset the clock to 0, spawn one loop thread per
  /// node (each runs its node's on_start()).
  void start() override;

  /// Ask every loop to exit and join the threads. Idempotent.
  void stop() override;

  /// Crash-stop `id`: its loop runs on_crash, closes every socket and
  /// exits. Blocks until the thread is gone; the actual SimTime is recorded
  /// (crash_events()).
  void crash(ProcessId id) override;

  /// Bring a crashed node back: re-bind the same address, spawn a fresh
  /// loop thread that first runs the registered on_revive callback. The
  /// node starts a new session epoch, and every live node is told about it
  /// so stale queued messages to the dead incarnation are purged (surfaced)
  /// and re-dial cooldowns expire immediately.
  void revive(ProcessId id) override;

  bool alive(ProcessId id) const override;
  std::size_t alive_count() const override;

  std::uint64_t session_epoch(ProcessId id) const override;
  void adopt_session_epoch(ProcessId id, std::uint64_t epoch) override;

  SimTime now() const override;
  void sleep_until(SimTime t) const override;

  /// Run `fn` on `id`'s loop thread (asynchronously). False if `id` is not
  /// alive. The synchronous variant waits for completion; it returns false
  /// if the node died before running `fn`. Never call it from a node
  /// thread — that deadlocks.
  bool post(ProcessId id, std::function<void()> fn) override;
  bool run_on_node_sync(ProcessId id, std::function<void()> fn) override;

  std::vector<LifeEvent> crash_events() const override;
  std::vector<LifeEvent> revive_events() const override;

  // ---- Diagnostics: stable only once the relevant threads have stopped ----
  std::uint64_t delivered_messages() const override;
  std::uint64_t dropped_messages() const override;
  std::uint64_t frame_errors() const override;
  std::uint64_t connections_accepted() const override;
  TransportCounters stats() const override;
  std::vector<ChaosEvent> chaos_events() const override;

 private:
  friend class LiveEndpoint;
  struct NodeCtx;

  NodeCtx& ctx(ProcessId id);
  const NodeCtx& ctx(ProcessId id) const;

  void node_loop(NodeCtx& c, bool initial);
  void loop_iteration(NodeCtx& c);
  void fire_due_timers(NodeCtx& c);
  void do_send(NodeCtx& c, transport::Message msg);
  Conn* outgoing_conn(NodeCtx& c, ProcessId dst);
  void drop_outgoing(NodeCtx& c, ProcessId peer);
  void do_crash(NodeCtx& c);
  void shutdown_io(NodeCtx& c);
  void wake(NodeCtx& c);

  transport::TimerId do_set_timer(NodeCtx& c, int tag, SimTime delay,
                                  bool periodic, SimTime period);
  void do_cancel_timer(NodeCtx& c, transport::TimerId id);

  LiveConfig cfg_;
  std::string socket_dir_;
  bool own_socket_dir_ = false;
  std::function<bool(ProcessId, ProcessId)> link_ok_;
  std::vector<std::unique_ptr<NodeCtx>> nodes_;
  ScaledClock clock_;
  bool started_ = false;

  mutable Mutex events_mutex_;
  std::vector<LifeEvent> crashes_ HPD_GUARDED_BY(events_mutex_);
  std::vector<LifeEvent> revives_ HPD_GUARDED_BY(events_mutex_);
};

}  // namespace hpd::rt
