// The live backend of transport::Endpoint: every node runs its own
// event-loop thread and the nodes exchange protocol messages over loopback
// TCP or Unix-domain stream sockets, framed by wire/frame (varint length +
// CRC-32C) and encoded by wire/codec.
//
// Structure:
//   * All listeners are bound before any thread starts, so a connect can
//     only be refused when the peer has actually crashed.
//   * Node `i`'s callbacks (on_start / on_message / on_timer / on_crash) run
//     exclusively on `i`'s loop thread; sends initiated inside a callback
//     therefore satisfy the Endpoint threading contract by construction.
//   * Outgoing connections are opened lazily on first send (blocking connect
//     with bounded retry/backoff, then a per-peer cooldown while the peer is
//     down); each carries a HELLO frame first. Inbound connections are
//     receive-only, outgoing connections send-only.
//   * Time is scaled wall clock: `time_scale` real seconds per SimTime unit.
//     Timers live in a per-node table serviced by the node's poll loop.
//   * Crash-stop: crash() makes the loop run on_crash, drop every socket
//     (including the listener) and exit its thread. revive() re-binds the
//     same address and spawns a fresh thread that runs the registered
//     on_revive callback. Actual crash/revive times (in SimTime) are
//     recorded for the offline oracle.
//   * Flow control is structural: one bounded read per connection per wake
//     feeds frames that are dispatched inline, so a slow node simply lets
//     TCP/socket buffers fill and senders queue in their outbufs.
//
// Reliable delivery (protocol v2): every DATA frame carries the sender's
// session epoch, the sender's last-observed incarnation of the destination,
// and a per-(sender, destination) monotone sequence number. Receivers
// suppress duplicates, reject frames addressed to a previous incarnation of
// themselves or carrying a superseded sender epoch, and return cumulative +
// selective ACK frames. Senders keep unacknowledged DATA in a bounded
// per-peer retransmit queue (exponential backoff with jitter); when the
// retransmit budget is exhausted, the peer's incarnation changes under
// queued messages, or the node shuts down with messages still queued, the
// loss is *surfaced* through transport::Node::on_peer_unreachable and the
// surfaced_losses counter — never silently dropped. The invariant the chaos
// suite checks is `delivered + surfaced_losses >= sent` and
// `delivered <= sent` (unique deliveries only).
//
// Chaos injection: LiveConfig::chaos perturbs DATA frames at the frame
// boundary (drop / duplicate / corrupt / delay / reset / partition) with
// decisions that are a pure function of (seed, src, dst, seq, attempt) —
// see rt/chaos.hpp. HELLO and ACK frames are never perturbed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "metrics/counters.hpp"
#include "rt/chaos.hpp"
#include "rt/socket.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"

namespace hpd::wire {
class Decoder;
}

namespace hpd::rt {

struct LiveConfig {
  SockAddr::Kind socket_kind = SockAddr::Kind::kUnix;
  /// Real seconds per SimTime unit. 0.02 → one protocol time unit is 20 ms,
  /// comfortably above scheduler jitter even under TSan.
  double time_scale = 0.02;
  /// Bytes read per connection per loop wake (inbound flow-control gate).
  std::size_t read_chunk = std::size_t{64} * 1024;
  /// Blocking connect: attempts and doubling backoff between them.
  int connect_retries = 5;
  std::chrono::milliseconds connect_backoff{1};
  /// After a failed connect / broken pipe, skip re-dialing the peer for this
  /// long. Queued DATA is retransmitted once the cooldown lapses; the
  /// cooldown is expired early when the peer is observed alive again
  /// (inbound HELLO/ACK, or the revive() broadcast).
  std::chrono::milliseconds peer_down_cooldown{50};
  /// Directory for unix socket paths; empty → private mkdtemp directory
  /// (removed at shutdown).
  std::string socket_dir;

  // ---- Reliable-delivery session layer (SimTime units) ----------------------
  /// First retransmit fires this long after the original send.
  SimTime retx_initial = 2.0;
  /// Backoff doubles per attempt up to this ceiling.
  SimTime retx_max_backoff = 16.0;
  /// Each backoff is stretched by uniform[0, retx_jitter] to decorrelate
  /// retransmit bursts (timing only — chaos decisions don't see it).
  double retx_jitter = 0.25;
  /// Transmissions per message (including the first) before the loss is
  /// surfaced via Node::on_peer_unreachable.
  int retx_max_attempts = 12;
  /// Per-peer unacked-queue bound; overflow surfaces the oldest entry.
  std::size_t retx_queue_cap = 4096;

  /// Frame-level fault injection (DATA frames only); see rt/chaos.hpp.
  ChaosConfig chaos;
};

/// Handshake version carried in every connection's HELLO frame. v2 adds the
/// sender's session epoch to HELLO and (epoch, seq) bookkeeping to DATA.
inline constexpr std::uint64_t kLiveProtocolVersion = 2;

/// An actual (measured) crash or revive instant, in SimTime units.
struct LifeEvent {
  ProcessId node = kNoProcess;
  SimTime time = 0.0;
};

class LiveTransport;

/// One node's view of the live transport. Satisfies transport::Endpoint;
/// all calls except now()/alive() must come from the node's loop thread.
class LiveEndpoint final : public transport::Endpoint {
 public:
  SimTime now() const override;
  void send(transport::Message msg) override;
  transport::TimerId set_timer(ProcessId id, int tag, SimTime delay,
                               bool periodic = false,
                               SimTime period = 0.0) override;
  void cancel_timer(transport::TimerId id) override;
  bool alive(ProcessId id) const override;

 private:
  friend class LiveTransport;
  LiveEndpoint() = default;
  LiveTransport* transport_ = nullptr;
  ProcessId self_ = kNoProcess;
};

class LiveTransport {
 public:
  explicit LiveTransport(std::size_t n, LiveConfig cfg = {});
  ~LiveTransport();

  LiveTransport(const LiveTransport&) = delete;
  LiveTransport& operator=(const LiveTransport&) = delete;

  std::size_t size() const { return nodes_.size(); }

  /// Restrict which ordered pairs may exchange one-hop messages (mirrors
  /// sim::Network's link filter). Must be set before start().
  void set_link_filter(std::function<bool(ProcessId, ProcessId)> link_ok);

  /// Attach the protocol node for `id`. `metrics` (nullable) receives
  /// on_send accounting — give each node its own registry, the loop thread
  /// writes to it. `on_revive` runs on the fresh loop thread after revive().
  void register_node(ProcessId id, transport::Node& node,
                     MetricsRegistry* metrics = nullptr,
                     std::function<void()> on_revive = nullptr);

  /// The Endpoint to hand to node `id`'s protocol stack. Valid from
  /// construction (before start()).
  transport::Endpoint& endpoint(ProcessId id);

  /// Bind all listeners, reset the clock to 0, spawn one loop thread per
  /// node (each runs its node's on_start()).
  void start();

  /// Ask every loop to exit and join the threads. Idempotent.
  void stop();

  /// Crash-stop `id`: its loop runs on_crash, closes every socket and
  /// exits. Blocks until the thread is gone; the actual SimTime is recorded
  /// (crash_events()).
  void crash(ProcessId id);

  /// Bring a crashed node back: re-bind the same address, spawn a fresh
  /// loop thread that first runs the registered on_revive callback. The
  /// node starts a new session epoch, and every live node is told about it
  /// so stale queued messages to the dead incarnation are purged (surfaced)
  /// and re-dial cooldowns expire immediately.
  void revive(ProcessId id);

  bool alive(ProcessId id) const;
  std::size_t alive_count() const;

  /// Scaled wall clock, SimTime units since start(). Any thread.
  SimTime now() const;
  /// Block the calling (driver) thread until now() >= t.
  void sleep_until(SimTime t) const;

  /// Run `fn` on `id`'s loop thread (asynchronously). False if `id` is not
  /// alive. The synchronous variant waits for completion; it returns false
  /// if the node died before running `fn`. Never call it from a node
  /// thread — that deadlocks.
  bool post(ProcessId id, std::function<void()> fn);
  bool run_on_node_sync(ProcessId id, std::function<void()> fn);

  /// Measured fault timeline (SimTime), for the offline oracle.
  std::vector<LifeEvent> crash_events() const;
  std::vector<LifeEvent> revive_events() const;

  // ---- Diagnostics: stable only once the relevant threads have stopped ----
  std::uint64_t delivered_messages() const;
  std::uint64_t dropped_messages() const;
  std::uint64_t frame_errors() const;
  std::uint64_t connections_accepted() const;
  /// Session-layer counters, aggregated over all nodes.
  TransportCounters stats() const;
  /// All injected chaos events, merged across senders in canonical order
  /// (run-to-run identical for a fixed seed/config/workload — the
  /// determinism contract of rt/chaos.hpp).
  std::vector<ChaosEvent> chaos_events() const;

 private:
  friend class LiveEndpoint;
  struct NodeCtx;
  struct Conn;

  NodeCtx& ctx(ProcessId id);
  const NodeCtx& ctx(ProcessId id) const;
  std::chrono::steady_clock::duration to_real(SimTime d) const;

  void node_loop(NodeCtx& c, bool initial);
  void loop_iteration(NodeCtx& c);
  void fire_due_timers(NodeCtx& c);
  void handle_payload(NodeCtx& c, Conn& conn,
                      const std::vector<std::uint8_t>& payload);
  void handle_data(NodeCtx& c, Conn& conn, wire::Decoder& d,
                   const std::vector<std::uint8_t>& payload);
  void handle_ack(NodeCtx& c, wire::Decoder& d);
  void do_send(NodeCtx& c, transport::Message msg);
  /// One (possibly chaos-perturbed) transmission of an encoded DATA body.
  void transmit(NodeCtx& c, ProcessId dst, SeqNum seq, int attempt,
                const std::vector<std::uint8_t>& body);
  /// Queue already-framed bytes on the outgoing connection to `dst`.
  void write_framed(NodeCtx& c, ProcessId dst,
                    const std::vector<std::uint8_t>& framed);
  /// Retransmit scan + delayed-chaos-frame release + deferred
  /// on_peer_unreachable upcalls. Runs once per loop turn.
  void service_reliability(NodeCtx& c);
  void flush_pending_acks(NodeCtx& c);
  void send_ack(NodeCtx& c, ProcessId peer);
  /// Record that `peer` is alive with incarnation `epoch`: expires the
  /// re-dial cooldown, and on an epoch raise purges (surfaces) queued
  /// messages addressed to the dead incarnation.
  void observe_peer(NodeCtx& c, ProcessId peer, std::uint64_t epoch);
  std::chrono::steady_clock::duration jittered(
      NodeCtx& c, std::chrono::steady_clock::duration d);
  Conn* outgoing_conn(NodeCtx& c, ProcessId dst);
  bool flush_conn(Conn& conn);
  void drop_outgoing(NodeCtx& c, ProcessId peer);
  void do_crash(NodeCtx& c);
  void shutdown_io(NodeCtx& c);
  void wake(NodeCtx& c);

  transport::TimerId do_set_timer(NodeCtx& c, int tag, SimTime delay,
                                  bool periodic, SimTime period);
  void do_cancel_timer(NodeCtx& c, transport::TimerId id);

  LiveConfig cfg_;
  std::string socket_dir_;
  bool own_socket_dir_ = false;
  std::function<bool(ProcessId, ProcessId)> link_ok_;
  std::vector<std::unique_ptr<NodeCtx>> nodes_;
  std::chrono::steady_clock::time_point start_;
  bool started_ = false;

  mutable Mutex events_mutex_;
  std::vector<LifeEvent> crashes_ HPD_GUARDED_BY(events_mutex_);
  std::vector<LifeEvent> revives_ HPD_GUARDED_BY(events_mutex_);
};

}  // namespace hpd::rt
