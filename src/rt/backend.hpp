// The live-backend abstraction: one configuration (LiveConfig) and one
// driver-facing interface (LiveBackend) with two implementations —
//
//   * LiveBackendKind::kThreads — rt/live_transport: one OS thread per node
//     over blocking poll() loops. Simple, proven, caps at ~dozens of nodes.
//   * LiveBackendKind::kReactor — rt/reactor: a small pool of worker
//     threads, each running an epoll loop multiplexing hundreds of
//     nonblocking node state machines. Scales live experiments to
//     thousands of nodes.
//
// Both host the same protocol stack (rt/session + rt/conn behind the
// transport::Endpoint / transport::Node surface), so the choice is purely
// an execution-engine switch: rt::run_live_experiment and the conformance
// suite run against this interface and must not care which one is under it.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "metrics/counters.hpp"
#include "rt/chaos.hpp"
#include "rt/socket.hpp"
#include "transport/endpoint.hpp"
#include "transport/node.hpp"

namespace hpd::rt {

enum class LiveBackendKind {
  kThreads,  ///< one loop thread per node (rt/live_transport)
  kReactor,  ///< epoll worker pool, nodes sharded by id (rt/reactor)
};

struct LiveConfig {
  LiveBackendKind backend = LiveBackendKind::kThreads;
  /// Reactor worker threads; 0 = auto (min(hardware_concurrency, 8),
  /// never more than the node count).
  int reactor_workers = 0;

  SockAddr::Kind socket_kind = SockAddr::Kind::kUnix;
  /// Real seconds per SimTime unit. 0.02 → one protocol time unit is 20 ms,
  /// comfortably above scheduler jitter even under TSan.
  double time_scale = 0.02;
  /// Bytes read per connection per loop wake (inbound flow-control gate).
  std::size_t read_chunk = std::size_t{64} * 1024;
  /// Blocking connect (thread backend only): attempts and doubling backoff
  /// between them. The reactor dials nonblocking and relies on the
  /// cooldown + retransmit path instead.
  int connect_retries = 5;
  std::chrono::milliseconds connect_backoff{1};
  /// After a failed connect / broken pipe, skip re-dialing the peer for this
  /// long. Queued DATA is retransmitted once the cooldown lapses; the
  /// cooldown is expired early when the peer is observed alive again
  /// (inbound HELLO/ACK, or the revive() broadcast).
  std::chrono::milliseconds peer_down_cooldown{50};
  /// Directory for unix socket paths; empty → private mkdtemp directory
  /// (removed at shutdown).
  std::string socket_dir;

  // ---- Reliable-delivery session layer (SimTime units) ---------------------
  /// First retransmit fires this long after the original send.
  SimTime retx_initial = 2.0;
  /// Backoff doubles per attempt up to this ceiling.
  SimTime retx_max_backoff = 16.0;
  /// Each backoff is stretched by uniform[0, retx_jitter] to decorrelate
  /// retransmit bursts (timing only — chaos decisions don't see it).
  double retx_jitter = 0.25;
  /// Transmissions per message (including the first) before the loss is
  /// surfaced via Node::on_peer_unreachable.
  int retx_max_attempts = 12;
  /// Per-peer unacked-queue bound; overflow surfaces the oldest entry.
  std::size_t retx_queue_cap = 4096;

  /// Frame-level fault injection (DATA frames only); see rt/chaos.hpp.
  ChaosConfig chaos;

  // ---- Durability ----------------------------------------------------------
  /// When non-empty, the live runner persists the per-node session-epoch
  /// table to a ckpt::CheckpointStore in this directory (after every
  /// revive and at shutdown) and adopts the persisted epochs before
  /// start() — epoch continuity across a real restart of the driving
  /// process. All checkpoint I/O stays on the driver thread; node loops
  /// and reactor workers never block on it.
  std::string ckpt_dir;
};

/// An actual (measured) crash or revive instant, in SimTime units.
struct LifeEvent {
  ProcessId node = kNoProcess;
  SimTime time = 0.0;
};

/// Driver-facing surface of a live backend. Threading contract (identical
/// for both implementations): node `i`'s callbacks run on exactly one
/// thread at a time and all Endpoint calls for `i` come from `i`'s own
/// callback context; crash()/revive()/post()/run_on_node_sync() are
/// driver-thread entry points and must never be called from a node
/// callback. Diagnostics are stable only once stop() returned.
class LiveBackend {
 public:
  virtual ~LiveBackend() = default;

  virtual std::size_t size() const = 0;

  /// Restrict which ordered pairs may exchange one-hop messages (mirrors
  /// sim::Network's link filter). Must be set before start().
  virtual void set_link_filter(
      std::function<bool(ProcessId, ProcessId)> link_ok) = 0;

  /// Attach the protocol node for `id`. `metrics` (nullable) receives
  /// on_send accounting — give each node its own registry; the owning
  /// thread writes to it. `on_revive` runs on the node's (fresh) execution
  /// context after revive().
  virtual void register_node(ProcessId id, transport::Node& node,
                             MetricsRegistry* metrics = nullptr,
                             std::function<void()> on_revive = nullptr) = 0;

  /// The Endpoint to hand to node `id`'s protocol stack. Valid from
  /// construction (before start()).
  virtual transport::Endpoint& endpoint(ProcessId id) = 0;

  virtual void start() = 0;
  virtual void stop() = 0;
  virtual void crash(ProcessId id) = 0;
  virtual void revive(ProcessId id) = 0;

  virtual bool alive(ProcessId id) const = 0;
  virtual std::size_t alive_count() const = 0;

  // ---- Session-epoch continuity (durability) -------------------------------
  /// Current session incarnation of node `id`. Driver-thread only. Safe
  /// even while the node runs: the epoch is only ever written driver-side
  /// while the node is provably stopped (revive / adopt), so the read
  /// races nothing.
  virtual std::uint64_t session_epoch(ProcessId id) const = 0;
  /// Epoch continuity across a real process restart: forward `id`'s
  /// session epoch to at least `epoch` (NodeSession::adopt_epoch — epochs
  /// only move forward). Must be called before start() or while `id` is
  /// crashed.
  virtual void adopt_session_epoch(ProcessId id, std::uint64_t epoch) = 0;

  /// Scaled wall clock, SimTime units since start(). Any thread.
  virtual SimTime now() const = 0;
  /// Block the calling (driver) thread until now() >= t.
  virtual void sleep_until(SimTime t) const = 0;

  virtual bool post(ProcessId id, std::function<void()> fn) = 0;
  virtual bool run_on_node_sync(ProcessId id, std::function<void()> fn) = 0;

  /// Measured fault timeline (SimTime), for the offline oracle.
  virtual std::vector<LifeEvent> crash_events() const = 0;
  virtual std::vector<LifeEvent> revive_events() const = 0;

  // ---- Diagnostics: stable only once the relevant threads have stopped ----
  virtual std::uint64_t delivered_messages() const = 0;
  virtual std::uint64_t dropped_messages() const = 0;
  virtual std::uint64_t frame_errors() const = 0;
  virtual std::uint64_t connections_accepted() const = 0;
  /// Session-layer counters, aggregated over all nodes.
  virtual TransportCounters stats() const = 0;
  /// All injected chaos events, merged across senders in canonical order.
  virtual std::vector<ChaosEvent> chaos_events() const = 0;
  /// Event-loop counters; all-zero for the thread backend.
  virtual ReactorCounters reactor_stats() const { return {}; }
};

/// Construct the backend selected by cfg.backend.
std::unique_ptr<LiveBackend> make_live_backend(std::size_t n,
                                               LiveConfig cfg = {});

}  // namespace hpd::rt
