#include "rt/conn.hpp"

#include "wire/codec.hpp"

namespace hpd::rt {

Conn::FlushStatus Conn::flush() {
  while (out_pos < outbuf.size()) {
    const IoResult r =
        write_some(fd.get(), outbuf.data() + out_pos, outbuf.size() - out_pos);
    switch (r.status) {
      case IoResult::Status::kOk:
        out_pos += r.n;
        continue;
      case IoResult::Status::kAgain:
        return FlushStatus::kBlocked;
      case IoResult::Status::kClosed:
        return FlushStatus::kBroken;
    }
  }
  outbuf.clear();
  out_pos = 0;
  return FlushStatus::kDrained;
}

Conn::ReadStatus Conn::read_once(std::span<std::uint8_t> scratch,
                                 PayloadSink& sink) {
  const IoResult r = read_some(fd.get(), scratch.data(), scratch.size());
  if (r.status == IoResult::Status::kAgain) {
    return ReadStatus::kDrained;
  }
  if (r.status == IoResult::Status::kClosed) {
    return ReadStatus::kClosed;
  }
  try {
    reader.feed(std::span<const std::uint8_t>(scratch.data(), r.n));
    while (auto p = reader.next()) {
      sink.on_payload(*this, *p);
    }
  } catch (const wire::FrameError&) {
    // The byte stream has lost sync; the reader is poisoned and the only
    // safe recovery is a fresh connection (the sender retransmits whatever
    // the broken tail swallowed).
    return ReadStatus::kProtocolError;
  } catch (const wire::DecodeError&) {
    return ReadStatus::kProtocolError;
  }
  return ReadStatus::kData;
}

Conn::ReadStatus Conn::drain_ignore(std::span<std::uint8_t> scratch) {
  const IoResult r = read_some(fd.get(), scratch.data(), scratch.size());
  if (r.status == IoResult::Status::kAgain) {
    return ReadStatus::kDrained;
  }
  if (r.status == IoResult::Status::kClosed) {
    return ReadStatus::kClosed;
  }
  return ReadStatus::kData;  // bytes on a send-only connection: ignored
}

std::vector<std::uint8_t> hello_frame(ProcessId self, std::size_t cluster,
                                      std::uint64_t epoch) {
  wire::Encoder e;
  e.put_u8(kFrameHello);
  for (const std::uint8_t m : kMagic) {
    e.put_u8(m);
  }
  e.put_varint(kLiveProtocolVersion);
  e.put_varint(static_cast<std::uint64_t>(self));
  e.put_varint(cluster);
  e.put_varint(epoch);
  std::vector<std::uint8_t> framed;
  wire::append_frame(framed, e.bytes());
  return framed;
}

}  // namespace hpd::rt
