#include "rt/live_runner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "ckpt/snapshot.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "proto/messages.hpp"
#include "runner/process_runtime.hpp"

namespace hpd::rt {

namespace {

/// Planned fault schedule, time-ordered.
struct PlannedEvent {
  SimTime time = 0.0;
  ProcessId node = kNoProcess;
  bool is_crash = false;
};

/// sleep_until(t), waking periodically to honor a stop request. Returns
/// true iff the stop flag cut the wait short.
bool sleep_until_or_stop(const LiveBackend& net, SimTime t,
                         const std::atomic<bool>* stop) {
  if (stop == nullptr) {
    net.sleep_until(t);
    return false;
  }
  while (!stop->load(std::memory_order_relaxed)) {
    const SimTime now = net.now();
    if (now >= t) {
      return false;
    }
    net.sleep_until(std::min(t, now + 0.5));
  }
  return true;
}

}  // namespace

LiveResult run_live_experiment(const runner::ExperimentConfig& config,
                               const LiveConfig& live,
                               const std::atomic<bool>* stop) {
  const std::size_t n = config.topology.size();
  HPD_REQUIRE(n >= 1, "run_live_experiment: empty system");
  HPD_REQUIRE(config.tree.size() == n, "run_live_experiment: tree size");
  HPD_REQUIRE(config.tree.valid(), "run_live_experiment: invalid tree");
  HPD_REQUIRE(config.tree.respects(config.topology),
              "run_live_experiment: tree edge missing from topology");
  HPD_REQUIRE(config.behavior_factory != nullptr,
              "run_live_experiment: behavior_factory is required");
  HPD_REQUIRE(config.strategy == nullptr,
              "run_live_experiment: schedule strategies only exist in the "
              "simulator");

  // The socket only carries bytes: wire encoding is not optional here.
  runner::ExperimentConfig cfg = config;
  cfg.wire_encoding = true;

  LiveResult out;
  runner::ExperimentResult& result = out.result;

  // Per-node-thread storage; merged after the threads stop.
  std::vector<MetricsRegistry> metrics(n);
  std::vector<std::vector<detect::OccurrenceRecord>> occurrences(n);
  std::vector<std::uint64_t> global_counts(n, 0);
  for (auto& m : metrics) {
    m.resize(n);
    proto::register_message_names(m);
  }

  std::unique_ptr<LiveBackend> backend = make_live_backend(n, live);
  LiveBackend& net = *backend;
  net.set_link_filter([topo = &cfg.topology](ProcessId a, ProcessId b) {
    return topo->has_edge(a, b);
  });

  // Mirror the simulator's RNG split order (net first, then each process)
  // so a (config, seed) pair shapes the same workload in both worlds.
  Rng master(cfg.seed);
  [[maybe_unused]] Rng net_rng = master.split();

  std::vector<std::unique_ptr<runner::ProcessRuntime>> procs;
  procs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<ProcessId>(i);
    runner::ProcessRuntime::Shared shared;
    shared.config = &cfg;
    shared.net = &net.endpoint(id);
    shared.metrics = &metrics[i];
    shared.occurrences =
        cfg.keep_occurrence_records ? &occurrences[i] : nullptr;
    shared.global_count = &global_counts[i];
    shared.sink = cfg.tree.root();
    procs.push_back(
        std::make_unique<runner::ProcessRuntime>(id, shared, master.split()));
    net.register_node(id, *procs.back(), &metrics[i],
                      [p = procs.back().get()] { p->on_revive(); });
  }

  // ---- Durability: session-epoch continuity (LiveConfig::ckpt_dir) --------
  // Driver-thread-only by design: the node loops / reactor workers must
  // never block on checkpoint I/O (hpd_analyze's blocking-reachability
  // check enforces exactly this layering).
  std::unique_ptr<ckpt::CheckpointStore> ckpt_store;
  if (!live.ckpt_dir.empty()) {
    ckpt_store = std::make_unique<ckpt::CheckpointStore>(live.ckpt_dir,
                                                         "live-epochs");
    if (std::optional<ckpt::CheckpointData> data = ckpt_store->load_latest()) {
      if (!data->session.empty()) {
        const ckpt::EpochTable table = ckpt::decode_epochs(data->session);
        for (const auto& [node, epoch] : table.epochs) {
          if (node >= 0 && idx(node) < n) {
            net.adopt_session_epoch(node, epoch);
          }
        }
      }
    }
  }
  auto persist_epochs = [&] {
    if (ckpt_store == nullptr) {
      return;
    }
    ckpt::EpochTable table;
    table.epochs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<ProcessId>(i);
      table.epochs.emplace_back(id, net.session_epoch(id));
    }
    ckpt::CheckpointData data;
    data.session = ckpt::encode_epochs(table);
    ckpt_store->write(std::move(data));
  };

  std::vector<PlannedEvent> plan;
  for (const runner::FailureEvent& f : cfg.failures) {
    HPD_REQUIRE(f.node >= 0 && idx(f.node) < n,
                "run_live_experiment: failure of unknown node");
    plan.push_back({f.time, f.node, true});
  }
  for (const runner::FailureEvent& r : cfg.recoveries) {
    HPD_REQUIRE(r.node >= 0 && idx(r.node) < n,
                "run_live_experiment: recovery of unknown node");
    plan.push_back({r.time, r.node, false});
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const PlannedEvent& a, const PlannedEvent& b) {
                     return a.time < b.time;
                   });

  net.start();
  for (const PlannedEvent& ev : plan) {
    if (sleep_until_or_stop(net, ev.time, stop)) {
      out.interrupted = true;
      break;
    }
    if (ev.is_crash) {
      net.crash(ev.node);
    } else {
      net.revive(ev.node);
      // A revive bumped an epoch: persist the table so a process restart
      // can never resurrect an already-used incarnation.
      persist_epochs();
    }
  }
  if (!out.interrupted &&
      sleep_until_or_stop(net, cfg.horizon, stop)) {
    out.interrupted = true;
  }

  // Close still-open intervals so detectors see the execution's tail — on
  // each node's own thread, as every runtime call must be.
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<ProcessId>(i);
    if (net.alive(id)) {
      net.run_on_node_sync(id, [&rt = *procs[i]] { rt.finalize_app(); });
    }
  }
  // An interrupted run drains relative to the instant it was cut short —
  // a full drain window still flushes every retransmission in flight.
  net.sleep_until(out.interrupted ? net.now() + cfg.drain
                                  : cfg.horizon + cfg.drain);

  // Liveness must be read before stop() (a stopped loop is not "crashed").
  result.final_alive.resize(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    result.final_alive[i] = net.alive(static_cast<ProcessId>(i));
  }
  result.end_time = net.now();
  net.stop();
  // Final flush: every epoch is quiescent once the backend stopped.
  persist_epochs();

  // ---- Collect (all threads joined; every node's state is quiescent) ------
  out.actual_crashes = net.crash_events();
  out.actual_recoveries = net.revive_events();
  out.delivered_messages = net.delivered_messages();
  out.frame_errors = net.frame_errors();
  out.connections_accepted = net.connections_accepted();
  out.transport = net.stats();
  out.chaos_events = net.chaos_events();
  out.reactor = net.reactor_stats();

  result.metrics.resize(n);
  proto::register_message_names(result.metrics);
  result.metrics.transport() = out.transport;
  result.metrics.reactor() = out.reactor;
  if (ckpt_store != nullptr) {
    result.metrics.checkpoint().add(ckpt_store->counters());
  }
  result.sim_events = net.delivered_messages();  // closest live analogue
  result.dropped_messages = net.dropped_messages();
  result.final_parents.resize(n, kNoProcess);
  if (cfg.record_execution) {
    result.execution.procs.resize(n);
  }

  // Per-node extraction is independent — fan it across the pool.
  parallel::ThreadPool pool(std::min<std::size_t>(n, 8));
  parallel::parallel_for(pool, n, [&](std::size_t i) {
    const auto id = static_cast<ProcessId>(i);
    runner::ProcessRuntime& rt = *procs[i];
    NodeMetrics& m = metrics[i].node(id);
    const detect::QueueEngine* engine = nullptr;
    if (rt.hier() != nullptr) {
      engine = &rt.hier()->engine();
    } else if (rt.sink() != nullptr) {
      engine = &rt.sink()->engine();
    }
    if (engine != nullptr) {
      m.vc_comparisons = engine->comparisons();
      m.intervals_enqueued = engine->offered();
      m.intervals_stored_peak = engine->stored_peak();
    } else if (rt.possibly_sink() != nullptr) {
      const auto& pe = rt.possibly_sink()->engine();
      m.vc_comparisons = pe.comparisons();
      m.intervals_enqueued = pe.offered();
      m.intervals_stored_peak = pe.stored_peak();
    }
    result.final_parents[i] = rt.current_parent();
    if (cfg.record_execution) {
      result.execution.procs[i] = rt.core().recorded();
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<ProcessId>(i);
    result.metrics.merge_from(metrics[i]);
    result.global_count += global_counts[i];
    const int level = cfg.tree.level(id);
    runner::LevelStats& ls = result.levels[level];
    ls.nodes += 1;
    ls.solutions += metrics[i].node(id).detections;
    ls.child_intervals += procs[i]->child_intervals_received();
  }

  // One merged stream: stable time sort keeps each detector's (already
  // monotone) subsequence in order, which the stream oracles require.
  for (auto& per_node : occurrences) {
    result.occurrences.insert(result.occurrences.end(),
                              std::make_move_iterator(per_node.begin()),
                              std::make_move_iterator(per_node.end()));
  }
  std::stable_sort(result.occurrences.begin(), result.occurrences.end(),
                   [](const detect::OccurrenceRecord& a,
                      const detect::OccurrenceRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

}  // namespace hpd::rt
