// Backend-neutral connection state machine for the live transport.
//
// One Conn is one stream connection: outbound frames accumulate in `outbuf`
// and drain with partial-write resume (flush()); inbound bytes feed a
// wire::FrameReader whose whole payloads are dispatched to a PayloadSink
// (read_once()). Corruption poisons the reader permanently — a framed
// stream that lost sync has no recoverable boundary — so the only recovery
// is dropping the connection and letting the sender's session layer
// retransmit (kProtocolError). Both live backends (thread-per-node
// rt/live_transport and the epoll reactor rt/reactor) host exactly this
// object; the poisoning/teardown behavior is tested once, in conn_test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "rt/socket.hpp"
#include "wire/frame.hpp"

namespace hpd::rt {

// Frame payload kinds: the first byte of every framed payload.
inline constexpr std::uint8_t kFrameHello = 1;
inline constexpr std::uint8_t kFrameData = 2;
inline constexpr std::uint8_t kFrameAck = 3;

inline constexpr std::uint8_t kMagic[4] = {'H', 'P', 'D', 'L'};

/// Handshake version carried in every connection's HELLO frame. v2 adds the
/// sender's session epoch to HELLO and (epoch, seq) bookkeeping to DATA.
inline constexpr std::uint64_t kLiveProtocolVersion = 2;

struct Conn;

/// Receiver of whole decoded frame payloads. Implementations may throw
/// wire::DecodeError for malformed payloads; read_once() maps that (and
/// FrameError from the reader itself) to ReadStatus::kProtocolError.
class PayloadSink {
 public:
  virtual ~PayloadSink() = default;
  virtual void on_payload(Conn& conn,
                          const std::vector<std::uint8_t>& payload) = 0;
};

/// One stream connection. Outgoing connections (dialled by the sender,
/// keyed by peer) only ever send; inbound (accepted) connections only
/// receive. `peer`/`hello_seen` are filled by the HELLO handshake.
struct Conn {
  Fd fd;
  wire::FrameReader reader;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_pos = 0;  ///< flushed prefix of outbuf
  ProcessId peer = kNoProcess;
  bool hello_seen = false;
  /// Nonblocking connect still completing (reactor backend); no flush
  /// until the writable edge resolves it via rt::connect_finish.
  bool connecting = false;

  /// Queue already-framed bytes for transmission.
  void queue(std::span<const std::uint8_t> framed) {
    outbuf.insert(outbuf.end(), framed.begin(), framed.end());
  }

  /// Unsent bytes still queued.
  std::size_t backlog() const { return outbuf.size() - out_pos; }

  enum class FlushStatus {
    kDrained,  ///< outbuf fully flushed
    kBlocked,  ///< kernel buffer full; resume on the next writable edge
    kBroken,   ///< peer gone; drop the connection (retransmit recovers)
  };
  /// Drain outbuf with partial-write resume (EINTR/EAGAIN-safe).
  FlushStatus flush();

  enum class ReadStatus {
    kData,           ///< bytes consumed and dispatched; more may be pending
    kDrained,        ///< no bytes available right now
    kClosed,         ///< orderly close or hard error: peer is gone
    kProtocolError,  ///< corrupt/undecodable stream: drop the connection
  };
  /// One bounded nonblocking read into `scratch`, feeding the frame reader
  /// and dispatching every completed payload to `sink`. Level-triggered
  /// loops call this once per readiness event; edge-triggered loops call
  /// it until kDrained.
  ReadStatus read_once(std::span<std::uint8_t> scratch, PayloadSink& sink);

  /// Read and discard (send-only connections watch their fd only to see
  /// the peer's close). kClosed when the peer is gone.
  ReadStatus drain_ignore(std::span<std::uint8_t> scratch);
};

/// The framed HELLO carried first on every outgoing connection: magic,
/// protocol version, sender id, cluster size, sender session epoch.
std::vector<std::uint8_t> hello_frame(ProcessId self, std::size_t cluster,
                                      std::uint64_t epoch);

}  // namespace hpd::rt
