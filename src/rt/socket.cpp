#include "rt/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <vector>

namespace hpd::rt {

namespace {

[[noreturn]] void fail(const std::string& what) {
  // std::system_category().message is the thread-safe spelling of
  // strerror(errno) — live-transport loop threads fail concurrently.
  throw TransportError(what + ": " + std::system_category().message(errno));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

Fd listen_on(SockAddr& addr) {
  const int domain = addr.kind == SockAddr::Kind::kTcp ? AF_INET : AF_UNIX;
  Fd fd(::socket(domain, SOCK_STREAM, 0));
  if (!fd.valid()) {
    fail("socket");
  }
  if (addr.kind == SockAddr::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = make_tcp_addr(addr.port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      fail("bind(tcp)");
    }
    if (addr.port == 0) {
      socklen_t len = sizeof(sa);
      if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&sa), &len) <
          0) {
        fail("getsockname");
      }
      addr.port = ntohs(sa.sin_port);
    }
  } else {
    // A revived node re-binds the same path: unlink the corpse first.
    ::unlink(addr.path.c_str());
    sockaddr_un sa = make_unix_addr(addr.path);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      fail("bind(unix " + addr.path + ")");
    }
  }
  if (::listen(fd.get(), 128) < 0) {
    fail("listen");
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd accept_conn(const Fd& listener) {
  const int fd = ::accept(listener.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Fd{};
    }
    fail("accept");
  }
  set_nonblocking(fd);
  return Fd(fd);
}

Fd connect_to(const SockAddr& addr) {
  const int domain = addr.kind == SockAddr::Kind::kTcp ? AF_INET : AF_UNIX;
  Fd fd(::socket(domain, SOCK_STREAM, 0));
  if (!fd.valid()) {
    fail("socket");
  }
  int rc;
  if (addr.kind == SockAddr::Kind::kTcp) {
    sockaddr_in sa = make_tcp_addr(addr.port);
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } else {
    sockaddr_un sa = make_unix_addr(addr.path);
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  }
  if (rc < 0) {
    return Fd{};  // refused / no listener: the caller retries with backoff
  }
  set_nonblocking(fd.get());
  return fd;
}

IoResult read_some(int fd, std::uint8_t* buf, std::size_t len) {
  for (;;) {
    const ssize_t k = ::read(fd, buf, len);
    if (k > 0) {
      return {IoResult::Status::kOk, static_cast<std::size_t>(k)};
    }
    if (k == 0) {
      return {IoResult::Status::kClosed, 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::Status::kAgain, 0};
    }
    return {IoResult::Status::kClosed, 0};  // ECONNRESET and friends
  }
}

IoResult write_some(int fd, const std::uint8_t* buf, std::size_t len) {
  for (;;) {
    const ssize_t k = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (k > 0) {
      return {IoResult::Status::kOk, static_cast<std::size_t>(k)};
    }
    if (k < 0 && errno == EINTR) {
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return {IoResult::Status::kAgain, 0};
    }
    return {IoResult::Status::kClosed, 0};  // EPIPE / ECONNRESET / ...
  }
}

ConnectStart connect_start(const SockAddr& addr) {
  const int domain = addr.kind == SockAddr::Kind::kTcp ? AF_INET : AF_UNIX;
  Fd fd(::socket(domain, SOCK_STREAM, 0));
  if (!fd.valid()) {
    fail("socket");
  }
  // Nonblocking *before* connect, so the dial itself can never park the
  // calling event loop.
  set_nonblocking(fd.get());
  int rc;
  if (addr.kind == SockAddr::Kind::kTcp) {
    sockaddr_in sa = make_tcp_addr(addr.port);
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    do {
      rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    } while (rc < 0 && errno == EINTR);
  } else {
    sockaddr_un sa = make_unix_addr(addr.path);
    do {
      rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    } while (rc < 0 && errno == EINTR);
  }
  ConnectStart out;
  if (rc == 0) {
    out.status = ConnectStart::Status::kConnected;
    out.fd = std::move(fd);
  } else if (errno == EINPROGRESS) {
    out.status = ConnectStart::Status::kPending;
    out.fd = std::move(fd);
  } else {
    // Refused, no listener, or (Unix) a momentarily full accept backlog:
    // the caller's cooldown + retransmit path recovers.
    out.status = ConnectStart::Status::kFailed;
  }
  return out;
}

bool connect_finish(const Fd& fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return false;
  }
  return err == 0;
}

std::string make_socket_dir() {
  // Single-threaded startup path: LiveTransport reads TMPDIR once in its
  // constructor, before any loop thread exists.
  const char* base = std::getenv("TMPDIR");  // NOLINT(concurrency-mt-unsafe)
  std::string templ =
      std::string(base != nullptr && *base != '\0' ? base : "/tmp") +
      "/hpd_live.XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    fail("mkdtemp");
  }
  return std::string(buf.data());
}

void remove_socket_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // best effort
}

}  // namespace hpd::rt
