#include "interval/interval.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "vc/simd.hpp"

namespace hpd {

std::string Interval::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& x) {
  os << (x.aggregated ? "agg" : "int") << "[P" << x.origin << "#" << x.seq
     << " lo=" << x.lo << " hi=" << x.hi << " w=" << x.weight << ']';
  return os;
}

bool overlap(const Interval& x, const Interval& y) {
  return vc_less(x.lo, y.hi) && vc_less(y.lo, x.hi);
}

bool overlap(std::span<const Interval> xs) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (i != j && !vc_less(xs[i].lo, xs[j].hi)) {
        return false;
      }
    }
  }
  return true;
}

bool overlap_cuts(const Interval& x, const Interval& y) {
  return vc_leq(x.lo, y.hi) && vc_leq(y.lo, x.hi);
}

namespace {

// Provenance is attached iff every input carries one. Decided up front so
// the hot path (provenance tracking off — any input without a record)
// never touches a shared_ptr at all: a raw pointer read per input here,
// zero refcount traffic below.
bool all_have_provenance(std::span<const Interval> xs) {
  for (const Interval& x : xs) {
    if (x.provenance == nullptr) {
      return false;
    }
  }
  return true;
}

}  // namespace

Interval aggregate(std::span<const Interval> xs, ProcessId origin, SeqNum seq) {
  HPD_REQUIRE(!xs.empty(), "aggregate: empty interval set");
  const bool all_provenance = all_have_provenance(xs);
  Interval out;
  out.lo = xs.front().lo;
  out.hi = xs.front().hi;
  out.weight = 0;
  for (const Interval& x : xs) {
    out.weight += x.weight;
    out.completed_at = std::max(out.completed_at, x.completed_at);
  }
  // Eqs. (5)/(6) combined in place: one clock copy per bound above, then
  // raw-pointer max/min accumulation. Going through component_max/min here
  // would materialize a fresh clock per step — a heap allocation each for
  // n > VectorClock::kInlineCapacity, ~5x the cost of the arithmetic.
  // Small clocks keep the fused scalar loop (it unrolls in place); larger
  // ones take the dispatched meet_join kernel, which vectorizes both
  // bounds in one pass.
  ClockValue* pl = out.lo.data();
  ClockValue* ph = out.hi.data();
  const std::size_t n = out.lo.size();
  HPD_REQUIRE(out.hi.size() == n, "aggregate: lo/hi size mismatch");
  if (n <= VectorClock::kInlineCapacity) {
    for (std::size_t k = 1; k < xs.size(); ++k) {
      HPD_REQUIRE(xs[k].lo.size() == n && xs[k].hi.size() == n,
                  "aggregate: clock size mismatch");
      const ClockValue* ql = xs[k].lo.data();
      const ClockValue* qh = xs[k].hi.data();
      for (std::size_t i = 0; i < n; ++i) {
        pl[i] = std::max(pl[i], ql[i]);  // Eq. (5)
        ph[i] = std::min(ph[i], qh[i]);  // Eq. (6)
      }
    }
  } else {
    const auto& ker = vc_simd::kernels();
    for (std::size_t k = 1; k < xs.size(); ++k) {
      HPD_REQUIRE(xs[k].lo.size() == n && xs[k].hi.size() == n,
                  "aggregate: clock size mismatch");
    }
    // The whole fan-in goes through the many-input kernel so the lo/hi
    // accumulators live in registers across every input, not in a
    // read-modify-write pass per input. Pointer groups are bounded so the
    // scratch stays on the stack for any batch size; max/min are
    // elementwise, so grouping cannot change a bit of the result.
    constexpr std::size_t kGroup = 32;
    const ClockValue* qls[kGroup];
    const ClockValue* qhs[kGroup];
    std::size_t k = 1;
    while (k < xs.size()) {
      const std::size_t count = std::min(kGroup, xs.size() - k);
      for (std::size_t g = 0; g < count; ++g) {
        qls[g] = xs[k + g].lo.data();
        qhs[g] = xs[k + g].hi.data();
      }
      ker.meet_join_many(pl, ph, qls, qhs, count, n);
      k += count;
    }
  }
  out.origin = origin;
  out.seq = seq;
  out.aggregated = true;
  if (all_provenance) {
    auto prov = std::make_shared<Provenance>();
    prov->origin = origin;
    prov->seq = seq;
    prov->parts.reserve(xs.size());
    for (const Interval& x : xs) {
      prov->parts.push_back(x.provenance);
    }
    out.provenance = std::move(prov);
  }
  return out;
}

Interval aggregate(const Interval& a, const Interval& b, ProcessId origin,
                   SeqNum seq) {
  // Direct computation — no temporary Interval array, so no deep copies of
  // the inputs' clocks (the former implementation copied both intervals
  // just to build a span).
  Interval out;
  out.lo = component_max(a.lo, b.lo);  // Eq. (5)
  out.hi = component_min(a.hi, b.hi);  // Eq. (6)
  out.weight = a.weight + b.weight;
  out.completed_at = std::max(a.completed_at, b.completed_at);
  out.origin = origin;
  out.seq = seq;
  out.aggregated = true;
  if (a.provenance != nullptr && b.provenance != nullptr) {
    auto prov = std::make_shared<Provenance>();
    prov->origin = origin;
    prov->seq = seq;
    prov->parts.reserve(2);
    prov->parts.push_back(a.provenance);
    prov->parts.push_back(b.provenance);
    out.provenance = std::move(prov);
  }
  return out;
}

bool is_successor(const Interval& x, const Interval& y) {
  return x.origin == y.origin && vc_less(x.hi, y.lo);
}

namespace {

void collect_bases(const Provenance& p,
                   std::vector<std::pair<ProcessId, SeqNum>>& out) {
  if (p.parts.empty()) {
    out.emplace_back(p.origin, p.seq);
    return;
  }
  for (const auto& part : p.parts) {
    if (part != nullptr) {
      collect_bases(*part, out);
    }
  }
}

}  // namespace

std::vector<std::pair<ProcessId, SeqNum>> base_intervals(const Interval& x) {
  std::vector<std::pair<ProcessId, SeqNum>> out;
  if (x.provenance != nullptr) {
    collect_bases(*x.provenance, out);
    std::sort(out.begin(), out.end());
  }
  return out;
}

void attach_base_provenance(Interval& x) {
  auto prov = std::make_shared<Provenance>();
  prov->origin = x.origin;
  prov->seq = x.seq;
  x.provenance = std::move(prov);
}

}  // namespace hpd
