// Intervals of local-predicate truth and the paper's aggregation operator ⊓.
//
// An interval x is identified by two vector timestamps: lo = min(x), the
// timestamp of the first event of the truth period, and hi = max(x), the
// timestamp of the last event of the truth period. Aggregated intervals
// (Section III-C) are identified by *cuts* rather than events, but are
// represented identically and treated uniformly (Theorems 1 and 2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {

/// Test-only provenance: which base intervals an aggregate represents.
/// Shared immutable DAG. Not counted as wire words; the codec serializes
/// it (flattened to the base set) only when attached, so differential
/// oracles can follow solutions across a real socket (rt::LiveTransport).
struct Provenance {
  ProcessId origin = kNoProcess;  ///< process of the base interval
  SeqNum seq = 0;                 ///< per-origin interval number
  std::vector<std::shared_ptr<const Provenance>> parts;  ///< empty for base
};

struct Interval {
  VectorClock lo;  ///< min(x)
  VectorClock hi;  ///< max(x)

  /// Process that produced this interval: the process where the local
  /// predicate held (base interval) or the subtree root that generated the
  /// aggregate.
  ProcessId origin = kNoProcess;

  /// Per-origin monotone sequence number; establishes the succ() relation
  /// of Section III-D for intervals of the same origin.
  SeqNum seq = 0;

  /// Number of base intervals this interval represents (1 if not aggregated).
  std::uint32_t weight = 1;

  /// True iff produced by the aggregation operator ⊓.
  bool aggregated = false;

  /// Instrumentation (not on the wire): simulation time at which the truth
  /// period completed. Aggregates carry the max over their members, so a
  /// detector can compute detection latency = now − completed_at.
  SimTime completed_at = 0.0;

  /// Optional test instrumentation (see Provenance).
  std::shared_ptr<const Provenance> provenance;

  /// Words on the wire: two vector timestamps plus a small constant header.
  std::size_t wire_size() const { return lo.wire_size() + hi.wire_size() + 4; }

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Interval& x);

/// Pairwise overlap test of the paper (Section III-C):
///   overlap(x, y)  ⇔  min(x) < max(y)  ∧  min(y) < max(x).
/// For x == y this degenerates to min(x) < max(x).
bool overlap(const Interval& x, const Interval& y);

/// overlap(X): every ordered pair of *distinct* intervals in X satisfies
/// min(xi) < max(xj) — the paper's Definitely(Φ) condition, Eq. (2).
/// Self pairs are excluded: along a single process, min(x) precedes-or-
/// equals max(x) by program order, and a single-event interval (lo == hi)
/// must not falsify the condition (Definitely of one local interval holds
/// trivially).
bool overlap(std::span<const Interval> xs);

/// Cut-level overlap: like overlap(x, y) but with non-strict comparisons.
///
/// Rationale (library erratum to the paper): aggregated intervals are
/// identified by *cuts*, and the join of the members' mins can coincide
/// exactly with the meet of another set's maxes even though every
/// underlying raw pair strictly crosses — the paper's Theorem 1 infers a
/// strict vector inequality from pairwise strict inequalities, which does
/// not hold in general. Two raw event timestamps from different processes
/// can never be equal, so for non-aggregated intervals this test coincides
/// with the strict one; for aggregates it repairs the (rare) missed
/// detection. The universally valid direction sandwich is:
///   overlap(⊓X, ⊓Y) ∧ parts ⇒ overlap(X ∪ Y) ⇒ overlap_cuts(⊓X, ⊓Y) ∧ parts.
bool overlap_cuts(const Interval& x, const Interval& y);

/// The aggregation operator ⊓ of Eqs. (5) and (6):
///   min(⊓X)[i] = max over x in X of min(x)[i]
///   max(⊓X)[i] = min over x in X of max(x)[i]
/// `origin` and `seq` identify the aggregate at the generating node.
/// Provenance is attached iff every input carries provenance.
Interval aggregate(std::span<const Interval> xs, ProcessId origin, SeqNum seq);

/// Convenience overload for exactly two sets' aggregates (Theorem 1 tests).
/// Computed directly — the inputs are not copied into a temporary array.
Interval aggregate(const Interval& a, const Interval& b, ProcessId origin,
                   SeqNum seq);

/// succ relation of Section III-D: y is a successor of x iff they share an
/// origin and max(x) < min(y). (Theorem 2 proves aggregates generated at the
/// same node are totally ordered this way.)
bool is_successor(const Interval& x, const Interval& y);

/// Collect the base (origin, seq) pairs under an interval's provenance,
/// sorted by (origin, seq). Empty if provenance was not tracked.
std::vector<std::pair<ProcessId, SeqNum>> base_intervals(const Interval& x);

/// Attach base provenance to an interval (used by the trace layer when
/// provenance tracking is enabled).
void attach_base_provenance(Interval& x);

}  // namespace hpd
