// Minimal thread pool for fanning independent simulations across cores.
//
// The simulator itself is single-threaded and deterministic; parallelism in
// this project lives at the sweep level (many (config, seed) runs with zero
// shared mutable state), which is the message-passing-style decomposition
// the HPC guides prescribe: no locks on the hot path, results joined at a
// barrier.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace hpd::parallel {

class ThreadPool {
 public:
  /// `threads == 0` → hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  /// Throws std::runtime_error if the pool is shutting down — once workers
  /// may have exited, an accepted task's future could never resolve and the
  /// caller would block forever on it.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown began");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  ///< written only during construction
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ HPD_GUARDED_BY(mutex_);
  bool stopping_ HPD_GUARDED_BY(mutex_) = false;
};

/// Run fn(i) for i in [0, count) on a pool, blocking until all complete —
/// including when a task throws: every future is drained before the first
/// exception is rethrown. (Rethrowing early would return while queued tasks
/// still hold references to `fn`, which may be a temporary at the call
/// site — a use-after-free.)
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: map fn over [0, count) collecting results in order. Same
/// exception contract as parallel_for: all tasks finish before the first
/// exception is rethrown.
template <typename R>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t count,
                            const std::function<R(std::size_t)>& fn) {
  std::vector<std::future<R>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { return fn(i); }));
  }
  std::vector<R> out;
  out.reserve(count);
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      out.push_back(f.get());
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
  return out;
}

}  // namespace hpd::parallel
