#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace hpd::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) {
        cv_.wait(lock);
      }
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // Drain every future before rethrowing: tasks still queued or running
  // reference `fn`, so returning on the first failure would dangle it.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

}  // namespace hpd::parallel
