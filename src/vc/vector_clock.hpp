// Vector clocks (Mattern / Fidge) and the happened-before partial order.
//
// A VectorClock V at process Pi satisfies: V[j] = number of events of Pj
// that causally precede (or equal, for j == i) Pi's current state. The
// paper's update rules (Section II-A) are implemented by tick() / merge().
//
// Component-wise min / max ("meet" and "join" of cuts) implement the
// aggregation operator of the paper's Eqs. (5) and (6).
//
// Storage: small-buffer optimized. Systems of up to kInlineCapacity
// processes (the common fan-out for the paper's d-ary trees) keep their
// components inline — constructing, copying, and destroying such a clock
// performs no heap allocation, and an Interval's two clocks sit contiguous
// in memory with it. Larger clocks transparently fall back to a heap
// array with identical semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iosfwd>
#include <string>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hpd {

/// Relationship of two vector timestamps under happened-before.
enum class Ordering {
  kEqual,       ///< identical vectors
  kBefore,      ///< a < b : a happened-before b
  kAfter,       ///< a > b : b happened-before a
  kConcurrent,  ///< a || b : incomparable
};

const char* to_string(Ordering o);

class VectorClock {
 public:
  /// Components stored inline (no heap) — sized for the paper's realistic
  /// subtree fan-outs; n above this falls back to a heap array.
  static constexpr std::size_t kInlineCapacity = 16;

  /// Empty clock (size 0). Useful as a "not yet assigned" placeholder.
  VectorClock() noexcept : size_(0) {}

  /// Zero clock for a system of n processes.
  explicit VectorClock(std::size_t n) : size_(checked_size(n)) {
    ClockValue* p = allocate();
    for (std::size_t i = 0; i < size_; ++i) {
      p[i] = 0;
    }
  }

  /// Clock with explicit components, mostly for tests and scripted scenarios.
  VectorClock(std::initializer_list<ClockValue> values)
      : size_(checked_size(values.size())) {
    ClockValue* p = allocate();
    std::size_t i = 0;
    for (const ClockValue v : values) {
      p[i++] = v;
    }
  }

  VectorClock(const VectorClock& other) : size_(other.size_) {
    std::memcpy(allocate(), other.data(), size_ * sizeof(ClockValue));
  }

  VectorClock(VectorClock&& other) noexcept : size_(other.size_) {
    if (is_inline()) {
      std::memcpy(inline_, other.inline_, size_ * sizeof(ClockValue));
    } else {
      heap_ = other.heap_;
      other.size_ = 0;  // moved-from: empty, nothing to free
    }
  }

  VectorClock& operator=(const VectorClock& other) {
    if (this != &other) {
      if (size_ != other.size_) {
        release();
        size_ = 0;  // stay destructible if the allocation below throws
        if (other.size_ > kInlineCapacity) {
          heap_ = new ClockValue[other.size_];
        }
        size_ = other.size_;
      }
      std::memcpy(data(), other.data(), size_ * sizeof(ClockValue));
    }
    return *this;
  }

  VectorClock& operator=(VectorClock&& other) noexcept {
    if (this != &other) {
      release();
      size_ = other.size_;
      if (is_inline()) {
        std::memcpy(inline_, other.inline_, size_ * sizeof(ClockValue));
      } else {
        heap_ = other.heap_;
        other.size_ = 0;
      }
    }
    return *this;
  }

  ~VectorClock() { release(); }

  static VectorClock zero(std::size_t n) { return VectorClock(n); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Raw component access for single-pass kernels (compare, codec, bench).
  const ClockValue* data() const { return is_inline() ? inline_ : heap_; }
  ClockValue* data() { return is_inline() ? inline_ : heap_; }

  ClockValue operator[](std::size_t i) const {
    HPD_DASSERT(i < size_, "VectorClock: component out of range");
    return data()[i];
  }
  ClockValue& operator[](std::size_t i) {
    HPD_DASSERT(i < size_, "VectorClock: component out of range");
    return data()[i];
  }

  /// Rule 1/2 of the paper: advance the local component before an event.
  void tick(ProcessId self) {
    HPD_DASSERT(self >= 0 && static_cast<std::size_t>(self) < size_,
                "VectorClock::tick: bad process id");
    ++data()[static_cast<std::size_t>(self)];
  }

  /// Rule 3 of the paper (receive): component-wise max with the message
  /// timestamp. The caller then ticks the local component.
  void merge(const VectorClock& other);

  /// Sum of all components — a cheap total "amount of causality" measure,
  /// used only by diagnostics.
  std::uint64_t total() const;

  /// Number of ClockValue words a timestamp occupies on the wire. Used by
  /// the metrics layer to account message sizes in O(n) units.
  std::size_t wire_size() const { return size_; }

  std::string to_string() const;

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    if (a.size_ != b.size_) {
      return false;
    }
    const ClockValue* pa = a.data();
    const ClockValue* pb = b.data();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (pa[i] != pb[i]) {
        return false;
      }
    }
    return true;
  }
  friend bool operator!=(const VectorClock& a, const VectorClock& b) {
    return !(a == b);
  }

 private:
  // The meet/join kernels overwrite every component of their result; give
  // them a construction path that skips the zero fill.
  struct Uninit {};
  VectorClock(std::size_t n, Uninit) : size_(checked_size(n)) {
    (void)allocate();
  }
  friend VectorClock component_max(const VectorClock& a, const VectorClock& b);
  friend VectorClock component_min(const VectorClock& a, const VectorClock& b);

  bool is_inline() const { return size_ <= kInlineCapacity; }

  static std::uint32_t checked_size(std::size_t n) {
    HPD_REQUIRE(n <= UINT32_MAX, "VectorClock: size out of range");
    return static_cast<std::uint32_t>(n);
  }

  /// Bind storage for the current size_ and return the component array.
  ClockValue* allocate() {
    if (is_inline()) {
      return inline_;
    }
    heap_ = new ClockValue[size_];
    return heap_;
  }

  void release() {
    if (!is_inline()) {
      delete[] heap_;
    }
  }

  std::uint32_t size_;
  union {
    ClockValue inline_[kInlineCapacity];
    ClockValue* heap_;
  };
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

/// Full comparison under the happened-before partial order.
/// Requires a.size() == b.size() and both non-empty. Single fused pass:
/// exits as soon as both directions have been witnessed (concurrent).
Ordering compare(const VectorClock& a, const VectorClock& b);

/// a < b : every component of a is <= the matching component of b and at
/// least one is strictly smaller. This is the paper's "<" on timestamps
/// (equivalently Lamport's happened-before on the underlying events/cuts).
/// One pass with early exit on the first a[i] > b[i] — does not go through
/// compare(), so no second scan.
bool vc_less(const VectorClock& a, const VectorClock& b);

/// a <= b component-wise (a < b or a == b). Single pass, early exit.
bool vc_leq(const VectorClock& a, const VectorClock& b);

/// Incomparable under happened-before.
bool vc_concurrent(const VectorClock& a, const VectorClock& b);

/// Component-wise maximum (join of two cuts).
VectorClock component_max(const VectorClock& a, const VectorClock& b);

/// Component-wise minimum (meet of two cuts).
VectorClock component_min(const VectorClock& a, const VectorClock& b);

}  // namespace hpd
