// SIMD kernel layer for the vector-clock hot loops (meet/join, the fused
// Eq. (5)/(6) aggregation step, and the happened-before comparisons).
//
// Three implementations of one raw-pointer kernel table:
//
//   portable   always built; the block-wise branchless loops the scalar
//              hot path has used since the allocation-free refactor
//   avx2       x86-64, compiled with a per-function target("avx2")
//              attribute (no global -mavx2), selected at runtime iff the
//              CPU reports AVX2
//   neon       AArch64 (NEON is baseline there; no runtime probe needed)
//
// Selection happens ONCE, at first use, through a function-pointer table —
// one binary runs everywhere. The environment variable HPD_SIMD
// ("portable", "avx2", "neon") overrides the probe, falling back to
// portable when the named backend is unavailable; tests use it to force
// the scalar path and to pin dispatch behavior.
//
// Semantics are bit-identical across backends (the differential property
// suite in tests/simd_test.cpp sweeps them against the frozen seed
// implementations at inline/heap boundary lengths). All kernels tolerate
// unaligned pointers; `join`/`meet` allow dst to alias either input
// (element-wise writes, no cross-lane reads).
//
// Vendor intrinsics headers (immintrin.h / arm_neon.h) are confined to
// src/vc/simd.* by the hpd_lint `simd-intrinsics` rule.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace hpd::vc_simd {

/// Bit flags returned by Kernels::order_flags.
inline constexpr unsigned kSomeLess = 1u;     ///< exists i: a[i] < b[i]
inline constexpr unsigned kSomeGreater = 2u;  ///< exists i: a[i] > b[i]

/// One backend's kernel table. Raw pointers + length; callers validate
/// sizes (the VectorClock wrappers keep their HPD_REQUIREs).
struct Kernels {
  /// dst[i] = max(a[i], b[i]) — the join of two cuts / Eq. (5) step.
  void (*join)(ClockValue* dst, const ClockValue* a, const ClockValue* b,
               std::size_t n);
  /// dst[i] = min(a[i], b[i]) — the meet of two cuts / Eq. (6) step.
  void (*meet)(ClockValue* dst, const ClockValue* a, const ClockValue* b,
               std::size_t n);
  /// Fused in-place aggregation step over one input interval:
  ///   lo[i] = max(lo[i], ql[i]);  hi[i] = min(hi[i], qh[i]).
  /// One pass over both bounds keeps the loads of ql/qh and the stores of
  /// lo/hi in the same iteration — the aggregate() inner loop.
  void (*meet_join)(ClockValue* lo, ClockValue* hi, const ClockValue* ql,
                    const ClockValue* qh, std::size_t n);
  /// Whole-fan-in aggregation: folds `count` input bound pairs into lo/hi,
  ///   lo[i] = max(lo[i], qls[k][i]);  hi[i] = min(hi[i], qhs[k][i])
  /// for every k < count. Vector backends keep the lo/hi accumulators in
  /// registers across the entire fan-in — two memory ops per input block
  /// instead of six — which is what makes wide-clock aggregation
  /// bandwidth-, not latency-, limited.
  void (*meet_join_many)(ClockValue* lo, ClockValue* hi,
                         const ClockValue* const* qls,
                         const ClockValue* const* qhs, std::size_t count,
                         std::size_t n);
  /// kSomeLess / kSomeGreater accumulated over all components, with an
  /// early exit once both directions have been witnessed (concurrent).
  unsigned (*order_flags)(const ClockValue* a, const ClockValue* b,
                          std::size_t n);
  /// a[i] <= b[i] for all i; exits on the first violating block.
  bool (*leq)(const ClockValue* a, const ClockValue* b, std::size_t n);
  /// leq AND exists i: a[i] < b[i] (the paper's strict "<" on timestamps).
  bool (*less)(const ClockValue* a, const ClockValue* b, std::size_t n);
  /// "portable" | "avx2" | "neon".
  const char* name;
};

/// The dispatched table: probed (or HPD_SIMD-overridden) once at first
/// call, then cached for the process lifetime.
const Kernels& kernels();

/// Name of the backend kernels() resolved to.
const char* active_kernel();

/// The always-available scalar table (also the fallback target).
const Kernels& portable_kernels();

/// Backend tables for differential testing: null when not compiled in or
/// not supported by this CPU.
const Kernels* avx2_kernels();
const Kernels* neon_kernels();

/// Re-run the selection logic with an explicit override (as if HPD_SIMD
/// were set to `override_name`; nullptr = probe). Does NOT touch the
/// cached global table — this is a test hook for pinning dispatch
/// behavior without depending on environment or call order.
const Kernels& dispatch_for_test(const char* override_name);

}  // namespace hpd::vc_simd
