#include "vc/simd.hpp"

#include <cstdlib>
#include <cstring>

// Vendor intrinsics are confined to this translation unit (and simd.hpp)
// by the hpd_lint `simd-intrinsics` rule. The AVX2 functions carry a
// per-function target attribute instead of a global -mavx2 flag, so the
// rest of the binary stays runnable on any x86-64 and the probe in
// select() decides at startup whether these bodies may be entered.
#if defined(__GNUC__) && defined(__x86_64__)
#define HPD_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define HPD_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace hpd::vc_simd {

namespace {

// Block width of the portable kernels — matches the pre-SIMD scalar hot
// path: flags accumulate branchlessly inside a block, the early-exit
// decision is taken once per block.
constexpr std::size_t kBlock = 8;

// ---- Portable (always built) ------------------------------------------------

void join_portable(ClockValue* dst, const ClockValue* a, const ClockValue* b,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] > b[i] ? a[i] : b[i];
  }
}

void meet_portable(ClockValue* dst, const ClockValue* a, const ClockValue* b,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] < b[i] ? a[i] : b[i];
  }
}

void meet_join_portable(ClockValue* lo, ClockValue* hi, const ClockValue* ql,
                        const ClockValue* qh, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    lo[i] = lo[i] > ql[i] ? lo[i] : ql[i];  // Eq. (5)
    hi[i] = hi[i] < qh[i] ? hi[i] : qh[i];  // Eq. (6)
  }
}

void meet_join_many_portable(ClockValue* lo, ClockValue* hi,
                             const ClockValue* const* qls,
                             const ClockValue* const* qhs, std::size_t count,
                             std::size_t n) {
  for (std::size_t k = 0; k < count; ++k) {
    meet_join_portable(lo, hi, qls[k], qhs[k], n);
  }
}

unsigned order_flags_portable(const ClockValue* a, const ClockValue* b,
                              std::size_t n) {
  bool some_less = false;
  bool some_greater = false;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) {
      some_less |= a[i + j] < b[i + j];
      some_greater |= a[i + j] > b[i + j];
    }
    if (some_less && some_greater) {
      return kSomeLess | kSomeGreater;
    }
  }
  for (; i < n; ++i) {
    some_less |= a[i] < b[i];
    some_greater |= a[i] > b[i];
  }
  return (some_less ? kSomeLess : 0u) | (some_greater ? kSomeGreater : 0u);
}

bool leq_portable(const ClockValue* a, const ClockValue* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    bool greater = false;
    for (std::size_t j = 0; j < kBlock; ++j) {
      greater |= a[i + j] > b[i + j];
    }
    if (greater) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] > b[i]) {
      return false;
    }
  }
  return true;
}

bool less_portable(const ClockValue* a, const ClockValue* b, std::size_t n) {
  bool strict = false;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    bool greater = false;
    for (std::size_t j = 0; j < kBlock; ++j) {
      greater |= a[i + j] > b[i + j];
      strict |= a[i + j] < b[i + j];
    }
    if (greater) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] > b[i]) {
      return false;
    }
    strict |= a[i] < b[i];
  }
  return strict;
}

constexpr Kernels kPortable = {
    join_portable,  meet_portable, meet_join_portable,
    meet_join_many_portable,
    order_flags_portable, leq_portable,  less_portable,
    "portable",
};

// ---- AVX2 (x86-64, runtime-probed) ------------------------------------------

#if HPD_SIMD_HAVE_AVX2

// ClockValue is uint32_t: 8 lanes per 256-bit vector. All loads/stores are
// unaligned (clock storage is new[]/inline arrays with no alignment
// promise). Tails below 8 components fall back to the scalar loop — the
// kernels never read past n.

__attribute__((target("avx2"))) void join_avx2(ClockValue* dst,
                                               const ClockValue* a,
                                               const ClockValue* b,
                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_max_epu32(va, vb));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] > b[i] ? a[i] : b[i];
  }
}

__attribute__((target("avx2"))) void meet_avx2(ClockValue* dst,
                                               const ClockValue* a,
                                               const ClockValue* b,
                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_min_epu32(va, vb));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] < b[i] ? a[i] : b[i];
  }
}

__attribute__((target("avx2"))) void meet_join_avx2(ClockValue* lo,
                                                    ClockValue* hi,
                                                    const ClockValue* ql,
                                                    const ClockValue* qh,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vl =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i vql =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ql + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + i),
                        _mm256_max_epu32(vl, vql));
    const __m256i vh =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    const __m256i vqh =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qh + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + i),
                        _mm256_min_epu32(vh, vqh));
  }
  for (; i < n; ++i) {
    lo[i] = lo[i] > ql[i] ? lo[i] : ql[i];
    hi[i] = hi[i] < qh[i] ? hi[i] : qh[i];
  }
}

// The whole fan-in folds into two register accumulators per 8-lane block:
// each input costs two loads and two ALU ops, and lo/hi are read and
// written exactly once per block regardless of count. This is what makes
// wide-clock aggregation scale with input bandwidth instead of with
// accumulator read-modify-write traffic.
__attribute__((target("avx2"))) void meet_join_many_avx2(
    ClockValue* lo, ClockValue* hi, const ClockValue* const* qls,
    const ClockValue* const* qhs, std::size_t count, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i vl = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    __m256i vh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    for (std::size_t k = 0; k < count; ++k) {
      vl = _mm256_max_epu32(vl, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qls[k] + i)));
      vh = _mm256_min_epu32(vh, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qhs[k] + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + i), vl);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + i), vh);
  }
  for (; i < n; ++i) {
    for (std::size_t k = 0; k < count; ++k) {
      lo[i] = lo[i] > qls[k][i] ? lo[i] : qls[k][i];
      hi[i] = hi[i] < qhs[k][i] ? hi[i] : qhs[k][i];
    }
  }
}

// Unsigned per-lane comparison via min + equality: a < b on a lane iff
// min(a,b) == a and a != b (AVX2 has no direct unsigned 32-bit compare).
__attribute__((target("avx2"))) unsigned order_flags_avx2(const ClockValue* a,
                                                          const ClockValue* b,
                                                          std::size_t n) {
  unsigned flags = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi32(va, vb);
    const __m256i mn = _mm256_min_epu32(va, vb);
    const __m256i lt = _mm256_andnot_si256(eq, _mm256_cmpeq_epi32(mn, va));
    const __m256i gt = _mm256_andnot_si256(eq, _mm256_cmpeq_epi32(mn, vb));
    flags |= (_mm256_movemask_epi8(lt) != 0 ? kSomeLess : 0u) |
             (_mm256_movemask_epi8(gt) != 0 ? kSomeGreater : 0u);
    if (flags == (kSomeLess | kSomeGreater)) {
      return flags;
    }
  }
  for (; i < n; ++i) {
    flags |= (a[i] < b[i] ? kSomeLess : 0u) | (a[i] > b[i] ? kSomeGreater : 0u);
  }
  return flags;
}

__attribute__((target("avx2"))) bool leq_avx2(const ClockValue* a,
                                              const ClockValue* b,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // a <= b on every lane iff min(a,b) == a on every lane.
    const __m256i le = _mm256_cmpeq_epi32(_mm256_min_epu32(va, vb), va);
    if (_mm256_movemask_epi8(le) != -1) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] > b[i]) {
      return false;
    }
  }
  return true;
}

__attribute__((target("avx2"))) bool less_avx2(const ClockValue* a,
                                               const ClockValue* b,
                                               std::size_t n) {
  bool strict = false;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i le = _mm256_cmpeq_epi32(_mm256_min_epu32(va, vb), va);
    if (_mm256_movemask_epi8(le) != -1) {
      return false;  // some a[i] > b[i]
    }
    // All lanes a <= b here, so any non-equal lane is strictly less.
    strict |= _mm256_movemask_epi8(_mm256_cmpeq_epi32(va, vb)) != -1;
  }
  for (; i < n; ++i) {
    if (a[i] > b[i]) {
      return false;
    }
    strict |= a[i] < b[i];
  }
  return strict;
}

constexpr Kernels kAvx2 = {
    join_avx2,  meet_avx2, meet_join_avx2,
    meet_join_many_avx2,
    order_flags_avx2, leq_avx2,  less_avx2,
    "avx2",
};

#endif  // HPD_SIMD_HAVE_AVX2

// ---- NEON (AArch64 baseline) ------------------------------------------------

#if HPD_SIMD_HAVE_NEON

// NEON is architectural on AArch64 — no probe, no target attribute.
// 4 uint32 lanes per 128-bit vector; vmaxvq reduces a lane mask to a
// scalar for the early-exit decisions.

void join_neon(ClockValue* dst, const ClockValue* a, const ClockValue* b,
               std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u32(dst + i, vmaxq_u32(vld1q_u32(a + i), vld1q_u32(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] > b[i] ? a[i] : b[i];
  }
}

void meet_neon(ClockValue* dst, const ClockValue* a, const ClockValue* b,
               std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u32(dst + i, vminq_u32(vld1q_u32(a + i), vld1q_u32(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] < b[i] ? a[i] : b[i];
  }
}

void meet_join_neon(ClockValue* lo, ClockValue* hi, const ClockValue* ql,
                    const ClockValue* qh, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u32(lo + i, vmaxq_u32(vld1q_u32(lo + i), vld1q_u32(ql + i)));
    vst1q_u32(hi + i, vminq_u32(vld1q_u32(hi + i), vld1q_u32(qh + i)));
  }
  for (; i < n; ++i) {
    lo[i] = lo[i] > ql[i] ? lo[i] : ql[i];
    hi[i] = hi[i] < qh[i] ? hi[i] : qh[i];
  }
}

// Register-resident accumulators across the fan-in, as in the AVX2
// version, with 4 uint32 lanes per block.
void meet_join_many_neon(ClockValue* lo, ClockValue* hi,
                         const ClockValue* const* qls,
                         const ClockValue* const* qhs, std::size_t count,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32x4_t vl = vld1q_u32(lo + i);
    uint32x4_t vh = vld1q_u32(hi + i);
    for (std::size_t k = 0; k < count; ++k) {
      vl = vmaxq_u32(vl, vld1q_u32(qls[k] + i));
      vh = vminq_u32(vh, vld1q_u32(qhs[k] + i));
    }
    vst1q_u32(lo + i, vl);
    vst1q_u32(hi + i, vh);
  }
  for (; i < n; ++i) {
    for (std::size_t k = 0; k < count; ++k) {
      lo[i] = lo[i] > qls[k][i] ? lo[i] : qls[k][i];
      hi[i] = hi[i] < qhs[k][i] ? hi[i] : qhs[k][i];
    }
  }
}

unsigned order_flags_neon(const ClockValue* a, const ClockValue* b,
                          std::size_t n) {
  unsigned flags = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t va = vld1q_u32(a + i);
    const uint32x4_t vb = vld1q_u32(b + i);
    flags |= (vmaxvq_u32(vcltq_u32(va, vb)) != 0 ? kSomeLess : 0u) |
             (vmaxvq_u32(vcgtq_u32(va, vb)) != 0 ? kSomeGreater : 0u);
    if (flags == (kSomeLess | kSomeGreater)) {
      return flags;
    }
  }
  for (; i < n; ++i) {
    flags |= (a[i] < b[i] ? kSomeLess : 0u) | (a[i] > b[i] ? kSomeGreater : 0u);
  }
  return flags;
}

bool leq_neon(const ClockValue* a, const ClockValue* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (vmaxvq_u32(vcgtq_u32(vld1q_u32(a + i), vld1q_u32(b + i))) != 0) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] > b[i]) {
      return false;
    }
  }
  return true;
}

bool less_neon(const ClockValue* a, const ClockValue* b, std::size_t n) {
  bool strict = false;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t va = vld1q_u32(a + i);
    const uint32x4_t vb = vld1q_u32(b + i);
    if (vmaxvq_u32(vcgtq_u32(va, vb)) != 0) {
      return false;
    }
    strict |= vmaxvq_u32(vcltq_u32(va, vb)) != 0;
  }
  for (; i < n; ++i) {
    if (a[i] > b[i]) {
      return false;
    }
    strict |= a[i] < b[i];
  }
  return strict;
}

constexpr Kernels kNeon = {
    join_neon,  meet_neon, meet_join_neon,
    meet_join_many_neon,
    order_flags_neon, leq_neon,  less_neon,
    "neon",
};

#endif  // HPD_SIMD_HAVE_NEON

// ---- Dispatch ---------------------------------------------------------------

const Kernels& select(const char* override_name) {
  if (override_name != nullptr && *override_name != '\0') {
    if (std::strcmp(override_name, "avx2") == 0) {
      if (const Kernels* k = avx2_kernels()) {
        return *k;
      }
      return kPortable;  // requested backend unavailable: degrade safely
    }
    if (std::strcmp(override_name, "neon") == 0) {
      if (const Kernels* k = neon_kernels()) {
        return *k;
      }
      return kPortable;
    }
    return kPortable;  // "portable" and anything unknown
  }
  if (const Kernels* k = avx2_kernels()) {
    return *k;
  }
  if (const Kernels* k = neon_kernels()) {
    return *k;
  }
  return kPortable;
}

}  // namespace

const Kernels& portable_kernels() { return kPortable; }

const Kernels* avx2_kernels() {
#if HPD_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) {
    return &kAvx2;
  }
#endif
  return nullptr;
}

const Kernels* neon_kernels() {
#if HPD_SIMD_HAVE_NEON
  return &kNeon;
#else
  return nullptr;
#endif
}

const Kernels& kernels() {
  // One probe per process: reading the override here (not per call) is
  // what makes the table safe to cache in a function-pointer-free local
  // reference at every call site.
  static const Kernels& k =
      select(std::getenv("HPD_SIMD"));  // NOLINT(concurrency-mt-unsafe)
  return k;
}

const char* active_kernel() { return kernels().name; }

const Kernels& dispatch_for_test(const char* override_name) {
  return select(override_name);
}

}  // namespace hpd::vc_simd
