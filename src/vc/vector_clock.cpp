#include "vc/vector_clock.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "vc/simd.hpp"

namespace hpd {

const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kEqual:
      return "equal";
    case Ordering::kBefore:
      return "before";
    case Ordering::kAfter:
      return "after";
    case Ordering::kConcurrent:
      return "concurrent";
  }
  return "?";
}

namespace {

// Clocks at or below the inline capacity (n <= 16, the common d-ary
// fan-outs) take short scalar loops the compiler fully unrolls in place —
// an indirect call through the dispatched kernel table would cost more
// than the loop itself there. Larger clocks go through
// vc_simd::kernels(), where the vector width pays for the indirection.
constexpr std::size_t kSimdThreshold = VectorClock::kInlineCapacity;

}  // namespace

void VectorClock::merge(const VectorClock& other) {
  HPD_REQUIRE(size_ == other.size_, "VectorClock::merge: size mismatch");
  ClockValue* p = data();
  const ClockValue* q = other.data();
  if (size_ <= kSimdThreshold) {
    for (std::size_t i = 0; i < size_; ++i) {
      p[i] = std::max(p[i], q[i]);
    }
    return;
  }
  vc_simd::kernels().join(p, p, q, size_);
}

std::uint64_t VectorClock::total() const {
  const ClockValue* p = data();
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    sum += p[i];
  }
  return sum;
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '(';
  for (std::size_t i = 0; i < vc.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << vc[i];
  }
  os << ')';
  return os;
}

Ordering compare(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size() && !a.empty(),
              "compare: clocks must be non-empty and of equal size");
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  const std::size_t n = a.size();
  // Scalar prefix first, at every size: random clocks usually witness both
  // directions within a handful of components, and that early exit beats
  // an indirect kernel call. Only a prefix that stays ordered hands the
  // tail to the vector kernel (flags OR cleanly — they are per-component).
  unsigned flags = 0;
  const std::size_t prefix = std::min(n, kSimdThreshold);
  for (std::size_t i = 0; i < prefix; ++i) {
    flags |= (pa[i] < pb[i] ? vc_simd::kSomeLess : 0u) |
             (pa[i] > pb[i] ? vc_simd::kSomeGreater : 0u);
  }
  if (n > prefix && flags != (vc_simd::kSomeLess | vc_simd::kSomeGreater)) {
    flags |= vc_simd::kernels().order_flags(pa + prefix, pb + prefix,
                                            n - prefix);
  }
  if ((flags & vc_simd::kSomeLess) != 0) {
    return (flags & vc_simd::kSomeGreater) != 0 ? Ordering::kConcurrent
                                                : Ordering::kBefore;
  }
  if ((flags & vc_simd::kSomeGreater) != 0) {
    return Ordering::kAfter;
  }
  return Ordering::kEqual;
}

bool vc_less(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size() && !a.empty(),
              "vc_less: clocks must be non-empty and of equal size");
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  const std::size_t n = a.size();
  if (n <= kSimdThreshold) {
    bool strict = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (pa[i] > pb[i]) {
        return false;
      }
      strict |= pa[i] < pb[i];
    }
    return strict;
  }
  return vc_simd::kernels().less(pa, pb, n);
}

bool vc_leq(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size() && !a.empty(),
              "vc_leq: clocks must be non-empty and of equal size");
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  const std::size_t n = a.size();
  if (n <= kSimdThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      if (pa[i] > pb[i]) {
        return false;
      }
    }
    return true;
  }
  return vc_simd::kernels().leq(pa, pb, n);
}

bool vc_concurrent(const VectorClock& a, const VectorClock& b) {
  return compare(a, b) == Ordering::kConcurrent;
}

VectorClock component_max(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size(), "component_max: size mismatch");
  VectorClock out(a.size(), VectorClock::Uninit{});
  ClockValue* po = out.data();
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  if (a.size() <= kSimdThreshold) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      po[i] = std::max(pa[i], pb[i]);
    }
    return out;
  }
  vc_simd::kernels().join(po, pa, pb, a.size());
  return out;
}

VectorClock component_min(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size(), "component_min: size mismatch");
  VectorClock out(a.size(), VectorClock::Uninit{});
  ClockValue* po = out.data();
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  if (a.size() <= kSimdThreshold) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      po[i] = std::min(pa[i], pb[i]);
    }
    return out;
  }
  vc_simd::kernels().meet(po, pa, pb, a.size());
  return out;
}

}  // namespace hpd
