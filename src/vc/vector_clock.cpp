#include "vc/vector_clock.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace hpd {

const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kEqual:
      return "equal";
    case Ordering::kBefore:
      return "before";
    case Ordering::kAfter:
      return "after";
    case Ordering::kConcurrent:
      return "concurrent";
  }
  return "?";
}

void VectorClock::merge(const VectorClock& other) {
  HPD_REQUIRE(size_ == other.size_, "VectorClock::merge: size mismatch");
  ClockValue* p = data();
  const ClockValue* q = other.data();
  for (std::size_t i = 0; i < size_; ++i) {
    p[i] = std::max(p[i], q[i]);
  }
}

std::uint64_t VectorClock::total() const {
  const ClockValue* p = data();
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    sum += p[i];
  }
  return sum;
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '(';
  for (std::size_t i = 0; i < vc.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << vc[i];
  }
  os << ')';
  return os;
}

namespace {

// The comparison kernels scan in blocks of kBlock components, accumulating
// per-block flags branchlessly and deciding the early exit once per block —
// the inner loops have no data-dependent branches, so the compiler can
// unroll/vectorize them, while wildly diverging clocks still exit after the
// first block. Per-call observable behavior (the returned ordering, and the
// engine's counted comparisons) is unchanged.
constexpr std::size_t kBlock = 8;

}  // namespace

Ordering compare(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size() && !a.empty(),
              "compare: clocks must be non-empty and of equal size");
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  const std::size_t n = a.size();
  bool some_less = false;
  bool some_greater = false;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) {
      some_less |= pa[i + j] < pb[i + j];
      some_greater |= pa[i + j] > pb[i + j];
    }
    if (some_less && some_greater) {
      return Ordering::kConcurrent;
    }
  }
  for (; i < n; ++i) {
    some_less |= pa[i] < pb[i];
    some_greater |= pa[i] > pb[i];
  }
  if (some_less) {
    return some_greater ? Ordering::kConcurrent : Ordering::kBefore;
  }
  if (some_greater) {
    return Ordering::kAfter;
  }
  return Ordering::kEqual;
}

bool vc_less(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size() && !a.empty(),
              "vc_less: clocks must be non-empty and of equal size");
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  const std::size_t n = a.size();
  bool strict = false;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    bool greater = false;
    for (std::size_t j = 0; j < kBlock; ++j) {
      greater |= pa[i + j] > pb[i + j];
      strict |= pa[i + j] < pb[i + j];
    }
    if (greater) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (pa[i] > pb[i]) {
      return false;
    }
    strict |= pa[i] < pb[i];
  }
  return strict;
}

bool vc_leq(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size() && !a.empty(),
              "vc_leq: clocks must be non-empty and of equal size");
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  const std::size_t n = a.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    bool greater = false;
    for (std::size_t j = 0; j < kBlock; ++j) {
      greater |= pa[i + j] > pb[i + j];
    }
    if (greater) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (pa[i] > pb[i]) {
      return false;
    }
  }
  return true;
}

bool vc_concurrent(const VectorClock& a, const VectorClock& b) {
  return compare(a, b) == Ordering::kConcurrent;
}

VectorClock component_max(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size(), "component_max: size mismatch");
  VectorClock out(a.size(), VectorClock::Uninit{});
  ClockValue* po = out.data();
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    po[i] = std::max(pa[i], pb[i]);
  }
  return out;
}

VectorClock component_min(const VectorClock& a, const VectorClock& b) {
  HPD_REQUIRE(a.size() == b.size(), "component_min: size mismatch");
  VectorClock out(a.size(), VectorClock::Uninit{});
  ClockValue* po = out.data();
  const ClockValue* pa = a.data();
  const ClockValue* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    po[i] = std::min(pa[i], pb[i]);
  }
  return out;
}

}  // namespace hpd
