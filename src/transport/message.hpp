// Typed point-to-point messages exchanged by protocol nodes.
//
// The same Message travels over every transport backend: the deterministic
// simulator passes it by value through the event queue (payload may be a
// typed proto struct), while the live runtime requires the payload to be
// codec bytes (wire/codec) and ships them inside a checksummed frame
// (wire/frame).
#pragma once

#include <any>
#include <cstdint>

#include "common/types.hpp"

namespace hpd::transport {

struct Message {
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  int type = 0;              ///< protocol-defined tag (see proto/messages.hpp)
  std::any payload;          ///< typed body, or encoded bytes (wire mode)
  std::size_t wire_words = 0;  ///< payload size in vector-clock words (O(n) units)
  std::size_t wire_bytes = 0;  ///< encoded size in bytes (0 when not encoded)
  SeqNum id = 0;             ///< unique id assigned by the transport at send time
  SimTime sent_at = 0.0;     ///< stamped by the transport
};

}  // namespace hpd::transport
