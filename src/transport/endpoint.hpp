// The transport abstraction: everything a protocol node may ask of the
// substrate that carries its messages and timers.
//
// Two backends implement it:
//   * sim::Network       — deterministic discrete-event simulation; send
//                          delays are sampled from a DelayModel, time is
//                          virtual, everything runs on one thread.
//   * rt::LiveTransport  — real OS threads and loopback TCP / Unix-domain
//                          sockets; time is scaled wall clock, messages
//                          travel as checksummed frames (wire/frame).
//
// runner::ProcessRuntime (the full protocol stack: app layer, hierarchical
// engine, heartbeats, reattachment) is written against this interface only,
// so the exact same protocol code runs in both worlds.
//
// Threading contract: all calls for node `id` must come from the context
// that runs `id`'s callbacks — the scheduler thread in the simulator, the
// node's own event-loop thread in the live runtime. `now()` is safe from
// any thread.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "transport/message.hpp"

namespace hpd::transport {

using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Current time, in abstract protocol time units (virtual time in the
  /// simulator, scaled wall clock in the live runtime).
  virtual SimTime now() const = 0;

  /// Send a one-hop message. Best effort: drops (with a counter) if the
  /// source has crashed, the link does not exist, or — live only — the
  /// destination is unreachable after connect retries.
  virtual void send(Message msg) = 0;

  /// One-shot or periodic timer for a node. Fires Node::on_timer(tag).
  virtual TimerId set_timer(ProcessId id, int tag, SimTime delay,
                            bool periodic = false, SimTime period = 0.0) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Crash surface: liveness of a node as the transport sees it.
  virtual bool alive(ProcessId id) const = 0;
};

}  // namespace hpd::transport
