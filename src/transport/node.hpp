// Interface every protocol node implements, independent of the transport
// carrying its messages. The deterministic simulator invokes these callbacks
// from the event loop thread; the live runtime invokes them from the node's
// own event-loop thread (never concurrently with themselves or each other).
#pragma once

#include "transport/message.hpp"

namespace hpd::transport {

class Node {
 public:
  virtual ~Node() = default;

  /// Invoked once when the deployment starts.
  virtual void on_start() {}

  /// A message addressed to this node has been delivered.
  virtual void on_message(const Message& msg) = 0;

  /// A timer set via Endpoint::set_timer fired. `tag` is caller-defined.
  virtual void on_timer(int tag) { (void)tag; }

  /// This node has crashed (crash-stop). Called exactly once, at crash time,
  /// so implementations can drop resources; after this, the transport never
  /// invokes the node again (until an explicit revive).
  virtual void on_crash() {}

  /// The transport has abandoned delivery of one or more messages this node
  /// sent to `peer` (retransmit budget exhausted, or the peer's incarnation
  /// changed under the queued messages). Losses are surfaced, never silent:
  /// implementations should treat the peer like a failed neighbor (e.g.
  /// trigger ft::reattach) or re-issue the request. Only the live transport
  /// calls this — the simulator's losses are planned, not discovered — and
  /// it does so on this node's loop thread like every other callback.
  virtual void on_peer_unreachable(ProcessId peer) { (void)peer; }
};

}  // namespace hpd::transport
