#include "detect/slicing.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "common/assert.hpp"

namespace hpd::detect {

// ---- SlicingEngine ---------------------------------------------------------

void SlicingEngine::add_queue(ProcessId key) {
  engine_.add_queue(key);  // duplicate / invalid keys rejected there
  // Insert in ascending key order (streams are few; structural changes
  // are rare).
  auto it = std::lower_bound(
      streams_.begin(), streams_.end(), key,
      [](const Stream& s, ProcessId k) { return s.key < k; });
  Stream s;
  s.key = key;
  streams_.insert(it, std::move(s));
  if (idx(key) >= slot_of_.size()) {
    slot_of_.resize(idx(key) + 1, -1);
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    slot_of_[idx(streams_[i].key)] = static_cast<std::int32_t>(i);
  }
}

void SlicingEngine::remove_queue(ProcessId key) {
  const std::int32_t slot = slot_index(key);
  if (slot < 0) {
    return;
  }
  engine_.remove_queue(key);
  streams_.erase(streams_.begin() + slot);
  slot_of_[idx(key)] = -1;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    slot_of_[idx(streams_[i].key)] = static_cast<std::int32_t>(i);
  }
}

std::size_t SlicingEngine::first_past(const Stream& s,
                                      const VectorClock& x_hi) const {
  // vc_leq(hist[t].lo, x_hi) is a true-prefix along the stream (lo grows
  // component-wise under succ()); find the first false.
  std::size_t lo = 0;
  std::size_t hi = s.hist.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++slice_comparisons_;
    if (vc_leq(s.hist[mid].lo, x_hi)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t SlicingEngine::first_witness(const Stream& s,
                                         const VectorClock& x_lo) const {
  // vc_leq(x_lo, hist[t].hi) is a false-prefix (hi grows component-wise);
  // find the first true.
  std::size_t lo = 0;
  std::size_t hi = s.hist.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++slice_comparisons_;
    if (vc_leq(x_lo, s.hist[mid].hi)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool SlicingEngine::doomed_via(const Stream& s, const Interval& x) const {
  const std::size_t t = first_past(s, x.hi);
  if (t == s.hist.size()) {
    return false;  // window not yet closed by any recorded interval
  }
  if (mode_ == Mode::kTestBrokenEagerDoom) {
    // BROKEN: treats a closed window as an empty one — discards x even
    // when an earlier interval on this stream could still pair with it.
    return true;
  }
  // Window [S, T): empty iff x's lower cut cannot reach the hi of the
  // interval just before T (then it reaches no earlier one either).
  if (t == 0) {
    return true;
  }
  ++slice_comparisons_;
  return !vc_leq(x.lo, s.hist[t - 1].hi);
}

bool SlicingEngine::is_doomed(const Interval& x) const {
  for (const Stream& s : streams_) {
    if (s.key == x.origin) {
      continue;  // own predecessors precede x; the window is never closed
    }
    if (doomed_via(s, x)) {
      return true;
    }
  }
  return false;
}

SlicingEngine::JoinIrreducibleCut SlicingEngine::jcut(
    const Interval& x) const {
  JoinIrreducibleCut cut;
  cut.frontier = x.lo;
  cut.closed = true;
  for (const Stream& s : streams_) {
    if (s.key == x.origin) {
      continue;
    }
    const std::size_t w = first_witness(s, x.lo);
    if (w == s.hist.size()) {
      cut.closed = false;  // provisional: stream has no witness yet
      continue;
    }
    cut.frontier.merge(s.hist[w].lo);
  }
  return cut;
}

std::vector<Solution> SlicingEngine::offer(ProcessId key, Interval&& x) {
  const std::int32_t slot = slot_index(key);
  HPD_REQUIRE(slot >= 0, "SlicingEngine: offer to unknown stream");
  HPD_DASSERT(key == x.origin, "SlicingEngine: stream key is the origin");
  Stream& s = streams_[static_cast<std::size_t>(slot)];
  HPD_DASSERT(s.hist.empty() || (vc_leq(s.hist.back().lo, x.lo) &&
                                 vc_leq(s.hist.back().hi, x.hi)),
              "SlicingEngine: stream not in succ() order");
  s.hist.push_back(SliceEntry{x.lo, x.hi});
  if (is_doomed(x)) {
    ++discarded_;
    return {};
  }
  ++admitted_;
  const JoinIrreducibleCut cut = jcut(x);
  ++jcuts_computed_;
  if (cut.closed) {
    ++jcuts_closed_;
  }
  return engine_.offer(key, std::move(x));
}

SlicingEngine::Snapshot SlicingEngine::snapshot() const {
  Snapshot snap;
  snap.streams.reserve(streams_.size());
  for (const Stream& s : streams_) {
    Snapshot::Stream out;
    out.key = s.key;
    out.hist.reserve(s.hist.size());
    for (const SliceEntry& e : s.hist) {
      out.hist.push_back(Snapshot::Entry{e.lo, e.hi});
    }
    snap.streams.push_back(std::move(out));
  }
  snap.engine = engine_.snapshot();
  snap.mode = static_cast<std::uint8_t>(mode_);
  snap.admitted = admitted_;
  snap.discarded = discarded_;
  snap.jcuts_computed = jcuts_computed_;
  snap.jcuts_closed = jcuts_closed_;
  snap.slice_comparisons = slice_comparisons_;
  return snap;
}

void SlicingEngine::restore(const Snapshot& snap) {
  HPD_REQUIRE(snap.mode == static_cast<std::uint8_t>(mode_),
              "SlicingEngine::restore: slice-mode mismatch");
  streams_.clear();
  slot_of_.clear();
  engine_.restore(snap.engine);
  streams_.reserve(snap.streams.size());
  for (const Snapshot::Stream& in : snap.streams) {
    Stream s;
    s.key = in.key;
    s.hist.reserve(in.hist.size());
    for (const Snapshot::Entry& e : in.hist) {
      s.hist.push_back(SliceEntry{e.lo, e.hi});
    }
    if (idx(in.key) >= slot_of_.size()) {
      slot_of_.resize(idx(in.key) + 1, -1);
    }
    slot_of_[idx(in.key)] = static_cast<std::int32_t>(streams_.size());
    streams_.push_back(std::move(s));
  }
  admitted_ = snap.admitted;
  discarded_ = snap.discarded;
  jcuts_computed_ = snap.jcuts_computed;
  jcuts_closed_ = snap.jcuts_closed;
  slice_comparisons_ = snap.slice_comparisons;
}

// ---- SlicingDetector -------------------------------------------------------

SlicingDetector::SlicingDetector(ProcessId self,
                                 const std::vector<ProcessId>& processes,
                                 Hooks hooks, QueueEngine::PruneMode mode,
                                 std::size_t queue_capacity,
                                 SlicingEngine::Mode slice_mode)
    : self_(self), hooks_(std::move(hooks)), slicer_(slice_mode, mode) {
  slicer_.set_capacity(queue_capacity);
  bool saw_self = false;
  for (const ProcessId p : processes) {
    slicer_.add_queue(p);
    if (p == self_) {
      saw_self = true;
    } else {
      reorder_.track(p, 1);
    }
  }
  HPD_REQUIRE(saw_self, "SlicingDetector: sink must be among the processes");
}

void SlicingDetector::local_interval(Interval x) {
  HPD_DASSERT(x.origin == self_, "SlicingDetector: local interval origin");
  handle_solutions(slicer_.offer(self_, std::move(x)));
}

void SlicingDetector::report(Interval x) {
  const ProcessId origin = x.origin;
  if (!slicer_.has_queue(origin)) {
    return;  // stale report from a removed process
  }
  for (Interval& y : reorder_.push(origin, std::move(x))) {
    handle_solutions(slicer_.offer(origin, std::move(y)));
  }
}

void SlicingDetector::remove_process(ProcessId id) {
  HPD_REQUIRE(id != self_, "SlicingDetector: cannot remove the sink itself");
  if (!slicer_.has_queue(id)) {
    return;
  }
  slicer_.remove_queue(id);
  reorder_.untrack(id);
  handle_solutions(slicer_.recheck());
}

SlicingDetector::Snapshot SlicingDetector::snapshot() const {
  Snapshot snap;
  snap.self = self_;
  snap.slicer = slicer_.snapshot();
  snap.reorder = reorder_.snapshot();
  snap.next_seq = next_seq_;
  snap.occurrence_count = occurrence_count_;
  return snap;
}

void SlicingDetector::restore(const Snapshot& snap) {
  HPD_REQUIRE(snap.self == self_, "SlicingDetector::restore: sink id mismatch");
  slicer_.restore(snap.slicer);
  reorder_.restore(snap.reorder);
  next_seq_ = snap.next_seq;
  occurrence_count_ = snap.occurrence_count;
}

void SlicingDetector::handle_solutions(const std::vector<Solution>& sols) {
  for (const Solution& sol : sols) {
    OccurrenceRecord rec;
    rec.detector = self_;
    rec.index = ++occurrence_count_;
    rec.time = now();
    rec.global = true;
    rec.aggregate = aggregate(std::span<const Interval>(sol.members), self_,
                              next_seq_++);
    rec.latest_member_completion = rec.aggregate.completed_at;
    rec.solution = sol.members;
    if (hooks_.on_occurrence) {
      hooks_.on_occurrence(rec);
    }
  }
}

}  // namespace hpd::detect
