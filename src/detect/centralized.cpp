#include "detect/centralized.hpp"

#include <span>
#include <utility>

#include "common/assert.hpp"
#include "detect/par_aggregate.hpp"

namespace hpd::detect {

CentralSink::CentralSink(ProcessId self,
                         const std::vector<ProcessId>& processes, Hooks hooks,
                         QueueEngine::PruneMode mode,
                         std::size_t queue_capacity)
    : self_(self), hooks_(std::move(hooks)), engine_(mode) {
  engine_.set_capacity(queue_capacity);
  bool saw_self = false;
  for (const ProcessId p : processes) {
    engine_.add_queue(p);
    if (p == self_) {
      saw_self = true;
    } else {
      reorder_.track(p, 1);
    }
  }
  HPD_REQUIRE(saw_self, "CentralSink: sink must be among the processes");
}

void CentralSink::local_interval(Interval x) {
  HPD_DASSERT(x.origin == self_, "CentralSink: local interval origin");
  handle_solutions(engine_.offer(self_, std::move(x)));
}

void CentralSink::report(Interval x) {
  const ProcessId origin = x.origin;
  if (!engine_.has_queue(origin)) {
    return;  // stale report from a removed process
  }
  for (Interval& y : reorder_.push(origin, std::move(x))) {
    handle_solutions(engine_.offer(origin, std::move(y)));
  }
}

void CentralSink::remove_process(ProcessId id) {
  HPD_REQUIRE(id != self_, "CentralSink: cannot remove the sink itself");
  if (!engine_.has_queue(id)) {
    return;
  }
  engine_.remove_queue(id);
  reorder_.untrack(id);
  handle_solutions(engine_.recheck());
}

CentralSink::Snapshot CentralSink::snapshot() const {
  Snapshot snap;
  snap.self = self_;
  snap.engine = engine_.snapshot();
  snap.reorder = reorder_.snapshot();
  snap.next_seq = next_seq_;
  snap.occurrence_count = occurrence_count_;
  return snap;
}

void CentralSink::restore(const Snapshot& snap) {
  HPD_REQUIRE(snap.self == self_, "CentralSink::restore: sink id mismatch");
  engine_.restore(snap.engine);
  reorder_.restore(snap.reorder);
  next_seq_ = snap.next_seq;
  occurrence_count_ = snap.occurrence_count;
}

void CentralSink::handle_solutions(const std::vector<Solution>& sols) {
  for (const Solution& sol : sols) {
    OccurrenceRecord rec;
    rec.detector = self_;
    rec.index = ++occurrence_count_;
    rec.time = now();
    rec.global = true;
    const std::span<const Interval> members(sol.members);
    const std::size_t n =
        members.empty() ? 0 : members.front().lo.size();
    rec.aggregate =
        aggregate_should_parallelize(members.size(), n, pool_)
            ? aggregate_parallel(members, self_, next_seq_++, *pool_)
            : aggregate(members, self_, next_seq_++);
    rec.latest_member_completion = rec.aggregate.completed_at;
    rec.solution = sol.members;
    if (hooks_.on_occurrence) {
      hooks_.on_occurrence(rec);
    }
  }
}

}  // namespace hpd::detect
